#include "tech/transistor.hh"

#include <algorithm>
#include <cassert>

namespace orion::tech {

namespace {

/**
 * Default widths in multiples of the drawn feature size. Values are
 * Cacti-flavoured: pass devices a few features wide, precharge devices
 * wider, logic gates modest.
 */
double
defaultWidthMultiple(Role role)
{
    switch (role) {
      case Role::MemoryPass:           return 3.0;
      case Role::WordlineDriver:       return 12.0;
      case Role::BitlineDriver:        return 12.0;
      case Role::Precharge:            return 10.0;
      case Role::MemoryCellInverter:   return 2.5;
      case Role::SenseAmp:             return 6.0;
      case Role::CrossbarCrosspoint:   return 8.0;
      case Role::CrossbarInputDriver:  return 16.0;
      case Role::CrossbarOutputDriver: return 16.0;
      case Role::MuxTreePass:          return 6.0;
      case Role::ArbiterNor1:          return 4.0;
      case Role::ArbiterNor2:          return 4.0;
      case Role::ArbiterInverter:      return 3.0;
      case Role::FlipFlopInverter:     return 3.0;
      case Role::Minimum:              return 2.0;
    }
    return 2.0;
}

} // namespace

Transistor
defaultTransistor(const TechNode& tech, Role role)
{
    return Transistor{defaultWidthMultiple(role) * tech.featureUm, role};
}

Transistor
sizeDriverForLoad(const TechNode& tech, Role role, double load_cap_f)
{
    assert(load_cap_f >= 0.0);
    const double min_width = 2.0 * tech.featureUm;
    const double width =
        load_cap_f / (tech.stageEffort * tech.cgPerUm);
    return Transistor{std::max(width, min_width), role};
}

} // namespace orion::tech
