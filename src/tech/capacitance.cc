#include "tech/capacitance.hh"

#include <cassert>

namespace orion::tech {

double
cg(const TechNode& tech, const Transistor& t)
{
    return tech.cgPerUm * t.widthUm;
}

double
cd(const TechNode& tech, const Transistor& t)
{
    return tech.cdPerUm * t.widthUm;
}

double
ca(const TechNode& tech, const Transistor& t)
{
    return cg(tech, t) + cd(tech, t);
}

double
cw(const TechNode& tech, double length_um)
{
    assert(length_um >= 0.0);
    return tech.cwPerUm * length_um;
}

} // namespace orion::tech
