/**
 * @file
 * Transistor sizing for the Orion power models.
 *
 * The paper: "Transistor sizes can be user-input parameters, or
 * automatically determined by Orion with a set of default values from
 * Cacti and applied with scaling factors from Wattch. Sizes of driver
 * transistors, e.g. crossbar input drivers, are computed according to
 * their load capacitance."
 *
 * A Transistor here is just a width (in um) plus the role it plays;
 * capacitance.hh turns widths into Cg/Cd/Ca values.
 */

#ifndef ORION_TECH_TRANSISTOR_HH
#define ORION_TECH_TRANSISTOR_HH

#include "tech/tech_node.hh"

namespace orion::tech {

/**
 * The circuit role a transistor plays. Roles carry Cacti-flavoured
 * default widths (expressed in multiples of the feature size) so that
 * power models can be instantiated without the user supplying any
 * transistor sizes.
 */
enum class Role
{
    /** SRAM pass transistor connecting bitlines and cells (T_p). */
    MemoryPass,
    /** Wordline driver (T_wd) — normally sized for its load instead. */
    WordlineDriver,
    /** Write bitline driver (T_bd). */
    BitlineDriver,
    /** Read bitline precharge transistor (T_c). */
    Precharge,
    /** Memory cell cross-coupled inverter transistor (T_m). */
    MemoryCellInverter,
    /** Sense amplifier input transistor. */
    SenseAmp,
    /** Crossbar crosspoint pass transistor / tri-state connector. */
    CrossbarCrosspoint,
    /** Crossbar input driver (T_id) — normally sized for load. */
    CrossbarInputDriver,
    /** Crossbar output driver (T_od) — normally sized for load. */
    CrossbarOutputDriver,
    /** 2:1 multiplexer transistor inside a mux-tree crossbar. */
    MuxTreePass,
    /** First-level NOR gate in the arbiter grant logic (T_N1). */
    ArbiterNor1,
    /** Second-level NOR gate in the arbiter grant logic (T_N2). */
    ArbiterNor2,
    /** Inverter in arbiter logic (T_I). */
    ArbiterInverter,
    /** Flip-flop internal inverter. */
    FlipFlopInverter,
    /** Minimum-size device, for anything not otherwise covered. */
    Minimum,
};

/** A sized transistor (or, for gates, an input of a sized gate). */
struct Transistor
{
    /** Channel width in um. */
    double widthUm;
    /** Circuit role, used only for introspection/printing. */
    Role role;
};

/**
 * Default transistor for @p role in technology @p tech, using the
 * built-in Cacti-flavoured width table.
 */
Transistor defaultTransistor(const TechNode& tech, Role role);

/**
 * Size a driver so it can drive @p load_cap_f within one
 * logical-effort stage: the returned transistor's gate capacitance is
 * load_cap_f / tech.stageEffort (clamped below at minimum size).
 *
 * @param tech        technology node
 * @param role        role recorded on the returned transistor
 * @param load_cap_f  load capacitance in farads
 */
Transistor sizeDriverForLoad(const TechNode& tech, Role role,
                             double load_cap_f);

} // namespace orion::tech

#endif // ORION_TECH_TRANSISTOR_HH
