/**
 * @file
 * Capacitance primitives: the C_g(T), C_d(T), C_a(T) and C_w(L) of the
 * paper's Table 1, plus the E_x = 1/2 C_x Vdd^2 energy-per-switch rule.
 *
 * Every parameterized capacitance equation in the power models is a sum
 * of these four primitives evaluated on sized transistors and wire
 * lengths.
 */

#ifndef ORION_TECH_CAPACITANCE_HH
#define ORION_TECH_CAPACITANCE_HH

#include "tech/tech_node.hh"
#include "tech/transistor.hh"

namespace orion::tech {

/** Gate capacitance C_g(T) of transistor @p t, in farads. */
double cg(const TechNode& tech, const Transistor& t);

/** Diffusion capacitance C_d(T) of transistor @p t, in farads. */
double cd(const TechNode& tech, const Transistor& t);

/** Total capacitance C_a(T) = C_g(T) + C_d(T), in farads. */
double ca(const TechNode& tech, const Transistor& t);

/** Capacitance C_w(L) of a wire of @p length_um micrometres. */
double cw(const TechNode& tech, double length_um);

} // namespace orion::tech

#endif // ORION_TECH_CAPACITANCE_HH
