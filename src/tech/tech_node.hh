/**
 * @file
 * Technology node description: the substrate the Orion power models are
 * built on.
 *
 * The original Orion obtained per-transistor gate/diffusion capacitances
 * and per-length wire capacitance from Cacti [Wilton-Jouppi 94], applied
 * with Wattch-style linear scaling between feature sizes. This module is
 * a self-contained equivalent: a TechNode carries the handful of
 * technology constants every capacitance equation in the power models
 * needs, with presets for common nodes and a scaling rule.
 *
 * Units used throughout the library:
 *  - lengths and widths: micrometres (um)
 *  - capacitance: farads (F)
 *  - energy: joules (J)
 *  - voltage: volts (V)
 *  - frequency: hertz (Hz)
 */

#ifndef ORION_TECH_TECH_NODE_HH
#define ORION_TECH_TECH_NODE_HH

namespace orion::tech {

/**
 * A CMOS technology node, described by the constants the
 * architectural-level capacitance equations consume.
 *
 * The default 0.1 um node matches the paper's Section 4.2 experimental
 * setup: Vdd = 1.2 V, 2 GHz, and a wire capacitance of 0.36 fF/um
 * (which reproduces the paper's quoted on-chip link capacitance of
 * 1.08 pF per 3 mm exactly).
 */
struct TechNode
{
    /** Drawn feature size in um (e.g. 0.1). */
    double featureUm;
    /** Supply voltage in volts. */
    double vdd;
    /** Nominal clock frequency in Hz. */
    double freqHz;

    /** Gate capacitance per um of transistor width (F/um). */
    double cgPerUm;
    /** Drain/source diffusion capacitance per um of width (F/um). */
    double cdPerUm;
    /** Wire capacitance per um of length (F/um). */
    double cwPerUm;

    /** SRAM cell height in um (the h_cell of Table 2). */
    double cellHeightUm;
    /** SRAM cell width in um (the w_cell of Table 2). */
    double cellWidthUm;
    /** Wire pitch / spacing per routed wire in um (the d_w of Table 2). */
    double wirePitchUm;

    /**
     * Fanout (logical-effort stage effort) used when sizing a driver
     * for a given load: the driver's input capacitance is
     * load / stageEffort.
     */
    double stageEffort;

    /** Energy of one full swing of capacitance @p cap: 1/2 C Vdd^2. */
    double switchEnergy(double cap) const { return 0.5 * cap * vdd * vdd; }

    /** Clock period in seconds. */
    double cyclePeriod() const { return 1.0 / freqHz; }

    /**
     * The paper's on-chip experiments: 0.1 um, 1.2 V, 2 GHz
     * (Section 4.2).
     */
    static TechNode onChip100nm();

    /**
     * The paper's chip-to-chip experiments: same 0.1 um process but
     * routers clocked at 1 GHz (Section 4.4).
     */
    static TechNode chipToChip100nm();

    /**
     * Build a node at an arbitrary feature size by linearly scaling the
     * 0.1 um reference (Wattch-style first-order scaling): geometric
     * quantities scale with feature size, per-um capacitance densities
     * are held, and the caller supplies Vdd and frequency.
     *
     * @param feature_um  target drawn feature size in um (> 0)
     * @param vdd         supply voltage in volts (> 0)
     * @param freq_hz     clock frequency in Hz (> 0)
     */
    static TechNode scaled(double feature_um, double vdd, double freq_hz);
};

} // namespace orion::tech

#endif // ORION_TECH_TECH_NODE_HH
