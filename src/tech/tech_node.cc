#include "tech/tech_node.hh"

#include <cassert>

namespace orion::tech {

namespace {

/**
 * Reference constants at 0.1 um. The wire capacitance of 0.36 fF/um is
 * anchored to the paper's own number (1.08 pF / 3 mm, Section 4.2);
 * gate and diffusion densities are standard first-order values for a
 * 100 nm process (gate-oxide capacitance of roughly 16 fF/um^2 over a
 * 0.1 um channel, junction capacitance slightly below that).
 */
constexpr double kRefFeatureUm = 0.1;
// Gate/diffusion densities follow the Cacti 0.8 um constants that the
// original Orion scaled with Wattch factors (which preserve per-um-of-
// width capacitance at the older node's values, so device caps stay
// comparatively large while wire caps track the new node).
constexpr double kRefCgPerUm = 2.00e-15;   // F per um of gate width
constexpr double kRefCdPerUm = 2.00e-15;   // F per um of drain width
constexpr double kRefCwPerUm = 0.36e-15;   // F per um of wire
constexpr double kRefCellHeightUm = 0.8;   // 16 lambda at lambda = 50nm
constexpr double kRefCellWidthUm = 1.6;    // 32 lambda
constexpr double kRefWirePitchUm = 0.4;    // 8 lambda
constexpr double kStageEffort = 4.0;

TechNode
makeAtReference(double vdd, double freq_hz)
{
    TechNode t;
    t.featureUm = kRefFeatureUm;
    t.vdd = vdd;
    t.freqHz = freq_hz;
    t.cgPerUm = kRefCgPerUm;
    t.cdPerUm = kRefCdPerUm;
    t.cwPerUm = kRefCwPerUm;
    t.cellHeightUm = kRefCellHeightUm;
    t.cellWidthUm = kRefCellWidthUm;
    t.wirePitchUm = kRefWirePitchUm;
    t.stageEffort = kStageEffort;
    return t;
}

} // namespace

TechNode
TechNode::onChip100nm()
{
    return makeAtReference(1.2, 2.0e9);
}

TechNode
TechNode::chipToChip100nm()
{
    return makeAtReference(1.2, 1.0e9);
}

TechNode
TechNode::scaled(double feature_um, double vdd, double freq_hz)
{
    assert(feature_um > 0.0 && vdd > 0.0 && freq_hz > 0.0);
    const double s = feature_um / kRefFeatureUm;
    TechNode t = makeAtReference(vdd, freq_hz);
    t.featureUm = feature_um;
    // Geometry scales with feature size. Per-um capacitance densities
    // are, to first order, constant across nodes (thinner oxide cancels
    // shorter channel for gate cap; wire aspect ratios are tuned to
    // keep per-length capacitance roughly flat).
    t.cellHeightUm *= s;
    t.cellWidthUm *= s;
    t.wirePitchUm *= s;
    return t;
}

} // namespace orion::tech
