#include "sim/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace orion::sim {

void
Accumulator::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Accumulator::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(double bin_width, std::size_t num_bins)
    : binWidth_(bin_width), bins_(num_bins, 0)
{
    assert(bin_width > 0.0 && num_bins > 0);
}

void
Histogram::add(double v)
{
    ++total_;
    if (v < 0.0) {
        ++bins_[0];
        return;
    }
    const auto idx = static_cast<std::size_t>(v / binWidth_);
    if (idx >= bins_.size())
        ++overflow_;
    else
        ++bins_[idx];
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

double
Histogram::quantile(double q) const
{
    assert(q >= 0.0 && q <= 1.0);
    if (total_ == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        if (seen + bins_[i] >= target) {
            // Interpolate within the bin: samples are assumed evenly
            // spread across [i*w, (i+1)*w), so the quantile lands at
            // the fraction of the bin's mass the target cuts through.
            const double frac =
                static_cast<double>(target - seen) /
                static_cast<double>(bins_[i]);
            return (static_cast<double>(i) + frac) * binWidth_;
        }
        seen += bins_[i];
    }
    return static_cast<double>(bins_.size()) * binWidth_;
}

} // namespace orion::sim
