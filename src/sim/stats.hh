/**
 * @file
 * Lightweight statistics primitives: counters, running accumulators and
 * fixed-bin histograms, used by the network layer to collect latency
 * and throughput numbers.
 */

#ifndef ORION_SIM_STATS_HH
#define ORION_SIM_STATS_HH

#include <cstdint>
#include <vector>

namespace orion::sim {

/** Running mean / min / max / count accumulator. */
class Accumulator
{
  public:
    void add(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width-bin histogram with an overflow bin. */
class Histogram
{
  public:
    /**
     * @param bin_width  width of each bin (> 0)
     * @param num_bins   number of regular bins; values beyond go into
     *                   the overflow bin
     */
    Histogram(double bin_width, std::size_t num_bins);

    void add(double v);
    void reset();

    std::uint64_t binCount(std::size_t i) const { return bins_[i]; }
    std::uint64_t overflowCount() const { return overflow_; }
    std::size_t numBins() const { return bins_.size(); }
    double binWidth() const { return binWidth_; }
    std::uint64_t total() const { return total_; }

    /** Value below which fraction @p q of samples fall, interpolated
     * linearly within the containing bin (samples are assumed evenly
     * spread across a bin's width); the overflow bin yields the upper
     * edge of the last regular bin. */
    double quantile(double q) const;

  private:
    double binWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace orion::sim

#endif // ORION_SIM_STATS_HH
