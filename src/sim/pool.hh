/**
 * @file
 * Recycling object pool for shared_ptr-managed hot-path objects.
 *
 * Packet metadata (router::PacketInfo) is allocated once per packet
 * and freed when the last flit referencing it dies — at steady state
 * that is one heap allocation and one deallocation per packet, plus
 * the route vector each carries. The pool replaces that churn with a
 * free list: a released object (route capacity and all) is parked and
 * handed back out by the next acquire().
 *
 * Lifetime: handed-out pointers carry a deleter that owns a
 * shared_ptr to the pool's internal state, so objects released after
 * the RecyclingPool itself is gone still land in a live free list
 * (which is then dropped with the last of them). A recycled object is
 * NOT reset — the caller must reassign every field, which
 * Node::generateStage does anyway; the payoff is that its route
 * vector keeps its capacity.
 *
 * Events need no such treatment: sim::Event is a trivially copyable
 * value passed by reference through EventBus::emit and never heap
 * allocated.
 */

#ifndef ORION_SIM_POOL_HH
#define ORION_SIM_POOL_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/sync.hh"

namespace orion::sim {

/** Free-list recycler for shared_ptr-managed T objects. */
template <typename T>
class RecyclingPool
{
  public:
    RecyclingPool() : state_(std::make_shared<State>()) {}

    /**
     * Hand out an object: the most recently released one if any is
     * parked, otherwise a freshly constructed one. Recycled objects
     * keep their previous field values — assign every field before
     * use.
     */
    std::shared_ptr<T> acquire()
    {
        State& st = *state_;
        const core::RoleGuard guard(st.serial);
        std::unique_ptr<T> owner;
        if (!st.free.empty()) {
            owner = std::move(st.free.back());
            st.free.pop_back();
            ++st.recycled;
        } else {
            owner = std::make_unique<T>();
            ++st.allocated;
        }
        // If the shared_ptr constructor itself fails to allocate its
        // control block it invokes the deleter, which parks the object
        // back on the free list — nothing leaks, nothing double-frees.
        const Recycler recycler{state_};
        return std::shared_ptr<T>(owner.release(), recycler);
    }

    /// @name Introspection (tests)
    /// @{
    /** Objects constructed over the pool's lifetime. */
    std::uint64_t
    allocatedCount() const
    {
        const core::RoleGuard guard(state_->serial);
        return state_->allocated;
    }
    /** acquire() calls served from the free list. */
    std::uint64_t
    recycledCount() const
    {
        const core::RoleGuard guard(state_->serial);
        return state_->recycled;
    }
    /** Objects currently parked and available for reuse. */
    std::size_t
    freeCount() const
    {
        const core::RoleGuard guard(state_->serial);
        return state_->free.size();
    }
    /** Objects currently handed out (alive shared_ptrs). */
    std::uint64_t
    liveCount() const
    {
        const core::RoleGuard guard(state_->serial);
        return state_->allocated + state_->recycled -
               state_->returned;
    }
    /// @}

  private:
    /**
     * The shared free list. One pool serves one Simulation today;
     * under intra-sim parallelism (ROADMAP 1b) partitions will either
     * get per-thread pools or this Role becomes a Mutex — either way
     * every touch point below is already capability-checked.
     */
    struct State
    {
        core::Role serial;
        std::vector<std::unique_ptr<T>> free ORION_GUARDED_BY(serial);
        std::uint64_t allocated ORION_GUARDED_BY(serial) = 0;
        std::uint64_t recycled ORION_GUARDED_BY(serial) = 0;
        std::uint64_t returned ORION_GUARDED_BY(serial) = 0;
    };

    struct Recycler
    {
        std::shared_ptr<State> state;

        void operator()(T* object) const
        {
            std::unique_ptr<T> owner(object);
            const core::RoleGuard guard(state->serial);
            ++state->returned;
            // push_back can only fail by throwing bad_alloc, in which
            // case `owner` frees the object instead of parking it.
            state->free.push_back(std::move(owner));
        }
    };

    std::shared_ptr<State> state_;
};

} // namespace orion::sim

#endif // ORION_SIM_POOL_HH
