#include "sim/simulator.hh"

namespace orion::sim {

void
Simulator::add(Module* m)
{
    modules_.push_back(m);
}

void
Simulator::addChannel(ChannelBase* c)
{
    channels_.push_back(c);
}

void
Simulator::step()
{
    for (auto* m : modules_)
        m->cycle(now_);
    for (auto* c : channels_)
        c->advanceChannel();
    ++now_;
}

void
Simulator::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

bool
Simulator::runUntil(const std::function<bool()>& done, Cycle max_cycles)
{
    for (Cycle i = 0; i < max_cycles; ++i) {
        step();
        if (done())
            return true;
    }
    return done();
}

} // namespace orion::sim
