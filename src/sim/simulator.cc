#include "sim/simulator.hh"

#include <cassert>

namespace orion::sim {

void
Simulator::add(Module* m)
{
    modules_.push_back(m);
}

void
Simulator::addChannel(ChannelBase* c)
{
    // Write-scheduled channels enqueue themselves on pendingAdvance_
    // when written; anything else keeps the advance-every-cycle
    // contract. pendingAdvance_'s address must stay stable for the
    // simulator's lifetime (channels capture it), which holds because
    // Simulator is neither copyable nor movable.
    if (!c->scheduleWith(&pendingAdvance_))
        alwaysAdvance_.push_back(c);
}

void
Simulator::addAudit(std::string name, std::function<void()> fn)
{
    audits_.push_back({std::move(name), std::move(fn)});
}

void
Simulator::runAudits() const
{
    for (const auto& a : audits_)
        a.fn();
}

void
Simulator::addPeriodic(std::string name, Cycle interval,
                       std::function<void(Cycle)> fn)
{
    assert(interval > 0 && "periodic hooks need a nonzero interval");
    periodics_.push_back({std::move(name), interval, std::move(fn)});
}

void
Simulator::step()
{
    if (profiler_ != nullptr) {
        stepProfiled();
        return;
    }
    for (auto* m : modules_)
        m->cycle(now_);
    // Advance order equals write order (deterministic: modules run in
    // registration order), and each advance touches only its own
    // channel, so scheduling preserves the all-channels semantics
    // exactly while the boundary cost scales with messages in flight
    // rather than wires in the network.
    for (auto* c : alwaysAdvance_)
        c->advanceChannel();
    for (auto* c : pendingAdvance_)
        c->advanceChannel();
    pendingAdvance_.clear();
    ++now_;
    // Audits observe the post-advance state: every channel's staged
    // slot is empty, so in-flight messages are exactly the current
    // slots — the well-defined cycle boundary the invariants assume.
    if (auditInterval_ != 0 && !audits_.empty() &&
        now_ % auditInterval_ == 0) {
        runAudits();
    }
    for (const auto& p : periodics_) {
        if (now_ % p.interval == 0)
            p.fn(now_);
    }
}

void
Simulator::stepProfiled()
{
    // Same cycle semantics as step(), with wall-time marks between
    // stages on sampled cycles (core::PhaseProfiler::kStride). The
    // profiler never touches simulation state, so the event sequence —
    // and therefore every result — is identical to the unprofiled
    // path.
    using Phase = core::PhaseProfiler::Phase;
    profiler_->beginCycle();
    for (auto* m : modules_)
        m->cycle(now_);
    profiler_->phaseDone(Phase::RouterAdvance);
    for (auto* c : alwaysAdvance_)
        c->advanceChannel();
    for (auto* c : pendingAdvance_)
        c->advanceChannel();
    pendingAdvance_.clear();
    profiler_->phaseDone(Phase::ChannelAdvance);
    ++now_;
    if (auditInterval_ != 0 && !audits_.empty() &&
        now_ % auditInterval_ == 0) {
        runAudits();
    }
    profiler_->phaseDone(Phase::Audit);
    for (const auto& p : periodics_) {
        if (now_ % p.interval == 0)
            p.fn(now_);
    }
    profiler_->phaseDone(Phase::Periodic);
}

void
Simulator::run(Cycle cycles)
{
    if (cancel_ == nullptr) {
        for (Cycle i = 0; i < cycles; ++i)
            step();
        return;
    }
    // Cancellation-aware loop: one relaxed load per cycle, plus a
    // wall-clock deadline poll every kCancelPollCycles (clock reads
    // are far too slow for the per-cycle path).
    for (Cycle i = 0; i < cycles; ++i) {
        if (i % core::kCancelPollCycles == 0)
            cancel_->poll();
        if (cancel_->cancelled())
            return;
        step();
    }
}

bool
Simulator::runUntil(const std::function<bool()>& done, Cycle max_cycles)
{
    if (cancel_ == nullptr) {
        for (Cycle i = 0; i < max_cycles; ++i) {
            step();
            if (done())
                return true;
        }
        return done();
    }
    for (Cycle i = 0; i < max_cycles; ++i) {
        if (i % core::kCancelPollCycles == 0)
            cancel_->poll();
        if (cancel_->cancelled())
            return done();
        step();
        if (done())
            return true;
    }
    return done();
}

} // namespace orion::sim
