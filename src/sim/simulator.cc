#include "sim/simulator.hh"

#include <cassert>

namespace orion::sim {

void
Simulator::add(Module* m)
{
    modules_.push_back(m);
}

void
Simulator::addChannel(ChannelBase* c)
{
    channels_.push_back(c);
}

void
Simulator::addAudit(std::string name, std::function<void()> fn)
{
    audits_.push_back({std::move(name), std::move(fn)});
}

void
Simulator::runAudits() const
{
    for (const auto& a : audits_)
        a.fn();
}

void
Simulator::addPeriodic(std::string name, Cycle interval,
                       std::function<void(Cycle)> fn)
{
    assert(interval > 0 && "periodic hooks need a nonzero interval");
    periodics_.push_back({std::move(name), interval, std::move(fn)});
}

void
Simulator::step()
{
    for (auto* m : modules_)
        m->cycle(now_);
    for (auto* c : channels_)
        c->advanceChannel();
    ++now_;
    // Audits observe the post-advance state: every channel's staged
    // slot is empty, so in-flight messages are exactly the current
    // slots — the well-defined cycle boundary the invariants assume.
    if (auditInterval_ != 0 && !audits_.empty() &&
        now_ % auditInterval_ == 0) {
        runAudits();
    }
    for (const auto& p : periodics_) {
        if (now_ % p.interval == 0)
            p.fn(now_);
    }
}

void
Simulator::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

bool
Simulator::runUntil(const std::function<bool()>& done, Cycle max_cycles)
{
    for (Cycle i = 0; i < max_cycles; ++i) {
        step();
        if (done())
            return true;
    }
    return done();
}

} // namespace orion::sim
