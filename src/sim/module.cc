#include "sim/module.hh"

namespace orion::sim {

Module::Module(std::string name, int node)
    : name_(std::move(name)), node_(node)
{
}

} // namespace orion::sim
