#include "sim/rng.hh"

#include <cassert>

namespace orion::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t rate_index,
           std::uint64_t seed_index)
{
    // Feed the triple through the same splitmix64 stream the Rng
    // constructor uses for state expansion: advance a counter seeded
    // by `base`, folding each index in via multiplication by a large
    // odd constant so (1, 0) and (0, 1) land far apart.
    std::uint64_t x = base;
    (void)splitmix64(x);
    x ^= rate_index * 0x9e3779b97f4a7c15ULL;
    (void)splitmix64(x);
    x ^= seed_index * 0xbf58476d1ce4e5b9ULL;
    return splitmix64(x);
}

} // namespace orion::sim
