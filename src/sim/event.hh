/**
 * @file
 * The event subsystem the power models hook into.
 *
 * Paper Section 2.1: "The integration of power models is based on the
 * event subsystem of LSE... Users define events associated with each
 * module. Power models in the power simulation library are hooked to
 * these events so when an event occurs during the execution, it
 * triggers the specific power model, which calculates and accumulates
 * the energy consumed."
 *
 * Modules emit typed Event records on a shared EventBus; listeners
 * (notably net::PowerMonitor) subscribe per event type. Events carry
 * the switching-activity deltas the energy equations need, already
 * computed by the emitting module from real payload bits.
 */

#ifndef ORION_SIM_EVENT_HH
#define ORION_SIM_EVENT_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/sync.hh"

namespace orion::sim {

/** Simulation time in cycles. */
using Cycle = std::uint64_t;

/** Kinds of power-relevant events modules can emit. */
enum class EventType : unsigned
{
    /** A flit was written into an input FIFO buffer. */
    BufferWrite,
    /** A flit was read out of an input FIFO buffer. */
    BufferRead,
    /** A switch/VC arbitration was performed. */
    Arbitration,
    /** A VC allocation arbitration was performed. */
    VcAllocation,
    /** A flit traversed the crossbar. */
    CrossbarTraversal,
    /** A flit was written into the central buffer. */
    CentralBufferWrite,
    /** A flit was read from the central buffer. */
    CentralBufferRead,
    /** A flit traversed an inter-router link. */
    LinkTraversal,
    /** A credit was returned upstream. */
    CreditTransfer,
    /** A packet entered the network (head flit created at source). */
    PacketInjected,
    /** A packet fully left the network (tail flit ejected at sink). */
    PacketEjected,
};

/** Number of distinct event types. */
constexpr unsigned kNumEventTypes =
    static_cast<unsigned>(EventType::PacketEjected) + 1;

/**
 * One dynamic event. The two delta fields carry switching-activity
 * counts whose meaning depends on the event type:
 *
 *  - BufferWrite:        deltaA = switching write bitlines (delta_bw),
 *                        deltaB = flipped memory cells (delta_bc)
 *  - Arbitration /
 *    VcAllocation:       deltaA = changed request lines,
 *                        deltaB = toggled priority flip-flops
 *  - CrossbarTraversal / CentralBuffer* / LinkTraversal:
 *                        deltaA = toggling data wires
 *  - PacketEjected:      deltaA = packet latency in cycles
 */
struct Event
{
    EventType type;
    /** Network node the emitting module belongs to (-1 if none). */
    int node;
    /** Component instance within the node (e.g. input port index). */
    int component;
    /** Switching-activity / payload field A (see above). */
    std::uint32_t deltaA;
    /** Switching-activity / payload field B (see above). */
    std::uint32_t deltaB;
    /** Cycle at which the event occurred. */
    Cycle cycle;
};

/**
 * Synchronous publish/subscribe bus. emit() dispatches to all
 * listeners of the event's type immediately, in subscription order.
 *
 * Dispatch is a flat loop over preresolved {function pointer, context}
 * pairs — no std::function indirection on the hot path. Hot listeners
 * (the power monitor, telemetry) subscribe through subscribeRaw();
 * std::function listeners are boxed once at subscription time and
 * dispatched through a trampoline, so both kinds share one handler
 * array and fire in subscription order. A type with no subscribers
 * costs one counter increment and an empty-loop test per emit.
 *
 * Phase discipline: a bus has a registration phase (Network wiring +
 * Simulation setup, handler arrays mutate) followed by a dispatch
 * phase (the run, handler arrays are read-only and only the emit
 * counters move). Both phases touch the same state from exactly one
 * thread — today the whole Simulation is single-threaded, and under
 * intra-sim parallelism registration stays on the coordinating
 * thread. The `serial_` Role capability makes that discipline
 * machine-checked at zero runtime cost: every handler-array or
 * counter access must hold the role, so when partitioned routers
 * start emitting, the access points that must become concurrency-safe
 * (or stay coordinator-only) are already enumerated.
 */
class EventBus
{
  public:
    using Listener = std::function<void(const Event&)>;

    /** Preresolved handler: @p ctx is the subscriber instance. */
    using RawHandler = void (*)(void* ctx, const Event& ev);

    /** Subscribe @p fn to all events of type @p type. */
    void subscribe(EventType type, Listener fn);

    /**
     * Subscribe a raw handler to @p type. @p fn must outlive the bus
     * (it is a static trampoline — a captureless lambda or a
     * file-static function — into @p ctx's member function; the
     * orion_analyze `raw-subscribe` rule enforces this); no ownership
     * is taken of @p ctx.
     */
    void subscribeRaw(EventType type, RawHandler fn, void* ctx);

    /** Publish @p ev to all subscribers of its type. */
    void
    emit(const Event& ev)
    {
        const core::RoleGuard guard(serial_);
        const unsigned idx = static_cast<unsigned>(ev.type);
        ++counts_[idx];
        for (const Handler& h : handlers_[idx])
            h.fn(h.ctx, ev);
    }

    /** Total events emitted, by type (includes unsubscribed types). */
    std::uint64_t
    emittedCount(EventType type) const
    {
        const core::RoleGuard guard(serial_);
        return counts_[static_cast<unsigned>(type)];
    }

  private:
    struct Handler
    {
        RawHandler fn;
        void* ctx;
    };

    /** Registration-then-dispatch serialization domain (see above). */
    core::Role serial_;
    std::array<std::vector<Handler>, kNumEventTypes> handlers_
        ORION_GUARDED_BY(serial_);
    /** Boxed std::function listeners (stable addresses for ctx). */
    std::vector<std::unique_ptr<Listener>> owned_
        ORION_GUARDED_BY(serial_);
    std::array<std::uint64_t, kNumEventTypes> counts_
        ORION_GUARDED_BY(serial_){};
};

/** Human-readable name of an event type (for reports/tests). */
const char* eventTypeName(EventType type);

} // namespace orion::sim

#endif // ORION_SIM_EVENT_HH
