#include "sim/event.hh"

namespace orion::sim {

namespace {

/** Trampoline dispatching a boxed std::function listener. */
void
invokeListener(void* ctx, const Event& ev)
{
    (*static_cast<EventBus::Listener*>(ctx))(ev);
}

} // namespace

void
EventBus::subscribe(EventType type, Listener fn)
{
    Listener* boxed = nullptr;
    {
        const core::RoleGuard guard(serial_);
        owned_.push_back(std::make_unique<Listener>(std::move(fn)));
        boxed = owned_.back().get();
    }
    subscribeRaw(type, &invokeListener, boxed);
}

void
EventBus::subscribeRaw(EventType type, RawHandler fn, void* ctx)
{
    const core::RoleGuard guard(serial_);
    handlers_[static_cast<unsigned>(type)].push_back({fn, ctx});
}

const char*
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::BufferWrite:        return "buffer_write";
      case EventType::BufferRead:         return "buffer_read";
      case EventType::Arbitration:        return "arbitration";
      case EventType::VcAllocation:       return "vc_allocation";
      case EventType::CrossbarTraversal:  return "crossbar_traversal";
      case EventType::CentralBufferWrite: return "central_buffer_write";
      case EventType::CentralBufferRead:  return "central_buffer_read";
      case EventType::LinkTraversal:      return "link_traversal";
      case EventType::CreditTransfer:     return "credit_transfer";
      case EventType::PacketInjected:     return "packet_injected";
      case EventType::PacketEjected:      return "packet_ejected";
    }
    return "unknown";
}

} // namespace orion::sim
