#include "sim/event.hh"

namespace orion::sim {

void
EventBus::subscribe(EventType type, Listener fn)
{
    listeners_[static_cast<unsigned>(type)].push_back(std::move(fn));
}

void
EventBus::emit(const Event& ev)
{
    const unsigned idx = static_cast<unsigned>(ev.type);
    ++counts_[idx];
    for (auto& fn : listeners_[idx])
        fn(ev);
}

std::uint64_t
EventBus::emittedCount(EventType type) const
{
    return counts_[static_cast<unsigned>(type)];
}

const char*
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::BufferWrite:        return "buffer_write";
      case EventType::BufferRead:         return "buffer_read";
      case EventType::Arbitration:        return "arbitration";
      case EventType::VcAllocation:       return "vc_allocation";
      case EventType::CrossbarTraversal:  return "crossbar_traversal";
      case EventType::CentralBufferWrite: return "central_buffer_write";
      case EventType::CentralBufferRead:  return "central_buffer_read";
      case EventType::LinkTraversal:      return "link_traversal";
      case EventType::CreditTransfer:     return "credit_transfer";
      case EventType::PacketInjected:     return "packet_injected";
      case EventType::PacketEjected:      return "packet_ejected";
    }
    return "unknown";
}

} // namespace orion::sim
