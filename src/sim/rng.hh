/**
 * @file
 * Deterministic random number generation for reproducible simulations.
 *
 * A small xoshiro256** implementation: fast, high-quality, and — unlike
 * std::mt19937 uses through std::uniform_* distributions — guaranteed
 * to produce identical streams across standard libraries, which the
 * determinism tests rely on.
 */

#ifndef ORION_SIM_RNG_HH
#define ORION_SIM_RNG_HH

#include <cstdint>

namespace orion::sim {

/** xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound > 0), unbiased. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

/**
 * Derive an independent per-point seed from a base seed and a 2-D
 * point index — the scheme behind sweep parallelism: every
 * (rate index, seed index) cell of a sweep gets its own RNG stream,
 * computed from the inputs alone, so a sweep point's results never
 * depend on which points ran before it (or concurrently with it).
 *
 * splitmix64-style finalization of the mixed triple; (0, 0) maps to
 * the base seed's own stream family but NOT to @p base itself —
 * derived streams are decorrelated from runs seeded with raw small
 * integers.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t rate_index,
                         std::uint64_t seed_index);

} // namespace orion::sim

#endif // ORION_SIM_RNG_HH
