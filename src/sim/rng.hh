/**
 * @file
 * Deterministic random number generation for reproducible simulations.
 *
 * A small xoshiro256** implementation: fast, high-quality, and — unlike
 * std::mt19937 uses through std::uniform_* distributions — guaranteed
 * to produce identical streams across standard libraries, which the
 * determinism tests rely on.
 */

#ifndef ORION_SIM_RNG_HH
#define ORION_SIM_RNG_HH

#include <cstdint>

namespace orion::sim {

/** xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound > 0), unbiased. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace orion::sim

#endif // ORION_SIM_RNG_HH
