/**
 * @file
 * Module base class and registered channels — the structural modeling
 * layer (paper Section 2.1).
 *
 * "In LSE, physical hardware blocks are modeled as logical functional
 * modules that communicate through ports. Data is sent between module
 * ports via message passing."
 *
 * Here a Module is a named hardware block with a per-cycle evaluate
 * hook; Channel<T> is a 1-cycle registered point-to-point port pair
 * (write this cycle, readable next cycle). Registering every
 * inter-module connection breaks all combinational cycles, making
 * evaluation order within a cycle irrelevant across modules.
 */

#ifndef ORION_SIM_MODULE_HH
#define ORION_SIM_MODULE_HH

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event.hh"

namespace orion::sim {

class Simulator;

/** Base class for all hardware modules. */
class Module
{
  public:
    /**
     * @param name  hierarchical instance name (for reports)
     * @param node  network node id this module belongs to (-1 if none)
     */
    Module(std::string name, int node);
    virtual ~Module() = default;

    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    const std::string& name() const { return name_; }
    int node() const { return node_; }

    /**
     * Evaluate one cycle. Modules may read channel values (registered
     * last cycle) and write channel inputs (visible next cycle).
     */
    virtual void cycle(Cycle now) = 0;

  private:
    std::string name_;
    int node_;
};

class ChannelBase;

/**
 * A 1-cycle registered wire carrying at most one message per cycle.
 *
 * The producer calls write() during its cycle() evaluation; the
 * consumer sees the message via read() during the *next* cycle, after
 * the simulator advances all channels at the cycle boundary.
 *
 * Channels registered with a Simulator are advanced by write
 * scheduling: write() appends the channel to the simulator's
 * pending-advance list, so the cycle boundary touches only channels
 * that actually carry a message instead of walking every wire in the
 * network. A consumer-side wake flag (setWakeFlag) is raised whenever
 * a message becomes readable, giving consumers a cheap "anything
 * new?" test for idle fast paths.
 */
template <typename T>
class Channel
{
  public:
    /** Stage a message for delivery next cycle. At most one per cycle. */
    void
    write(T msg)
    {
        assert(!staged_.has_value() && "channel written twice in a cycle");
        staged_ = std::move(msg);
        if (advanceQueue_)
            advanceQueue_->push_back(advanceSelf_);
    }

    /** True if a message is available this cycle. */
    bool valid() const { return current_.has_value(); }

    /** The message delivered this cycle (valid() must be true). */
    const T&
    peek() const
    {
        assert(current_.has_value());
        return *current_;
    }

    /** Consume and return this cycle's message. */
    T
    read()
    {
        assert(current_.has_value());
        T v = std::move(*current_);
        current_.reset();
        return v;
    }

    /**
     * Advance the register: called by the simulator between cycles.
     * An unconsumed message stays available; a new message arriving
     * while one is still pending is an overrun (consumers must drain
     * at least as fast as producers send — one per cycle).
     */
    void
    advance()
    {
        if (!staged_.has_value())
            return;
        assert(!current_.has_value() &&
               "channel overrun: message not consumed");
        current_ = std::move(staged_);
        staged_.reset();
        if (wakeFlag_)
            *wakeFlag_ = true;
    }

    /** True if something was staged this cycle (producer-side query). */
    bool staged() const { return staged_.has_value(); }

    /**
     * Raise @p flag whenever a message becomes readable on this
     * channel. Consumers with an idle fast path (quiescent routers)
     * register a wake flag on every input so skipping a cycle can
     * never strand an in-flight message.
     */
    void setWakeFlag(bool* flag) { wakeFlag_ = flag; }

    /**
     * Attach this channel to a simulator's pending-advance list
     * (called via ChannelBase::scheduleWith; @p self is the channel's
     * registered identity). Once attached, only written channels are
     * advanced at cycle boundaries.
     */
    void
    setAdvanceQueue(std::vector<ChannelBase*>* queue, ChannelBase* self)
    {
        advanceQueue_ = queue;
        advanceSelf_ = self;
    }

    /// @name Audit-only introspection (net::NetworkAuditor)
    /// @{
    /** The in-delivery message, or nullptr (does not consume). */
    const T*
    auditCurrent() const
    {
        return current_.has_value() ? &*current_ : nullptr;
    }

    /** The staged (not yet delivered) message, or nullptr. */
    const T*
    auditStaged() const
    {
        return staged_.has_value() ? &*staged_ : nullptr;
    }
    /// @}

  private:
    std::optional<T> staged_;
    std::optional<T> current_;
    /** Simulator pending-advance list this channel enqueues on. */
    std::vector<ChannelBase*>* advanceQueue_ = nullptr;
    ChannelBase* advanceSelf_ = nullptr;
    /** Consumer wake flag raised when a message becomes readable. */
    bool* wakeFlag_ = nullptr;
};

/** Type-erased hook for the simulator to advance channels. */
class ChannelBase
{
  public:
    virtual ~ChannelBase() = default;
    virtual void advanceChannel() = 0;

    /**
     * Opt into write-scheduled advancing: enqueue on @p queue at each
     * write and be advanced only then. Returns false when the channel
     * kind does not support scheduling (the simulator then advances it
     * unconditionally every cycle).
     */
    virtual bool
    scheduleWith(std::vector<ChannelBase*>* queue)
    {
        (void)queue;
        return false;
    }
};

/** Adapter registering a Channel<T> with the simulator. */
template <typename T>
class RegisteredChannel : public ChannelBase, public Channel<T>
{
  public:
    void advanceChannel() override { this->advance(); }

    bool
    scheduleWith(std::vector<ChannelBase*>* queue) override
    {
        this->setAdvanceQueue(queue, this);
        return true;
    }
};

} // namespace orion::sim

#endif // ORION_SIM_MODULE_HH
