/**
 * @file
 * The cycle-driven simulation loop.
 *
 * Each cycle: every module's cycle() hook runs (order-independent
 * across modules, because all inter-module channels are registered),
 * then all channels advance. The simulator owns the event bus modules
 * publish power events on.
 */

#ifndef ORION_SIM_SIMULATOR_HH
#define ORION_SIM_SIMULATOR_HH

#include <functional>
#include <string>
#include <vector>

#include "core/cancel.hh"
#include "core/profile.hh"
#include "sim/event.hh"
#include "sim/module.hh"

namespace orion::sim {

/** Owner of modules, channels and the cycle loop. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Register a module. The caller retains ownership. */
    void add(Module* m);

    /** Register a channel to be advanced at each cycle boundary. */
    void addChannel(ChannelBase* c);

    /** The event bus modules emit on. */
    EventBus& bus() { return bus_; }

    /** Current cycle (number of completed cycles). */
    Cycle now() const { return now_; }

    /** Run exactly @p cycles cycles (or until the cancel token, if
     * one is installed, fires). */
    void run(Cycle cycles);

    /**
     * Run until @p done returns true (checked after each cycle), the
     * installed cancel token (if any) fires, or @p max_cycles
     * additional cycles elapse.
     *
     * @return true if @p done fired, false if the cap was hit or the
     *         run was cancelled (check cancelled() to distinguish)
     */
    bool runUntil(const std::function<bool()>& done, Cycle max_cycles);

    /// @name Cooperative cancellation (see core/cancel.hh)
    /// @{
    /**
     * Install @p token (nullptr to clear). With a token installed,
     * run()/runUntil() check token->cancelled() every cycle (one
     * relaxed atomic load) and token->poll() (the wall-clock deadline
     * check) every core::kCancelPollCycles cycles, returning early
     * once the token fires. Without a token the loops are exactly the
     * pre-cancellation code — the hot path pays nothing
     * (BENCH_kernel's ORION_KERNEL_CANCEL leg guards the with-token
     * cost too).
     */
    void setCancel(core::CancelToken* token) { cancel_ = token; }
    core::CancelToken* cancel() const { return cancel_; }

    /** True if a token is installed and has fired. */
    bool
    cancelled() const
    {
        return cancel_ != nullptr && cancel_->cancelled();
    }
    /// @}

    /** Number of registered modules (paper quotes 59 for a 4x4 VC net). */
    std::size_t moduleCount() const { return modules_.size(); }

    /// @name Network-wide audits (see docs/QUALITY.md)
    /// @{
    /**
     * Register a named audit. Audits run at every audit-interval
     * boundary (see setAuditInterval) and whenever runAudits() is
     * called explicitly (e.g. at drain). An audit signals violation by
     * throwing (typically core::CheckFailure via ORION_CHECK).
     */
    void addAudit(std::string name, std::function<void()> fn);

    /**
     * Run every registered audit each @p cycles cycles (0 disables
     * periodic auditing; explicit runAudits() calls still work).
     */
    void setAuditInterval(Cycle cycles) { auditInterval_ = cycles; }
    Cycle auditInterval() const { return auditInterval_; }

    /** Run all registered audits now, in registration order. */
    void runAudits() const;

    std::size_t auditCount() const { return audits_.size(); }
    /// @}

    /// @name Periodic hooks (telemetry samplers; see net::WindowedSampler)
    /// @{
    /**
     * Register a hook that runs at every cycle boundary where
     * now() % interval == 0, after the cycle's modules, channels and
     * audits. Hooks observe the same post-advance state audits do and
     * must not mutate simulation state. @p interval must be > 0.
     */
    void addPeriodic(std::string name, Cycle interval,
                     std::function<void(Cycle)> fn);

    std::size_t periodicCount() const { return periodics_.size(); }
    /// @}

    /// @name Phase profiling (see core/profile.hh)
    /// @{
    /**
     * Attach a phase profiler (nullptr to detach). With one attached,
     * step() times its stages on the profiler's sampling stride; the
     * profiler only reads clocks, so results stay bit-identical.
     * Detached, step() pays a single null-pointer test per cycle.
     */
    void setProfiler(core::PhaseProfiler* p) { profiler_ = p; }
    core::PhaseProfiler* profiler() const { return profiler_; }
    /// @}

  private:
    struct Audit
    {
        std::string name;
        std::function<void()> fn;
    };

    struct Periodic
    {
        std::string name;
        Cycle interval;
        std::function<void(Cycle)> fn;
    };

    void step();
    void stepProfiled();

    EventBus bus_;
    std::vector<Module*> modules_;
    /** Channels written this cycle, awaiting their boundary advance
     * (write-scheduled; see Channel::setAdvanceQueue). */
    std::vector<ChannelBase*> pendingAdvance_;
    /** Channels that opted out of write scheduling: advanced every
     * cycle, the pre-scheduling behaviour. */
    std::vector<ChannelBase*> alwaysAdvance_;
    std::vector<Audit> audits_;
    std::vector<Periodic> periodics_;
    Cycle auditInterval_ = 0;
    Cycle now_ = 0;
    /** Optional cooperative-cancellation token (not owned). */
    core::CancelToken* cancel_ = nullptr;
    /** Optional phase profiler (not owned; see setProfiler). */
    core::PhaseProfiler* profiler_ = nullptr;
};

} // namespace orion::sim

#endif // ORION_SIM_SIMULATOR_HH
