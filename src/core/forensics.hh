/**
 * @file
 * Forensic snapshots: a JSON dump of network state taken when a run
 * fails (check failure, watchdog stall), so a failed sweep point can
 * be diagnosed after the sweep finishes. Format documented in
 * docs/ROBUSTNESS.md.
 */

#ifndef ORION_CORE_FORENSICS_HH
#define ORION_CORE_FORENSICS_HH

#include <string>

#include "core/simulation.hh"

namespace orion {

/**
 * Serialize the current state of @p sim as a single JSON object:
 * stop reason, cycle, packet/sample counters, per-router occupancy
 * and ledgers, per-router output credits, per-endpoint queues, and
 * the tail of the fault log (when fault injection is active).
 *
 * @p reason is a free-form description of why the snapshot was taken
 * (typically the check-failure diagnostic).
 */
std::string forensicSnapshot(Simulation& sim,
                             const std::string& reason);

} // namespace orion

#endif // ORION_CORE_FORENSICS_HH
