/**
 * @file
 * Process-isolated execution of one sweep cell (docs/ROBUSTNESS.md,
 * "Survivable runs").
 *
 * `orion_sweep --isolate` runs every (rate, seed) cell in a
 * fork/exec'd orion_sim subprocess instead of in-process, so a cell
 * that SIGSEGVs, OOMs, or wedges past its deadline is recorded as a
 * structured per-cell failure (exit status or signal captured, stderr
 * tail attached) while every other cell completes normally. The child
 * writes its report with `orion_sim --report-out FILE` using the
 * same exact hexfloat serialization the checkpoint journal uses, so
 * isolated results merge byte-identically with in-process ones.
 *
 * Resource fencing: the child gets RLIMIT_AS / RLIMIT_CPU caps (when
 * configured) and a kill-on-timeout watchdog in the parent — a
 * deadline overrun is first given the cooperative grace of SIGTERM,
 * then SIGKILL.
 */

#ifndef ORION_CORE_ISOLATE_HH
#define ORION_CORE_ISOLATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/cancel.hh"

namespace orion::core {

/** How to run one isolated worker. */
struct IsolateOptions
{
    /** argv for the child, argv[0] first (the orion_sim binary). */
    std::vector<std::string> argv;
    /** Wall-clock deadline in seconds; <= 0 means none. On expiry
     * the child gets SIGTERM, then SIGKILL one second later. */
    double timeoutSeconds = 0.0;
    /** Address-space cap in bytes (RLIMIT_AS); 0 means unlimited. */
    std::uint64_t maxAddressSpaceBytes = 0;
    /** CPU-seconds cap (RLIMIT_CPU); 0 means unlimited. */
    std::uint64_t maxCpuSeconds = 0;
    /** Bytes of the child's stderr retained (the *tail* — the end of
     * the stream is where crash diagnostics land). */
    std::size_t stderrTailBytes = 4096;
    /** Route the child's stdout to /dev/null (the parent reads the
     * report file, not the child's report rendering). */
    bool quietStdout = false;
    /**
     * Parent cancellation token (not owned, may be null). When it
     * fires mid-run the child is forwarded SIGTERM (its own interrupt
     * handlers turn that into a cooperative stop) and the result is
     * marked interrupted; the SIGKILL grace period still applies.
     */
    const CancelToken* cancel = nullptr;
};

/** What the isolated worker did. */
struct IsolateResult
{
    /** The child exited normally (any exit code). */
    bool exited = false;
    /** Child's exit code when exited. */
    int exitCode = 0;
    /** Signal that killed the child, or 0 (SIGSEGV for a crash,
     * SIGKILL after a timeout, SIGXCPU for the CPU cap...). */
    int termSignal = 0;
    /** The parent's watchdog fired (deadline overrun). */
    bool timedOut = false;
    /** The parent's cancel token fired and SIGTERM was forwarded. */
    bool interrupted = false;
    /** Tail of the child's stderr (crash diagnostics). */
    std::string stderrTail;
    /** Child resource usage from wait4 (valid when haveRusage).
     * Observability only — these feed per-point resource columns and
     * the run manifest, never results. */
    bool haveRusage = false;
    /** Child user+system CPU seconds. */
    double cpuSeconds = 0.0;
    /** Child peak resident set, kilobytes (ru_maxrss on Linux). */
    long maxRssKb = 0;

    /** Healthy protocol completion: exited with code 0-3 (orion_sim's
     * in-protocol range: ok / deadlock / failed points) and wrote its
     * report. Anything else is a worker crash. */
    bool
    healthyExit() const
    {
        return exited && !timedOut && !interrupted && exitCode >= 0 &&
               exitCode <= 3;
    }

    /** Human-readable exit summary ("exit 0", "signal 11",
     * "timeout (killed)"). */
    std::string describe() const;
};

/**
 * fork/exec @p opts.argv and wait, enforcing the deadline and
 * resource caps. Returns how the child ended; throws
 * std::runtime_error only for parent-side plumbing failures (fork or
 * pipe creation), never for child misbehavior.
 */
IsolateResult runIsolated(const IsolateOptions& opts);

} // namespace orion::core

#endif // ORION_CORE_ISOLATE_HH
