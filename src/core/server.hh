/**
 * @file
 * orion_served job engine (docs/ROBUSTNESS.md, "Resident service"):
 * a bounded request queue with admission control, worker threads,
 * per-job deadlines/retries, and result caching.
 *
 * The Server owns no sockets — the daemon (tools/orion_served.cc)
 * speaks the wire protocol and calls submit/status/result/cancel/
 * stats; this layer owns the robustness semantics:
 *
 *  - **Admission control.** The queue has a high-water mark
 *    (ServerOptions::queueMax). A submit beyond it is rejected with
 *    the structured "queue_full" code instead of growing memory
 *    without bound; the client backs off and retries.
 *
 *  - **Deadlines.** Each job may carry a wall-clock budget; every
 *    point arms the remaining budget on its CancelToken
 *    (CancelToken::armDeadline), so a wedged point stops with
 *    StopReason::Deadline instead of pinning a worker forever.
 *
 *  - **Retries and isolation.** Points run under the sweep's
 *    RetryPolicy (rederived seed per attempt). With
 *    ServerOptions::isolate a point runs in a forked orion_sim
 *    worker via core::runIsolated, so a crashing point (SIGSEGV)
 *    fails one job, not the daemon.
 *
 *  - **Caching.** With a ResultCache attached, each point is keyed
 *    by its single-point sweepFingerprint; hits skip the simulation
 *    entirely and are byte-identical to a fresh run because entries
 *    round-trip through the hexfloat checkpoint format.
 *
 * Determinism contract: a point always runs as its own single-point
 * grid — attempt k uses sim::deriveSeed(seed, 0, k *
 * kRetrySeedOffset) regardless of the point's position in the
 * submitted rate list — so the same configuration always produces
 * the same bytes (and the same cache key) no matter how jobs are
 * batched.
 *
 * Locking: one Mutex guards the queue, the job table, and the
 * counters. Simulations run with the lock released; no blocking I/O
 * of any kind happens under the lock (the socket-under-lock analyzer
 * rule enforces the socket half of that on this file).
 */
#ifndef ORION_CORE_SERVER_HH
#define ORION_CORE_SERVER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hh"
#include "core/cache.hh"
#include "core/cancel.hh"
#include "core/config.hh"
#include "core/sweep.hh"
#include "core/sync.hh"

namespace orion::core {

enum class JobState
{
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
};

/** "queued"/"running"/"done"/"failed"/"cancelled". */
const char* jobStateName(JobState s);

/** One submitted job: a validated configuration plus the rate grid
 * to evaluate. */
struct JobSpec
{
    NetworkConfig network;
    TrafficConfig traffic;
    SimConfig sim;
    std::vector<double> rates;
    /** Wall-clock budget for the whole job (0 = server default;
     * the default itself may be 0 = unbounded). */
    double timeoutSeconds = 0.0;
    /** The submitted orion_sim-style flags, verbatim. Isolate mode
     * re-execs orion_sim from these (plus --rate/--seed overrides,
     * which win by coming last); in-process mode ignores them. */
    std::vector<std::string> argv;
};

/** A point-in-time snapshot of one job. */
struct JobStatus
{
    std::uint64_t id = 0;
    JobState state = JobState::Queued;
    std::uint64_t pointsDone = 0;
    std::uint64_t pointsTotal = 0;
    std::uint64_t cacheHits = 0;
    /** Failed/Cancelled: the structured reason ("deadline",
     * "cancelled", or the first point's failure message). */
    std::string error;
    /** Done or Failed: one checkpoint-entry line per point, in rate
     * order, newline-terminated. Hexfloat doubles make these bytes
     * reproducible, which is what the serve drill `cmp`s. */
    std::string resultText;
};

struct ServerOptions
{
    /** Worker threads executing jobs. */
    unsigned workers = 1;
    /** Admission high-water mark: queued (not yet running) jobs
     * beyond this are rejected with "queue_full". */
    std::size_t queueMax = 16;
    /** Per-point retry policy (rederived seed per attempt). */
    RetryPolicy retry;
    /** Default per-job deadline when the request names none
     * (0 = unbounded). */
    double defaultTimeoutSeconds = 0.0;
    /** Run each point in a forked orion_sim worker. */
    bool isolate = false;
    /** Path to the orion_sim binary (isolate mode). */
    std::string isolateExe;
    /** Optional persistent result cache (not owned). */
    ResultCache* cache = nullptr;
};

/** Aggregate counters for the stats verb. */
struct ServerStats
{
    std::uint64_t submitted = 0;
    std::uint64_t rejectedQueueFull = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t queueDepth = 0;
    std::uint64_t running = 0;
    std::uint64_t pointsComputed = 0;
    std::uint64_t pointsFromCache = 0;
};

class Server
{
  public:
    explicit Server(const ServerOptions& opts);
    /** Drains (as by drain()) before returning. */
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Enqueue @p spec. Returns the job id, or 0 with @p error_code /
     * @p error_message set ("queue_full" past the high-water mark,
     * "draining" after drain() began). The spec must already be
     * validated (validateConfig) — the daemon rejects malformed
     * configurations as "invalid_config" before they get here.
     */
    std::uint64_t submit(const JobSpec& spec, std::string& error_code,
                         std::string& error_message)
        ORION_EXCLUDES(mutex_);

    /** Snapshot @p id into @p out; false for an unknown id. */
    bool status(std::uint64_t id, JobStatus& out) const
        ORION_EXCLUDES(mutex_);

    /** Cancel @p id (the "cancel" verb): a queued job flips to Cancelled; a running job's
     * token fires and the job winds down cooperatively. False for an
     * unknown id. */
    bool cancelJob(std::uint64_t id) ORION_EXCLUDES(mutex_);

    ServerStats stats() const ORION_EXCLUDES(mutex_);

    /**
     * Graceful drain (SIGTERM semantics): stop admitting, cancel
     * still-queued jobs, let running jobs finish, join the workers.
     * Idempotent.
     */
    void drain() ORION_EXCLUDES(mutex_);

  private:
    struct Job
    {
        JobSpec spec;
        JobStatus status;
        /** Fired by cancelJob() and by job-deadline promotion. */
        CancelToken token;
    };

    void workerMain() ORION_EXCLUDES(mutex_);
    /** Execute @p job (lock NOT held; only status updates lock). */
    void runJob(Job& job) ORION_EXCLUDES(mutex_);
    /** One point, in process: sweep.cc's retry contract on a
     * single-point grid. */
    CheckpointEntry runPointInProcess(const JobSpec& spec, double rate,
                                      CancelToken& job_token,
                                      double deadline_seconds);
    /** One point, in a forked orion_sim worker (isolate mode). */
    CheckpointEntry runPointIsolated(const JobSpec& spec, double rate,
                                     CancelToken& job_token,
                                     double deadline_seconds,
                                     std::uint64_t job_id,
                                     std::size_t point_index);

    const ServerOptions opts_;

    mutable core::Mutex mutex_;
    core::CondVar cv_;
    std::map<std::uint64_t, std::unique_ptr<Job>> jobs_
        ORION_GUARDED_BY(mutex_);
    std::deque<std::uint64_t> queue_ ORION_GUARDED_BY(mutex_);
    std::uint64_t nextJobId_ ORION_GUARDED_BY(mutex_) = 1;
    bool draining_ ORION_GUARDED_BY(mutex_) = false;
    std::uint64_t submitted_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t rejectedQueueFull_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t completed_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t failed_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t cancelled_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t running_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t pointsComputed_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t pointsFromCache_ ORION_GUARDED_BY(mutex_) = 0;

    std::vector<std::thread> workers_; // analyze-allow: unguarded -- ctor-spawn, drain-join only
    bool joined_ = false; // analyze-allow: unguarded -- drain() callers serialize (daemon main thread)
    /** Scratch directory for isolate-mode worker reports (empty when
     * isolation is off). */
    std::string tmpDir_; // analyze-allow: unguarded -- written once in the constructor, read-only afterwards
};

} // namespace orion::core

#endif // ORION_CORE_SERVER_HH
