#include "core/manifest.hh"

#include <cstdio>
#include <stdexcept>

#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>

#include "core/build_info.hh"
#include "core/log.hh"

namespace orion::core {

namespace {

double
nowUnixSeconds()
{
    const auto now = // observability only
        std::chrono::system_clock::now() // lint-allow: nondeterminism
            .time_since_epoch();
    return std::chrono::duration<double>(now).count();
}

double
tvSeconds(const timeval& tv)
{
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
}

void
appendKv(std::string& out, const char* key, const std::string& value,
         bool raw)
{
    out += '"';
    out += key;
    out += "\": ";
    if (raw) {
        out += value;
    } else {
        out += '"';
        out += log::jsonEscape(value);
        out += '"';
    }
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

RunManifest
RunManifest::begin(std::string toolName)
{
    RunManifest m;
    m.tool = std::move(toolName);
    const BuildInfo& b = buildInfo();
    m.compiler = b.compiler;
    m.flags = b.flags;
    m.gitSha = b.gitSha;
    m.buildType = b.buildType;
    m.host = hostName();
    m.pid = static_cast<int>(::getpid());
    m.startUnixSeconds = nowUnixSeconds();
    return m;
}

void
RunManifest::finish(std::string reason)
{
    stopReason = std::move(reason);
    endUnixSeconds = nowUnixSeconds();
    rusage self{};
    if (::getrusage(RUSAGE_SELF, &self) == 0) {
        userCpuSeconds = tvSeconds(self.ru_utime);
        sysCpuSeconds = tvSeconds(self.ru_stime);
        maxRssKb = self.ru_maxrss; // kilobytes on Linux
    }
    rusage children{};
    if (::getrusage(RUSAGE_CHILDREN, &children) == 0) {
        childUserCpuSeconds = tvSeconds(children.ru_utime);
        childSysCpuSeconds = tvSeconds(children.ru_stime);
        childMaxRssKb = children.ru_maxrss;
    }
}

std::string
RunManifest::toJson() const
{
    std::string j;
    j.reserve(1024);
    j += "{\n  ";
    appendKv(j, "schema", "orion-run-manifest-v1", false);
    j += ",\n  ";
    appendKv(j, "tool", tool, false);
    j += ",\n  ";
    appendKv(j, "fingerprint", fingerprintHex, false);
    j += ",\n  ";
    appendKv(j, "seed", std::to_string(seed), true);
    j += ",\n  ";
    appendKv(j, "seeds", std::to_string(seeds), true);
    j += ",\n  ";
    appendKv(j, "rate_points", std::to_string(ratePoints), true);
    j += ",\n  \"points\": { ";
    appendKv(j, "total", std::to_string(pointsTotal), true);
    j += ", ";
    appendKv(j, "completed", std::to_string(pointsCompleted), true);
    j += ", ";
    appendKv(j, "failed", std::to_string(pointsFailed), true);
    j += ", ";
    appendKv(j, "from_checkpoint", std::to_string(pointsFromCheckpoint),
             true);
    j += " },\n  ";
    appendKv(j, "stop_reason", stopReason, false);
    j += ",\n  \"build\": { ";
    appendKv(j, "compiler", compiler, false);
    j += ", ";
    appendKv(j, "flags", flags, false);
    j += ", ";
    appendKv(j, "git_sha", gitSha, false);
    j += ", ";
    appendKv(j, "build_type", buildType, false);
    j += " },\n  \"host\": { ";
    appendKv(j, "name", host, false);
    j += ", ";
    appendKv(j, "pid", std::to_string(pid), true);
    j += " },\n  \"time\": { ";
    appendKv(j, "start_unix_s", fmtDouble(startUnixSeconds), true);
    j += ", ";
    appendKv(j, "end_unix_s", fmtDouble(endUnixSeconds), true);
    j += ", ";
    appendKv(j, "wall_s",
             fmtDouble(endUnixSeconds > startUnixSeconds
                           ? endUnixSeconds - startUnixSeconds
                           : 0.0),
             true);
    j += " },\n  \"rusage\": { ";
    appendKv(j, "user_s", fmtDouble(userCpuSeconds), true);
    j += ", ";
    appendKv(j, "sys_s", fmtDouble(sysCpuSeconds), true);
    j += ", ";
    appendKv(j, "maxrss_kb", std::to_string(maxRssKb), true);
    j += ", ";
    appendKv(j, "children_user_s", fmtDouble(childUserCpuSeconds),
             true);
    j += ", ";
    appendKv(j, "children_sys_s", fmtDouble(childSysCpuSeconds), true);
    j += ", ";
    appendKv(j, "children_maxrss_kb", std::to_string(childMaxRssKb),
             true);
    j += " },\n  \"phases\": [";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        j += i == 0 ? "\n" : ",\n";
        j += "    { ";
        appendKv(j, "name", phases[i].name, false);
        j += ", ";
        appendKv(j, "seconds", fmtDouble(phases[i].seconds), true);
        j += ", ";
        appendKv(j, "share", fmtDouble(phases[i].share), true);
        j += " }";
    }
    j += phases.empty() ? "]\n" : "\n  ]\n";
    j += "}\n";
    return j;
}

void
writeFileAtomic(const std::string& path, const std::string& contents)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        throw std::runtime_error("cannot open '" + tmp + "'");
    std::size_t off = 0;
    while (off < contents.size()) {
        const ssize_t n = ::write(fd, contents.data() + off,
                                  contents.size() - off);
        if (n < 0) {
            ::close(fd);
            throw std::runtime_error("cannot write '" + tmp + "'");
        }
        off += static_cast<std::size_t>(n);
    }
    // fsync before rename so the replacement is never an empty file
    // after a crash (same discipline as the checkpoint journal).
    if (::fsync(fd) != 0 || ::close(fd) != 0)
        throw std::runtime_error("cannot sync '" + tmp + "'");
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("cannot rename '" + tmp + "' to '" +
                                 path + "'");
    // fsync the containing directory too: the rename lives in the
    // directory's data, and without this a power loss (not just a
    // process death) can forget the replacement entirely.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int dfd = ::open(dir.empty() ? "/" : dir.c_str(),
                           O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        // Best-effort: some filesystems refuse directory fsync;
        // the write itself already succeeded.
        ::fsync(dfd);
        ::close(dfd);
    }
}

} // namespace orion::core

