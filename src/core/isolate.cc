#include "core/isolate.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

namespace orion::core {

namespace {

/** Keep at most the final @p cap bytes of @p tail + @p chunk. */
void
appendTail(std::string& tail, const char* chunk, std::size_t n,
           std::size_t cap)
{
    tail.append(chunk, n);
    if (tail.size() > cap)
        tail.erase(0, tail.size() - cap);
}

} // namespace

std::string
IsolateResult::describe() const
{
    if (interrupted)
        return "interrupted";
    if (timedOut)
        return "timeout (killed)";
    if (termSignal != 0)
        return "signal " + std::to_string(termSignal);
    if (exited)
        return "exit " + std::to_string(exitCode);
    return "unknown";
}

IsolateResult
runIsolated(const IsolateOptions& opts)
{
    if (opts.argv.empty())
        throw std::runtime_error("isolate: empty argv");

    int err_pipe[2];
    if (::pipe(err_pipe) != 0) {
        throw std::runtime_error(std::string("isolate: pipe: ") +
                                 std::strerror(errno));
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(err_pipe[0]);
        ::close(err_pipe[1]);
        throw std::runtime_error(std::string("isolate: fork: ") +
                                 std::strerror(errno));
    }

    if (pid == 0) {
        // Child: route stderr into the pipe, fence resources, exec.
        // Only async-signal-safe calls between fork and exec.
        ::close(err_pipe[0]);
        ::dup2(err_pipe[1], STDERR_FILENO);
        ::close(err_pipe[1]);
        if (opts.quietStdout) {
            const int devnull = ::open("/dev/null", O_WRONLY);
            if (devnull >= 0) {
                ::dup2(devnull, STDOUT_FILENO);
                ::close(devnull);
            }
        }
        if (opts.maxAddressSpaceBytes > 0) {
            struct rlimit lim;
            lim.rlim_cur = opts.maxAddressSpaceBytes;
            lim.rlim_max = opts.maxAddressSpaceBytes;
            ::setrlimit(RLIMIT_AS, &lim);
        }
        if (opts.maxCpuSeconds > 0) {
            struct rlimit lim;
            lim.rlim_cur = opts.maxCpuSeconds;
            lim.rlim_max = opts.maxCpuSeconds;
            ::setrlimit(RLIMIT_CPU, &lim);
        }
        std::vector<char*> argv;
        argv.reserve(opts.argv.size() + 1);
        for (const std::string& a : opts.argv)
            argv.push_back(const_cast<char*>(a.c_str()));
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        // exec failed: report on the (redirected) stderr and bail
        // with a code outside orion_sim's healthy range.
        const char* msg = "isolate: execv failed\n";
        ssize_t ignored = ::write(STDERR_FILENO, msg,
                                  std::strlen(msg));
        (void)ignored;
        ::_exit(127);
    }

    // Parent: drain the stderr pipe (non-blocking) while polling the
    // child, enforcing the wall-clock deadline.
    ::close(err_pipe[1]);
    const int flags = ::fcntl(err_pipe[0], F_GETFL, 0);
    ::fcntl(err_pipe[0], F_SETFL, flags | O_NONBLOCK);

    IsolateResult res;
    // Wall-clock by design: the kill-on-timeout watchdog bounds real
    // time and never feeds back into simulation results.
    const auto start = std::chrono::steady_clock::now(); // lint-allow: nondeterminism
    bool sent_term = false;
    bool sent_kill = false;
    auto term_at = start;

    const auto drainStderr = [&] {
        char buf[1024];
        for (;;) {
            const ssize_t n = ::read(err_pipe[0], buf, sizeof buf);
            if (n <= 0)
                break;
            appendTail(res.stderrTail, buf,
                       static_cast<std::size_t>(n),
                       opts.stderrTailBytes);
        }
    };

    for (;;) {
        int status = 0;
        // wait4 = waitpid + the child's rusage, which is the only
        // point the kernel reports a dead child's CPU time and peak
        // RSS (per-point resource accounting).
        struct rusage ru;
        std::memset(&ru, 0, sizeof ru);
        const pid_t done = ::wait4(pid, &status, WNOHANG, &ru);
        if (done == pid) {
            if (WIFEXITED(status)) {
                res.exited = true;
                res.exitCode = WEXITSTATUS(status);
            } else if (WIFSIGNALED(status)) {
                res.termSignal = WTERMSIG(status);
            }
            res.haveRusage = true;
            res.cpuSeconds =
                static_cast<double>(ru.ru_utime.tv_sec) +
                static_cast<double>(ru.ru_utime.tv_usec) * 1e-6 +
                static_cast<double>(ru.ru_stime.tv_sec) +
                static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
            res.maxRssKb = ru.ru_maxrss;
            break;
        }
        if (done < 0 && errno != EINTR)
            break;

        drainStderr();

        const auto now = std::chrono::steady_clock::now(); // lint-allow: nondeterminism
        if (opts.cancel != nullptr && !sent_term &&
            opts.cancel->cancelled()) {
            res.interrupted = true;
            ::kill(pid, SIGTERM);
            sent_term = true;
            term_at = now;
        }
        if (opts.timeoutSeconds > 0.0 && !sent_term &&
            std::chrono::duration<double>(now - start).count() >=
                opts.timeoutSeconds) {
            res.timedOut = true;
            ::kill(pid, SIGTERM);
            sent_term = true;
            term_at = now;
        }
        // SIGTERM grace period: one second for the child to flush,
        // then SIGKILL.
        if (sent_term && !sent_kill &&
            std::chrono::duration<double>(now - term_at).count() >=
                1.0) {
            ::kill(pid, SIGKILL);
            sent_kill = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    drainStderr();
    ::close(err_pipe[0]);
    return res;
}

} // namespace orion::core
