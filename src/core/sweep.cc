#include "core/sweep.hh"

#include <algorithm>
#include <cassert>
#include <exception>

#include "core/executor.hh"
#include "core/forensics.hh"
#include "sim/rng.hh"

namespace orion {

namespace {

/** Retry attempts rederive the seed in a disjoint seed-index band, so
 * a retried point cannot collide with any sibling cell's stream. */
constexpr std::uint64_t kRetrySeedOffset = 1ULL << 32;

/** What one (rate, seed) cell produced. */
struct CellResult
{
    Report report;
    std::optional<PointFailure> failure;
    unsigned attempts = 1;
    /** Telemetry exports (only when captured — see runPoint). */
    std::string metricsCsv;
    std::string traceJson;
};

/**
 * Run one (rate index, seed index) cell with its derived RNG stream,
 * isolating failures: a check failure gets one bounded retry on a
 * rederived seed, and any failure (including a throwing constructor)
 * is captured per-cell instead of propagating into the worker pool —
 * a worker exception would abort the whole sweep and discard every
 * completed point.
 */
CellResult
runPoint(const NetworkConfig& network, const TrafficConfig& traffic,
         const SimConfig& sim, double rate, std::size_t rate_index,
         unsigned seed_index, bool capture_telemetry = false)
{
    TrafficConfig t = traffic;
    t.injectionRate = rate;

    CellResult res;
    for (unsigned attempt = 0; attempt < 2; ++attempt) {
        SimConfig s = sim;
        const std::uint64_t band =
            attempt == 0 ? 0 : kRetrySeedOffset;
        s.seed = sim::deriveSeed(sim.seed, rate_index,
                                 seed_index + band);
        // The transient flavor of the poison drill only fails the
        // first attempt, modelling a seed-dependent transient.
        if (attempt > 0 && s.debugPoisonTransient)
            s.debugPoisonRate = -1.0;
        res.attempts = attempt + 1;

        try {
            Simulation run(network, t, s);
            res.report = run.run();
            if (capture_telemetry && s.telemetry.enabled()) {
                res.metricsCsv = run.metricsCsv();
                res.traceJson = run.traceJson(
                    "rate " + std::to_string(rate) + " seed " +
                    std::to_string(seed_index));
            }
            if (res.report.stopReason != StopReason::CheckFailure) {
                res.failure.reset();
                return res;
            }
            res.failure = PointFailure{
                StopReason::CheckFailure,
                res.report.checkFailureDiagnostic,
                forensicSnapshot(run,
                                 res.report.checkFailureDiagnostic)};
        } catch (const std::exception& e) {
            res.report = Report{};
            res.report.stopReason = StopReason::CheckFailure;
            res.report.checkFailureDiagnostic = e.what();
            res.failure = PointFailure{StopReason::CheckFailure,
                                       e.what(), std::string{}};
        }
    }
    return res;
}

} // namespace

std::vector<SweepPoint>
Sweep::overRates(const NetworkConfig& network, const TrafficConfig& traffic,
                 const SimConfig& sim, const std::vector<double>& rates,
                 const SweepOptions& opts)
{
    // Index-addressed capture: worker i writes only slot i, so the
    // merged vector is independent of completion order. WorkerSlots
    // makes that contract a checked capability instead of a comment.
    core::WorkerSlots<SweepPoint> points(rates.size());
    core::parallelFor(opts.jobs, rates.size(), [&](std::size_t i) {
        core::RoleGuard guard(points.role());
        SweepPoint& p = points.slot(i);
        p.injectionRate = rates[i];
        CellResult cell = runPoint(network, traffic, sim, rates[i], i,
                                   0, /*capture_telemetry=*/true);
        p.report = std::move(cell.report);
        p.failure = std::move(cell.failure);
        p.attempts = cell.attempts;
        p.metricsCsv = std::move(cell.metricsCsv);
        p.traceJson = std::move(cell.traceJson);
    });
    return std::move(points).take();
}

std::vector<AveragedPoint>
Sweep::overRatesAveraged(const NetworkConfig& network,
                         const TrafficConfig& traffic,
                         const SimConfig& sim,
                         const std::vector<double>& rates,
                         unsigned num_seeds, const SweepOptions& opts)
{
    assert(num_seeds >= 1);

    // Fan out over the flattened (rate, seed) grid — finer-grained
    // than per-rate fan-out, so a few rates with many seeds still
    // saturate the pool.
    core::WorkerSlots<CellResult> cells(rates.size() * num_seeds);
    core::parallelFor(
        opts.jobs, rates.size() * num_seeds, [&](std::size_t cell) {
            const std::size_t i = cell / num_seeds;
            const unsigned k = static_cast<unsigned>(cell % num_seeds);
            core::RoleGuard guard(cells.role());
            cells.slot(cell) = runPoint(network, traffic, sim,
                                        rates[i], i, k,
                                        /*capture_telemetry=*/true);
        });
    std::vector<CellResult> grid = std::move(cells).take();

    // Deterministic merge: aggregate each rate's seeds in seed order,
    // on the calling thread, so the floating-point accumulation order
    // (hence the bits of every mean) is independent of opts.jobs.
    // Failed seeds are excluded from the aggregates; dividing by the
    // success count leaves the fault-free path bit-identical (success
    // count == num_seeds) while keeping partially failed points usable.
    std::vector<AveragedPoint> points;
    points.reserve(rates.size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        AveragedPoint avg;
        avg.injectionRate = rates[i];
        avg.seeds = num_seeds;
        avg.allCompleted = true;
        unsigned ok = 0;
        for (unsigned k = 0; k < num_seeds; ++k) {
            CellResult& cell = grid[i * num_seeds + k];
            // Telemetry merges for every seed (empty for failed
            // seeds), keeping seed indexes aligned for per-seed
            // export directories.
            avg.metricsCsvBySeed.push_back(
                std::move(cell.metricsCsv));
            avg.traceJsonBySeed.push_back(std::move(cell.traceJson));
            if (cell.failure) {
                ++avg.failedSeeds;
                if (avg.firstFailure.empty())
                    avg.firstFailure = cell.failure->message;
                avg.allCompleted = false;
                continue;
            }
            const Report& r = cell.report;
            avg.allCompleted = avg.allCompleted && r.completed;
            avg.meanLatency += r.avgLatencyCycles;
            avg.meanPowerWatts += r.networkPowerWatts;
            avg.meanThroughput += r.acceptedFlitsPerNodePerCycle;
            if (ok == 0) {
                avg.minLatency = r.avgLatencyCycles;
                avg.maxLatency = r.avgLatencyCycles;
            } else {
                avg.minLatency =
                    std::min(avg.minLatency, r.avgLatencyCycles);
                avg.maxLatency =
                    std::max(avg.maxLatency, r.avgLatencyCycles);
            }
            ++ok;
        }
        if (ok > 0) {
            avg.meanLatency /= ok;
            avg.meanPowerWatts /= ok;
            avg.meanThroughput /= ok;
        }
        points.push_back(avg);
    }
    return points;
}

double
Sweep::zeroLoadLatency(const NetworkConfig& network,
                       const TrafficConfig& traffic, const SimConfig& sim)
{
    TrafficConfig t = traffic;
    t.injectionRate = 0.002;
    SimConfig s = sim;
    s.samplePackets = std::min<std::uint64_t>(sim.samplePackets, 500);
    Simulation run(network, t, s);
    return run.run().avgLatencyCycles;
}

double
Sweep::saturationRate(const std::vector<SweepPoint>& points,
                      double zero_load_latency)
{
    assert(zero_load_latency > 0.0);
    for (const auto& p : points) {
        if (!p.report.completed ||
            p.report.avgLatencyCycles > 2.0 * zero_load_latency) {
            return p.injectionRate;
        }
    }
    return -1.0;
}

std::vector<double>
Sweep::linspace(double first, double last, unsigned count)
{
    assert(count >= 2 && last >= first);
    std::vector<double> v;
    v.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        v.push_back(first + (last - first) * i /
                    static_cast<double>(count - 1));
    }
    return v;
}

} // namespace orion
