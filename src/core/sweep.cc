#include "core/sweep.hh"

#include <algorithm>
#include <cassert>

#include "core/executor.hh"
#include "sim/rng.hh"

namespace orion {

namespace {

/** Run one (rate index, seed index) cell with its derived RNG stream. */
Report
runPoint(const NetworkConfig& network, const TrafficConfig& traffic,
         const SimConfig& sim, double rate, std::size_t rate_index,
         unsigned seed_index)
{
    TrafficConfig t = traffic;
    t.injectionRate = rate;
    SimConfig s = sim;
    s.seed = sim::deriveSeed(sim.seed, rate_index, seed_index);
    Simulation run(network, t, s);
    return run.run();
}

} // namespace

std::vector<SweepPoint>
Sweep::overRates(const NetworkConfig& network, const TrafficConfig& traffic,
                 const SimConfig& sim, const std::vector<double>& rates,
                 const SweepOptions& opts)
{
    std::vector<SweepPoint> points(rates.size());
    core::parallelFor(opts.jobs, rates.size(), [&](std::size_t i) {
        points[i].injectionRate = rates[i];
        points[i].report =
            runPoint(network, traffic, sim, rates[i], i, 0);
    });
    return points;
}

std::vector<AveragedPoint>
Sweep::overRatesAveraged(const NetworkConfig& network,
                         const TrafficConfig& traffic,
                         const SimConfig& sim,
                         const std::vector<double>& rates,
                         unsigned num_seeds, const SweepOptions& opts)
{
    assert(num_seeds >= 1);

    // Fan out over the flattened (rate, seed) grid — finer-grained
    // than per-rate fan-out, so a few rates with many seeds still
    // saturate the pool.
    std::vector<Report> grid(rates.size() * num_seeds);
    core::parallelFor(
        opts.jobs, grid.size(), [&](std::size_t cell) {
            const std::size_t i = cell / num_seeds;
            const unsigned k = static_cast<unsigned>(cell % num_seeds);
            grid[cell] =
                runPoint(network, traffic, sim, rates[i], i, k);
        });

    // Deterministic merge: aggregate each rate's seeds in seed order,
    // on the calling thread, so the floating-point accumulation order
    // (hence the bits of every mean) is independent of opts.jobs.
    std::vector<AveragedPoint> points;
    points.reserve(rates.size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        AveragedPoint avg;
        avg.injectionRate = rates[i];
        avg.seeds = num_seeds;
        avg.allCompleted = true;
        for (unsigned k = 0; k < num_seeds; ++k) {
            const Report& r = grid[i * num_seeds + k];
            avg.allCompleted = avg.allCompleted && r.completed;
            avg.meanLatency += r.avgLatencyCycles;
            avg.meanPowerWatts += r.networkPowerWatts;
            avg.meanThroughput += r.acceptedFlitsPerNodePerCycle;
            if (k == 0) {
                avg.minLatency = r.avgLatencyCycles;
                avg.maxLatency = r.avgLatencyCycles;
            } else {
                avg.minLatency =
                    std::min(avg.minLatency, r.avgLatencyCycles);
                avg.maxLatency =
                    std::max(avg.maxLatency, r.avgLatencyCycles);
            }
        }
        avg.meanLatency /= num_seeds;
        avg.meanPowerWatts /= num_seeds;
        avg.meanThroughput /= num_seeds;
        points.push_back(avg);
    }
    return points;
}

double
Sweep::zeroLoadLatency(const NetworkConfig& network,
                       const TrafficConfig& traffic, const SimConfig& sim)
{
    TrafficConfig t = traffic;
    t.injectionRate = 0.002;
    SimConfig s = sim;
    s.samplePackets = std::min<std::uint64_t>(sim.samplePackets, 500);
    Simulation run(network, t, s);
    return run.run().avgLatencyCycles;
}

double
Sweep::saturationRate(const std::vector<SweepPoint>& points,
                      double zero_load_latency)
{
    assert(zero_load_latency > 0.0);
    for (const auto& p : points) {
        if (!p.report.completed ||
            p.report.avgLatencyCycles > 2.0 * zero_load_latency) {
            return p.injectionRate;
        }
    }
    return -1.0;
}

std::vector<double>
Sweep::linspace(double first, double last, unsigned count)
{
    assert(count >= 2 && last >= first);
    std::vector<double> v;
    v.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        v.push_back(first + (last - first) * i /
                    static_cast<double>(count - 1));
    }
    return v;
}

} // namespace orion
