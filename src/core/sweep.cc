#include "core/sweep.hh"

#include <cassert>

namespace orion {

std::vector<SweepPoint>
Sweep::overRates(const NetworkConfig& network, const TrafficConfig& traffic,
                 const SimConfig& sim, const std::vector<double>& rates)
{
    std::vector<SweepPoint> points;
    points.reserve(rates.size());
    for (const double rate : rates) {
        TrafficConfig t = traffic;
        t.injectionRate = rate;
        Simulation s(network, t, sim);
        points.push_back({rate, s.run()});
    }
    return points;
}

std::vector<AveragedPoint>
Sweep::overRatesAveraged(const NetworkConfig& network,
                         const TrafficConfig& traffic,
                         const SimConfig& sim,
                         const std::vector<double>& rates,
                         unsigned num_seeds)
{
    assert(num_seeds >= 1);
    std::vector<AveragedPoint> points;
    points.reserve(rates.size());
    for (const double rate : rates) {
        AveragedPoint avg;
        avg.injectionRate = rate;
        avg.seeds = num_seeds;
        avg.allCompleted = true;
        for (unsigned k = 0; k < num_seeds; ++k) {
            TrafficConfig t = traffic;
            t.injectionRate = rate;
            SimConfig s = sim;
            s.seed = sim.seed + k;
            Simulation run(network, t, s);
            const Report r = run.run();

            avg.allCompleted = avg.allCompleted && r.completed;
            avg.meanLatency += r.avgLatencyCycles;
            avg.meanPowerWatts += r.networkPowerWatts;
            avg.meanThroughput += r.acceptedFlitsPerNodePerCycle;
            if (k == 0) {
                avg.minLatency = r.avgLatencyCycles;
                avg.maxLatency = r.avgLatencyCycles;
            } else {
                avg.minLatency =
                    std::min(avg.minLatency, r.avgLatencyCycles);
                avg.maxLatency =
                    std::max(avg.maxLatency, r.avgLatencyCycles);
            }
        }
        avg.meanLatency /= num_seeds;
        avg.meanPowerWatts /= num_seeds;
        avg.meanThroughput /= num_seeds;
        points.push_back(avg);
    }
    return points;
}

double
Sweep::zeroLoadLatency(const NetworkConfig& network,
                       const TrafficConfig& traffic, const SimConfig& sim)
{
    TrafficConfig t = traffic;
    t.injectionRate = 0.002;
    SimConfig s = sim;
    s.samplePackets = std::min<std::uint64_t>(sim.samplePackets, 500);
    Simulation run(network, t, s);
    return run.run().avgLatencyCycles;
}

double
Sweep::saturationRate(const std::vector<SweepPoint>& points,
                      double zero_load_latency)
{
    assert(zero_load_latency > 0.0);
    for (const auto& p : points) {
        if (!p.report.completed ||
            p.report.avgLatencyCycles > 2.0 * zero_load_latency) {
            return p.injectionRate;
        }
    }
    return -1.0;
}

std::vector<double>
Sweep::linspace(double first, double last, unsigned count)
{
    assert(count >= 2 && last >= first);
    std::vector<double> v;
    v.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        v.push_back(first + (last - first) * i /
                    static_cast<double>(count - 1));
    }
    return v;
}

} // namespace orion
