#include "core/sweep.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <ctime>
#include <exception>
#include <thread>
#include <unordered_map>

#include "core/executor.hh"
#include "core/forensics.hh"
#include "core/progress.hh"
#include "sim/rng.hh"

namespace orion {

namespace {

/** Monotonic seconds for per-cell resource accounting (observability
 * only; never journaled or compared). */
double
monotonicSeconds()
{
    const auto t = std::chrono::steady_clock::now(); // lint-allow: nondeterminism
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

/** CPU seconds consumed by the calling thread so far. */
double
threadCpuSeconds()
{
    timespec ts{};
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0.0;
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** What one (rate, seed) cell produced. */
struct CellResult
{
    Report report;
    std::optional<PointFailure> failure;
    unsigned attempts = 1;
    /** See SweepPoint::ran / SweepPoint::fromCheckpoint. */
    bool ran = false;
    bool fromCheckpoint = false;
    /** Telemetry exports (only when captured — see runPoint). */
    std::string metricsCsv;
    std::string traceJson;
    /** Execution cost (fresh runs only; see PointResources). */
    PointResources resources;
};

/** A cell outcome worth journaling: deterministic given the seed.
 * Deadline/Interrupted stops depend on wall-clock/machine load and
 * must rerun on resume instead. */
bool
journalable(const CellResult& cell)
{
    const StopReason sr = cell.failure ? cell.failure->reason
                                       : cell.report.stopReason;
    return sr != StopReason::Deadline &&
           sr != StopReason::Interrupted;
}

core::CheckpointEntry
makeEntry(std::size_t rate_index, unsigned seed_index,
          const CellResult& cell)
{
    core::CheckpointEntry e;
    e.rateIndex = rate_index;
    e.seedIndex = seed_index;
    e.attempts = cell.attempts;
    e.report = cell.report;
    if (cell.failure) {
        e.failed = true;
        e.failureReason = cell.failure->reason;
        e.failureMessage = cell.failure->message;
        e.failureForensics = cell.failure->forensicsJson;
    }
    return e;
}

CellResult
cellFromEntry(const core::CheckpointEntry& e)
{
    CellResult cell;
    cell.report = e.report;
    cell.attempts = e.attempts;
    cell.ran = true;
    cell.fromCheckpoint = true;
    if (e.failed) {
        cell.failure = PointFailure{e.failureReason, e.failureMessage,
                                    e.failureForensics};
    }
    return cell;
}

/** (rate index, seed index) -> cached entry; duplicates last-wins
 * (repeated resumes re-journal nothing, but stay safe anyway). */
using ResumeIndex =
    std::unordered_map<std::uint64_t, const core::CheckpointEntry*>;

ResumeIndex
buildResumeIndex(const std::vector<core::CheckpointEntry>* entries,
                 std::size_t num_rates, unsigned num_seeds)
{
    ResumeIndex index;
    if (entries == nullptr)
        return index;
    for (const core::CheckpointEntry& e : *entries) {
        if (e.rateIndex >= num_rates || e.seedIndex >= num_seeds)
            continue; // defensive; the fingerprint binds the grid
        index[(e.rateIndex << 32) | e.seedIndex] = &e;
    }
    return index;
}

const core::CheckpointEntry*
lookupResume(const ResumeIndex& index, std::size_t rate_index,
             unsigned seed_index)
{
    const auto it = index.find(
        (static_cast<std::uint64_t>(rate_index) << 32) | seed_index);
    return it == index.end() ? nullptr : it->second;
}

/**
 * Run one (rate index, seed index) cell with its derived RNG stream,
 * isolating failures: a check failure gets bounded retries on
 * rederived seeds (SweepOptions::retry), and any failure (including a
 * throwing constructor) is captured per-cell instead of propagating
 * into the worker pool — a worker exception would abort the whole
 * sweep and discard every completed point. A per-cell deadline and
 * the sweep-wide cancel token ride in via a chained CancelToken; a
 * token is installed on the simulation only when either is active,
 * so plain sweeps keep the token-free cycle loop.
 */
CellResult
runPoint(const NetworkConfig& network, const TrafficConfig& traffic,
         const SimConfig& sim, double rate, std::size_t rate_index,
         unsigned seed_index, bool capture_telemetry,
         const SweepOptions& opts, core::ProgressScope* scope)
{
    TrafficConfig t = traffic;
    t.injectionRate = rate;

    CellResult res;
    res.ran = true;
    const unsigned max_attempts =
        std::max(1u, opts.retry.maxAttempts);
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        // An interrupt between attempts ends the cell immediately:
        // retrying a point nobody will wait for helps no one.
        if (opts.cancel != nullptr && opts.cancel->cancelled()) {
            res.report = Report{};
            res.report.stopReason = StopReason::Interrupted;
            res.failure = PointFailure{StopReason::Interrupted,
                                       "sweep interrupted before the "
                                       "cell could run",
                                       std::string{}};
            return res;
        }
        if (attempt > 0 && opts.retry.backoffMs > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts.retry.backoffMs));
        }

        SimConfig s = sim;
        const std::uint64_t band = attempt * kRetrySeedOffset;
        s.seed = sim::deriveSeed(sim.seed, rate_index,
                                 seed_index + band);
        // The transient flavor of the poison drill only fails the
        // first attempt, modelling a seed-dependent transient.
        if (attempt > 0 && s.debugPoisonTransient)
            s.debugPoisonRate = -1.0;
        res.attempts = attempt + 1;
        if (scope != nullptr) {
            scope->setAttempt(res.attempts);
            // Publish live cycle counts for the heartbeat thread.
            // Observability only: the periodic hook this installs is
            // a relaxed store, so results stay bit-identical.
            s.progressCycles = scope->cycles();
        }

        core::CancelToken token(opts.cancel);
        if (opts.pointTimeoutSeconds > 0.0)
            token.armDeadline(opts.pointTimeoutSeconds);
        if (opts.pointTimeoutSeconds > 0.0 ||
            opts.cancel != nullptr) {
            s.cancel = &token;
        }

        try {
            Simulation run(network, t, s);
            res.report = run.run();
            if (capture_telemetry && s.telemetry.enabled()) {
                res.metricsCsv = run.metricsCsv();
                res.traceJson = run.traceJson(
                    "rate " + std::to_string(rate) + " seed " +
                    std::to_string(seed_index));
            }
            const StopReason sr = res.report.stopReason;
            if (sr == StopReason::Deadline) {
                // Not transient, not retried: a point that overran
                // its wall-clock budget will overrun it again.
                res.failure = PointFailure{
                    StopReason::Deadline,
                    "point exceeded its deadline after " +
                        std::to_string(res.report.totalCycles) +
                        " cycles",
                    forensicSnapshot(run, "point deadline expired")};
                return res;
            }
            if (sr == StopReason::Interrupted) {
                res.failure = PointFailure{
                    StopReason::Interrupted,
                    "interrupted mid-run (SIGINT/SIGTERM)",
                    std::string{}};
                return res;
            }
            if (sr != StopReason::CheckFailure) {
                res.failure.reset();
                return res;
            }
            res.failure = PointFailure{
                StopReason::CheckFailure,
                res.report.checkFailureDiagnostic,
                forensicSnapshot(run,
                                 res.report.checkFailureDiagnostic)};
        } catch (const std::exception& e) {
            res.report = Report{};
            res.report.stopReason = StopReason::CheckFailure;
            res.report.checkFailureDiagnostic = e.what();
            res.failure = PointFailure{StopReason::CheckFailure,
                                       e.what(), std::string{}};
        }
    }
    return res;
}

} // namespace

std::vector<SweepPoint>
Sweep::overRates(const NetworkConfig& network, const TrafficConfig& traffic,
                 const SimConfig& sim, const std::vector<double>& rates,
                 const SweepOptions& opts)
{
    // Index-addressed capture: worker i writes only slot i, so the
    // merged vector is independent of completion order. WorkerSlots
    // makes that contract a checked capability instead of a comment.
    const ResumeIndex cached =
        buildResumeIndex(opts.resume, rates.size(), 1);
    core::WorkerSlots<SweepPoint> points(rates.size());
    core::parallelFor(
        opts.jobs, rates.size(),
        [&](std::size_t i) {
            core::RoleGuard guard(points.role());
            SweepPoint& p = points.slot(i);
            p.injectionRate = rates[i];
            CellResult cell;
            if (const core::CheckpointEntry* e =
                    lookupResume(cached, i, 0)) {
                cell = cellFromEntry(*e);
                if (opts.progress != nullptr)
                    opts.progress->noteCached();
            } else {
                core::ProgressScope scope(opts.progress, i, 0);
                const double wall0 = monotonicSeconds();
                const double cpu0 = threadCpuSeconds();
                cell = runPoint(network, traffic, sim, rates[i], i,
                                0, /*capture_telemetry=*/true, opts,
                                &scope);
                cell.resources.valid = true;
                cell.resources.wallSeconds =
                    monotonicSeconds() - wall0;
                cell.resources.cpuSeconds = threadCpuSeconds() - cpu0;
                if (opts.journal != nullptr && journalable(cell))
                    opts.journal->append(makeEntry(i, 0, cell));
                // End after the journal append so a heartbeat's done
                // count never exceeds the journal's entry count.
                scope.end(cell.failure.has_value());
            }
            p.report = std::move(cell.report);
            p.failure = std::move(cell.failure);
            p.attempts = cell.attempts;
            p.ran = cell.ran;
            p.fromCheckpoint = cell.fromCheckpoint;
            p.metricsCsv = std::move(cell.metricsCsv);
            p.traceJson = std::move(cell.traceJson);
            p.resources = cell.resources;
        },
        opts.cancel);
    std::vector<SweepPoint> out = std::move(points).take();
    // Cells the cancelled cursor never dispensed still carry their
    // rate (slots default-construct with ran == false).
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i].injectionRate = rates[i];
    return out;
}

std::vector<AveragedPoint>
Sweep::overRatesAveraged(const NetworkConfig& network,
                         const TrafficConfig& traffic,
                         const SimConfig& sim,
                         const std::vector<double>& rates,
                         unsigned num_seeds, const SweepOptions& opts)
{
    assert(num_seeds >= 1);

    // Fan out over the flattened (rate, seed) grid — finer-grained
    // than per-rate fan-out, so a few rates with many seeds still
    // saturate the pool.
    const ResumeIndex cached =
        buildResumeIndex(opts.resume, rates.size(), num_seeds);
    core::WorkerSlots<CellResult> cells(rates.size() * num_seeds);
    core::parallelFor(
        opts.jobs, rates.size() * num_seeds,
        [&](std::size_t cell) {
            const std::size_t i = cell / num_seeds;
            const unsigned k = static_cast<unsigned>(cell % num_seeds);
            core::RoleGuard guard(cells.role());
            if (const core::CheckpointEntry* e =
                    lookupResume(cached, i, k)) {
                cells.slot(cell) = cellFromEntry(*e);
                if (opts.progress != nullptr)
                    opts.progress->noteCached();
                return;
            }
            core::ProgressScope scope(opts.progress, i, k);
            const double wall0 = monotonicSeconds();
            const double cpu0 = threadCpuSeconds();
            CellResult res = runPoint(network, traffic, sim,
                                      rates[i], i, k,
                                      /*capture_telemetry=*/true,
                                      opts, &scope);
            res.resources.valid = true;
            res.resources.wallSeconds = monotonicSeconds() - wall0;
            res.resources.cpuSeconds = threadCpuSeconds() - cpu0;
            if (opts.journal != nullptr && journalable(res))
                opts.journal->append(makeEntry(i, k, res));
            scope.end(res.failure.has_value());
            cells.slot(cell) = std::move(res);
        },
        opts.cancel);
    std::vector<CellResult> grid = std::move(cells).take();

    // Deterministic merge: aggregate each rate's seeds in seed order,
    // on the calling thread, so the floating-point accumulation order
    // (hence the bits of every mean) is independent of opts.jobs.
    // Failed seeds are excluded from the aggregates; dividing by the
    // success count leaves the fault-free path bit-identical (success
    // count == num_seeds) while keeping partially failed points usable.
    std::vector<AveragedPoint> points;
    points.reserve(rates.size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        AveragedPoint avg;
        avg.injectionRate = rates[i];
        avg.seeds = num_seeds;
        avg.allCompleted = true;
        unsigned ok = 0;
        for (unsigned k = 0; k < num_seeds; ++k) {
            CellResult& cell = grid[i * num_seeds + k];
            // Telemetry merges for every seed (empty for failed
            // seeds), keeping seed indexes aligned for per-seed
            // export directories.
            avg.metricsCsvBySeed.push_back(
                std::move(cell.metricsCsv));
            avg.traceJsonBySeed.push_back(std::move(cell.traceJson));
            avg.attemptsBySeed.push_back(cell.ran ? cell.attempts
                                                  : 0);
            if (cell.resources.valid) {
                avg.resources.valid = true;
                avg.resources.wallSeconds +=
                    cell.resources.wallSeconds;
                avg.resources.cpuSeconds += cell.resources.cpuSeconds;
                avg.resources.maxRssKb = std::max(
                    avg.resources.maxRssKb, cell.resources.maxRssKb);
            }
            // A cell the cancelled sweep never dispensed is neither a
            // success nor a failure; it just hasn't run yet.
            if (!cell.ran) {
                avg.allCompleted = false;
                continue;
            }
            ++avg.ranSeeds;
            if (cell.failure) {
                ++avg.failedSeeds;
                if (avg.firstFailure.empty())
                    avg.firstFailure = cell.failure->message;
                avg.allCompleted = false;
                continue;
            }
            const Report& r = cell.report;
            avg.allCompleted = avg.allCompleted && r.completed;
            avg.meanLatency += r.avgLatencyCycles;
            avg.meanPowerWatts += r.networkPowerWatts;
            avg.meanThroughput += r.acceptedFlitsPerNodePerCycle;
            if (ok == 0) {
                avg.minLatency = r.avgLatencyCycles;
                avg.maxLatency = r.avgLatencyCycles;
            } else {
                avg.minLatency =
                    std::min(avg.minLatency, r.avgLatencyCycles);
                avg.maxLatency =
                    std::max(avg.maxLatency, r.avgLatencyCycles);
            }
            ++ok;
        }
        if (ok > 0) {
            avg.meanLatency /= ok;
            avg.meanPowerWatts /= ok;
            avg.meanThroughput /= ok;
        }
        points.push_back(avg);
    }
    return points;
}

double
Sweep::zeroLoadLatency(const NetworkConfig& network,
                       const TrafficConfig& traffic, const SimConfig& sim)
{
    TrafficConfig t = traffic;
    t.injectionRate = 0.002;
    SimConfig s = sim;
    s.samplePackets = std::min<std::uint64_t>(sim.samplePackets, 500);
    Simulation run(network, t, s);
    return run.run().avgLatencyCycles;
}

double
Sweep::saturationRate(const std::vector<SweepPoint>& points,
                      double zero_load_latency)
{
    assert(zero_load_latency > 0.0);
    for (const auto& p : points) {
        if (!p.report.completed ||
            p.report.avgLatencyCycles > 2.0 * zero_load_latency) {
            return p.injectionRate;
        }
    }
    return -1.0;
}

std::vector<double>
Sweep::linspace(double first, double last, unsigned count)
{
    assert(count >= 2 && last >= first);
    std::vector<double> v;
    v.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        v.push_back(first + (last - first) * i /
                    static_cast<double>(count - 1));
    }
    return v;
}

} // namespace orion
