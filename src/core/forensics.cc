#include "core/forensics.hh"

#include <sstream>

namespace orion {

namespace {

const char*
faultKindName(net::FaultKind kind)
{
    switch (kind) {
      case net::FaultKind::BitError:   return "bit-error";
      case net::FaultKind::LinkOutage: return "link-outage";
    }
    return "unknown";
}

} // namespace

std::string
forensicSnapshot(Simulation& sim, const std::string& reason)
{
    net::Network& net = sim.network();
    const unsigned nodes = net.topology().numNodes();

    std::ostringstream out;
    out << "{\n";
    out << "  \"reason\": \"" << report::jsonEscape(reason) << "\",\n";
    out << "  \"cycle\": " << sim.simulator().now() << ",\n";

    const net::SharedState& shared = net.shared();
    out << "  \"sample\": {\"injected\": " << shared.sampleInjected
        << ", \"ejected\": " << shared.sampleEjected
        << ", \"lost\": " << shared.sampleLost
        << ", \"remaining\": " << shared.sampleRemaining << "},\n";
    out << "  \"packets\": {\"injected\": " << net.totalInjected()
        << ", \"ejected\": " << net.totalEjected()
        << ", \"lost\": " << net.totalLost()
        << ", \"unreachable\": " << net.totalUnreachable()
        << ", \"in_flight\": " << net.inFlight() << "},\n";

    // Per-router stall map: frozen_cycles is how long each router has
    // held resident flits without forwarding any (watchdog grain;
    // empty before the drain phase runs).
    const std::vector<sim::Cycle>& frozen = sim.routerFrozenCycles();
    out << "  \"routers\": [\n";
    for (unsigned n = 0; n < nodes; ++n) {
        const router::Router& r = net.router(static_cast<int>(n));
        std::size_t credits = 0;
        for (unsigned p = 0; p < r.params().ports; ++p) {
            const router::CreditCounter* c = r.outputCreditCounter(p);
            if (c == nullptr || c->unlimited())
                continue;
            for (unsigned v = 0; v < c->vcs(); ++v)
                credits += c->available(v);
        }
        out << "    {\"node\": " << n << ", \"resident\": "
            << r.residentFlits() << ", \"arrived\": "
            << r.flitsArrived() << ", \"forwarded\": "
            << r.flitsForwarded() << ", \"discarded\": "
            << r.flitsDiscarded() << ", \"frozen_cycles\": "
            << (n < frozen.size() ? frozen[n] : 0)
            << ", \"output_credits\": "
            << credits << "}" << (n + 1 < nodes ? "," : "") << "\n";
    }
    out << "  ],\n";

    out << "  \"endpoints\": [\n";
    for (unsigned n = 0; n < nodes; ++n) {
        const net::Node& ep = net.endpoint(static_cast<int>(n));
        out << "    {\"node\": " << n << ", \"source_queue\": "
            << ep.sourceQueueLength() << ", \"injected\": "
            << ep.packetsInjected() << ", \"ejected\": "
            << ep.packetsEjected() << ", \"lost\": "
            << ep.packetsLost() << ", \"unreachable\": "
            << ep.packetsUnreachable() << "}"
            << (n + 1 < nodes ? "," : "") << "\n";
    }
    out << "  ]";

    if (const net::HealthMonitor* health = sim.healthMonitor()) {
        out << ",\n  \"health\": {\"epoch\": " << health->epoch()
            << ", \"reroutes\": " << health->reroutes()
            << ", \"down_links\": [";
        const auto down = health->downLinks();
        for (std::size_t i = 0; i < down.size(); ++i)
            out << (i ? ", " : "") << down[i];
        out << "]}";
    }

    if (const net::DeadlockDetector* det = sim.deadlockDetector()) {
        out << ",\n  \"deadlock\": {\"detections\": "
            << det->detections() << ", \"recovered\": "
            << det->recoveries() << ", \"unrecoverable\": "
            << (det->unrecoverable() ? "true" : "false");
        if (!det->waitGraphJson().empty())
            out << ", \"wait_graph\": " << det->waitGraphJson();
        out << "}";
    }

    if (const net::FaultInjector* inj = net.faultInjector()) {
        out << ",\n  \"faults\": {\n";
        out << "    \"flits_corrupted\": " << inj->flitsCorrupted()
            << ",\n";
        out << "    \"flits_outage_dropped\": "
            << inj->flitsOutageDropped() << ",\n";
        out << "    \"flits_discarded\": " << inj->flitsDiscarded()
            << ",\n";
        out << "    \"packets_retransmitted\": "
            << inj->packetsRetransmitted() << ",\n";
        out << "    \"packets_lost\": " << inj->packetsLost() << ",\n";
        out << "    \"event_count\": " << inj->eventCount() << ",\n";
        out << "    \"log_hash\": " << inj->faultLogHash() << ",\n";
        const auto& log = inj->log();
        constexpr std::size_t kTail = 64;
        const std::size_t first =
            log.size() > kTail ? log.size() - kTail : 0;
        out << "    \"log_tail\": [\n";
        for (std::size_t i = first; i < log.size(); ++i) {
            const net::FaultEvent& ev = log[i];
            out << "      {\"cycle\": " << ev.cycle << ", \"kind\": \""
                << faultKindName(ev.kind) << "\", \"link\": "
                << ev.link << ", \"packet\": " << ev.packetId << "}"
                << (i + 1 < log.size() ? "," : "") << "\n";
        }
        out << "    ]\n  }";
    }

    out << "\n}\n";
    return out.str();
}

} // namespace orion
