#include "core/forensics.hh"

#include <sstream>

namespace orion {

namespace {

const char*
faultKindName(net::FaultKind kind)
{
    switch (kind) {
      case net::FaultKind::BitError:   return "bit-error";
      case net::FaultKind::LinkOutage: return "link-outage";
    }
    return "unknown";
}

} // namespace

std::string
forensicSnapshot(Simulation& sim, const std::string& reason)
{
    net::Network& net = sim.network();
    const unsigned nodes = net.topology().numNodes();

    std::ostringstream out;
    out << "{\n";
    out << "  \"reason\": \"" << report::jsonEscape(reason) << "\",\n";
    out << "  \"cycle\": " << sim.simulator().now() << ",\n";

    const net::SharedState& shared = net.shared();
    out << "  \"sample\": {\"injected\": " << shared.sampleInjected
        << ", \"ejected\": " << shared.sampleEjected
        << ", \"lost\": " << shared.sampleLost
        << ", \"remaining\": " << shared.sampleRemaining << "},\n";
    out << "  \"packets\": {\"injected\": " << net.totalInjected()
        << ", \"ejected\": " << net.totalEjected()
        << ", \"lost\": " << net.totalLost()
        << ", \"in_flight\": " << net.inFlight() << "},\n";

    out << "  \"routers\": [\n";
    for (unsigned n = 0; n < nodes; ++n) {
        const router::Router& r = net.router(static_cast<int>(n));
        std::size_t credits = 0;
        for (unsigned p = 0; p < r.params().ports; ++p) {
            const router::CreditCounter* c = r.outputCreditCounter(p);
            if (c == nullptr || c->unlimited())
                continue;
            for (unsigned v = 0; v < c->vcs(); ++v)
                credits += c->available(v);
        }
        out << "    {\"node\": " << n << ", \"resident\": "
            << r.residentFlits() << ", \"arrived\": "
            << r.flitsArrived() << ", \"forwarded\": "
            << r.flitsForwarded() << ", \"discarded\": "
            << r.flitsDiscarded() << ", \"output_credits\": "
            << credits << "}" << (n + 1 < nodes ? "," : "") << "\n";
    }
    out << "  ],\n";

    out << "  \"endpoints\": [\n";
    for (unsigned n = 0; n < nodes; ++n) {
        const net::Node& ep = net.endpoint(static_cast<int>(n));
        out << "    {\"node\": " << n << ", \"source_queue\": "
            << ep.sourceQueueLength() << ", \"injected\": "
            << ep.packetsInjected() << ", \"ejected\": "
            << ep.packetsEjected() << ", \"lost\": "
            << ep.packetsLost() << "}"
            << (n + 1 < nodes ? "," : "") << "\n";
    }
    out << "  ]";

    if (const net::FaultInjector* inj = net.faultInjector()) {
        out << ",\n  \"faults\": {\n";
        out << "    \"flits_corrupted\": " << inj->flitsCorrupted()
            << ",\n";
        out << "    \"flits_outage_dropped\": "
            << inj->flitsOutageDropped() << ",\n";
        out << "    \"flits_discarded\": " << inj->flitsDiscarded()
            << ",\n";
        out << "    \"packets_retransmitted\": "
            << inj->packetsRetransmitted() << ",\n";
        out << "    \"packets_lost\": " << inj->packetsLost() << ",\n";
        out << "    \"event_count\": " << inj->eventCount() << ",\n";
        out << "    \"log_hash\": " << inj->faultLogHash() << ",\n";
        const auto& log = inj->log();
        constexpr std::size_t kTail = 64;
        const std::size_t first =
            log.size() > kTail ? log.size() - kTail : 0;
        out << "    \"log_tail\": [\n";
        for (std::size_t i = first; i < log.size(); ++i) {
            const net::FaultEvent& ev = log[i];
            out << "      {\"cycle\": " << ev.cycle << ", \"kind\": \""
                << faultKindName(ev.kind) << "\", \"link\": "
                << ev.link << ", \"packet\": " << ev.packetId << "}"
                << (i + 1 < log.size() ? "," : "") << "\n";
        }
        out << "    ]\n  }";
    }

    out << "\n}\n";
    return out.str();
}

} // namespace orion
