#include "core/build_info.hh"

#include <unistd.h>

// Fallbacks keep the TU compilable outside CMake (e.g. tooling that
// compiles single files without the provenance definitions).
#ifndef ORION_BUILD_GIT_SHA
#define ORION_BUILD_GIT_SHA "unknown"
#endif
#ifndef ORION_BUILD_COMPILER
#define ORION_BUILD_COMPILER "unknown"
#endif
#ifndef ORION_BUILD_FLAGS
#define ORION_BUILD_FLAGS ""
#endif
#ifndef ORION_BUILD_TYPE
#define ORION_BUILD_TYPE "unknown"
#endif

namespace orion::core {

const BuildInfo&
buildInfo()
{
    static const BuildInfo info{ORION_BUILD_COMPILER, ORION_BUILD_FLAGS,
                                ORION_BUILD_GIT_SHA, ORION_BUILD_TYPE};
    return info;
}

std::string
hostName()
{
    char buf[256] = {};
    if (::gethostname(buf, sizeof buf - 1) != 0)
        return "unknown";
    buf[sizeof buf - 1] = '\0';
    return buf[0] != '\0' ? std::string(buf) : std::string("unknown");
}

} // namespace orion::core
