#include "core/model_cli.hh"

#include <functional>
#include <map>
#include <stdexcept>

#include "core/report.hh"
#include "power/arbiter_model.hh"
#include "power/buffer_model.hh"
#include "power/central_buffer_model.hh"
#include "power/crossbar_model.hh"
#include "power/link_model.hh"
#include "tech/tech_node.hh"

namespace orion::cli {

namespace {

using orion::report::fmt;
using orion::report::fmtEng;

[[noreturn]] void
fail(const std::string& what)
{
    throw std::invalid_argument("orion_models: " + what +
                                " (--help for usage)");
}

/** Parsed option map: every option takes one value except flags. */
struct Query
{
    std::string component;
    std::map<std::string, std::string> values;
    bool muxTree = false;
    bool csv = false;

    double
    number(const std::string& key, double fallback) const
    {
        const auto it = values.find(key);
        if (it == values.end())
            return fallback;
        try {
            std::size_t used = 0;
            const double v = std::stod(it->second, &used);
            if (used != it->second.size())
                fail(key + ": not a number: '" + it->second + "'");
            return v;
        } catch (const std::invalid_argument&) {
            fail(key + ": not a number: '" + it->second + "'");
        } catch (const std::out_of_range&) {
            fail(key + ": out of range: '" + it->second + "'");
        }
    }

    unsigned
    count(const std::string& key, double fallback = -1.0) const
    {
        const double v = number(key, fallback);
        if (v < 0.0)
            fail(key + " is required");
        if (v != static_cast<unsigned>(v))
            fail(key + " must be a whole number");
        return static_cast<unsigned>(v);
    }

    bool has(const std::string& key) const
    {
        return values.count(key) > 0;
    }
};

Query
parseQuery(const std::vector<std::string>& args)
{
    Query q;
    q.component = args.front();
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "--mux-tree") {
            q.muxTree = true;
        } else if (a == "--csv") {
            q.csv = true;
        } else if (a.rfind("--", 0) == 0) {
            if (i + 1 >= args.size())
                fail(a + ": missing value");
            q.values[a.substr(2)] = args[++i];
        } else {
            fail("unexpected argument '" + a + "'");
        }
    }
    return q;
}

tech::TechNode
techFrom(const Query& q)
{
    const double feature = q.number("feature-um", 0.1);
    const double vdd = q.number("vdd", 1.2);
    const double ghz = q.number("freq-ghz", 2.0);
    if (feature <= 0.0 || vdd <= 0.0 || ghz <= 0.0)
        fail("--feature-um, --vdd and --freq-ghz must be positive");
    return tech::TechNode::scaled(feature, vdd, ghz * 1e9);
}

std::string
render(const Query& q, report::Table& t)
{
    return q.csv ? report::formatCsv(t) : report::formatTable(t);
}

std::string
bufferQuery(const Query& q, const tech::TechNode& tech)
{
    const power::BufferParams p{
        q.count("flits"), q.count("bits"),
        q.count("read-ports", 1), q.count("write-ports", 1)};
    const power::BufferModel m(tech, p);
    report::Table t;
    t.title = "FIFO buffer model (Table 2)";
    t.headers = {"quantity", "value"};
    t.addRow({"L_wl", fmt(m.wordlineLengthUm(), 1) + " um"});
    t.addRow({"L_bl", fmt(m.bitlineLengthUm(), 1) + " um"});
    t.addRow({"C_wl", fmtEng(m.wordlineCap(), "F", 2)});
    t.addRow({"C_br", fmtEng(m.readBitlineCap(), "F", 2)});
    t.addRow({"C_bw", fmtEng(m.writeBitlineCap(), "F", 2)});
    t.addRow({"C_chg", fmtEng(m.prechargeCap(), "F", 2)});
    t.addRow({"C_cell", fmtEng(m.cellCap(), "F", 2)});
    t.addRow({"E_read", fmtEng(m.readEnergy(), "J", 2)});
    t.addRow({"E_wrt (avg)", fmtEng(m.avgWriteEnergy(), "J", 2)});
    t.addRow({"area", fmt(m.areaUm2() / 1e6, 4) + " mm2"});
    return render(q, t);
}

std::string
crossbarQuery(const Query& q, const tech::TechNode& tech)
{
    const power::CrossbarParams p{
        q.count("inputs"), q.count("outputs"), q.count("width"),
        q.muxTree ? power::CrossbarKind::MuxTree
                  : power::CrossbarKind::Matrix,
        q.number("load-ff", 0.0) * 1e-15};
    const power::CrossbarModel m(tech, p);
    report::Table t;
    t.title = q.muxTree ? "mux-tree crossbar model (Table 3)"
                        : "matrix crossbar model (Table 3)";
    t.headers = {"quantity", "value"};
    t.addRow({"L_in", fmt(m.inputLengthUm(), 1) + " um"});
    t.addRow({"L_out", fmt(m.outputLengthUm(), 1) + " um"});
    t.addRow({"C_in/bit", fmtEng(m.inputCap(), "F", 2)});
    t.addRow({"C_out/bit", fmtEng(m.outputCap(), "F", 2)});
    t.addRow({"C_xb_ctr", fmtEng(m.controlCap(), "F", 2)});
    t.addRow({"E_xb (avg)", fmtEng(m.avgTraversalEnergy(), "J", 2)});
    t.addRow({"E_xb_ctr", fmtEng(m.controlEnergy(), "J", 2)});
    t.addRow({"area", fmt(m.areaUm2() / 1e6, 4) + " mm2"});
    return render(q, t);
}

std::string
arbiterQuery(const Query& q, const tech::TechNode& tech)
{
    power::ArbiterKind kind = power::ArbiterKind::Matrix;
    if (q.has("kind")) {
        const std::string& k = q.values.at("kind");
        if (k == "matrix")
            kind = power::ArbiterKind::Matrix;
        else if (k == "rr")
            kind = power::ArbiterKind::RoundRobin;
        else if (k == "queuing")
            kind = power::ArbiterKind::Queuing;
        else
            fail("--kind: unknown arbiter kind '" + k + "'");
    }
    const power::ArbiterModel m(
        tech, {q.count("requests"), kind,
               q.number("xbar-ctrl-ff", 0.0) * 1e-15});
    report::Table t;
    t.title = "arbiter model (Table 4)";
    t.headers = {"quantity", "value"};
    t.addRow({"priority flip-flops",
              std::to_string(m.priorityFlipFlops())});
    t.addRow({"C_req", fmtEng(m.requestCap(), "F", 2)});
    t.addRow({"C_pri", fmtEng(m.priorityCap(), "F", 2)});
    t.addRow({"C_int", fmtEng(m.internalCap(), "F", 2)});
    t.addRow({"C_gnt", fmtEng(m.grantCap(), "F", 2)});
    t.addRow({"E_arb (avg)",
              fmtEng(m.avgArbitrationEnergy(), "J", 2)});
    return render(q, t);
}

std::string
centralBufferQuery(const Query& q, const tech::TechNode& tech)
{
    const power::CentralBufferParams p{
        q.count("banks"),          q.count("rows"),
        q.count("bits"),           q.count("read-ports", 2),
        q.count("write-ports", 2), q.count("router-ports", 5),
        2};
    const power::CentralBufferModel m(tech, p);
    report::Table t;
    t.title = "central buffer model (hierarchical, Section 3.2)";
    t.headers = {"quantity", "value"};
    t.addRow({"bank E_read", fmtEng(m.bankModel().readEnergy(), "J",
                                    2)});
    t.addRow({"E_write (avg)", fmtEng(m.avgWriteEnergy(), "J", 2)});
    t.addRow({"E_read (avg)", fmtEng(m.avgReadEnergy(), "J", 2)});
    t.addRow({"area", fmt(m.areaUm2() / 1e6, 4) + " mm2"});
    return render(q, t);
}

std::string
linkQuery(const Query& q, const tech::TechNode& tech)
{
    const power::OnChipLinkModel m(
        tech, q.number("length-um", -1.0) > 0
                  ? q.number("length-um", -1.0)
                  : (fail("--length-um is required"), 0.0),
        q.count("width"));
    report::Table t;
    t.title = "on-chip link model";
    t.headers = {"quantity", "value"};
    t.addRow({"C_wire/bit", fmtEng(m.wireCap(), "F", 2)});
    t.addRow({"E_link (avg)", fmtEng(m.avgTraversalEnergy(), "J", 2)});
    t.addRow({"E_link/bit", fmtEng(m.traversalEnergy(1), "J", 2)});
    return render(q, t);
}

std::string
c2cLinkQuery(const Query& q, const tech::TechNode& tech)
{
    const power::ChipToChipLinkModel m(q.number("watts", 3.0));
    report::Table t;
    t.title = "chip-to-chip link model (constant power)";
    t.headers = {"quantity", "value"};
    t.addRow({"power", fmt(m.powerWatts(), 2) + " W"});
    t.addRow({"energy/cycle",
              fmtEng(m.energyOver(tech.cyclePeriod(), 1.0), "J", 2)});
    return render(q, t);
}

} // namespace

std::string
modelUsage()
{
    return "usage: orion_models COMPONENT [options]\n"
           "\n"
           "components:\n"
           "  buffer          --flits B --bits F [--read-ports N] "
           "[--write-ports N]\n"
           "  crossbar        --inputs I --outputs O --width W "
           "[--mux-tree] [--load-ff F]\n"
           "  arbiter         --requests R [--kind matrix|rr|queuing] "
           "[--xbar-ctrl-ff F]\n"
           "  central-buffer  --banks N --rows N --bits F "
           "[--read-ports N] [--write-ports N] [--router-ports N]\n"
           "  link            --length-um L --width W\n"
           "  c2c-link        [--watts W]\n"
           "\n"
           "common options:\n"
           "  --feature-um F   drawn feature size (default 0.1)\n"
           "  --vdd V          supply voltage (default 1.2)\n"
           "  --freq-ghz G     clock (default 2.0)\n"
           "  --csv            CSV output\n";
}

std::string
runModelQuery(const std::vector<std::string>& args)
{
    if (args.empty() || args.front() == "--help" || args.front() == "-h")
        return modelUsage();

    const Query q = parseQuery(args);
    const tech::TechNode tech = techFrom(q);

    if (q.component == "buffer")
        return bufferQuery(q, tech);
    if (q.component == "crossbar")
        return crossbarQuery(q, tech);
    if (q.component == "arbiter")
        return arbiterQuery(q, tech);
    if (q.component == "central-buffer")
        return centralBufferQuery(q, tech);
    if (q.component == "link")
        return linkQuery(q, tech);
    if (q.component == "c2c-link")
        return c2cLinkQuery(q, tech);
    fail("unknown component '" + q.component + "'");
}

} // namespace orion::cli
