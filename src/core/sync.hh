/**
 * @file
 * Annotated synchronization primitives (see docs/QUALITY.md,
 * "Static analysis").
 *
 * Two kinds of capability back the ORION_GUARDED_BY annotations:
 *
 *  - `Mutex` / `LockGuard` / `CondVar` — a real std::mutex wrapper for
 *    state that is genuinely contended today (the executor work
 *    queue). Same runtime behavior as the std primitives; the wrapper
 *    exists so Clang's thread-safety analysis can track acquisition.
 *
 *  - `Role` / `RoleGuard` — a zero-size, zero-cost capability for
 *    state that is serialized *structurally* today: one Simulation
 *    owns its EventBus, pools, and registries, so no lock is needed —
 *    but the road to intra-sim parallelism (ROADMAP item 1b) will
 *    change that. Guarding such state by a Role forces every access
 *    path through an explicitly annotated point NOW, at zero runtime
 *    cost (acquire/release compile to nothing). When a structure
 *    later becomes cross-thread, its Role is swapped for a Mutex and
 *    every access site is already enumerated and checked — forgetting
 *    one is a compile error today, not a race tomorrow.
 */

#ifndef ORION_CORE_SYNC_HH
#define ORION_CORE_SYNC_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/annotations.hh"

namespace orion::core {

/** Annotated exclusive mutex (wraps std::mutex). */
class ORION_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ORION_ACQUIRE() { m_.lock(); }
    void unlock() ORION_RELEASE() { m_.unlock(); }
    bool tryLock() ORION_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/** RAII lock over a Mutex (the annotated std::lock_guard). */
class ORION_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex& mutex) ORION_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~LockGuard() ORION_RELEASE() { mutex_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

  private:
    Mutex& mutex_;
};

/**
 * Condition variable usable while holding a core::Mutex. wait()
 * requires the mutex held on entry and holds it again on return (the
 * interior release/reacquire is invisible to callers, like
 * std::condition_variable's); callers recheck their predicate in the
 * usual while loop, which keeps every guarded read at the call site
 * where the analysis can see the lock.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /** Block until notified (spurious wakeups possible). */
    void
    wait(Mutex& mutex) ORION_REQUIRES(mutex)
    {
        // Adopt the already-held mutex for the wait, then release the
        // unique_lock's ownership claim so the caller keeps holding it.
        std::unique_lock<std::mutex> lock(mutex.m_, std::adopt_lock);
        cv_.wait(lock);
        lock.release();
    }

    /**
     * Block until notified or the timeout elapses (spurious wakeups
     * possible); returns false on timeout. Same mutex discipline as
     * wait(). Timed waits serve periodic background work (heartbeat
     * writers); simulation code never depends on them.
     */
    bool
    waitFor(Mutex& mutex, double seconds) ORION_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> lock(mutex.m_, std::adopt_lock);
        const std::cv_status st = cv_.wait_for(
            lock, std::chrono::duration<double>(seconds));
        lock.release();
        return st == std::cv_status::no_timeout;
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

/**
 * Zero-cost capability: a serialization domain enforced by structure
 * (single ownership, phase discipline) rather than by a lock.
 * acquire()/release() compile to nothing — the value is entirely in
 * the static analysis, which makes every access to Role-guarded state
 * name its serialization domain. Const so that const methods of the
 * owning class can acquire it (observers are part of the domain too).
 */
class ORION_CAPABILITY("role") Role
{
  public:
    Role() = default;
    Role(const Role&) = delete;
    Role& operator=(const Role&) = delete;

    void acquire() const ORION_ACQUIRE() {}
    void release() const ORION_RELEASE() {}
};

/** RAII scope for a Role (zero runtime cost; see Role). */
class ORION_SCOPED_CAPABILITY RoleGuard
{
  public:
    explicit RoleGuard(const Role& role) ORION_ACQUIRE(role)
        : role_(role)
    {
        role_.acquire();
    }

    ~RoleGuard() ORION_RELEASE() { role_.release(); }

    RoleGuard(const RoleGuard&) = delete;
    RoleGuard& operator=(const RoleGuard&) = delete;

  private:
    const Role& role_;
};

} // namespace orion::core

#endif // ORION_CORE_SYNC_HH
