#include "core/log.hh"

#include <cstdarg>
#include <cstdlib>
#include <ctime>
#include <stdexcept>

#include <chrono>

namespace orion::core::log {

namespace {

/// Wall-clock seconds since the Unix epoch (observability only; never
/// feeds results).
double
nowUnixSeconds()
{
    const auto now = // observability only
        std::chrono::system_clock::now() // lint-allow: nondeterminism
            .time_since_epoch();
    return std::chrono::duration<double>(now).count();
}

void
appendNumber(std::string& out, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

} // namespace

const char*
levelName(Level level)
{
    switch (level) {
    case Level::Debug: return "debug";
    case Level::Info: return "info";
    case Level::Warn: return "warn";
    case Level::Error: return "error";
    case Level::Off: return "off";
    }
    return "info";
}

bool
parseLevel(const std::string& text, Level& out)
{
    if (text == "debug") { out = Level::Debug; return true; }
    if (text == "info") { out = Level::Info; return true; }
    if (text == "warn") { out = Level::Warn; return true; }
    if (text == "error") { out = Level::Error; return true; }
    if (text == "off") { out = Level::Off; return true; }
    return false;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

Field
str(const char* key, std::string value)
{
    return Field{key, std::move(value), false};
}

Field
num(const char* key, double value)
{
    std::string v;
    appendNumber(v, value);
    return Field{key, std::move(v), true};
}

Field
u64(const char* key, std::uint64_t value)
{
    return Field{key, std::to_string(value), true};
}

Field
boolean(const char* key, bool value)
{
    return Field{key, value ? "true" : "false", true};
}

std::string
strf(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), static_cast<std::size_t>(n) + 1, fmt,
                       ap2);
    }
    va_end(ap2);
    return out;
}

void
rawStderr(const std::string& bytes)
{
    std::fwrite(bytes.data(), 1, bytes.size(), stderr);
    std::fflush(stderr);
}

Logger&
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::configure(const std::string& path, Level level)
{
    LockGuard lock(mutex_);
    if (sink_ != nullptr) {
        std::fclose(sink_);
        sink_ = nullptr;
    }
    level_.store(static_cast<int>(Level::Off),
                 std::memory_order_relaxed);
    if (path.empty() || level == Level::Off)
        return;
    std::FILE* f = std::fopen(path.c_str(), "a");
    if (f == nullptr)
        throw std::runtime_error("cannot open log file '" + path + "'");
    sink_ = f;
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

void
Logger::configureFromEnv()
{
    const char* path = std::getenv("ORION_LOG");
    if (path == nullptr || path[0] == '\0')
        return;
    Level level = Level::Info;
    if (const char* lv = std::getenv("ORION_LOG_LEVEL"))
        parseLevel(lv, level); // junk -> keep info
    configure(path, level);
}

void
Logger::event(Level level, const char* name,
              std::initializer_list<Field> fields)
{
    if (!sinkEnabled(level))
        return;
    writeLine(level, name, fields, nullptr);
}

void
Logger::diag(Level level, const char* name, const std::string& message,
             std::initializer_list<Field> fields)
{
    // The stderr bytes are part of the CLI's observable behavior
    // (tools/check.sh greps them); forward them unmodified.
    std::fwrite(message.data(), 1, message.size(), stderr);
    if (sinkEnabled(level))
        writeLine(level, name, fields, &message);
}

void
Logger::reset()
{
    configure(std::string{}, Level::Off);
}

void
Logger::writeLine(Level level, const char* name,
                  std::initializer_list<Field> fields,
                  const std::string* message)
{
    std::string line;
    line.reserve(128);
    line += "{\"ts\":";
    appendNumber(line, nowUnixSeconds());
    line += ",\"level\":\"";
    line += levelName(level);
    line += "\",\"event\":\"";
    line += jsonEscape(name);
    line += '"';
    for (const Field& f : fields) {
        line += ",\"";
        line += jsonEscape(f.key);
        line += "\":";
        if (f.raw) {
            line += f.value;
        } else {
            line += '"';
            line += jsonEscape(f.value);
            line += '"';
        }
    }
    if (message != nullptr) {
        std::string m = *message;
        while (!m.empty() && m.back() == '\n')
            m.pop_back();
        line += ",\"msg\":\"";
        line += jsonEscape(m);
        line += '"';
    }
    line += "}\n";

    LockGuard lock(mutex_);
    if (sink_ == nullptr)
        return; // detached between the level check and here
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fflush(sink_);
}

} // namespace orion::core::log
