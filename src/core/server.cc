#include "core/server.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <optional>
#include <thread>

#include <stdlib.h>
#include <unistd.h>

#include "core/forensics.hh"
#include "core/isolate.hh"
#include "core/log.hh"
#include "sim/rng.hh"

namespace orion::core {

namespace {

/** Monotonic seconds for job deadline accounting (wall-clock by
 * design; Deadline outcomes are never cached or journaled). */
double
monotonicSeconds()
{
    const auto t = std::chrono::steady_clock::now(); // lint-allow: nondeterminism
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

/** First line of an isolate-mode worker's --report-out file, parsed;
 * false when missing or corrupt (the crash triage handles it). */
bool
readWorkerEntry(const std::string& path, CheckpointEntry& out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line))
        return false;
    try {
        out = parseEntry(line);
    } catch (const CheckpointError&) {
        return false;
    }
    return true;
}

} // namespace

const char*
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued:    return "queued";
      case JobState::Running:   return "running";
      case JobState::Done:      return "done";
      case JobState::Failed:    return "failed";
      case JobState::Cancelled: return "cancelled";
    }
    return "unknown";
}

Server::Server(const ServerOptions& opts) : opts_(opts)
{
    if (opts_.isolate) {
        char tmpl[] = "/tmp/orion_served.XXXXXX";
        const char* dir = ::mkdtemp(tmpl);
        if (dir == nullptr)
            throw std::runtime_error(
                "orion server: cannot create isolate scratch dir");
        tmpDir_ = dir;
    }
    const unsigned n = std::max(1u, opts_.workers);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

Server::~Server()
{
    drain();
    if (!tmpDir_.empty())
        ::rmdir(tmpDir_.c_str()); // best-effort (reports are unlinked)
}

std::uint64_t
Server::submit(const JobSpec& spec, std::string& error_code,
               std::string& error_message)
{
    core::LockGuard lock(mutex_);
    if (draining_) {
        error_code = "draining";
        error_message = "the daemon is shutting down";
        return 0;
    }
    if (queue_.size() >= opts_.queueMax) {
        ++rejectedQueueFull_;
        error_code = "queue_full";
        error_message =
            "queue high-water mark reached (" +
            std::to_string(opts_.queueMax) + " queued jobs); retry "
            "after backoff";
        return 0;
    }
    const std::uint64_t id = nextJobId_++;
    auto job = std::make_unique<Job>();
    job->spec = spec;
    job->status.id = id;
    job->status.state = JobState::Queued;
    job->status.pointsTotal = spec.rates.size();
    jobs_[id] = std::move(job);
    queue_.push_back(id);
    ++submitted_;
    cv_.notifyOne();
    return id;
}

bool
Server::status(std::uint64_t id, JobStatus& out) const
{
    core::LockGuard lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    out = it->second->status;
    return true;
}

bool
Server::cancelJob(std::uint64_t id)
{
    core::LockGuard lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    Job& job = *it->second;
    if (job.status.state == JobState::Queued) {
        job.status.state = JobState::Cancelled;
        job.status.error = "cancelled";
        ++cancelled_;
        // Leave the id in queue_; workers skip non-Queued entries.
    }
    job.token.cancel(CancelCause::Interrupt);
    return true;
}

ServerStats
Server::stats() const
{
    core::LockGuard lock(mutex_);
    ServerStats s;
    s.submitted = submitted_;
    s.rejectedQueueFull = rejectedQueueFull_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.queueDepth = queue_.size();
    s.running = running_;
    s.pointsComputed = pointsComputed_;
    s.pointsFromCache = pointsFromCache_;
    return s;
}

void
Server::drain()
{
    {
        core::LockGuard lock(mutex_);
        if (!draining_) {
            draining_ = true;
            // Queued jobs are cancelled — only in-flight work is
            // drained; SIGTERM should not wait for a deep backlog.
            for (const std::uint64_t id : queue_) {
                const auto it = jobs_.find(id);
                if (it != jobs_.end() &&
                    it->second->status.state == JobState::Queued) {
                    it->second->status.state = JobState::Cancelled;
                    it->second->status.error = "cancelled (drain)";
                    ++cancelled_;
                }
            }
            queue_.clear();
        }
        cv_.notifyAll();
    }
    if (!joined_) {
        joined_ = true;
        for (std::thread& t : workers_) {
            if (t.joinable())
                t.join();
        }
    }
}

void
Server::workerMain()
{
    for (;;) {
        Job* job = nullptr;
        {
            core::LockGuard lock(mutex_);
            for (;;) {
                while (!queue_.empty()) {
                    const std::uint64_t id = queue_.front();
                    queue_.pop_front();
                    const auto it = jobs_.find(id);
                    if (it == jobs_.end() ||
                        it->second->status.state != JobState::Queued)
                        continue; // cancelled while queued
                    job = it->second.get();
                    break;
                }
                if (job != nullptr || draining_)
                    break;
                cv_.wait(mutex_);
            }
            if (job == nullptr)
                return; // draining and the queue is dry
            job->status.state = JobState::Running;
            ++running_;
        }
        runJob(*job);
    }
}

void
Server::runJob(Job& job)
{
    const JobSpec& spec = job.spec;
    const double budget = spec.timeoutSeconds > 0.0
                              ? spec.timeoutSeconds
                              : opts_.defaultTimeoutSeconds;
    const double t0 = monotonicSeconds();

    std::string text;
    bool any_failed = false;
    bool deadline_hit = false;
    std::string first_error;

    for (std::size_t i = 0; i < spec.rates.size(); ++i) {
        if (job.token.cancelled())
            break;
        double remaining = 0.0;
        if (budget > 0.0) {
            remaining = budget - (monotonicSeconds() - t0);
            if (remaining <= 0.0) {
                deadline_hit = true;
                break;
            }
        }
        const double rate = spec.rates[i];
        std::uint64_t key = 0;
        bool cached = false;
        CheckpointEntry entry;
        if (opts_.cache != nullptr) {
            TrafficConfig t = spec.traffic;
            t.injectionRate = rate;
            key = sweepFingerprint(spec.network, t, spec.sim, {rate},
                                   1);
            cached = opts_.cache->lookup(key, entry);
        }
        if (!cached) {
            entry = opts_.isolate
                        ? runPointIsolated(spec, rate, job.token,
                                           remaining, job.status.id, i)
                        : runPointInProcess(spec, rate, job.token,
                                            remaining);
            // Only deterministic outcomes are cached — the same
            // exclusion the checkpoint journal applies.
            const StopReason sr = entry.failed ? entry.failureReason
                                               : entry.report.stopReason;
            if (opts_.cache != nullptr &&
                sr != StopReason::Deadline &&
                sr != StopReason::Interrupted) {
                try {
                    opts_.cache->insert(key, entry);
                } catch (const CacheError& e) {
                    // A full disk must not fail the job; the result
                    // is still returned, just not cached.
                    log::event(log::Level::Warn, "served.cache_error",
                               {log::str("error", e.what())});
                }
            }
        }
        const StopReason sr = entry.failed ? entry.failureReason
                                           : entry.report.stopReason;
        if (sr == StopReason::Deadline) {
            deadline_hit = true;
            break;
        }
        if (sr == StopReason::Interrupted)
            break;
        if (entry.failed) {
            any_failed = true;
            if (first_error.empty())
                first_error = entry.failureMessage;
        }
        // The job's result addresses points by their position in the
        // submitted grid; the cache stores the canonical ri=0 form.
        entry.rateIndex = i;
        entry.seedIndex = 0;
        text += serializeEntry(entry);
        text += "\n";

        core::LockGuard lock(mutex_);
        ++job.status.pointsDone;
        if (cached) {
            ++job.status.cacheHits;
            ++pointsFromCache_;
        } else {
            ++pointsComputed_;
        }
    }

    core::LockGuard lock(mutex_);
    job.status.resultText = std::move(text);
    if (job.token.cancelled() &&
        job.token.cause() == CancelCause::Interrupt) {
        job.status.state = JobState::Cancelled;
        job.status.error = "cancelled";
        ++cancelled_;
    } else if (deadline_hit) {
        job.status.state = JobState::Failed;
        job.status.error = "deadline: the job exceeded its " +
                           std::to_string(budget) +
                           " second wall-clock budget";
        ++failed_;
    } else if (any_failed) {
        job.status.state = JobState::Failed;
        job.status.error = first_error;
        ++failed_;
    } else {
        job.status.state = JobState::Done;
        ++completed_;
    }
    --running_;
}

CheckpointEntry
Server::runPointInProcess(const JobSpec& spec, double rate,
                          CancelToken& job_token,
                          double deadline_seconds)
{
    TrafficConfig t = spec.traffic;
    t.injectionRate = rate;

    Report report;
    std::optional<PointFailure> failure;
    unsigned attempts = 1;
    const unsigned max_attempts = std::max(1u, opts_.retry.maxAttempts);
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        if (job_token.cancelled()) {
            report = Report{};
            report.stopReason = StopReason::Interrupted;
            failure = PointFailure{StopReason::Interrupted,
                                   "job cancelled before the point "
                                   "could run",
                                   std::string{}};
            break;
        }
        if (attempt > 0 && opts_.retry.backoffMs > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts_.retry.backoffMs));
        }
        SimConfig s = spec.sim;
        // Canonical single-point derivation (rate index 0): the seed
        // depends only on the configuration and the attempt, never
        // on the point's position in the job, so cache keys map to
        // one execution regardless of batching.
        s.seed = sim::deriveSeed(spec.sim.seed, 0,
                                 attempt * kRetrySeedOffset);
        if (attempt > 0 && s.debugPoisonTransient)
            s.debugPoisonRate = -1.0;
        attempts = attempt + 1;

        core::CancelToken token(&job_token);
        if (deadline_seconds > 0.0)
            token.armDeadline(deadline_seconds);
        s.cancel = &token;

        try {
            Simulation run(spec.network, t, s);
            report = run.run();
            const StopReason sr = report.stopReason;
            if (sr == StopReason::Deadline) {
                failure = PointFailure{
                    StopReason::Deadline,
                    "point exceeded the job deadline after " +
                        std::to_string(report.totalCycles) +
                        " cycles",
                    forensicSnapshot(run, "job deadline expired")};
                break;
            }
            if (sr == StopReason::Interrupted) {
                failure = PointFailure{
                    StopReason::Interrupted,
                    "interrupted mid-run (cancel/SIGTERM)",
                    std::string{}};
                break;
            }
            if (sr != StopReason::CheckFailure) {
                failure.reset();
                break;
            }
            failure = PointFailure{
                StopReason::CheckFailure,
                report.checkFailureDiagnostic,
                forensicSnapshot(run,
                                 report.checkFailureDiagnostic)};
        } catch (const std::exception& e) {
            report = Report{};
            report.stopReason = StopReason::CheckFailure;
            failure = PointFailure{StopReason::CheckFailure, e.what(),
                                   std::string{}};
        }
        // CheckFailure (thrown or reported): retry on a rederived
        // seed until the attempts budget runs out.
    }

    CheckpointEntry e;
    e.rateIndex = 0;
    e.seedIndex = 0;
    e.attempts = attempts;
    e.report = report;
    if (failure) {
        e.failed = true;
        e.failureReason = failure->reason;
        e.failureMessage = failure->message;
        e.failureForensics = failure->forensicsJson;
    }
    return e;
}

CheckpointEntry
Server::runPointIsolated(const JobSpec& spec, double rate,
                         CancelToken& job_token,
                         double deadline_seconds,
                         std::uint64_t job_id, std::size_t point_index)
{
    CheckpointEntry e;
    e.rateIndex = 0;
    e.seedIndex = 0;

    std::string crash_message;
    std::string worker_exit;
    const unsigned max_attempts = std::max(1u, opts_.retry.maxAttempts);
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        if (job_token.cancelled()) {
            e.report = Report{};
            e.report.stopReason = StopReason::Interrupted;
            e.failed = true;
            e.failureReason = StopReason::Interrupted;
            e.failureMessage =
                "job cancelled before the point could run";
            return e;
        }
        if (attempt > 0 && opts_.retry.backoffMs > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts_.retry.backoffMs));
        }
        e.attempts = attempt + 1;

        const std::uint64_t seed = sim::deriveSeed(
            spec.sim.seed, 0, attempt * kRetrySeedOffset);
        const std::string report_path =
            tmpDir_ + "/job" + std::to_string(job_id) + "_p" +
            std::to_string(point_index) + "_a" +
            std::to_string(attempt) + ".entry";

        IsolateOptions io;
        io.argv.push_back(opts_.isolateExe);
        io.argv.insert(io.argv.end(), spec.argv.begin(),
                       spec.argv.end());
        // Appended flags win: the worker runs exactly this point's
        // rate (hexfloat for bit-exactness) and derived seed.
        io.argv.push_back("--rate");
        io.argv.push_back(exactDouble(rate));
        io.argv.push_back("--seed");
        io.argv.push_back(std::to_string(seed));
        io.argv.push_back("--report-out");
        io.argv.push_back(report_path);
        if (deadline_seconds > 0.0) {
            io.argv.push_back("--point-timeout");
            io.argv.push_back(std::to_string(deadline_seconds));
            // The cooperative deadline lives in the worker; the
            // parent watchdog only backstops a wedged process.
            io.timeoutSeconds = deadline_seconds * 2.0 + 5.0;
        }
        io.quietStdout = true;
        io.cancel = &job_token;

        const IsolateResult res = runIsolated(io);
        CheckpointEntry got;
        const bool have_entry = readWorkerEntry(report_path, got);
        std::remove(report_path.c_str());

        if (res.interrupted || (res.exited && res.exitCode == 5)) {
            e.report = Report{};
            e.report.stopReason = StopReason::Interrupted;
            e.failed = true;
            e.failureReason = StopReason::Interrupted;
            e.failureMessage = "interrupted mid-run (cancel/SIGTERM)";
            return e;
        }
        if (res.timedOut || (res.exited && res.exitCode == 6)) {
            e.report = have_entry ? got.report : Report{};
            e.report.stopReason = StopReason::Deadline;
            e.failed = true;
            e.failureReason = StopReason::Deadline;
            e.failureMessage =
                res.timedOut
                    ? "worker exceeded the watchdog deadline and "
                      "was killed (" + res.describe() + ")"
                    : (have_entry ? got.failureMessage
                                  : "worker hit --point-timeout "
                                    "(exit 6)");
            return e;
        }
        if (res.healthyExit() && have_entry) {
            e.report = got.report;
            e.failed = got.failed;
            e.failureReason = got.failureReason;
            e.failureMessage = got.failureMessage;
            e.failureForensics = got.failureForensics;
            e.workerExit = res.describe();
            if (got.failed &&
                got.failureReason == StopReason::CheckFailure &&
                attempt + 1 < max_attempts) {
                continue; // the in-process retry contract
            }
            return e;
        }
        // Crash, OOM kill, exec failure, or a healthy-looking exit
        // with no parseable report: retry, then record a structured
        // worker-crash failure.
        worker_exit = res.describe();
        crash_message = "worker crashed (" + worker_exit + ")";
        if (res.healthyExit())
            crash_message = "worker " + worker_exit +
                            " but wrote no parseable report";
        if (!res.stderrTail.empty())
            crash_message += ": " + res.stderrTail;
    }

    e.report = Report{};
    e.report.stopReason = StopReason::WorkerCrash;
    e.failed = true;
    e.failureReason = StopReason::WorkerCrash;
    e.failureMessage = crash_message;
    e.workerExit = worker_exit;
    return e;
}

} // namespace orion::core
