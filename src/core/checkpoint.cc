#include "core/checkpoint.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "core/check.hh"

namespace orion::core {

std::string
escapeField(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
          case '%':  out += "%25"; break;
          case '|':  out += "%7C"; break;
          case '\n': out += "%0A"; break;
          case '\r': out += "%0D"; break;
          default:   out += ch; break;
        }
    }
    return out;
}

namespace {

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::string
unescapeField(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out += s[i];
            continue;
        }
        if (i + 2 >= s.size())
            throw CheckpointError("checkpoint: truncated %-escape");
        const int hi = hexNibble(s[i + 1]);
        const int lo = hexNibble(s[i + 2]);
        if (hi < 0 || lo < 0)
            throw CheckpointError("checkpoint: malformed %-escape");
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
    }
    return out;
}

std::string
hex16(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

namespace {

std::uint64_t
parseU64Field(const std::string& key, std::string_view v)
{
    if (v.empty())
        throw CheckpointError("checkpoint: empty field '" + key + "'");
    const std::string s(v);
    char* end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size() || s.front() == '-')
        throw CheckpointError("checkpoint: bad integer in field '" +
                              key + "': '" + s + "'");
    return n;
}

/** Incremental configuration hasher: every value lands with a type
 * tag and terminator, so field boundaries can't alias. */
class FpHasher
{
  public:
    void
    add(std::string_view s)
    {
        h_ = fnv1a64("s:", h_);
        h_ = fnv1a64(s, h_);
        h_ = fnv1a64(";", h_);
    }

    void
    addU(std::uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "u:%llu;",
                      static_cast<unsigned long long>(v));
        h_ = fnv1a64(buf, h_);
    }

    void
    addI(long long v)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "i:%lld;", v);
        h_ = fnv1a64(buf, h_);
    }

    void
    addD(double v)
    {
        h_ = fnv1a64("d:", h_);
        h_ = fnv1a64(exactDouble(v), h_);
        h_ = fnv1a64(";", h_);
    }

    std::uint64_t hash() const { return h_; }

  private:
    std::uint64_t h_ = kFnvOffset;
};

/** The journal version understood by this build. */
constexpr const char* kHeaderPrefix = "#orion-checkpoint v1 fp=";

} // namespace

std::string
exactDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

double
parseExactDouble(const std::string& s)
{
    if (s.empty())
        throw CheckpointError("checkpoint: empty double field");
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size())
        throw CheckpointError("checkpoint: bad double '" + s + "'");
    return v;
}

std::uint64_t
fnv1a64(std::string_view s, std::uint64_t h)
{
    for (const char ch : s) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x00000100000001b3ULL;
    }
    return h;
}

std::uint64_t
sweepFingerprint(const NetworkConfig& network,
                 const TrafficConfig& traffic, const SimConfig& sim,
                 const std::vector<double>& rates, unsigned seeds)
{
    FpHasher fp;
    fp.addU(kDeterminismEpoch);

    // Network structure.
    const net::NetworkParams& n = network.net;
    fp.addU(n.dims.size());
    for (const unsigned d : n.dims)
        fp.addU(d);
    fp.addU(n.wrap ? 1 : 0);
    fp.addI(static_cast<int>(n.routerKind));
    fp.addU(n.vcs);
    fp.addU(n.bufferDepth);
    fp.addU(n.flitBits);
    fp.addU(n.packetLength);
    fp.addI(static_cast<int>(n.deadlock));
    fp.addI(static_cast<int>(n.arbiterKind));
    fp.addU(n.speculative ? 1 : 0);
    fp.addU(n.centralBuffer.capacityFlits);
    fp.addU(n.centralBuffer.writePorts);
    fp.addU(n.centralBuffer.readPorts);
    fp.addU(n.centralBuffer.pipelineLatency);
    fp.addU(n.dimOrder.size());
    for (const unsigned d : n.dimOrder)
        fp.addU(d);
    fp.addI(static_cast<int>(n.tieBreak));
    fp.addI(static_cast<int>(n.injection));

    // Technology + power-model knobs (they set the power bytes).
    const tech::TechNode& t = network.tech;
    fp.addD(t.featureUm);
    fp.addD(t.vdd);
    fp.addD(t.freqHz);
    fp.addD(t.cgPerUm);
    fp.addD(t.cdPerUm);
    fp.addD(t.cwPerUm);
    fp.addD(t.cellHeightUm);
    fp.addD(t.cellWidthUm);
    fp.addD(t.wirePitchUm);
    fp.addD(t.stageEffort);
    fp.addI(static_cast<int>(network.linkType));
    fp.addD(network.linkLengthUm);
    fp.addD(network.c2cLinkPowerWatts);
    fp.addI(static_cast<int>(network.crossbarKind));
    fp.addI(static_cast<int>(network.bufferOrg));

    // Workload (the replay trace hashes record-by-record: a changed
    // trace file is a different sweep).
    fp.addI(static_cast<int>(traffic.pattern));
    fp.addD(traffic.injectionRate);
    fp.addI(traffic.broadcastSource);
    fp.addI(traffic.hotspotNode);
    fp.addD(traffic.hotspotFraction);
    if (traffic.trace) {
        fp.addU(traffic.trace->size());
        for (const net::TraceRecord& rec : *traffic.trace) {
            fp.addU(rec.cycle);
            fp.addI(rec.src);
            fp.addI(rec.dst);
        }
    } else {
        fp.add("no-trace");
    }

    // Measurement protocol + seeds + fault schedule + drills. The
    // runtime check level gates audits, which decide when a failing
    // run fails, so it binds too.
    fp.addU(sim.warmupCycles);
    fp.addU(sim.samplePackets);
    fp.addU(sim.maxCycles);
    fp.addU(sim.watchdogCycles);
    fp.addU(sim.seed);
    fp.addU(sim.auditCycles);
    fp.addI(static_cast<int>(core::checkLevel()));
    fp.addD(sim.fault.linkBitErrorRate);
    fp.addU(sim.fault.outages.size());
    for (const net::OutageWindow& w : sim.fault.outages) {
        fp.addU(w.start);
        fp.addU(w.end);
        fp.addI(w.link);
    }
    fp.addU(sim.fault.stalls.size());
    for (const net::PortStallWindow& w : sim.fault.stalls) {
        fp.addI(w.node);
        fp.addU(w.port);
        fp.addU(w.start);
        fp.addU(w.end);
    }
    fp.addU(sim.fault.faultSeed);
    fp.addU(sim.fault.retryLimit);
    fp.addU(sim.fault.retryBackoffCycles);
    fp.addU(sim.rerouteOnOutage ? 1 : 0);
    fp.addU(sim.deadlockDetect.enabled ? 1 : 0);
    fp.addU(sim.deadlockDetect.probeCycles);
    fp.addU(sim.deadlockDetect.thresholdCycles);
    fp.addU(sim.deadlockDetect.maxRecoveries);
    fp.addD(sim.debugPoisonRate);
    fp.addU(sim.debugPoisonTransient ? 1 : 0);
    fp.addD(sim.debugSegvRate);

    // The sweep grid itself.
    fp.addU(rates.size());
    for (const double r : rates)
        fp.addD(r);
    fp.addU(seeds);

    return fp.hash();
}

std::string
checkpointHeader(std::uint64_t fingerprint)
{
    return kHeaderPrefix + hex16(fingerprint);
}

std::string
serializeEntry(const CheckpointEntry& e)
{
    std::ostringstream out;
    const Report& r = e.report;
    out << "P|ri=" << e.rateIndex << "|si=" << e.seedIndex
        << "|att=" << e.attempts;

    out << "|al=" << exactDouble(r.avgLatencyCycles)
        << "|q50=" << exactDouble(r.p50LatencyCycles)
        << "|q95=" << exactDouble(r.p95LatencyCycles)
        << "|q99=" << exactDouble(r.p99LatencyCycles)
        << "|ml=" << exactDouble(r.maxLatencyCycles)
        << "|sj=" << r.sampleInjected << "|se=" << r.sampleEjected
        << "|ol=" << exactDouble(r.offeredLoad)
        << "|tp=" << exactDouble(r.acceptedFlitsPerNodePerCycle)
        << "|tc=" << r.totalCycles << "|mc=" << r.measuredCycles
        << "|sr=" << static_cast<int>(r.stopReason)
        << "|cd=" << escapeField(r.checkFailureDiagnostic)
        << "|co=" << (r.completed ? 1 : 0)
        << "|dl=" << (r.deadlockSuspected ? 1 : 0)
        << "|mo=" << r.moduleCount;

    out << "|fc=" << r.flitsCorrupted << "|fo=" << r.flitsOutageDropped
        << "|fd=" << r.flitsDiscarded
        << "|pr=" << r.packetsRetransmitted << "|pl=" << r.packetsLost
        << "|fh=" << r.faultLogHash << "|pu=" << r.packetsUnreachable
        << "|rr=" << r.reroutes << "|dd=" << r.deadlocksDetected
        << "|dr=" << r.deadlocksRecovered;

    out << "|pw=" << exactDouble(r.networkPowerWatts)
        << "|de=" << exactDouble(r.dynamicEnergyJoules)
        << "|ef=" << exactDouble(r.energyPerFlitJoules)
        << "|b0=" << exactDouble(r.breakdownWatts.buffer)
        << "|b1=" << exactDouble(r.breakdownWatts.crossbar)
        << "|b2=" << exactDouble(r.breakdownWatts.arbiter)
        << "|b3=" << exactDouble(r.breakdownWatts.link)
        << "|b4=" << exactDouble(r.breakdownWatts.centralBuffer);

    out << "|np=";
    for (std::size_t i = 0; i < r.nodePowerWatts.size(); ++i) {
        if (i)
            out << ',';
        out << exactDouble(r.nodePowerWatts[i]);
    }
    out << "|ec=";
    for (std::size_t i = 0; i < r.eventCounts.size(); ++i) {
        if (i)
            out << ',';
        out << r.eventCounts[i];
    }

    if (e.failed) {
        out << "|f=1|flr=" << static_cast<int>(e.failureReason)
            << "|fms=" << escapeField(e.failureMessage)
            << "|fjn=" << escapeField(e.failureForensics);
    }
    if (!e.workerExit.empty())
        out << "|wx=" << escapeField(e.workerExit);

    std::string payload = out.str();
    payload += "|c=";
    payload += hex16(
        fnv1a64(std::string_view(payload.data(),
                                 payload.size() - 3 /* "|c=" */)));
    return payload;
}

CheckpointEntry
parseEntry(std::string_view line)
{
    // Verify and strip the trailing checksum first: it covers every
    // byte before "|c=", so any bit flip ahead of it is caught here.
    const std::size_t cpos = line.rfind("|c=");
    if (line.size() < 2 || line[0] != 'P' || line[1] != '|' ||
        cpos == std::string_view::npos ||
        cpos + 3 + 16 != line.size()) {
        throw CheckpointError(
            "checkpoint: malformed entry line (no checksum)");
    }
    const std::uint64_t want = fnv1a64(line.substr(0, cpos));
    if (hex16(want) != std::string(line.substr(cpos + 3)))
        throw CheckpointError("checkpoint: entry checksum mismatch");

    CheckpointEntry e;
    Report& r = e.report;
    bool saw_ri = false;
    bool saw_si = false;
    bool saw_ec = false;

    std::string_view rest = line.substr(2, cpos - 2);
    while (!rest.empty()) {
        const std::size_t bar = rest.find('|');
        const std::string_view field = rest.substr(0, bar);
        rest = bar == std::string_view::npos
                   ? std::string_view{}
                   : rest.substr(bar + 1);

        const std::size_t eq = field.find('=');
        if (eq == std::string_view::npos)
            throw CheckpointError(
                "checkpoint: field without '=' in entry");
        const std::string key(field.substr(0, eq));
        const std::string_view v = field.substr(eq + 1);
        const std::string vs(v);

        const auto u = [&] { return parseU64Field(key, v); };
        const auto d = [&] { return parseExactDouble(vs); };

        if (key == "ri") {
            e.rateIndex = u();
            saw_ri = true;
        } else if (key == "si") {
            e.seedIndex = u();
            saw_si = true;
        } else if (key == "att") {
            e.attempts = static_cast<unsigned>(u());
        } else if (key == "al") {
            r.avgLatencyCycles = d();
        } else if (key == "q50") {
            r.p50LatencyCycles = d();
        } else if (key == "q95") {
            r.p95LatencyCycles = d();
        } else if (key == "q99") {
            r.p99LatencyCycles = d();
        } else if (key == "ml") {
            r.maxLatencyCycles = d();
        } else if (key == "sj") {
            r.sampleInjected = u();
        } else if (key == "se") {
            r.sampleEjected = u();
        } else if (key == "ol") {
            r.offeredLoad = d();
        } else if (key == "tp") {
            r.acceptedFlitsPerNodePerCycle = d();
        } else if (key == "tc") {
            r.totalCycles = u();
        } else if (key == "mc") {
            r.measuredCycles = u();
        } else if (key == "sr") {
            r.stopReason = static_cast<StopReason>(u());
        } else if (key == "cd") {
            r.checkFailureDiagnostic = unescapeField(v);
        } else if (key == "co") {
            r.completed = u() != 0;
        } else if (key == "dl") {
            r.deadlockSuspected = u() != 0;
        } else if (key == "mo") {
            r.moduleCount = static_cast<std::size_t>(u());
        } else if (key == "fc") {
            r.flitsCorrupted = u();
        } else if (key == "fo") {
            r.flitsOutageDropped = u();
        } else if (key == "fd") {
            r.flitsDiscarded = u();
        } else if (key == "pr") {
            r.packetsRetransmitted = u();
        } else if (key == "pl") {
            r.packetsLost = u();
        } else if (key == "fh") {
            r.faultLogHash = u();
        } else if (key == "pu") {
            r.packetsUnreachable = u();
        } else if (key == "rr") {
            r.reroutes = u();
        } else if (key == "dd") {
            r.deadlocksDetected = u();
        } else if (key == "dr") {
            r.deadlocksRecovered = u();
        } else if (key == "pw") {
            r.networkPowerWatts = d();
        } else if (key == "de") {
            r.dynamicEnergyJoules = d();
        } else if (key == "ef") {
            r.energyPerFlitJoules = d();
        } else if (key == "b0") {
            r.breakdownWatts.buffer = d();
        } else if (key == "b1") {
            r.breakdownWatts.crossbar = d();
        } else if (key == "b2") {
            r.breakdownWatts.arbiter = d();
        } else if (key == "b3") {
            r.breakdownWatts.link = d();
        } else if (key == "b4") {
            r.breakdownWatts.centralBuffer = d();
        } else if (key == "np") {
            r.nodePowerWatts.clear();
            std::string_view list = v;
            while (!list.empty()) {
                const std::size_t comma = list.find(',');
                r.nodePowerWatts.push_back(parseExactDouble(
                    std::string(list.substr(0, comma))));
                list = comma == std::string_view::npos
                           ? std::string_view{}
                           : list.substr(comma + 1);
            }
        } else if (key == "ec") {
            std::string_view list = v;
            std::size_t idx = 0;
            while (!list.empty()) {
                const std::size_t comma = list.find(',');
                if (idx >= r.eventCounts.size())
                    throw CheckpointError(
                        "checkpoint: too many event counts");
                r.eventCounts[idx++] =
                    parseU64Field("ec", list.substr(0, comma));
                list = comma == std::string_view::npos
                           ? std::string_view{}
                           : list.substr(comma + 1);
            }
            if (idx != r.eventCounts.size())
                throw CheckpointError(
                    "checkpoint: wrong event-count arity");
            saw_ec = true;
        } else if (key == "f") {
            e.failed = u() != 0;
        } else if (key == "flr") {
            e.failureReason = static_cast<StopReason>(u());
        } else if (key == "fms") {
            e.failureMessage = unescapeField(v);
        } else if (key == "fjn") {
            e.failureForensics = unescapeField(v);
        } else if (key == "wx") {
            e.workerExit = unescapeField(v);
        } else if (key == "c") {
            // Checksum already verified above; nothing to consume.
        } else {
            throw CheckpointError(
                "checkpoint: unknown entry field '" + key + "'");
        }
    }

    if (!saw_ri || !saw_si || !saw_ec)
        throw CheckpointError(
            "checkpoint: entry missing required fields");
    return e;
}

CheckpointLoad
loadCheckpoint(const std::string& path,
               std::uint64_t expect_fingerprint)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw CheckpointError("checkpoint: cannot read '" + path +
                              "': " + std::strerror(errno));
    }

    std::string header;
    if (!std::getline(in, header) ||
        header.rfind(kHeaderPrefix, 0) != 0 ||
        header.size() !=
            std::strlen(kHeaderPrefix) + 16) {
        throw CheckpointError("checkpoint: '" + path +
                              "' has no valid header line");
    }
    const std::string fp_hex =
        header.substr(std::strlen(kHeaderPrefix));
    std::uint64_t fp = 0;
    for (const char c : fp_hex) {
        const int nib = hexNibble(c);
        if (nib < 0)
            throw CheckpointError("checkpoint: '" + path +
                                  "' has a malformed fingerprint");
        fp = (fp << 4) | static_cast<unsigned>(nib);
    }
    if (fp != expect_fingerprint) {
        throw CheckpointError(
            "checkpoint: '" + path +
            "' was written for a different configuration "
            "(fingerprint " +
            hex16(fp) + ", this sweep is " +
            hex16(expect_fingerprint) +
            "); refusing to resume — delete the file or rerun the "
            "original command line");
    }

    CheckpointLoad load;
    load.fingerprint = fp;

    // Read every remaining line; remember whether the file ended in a
    // newline (a torn final line does not).
    std::vector<std::string> lines;
    std::string cur;
    bool final_complete = true;
    char ch = 0;
    while (in.get(ch)) {
        if (ch == '\n') {
            lines.push_back(std::move(cur));
            cur.clear();
            final_complete = true;
        } else {
            cur += ch;
            final_complete = false;
        }
    }
    if (!cur.empty())
        lines.push_back(std::move(cur));

    std::size_t lineno = 1;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        ++lineno;
        const bool is_last = i + 1 == lines.size();
        try {
            if (is_last && !final_complete)
                throw CheckpointError(
                    "checkpoint: torn final line (no newline)");
            load.entries.push_back(parseEntry(lines[i]));
        } catch (const CheckpointError& e) {
            if (is_last) {
                // The torn tail of a crash: drop it, flag it — the
                // cell it would have recorded simply reruns.
                load.truncatedTail = true;
                break;
            }
            throw CheckpointError(
                "checkpoint: '" + path + "' line " +
                std::to_string(lineno) + ": " + e.what());
        }
    }
    return load;
}

CheckpointJournal::CheckpointJournal(const std::string& path,
                                     std::uint64_t fingerprint,
                                     bool resume)
    : path_(path)
{
    const int flags =
        resume ? (O_WRONLY | O_APPEND)
               : (O_WRONLY | O_CREAT | O_TRUNC | O_APPEND);
    LockGuard lock(mutex_);
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0) {
        throw CheckpointError("checkpoint: cannot open '" + path +
                              "' for writing: " +
                              std::strerror(errno));
    }
    if (!resume) {
        const std::string header =
            checkpointHeader(fingerprint) + "\n";
        if (::write(fd_, header.data(), header.size()) !=
                static_cast<ssize_t>(header.size()) ||
            ::fsync(fd_) != 0) {
            const int err = errno;
            ::close(fd_);
            fd_ = -1;
            throw CheckpointError(
                "checkpoint: cannot write header to '" + path +
                "': " + std::strerror(err));
        }
    }
}

CheckpointJournal::~CheckpointJournal()
{
    LockGuard lock(mutex_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
CheckpointJournal::append(const CheckpointEntry& e)
{
    const std::string line = serializeEntry(e) + "\n";
    LockGuard lock(mutex_);
    if (fd_ < 0)
        throw CheckpointError("checkpoint: journal already closed");
    // One write per line: O_APPEND makes concurrent appends land
    // whole, and the fsync makes the entry durable before the sweep
    // claims the cell is done.
    if (::write(fd_, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
        throw CheckpointError("checkpoint: write to '" + path_ +
                              "' failed: " + std::strerror(errno));
    }
    if (::fsync(fd_) != 0) {
        throw CheckpointError("checkpoint: fsync of '" + path_ +
                              "' failed: " + std::strerror(errno));
    }
}

} // namespace orion::core
