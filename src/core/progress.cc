#include "core/progress.hh"

#include <algorithm>
#include <cstdio>
#include <limits>

#include <unistd.h>

#include <chrono>

#include "core/log.hh"
#include "core/manifest.hh"

namespace orion::core {

namespace {

constexpr unsigned kNoSlot = std::numeric_limits<unsigned>::max();

double
monotonicSeconds()
{
    const auto now = // observability only
        std::chrono::steady_clock::now() // lint-allow: nondeterminism
            .time_since_epoch();
    return std::chrono::duration<double>(now).count();
}

double
wallUnixSeconds()
{
    const auto now = // observability only
        std::chrono::system_clock::now() // lint-allow: nondeterminism
            .time_since_epoch();
    return std::chrono::duration<double>(now).count();
}

std::string
fmtEta(double eta)
{
    if (eta < 0.0)
        return "--";
    if (eta < 120.0)
        return log::strf("%.0fs", eta);
    if (eta < 7200.0)
        return log::strf("%.1fm", eta / 60.0);
    return log::strf("%.1fh", eta / 3600.0);
}

} // namespace

ProgressTracker::ProgressTracker(Options opts)
    : opts_(std::move(opts)),
      tty_(::isatty(STDERR_FILENO) == 1),
      startUnixSeconds_(wallUnixSeconds()),
      slots_(std::max(1u, opts_.jobs))
{
    steadyBase_ = monotonicSeconds();
    pointSeconds_.reserve(256);
    const bool wantThread =
        !opts_.heartbeatPath.empty() || (opts_.progressLine && tty_);
    if (wantThread && opts_.heartbeatIntervalSeconds > 0.0)
        thread_ = std::thread([this] { threadMain(); });
    if (!opts_.heartbeatPath.empty())
        writeHeartbeat(false); // a heartbeat exists from the start
}

ProgressTracker::~ProgressTracker()
{
    finalize();
}

double
ProgressTracker::secondsSinceStart() const
{
    return monotonicSeconds() - steadyBase_;
}

unsigned
ProgressTracker::beginCell(std::uint64_t rateIndex, unsigned seedIndex)
{
    LockGuard lock(mutex_);
    for (unsigned i = 0; i < slots_.size(); ++i) {
        Slot& s = slots_[i];
        if (s.active.load(std::memory_order_relaxed))
            continue;
        s.rateIndex.store(rateIndex, std::memory_order_relaxed);
        s.seedIndex.store(seedIndex, std::memory_order_relaxed);
        s.attempt.store(1, std::memory_order_relaxed);
        s.cycles.store(0, std::memory_order_relaxed);
        s.startSeconds.store(secondsSinceStart(),
                             std::memory_order_relaxed);
        s.stallWarned.store(false, std::memory_order_relaxed);
        s.active.store(true, std::memory_order_release);
        return i;
    }
    return kNoSlot; // more in-flight cells than jobs; count-only
}

void
ProgressTracker::setAttempt(unsigned slot, unsigned attempt)
{
    if (slot >= slots_.size())
        return;
    slots_[slot].attempt.store(attempt, std::memory_order_relaxed);
}

std::atomic<std::uint64_t>*
ProgressTracker::cycleCounter(unsigned slot)
{
    if (slot >= slots_.size())
        return nullptr;
    return &slots_[slot].cycles;
}

void
ProgressTracker::endCell(unsigned slot, bool failed, double wallSeconds)
{
    {
        LockGuard lock(mutex_);
        if (slot < slots_.size())
            slots_[slot].active.store(false,
                                      std::memory_order_release);
        ++done_;
        if (failed)
            ++failed_;
        if (wallSeconds >= 0.0) {
            emaPointSeconds_ = emaPointSeconds_ <= 0.0
                                   ? wallSeconds
                                   : 0.3 * wallSeconds +
                                         0.7 * emaPointSeconds_;
            pointSeconds_.push_back(wallSeconds);
        }
    }
    if (!opts_.heartbeatPath.empty())
        writeHeartbeat(false);
    renderProgressLine();
}

void
ProgressTracker::noteCached()
{
    {
        LockGuard lock(mutex_);
        ++done_;
        ++cached_;
    }
    if (!opts_.heartbeatPath.empty())
        writeHeartbeat(false);
    renderProgressLine();
}

void
ProgressTracker::finalize()
{
    {
        LockGuard lock(mutex_);
        if (finalized_)
            return;
        finalized_ = true;
        stop_ = true;
        wake_.notifyAll();
    }
    if (thread_.joinable())
        thread_.join();
    if (!opts_.heartbeatPath.empty())
        writeHeartbeat(true);
    LockGuard lock(mutex_);
    if (lineDrawn_) {
        // Clear the rewriting line so subsequent stderr output starts
        // on a clean column.
        log::rawStderr("\r" + std::string(78, ' ') + "\r");
        lineDrawn_ = false;
    }
}

std::uint64_t
ProgressTracker::done() const
{
    LockGuard lock(mutex_);
    return done_;
}

std::uint64_t
ProgressTracker::failed() const
{
    LockGuard lock(mutex_);
    return failed_;
}

std::uint64_t
ProgressTracker::fromCheckpoint() const
{
    LockGuard lock(mutex_);
    return cached_;
}

double
ProgressTracker::etaSeconds() const
{
    LockGuard lock(mutex_);
    return etaSecondsLocked();
}

std::string
ProgressTracker::heartbeatJson() const
{
    LockGuard lock(mutex_);
    return composeJson(false);
}

double
ProgressTracker::etaSecondsLocked() const
{
    if (emaPointSeconds_ <= 0.0 || opts_.totalCells == 0)
        return -1.0;
    const std::uint64_t remaining =
        opts_.totalCells > done_ ? opts_.totalCells - done_ : 0;
    const unsigned lanes = std::max(1u, opts_.jobs);
    return static_cast<double>(remaining) * emaPointSeconds_ /
           static_cast<double>(lanes);
}

double
ProgressTracker::medianPointSecondsLocked() const
{
    if (pointSeconds_.empty())
        return -1.0;
    std::vector<double> copy = pointSeconds_;
    const std::size_t mid = copy.size() / 2;
    std::nth_element(copy.begin(),
                     copy.begin() + static_cast<std::ptrdiff_t>(mid),
                     copy.end());
    return copy[mid];
}

std::string
ProgressTracker::composeJson(bool finished) const
{
    std::string j;
    j.reserve(512);
    const double eta = etaSecondsLocked();
    const double median = medianPointSecondsLocked();
    j += "{\"schema\":\"orion-heartbeat-v1\",\"label\":\"";
    j += log::jsonEscape(opts_.label);
    j += "\",\"pid\":";
    j += std::to_string(::getpid());
    j += ",\"total\":";
    j += std::to_string(opts_.totalCells);
    j += ",\"done\":";
    j += std::to_string(done_);
    j += ",\"failed\":";
    j += std::to_string(failed_);
    j += ",\"from_checkpoint\":";
    j += std::to_string(cached_);
    j += ",\"jobs\":";
    j += std::to_string(opts_.jobs);
    j += ",\"finished\":";
    j += finished ? "true" : "false";
    j += ",\"eta_s\":";
    j += eta < 0.0 ? std::string("null") : log::strf("%.3f", eta);
    j += ",\"ema_point_s\":";
    j += emaPointSeconds_ <= 0.0 ? std::string("null")
                                 : log::strf("%.6f", emaPointSeconds_);
    j += ",\"median_point_s\":";
    j += median < 0.0 ? std::string("null")
                      : log::strf("%.6f", median);
    j += ",\"started_unix_s\":";
    j += log::strf("%.3f", startUnixSeconds_);
    j += ",\"updated_unix_s\":";
    j += log::strf("%.3f", wallUnixSeconds());
    j += ",\"workers\":[";
    bool first = true;
    const double now_s = secondsSinceStart();
    for (unsigned i = 0; i < slots_.size(); ++i) {
        const Slot& s = slots_[i];
        if (!s.active.load(std::memory_order_acquire))
            continue;
        if (!first)
            j += ',';
        first = false;
        j += "{\"slot\":";
        j += std::to_string(i);
        j += ",\"rate_index\":";
        j += std::to_string(
            s.rateIndex.load(std::memory_order_relaxed));
        j += ",\"seed_index\":";
        j += std::to_string(
            s.seedIndex.load(std::memory_order_relaxed));
        j += ",\"attempt\":";
        j += std::to_string(s.attempt.load(std::memory_order_relaxed));
        j += ",\"cycles\":";
        j += std::to_string(s.cycles.load(std::memory_order_relaxed));
        j += ",\"running_s\":";
        const double run =
            now_s - s.startSeconds.load(std::memory_order_relaxed);
        j += log::strf("%.3f", run > 0.0 ? run : 0.0);
        j += '}';
    }
    j += "]}\n";
    return j;
}

void
ProgressTracker::writeHeartbeat(bool finished)
{
    std::string j;
    {
        LockGuard lock(mutex_);
        if (heartbeatBroken_)
            return;
        j = composeJson(finished);
    }
    try {
        // writeMutex_ serializes the tmp+rename replacement; several
        // writers (worker endCell, the background thread, finalize)
        // share one staging path.
        LockGuard wlock(writeMutex_);
        writeFileAtomic(opts_.heartbeatPath, j);
    } catch (const std::exception& e) {
        LockGuard lock(mutex_);
        if (!heartbeatBroken_) {
            heartbeatBroken_ = true;
            log::event(log::Level::Error, "heartbeat.write_failed",
                       {log::str("path", opts_.heartbeatPath),
                        log::str("error", e.what())});
        }
    }
}

void
ProgressTracker::renderProgressLine()
{
    if (!opts_.progressLine || !tty_)
        return;
    LockGuard lock(mutex_);
    std::string line = log::strf(
        "\r%s: %llu/%llu done, %llu failed, ETA %s    ",
        opts_.label.c_str(),
        static_cast<unsigned long long>(done_),
        static_cast<unsigned long long>(opts_.totalCells),
        static_cast<unsigned long long>(failed_),
        fmtEta(etaSecondsLocked()).c_str());
    if (line.size() > 79)
        line.resize(79);
    log::rawStderr(line);
    lineDrawn_ = true;
}

void
ProgressTracker::checkStalls()
{
    double median = 0.0;
    std::size_t samples = 0;
    {
        LockGuard lock(mutex_);
        median = medianPointSecondsLocked();
        samples = pointSeconds_.size();
    }
    if (samples < 5 || median <= 0.0)
        return;
    const double threshold =
        std::max(opts_.stallFactor * median, opts_.stallFloorSeconds);
    const double now_s = secondsSinceStart();
    for (unsigned i = 0; i < slots_.size(); ++i) {
        Slot& s = slots_[i];
        if (!s.active.load(std::memory_order_acquire))
            continue;
        const double run =
            now_s - s.startSeconds.load(std::memory_order_relaxed);
        if (run < threshold)
            continue;
        if (s.stallWarned.exchange(true, std::memory_order_relaxed))
            continue;
        log::event(
            log::Level::Warn, "sweep.stall",
            {log::u64("slot", i),
             log::u64("rate_index",
                      s.rateIndex.load(std::memory_order_relaxed)),
             log::u64("seed_index",
                      s.seedIndex.load(std::memory_order_relaxed)),
             log::u64("attempt",
                      s.attempt.load(std::memory_order_relaxed)),
             log::u64("cycles",
                      s.cycles.load(std::memory_order_relaxed)),
             log::num("running_s", run),
             log::num("median_point_s", median),
             log::num("threshold_s", threshold)});
    }
}

void
ProgressTracker::threadMain()
{
    for (;;) {
        {
            LockGuard lock(mutex_);
            if (stop_)
                return;
            wake_.waitFor(mutex_, opts_.heartbeatIntervalSeconds);
            if (stop_)
                return;
        }
        if (!opts_.heartbeatPath.empty())
            writeHeartbeat(false);
        renderProgressLine();
        checkStalls();
    }
}

ProgressScope::ProgressScope(ProgressTracker* tracker,
                             std::uint64_t rateIndex,
                             unsigned seedIndex)
    : tracker_(tracker)
{
    if (tracker_ == nullptr)
        return;
    slot_ = tracker_->beginCell(rateIndex, seedIndex);
    startSeconds_ = monotonicSeconds();
}

ProgressScope::~ProgressScope()
{
    // An escape without end() means the cell died exceptionally.
    if (!ended_)
        end(true);
}

void
ProgressScope::setAttempt(unsigned attempt)
{
    if (tracker_ != nullptr)
        tracker_->setAttempt(slot_, attempt);
}

std::atomic<std::uint64_t>*
ProgressScope::cycles()
{
    return tracker_ != nullptr ? tracker_->cycleCounter(slot_)
                               : nullptr;
}

void
ProgressScope::end(bool failed)
{
    if (ended_)
        return;
    ended_ = true;
    if (tracker_ == nullptr)
        return;
    tracker_->endCell(slot_, failed,
                      monotonicSeconds() - startSeconds_);
}

} // namespace orion::core
