/**
 * @file
 * Command-line front end: turns argv-style options into a validated
 * (NetworkConfig, TrafficConfig, SimConfig) triple and renders run
 * reports. Lives in the library (rather than the tool's main) so the
 * parsing logic is unit-testable.
 *
 * Supported options (see usage() for the full text):
 *   --preset wh64|vc16|vc64|vc128|xb|cb
 *   --dims KxK[xK]          --mesh
 *   --vcs N --buffer N --flit-bits N --packet-length N
 *   --deadlock none|bubble|dateline
 *   --pattern uniform|broadcast|transpose|bitcomp|tornado|neighbor|
 *             hotspot|trace
 *   --rate R --broadcast-source N --hotspot N --hotspot-frac F
 *   --trace FILE
 *   --sample N --warmup N --max-cycles N --seed N
 *   --link-ber F --link-outage START:END[:LINK] --fault-seed N
 *   --retry-limit N --retry-backoff N
 *   --jobs N
 *   --csv
 *   --metrics-out FILE --sample-interval N
 *   --trace-out FILE --trace-capacity N
 */

#ifndef ORION_CORE_CLI_HH
#define ORION_CORE_CLI_HH

#include <string>
#include <vector>

#include "core/config.hh"
#include "core/simulation.hh"

namespace orion::cli {

/** Everything a parsed command line describes. */
struct Options
{
    NetworkConfig network = NetworkConfig::vc16();
    TrafficConfig traffic;
    SimConfig sim;
    /** Emit machine-readable CSV instead of the text report. */
    bool csv = false;
    /** Worker threads for sweep drivers (--jobs): 0 = hardware
     * concurrency (the default), 1 = serial. Results are identical
     * for every value; see SweepOptions::jobs. */
    unsigned jobs = 0;
    /** Append the per-node power map and event counts (text mode). */
    bool breakdown = false;
    /** Write the sampled metric time series here (--metrics-out;
     * empty = don't). Implies a default --sample-interval of 1000
     * cycles when none was given. */
    std::string metricsOut;
    /** Write the Chrome trace-event JSON here (--trace-out; empty =
     * don't). */
    std::string traceOut;
    /**
     * Wall-clock deadline in seconds for a run / each sweep point
     * (--point-timeout; <= 0 disables). Overruns stop cooperatively
     * with StopReason::Deadline. See docs/ROBUSTNESS.md.
     */
    double pointTimeoutSeconds = 0.0;
    /** Attempts per sweep cell before it is declared failed
     * (--point-retries, >= 1; default: the historical 2). */
    unsigned pointRetries = 2;
    /** Milliseconds slept before each retry (--point-backoff-ms). */
    unsigned pointBackoffMs = 0;
    /**
     * Write the run report here in the checkpoint entry line format
     * (--report-out; empty = don't): exact hexfloat doubles, so a
     * parent process (orion_sweep --isolate) can merge it
     * bit-identically with in-process results.
     */
    std::string reportOut;
    /**
     * Structured JSON-lines log sink (--log-out; empty = stderr-only
     * diagnostics, byte-identical to builds without the logger). Also
     * settable via the ORION_LOG environment variable; the flag wins.
     */
    std::string logOut;
    /** Minimum level written to the log sink (--log-level
     * debug|info|warn|error; default info). */
    std::string logLevel = "info";
    /** Write the run manifest JSON here (--manifest-out; empty =
     * don't). See core/manifest.hh for the schema. */
    std::string manifestOut;
    /** --help was requested: print usage() and exit successfully. */
    bool helpRequested = false;
};

/**
 * Parse @p args (without argv[0]). Throws std::invalid_argument with
 * a user-facing message on unknown options or malformed values.
 */
Options parse(const std::vector<std::string>& args);

/** The usage/help text. */
std::string usage();

/** Render @p report as the human-readable run summary. */
std::string formatReport(const Options& opts, const Report& report);

/** Render @p report as one CSV header + one data row. */
std::string formatCsvReport(const Options& opts, const Report& report);

/**
 * Parse a "FIRST:LAST:COUNT" rate-sweep specification into evenly
 * spaced rates. Throws std::invalid_argument on malformed or
 * non-increasing specs.
 */
std::vector<double> parseRateSpec(const std::string& spec);

} // namespace orion::cli

#endif // ORION_CORE_CLI_HH
