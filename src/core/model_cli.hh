/**
 * @file
 * Standalone power-model query front end.
 *
 * The paper (Section 3.2): "We will be distributing our power models
 * ... either as a separate power analysis tool, or as a plug-in to
 * other network simulators." orion_models is that separate tool: it
 * evaluates one Table 2-4 component model for arbitrary parameters
 * and prints its capacitances, per-operation energies and area.
 *
 * Grammar (argv after the program name):
 *   buffer          --flits B --bits F [--read-ports N]
 *                   [--write-ports N]
 *   crossbar        --inputs I --outputs O --width W [--mux-tree]
 *                   [--load-ff F]
 *   arbiter         --requests R [--kind matrix|rr|queuing]
 *   central-buffer  --banks N --rows N --bits F [--read-ports N]
 *                   [--write-ports N] [--router-ports N]
 *   link            --length-um L --width W
 *   c2c-link        [--watts W]
 * common options:   --feature-um F --vdd V --freq-ghz G --csv
 */

#ifndef ORION_CORE_MODEL_CLI_HH
#define ORION_CORE_MODEL_CLI_HH

#include <string>
#include <vector>

namespace orion::cli {

/**
 * Evaluate one model query and return its rendered table (text, or
 * CSV when --csv is given). Throws std::invalid_argument with a
 * user-facing message on bad input. An empty/--help query returns the
 * usage text.
 */
std::string runModelQuery(const std::vector<std::string>& args);

/** The usage/help text for orion_models. */
std::string modelUsage();

} // namespace orion::cli

#endif // ORION_CORE_MODEL_CLI_HH
