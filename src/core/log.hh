/**
 * @file
 * Structured, leveled JSON-lines logger (docs/OBSERVABILITY.md,
 * "Run-level observability").
 *
 * Design constraints, in order:
 *
 *  1. Byte-identity when disabled. Determinism contracts cover the
 *     CLI's stdout/CSV and its documented stderr diagnostics, so the
 *     logger never reformats those bytes: diag() forwards the exact
 *     pre-existing message to stderr and only *mirrors* a structured
 *     event into the JSON sink when one is configured. With no sink
 *     configured, behavior is bitwise what it was before the logger
 *     existed.
 *
 *  2. Zero cost when disabled. sinkEnabled() is one relaxed atomic
 *     load; event() returns immediately on it. No formatting work
 *     happens unless a sink is attached at or below the event level.
 *
 *  3. Thread safety. Sweep workers and the heartbeat thread log
 *     concurrently; each JSON line is serialized under an annotated
 *     core::Mutex and emitted with a single fwrite, so lines never
 *     interleave.
 *
 * The sink is a process-wide singleton configured once at CLI startup
 * (`--log-out FILE --log-level LVL`, or the ORION_LOG / ORION_LOG_LEVEL
 * environment variables; flags win). Library code never configures it.
 */
#ifndef ORION_CORE_LOG_HH
#define ORION_CORE_LOG_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>

#include "core/annotations.hh"
#include "core/sync.hh"

namespace orion::core::log {

enum class Level : int { Debug = 0, Info = 1, Warn = 2, Error = 3,
                         Off = 4 };

/// "debug"/"info"/"warn"/"error"/"off".
const char* levelName(Level level);

/// Parse a level name; returns false (out unchanged) on junk.
bool parseLevel(const std::string& text, Level& out);

/** One key/value in a structured event. `raw` values are emitted
 * verbatim (numbers, booleans); others are JSON-escaped strings. */
struct Field
{
    std::string key;
    std::string value;
    bool raw = false;
};

/// String field (JSON-escaped on emit).
Field str(const char* key, std::string value);
/// Numeric field (shortest round-trip formatting).
Field num(const char* key, double value);
/// Unsigned integer field (full 64-bit precision).
Field u64(const char* key, std::uint64_t value);
/// Boolean field.
Field boolean(const char* key, bool value);

/// printf-style formatting into a std::string (for diag messages).
std::string strf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Process-wide logger singleton. Use the free functions below; the
 * class is exposed for tests (attach/teardown of temporary sinks).
 */
class Logger
{
  public:
    static Logger& instance();

    /**
     * Attach the JSON-lines sink. An empty path detaches it. Throws
     * std::runtime_error if the file cannot be opened (append mode, so
     * several processes may share one log; each line is one write).
     */
    void configure(const std::string& path, Level level)
        ORION_EXCLUDES(mutex_);

    /** Attach from ORION_LOG / ORION_LOG_LEVEL if set (CLI flags call
     * configure() afterwards and win). Unparseable level -> info. */
    void configureFromEnv() ORION_EXCLUDES(mutex_);

    /// True when a sink is attached at or below `level`.
    bool
    sinkEnabled(Level level) const
    {
        return level_.load(std::memory_order_relaxed) <=
               static_cast<int>(level);
    }

    /// Emit one structured JSON line to the sink (no-op if disabled).
    void event(Level level, const char* name,
               std::initializer_list<Field> fields)
        ORION_EXCLUDES(mutex_);

    /**
     * CLI diagnostic: write `message` to stderr byte-for-byte (always,
     * preserving the pre-logger stderr contract) and mirror it as a
     * structured event (name, fields, plus the message under "msg")
     * into the sink when enabled.
     */
    void diag(Level level, const char* name, const std::string& message,
              std::initializer_list<Field> fields = {})
        ORION_EXCLUDES(mutex_);

    /// Detach the sink (tests).
    void reset() ORION_EXCLUDES(mutex_);

  private:
    Logger() = default;

    void writeLine(Level level, const char* name,
                   std::initializer_list<Field> fields,
                   const std::string* message) ORION_EXCLUDES(mutex_);

    mutable core::Mutex mutex_;
    std::FILE* sink_ ORION_GUARDED_BY(mutex_) = nullptr;
    // Lock-free fast path for sinkEnabled(); writers hold mutex_.
    std::atomic<int> level_{
        static_cast<int>(Level::Off)}; // analyze-allow: unguarded -- atomic fast path; writers hold mutex_
};

/// JSON-escape `s` (quotes, backslashes, control characters).
std::string jsonEscape(const std::string& s);

/** Write bytes to stderr unmodified and flush (progress-line
 * rendering). Every stderr write in the library funnels through
 * core/log.cc so the naked-stderr lint rule stays meaningful. */
void rawStderr(const std::string& bytes);

inline void
configure(const std::string& path, Level level)
{
    Logger::instance().configure(path, level);
}

inline void
configureFromEnv()
{
    Logger::instance().configureFromEnv();
}

inline bool
enabled(Level level)
{
    return Logger::instance().sinkEnabled(level);
}

inline void
event(Level level, const char* name, std::initializer_list<Field> fields)
{
    Logger::instance().event(level, name, fields);
}

inline void
diag(Level level, const char* name, const std::string& message,
     std::initializer_list<Field> fields = {})
{
    Logger::instance().diag(level, name, message, fields);
}

} // namespace orion::core::log

#endif // ORION_CORE_LOG_HH
