/**
 * @file
 * Top-level Orion configuration: network/traffic/simulation parameter
 * bundles, plus named presets for every router configuration the
 * paper's case studies evaluate (Sections 4.2 and 4.4).
 */

#ifndef ORION_CORE_CONFIG_HH
#define ORION_CORE_CONFIG_HH

#include <atomic>
#include <cstdint>

#include "core/telemetry.hh"
#include "net/deadlock.hh"
#include "net/fault.hh"
#include "net/network.hh"
#include "net/power_monitor.hh"
#include "net/traffic.hh"
#include "power/arbiter_model.hh"
#include "power/crossbar_model.hh"
#include "tech/tech_node.hh"

namespace orion::core {
class CancelToken;
} // namespace orion::core

namespace orion {

/** Link regime (paper Sections 4.2 vs 4.4). */
enum class LinkType
{
    /** Capacitive on-chip wires: power tracks switching activity. */
    OnChip,
    /** Differential chip-to-chip links: constant power per link. */
    ChipToChip,
};

/**
 * Physical organization of an input port's buffering, which sets the
 * SRAM array geometry the buffer power model sees.
 *
 * PerPort: all VCs share one array (B = vcs x depth) — the natural
 * layout for a few shallow VCs (the paper's VC16/VC64/VC128), and what
 * makes WH64's deep buffer costlier per access than VC16's.
 *
 * PerVc: each VC is its own array (B = depth) — the only sane layout
 * for many deep VCs (the XB router's 16 x 268 flits), and what makes
 * XB's per-access energy far smaller than the central buffer's
 * 2560-row banks (Figure 7's power ordering).
 */
enum class BufferOrganization
{
    PerPort,
    PerVc,
};

/** Full network configuration (structure + power-model knobs). */
struct NetworkConfig
{
    /** Structural parameters (topology, router, buffers). */
    net::NetworkParams net;
    /** Technology node (supplies Vdd, f_clk, capacitances). */
    tech::TechNode tech = tech::TechNode::onChip100nm();
    LinkType linkType = LinkType::OnChip;
    /** Physical link length for on-chip links (3 mm on the paper's
     * 12 mm x 12 mm 16-node chip). */
    double linkLengthUm = 3000.0;
    /** Constant power per chip-to-chip link (3 W per the IBM 12X). */
    double c2cLinkPowerWatts = 3.0;
    power::CrossbarKind crossbarKind = power::CrossbarKind::Matrix;
    BufferOrganization bufferOrg = BufferOrganization::PerPort;

    /**
     * Instantiate the component power models this configuration
     * implies (Table 2-4 models parameterized by the router design).
     */
    net::PowerModelSet buildModels() const;

    /**
     * Check structural consistency (port/VC/buffer constraints, the
     * deadlock disciplines' requirements, central-buffer geometry).
     * Throws std::invalid_argument with a descriptive message.
     * Simulation's constructor calls this; call it directly to
     * validate user-supplied configurations early.
     */
    void validate() const;

    /// @name Paper presets
    /// @{
    /** Section 4.2: wormhole, 64-flit buffer/port, on-chip. */
    static NetworkConfig wh64();
    /** Section 4.2: 2 VCs x 8 flits, on-chip. */
    static NetworkConfig vc16();
    /** Section 4.2: 8 VCs x 8 flits, on-chip. */
    static NetworkConfig vc64();
    /** Section 4.2: 8 VCs x 16 flits, on-chip. */
    static NetworkConfig vc128();
    /** Section 4.4: input-buffered crossbar router, 16 VCs x 268
     * flits, 32-bit flits, chip-to-chip. */
    static NetworkConfig xb();
    /** Section 4.4: central-buffered router, 4 banks x 2560 rows,
     * 64-flit input FIFOs, chip-to-chip. */
    static NetworkConfig cb();
    /// @}
};

/** Workload configuration (re-exported from the net layer). */
using TrafficConfig = net::TrafficParams;

/** Fault-injection configuration (re-exported from the net layer). */
using FaultConfig = net::FaultConfig;

/**
 * Check a workload against a network configuration (rates in range,
 * referenced nodes exist, trace supplied when required). Throws
 * std::invalid_argument on violation.
 */
void validateTraffic(const NetworkConfig& network,
                     const TrafficConfig& traffic);

/** Simulation control (paper Section 4.1 protocol). */
struct SimConfig
{
    /** Warm-up cycles before measurement (paper: 1000). */
    sim::Cycle warmupCycles = 1000;
    /** Packets in the measurement sample (paper: 10,000). */
    std::uint64_t samplePackets = 10000;
    /** Hard cycle cap after warm-up. */
    sim::Cycle maxCycles = 1000000;
    /** Progress-watchdog window: if no flit moves for this many
     * cycles while packets are in flight, the run is declared
     * deadlocked/saturated and stopped. */
    sim::Cycle watchdogCycles = 5000;
    /** RNG seed (runs are fully deterministic given a seed). */
    std::uint64_t seed = 1;
    /**
     * Cycles between network-wide invariant audits (flit conservation,
     * credit accounting, energy sanity — see net/audit.hh). Audits run
     * only when the runtime check level is at least Cheap; at Paranoid
     * the interval is divided by 16. 0 disables periodic audits (a
     * final audit still runs at the end of Simulation::run()).
     */
    sim::Cycle auditCycles = 1024;
    /**
     * Fault injection (defaults = no faults; the simulation then
     * takes the exact fault-free fast path, bit-identical to builds
     * without this subsystem).
     */
    FaultConfig fault;
    /**
     * Telemetry (defaults = all disabled; the disabled configuration
     * registers nothing with the simulator and produces bit-identical
     * outputs to a build without the subsystem).
     */
    telemetry::TelemetryConfig telemetry;
    /**
     * Fault-tolerant rerouting (off by default): sources watch the
     * surviving-topology view and rebuild routes around scheduled
     * link outages instead of retransmitting into a dead link;
     * partitioned destinations fail fast into the `unreachable` loss
     * category. See net/health.hh and docs/ROBUSTNESS.md.
     */
    bool rerouteOnOutage = false;
    /**
     * Runtime deadlock detection and recovery (off by default). See
     * net/deadlock.hh and docs/ROBUSTNESS.md.
     */
    net::DeadlockDetectConfig deadlockDetect;
    /**
     * Fault-drill hook in the spirit of debugCorruptCredit /
     * debugDropFlit: a run whose injection rate equals this value
     * throws core::CheckFailure right after construction, so sweep
     * failure isolation can be exercised deterministically. Negative
     * disables.
     */
    double debugPoisonRate = -1.0;
    /**
     * With debugPoisonRate set: make the poison transient, i.e. only
     * the first attempt of a sweep point fails, so the point's
     * bounded retry on a rederived seed succeeds.
     */
    bool debugPoisonTransient = false;
    /**
     * Crash drill for the isolated worker mode (--isolate): a run
     * whose injection rate equals this value raises SIGSEGV right
     * after construction, so the sweep's structured worker-crash
     * capture can be exercised deterministically. Negative disables.
     */
    double debugSegvRate = -1.0;
    /**
     * Cooperative-cancellation token (not owned; may be null). When
     * set, Simulation::run checks it at cycle granularity and returns
     * a report with StopReason::Deadline or StopReason::Interrupted
     * instead of running to the cycle cap. Arm a deadline on the
     * token itself (CancelToken::armDeadline) for --point-timeout
     * semantics. See core/cancel.hh and docs/ROBUSTNESS.md.
     */
    core::CancelToken* cancel = nullptr;
    /**
     * Live progress counter (not owned; may be null). When set, the
     * simulation registers a periodic hook that publishes the current
     * cycle into it every few thousand cycles — one relaxed atomic
     * store, read by the sweep heartbeat thread (core/progress.hh).
     * Observability only: excluded from sweepFingerprint like
     * telemetry and cancellation, because it never changes report
     * bytes.
     */
    std::atomic<std::uint64_t>* progressCycles = nullptr;
    /**
     * Attribute kernel wall time to simulator stages via a
     * core::PhaseProfiler owned by the Simulation (--profile-phases;
     * see core/profile.hh). Observability only: excluded from
     * sweepFingerprint; results are bit-identical either way.
     */
    bool profilePhases = false;

    /**
     * Validate the measurement protocol: a zero sample, zero cycle
     * cap, zero watchdog window, or a NaN in the debug-drill rates
     * would wedge or silently no-op a run. @throw
     * std::invalid_argument with a structured "orion config: ..."
     * message. Cross-layer checks (topology, traffic) live in
     * NetworkConfig::validate() / validateTraffic(); call
     * validateConfig() for the whole bundle.
     */
    void validate() const;
};

/**
 * The single validation entry point for one runnable configuration:
 * network.validate() + validateTraffic() + sim.validate() +
 * sim.fault.validate(). CLI tools and the orion_served daemon call
 * this before construction so a malformed request is a structured
 * `invalid_config` rejection (std::invalid_argument), never an
 * assert deep inside the simulator.
 */
void validateConfig(const NetworkConfig& network,
                    const TrafficConfig& traffic, const SimConfig& sim);

} // namespace orion

#endif // ORION_CORE_CONFIG_HH
