#include "core/report.hh"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace orion {

const char*
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::Completed:     return "completed";
      case StopReason::MaxCycles:     return "max-cycles";
      case StopReason::WatchdogStall: return "watchdog-stall";
      case StopReason::CheckFailure:  return "check-failure";
      case StopReason::DeadlockUnrecovered:
          return "deadlock-unrecovered";
      case StopReason::Deadline:      return "deadline";
      case StopReason::Interrupted:   return "interrupted";
      case StopReason::WorkerCrash:   return "worker-crash";
    }
    return "unknown";
}

} // namespace orion

namespace orion::report {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

void
Table::addRow(std::vector<std::string> row)
{
    assert(row.size() == headers.size());
    rows.push_back(std::move(row));
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtEng(double v, const char* unit, int precision)
{
    struct Scale
    {
        double factor;
        const char* prefix;
    };
    static constexpr Scale scales[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
        {1e-15, "f"}, {1e-18, "a"},
    };
    if (v == 0.0)
        return fmt(0.0, precision) + " " + unit;
    const double mag = std::fabs(v);
    for (const auto& s : scales) {
        if (mag >= s.factor) {
            return fmt(v / s.factor, precision) + " " + s.prefix + unit;
        }
    }
    const auto& last = scales[sizeof(scales) / sizeof(scales[0]) - 1];
    return fmt(v / last.factor, precision) + " " + last.prefix + unit;
}

std::string
formatTable(const Table& table)
{
    std::vector<std::size_t> width(table.headers.size());
    for (std::size_t c = 0; c < table.headers.size(); ++c)
        width[c] = table.headers[c].size();
    for (const auto& row : table.rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream out;
    if (!table.title.empty())
        out << "== " << table.title << " ==\n";

    const auto emitRow = [&](const std::vector<std::string>& row) {
        out << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << ' ' << row[c];
            out << std::string(width[c] - row[c].size(), ' ') << " |";
        }
        out << '\n';
    };
    const auto emitRule = [&] {
        out << "+";
        for (const std::size_t w : width)
            out << std::string(w + 2, '-') << "+";
        out << '\n';
    };

    emitRule();
    emitRow(table.headers);
    emitRule();
    for (const auto& row : table.rows)
        emitRow(row);
    emitRule();
    return out.str();
}

std::string
formatCsv(const Table& table)
{
    std::ostringstream out;
    const auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ',';
            out << row[c];
        }
        out << '\n';
    };
    emit(table.headers);
    for (const auto& row : table.rows)
        emit(row);
    return out.str();
}

} // namespace orion::report
