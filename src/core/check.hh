/**
 * @file
 * Leveled runtime invariant checks (see docs/QUALITY.md).
 *
 * Orion's power numbers are only as trustworthy as its bookkeeping: a
 * single lost flit or miscounted credit silently corrupts every figure
 * the repo reproduces. This header provides the machine-checked
 * invariant layer:
 *
 *  - ORION_CHECK(cond, msg)  — cheap checks on hot paths (buffer
 *    over/underflow, credit discipline). Active at CheckLevel::Cheap
 *    and above.
 *  - ORION_AUDIT(cond, msg)  — expensive cross-module invariants
 *    (network-wide conservation walks). Active at CheckLevel::Paranoid
 *    only.
 *
 * Both levels are selected twice: at compile time via the CMake cache
 * variable ORION_CHECK_LEVEL (which defines ORION_CHECK_MAX_LEVEL and
 * compiles higher-level checks out entirely), and at run time via the
 * ORION_CHECK environment variable ("off"/"0", "cheap"/"1",
 * "paranoid"/"2") or setCheckLevel(). The runtime level can never
 * exceed the compiled-in maximum.
 *
 * A failed check throws CheckFailure with a diagnostic naming the
 * offending condition, source location, and the module/port context
 * supplied by the streamed message. The message operand is only
 * evaluated on failure, so diagnostics may be arbitrarily detailed
 * without hot-path cost.
 */

#ifndef ORION_CORE_CHECK_HH
#define ORION_CORE_CHECK_HH

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>

namespace orion::core {

/** How much self-checking the simulator performs. */
enum class CheckLevel : int
{
    /** No runtime checks beyond plain asserts. */
    Off = 0,
    /** O(1) checks on hot paths; periodic network audits. */
    Cheap = 1,
    /** Everything: expensive cross-module walks, frequent audits. */
    Paranoid = 2,
};

/** Thrown when an ORION_CHECK / ORION_AUDIT condition fails. */
class CheckFailure : public std::logic_error
{
  public:
    explicit CheckFailure(const std::string& what)
        : std::logic_error(what)
    {
    }
};

/**
 * The current runtime check level. Initialized once from the
 * ORION_CHECK environment variable (default Cheap), clamped to the
 * compiled-in maximum. Thread-safe: parallel sweep workers read it
 * concurrently.
 */
CheckLevel checkLevel();

/** Override the runtime level (tests); clamped to the compiled max. */
void setCheckLevel(CheckLevel level);

/** The level compiled in via ORION_CHECK_LEVEL (macros above it are
 * no-ops regardless of the runtime setting). */
CheckLevel compiledCheckLevel();

/** Throw CheckFailure with a formatted diagnostic. */
[[noreturn]] void checkFailed(const char* kind, const char* cond,
                              const char* file, int line,
                              const std::string& message);

namespace detail {

/**
 * Relaxed-atomic storage behind checkLevel(). Kept inline in the
 * header so ORION_CHECK's level test on hot paths is a single relaxed
 * load instead of an out-of-line call; -1 means "not yet initialized
 * from the ORION_CHECK environment variable".
 */
inline std::atomic<int> g_checkLevel{-1};

/** Slow path: initialize g_checkLevel from the environment. */
int initCheckLevel();

inline bool
levelActive(CheckLevel needed)
{
    int level = g_checkLevel.load(std::memory_order_relaxed);
    if (level < 0)
        level = initCheckLevel();
    return level >= static_cast<int>(needed);
}

} // namespace detail

} // namespace orion::core

/** Compiled-in ceiling: 0 = off, 1 = cheap, 2 = paranoid. */
#ifndef ORION_CHECK_MAX_LEVEL
#define ORION_CHECK_MAX_LEVEL 2
#endif

#define ORION_CHECK_IMPL_(kind, level, cond, msg)                         \
    do {                                                                  \
        if (::orion::core::detail::levelActive(level) && !(cond)) {       \
            std::ostringstream orion_check_os_;                           \
            orion_check_os_ << msg;                                       \
            ::orion::core::checkFailed(kind, #cond, __FILE__, __LINE__,   \
                                       orion_check_os_.str());            \
        }                                                                 \
    } while (0)

#if ORION_CHECK_MAX_LEVEL >= 1
/** Cheap invariant check; @p msg is a stream expression. */
#define ORION_CHECK(cond, msg)                                            \
    ORION_CHECK_IMPL_("check", ::orion::core::CheckLevel::Cheap, cond,    \
                      msg)
#else
#define ORION_CHECK(cond, msg)                                            \
    do {                                                                  \
    } while (0)
#endif

#if ORION_CHECK_MAX_LEVEL >= 2
/** Expensive (paranoid-only) invariant check. */
#define ORION_AUDIT(cond, msg)                                            \
    ORION_CHECK_IMPL_("audit", ::orion::core::CheckLevel::Paranoid,       \
                      cond, msg)
#else
#define ORION_AUDIT(cond, msg)                                            \
    do {                                                                  \
    } while (0)
#endif

#endif // ORION_CORE_CHECK_HH
