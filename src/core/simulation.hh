/**
 * @file
 * orion::Simulation — the top-level run loop implementing the paper's
 * Section 4.1 measurement protocol:
 *
 *  "Each simulation is run for a warm-up phase of 1000 cycles with
 *   10,000 packets injected thereafter and the simulation continued at
 *   the prescribed packet injection rate till these packets in the
 *   sample space have all been received, and their average latency
 *   calculated. ... The simulator records energy consumption of each
 *   component of a node over the entire simulation excluding the first
 *   1000 cycles. Average power is then computed by multiplying the
 *   total energy by frequency and then dividing by total simulation
 *   cycles."
 */

#ifndef ORION_CORE_SIMULATION_HH
#define ORION_CORE_SIMULATION_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/profile.hh"
#include "core/report.hh"
#include "core/telemetry.hh"
#include "net/audit.hh"
#include "net/deadlock.hh"
#include "net/fault.hh"
#include "net/health.hh"
#include "net/network.hh"
#include "net/power_monitor.hh"
#include "net/sampler.hh"
#include "sim/simulator.hh"

namespace orion {

/** Per-component-class average power, in watts. */
struct PowerBreakdown
{
    double buffer = 0.0;
    double crossbar = 0.0;
    double arbiter = 0.0;
    double link = 0.0;
    double centralBuffer = 0.0;

    double
    total() const
    {
        return buffer + crossbar + arbiter + link + centralBuffer;
    }
};

/** Everything one simulation run reports. */
struct Report
{
    /// @name Performance
    /// @{
    /** Mean latency of sample packets, in cycles (creation to tail
     * ejection, source queuing included). */
    double avgLatencyCycles = 0.0;
    /** Latency distribution quantiles of the sample (cycles). */
    double p50LatencyCycles = 0.0;
    double p95LatencyCycles = 0.0;
    double p99LatencyCycles = 0.0;
    /** Worst sample-packet latency observed (cycles). */
    double maxLatencyCycles = 0.0;
    std::uint64_t sampleInjected = 0;
    std::uint64_t sampleEjected = 0;
    /** Offered load: packets/cycle/injecting-node. */
    double offeredLoad = 0.0;
    /** Accepted throughput: flits/cycle/node over the window. */
    double acceptedFlitsPerNodePerCycle = 0.0;
    /// @}

    /// @name Run metadata
    /// @{
    sim::Cycle totalCycles = 0;
    sim::Cycle measuredCycles = 0;
    /** Structured stop reason — why this run ended. The two bools
     * below are kept in sync for backward compatibility. */
    StopReason stopReason = StopReason::MaxCycles;
    /** Diagnostic of the invariant that fired when stopReason is
     * CheckFailure; empty otherwise. */
    std::string checkFailureDiagnostic;
    /** True if every sample packet arrived before the cycle cap. */
    bool completed = false;
    /** True if the progress watchdog fired (deadlock or total
     * saturation collapse). */
    bool deadlockSuspected = false;
    std::size_t moduleCount = 0;
    /// @}

    /// @name Fault injection and recovery (all zero without faults)
    /// @{
    std::uint64_t flitsCorrupted = 0;
    std::uint64_t flitsOutageDropped = 0;
    std::uint64_t flitsDiscarded = 0;
    std::uint64_t packetsRetransmitted = 0;
    std::uint64_t packetsLost = 0;
    /** Deterministic fingerprint of the full fault log. */
    std::uint64_t faultLogHash = 0;
    /** Packets dropped at the source because no surviving path to
     * their destination existed (rerouting enabled only). */
    std::uint64_t packetsUnreachable = 0;
    /** Source routes rebuilt around dead links (rerouting only). */
    std::uint64_t reroutes = 0;
    /** Runtime deadlock detections / successful recoveries (deadlock
     * detector only). */
    std::uint64_t deadlocksDetected = 0;
    std::uint64_t deadlocksRecovered = 0;
    /// @}

    /// @name Power (measurement window only)
    /// @{
    double networkPowerWatts = 0.0;
    /** Dynamic (event-driven) energy over the window, joules —
     * excludes constant chip-to-chip link power. */
    double dynamicEnergyJoules = 0.0;
    /** Dynamic energy per delivered flit (J/flit); the efficiency
     * number energy-proportional designs optimize. */
    double energyPerFlitJoules = 0.0;
    PowerBreakdown breakdownWatts;
    /** Average power per node, for spatial maps (paper Figure 6). */
    std::vector<double> nodePowerWatts;
    /// @}

    /// @name Event counts over the measurement window
    /// @{
    std::array<std::uint64_t, sim::kNumEventTypes> eventCounts{};
    /// @}
};

/** One configured network + workload, runnable once. */
class Simulation
{
  public:
    Simulation(const NetworkConfig& network, const TrafficConfig& traffic,
               const SimConfig& sim);
    ~Simulation();

    /**
     * Execute the full warm-up/sample/drain protocol.
     *
     * Never throws for in-protocol failures: an ORION_CHECK /
     * ORION_AUDIT violation is caught and returned as a report with
     * stopReason == StopReason::CheckFailure and the diagnostic in
     * checkFailureDiagnostic (the Simulation object stays alive for
     * forensics — see core/forensics.hh). Configuration errors still
     * throw from the constructor.
     */
    Report run();

    /** Advance the network @p cycles cycles (for custom protocols). */
    void step(sim::Cycle cycles);

    /// @name Component access (examples, tests, custom studies)
    /// @{
    net::Network& network() { return *network_; }
    net::PowerMonitor& monitor() { return *monitor_; }
    sim::Simulator& simulator() { return sim_; }
    net::NetworkAuditor& auditor() { return *auditor_; }
    const NetworkConfig& networkConfig() const { return netCfg_; }
    const SimConfig& simConfig() const { return simCfg_; }
    /** The fault injector, or nullptr in fault-free runs. */
    const net::FaultInjector* faultInjector() const
    {
        return faults_.get();
    }
    /** The surviving-topology monitor, or nullptr unless
     * SimConfig::rerouteOnOutage is set. */
    const net::HealthMonitor* healthMonitor() const
    {
        return health_.get();
    }
    /** The runtime deadlock detector, or nullptr unless
     * SimConfig::deadlockDetect.enabled is set. */
    const net::DeadlockDetector* deadlockDetector() const
    {
        return detector_.get();
    }
    /**
     * Per-router cycles without forwarding progress while holding
     * resident flits, tracked at watchdog granularity during the drain
     * phase — the forensic snapshot's stall map. Empty before run().
     */
    const std::vector<sim::Cycle>& routerFrozenCycles() const
    {
        return routerFrozenCycles_;
    }
    /// @}

    /// @name Telemetry (null unless SimConfig::telemetry enables it)
    /// @{
    /** The metric registry, or nullptr with telemetry disabled. */
    const telemetry::MetricsRegistry* metrics() const
    {
        return metrics_.get();
    }
    /** The windowed sampler, or nullptr without --sample-interval. */
    const net::WindowedSampler* sampler() const
    {
        return sampler_.get();
    }
    /** The flit tracer, or nullptr without --trace-out. */
    const telemetry::FlitTracer* tracer() const
    {
        return tracer_.get();
    }

    /** The kernel phase profiler, or nullptr unless
     * SimConfig::profilePhases is set. Populated after run(). */
    const core::PhaseProfiler* phaseProfiler() const
    {
        return profiler_.get();
    }

    /** The sampled time series as long-format CSV (empty string when
     * the sampler is disabled). */
    std::string metricsCsv() const;
    /** The retained trace as Chrome trace-event JSON (empty string
     * when tracing is disabled). @p label lands in the trace
     * metadata. */
    std::string traceJson(const std::string& label) const;
    /// @}

  private:
    /** Phases 1-4 of the measurement protocol; may throw
     * core::CheckFailure from a periodic or final audit. */
    void runProtocol(Report& r);
    /** Copy the injector's counters into @p r (no-op without
     * faults). */
    void fillFaultStats(Report& r) const;

    NetworkConfig netCfg_;
    TrafficConfig trafficCfg_;
    SimConfig simCfg_;

    sim::Simulator sim_;
    /** Declared before network_: routers/links/nodes hold raw
     * pointers into the injector, so it must outlive them. */
    std::unique_ptr<net::FaultInjector> faults_;
    std::unique_ptr<net::Network> network_;
    /** Robustness subsystems (null unless enabled; both observe the
     * network, so they are declared after it and destroyed first). */
    std::unique_ptr<net::HealthMonitor> health_;
    std::unique_ptr<net::DeadlockDetector> detector_;
    std::unique_ptr<net::PowerMonitor> monitor_;
    std::unique_ptr<net::NetworkAuditor> auditor_;
    /** Telemetry (all null when SimConfig::telemetry is disabled, so
     * the hot path is untouched). The registry's readers point into
     * network_/monitor_/faults_; destruction order (members above
     * outlive these only by declaration order — registry last) is
     * safe because readers never run after run() returns. */
    std::unique_ptr<telemetry::MetricsRegistry> metrics_;
    std::unique_ptr<net::WindowedSampler> sampler_;
    std::unique_ptr<telemetry::FlitTracer> tracer_;
    /** Kernel phase profiler (null unless SimConfig::profilePhases). */
    std::unique_ptr<core::PhaseProfiler> profiler_;
    /** Per-router stall map for forensics (see routerFrozenCycles). */
    std::vector<sim::Cycle> routerFrozenCycles_;
};

} // namespace orion

#endif // ORION_CORE_SIMULATION_HH
