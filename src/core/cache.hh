/**
 * @file
 * Persistent content-hashed result cache (docs/ROBUSTNESS.md,
 * "Resident service").
 *
 * The orion_served daemon answers repeated design-space queries; a
 * point that was ever computed should never be computed again, even
 * across a SIGKILL of the daemon. The cache maps a single-point
 * configuration fingerprint — `sweepFingerprint(network, traffic,
 * sim, {rate}, 1)`, which already hashes every result-determining
 * field plus kDeterminismEpoch — to the cell's CheckpointEntry.
 *
 * Storage is a directory of append-only *segment* files reusing the
 * checkpoint line discipline: each line carries its own FNV-1a
 * checksum and is fsync'd before the insert is acknowledged, so an
 * acknowledged entry survives SIGKILL. Where the sweep journal is
 * strict (mid-file corruption aborts a resume), the cache is
 * forgiving by design: a cache is advisory, so a corrupt line —
 * torn tail, bit flip, spliced garbage — is **quarantined** (skipped
 * and counted, the key simply misses) and loading never throws for
 * entry damage. Only an unusable directory is an error.
 *
 * Size is bounded: the active segment rotates every
 * CacheOptions::segmentEntries inserts, and when the live index
 * exceeds CacheOptions::maxEntries whole least-recently-used
 * non-active segments are deleted (coarse LRU: per-segment use
 * stamps, no per-entry bookkeeping on the hot path).
 */
#ifndef ORION_CORE_CACHE_HH
#define ORION_CORE_CACHE_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/annotations.hh"
#include "core/checkpoint.hh"
#include "core/sync.hh"

namespace orion::core {

/** Structured cache failure: an unusable directory or a failed
 * append (e.g. ENOSPC). Entry corruption is never an error. */
class CacheError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Cache tuning knobs. */
struct CacheOptions
{
    /** Cache directory (created if missing; parent must exist). */
    std::string dir;
    /** Live-entry bound; beyond it LRU segments are evicted. */
    std::uint64_t maxEntries = 4096;
    /** Inserts per segment file before rotating to a fresh one. */
    std::uint64_t segmentEntries = 256;
};

/** Counters for the stats verb and the shutdown manifest. */
struct CacheStats
{
    std::uint64_t entries = 0;   ///< live keys in the index
    std::uint64_t segments = 0;  ///< segment files on disk
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    /** Corrupt lines (or whole segments with a bad header) skipped
     * during load instead of crashing the daemon. */
    std::uint64_t quarantined = 0;
    std::uint64_t evictedSegments = 0;
    std::uint64_t evictedEntries = 0;
};

/**
 * The cache proper. Thread-safe: daemon workers look up and insert
 * concurrently under one annotated core::Mutex (disk appends happen
 * inside the critical section — an insert is one write + fsync, the
 * same discipline as CheckpointJournal::append).
 */
class ResultCache
{
  public:
    /** Open (and recover) the cache at @p opts.dir. Scans existing
     * segment files oldest-first, quarantining undecodable lines;
     * later duplicates of a key win. @throw CacheError only when the
     * directory cannot be created or scanned. */
    explicit ResultCache(const CacheOptions& opts);
    ~ResultCache();

    ResultCache(const ResultCache&) = delete;
    ResultCache& operator=(const ResultCache&) = delete;

    /** Look up @p key; on a hit copy the entry into @p out and
     * freshen its segment's LRU stamp. */
    bool lookup(std::uint64_t key, CheckpointEntry& out)
        ORION_EXCLUDES(mutex_);

    /** Append (key, entry) to the active segment (fsync'd) and
     * index it. Rotates/evicts segments per CacheOptions.
     * @throw CacheError when the append cannot be made durable. */
    void insert(std::uint64_t key, const CheckpointEntry& e)
        ORION_EXCLUDES(mutex_);

    CacheStats stats() const ORION_EXCLUDES(mutex_);

    /** The shutdown-manifest JSON object (schema
     * "orion-cache-manifest-v1"): directory, bounds, counters. */
    std::string manifestJson() const ORION_EXCLUDES(mutex_);

    /** Atomically write manifestJson() to dir/cache.manifest.json
     * (the "persist the cache index" step of a graceful drain; the
     * index itself is recovered from the segments). */
    void writeManifest() const ORION_EXCLUDES(mutex_);

    const std::string& dir() const { return opts_.dir; }

    /// @name Wire format (exposed for tests and the fuzz harness)
    /// @{
    /** One segment line (no newline): "K|fp=<hex16>|e=<escaped
     * serializeEntry bytes>|c=<hex16 FNV-1a of everything before
     * the |c= field>". */
    static std::string encodeLine(std::uint64_t key,
                                  const CheckpointEntry& e);
    /** Decode one segment line; false on any damage (never throws). */
    static bool decodeLine(std::string_view line, std::uint64_t& key,
                           CheckpointEntry& out);
    /** "seg_<id, 6 digits>.orc". */
    static std::string segmentFileName(std::uint64_t id);
    /** The segment header line: "#orion-cache v1". */
    static const char* segmentHeader();
    /// @}

  private:
    struct Segment
    {
        std::string path;                 ///< full path on disk
        std::vector<std::uint64_t> keys;  ///< keys written here
        std::uint64_t lastUse = 0;        ///< LRU stamp (useClock_)
        std::uint64_t lines = 0;          ///< decoded entry lines
    };

    void loadSegment(std::uint64_t id, const std::string& path)
        ORION_REQUIRES(mutex_);
    void ensureActiveSegment() ORION_REQUIRES(mutex_);
    void evictIfOverBound() ORION_REQUIRES(mutex_);

    const CacheOptions opts_;
    mutable core::Mutex mutex_;

    struct Slot
    {
        CheckpointEntry entry;
        std::uint64_t segment = 0;
    };
    /** key -> latest entry. Never iterated (order would be
     * nondeterministic); segment key lists drive eviction. */
    std::unordered_map<std::uint64_t, Slot> index_
        ORION_GUARDED_BY(mutex_);
    /** id -> segment, ascending id = creation order. */
    std::map<std::uint64_t, Segment> segments_ ORION_GUARDED_BY(mutex_);
    std::uint64_t nextSegmentId_ ORION_GUARDED_BY(mutex_) = 1;
    /** Active segment: id 0 = none; fd is O_APPEND or -1. */
    std::uint64_t activeId_ ORION_GUARDED_BY(mutex_) = 0;
    int fd_ ORION_GUARDED_BY(mutex_) = -1;
    std::uint64_t activeCount_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t useClock_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t hits_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t misses_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t inserts_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t quarantined_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t evictedSegments_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t evictedEntries_ ORION_GUARDED_BY(mutex_) = 0;
};

} // namespace orion::core

#endif // ORION_CORE_CACHE_HH
