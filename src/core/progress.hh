/**
 * @file
 * Live sweep progress: heartbeat files, ETA, stall warnings and a
 * rewriting terminal progress line (docs/OBSERVABILITY.md, "Run-level
 * observability").
 *
 * A ProgressTracker rides alongside Sweep::overRates{,Averaged} and
 * the isolated worker loop. Workers open a ProgressScope per cell;
 * the scope claims one of `jobs` slots whose fields are plain atomics,
 * so the per-cycle cost of liveness is one relaxed store every few
 * thousand cycles (wired through SimConfig::progressCycles) and the
 * simulation's results remain bit-identical — the tracker only ever
 * *observes* workers.
 *
 * Completion flows back through endCell(): counts, an EMA of point
 * wall times (the ETA source) and a sample list (median, for stall
 * detection) update under an annotated mutex, and when a heartbeat
 * path is configured the JSON snapshot is atomically replaced
 * (tmp + rename, same crash discipline as the checkpoint journal) so
 * a reader — tools/orion_status.py — never sees a torn file, even
 * after SIGKILL. A background thread refreshes the heartbeat between
 * completions and emits stall warnings through the structured logger
 * when a cell exceeds stallFactor x the median point time.
 *
 * Cells satisfied from a checkpoint journal are reported via
 * noteCached() so resumed runs show honest done/total counts.
 */
#ifndef ORION_CORE_PROGRESS_HH
#define ORION_CORE_PROGRESS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hh"
#include "core/sync.hh"

namespace orion::core {

class ProgressTracker
{
  public:
    struct Options
    {
        /// Heartbeat JSON path; empty disables the heartbeat file.
        std::string heartbeatPath;
        double heartbeatIntervalSeconds = 1.0;
        /// Rewriting stderr progress line. Forced off when stderr is
        /// not a TTY, so piped/redirected runs stay byte-identical.
        bool progressLine = false;
        std::uint64_t totalCells = 0;
        unsigned jobs = 1;
        std::string label = "sweep";
        /// Warn (via the logger) when an in-flight cell exceeds
        /// stallFactor x the median completed-point wall time (and at
        /// least stallFloorSeconds; needs >= 5 completed samples).
        double stallFactor = 4.0;
        double stallFloorSeconds = 5.0;
    };

    explicit ProgressTracker(Options opts);
    ~ProgressTracker();

    ProgressTracker(const ProgressTracker&) = delete;
    ProgressTracker& operator=(const ProgressTracker&) = delete;

    /// @name Worker API (thread-safe)
    /// @{

    /** Claim a slot for a cell; returns the slot index. */
    unsigned beginCell(std::uint64_t rateIndex, unsigned seedIndex)
        ORION_EXCLUDES(mutex_);

    /// Record a retry on an in-flight cell.
    void setAttempt(unsigned slot, unsigned attempt);

    /** Live cycle counter for the slot (plumb into
     * SimConfig::progressCycles). Valid until endCell(). */
    std::atomic<std::uint64_t>* cycleCounter(unsigned slot);

    /** Release the slot and record the outcome. */
    void endCell(unsigned slot, bool failed, double wallSeconds)
        ORION_EXCLUDES(mutex_);

    /** Count cells satisfied from a checkpoint journal (no wall-time
     * sample; they cost nothing in this run). */
    void noteCached() ORION_EXCLUDES(mutex_);

    /// @}

    /** Write a final heartbeat (finished=true), clear the progress
     * line and stop the background thread. Idempotent; the destructor
     * calls it. */
    void finalize() ORION_EXCLUDES(mutex_);

    /// @name Snapshot (tests, manifests)
    /// @{
    std::uint64_t done() const ORION_EXCLUDES(mutex_);
    std::uint64_t failed() const ORION_EXCLUDES(mutex_);
    std::uint64_t fromCheckpoint() const ORION_EXCLUDES(mutex_);
    std::uint64_t total() const { return opts_.totalCells; }
    /// Negative when unknown (no completed samples yet).
    double etaSeconds() const ORION_EXCLUDES(mutex_);
    /// Current heartbeat JSON (what the file would contain).
    std::string heartbeatJson() const ORION_EXCLUDES(mutex_);
    /// @}

  private:
    struct Slot
    {
        std::atomic<bool> active{false};
        std::atomic<std::uint64_t> rateIndex{0};
        std::atomic<std::uint32_t> seedIndex{0};
        std::atomic<std::uint32_t> attempt{1};
        std::atomic<std::uint64_t> cycles{0};
        /// Seconds since tracker start (monotonic), for running_s.
        std::atomic<double> startSeconds{0.0};
        std::atomic<bool> stallWarned{false};
    };

    double secondsSinceStart() const;
    std::string composeJson(bool finished) const
        ORION_REQUIRES(mutex_);
    void writeHeartbeat(bool finished) ORION_EXCLUDES(mutex_);
    void renderProgressLine() ORION_EXCLUDES(mutex_);
    double etaSecondsLocked() const ORION_REQUIRES(mutex_);
    double medianPointSecondsLocked() const ORION_REQUIRES(mutex_);
    void checkStalls() ORION_EXCLUDES(mutex_);
    void threadMain();

    const Options opts_;
    const bool tty_;               ///< stderr is a TTY (line allowed)
    const double startUnixSeconds_; ///< wall clock at construction
    // Fixed-size slot array; elements are atomics mutated lock-free by
    // their owning worker and read by the heartbeat thread.
    std::vector<Slot> slots_; // analyze-allow: unguarded -- fixed-size array of lock-free atomics
    // Joined exactly once by finalize(); never touched concurrently.
    std::thread thread_; // analyze-allow: unguarded -- ctor/finalize only
    // Monotonic base for secondsSinceStart(); set once in the ctor.
    double steadyBase_ = 0.0; // analyze-allow: unguarded -- written once before the thread starts

    /** Serializes heartbeat file replacement: concurrent writers
     * (worker endCell vs. the background thread) would otherwise race
     * on the shared "path.tmp" staging name — one rename wins, the
     * other fails on the vanished tmp file. Held only around the
     * write, never while composing under mutex_. */
    mutable core::Mutex writeMutex_;

    mutable core::Mutex mutex_;
    CondVar wake_;
    bool stop_ ORION_GUARDED_BY(mutex_) = false;
    bool finalized_ ORION_GUARDED_BY(mutex_) = false;
    bool heartbeatBroken_ ORION_GUARDED_BY(mutex_) = false;
    bool lineDrawn_ ORION_GUARDED_BY(mutex_) = false;
    std::uint64_t done_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t failed_ ORION_GUARDED_BY(mutex_) = 0;
    std::uint64_t cached_ ORION_GUARDED_BY(mutex_) = 0;
    double emaPointSeconds_ ORION_GUARDED_BY(mutex_) = 0.0;
    std::vector<double> pointSeconds_ ORION_GUARDED_BY(mutex_);
};

/**
 * RAII view of one cell's lifetime against an optional tracker.
 * Null-tracker scopes cost nothing, so sweep code threads one through
 * unconditionally. Destruction without end() reports a failed cell
 * (exception escape); wall time is measured monotonically inside the
 * scope.
 */
class ProgressScope
{
  public:
    ProgressScope(ProgressTracker* tracker, std::uint64_t rateIndex,
                  unsigned seedIndex);
    ~ProgressScope();

    ProgressScope(const ProgressScope&) = delete;
    ProgressScope& operator=(const ProgressScope&) = delete;

    void setAttempt(unsigned attempt);
    /// Null when no tracker is attached.
    std::atomic<std::uint64_t>* cycles();
    void end(bool failed);

  private:
    ProgressTracker* tracker_;
    unsigned slot_ = 0;
    bool ended_ = false;
    double startSeconds_ = 0.0;
};

} // namespace orion::core

#endif // ORION_CORE_PROGRESS_HH
