/**
 * @file
 * Reusable thread-pool executor behind the parallel sweep drivers.
 *
 * Sweep points are embarrassingly parallel — each (rate, seed) point
 * owns its Network, Simulator, and RNG stream — so the executor only
 * has to hand out independent indices and join. Determinism is the
 * callers' contract: workers write results into preallocated,
 * index-addressed slots (see WorkerSlots), so the merged output is
 * the same no matter which worker finishes first.
 *
 * All cross-thread state is annotated for Clang's thread-safety
 * analysis (core/annotations.hh): the work queue and its bookkeeping
 * are ORION_GUARDED_BY(mutex_), and `-Wthread-safety` (an error in
 * the analysis CI leg) rejects any new access path that forgets the
 * lock.
 */

#ifndef ORION_CORE_EXECUTOR_HH
#define ORION_CORE_EXECUTOR_HH

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "core/cancel.hh"
#include "core/sync.hh"

namespace orion::core {

/**
 * A fixed-size pool of worker threads consuming a task queue.
 * Reusable across submit()/wait() rounds; destruction joins the
 * workers after draining the queue.
 */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (at least 1). */
    explicit ThreadPool(unsigned workers);

    /** Drains outstanding tasks, then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task) ORION_EXCLUDES(mutex_);

    /**
     * Block until every submitted task has finished. If any task
     * threw, rethrows the first captured exception (by submission
     * processing order, not a deterministic pick among concurrent
     * failures).
     */
    void wait() ORION_EXCLUDES(mutex_);

    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  private:
    void workerLoop() ORION_EXCLUDES(mutex_);

    /** Worker handles: written only by the constructor, joined only
     * by the destructor after every worker has exited its loop. */
    std::vector<std::thread> threads_; // analyze-allow: unguarded -- ctor-write, dtor-join only

    core::Mutex mutex_;
    std::queue<std::function<void()>> queue_ ORION_GUARDED_BY(mutex_);
    CondVar workAvailable_;
    CondVar allDone_;
    /** Queued + currently running tasks. */
    std::size_t pending_ ORION_GUARDED_BY(mutex_) = 0;
    bool stopping_ ORION_GUARDED_BY(mutex_) = false;
    std::exception_ptr firstError_ ORION_GUARDED_BY(mutex_);
};

/**
 * Index-addressed result capture for parallelFor regions. Each worker
 * writes only the slots for the indices it was handed, so slots need
 * no lock — but that contract used to be invisible to tooling. The
 * slots are guarded by a zero-cost Role: every access site (worker
 * writes, post-join merge) must name the capability, so when
 * intra-sim parallelism restructures the fan-out, the capture paths
 * are already enumerated and machine-checked.
 */
template <typename T>
class WorkerSlots
{
  public:
    explicit WorkerSlots(std::size_t count) : slots_(count) {}

    WorkerSlots(const WorkerSlots&) = delete;
    WorkerSlots& operator=(const WorkerSlots&) = delete;

    /** The capability guarding the slots (acquire via RoleGuard). */
    const Role& role() const ORION_RETURN_CAPABILITY(role_)
    {
        return role_;
    }

    /** Slot @p i; workers touch only indices they were assigned. */
    T&
    slot(std::size_t i) ORION_REQUIRES(role_)
    {
        return slots_[i];
    }

    /** Surrender the filled slots after the parallel region joined. */
    std::vector<T>
    take() &&
    {
        RoleGuard guard(role_);
        return std::move(slots_);
    }

  private:
    core::Role role_;
    std::vector<T> slots_ ORION_GUARDED_BY(role_);
};

/**
 * Resolve a user-facing --jobs value: 0 means "hardware concurrency",
 * anything else passes through. Never returns 0.
 */
unsigned resolveJobs(unsigned jobs);

/**
 * Run body(0) ... body(count - 1), fanned across @p jobs threads.
 * With jobs == 1 (or count < 2) the calls run inline on the calling
 * thread in index order — byte-for-byte today's serial behavior.
 * Index assignment across workers is dynamic (an atomic cursor), so
 * bodies must not depend on which thread runs which index; exceptions
 * from any body are rethrown on the calling thread after the join.
 *
 * With @p cancel non-null, a fired token stops the cursor from
 * dispensing further indices — indices already handed out finish
 * (bodies observing the same token bail cooperatively), the join
 * still happens, and the skipped indices simply never see body(i).
 * Callers mark processed slots to tell the two apart (see
 * SweepPoint::ran).
 */
void parallelFor(unsigned jobs, std::size_t count,
                 const std::function<void(std::size_t)>& body,
                 const CancelToken* cancel = nullptr);

} // namespace orion::core

#endif // ORION_CORE_EXECUTOR_HH
