/**
 * @file
 * Reusable thread-pool executor behind the parallel sweep drivers.
 *
 * Sweep points are embarrassingly parallel — each (rate, seed) point
 * owns its Network, Simulator, and RNG stream — so the executor only
 * has to hand out independent indices and join. Determinism is the
 * callers' contract: workers write results into preallocated,
 * index-addressed slots, so the merged output is the same no matter
 * which worker finishes first.
 */

#ifndef ORION_CORE_EXECUTOR_HH
#define ORION_CORE_EXECUTOR_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace orion::core {

/**
 * A fixed-size pool of worker threads consuming a task queue.
 * Reusable across submit()/wait() rounds; destruction joins the
 * workers after draining the queue.
 */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (at least 1). */
    explicit ThreadPool(unsigned workers);

    /** Drains outstanding tasks, then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. If any task
     * threw, rethrows the first captured exception (by submission
     * processing order, not a deterministic pick among concurrent
     * failures).
     */
    void wait();

    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::size_t pending_ = 0; // queued + currently running tasks
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Resolve a user-facing --jobs value: 0 means "hardware concurrency",
 * anything else passes through. Never returns 0.
 */
unsigned resolveJobs(unsigned jobs);

/**
 * Run body(0) ... body(count - 1), fanned across @p jobs threads.
 * With jobs == 1 (or count < 2) the calls run inline on the calling
 * thread in index order — byte-for-byte today's serial behavior.
 * Index assignment across workers is dynamic (an atomic cursor), so
 * bodies must not depend on which thread runs which index; exceptions
 * from any body are rethrown on the calling thread after the join.
 */
void parallelFor(unsigned jobs, std::size_t count,
                 const std::function<void(std::size_t)>& body);

} // namespace orion::core

#endif // ORION_CORE_EXECUTOR_HH
