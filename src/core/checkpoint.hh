/**
 * @file
 * Crash-safe sweep checkpoint journal (docs/ROBUSTNESS.md,
 * "Survivable runs").
 *
 * A long sweep appends one line per finished (rate, seed) cell to a
 * journal file; `orion_sweep --resume FILE` reloads the journal,
 * skips the finished cells, and merges the cached reports with the
 * freshly computed ones **bit-identically** to an uninterrupted run
 * at any --jobs. Three properties make that safe:
 *
 *  - **Binding.** The header line carries a 64-bit FNV-1a fingerprint
 *    over the full simulation configuration (network + tech + traffic
 *    + sim + fault schedule + sweep grid) plus a code-level
 *    determinism epoch. A journal never resumes a different
 *    configuration — a mismatch is a structured CheckpointError.
 *
 *  - **Exactness.** Every double in a cached Report is serialized as
 *    a C99 hexfloat ("%a"), which strtod round-trips bit-exactly, so
 *    re-rendering a cached report through report::fmt reproduces the
 *    same CSV bytes the live run would have printed.
 *
 *  - **Crash tolerance.** Each line ends with its own FNV-1a checksum
 *    and is fsync'd before the sweep moves on. On load, a corrupt or
 *    partial FINAL line is tolerated (the torn write of the crash —
 *    dropped, flagged via CheckpointLoad::truncatedTail); corruption
 *    anywhere earlier is a CheckpointError, never UB or a silent
 *    partial resume.
 *
 * Only deterministic outcomes are journaled (completed runs, cycle
 * caps, watchdog stalls, check failures, worker crashes). Wall-clock
 * outcomes — StopReason::Deadline and StopReason::Interrupted — are
 * never written: they depend on machine load, so the cells rerun on
 * resume.
 */

#ifndef ORION_CORE_CHECKPOINT_HH
#define ORION_CORE_CHECKPOINT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hh"
#include "core/simulation.hh"
#include "core/sync.hh"

namespace orion::core {

/** Structured journal failure: corruption before the final line, a
 * fingerprint/config mismatch, an unwritable path, or a malformed
 * entry. The message names the file, line, and cause. */
class CheckpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One journaled sweep cell: the (rate index, seed index) coordinate
 * in the sweep grid plus everything its run produced. */
struct CheckpointEntry
{
    std::uint64_t rateIndex = 0;
    std::uint64_t seedIndex = 0;
    /** Simulation attempts spent (see core::RetryPolicy). */
    unsigned attempts = 1;
    Report report;
    /** Set when the cell failed for good (after retries). */
    bool failed = false;
    StopReason failureReason = StopReason::CheckFailure;
    std::string failureMessage;
    /** JSON forensic snapshot of the failure (may be empty). */
    std::string failureForensics;
    /** Captured worker exit detail in --isolate mode ("signal 11",
     * "exit 3"); empty for in-process cells. */
    std::string workerExit;
};

/// @name Exact double round-tripping
/// @{
/** Render @p v as a C99 hexfloat ("%a"): strtod parses it back to
 * the identical bit pattern, including negative zero and infinities
 * (NaN payloads collapse to a quiet NaN). */
std::string exactDouble(double v);

/** Parse an exactDouble rendering. @throw CheckpointError if @p s is
 * not a complete, valid rendering. */
double parseExactDouble(const std::string& s);
/// @}

/// @name Line-format building blocks
/// Shared with core/cache, whose segment lines wrap journal entries.
/// @{
/** Escape a string field for the '|'-separated line format: '%',
 * '|', newline and CR become %XX so a field can never fake a
 * separator or break line framing. */
std::string escapeField(const std::string& s);

/** Undo escapeField. @throw CheckpointError on a malformed or
 * truncated %-escape. */
std::string unescapeField(std::string_view s);

/** @p v as 16 lowercase hex digits (checksum/fingerprint fields). */
std::string hex16(std::uint64_t v);
/// @}

/** FNV-1a 64-bit offset basis. */
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/** Incremental FNV-1a-64 over @p s, continuing from @p h. */
std::uint64_t fnv1a64(std::string_view s,
                      std::uint64_t h = kFnvOffset);

/**
 * Bump when a code change alters simulation results for a fixed
 * configuration and seed (routing, arbitration, power models, RNG
 * streams...). Journals written under a different epoch refuse to
 * resume instead of silently mixing incompatible results.
 */
constexpr unsigned kDeterminismEpoch = 1;

/**
 * Fingerprint binding a journal to one sweep: hashes every
 * result-determining field of the configuration (network structure,
 * tech node, power-model knobs, traffic — including the full replay
 * trace when one is loaded — measurement protocol, fault schedule)
 * plus the sweep grid (@p rates, @p seeds) and kDeterminismEpoch.
 * Telemetry and cancellation settings are excluded: they never change
 * report bytes.
 */
std::uint64_t sweepFingerprint(const NetworkConfig& network,
                               const TrafficConfig& traffic,
                               const SimConfig& sim,
                               const std::vector<double>& rates,
                               unsigned seeds);

/// @name Entry wire format
/// @{
/** Serialize @p e as one journal line (no trailing newline): '|'-
 * separated key=value fields, %-escaped strings, hexfloat doubles,
 * terminated by a FNV-1a checksum field. */
std::string serializeEntry(const CheckpointEntry& e);

/** Parse one journal line. @throw CheckpointError on a checksum
 * mismatch, unknown shape, or malformed field. */
CheckpointEntry parseEntry(std::string_view line);
/// @}

/** A loaded journal. */
struct CheckpointLoad
{
    /** The header fingerprint (matches what the caller expected). */
    std::uint64_t fingerprint = 0;
    /** Entries in file order; duplicates for a coordinate are
     * possible after repeated resumes (last wins). */
    std::vector<CheckpointEntry> entries;
    /** The final line was torn (partial write at the crash) and was
     * dropped. Normal after a SIGKILL; worth a diagnostic line. */
    bool truncatedTail = false;
};

/**
 * Load and validate the journal at @p path against
 * @p expect_fingerprint.
 *
 * @throw CheckpointError when the file is unreadable, the header is
 * missing or malformed, the fingerprint differs (the configuration
 * changed — resuming would silently mix incompatible results), or
 * any line before the last is corrupt. A corrupt LAST line alone is
 * tolerated as a crash artifact.
 */
CheckpointLoad loadCheckpoint(const std::string& path,
                              std::uint64_t expect_fingerprint);

/**
 * The append side: one journal file, written line-wise with an
 * fsync per entry so every acknowledged append survives SIGKILL.
 * append() is thread-safe — sweep workers call it directly from the
 * parallel region as cells finish.
 */
class CheckpointJournal
{
  public:
    /**
     * Open @p path for appending. With @p resume false the file is
     * created (or truncated) and the fingerprint header written; with
     * @p resume true the file must already carry this fingerprint
     * (validate via loadCheckpoint first) and new entries append
     * after the existing ones.
     *
     * @throw CheckpointError when the file cannot be opened/written.
     */
    CheckpointJournal(const std::string& path,
                      std::uint64_t fingerprint, bool resume);
    ~CheckpointJournal();

    CheckpointJournal(const CheckpointJournal&) = delete;
    CheckpointJournal& operator=(const CheckpointJournal&) = delete;

    /** Append one entry and fsync. Thread-safe.
     * @throw CheckpointError on write failure (e.g. ENOSPC). */
    void append(const CheckpointEntry& e) ORION_EXCLUDES(mutex_);

    const std::string& path() const { return path_; }

  private:
    /** Immutable after construction. */
    const std::string path_;
    core::Mutex mutex_;
    /** POSIX fd (O_APPEND), -1 once closed. */
    int fd_ ORION_GUARDED_BY(mutex_) = -1;
};

/** The header line (without newline) for @p fingerprint:
 * "#orion-checkpoint v1 fp=<hex16>". */
std::string checkpointHeader(std::uint64_t fingerprint);

} // namespace orion::core

#endif // ORION_CORE_CHECKPOINT_HH
