#include "core/simulation.hh"

#include <cassert>
#include <chrono>
#include <cmath>
#include <csignal>
#include <sstream>

#include "core/cancel.hh"
#include "core/check.hh"
#include "sim/rng.hh"

namespace orion {

namespace {

/** deriveSeed salt for the default fault-seed stream, decorrelating
 * fault schedules from traffic RNG streams of the same base seed. */
constexpr std::uint64_t kFaultSeedSalt = 0xFA17'5EEDULL;

/** Cycles between live-progress counter publications (one relaxed
 * atomic store each; see SimConfig::progressCycles). */
constexpr sim::Cycle kProgressCycleInterval = 4096;

/** Monotonic wall clock for the opt-in phase profiler (observability
 * only; never feeds results). */
double
profileSeconds()
{
    const auto now =
        std::chrono::steady_clock::now() // lint-allow: nondeterminism
            .time_since_epoch();
    return std::chrono::duration<double>(now).count();
}

} // namespace

Simulation::Simulation(const NetworkConfig& network,
                       const TrafficConfig& traffic, const SimConfig& sim)
    : netCfg_(network), trafficCfg_(traffic), simCfg_(sim)
{
    netCfg_.validate();
    validateTraffic(netCfg_, trafficCfg_);
    // Rerouting and deadlock recovery ride on the fault machinery
    // (resolved outage schedules, NACK/retransmit), so either feature
    // instantiates the injector even with no faults configured.
    if (simCfg_.fault.enabled() || simCfg_.rerouteOnOutage ||
        simCfg_.deadlockDetect.enabled) {
        simCfg_.fault.validate();
        const std::uint64_t fault_seed =
            simCfg_.fault.faultSeed != 0
                ? simCfg_.fault.faultSeed
                : sim::deriveSeed(simCfg_.seed, kFaultSeedSalt, 0);
        faults_ = std::make_unique<net::FaultInjector>(
            simCfg_.fault, fault_seed, netCfg_.net.flitBits);
    }
    network_ = std::make_unique<net::Network>(sim_, netCfg_.net,
                                              trafficCfg_, simCfg_.seed,
                                              faults_.get());
    // Robustness subsystems register after the network's routers and
    // nodes, so they observe each cycle's settled state one cycle
    // behind the modules they watch — deterministically, at any
    // --jobs, since they run on the simulator's in-order module list.
    if (simCfg_.rerouteOnOutage) {
        health_ = std::make_unique<net::HealthMonitor>(
            network_->topology(), network_->linkRecords(), *faults_,
            netCfg_.net.deadlock);
        sim_.add(health_.get());
        const unsigned nn = network_->topology().numNodes();
        for (unsigned i = 0; i < nn; ++i) {
            network_->endpoint(static_cast<int>(i))
                .setHealthMonitor(health_.get());
        }
    }
    if (simCfg_.deadlockDetect.enabled) {
        detector_ = std::make_unique<net::DeadlockDetector>(
            *network_, simCfg_.deadlockDetect);
        sim_.add(detector_.get());
    }
    // Every node of a torus has the same outgoing link count; meshes
    // vary per node, so use the maximum (corner effects are small and
    // only matter for constant-power chip-to-chip links).
    const unsigned links_per_node = network_->linksFrom(0);
    monitor_ = std::make_unique<net::PowerMonitor>(
        sim_.bus(), netCfg_.buildModels(),
        network_->topology().numNodes(), links_per_node);

    // Invariant audits (flit conservation, credit accounting, energy
    // sanity) run every auditCycles cycles when checks are enabled at
    // runtime; paranoid mode audits 16x as often.
    auditor_ = std::make_unique<net::NetworkAuditor>(*network_,
                                                    monitor_.get());
    if (core::checkLevel() != core::CheckLevel::Off) {
        auditor_->registerWith(sim_);
        sim::Cycle interval = simCfg_.auditCycles;
        if (core::checkLevel() == core::CheckLevel::Paranoid &&
            interval > 16)
            interval /= 16;
        sim_.setAuditInterval(interval);
    }

    // Telemetry (off by default: nothing is constructed or registered,
    // keeping the disabled path bit-identical to a telemetry-free
    // build).
    const telemetry::TelemetryConfig& tele = simCfg_.telemetry;
    if (tele.traceEnabled) {
        tracer_ = std::make_unique<telemetry::FlitTracer>(
            sim_.bus(), tele.traceCapacity);
        if (faults_)
            faults_->setTracer(tracer_.get());
    }
    if (tele.sampleInterval > 0) {
        metrics_ = std::make_unique<telemetry::MetricsRegistry>();
        net::registerNetworkMetrics(*metrics_, *network_, *monitor_,
                                    sim_.bus(), faults_.get(),
                                    health_.get(), detector_.get());
        sampler_ = std::make_unique<net::WindowedSampler>(
            *metrics_, tele.sampleInterval);
        sampler_->registerWith(sim_);
    }

    // Cooperative cancellation: with no token configured (the
    // default) the simulator keeps its token-free cycle loops and the
    // hot path is untouched.
    sim_.setCancel(simCfg_.cancel);

    // Run-level observability hooks (off by default; both only
    // observe, so results are bit-identical either way).
    if (simCfg_.progressCycles != nullptr) {
        std::atomic<std::uint64_t>* counter = simCfg_.progressCycles;
        sim_.addPeriodic("progress.cycles", kProgressCycleInterval,
                         [counter](sim::Cycle now) {
                             counter->store(
                                 now, std::memory_order_relaxed);
                         });
    }
    if (simCfg_.profilePhases) {
        profiler_ = std::make_unique<core::PhaseProfiler>();
        sim_.setProfiler(profiler_.get());
    }
}

Simulation::~Simulation() = default;

void
Simulation::step(sim::Cycle cycles)
{
    sim_.run(cycles);
}

Report
Simulation::run()
{
    Report r;
    try {
        // Fault-drill hook: deliberately fail the point whose rate
        // matches debugPoisonRate (sweep failure-isolation tests).
        if (simCfg_.debugPoisonRate >= 0.0 &&
            std::abs(trafficCfg_.injectionRate -
                     simCfg_.debugPoisonRate) < 1e-12) {
            throw core::CheckFailure(
                "deliberately poisoned sweep point "
                "(SimConfig::debugPoisonRate)");
        }
        // Crash drill: deliberately SIGSEGV the point whose rate
        // matches debugSegvRate, so --isolate's structured
        // worker-crash capture can be tested end to end.
        if (simCfg_.debugSegvRate >= 0.0 &&
            std::abs(trafficCfg_.injectionRate -
                     simCfg_.debugSegvRate) < 1e-12) {
            std::raise(SIGSEGV);
        }
        runProtocol(r);
    } catch (const core::CheckFailure& e) {
        // An invariant fired mid-run (periodic audit, final audit, or
        // an ORION_CHECK in a module). Degrade gracefully: report the
        // failure as a structured stop reason and leave this object
        // intact so callers can take a forensic snapshot.
        r.stopReason = StopReason::CheckFailure;
        r.completed = false;
        r.deadlockSuspected = false;
        r.checkFailureDiagnostic = e.what();
        r.totalCycles = sim_.now();
        fillFaultStats(r);
    }
    // Close the sampler's final partial window whatever the outcome,
    // so a failed run still exports the time series it collected.
    if (sampler_)
        sampler_->finalize(sim_.now());
    return r;
}

std::string
Simulation::metricsCsv() const
{
    if (!sampler_)
        return {};
    std::ostringstream out;
    sampler_->writeCsv(out);
    return out.str();
}

std::string
Simulation::traceJson(const std::string& label) const
{
    if (!tracer_)
        return {};
    std::ostringstream out;
    tracer_->writeJson(out, label);
    return out.str();
}

void
Simulation::fillFaultStats(Report& r) const
{
    if (!faults_)
        return;
    r.flitsCorrupted = faults_->flitsCorrupted();
    r.flitsOutageDropped = faults_->flitsOutageDropped();
    r.flitsDiscarded = faults_->flitsDiscarded();
    r.packetsRetransmitted = faults_->packetsRetransmitted();
    r.packetsLost = faults_->packetsLost();
    r.faultLogHash = faults_->faultLogHash();
    r.packetsUnreachable = network_->totalUnreachable();
    if (health_)
        r.reroutes = health_->reroutes();
    if (detector_) {
        r.deadlocksDetected = detector_->detections();
        r.deadlocksRecovered = detector_->recoveries();
    }
}

void
Simulation::runProtocol(Report& r)
{
    // Run-phase wall-time marks (opt-in; one clock read per protocol
    // phase, nothing per cycle — the cycle-level attribution happens
    // inside Simulator::stepProfiled on its sampling stride).
    const bool prof = profiler_ != nullptr;
    double mark = prof ? profileSeconds() : 0.0;
    const auto run_phase_done = [&](core::PhaseProfiler::Phase phase) {
        if (!prof)
            return;
        const double now = profileSeconds();
        profiler_->addRunSeconds(phase, now - mark);
        mark = now;
    };

    // Phase 1: warm-up (traffic flows, nothing is measured).
    sim_.run(simCfg_.warmupCycles);
    run_phase_done(core::PhaseProfiler::Phase::Warmup);

    // Phase 2: open the sample window and measure energy from here on.
    monitor_->reset();
    // The reset legitimately rewinds the energy counters; forget the
    // auditor's monotonicity baseline so it isn't a false violation.
    auditor_->resetEnergyBaseline();
    network_->resetFlitCounts();
    auto& shared = network_->shared();
    shared.sampling = true;
    shared.sampleRemaining = simCfg_.samplePackets;
    const sim::Cycle measure_start = sim_.now();
    // The monitor reset above rewound the energy counters the sampler
    // treats as monotone; re-read baselines and drop warm-up windows
    // so the exported series covers exactly the measurement window.
    if (sampler_)
        sampler_->rebaseline(measure_start);

    // Phase 3: run until every sample packet has been received, with a
    // progress watchdog (no flit motion while packets are in flight =>
    // deadlock / pathological saturation).
    bool completed = false;
    bool deadlocked = false;
    bool unrecovered = false;
    bool cancelled = false;
    sim::Cycle elapsed = 0;
    std::uint64_t last_flits = 0;
    std::uint64_t last_reads = 0;
    // Per-router stall map at watchdog granularity: cycles a router
    // has held resident flits without forwarding any (forensics).
    const unsigned n_routers = network_->topology().numNodes();
    routerFrozenCycles_.assign(n_routers, 0);
    std::vector<std::uint64_t> last_forwarded(n_routers, 0);
    for (unsigned i = 0; i < n_routers; ++i) {
        last_forwarded[i] =
            network_->router(static_cast<int>(i)).flitsForwarded();
    }
    const auto track_frozen = [&](sim::Cycle chunk) {
        for (unsigned i = 0; i < n_routers; ++i) {
            const auto& rt = network_->router(static_cast<int>(i));
            const std::uint64_t fwd = rt.flitsForwarded();
            if (fwd == last_forwarded[i] && rt.residentFlits() > 0)
                routerFrozenCycles_[i] += chunk;
            else
                routerFrozenCycles_[i] = 0;
            last_forwarded[i] = fwd;
        }
    };

    const auto done = [&] {
        return shared.sampleRemaining == 0 &&
               shared.sampleEjected + shared.sampleLost >=
                   shared.sampleInjected &&
               shared.sampleInjected >= simCfg_.samplePackets;
    };

    while (elapsed < simCfg_.maxCycles) {
        // Cooperative-cancellation check at chunk granularity (the
        // simulator loop itself also bails mid-chunk): a deadline or
        // interrupt ends the run with a structured stop reason.
        if (sim_.cancelled()) {
            cancelled = true;
            break;
        }
        const sim::Cycle chunk =
            std::min<sim::Cycle>(simCfg_.watchdogCycles,
                                 simCfg_.maxCycles - elapsed);
        if (sim_.runUntil(done, chunk)) {
            completed = true;
            break;
        }
        if (sim_.cancelled()) {
            cancelled = true;
            break;
        }
        elapsed += chunk;
        track_frozen(chunk);
        if (detector_ && detector_->unrecoverable()) {
            unrecovered = true;
            break;
        }

        const std::uint64_t flits = network_->totalFlitsEjected();
        const std::uint64_t reads =
            monitor_->eventCount(sim::EventType::BufferRead) +
            monitor_->eventCount(sim::EventType::CentralBufferRead);
        if (flits == last_flits && reads == last_reads &&
            network_->inFlight() > 0) {
            deadlocked = true;
            break;
        }
        last_flits = flits;
        last_reads = reads;
    }

    run_phase_done(core::PhaseProfiler::Phase::Measure);

    // Final audit at drain: every invariant must hold at the very
    // cycle boundary the report is assembled from. Skipped when
    // cancelled — the report is an explicitly partial snapshot and
    // the contract is to get out quickly.
    if (!cancelled && sim_.auditCount() > 0)
        sim_.runAudits();

    // Phase 4: assemble the report.
    const sim::Cycle measured = sim_.now() - measure_start;
    r.totalCycles = sim_.now();
    r.measuredCycles = measured;
    r.completed = completed;
    r.deadlockSuspected = deadlocked || unrecovered;
    r.stopReason = completed      ? StopReason::Completed
                   : cancelled   ? (simCfg_.cancel->cause() ==
                                            core::CancelCause::Deadline
                                        ? StopReason::Deadline
                                        : StopReason::Interrupted)
                   : unrecovered ? StopReason::DeadlockUnrecovered
                   : deadlocked  ? StopReason::WatchdogStall
                                 : StopReason::MaxCycles;
    r.moduleCount = sim_.moduleCount();
    fillFaultStats(r);

    r.avgLatencyCycles = shared.sampleLatency.mean();
    r.p50LatencyCycles = shared.sampleLatencyHist.quantile(0.50);
    r.p95LatencyCycles = shared.sampleLatencyHist.quantile(0.95);
    r.p99LatencyCycles = shared.sampleLatencyHist.quantile(0.99);
    r.maxLatencyCycles = shared.sampleLatency.max();
    r.sampleInjected = shared.sampleInjected;
    r.sampleEjected = shared.sampleEjected;
    r.offeredLoad = trafficCfg_.injectionRate;

    const unsigned n = network_->topology().numNodes();
    const double cycles = measured > 0 ? static_cast<double>(measured)
                                       : 1.0;
    r.acceptedFlitsPerNodePerCycle =
        static_cast<double>(network_->totalFlitsEjected()) / cycles / n;

    r.networkPowerWatts = monitor_->networkPower(cycles);
    r.dynamicEnergyJoules = monitor_->totalEnergy();
    const double flits_delivered =
        static_cast<double>(network_->totalFlitsEjected());
    r.energyPerFlitJoules =
        flits_delivered > 0.0 ? r.dynamicEnergyJoules / flits_delivered
                              : 0.0;
    r.breakdownWatts.buffer =
        monitor_->classPower(net::ComponentClass::Buffer, cycles);
    r.breakdownWatts.crossbar =
        monitor_->classPower(net::ComponentClass::Crossbar, cycles);
    r.breakdownWatts.arbiter =
        monitor_->classPower(net::ComponentClass::Arbiter, cycles);
    r.breakdownWatts.link =
        monitor_->classPower(net::ComponentClass::Link, cycles);
    r.breakdownWatts.centralBuffer =
        monitor_->classPower(net::ComponentClass::CentralBuffer, cycles);

    r.nodePowerWatts.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        r.nodePowerWatts[i] =
            monitor_->nodePower(static_cast<int>(i), cycles);
    }

    for (unsigned t = 0; t < sim::kNumEventTypes; ++t) {
        r.eventCounts[t] =
            monitor_->eventCount(static_cast<sim::EventType>(t));
    }
    // Packet events are not routed through the monitor; take them from
    // the bus (counted since construction — injection/ejection events
    // during warm-up included by design).
    r.eventCounts[static_cast<unsigned>(sim::EventType::PacketInjected)] =
        sim_.bus().emittedCount(sim::EventType::PacketInjected);
    r.eventCounts[static_cast<unsigned>(sim::EventType::PacketEjected)] =
        sim_.bus().emittedCount(sim::EventType::PacketEjected);

    // Final audits + report assembly ("drain" in the phase profile).
    run_phase_done(core::PhaseProfiler::Phase::Drain);

    // Opt-in Chrome-trace spans: with both the tracer and the profiler
    // enabled, summarize each phase as an instant event at the final
    // cycle, microseconds carried in the packet-id field (the ring
    // record has no payload slot; docs/OBSERVABILITY.md documents the
    // encoding).
    if (tracer_ && profiler_) {
        for (unsigned i = 0; i < core::PhaseProfiler::kNumPhases; ++i) {
            const auto phase =
                static_cast<core::PhaseProfiler::Phase>(i);
            const double secs = profiler_->seconds(phase);
            if (secs <= 0.0)
                continue;
            tracer_->addInstant(core::PhaseProfiler::phaseName(phase),
                                -1, -1, sim_.now(),
                                static_cast<std::uint64_t>(secs * 1e6));
        }
    }
}

} // namespace orion
