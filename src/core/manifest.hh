/**
 * @file
 * Run manifests: one JSON document of provenance per sim/sweep run
 * (docs/OBSERVABILITY.md, "Run-level observability").
 *
 * A manifest answers "where did this CSV come from?" months later: the
 * config fingerprint (the same sweepFingerprint that guards checkpoint
 * journals), the build that produced the binary (compiler, flags, git
 * sha), the host it ran on, wall-clock bounds, how the run stopped,
 * and what it cost (getrusage CPU/RSS totals, including isolated
 * worker children). Everything in it is informational: manifests are
 * never read back by the simulator and never participate in
 * determinism contracts.
 *
 * CLIs write one with `--manifest-out FILE`; orion_sweep additionally
 * writes `<journal>.manifest.json` beside `--checkpoint`/`--resume`
 * journals so long runs are self-describing.
 */
#ifndef ORION_CORE_MANIFEST_HH
#define ORION_CORE_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace orion::core {

/// One simulator stage's share of sampled kernel wall time.
struct PhaseShare
{
    std::string name;
    double seconds = 0.0;
    double share = 0.0; ///< fraction of the sampled total, [0,1]
};

/** Provenance and cost record for one CLI run. Fill via begin() /
 * finish(), serialize with toJson(). */
struct RunManifest
{
    std::string tool;           ///< "orion_sim" or "orion_sweep"
    std::string fingerprintHex; ///< sweepFingerprint, 16 hex chars
    std::uint64_t seed = 0;     ///< base seed
    unsigned seeds = 1;         ///< seeds per rate point
    std::uint64_t ratePoints = 1;

    std::uint64_t pointsTotal = 0;
    std::uint64_t pointsCompleted = 0;
    std::uint64_t pointsFailed = 0;
    std::uint64_t pointsFromCheckpoint = 0;

    std::string stopReason; ///< stopReasonName() or CLI outcome

    // Build/host provenance (filled by begin()).
    std::string compiler;
    std::string flags;
    std::string gitSha;
    std::string buildType;
    std::string host;
    int pid = 0;

    double startUnixSeconds = 0.0;
    double endUnixSeconds = 0.0;

    // getrusage totals (filled by finish()). maxrss is kilobytes.
    double userCpuSeconds = 0.0;
    double sysCpuSeconds = 0.0;
    long maxRssKb = 0;
    double childUserCpuSeconds = 0.0;
    double childSysCpuSeconds = 0.0;
    long childMaxRssKb = 0;

    /// Kernel phase profile (empty unless --profile-phases).
    std::vector<PhaseShare> phases;

    /** Start a manifest: stamps tool name, build info, host, pid and
     * the start wall time. */
    static RunManifest begin(std::string toolName);

    /** Close a manifest: stamps the end wall time, the stop reason and
     * getrusage(SELF) + getrusage(CHILDREN) totals. */
    void finish(std::string reason);

    /// Serialize as a pretty-printed JSON object.
    std::string toJson() const;
};

/** Write `contents` to `path` atomically: write to `path + ".tmp"`,
 * fsync, rename over `path`. Readers never observe a torn file (the
 * heartbeat writer reuses this). @throw std::runtime_error on I/O
 * failure. */
void writeFileAtomic(const std::string& path,
                     const std::string& contents);

} // namespace orion::core

#endif // ORION_CORE_MANIFEST_HH
