#include "core/cancel.hh"

#include <csignal>

namespace orion::core {

namespace {

/** Process-wide interrupt state. Written by the signal handler, so it
 * is restricted to a volatile sig_atomic_t plus the lock-free atomic
 * inside g_interruptToken (tools/orion_analyze.py signal-safety). */
volatile std::sig_atomic_t g_signal = 0;

CancelToken g_interruptToken;

extern "C" void
orionInterruptHandler(int signum)
{
    g_signal = signum;
    g_interruptToken.cancel(CancelCause::Interrupt);
}

} // namespace

CancelToken&
interruptToken() noexcept
{
    return g_interruptToken;
}

void
installInterruptHandlers() noexcept
{
    static_assert(std::atomic<int>::is_always_lock_free,
                  "signal handler requires a lock-free cancel flag");
    struct sigaction action = {};
    action.sa_handler = &orionInterruptHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // no SA_RESTART: interrupt blocking I/O too
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

int
interruptSignal() noexcept
{
    return static_cast<int>(g_signal);
}

} // namespace orion::core
