/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A core::CancelToken is the single mechanism behind per-point sweep
 * deadlines (--point-timeout) and Ctrl-C/SIGTERM handling: the owner
 * arms a deadline and/or cancels the token, the Simulator's cycle
 * loop checks it at cycle granularity (one relaxed atomic load — near
 * zero next to a network cycle; the wall-clock deadline is only
 * polled every kCancelPollCycles), and Simulation::run converts the
 * cancellation cause into a structured StopReason (Deadline or
 * Interrupted) with forensics instead of a hung process.
 *
 * Tokens chain: a per-point token can name a parent (typically the
 * process-wide interruptToken()), and reads as cancelled when either
 * fires. Cancellation is sticky — the first cause wins and later
 * cancel() calls are ignored — and cancel() is async-signal-safe
 * (one lock-free atomic compare-exchange), so the SIGINT/SIGTERM
 * handlers installed by installInterruptHandlers() may call it
 * directly.
 */

#ifndef ORION_CORE_CANCEL_HH
#define ORION_CORE_CANCEL_HH

#include <atomic>
#include <chrono>

namespace orion::core {

/** Why a token was cancelled (None = not cancelled). */
enum class CancelCause : int
{
    None = 0,
    /** The armed wall-clock deadline expired (--point-timeout). */
    Deadline = 1,
    /** The process was asked to stop (SIGINT/SIGTERM or an explicit
     * owner-side cancel). */
    Interrupt = 2,
};

/** Cycles between wall-clock deadline polls in the Simulator loop
 * (the cancelled() flag itself is checked every cycle). */
constexpr unsigned kCancelPollCycles = 1024;

/**
 * A sticky, chainable cancellation flag. cancelled()/cause() are safe
 * from any thread; cancel() is additionally async-signal-safe.
 * poll() (deadline promotion) must only be called by the owning
 * simulation thread.
 */
class CancelToken
{
  public:
    /** @p parent (optional) is observed read-only: this token also
     * reads as cancelled when the parent is. It must outlive this
     * token. */
    explicit CancelToken(const CancelToken* parent = nullptr)
        : parent_(parent)
    {
    }

    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    /** Cancel with @p cause; the first cause to land wins.
     * Async-signal-safe. */
    void
    cancel(CancelCause cause) noexcept
    {
        int expected = 0;
        cause_.compare_exchange_strong(expected,
                                       static_cast<int>(cause),
                                       std::memory_order_relaxed);
    }

    /** True once this token (or its parent chain) is cancelled. */
    bool
    cancelled() const noexcept
    {
        if (cause_.load(std::memory_order_relaxed) != 0)
            return true;
        return parent_ != nullptr && parent_->cancelled();
    }

    /** The first cause that landed (walking up to the parent when
     * this token itself is clean). */
    CancelCause
    cause() const noexcept
    {
        const int own = cause_.load(std::memory_order_relaxed);
        if (own != 0)
            return static_cast<CancelCause>(own);
        return parent_ != nullptr ? parent_->cause()
                                  : CancelCause::None;
    }

    /** Arm a wall-clock deadline @p seconds from now; poll() promotes
     * it into cancel(CancelCause::Deadline) once it expires.
     * Non-positive values leave the token unarmed. */
    void
    armDeadline(double seconds)
    {
        if (seconds <= 0.0)
            return;
        // Wall-clock by design: a deadline bounds real time, not
        // simulated cycles, and never feeds back into results (a
        // Deadline stop is excluded from checkpoint journals).
        deadline_ = std::chrono::steady_clock::now() + // lint-allow: nondeterminism
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>( // lint-allow: nondeterminism
                        std::chrono::duration<double>(seconds));
        hasDeadline_ = true;
    }

    /** Promote an expired deadline into a cancellation. Called off
     * the hot path (every kCancelPollCycles cycles) by the owning
     * simulation thread. */
    void
    poll() noexcept
    {
        if (hasDeadline_ &&
            std::chrono::steady_clock::now() >= deadline_) { // lint-allow: nondeterminism
            cancel(CancelCause::Deadline);
        }
    }

  private:
    std::atomic<int> cause_{0};
    const CancelToken* parent_;
    /** Deadline state; written by armDeadline before the simulation
     * starts, read only by the owning thread's poll(). */
    bool hasDeadline_ = false;
    std::chrono::steady_clock::time_point deadline_{}; // lint-allow: nondeterminism
};

/**
 * The process-wide interrupt token, cancelled (with
 * CancelCause::Interrupt) by the SIGINT/SIGTERM handlers that
 * installInterruptHandlers() registers. Long-running drivers chain
 * their per-point tokens to it so one Ctrl-C drains every in-flight
 * point cooperatively.
 */
CancelToken& interruptToken() noexcept;

/**
 * Install SIGINT/SIGTERM handlers that cancel interruptToken() and
 * record the signal number. The handlers touch only a volatile
 * sig_atomic_t and the token's lock-free atomic (enforced by
 * tools/orion_analyze.py's signal-safety rule). Idempotent.
 */
void installInterruptHandlers() noexcept;

/** The signal that fired (SIGINT/SIGTERM), or 0 if none did. */
int interruptSignal() noexcept;

} // namespace orion::core

#endif // ORION_CORE_CANCEL_HH
