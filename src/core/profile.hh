/**
 * @file
 * Kernel phase profiler: wall-time attribution across the simulator's
 * stages (docs/OBSERVABILITY.md, "Run-level observability").
 *
 * Two granularities:
 *
 *  - Cycle phases (router_advance, channel_advance, audit, periodic):
 *    timed inside Simulator::step() on a strided sample of cycles.
 *    The stride (17) is coprime to every power-of-two interval in the
 *    system (audit interval, telemetry sample interval), so periodic
 *    work is sampled at its true frequency instead of being aliased.
 *    Shares are computed over the sampled total, which estimates the
 *    full run's distribution.
 *
 *  - Run phases (warmup, measure, drain): absolute wall times of the
 *    simulation protocol's stages, recorded once by Simulation.
 *
 * Profiling is opt-in (--profile-phases). Disabled, the simulator pays
 * one null-pointer test per cycle; the results are bit-identical
 * either way because the profiler only reads clocks. This attribution
 * is the groundwork for ROADMAP item 1(b): partitioning routers across
 * threads needs to know how much of a cycle is router advance versus
 * serialized channel/audit work.
 */
#ifndef ORION_CORE_PROFILE_HH
#define ORION_CORE_PROFILE_HH

#include <array>
#include <cstdint>

#include "core/manifest.hh"

namespace orion::core {

class PhaseProfiler
{
  public:
    enum class Phase : unsigned
    {
        RouterAdvance = 0, ///< module cycle() loop
        ChannelAdvance,    ///< channel boundary advances
        Audit,             ///< periodic invariant audits
        Periodic,          ///< telemetry/progress hooks
        Warmup,            ///< protocol phase 1
        Measure,           ///< protocol phase 3 (includes drain tail)
        Drain,             ///< final audits + report assembly
        Count
    };
    static constexpr unsigned kNumPhases =
        static_cast<unsigned>(Phase::Count);
    /// Cycle sampling stride; prime so power-of-two periodic work
    /// (audits at 1024, samplers at 1000/4096) is not aliased.
    static constexpr std::uint64_t kStride = 17;

    /// @name Cycle-phase API (called by Simulator::step)
    /// @{
    /** Open a cycle; decides whether this cycle is sampled and, if
     * so, marks the phase start time. */
    void beginCycle();
    /// True when the current cycle is being timed.
    bool sampling() const { return sampling_; }
    /** Close the current phase: accumulate wall time since the last
     * mark into @p phase and re-mark. Only meaningful while
     * sampling(). */
    void phaseDone(Phase phase);
    /// @}

    /// Record an absolute run-phase duration (Simulation protocol).
    void addRunSeconds(Phase phase, double seconds);

    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t sampledCycles() const { return sampled_; }
    double seconds(Phase phase) const;

    /**
     * Summarize for the manifest: cycle phases share the sampled
     * total, run phases share the summed run-phase total.
     */
    std::vector<PhaseShare> shares() const;

    static const char* phaseName(Phase phase);

  private:
    std::array<double, kNumPhases> seconds_{};
    std::uint64_t cycles_ = 0;
    std::uint64_t sampled_ = 0;
    double mark_ = 0.0;
    bool sampling_ = false;
};

} // namespace orion::core

#endif // ORION_CORE_PROFILE_HH
