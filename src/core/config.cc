#include "core/config.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace orion {

namespace {

[[noreturn]] void
fail(const std::string& what)
{
    throw std::invalid_argument("orion config: " + what);
}

} // namespace

void
NetworkConfig::validate() const
{
    if (net.dims.empty())
        fail("topology needs at least one dimension");
    unsigned nodes = 1;
    for (const unsigned k : net.dims) {
        if (k < 2)
            fail("every dimension radix must be >= 2");
        nodes *= k;
    }
    if (net.vcs < 1)
        fail("vcs must be >= 1");
    if (net.routerKind != net::RouterKind::VirtualChannel &&
        net.vcs != 1) {
        fail("wormhole and central-buffer routers have exactly 1 VC");
    }
    if (net.bufferDepth < 1)
        fail("bufferDepth must be >= 1");
    if (net.flitBits < 1)
        fail("flitBits must be >= 1");
    if (net.packetLength < 1)
        fail("packetLength must be >= 1");

    switch (net.deadlock) {
      case router::DeadlockMode::Dateline:
        if (net.vcs < 2)
            fail("dateline deadlock avoidance needs >= 2 VCs");
        break;
      case router::DeadlockMode::Bubble:
        if (net.bufferDepth < net.packetLength)
            fail("bubble deadlock avoidance needs bufferDepth >= "
                 "packetLength");
        if (net.vcs == 1 &&
            net.routerKind != net::RouterKind::CentralBuffer &&
            net.bufferDepth < 2 * net.packetLength) {
            fail("flit-granular bubble needs bufferDepth >= 2 x "
                 "packetLength");
        }
        break;
      case router::DeadlockMode::None:
        break;
    }

    if (net.routerKind == net::RouterKind::CentralBuffer) {
        const auto& cb = net.centralBuffer;
        if (cb.capacityFlits < net.packetLength)
            fail("central buffer must hold at least one packet");
        if (cb.capacityFlits % 4 != 0)
            fail("central buffer capacity must divide into 4 banks");
        if (cb.writePorts < 1 || cb.readPorts < 1)
            fail("central buffer needs >= 1 read and write port");
    }

    if (!net.dimOrder.empty()) {
        if (net.dimOrder.size() != net.dims.size())
            fail("dimOrder must name every dimension exactly once");
        std::vector<bool> seen(net.dims.size(), false);
        for (const unsigned d : net.dimOrder) {
            if (d >= net.dims.size() || seen[d])
                fail("dimOrder must name every dimension exactly once");
            seen[d] = true;
        }
    }

    if (linkLengthUm <= 0.0)
        fail("linkLengthUm must be positive");
    if (c2cLinkPowerWatts < 0.0)
        fail("c2cLinkPowerWatts must be non-negative");
    if (tech.vdd <= 0.0 || tech.freqHz <= 0.0 || tech.featureUm <= 0.0)
        fail("technology node must have positive Vdd, frequency and "
             "feature size");
}

void
validateTraffic(const NetworkConfig& network, const TrafficConfig& traffic)
{
    unsigned nodes = 1;
    for (const unsigned k : network.net.dims)
        nodes *= k;
    const auto in_range = [&](int n) {
        return n >= 0 && static_cast<unsigned>(n) < nodes;
    };

    // Negated-range form so NaN (for which every comparison is
    // false) is rejected instead of slipping past both bounds.
    if (traffic.pattern != net::TrafficPattern::Trace &&
        !(traffic.injectionRate >= 0.0 &&
          traffic.injectionRate <= 1.0)) {
        fail("injectionRate must lie in [0, 1] packets/cycle/node");
    }
    switch (traffic.pattern) {
      case net::TrafficPattern::Broadcast:
        if (traffic.broadcastSource >= 0 &&
            !in_range(traffic.broadcastSource)) {
            fail("broadcastSource is not a node of this network");
        }
        break;
      case net::TrafficPattern::Hotspot:
        if (!in_range(traffic.hotspotNode))
            fail("hotspotNode is not a node of this network");
        if (!(traffic.hotspotFraction >= 0.0 &&
              traffic.hotspotFraction <= 1.0)) {
            fail("hotspotFraction must lie in [0, 1]");
        }
        break;
      case net::TrafficPattern::Trace:
        if (!traffic.trace)
            fail("Trace pattern needs a trace (TrafficConfig::trace)");
        net::Trace::validate(*traffic.trace, nodes);
        break;
      case net::TrafficPattern::Transpose:
        if (network.net.dims.size() != 2)
            fail("transpose traffic needs a 2-D network");
        break;
      default:
        break;
    }
}

void
SimConfig::validate() const
{
    if (samplePackets == 0)
        fail("samplePackets must be >= 1");
    if (maxCycles == 0)
        fail("maxCycles must be >= 1");
    if (watchdogCycles == 0)
        fail("watchdogCycles must be >= 1 (0 would disable the "
             "stall watchdog and let a saturated run spin forever)");
    // The debug-drill rates compare against injection rates; a NaN
    // never matches anything, which silently disables the drill the
    // caller asked for.
    if (std::isnan(debugPoisonRate))
        fail("debugPoisonRate must not be NaN");
    if (std::isnan(debugSegvRate))
        fail("debugSegvRate must not be NaN");
}

void
validateConfig(const NetworkConfig& network, const TrafficConfig& traffic,
               const SimConfig& sim)
{
    network.validate();
    validateTraffic(network, traffic);
    sim.validate();
    sim.fault.validate();
}

namespace {

/** Map the behavioural arbiter style onto its power model. */
power::ArbiterKind
powerArbiterKind(router::ArbiterKind kind)
{
    switch (kind) {
      case router::ArbiterKind::Matrix:
        return power::ArbiterKind::Matrix;
      case router::ArbiterKind::RoundRobin:
        return power::ArbiterKind::RoundRobin;
      case router::ArbiterKind::Queuing:
        return power::ArbiterKind::Queuing;
    }
    return power::ArbiterKind::Matrix;
}

} // namespace

net::PowerModelSet
NetworkConfig::buildModels() const
{
    const unsigned ports = 2 * static_cast<unsigned>(net.dims.size()) + 1;
    const power::ArbiterKind arbiter_kind =
        powerArbiterKind(net.arbiterKind);

    net::PowerModelSet set;
    set.tech = tech;

    // Wordline/bitline lengths — and hence per-access energy — follow
    // the physical array organization (see BufferOrganization).
    const unsigned array_rows = bufferOrg == BufferOrganization::PerPort
                                    ? net.vcs * net.bufferDepth
                                    : net.bufferDepth;
    set.buffer = std::make_unique<power::BufferModel>(
        tech, power::BufferParams{array_rows, net.flitBits, 1, 1});

    if (net.routerKind != net::RouterKind::CentralBuffer) {
        // Output drivers see the downstream latch / link input.
        double out_load = 0.0;
        if (linkType == LinkType::OnChip)
            out_load = tech.cwPerUm * linkLengthUm;
        set.crossbar = std::make_unique<power::CrossbarModel>(
            tech, power::CrossbarParams{ports, ports, net.flitBits,
                                        crossbarKind, out_load});
    } else {
        const auto& cbp = net.centralBuffer;
        // Paper 4.4 organization: banks of one-flit-wide rows.
        const unsigned banks = 4;
        assert(cbp.capacityFlits % banks == 0);
        set.centralBuffer = std::make_unique<power::CentralBufferModel>(
            tech,
            power::CentralBufferParams{banks, cbp.capacityFlits / banks,
                                       net.flitBits, cbp.readPorts,
                                       cbp.writePorts, ports,
                                       cbp.pipelineLatency});
    }

    // Switch arbiter: one requester per input port, u-turn excluded
    // (the paper's "4:1 arbiter per output port"). Its grant drives
    // the crossbar control lines (E_xb_ctr folded into E_arb).
    const double ctrl_cap =
        set.crossbar ? set.crossbar->controlCap() : 0.0;
    set.switchArbiter = std::make_unique<power::ArbiterModel>(
        tech, power::ArbiterParams{ports - 1, arbiter_kind, ctrl_cap});

    if (net.routerKind == net::RouterKind::VirtualChannel) {
        set.vcArbiter = std::make_unique<power::ArbiterModel>(
            tech, power::ArbiterParams{(ports - 1) * net.vcs,
                                       arbiter_kind, 0.0});
    }

    if (linkType == LinkType::OnChip) {
        set.onChipLink = std::make_unique<power::OnChipLinkModel>(
            tech, linkLengthUm, net.flitBits);
    } else {
        set.chipToChipLink =
            std::make_unique<power::ChipToChipLinkModel>(
                c2cLinkPowerWatts);
    }
    return set;
}

namespace {

/** Common Section 4.2 on-chip base: 4x4 torus, 256-bit flits, 2 GHz. */
NetworkConfig
onChipBase()
{
    NetworkConfig c;
    c.net.dims = {4, 4};
    c.net.wrap = true;
    c.net.flitBits = 256;
    c.net.packetLength = 5;
    c.tech = tech::TechNode::onChip100nm();
    c.linkType = LinkType::OnChip;
    c.linkLengthUm = 3000.0; // 12mm x 12mm chip, 4x4 nodes
    return c;
}

/** Common Section 4.4 chip-to-chip base: 32-bit flits, 1 GHz, 3 W
 * links. */
NetworkConfig
chipToChipBase()
{
    NetworkConfig c;
    c.net.dims = {4, 4};
    c.net.wrap = true;
    c.net.flitBits = 32;
    c.net.packetLength = 5;
    c.tech = tech::TechNode::chipToChip100nm();
    c.linkType = LinkType::ChipToChip;
    c.c2cLinkPowerWatts = 3.0;
    return c;
}

} // namespace

NetworkConfig
NetworkConfig::wh64()
{
    NetworkConfig c = onChipBase();
    c.net.routerKind = net::RouterKind::Wormhole;
    c.net.vcs = 1;
    c.net.bufferDepth = 64;
    c.net.deadlock = router::DeadlockMode::Bubble;
    return c;
}

NetworkConfig
NetworkConfig::vc16()
{
    NetworkConfig c = onChipBase();
    c.net.routerKind = net::RouterKind::VirtualChannel;
    c.net.vcs = 2;
    c.net.bufferDepth = 8;
    // With only 2 VCs, dateline classes outperform the slot-granular
    // bubble rule (which would demand a fully empty downstream port
    // for every ring entry); see DESIGN.md and EXPERIMENTS.md for the
    // measured comparison.
    c.net.deadlock = router::DeadlockMode::Dateline;
    return c;
}

NetworkConfig
NetworkConfig::vc64()
{
    NetworkConfig c = vc16();
    c.net.vcs = 8;
    c.net.bufferDepth = 8;
    // With 8 VCs per port the slot-granular bubble (atomic VCT) is
    // both deadlock-free and higher-throughput than dateline classes.
    c.net.deadlock = router::DeadlockMode::Bubble;
    return c;
}

NetworkConfig
NetworkConfig::vc128()
{
    NetworkConfig c = vc64();
    c.net.bufferDepth = 16;
    return c;
}

NetworkConfig
NetworkConfig::xb()
{
    NetworkConfig c = chipToChipBase();
    c.net.routerKind = net::RouterKind::VirtualChannel;
    c.net.vcs = 16;
    c.net.bufferDepth = 268;
    c.net.deadlock = router::DeadlockMode::Dateline;
    // 16 deep VCs are physically separate arrays, not one 4288-row
    // SRAM — this is what keeps XB's per-access energy far below the
    // central buffer's (Figure 7 power ordering).
    c.bufferOrg = BufferOrganization::PerVc;
    return c;
}

NetworkConfig
NetworkConfig::cb()
{
    NetworkConfig c = chipToChipBase();
    c.net.routerKind = net::RouterKind::CentralBuffer;
    c.net.vcs = 1;
    c.net.bufferDepth = 64; // input FIFO per port
    c.net.deadlock = router::DeadlockMode::Bubble;
    c.net.centralBuffer =
        router::CentralBufferRouterParams{4 * 2560, 2, 2, 2};
    return c;
}

} // namespace orion
