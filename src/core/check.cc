#include "core/check.hh"

#include <cstdlib>
#include <string_view>

namespace orion::core {

namespace {

int
clampToCompiled(int level)
{
    if (level < 0)
        return 0;
    if (level > ORION_CHECK_MAX_LEVEL)
        return ORION_CHECK_MAX_LEVEL;
    return level;
}

/** Parse the ORION_CHECK environment variable (default: cheap). */
int
levelFromEnvironment()
{
    const char* env = std::getenv("ORION_CHECK");
    if (env == nullptr)
        return clampToCompiled(static_cast<int>(CheckLevel::Cheap));
    const std::string_view v(env);
    if (v == "0" || v == "off" || v == "none")
        return 0;
    if (v == "1" || v == "cheap" || v == "on")
        return clampToCompiled(1);
    if (v == "2" || v == "paranoid" || v == "full")
        return clampToCompiled(2);
    // Unrecognized values fall back to the default rather than
    // silently disabling the checks.
    return clampToCompiled(static_cast<int>(CheckLevel::Cheap));
}

} // namespace

namespace detail {

std::atomic<int>&
checkLevelStorage()
{
    static std::atomic<int> level{levelFromEnvironment()};
    return level;
}

} // namespace detail

CheckLevel
checkLevel()
{
    return static_cast<CheckLevel>(
        detail::checkLevelStorage().load(std::memory_order_relaxed));
}

void
setCheckLevel(CheckLevel level)
{
    detail::checkLevelStorage().store(
        clampToCompiled(static_cast<int>(level)),
        std::memory_order_relaxed);
}

CheckLevel
compiledCheckLevel()
{
    return static_cast<CheckLevel>(ORION_CHECK_MAX_LEVEL);
}

void
checkFailed(const char* kind, const char* cond, const char* file,
            int line, const std::string& message)
{
    std::ostringstream os;
    os << "ORION " << kind << " failed: " << message << " [" << cond
       << "] at " << file << ":" << line;
    throw CheckFailure(os.str());
}

} // namespace orion::core
