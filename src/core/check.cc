#include "core/check.hh"

#include <cstdlib>
#include <string_view>

namespace orion::core {

namespace {

int
clampToCompiled(int level)
{
    if (level < 0)
        return 0;
    if (level > ORION_CHECK_MAX_LEVEL)
        return ORION_CHECK_MAX_LEVEL;
    return level;
}

/** Parse the ORION_CHECK environment variable (default: cheap). */
int
levelFromEnvironment()
{
    const char* env = std::getenv("ORION_CHECK");
    if (env == nullptr)
        return clampToCompiled(static_cast<int>(CheckLevel::Cheap));
    const std::string_view v(env);
    if (v == "0" || v == "off" || v == "none")
        return 0;
    if (v == "1" || v == "cheap" || v == "on")
        return clampToCompiled(1);
    if (v == "2" || v == "paranoid" || v == "full")
        return clampToCompiled(2);
    // Unrecognized values fall back to the default rather than
    // silently disabling the checks.
    return clampToCompiled(static_cast<int>(CheckLevel::Cheap));
}

} // namespace

namespace detail {

int
initCheckLevel()
{
    const int level = levelFromEnvironment();
    // Several threads may race the first lookup; they all compute the
    // same environment-derived value, so last-writer-wins is benign.
    g_checkLevel.store(level, std::memory_order_relaxed);
    return level;
}

} // namespace detail

CheckLevel
checkLevel()
{
    int level = detail::g_checkLevel.load(std::memory_order_relaxed);
    if (level < 0)
        level = detail::initCheckLevel();
    return static_cast<CheckLevel>(level);
}

void
setCheckLevel(CheckLevel level)
{
    detail::g_checkLevel.store(clampToCompiled(static_cast<int>(level)),
                               std::memory_order_relaxed);
}

CheckLevel
compiledCheckLevel()
{
    return static_cast<CheckLevel>(ORION_CHECK_MAX_LEVEL);
}

void
checkFailed(const char* kind, const char* cond, const char* file,
            int line, const std::string& message)
{
    std::ostringstream os;
    os << "ORION " << kind << " failed: " << message << " [" << cond
       << "] at " << file << ":" << line;
    throw CheckFailure(os.str());
}

} // namespace orion::core
