/**
 * @file
 * Build and host provenance for run manifests and bench JSON (see
 * docs/OBSERVABILITY.md, "Run-level observability").
 *
 * The compiler, flags, git sha and build type are stamped into the
 * library at configure time (src/CMakeLists.txt confines the
 * definitions to build_info.cc). Provenance is informational only: it
 * never participates in config fingerprints or regression gates, so a
 * stale sha after local commits cannot invalidate results.
 */
#ifndef ORION_CORE_BUILD_INFO_HH
#define ORION_CORE_BUILD_INFO_HH

#include <string>

namespace orion::core {

/// Static facts about the binary, embedded at configure time.
struct BuildInfo
{
    const char* compiler;  ///< e.g. "GNU 13.2.0"
    const char* flags;     ///< CMAKE_CXX_FLAGS + build-type flags
    const char* gitSha;    ///< short sha, "-dirty" suffix if unclean
    const char* buildType; ///< e.g. "RelWithDebInfo"
};

/// The provenance baked into this build.
const BuildInfo& buildInfo();

/// Hostname of the machine running the binary ("unknown" on failure).
std::string hostName();

} // namespace orion::core

#endif // ORION_CORE_BUILD_INFO_HH
