#include "core/telemetry.hh"

#include <cassert>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "core/report.hh"

namespace orion::telemetry {

const char*
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge:   return "gauge";
    }
    return "unknown";
}

void
MetricsRegistry::add(MetricKind kind, std::string name, Reader read)
{
    assert(read && "metric reader must be callable");
    if (find(name) != npos) {
        throw std::invalid_argument("telemetry: duplicate metric '" +
                                    name + "'");
    }
    const core::RoleGuard guard(serial_);
    metrics_.push_back({kind, std::move(name), std::move(read)});
}

std::size_t
MetricsRegistry::find(const std::string& name) const
{
    const core::RoleGuard guard(serial_);
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        if (metrics_[i].name == name)
            return i;
    }
    return npos;
}

FlitTracer::FlitTracer(sim::EventBus& bus, std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1)
{
    ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
    // The tracer is only constructed when tracing is enabled, so a
    // disabled run has no telemetry handlers on the bus at all.
    for (unsigned t = 0; t < sim::kNumEventTypes; ++t) {
        bus.subscribeRaw(
            static_cast<sim::EventType>(t),
            [](void* ctx, const sim::Event& ev) {
                static_cast<FlitTracer*>(ctx)->onEvent(ev);
            },
            this);
    }
}

void
FlitTracer::record(const Record& rec)
{
    ++total_;
    if (ring_.size() < capacity_) {
        ring_.push_back(rec);
        return;
    }
    // Ring full: overwrite the oldest record.
    ring_[head_] = rec;
    head_ = (head_ + 1) % capacity_;
}

void
FlitTracer::onEvent(const sim::Event& ev)
{
    // Pipeline-stage events render as 1-cycle spans; everything else
    // (credits, packet boundaries) as instants.
    bool span = false;
    switch (ev.type) {
      case sim::EventType::BufferWrite:
      case sim::EventType::BufferRead:
      case sim::EventType::Arbitration:
      case sim::EventType::VcAllocation:
      case sim::EventType::CrossbarTraversal:
      case sim::EventType::CentralBufferWrite:
      case sim::EventType::CentralBufferRead:
      case sim::EventType::LinkTraversal:
        span = true;
        break;
      default:
        break;
    }
    record({sim::eventTypeName(ev.type), ev.node, ev.component,
            ev.deltaA, 0, ev.cycle, span});
}

void
FlitTracer::addInstant(const char* name, int node, int component,
                       sim::Cycle cycle, std::uint64_t packet_id)
{
    record({name, node, component, 0, packet_id, cycle, false});
}

void
FlitTracer::writeJson(std::ostream& out, const std::string& label) const
{
    out << "{\n\"traceEvents\": [\n";

    // Track metadata: name the processes/threads that appear, once
    // each. (pid, tid) pairs are few; collect them linearly.
    std::vector<std::pair<int, int>> tracks;
    const auto each = [&](const auto& fn) {
        // Chronological order: the ring's oldest record sits at head_
        // once the buffer wrapped, at 0 otherwise.
        const std::size_t n = ring_.size();
        const std::size_t start = n == capacity_ ? head_ : 0;
        for (std::size_t k = 0; k < n; ++k)
            fn(ring_[(start + k) % n]);
    };
    each([&](const Record& r) {
        const std::pair<int, int> key{r.node, r.component};
        for (const auto& t : tracks)
            if (t == key)
                return;
        tracks.push_back(key);
    });

    bool first = true;
    const auto sep = [&] {
        if (!first)
            out << ",\n";
        first = false;
    };
    for (const auto& [node, comp] : tracks) {
        sep();
        out << "{\"ph\": \"M\", \"pid\": " << node
            << ", \"name\": \"process_name\", \"args\": {\"name\": "
               "\"node "
            << node << "\"}},\n";
        out << "{\"ph\": \"M\", \"pid\": " << node << ", \"tid\": "
            << comp
            << ", \"name\": \"thread_name\", \"args\": {\"name\": "
               "\"component "
            << comp << "\"}}";
    }

    each([&](const Record& r) {
        sep();
        out << "{\"name\": \"" << report::jsonEscape(r.name)
            << "\", \"pid\": " << r.node << ", \"tid\": " << r.component
            << ", \"ts\": " << r.cycle;
        if (r.span) {
            out << ", \"ph\": \"X\", \"dur\": 1, \"args\": {\"delta\": "
                << r.deltaA << "}";
        } else {
            out << ", \"ph\": \"i\", \"s\": \"t\", \"args\": "
                   "{\"packet\": "
                << r.packetId << ", \"delta\": " << r.deltaA << "}";
        }
        out << "}";
    });

    out << "\n],\n";
    out << "\"displayTimeUnit\": \"ms\",\n";
    out << "\"otherData\": {\"label\": \"" << report::jsonEscape(label)
        << "\", \"recorded\": " << total_
        << ", \"dropped\": " << dropped() << "}\n";
    out << "}\n";
}

} // namespace orion::telemetry
