#include "core/cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/log.hh"
#include "core/manifest.hh"

namespace orion::core {

namespace {

constexpr const char* kCacheHeader = "#orion-cache v1";

[[noreturn]] void
fail(const std::string& what)
{
    throw CacheError("orion cache: " + what + " (" +
                     std::strerror(errno) + ")");
}

/** Full write or CacheError: a partially acknowledged insert would
 * quarantine on the next load, but the caller deserves the truth. */
void
writeAll(int fd, const char* data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fail("segment write failed");
        }
        off += static_cast<std::size_t>(n);
    }
}

/** Parse exactly 16 lowercase/uppercase hex digits. */
bool
parseHex16(std::string_view v, std::uint64_t& out)
{
    if (v.size() != 16)
        return false;
    const std::string s(v);
    char* end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(s.c_str(), &end, 16);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = n;
    return true;
}

} // namespace

const char*
ResultCache::segmentHeader()
{
    return kCacheHeader;
}

std::string
ResultCache::segmentFileName(std::uint64_t id)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "seg_%06llu.orc",
                  static_cast<unsigned long long>(id));
    return buf;
}

std::string
ResultCache::encodeLine(std::uint64_t key, const CheckpointEntry& e)
{
    std::string payload = "K|fp=";
    payload += hex16(key);
    payload += "|e=";
    payload += escapeField(serializeEntry(e));
    payload += "|c=";
    payload += hex16(fnv1a64(
        std::string_view(payload.data(), payload.size() - 3)));
    return payload;
}

bool
ResultCache::decodeLine(std::string_view line, std::uint64_t& key,
                        CheckpointEntry& out)
{
    if (line.size() < 2 || line.substr(0, 2) != "K|")
        return false;
    const std::size_t cpos = line.rfind("|c=");
    if (cpos == std::string_view::npos ||
        cpos + 3 + 16 != line.size()) {
        return false;
    }
    std::uint64_t got = 0;
    if (!parseHex16(line.substr(cpos + 3), got) ||
        got != fnv1a64(line.substr(0, cpos))) {
        return false;
    }

    std::string_view body = line.substr(2, cpos - 2);
    bool saw_fp = false;
    bool saw_e = false;
    std::uint64_t k = 0;
    CheckpointEntry parsed;
    while (!body.empty()) {
        const std::size_t bar = body.find('|');
        const std::string_view field =
            bar == std::string_view::npos ? body : body.substr(0, bar);
        body = bar == std::string_view::npos
                   ? std::string_view{}
                   : body.substr(bar + 1);
        const std::size_t eq = field.find('=');
        if (eq == std::string_view::npos)
            return false;
        const std::string_view fkey = field.substr(0, eq);
        const std::string_view v = field.substr(eq + 1);
        if (fkey == "fp") {
            if (!parseHex16(v, k))
                return false;
            saw_fp = true;
        } else if (fkey == "e") {
            // The inner value is an escaped journal line with its
            // own checksum; parseEntry revalidates it.
            try {
                parsed = parseEntry(unescapeField(v));
            } catch (const CheckpointError&) {
                return false;
            }
            saw_e = true;
        }
        // Unknown fields are tolerated (forward compatibility).
    }
    if (!saw_fp || !saw_e)
        return false;
    key = k;
    out = parsed;
    return true;
}

ResultCache::ResultCache(const CacheOptions& opts) : opts_(opts)
{
    if (opts_.dir.empty())
        throw CacheError("orion cache: empty cache directory");
    if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST)
        fail("cannot create cache directory '" + opts_.dir + "'");

    DIR* d = ::opendir(opts_.dir.c_str());
    if (d == nullptr)
        fail("cannot scan cache directory '" + opts_.dir + "'");
    std::vector<std::string> names;
    for (const dirent* ent = ::readdir(d); ent != nullptr;
         ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() > 8 && name.compare(0, 4, "seg_") == 0 &&
            name.compare(name.size() - 4, 4, ".orc") == 0) {
            names.push_back(name);
        }
    }
    ::closedir(d);
    // Ascending file names = creation order: older segments get
    // older LRU stamps and later duplicates of a key win.
    std::sort(names.begin(), names.end());

    core::LockGuard lock(mutex_);
    for (const std::string& name : names) {
        const std::uint64_t id = std::strtoull(name.c_str() + 4,
                                               nullptr, 10);
        if (id >= nextSegmentId_)
            nextSegmentId_ = id + 1;
        loadSegment(id, opts_.dir + "/" + name);
    }
}

ResultCache::~ResultCache()
{
    core::LockGuard lock(mutex_);
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

void
ResultCache::loadSegment(std::uint64_t id, const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        // Unreadable file: quarantine the whole segment, keep going.
        ++quarantined_;
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    // A segment whose header is damaged is quarantined wholesale
    // (left on disk for forensics, never indexed or evicted).
    const std::size_t eol = text.find('\n');
    if (eol == std::string::npos ||
        text.compare(0, eol, kCacheHeader) != 0) {
        ++quarantined_;
        return;
    }

    Segment seg;
    seg.path = path;
    seg.lastUse = ++useClock_;
    std::size_t pos = eol + 1;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        // No trailing newline: the torn tail of a crash. Decode is
        // still attempted — a line is judged by its checksum, not
        // by how the process died while writing the next one.
        if (end == std::string::npos)
            end = text.size();
        const std::string_view line(text.data() + pos, end - pos);
        pos = end + 1;
        if (line.empty())
            continue;
        std::uint64_t key = 0;
        CheckpointEntry entry;
        if (!decodeLine(line, key, entry)) {
            ++quarantined_;
            continue;
        }
        index_[key] = Slot{entry, id};
        seg.keys.push_back(key);
        ++seg.lines;
    }
    segments_[id] = std::move(seg);
}

void
ResultCache::ensureActiveSegment()
{
    if (fd_ >= 0)
        return;
    const std::uint64_t id = nextSegmentId_++;
    const std::string path = opts_.dir + "/" + segmentFileName(id);
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_APPEND,
                          0644);
    if (fd < 0)
        fail("cannot create segment '" + path + "'");
    const std::string header = std::string(kCacheHeader) + "\n";
    writeAll(fd, header.data(), header.size());
    if (::fsync(fd) != 0) {
        ::close(fd);
        fail("fsync of new segment '" + path + "' failed");
    }
    Segment seg;
    seg.path = path;
    seg.lastUse = ++useClock_;
    segments_[id] = std::move(seg);
    activeId_ = id;
    activeCount_ = 0;
    fd_ = fd;
}

bool
ResultCache::lookup(std::uint64_t key, CheckpointEntry& out)
{
    core::LockGuard lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return false;
    }
    out = it->second.entry;
    const auto seg = segments_.find(it->second.segment);
    if (seg != segments_.end())
        seg->second.lastUse = ++useClock_;
    ++hits_;
    return true;
}

void
ResultCache::insert(std::uint64_t key, const CheckpointEntry& e)
{
    core::LockGuard lock(mutex_);
    ensureActiveSegment();
    const std::string line = encodeLine(key, e) + "\n";
    writeAll(fd_, line.data(), line.size());
    if (::fsync(fd_) != 0)
        fail("fsync of cache append failed");

    index_[key] = Slot{e, activeId_};
    Segment& seg = segments_[activeId_];
    seg.keys.push_back(key);
    ++seg.lines;
    seg.lastUse = ++useClock_;
    ++inserts_;
    if (++activeCount_ >= opts_.segmentEntries) {
        ::close(fd_);
        fd_ = -1;
        activeId_ = 0;
    }
    evictIfOverBound();
}

void
ResultCache::evictIfOverBound()
{
    while (index_.size() > opts_.maxEntries) {
        // Coarse LRU: drop the least-recently-touched sealed
        // segment. The active segment is never a victim.
        std::uint64_t victim = 0;
        std::uint64_t oldest = 0;
        for (const auto& [id, seg] : segments_) {
            if (id == activeId_)
                continue;
            if (victim == 0 || seg.lastUse < oldest) {
                victim = id;
                oldest = seg.lastUse;
            }
        }
        if (victim == 0)
            return; // only the active segment left: tolerate overshoot
        const Segment& seg = segments_[victim];
        ::unlink(seg.path.c_str());
        for (const std::uint64_t key : seg.keys) {
            const auto it = index_.find(key);
            if (it != index_.end() && it->second.segment == victim) {
                index_.erase(it);
                ++evictedEntries_;
            }
        }
        segments_.erase(victim);
        ++evictedSegments_;
    }
}

CacheStats
ResultCache::stats() const
{
    core::LockGuard lock(mutex_);
    CacheStats s;
    s.entries = index_.size();
    s.segments = segments_.size();
    s.hits = hits_;
    s.misses = misses_;
    s.inserts = inserts_;
    s.quarantined = quarantined_;
    s.evictedSegments = evictedSegments_;
    s.evictedEntries = evictedEntries_;
    return s;
}

std::string
ResultCache::manifestJson() const
{
    const CacheStats s = stats();
    std::ostringstream out;
    out << "{\"schema\":\"orion-cache-manifest-v1\""
        << ",\"dir\":\"" << log::jsonEscape(opts_.dir) << "\""
        << ",\"max_entries\":" << opts_.maxEntries
        << ",\"segment_entries\":" << opts_.segmentEntries
        << ",\"entries\":" << s.entries
        << ",\"segments\":" << s.segments
        << ",\"hits\":" << s.hits
        << ",\"misses\":" << s.misses
        << ",\"inserts\":" << s.inserts
        << ",\"quarantined\":" << s.quarantined
        << ",\"evicted_segments\":" << s.evictedSegments
        << ",\"evicted_entries\":" << s.evictedEntries << "}";
    return out.str();
}

void
ResultCache::writeManifest() const
{
    writeFileAtomic(opts_.dir + "/cache.manifest.json",
                    manifestJson() + "\n");
}

} // namespace orion::core
