/**
 * @file
 * Text-table and CSV emission helpers used by the benchmark harnesses
 * to print the rows/series of the paper's tables and figures.
 */

#ifndef ORION_CORE_REPORT_HH
#define ORION_CORE_REPORT_HH

#include <string>
#include <vector>

namespace orion {

/**
 * Why a simulation run stopped — the failure taxonomy reports, sweeps,
 * and CLI exit codes are built on (see docs/ROBUSTNESS.md).
 */
enum class StopReason
{
    /** The measurement sample completed and drained. */
    Completed,
    /** The post-warmup cycle cap expired before the sample drained. */
    MaxCycles,
    /** The progress watchdog saw no flit motion with packets in
     * flight (deadlock or hard saturation). */
    WatchdogStall,
    /** An ORION_CHECK/ORION_AUDIT invariant fired mid-run. */
    CheckFailure,
    /** The runtime deadlock detector found a wait-for cycle it could
     * not break (victim poisoning failed or the recovery budget was
     * exhausted). Forensics carry the wait-for graph. */
    DeadlockUnrecovered,
    /** The per-point wall-clock deadline (--point-timeout) expired
     * and the run was cancelled cooperatively (core/cancel.hh). */
    Deadline,
    /** The process was interrupted (SIGINT/SIGTERM) and the run was
     * cancelled cooperatively mid-protocol. */
    Interrupted,
    /** An isolated worker subprocess (--isolate) died — crashed,
     * was killed by its resource limits, or exceeded its deadline
     * hard enough to need SIGKILL. Forensics carry the exit status
     * or signal. */
    WorkerCrash,
};

/** Stable lower-case name for @p reason ("completed", "max-cycles",
 * "watchdog-stall", "check-failure", "deadlock-unrecovered",
 * "deadline", "interrupted", "worker-crash"). */
const char* stopReasonName(StopReason reason);

} // namespace orion

namespace orion::report {

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string& s);

/** A table: a header row plus data rows of equal arity. */
struct Table
{
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;

    void addRow(std::vector<std::string> row);
};

/** Render @p table as an aligned, boxed text table. */
std::string formatTable(const Table& table);

/** Render @p table as CSV (header row first). */
std::string formatCsv(const Table& table);

/** Fixed-precision double formatting. */
std::string fmt(double v, int precision = 3);

/** Engineering formatting with a unit (e.g. 1.23e-12 -> "1.23 pJ"). */
std::string fmtEng(double v, const char* unit, int precision = 3);

} // namespace orion::report

#endif // ORION_CORE_REPORT_HH
