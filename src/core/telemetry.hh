/**
 * @file
 * Telemetry core: a registry of named metrics every layer publishes
 * into, and a bounded flit-event tracer emitting Chrome trace-event
 * JSON.
 *
 * The paper's event subsystem (Section 2.1) exists so power can be
 * observed *while the simulation runs*; this layer turns those events
 * and the layers' internal counters into inspectable time series
 * instead of end-of-run scalars. Everything here is pull-based: a
 * metric is a name plus a read callback over state the owning module
 * already maintains, so registration costs nothing on the hot path and
 * the all-disabled configuration is bit-identical to a build without
 * telemetry.
 *
 * See docs/OBSERVABILITY.md for the data model, file formats, and
 * measured overhead.
 */

#ifndef ORION_CORE_TELEMETRY_HH
#define ORION_CORE_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/sync.hh"
#include "sim/event.hh"

namespace orion::telemetry {

/**
 * How a metric's samples combine across a window.
 *
 * Counter: monotonically nondecreasing between rebaselines; the
 * sampler reports the per-window delta. Gauge: instantaneous level;
 * the sampler reports the value at the window boundary.
 */
enum class MetricKind
{
    Counter,
    Gauge,
};

/** Stable lower-case name ("counter" / "gauge"). */
const char* metricKindName(MetricKind kind);

/**
 * A flat registry of named metrics. Layers register during
 * construction (Network wiring order, so the registration order — and
 * therefore every exported file — is deterministic); the
 * WindowedSampler reads the whole registry at window boundaries.
 */
class MetricsRegistry
{
  public:
    /** Reads the metric's current value. Must be pure observation:
     * a reader runs at sample boundaries only and must not perturb
     * simulation state. */
    using Reader = std::function<double()>;

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /**
     * Register a metric. Names are dot-separated paths
     * ("router.3.sa_stalls", "power.5.buffer.energy_j").
     * @throw std::invalid_argument on a duplicate name.
     */
    void add(MetricKind kind, std::string name, Reader read);

    void
    addCounter(std::string name, Reader read)
    {
        add(MetricKind::Counter, std::move(name), std::move(read));
    }

    void
    addGauge(std::string name, Reader read)
    {
        add(MetricKind::Gauge, std::move(name), std::move(read));
    }

    std::size_t
    size() const
    {
        const core::RoleGuard guard(serial_);
        return metrics_.size();
    }
    const std::string&
    name(std::size_t i) const
    {
        const core::RoleGuard guard(serial_);
        return metrics_[i].name;
    }
    MetricKind
    kind(std::size_t i) const
    {
        const core::RoleGuard guard(serial_);
        return metrics_[i].kind;
    }

    /** Current value of metric @p i. */
    double
    read(std::size_t i) const
    {
        const core::RoleGuard guard(serial_);
        return metrics_[i].read();
    }

    /** Index of the metric named @p name, or npos. */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t find(const std::string& name) const;

  private:
    struct Metric
    {
        MetricKind kind;
        std::string name;
        Reader read;
    };

    /**
     * Registration happens in Network wiring order and reads happen at
     * sample boundaries — one serialization domain, never concurrent.
     * The Role makes every touch point explicit (and zero-cost) so
     * partitioned-router sampling can later swap it for a real lock.
     */
    core::Role serial_;
    std::vector<Metric> metrics_ ORION_GUARDED_BY(serial_);
};

/** Telemetry knobs carried by SimConfig (all defaults = disabled). */
struct TelemetryConfig
{
    /** Cycles per sampling window; 0 disables the sampler. */
    sim::Cycle sampleInterval = 0;
    /** Record flit-level events into the ring-buffer tracer. */
    bool traceEnabled = false;
    /** Most-recent event records kept by the tracer. */
    std::size_t traceCapacity = 65536;

    bool
    enabled() const
    {
        return sampleInterval > 0 || traceEnabled;
    }
};

/**
 * Bounded ring-buffer recorder of bus events, exported as Chrome
 * trace-event JSON (chrome://tracing, Perfetto).
 *
 * Subscribes to every event type on construction and keeps the most
 * recent @p capacity records. Stage events (buffer write/read,
 * arbitration, crossbar/link traversal) become 1-cycle duration spans
 * on track (pid = node, tid = component index as emitted); packet
 * injection/ejection, credit transfers, and externally added records
 * (faults, NACKs, retransmissions) become instant events. One
 * simulated cycle maps to one microsecond of trace time.
 */
class FlitTracer
{
  public:
    FlitTracer(sim::EventBus& bus, std::size_t capacity);

    FlitTracer(const FlitTracer&) = delete;
    FlitTracer& operator=(const FlitTracer&) = delete;

    /**
     * Append a named instant record from outside the event bus (fault
     * injections, NACKs, retransmissions). @p name must outlive the
     * tracer (string literals).
     */
    void addInstant(const char* name, int node, int component,
                    sim::Cycle cycle, std::uint64_t packet_id);

    /** Events offered to the tracer over its lifetime. */
    std::uint64_t totalRecorded() const { return total_; }
    /** Events that overwrote an older record (ring overflow). */
    std::uint64_t dropped() const
    {
        return total_ > ring_.size() ? total_ - ring_.size() : 0;
    }
    std::size_t capacity() const { return capacity_; }

    /**
     * Emit the retained records as a complete Chrome trace JSON
     * object. @p label is stored (JSON-escaped) in the trace metadata.
     */
    void writeJson(std::ostream& out, const std::string& label) const;

  private:
    struct Record
    {
        /** Event-type name or addInstant() name. */
        const char* name;
        int node;
        int component;
        std::uint32_t deltaA;
        std::uint64_t packetId;
        sim::Cycle cycle;
        /** True for 1-cycle spans, false for instants. */
        bool span;
    };

    void record(const Record& rec);
    void onEvent(const sim::Event& ev);

    std::size_t capacity_;
    std::vector<Record> ring_;
    /** Next write slot once the ring is full. */
    std::size_t head_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace orion::telemetry

#endif // ORION_CORE_TELEMETRY_HH
