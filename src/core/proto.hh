/**
 * @file
 * orion_served wire protocol (docs/ROBUSTNESS.md, "Resident
 * service"): newline-delimited JSON over a Unix-domain socket.
 *
 * Every request and reply is exactly one JSON object on one line,
 * schema-versioned with "schema":"orion-served-v1". Verbs:
 *
 *   submit  {"verb":"submit","args":[...orion_sim flags...],
 *            "rates":"FIRST:LAST:COUNT","timeout":SECONDS}
 *   status  {"verb":"status","job":N}
 *   result  {"verb":"result","job":N}
 *   cancel  {"verb":"cancel","job":N}
 *   stats   {"verb":"stats"}
 *
 * Error replies are structured: {"ok":false,"error":CODE,
 * "message":...} with CODE one of "bad_request", "invalid_config",
 * "queue_full", "unknown_job", "not_ready", "job_failed",
 * "draining". Admission control depends on these being machine-
 * readable — a client backs off on "queue_full", gives up on
 * "invalid_config".
 *
 * The parser is deliberately small and self-contained (no external
 * JSON dependency): objects keep insertion order, numbers are
 * doubles, \uXXXX escapes decode to UTF-8. Anything malformed is a
 * ProtoError carrying the "bad_request" code — a hostile or
 * truncated request must never take the daemon down.
 */
#ifndef ORION_CORE_PROTO_HH
#define ORION_CORE_PROTO_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace orion::core::proto {

/** Protocol schema tag carried by every request and reply. */
constexpr const char* kSchema = "orion-served-v1";

/** Structured protocol failure: `code()` is the machine-readable
 * error ("bad_request", ...), what() the human-readable detail. */
class ProtoError : public std::runtime_error
{
  public:
    ProtoError(std::string code, const std::string& message)
        : std::runtime_error(message), code_(std::move(code))
    {
    }

    const std::string& code() const { return code_; }

  private:
    std::string code_;
};

/** One parsed JSON value. Objects preserve insertion order (members)
 * so no behavior ever depends on hash-table iteration order. */
struct JsonValue
{
    enum class Kind { Null, Boolean, Number, String, Object, Array };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> items;

    /** Object member lookup (first match); nullptr when absent or
     * when this value is not an object. */
    const JsonValue* find(const std::string& key) const;
};

/** Parse one JSON document (the whole of @p text).
 * @throw ProtoError("bad_request") on any syntax error, trailing
 * garbage, or nesting deeper than an internal cap. */
JsonValue parseJson(std::string_view text);

/** Render @p s as a quoted JSON string (escaping via core/log). */
std::string jsonString(const std::string& s);

/** A validated request. */
struct Request
{
    std::string verb;
    /** submit: orion_sim-style flags, parsed by cli::parse. */
    std::vector<std::string> args;
    /** submit: optional "FIRST:LAST:COUNT" rate grid; empty means
     * the single rate from args. */
    std::string rates;
    /** submit: per-job deadline in seconds (0 = server default). */
    double timeoutSeconds = 0.0;
    /** status/result/cancel: the job id. */
    std::uint64_t job = 0;
};

/** Parse and validate one request line: schema match, known verb,
 * per-verb required fields. @throw ProtoError("bad_request"). */
Request parseRequest(const std::string& line);

/** {"schema":...,"ok":false,"error":code,"message":message} */
std::string errorReply(const std::string& code,
                       const std::string& message);

} // namespace orion::core::proto

#endif // ORION_CORE_PROTO_HH
