#include "core/proto.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "core/log.hh"

namespace orion::core::proto {

namespace {

[[noreturn]] void
bad(const std::string& what)
{
    throw ProtoError("bad_request", "orion proto: " + what);
}

/** Recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value(0);
        skipWs();
        if (pos_ != text_.size())
            bad("trailing bytes after JSON document");
        return v;
    }

  private:
    static constexpr int kMaxDepth = 32;

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            bad("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            bad(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    literal(const char* word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    value(int depth)
    {
        if (depth > kMaxDepth)
            bad("nesting too deep");
        skipWs();
        const char c = peek();
        JsonValue v;
        if (c == '{') {
            v.kind = JsonValue::Kind::Object;
            ++pos_;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            for (;;) {
                skipWs();
                std::string key = string();
                skipWs();
                expect(':');
                v.members.emplace_back(std::move(key),
                                       value(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            v.kind = JsonValue::Kind::Array;
            ++pos_;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            for (;;) {
                v.items.push_back(value(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.kind = JsonValue::Kind::String;
            v.text = string();
            return v;
        }
        if (literal("true")) {
            v.kind = JsonValue::Kind::Boolean;
            v.boolean = true;
            return v;
        }
        if (literal("false")) {
            v.kind = JsonValue::Kind::Boolean;
            v.boolean = false;
            return v;
        }
        if (literal("null")) {
            v.kind = JsonValue::Kind::Null;
            return v;
        }
        return number();
    }

    int
    hexDigit()
    {
        const char c = peek();
        ++pos_;
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        bad("bad \\u escape");
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                bad("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                bad("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                bad("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i)
                    cp = cp * 16 +
                         static_cast<unsigned>(hexDigit());
                // BMP code point to UTF-8 (surrogates rejected: the
                // protocol never needs astral-plane text).
                if (cp >= 0xD800 && cp <= 0xDFFF)
                    bad("surrogate \\u escape unsupported");
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 |
                                             ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                bad("unknown escape");
            }
        }
    }

    JsonValue
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                || text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        const std::string s(text_.substr(start, pos_ - start));
        if (s.empty() || s == "-")
            bad("expected a JSON value");
        char* end = nullptr;
        const double d = std::strtod(s.c_str(), &end);
        if (end != s.c_str() + s.size() || !std::isfinite(d))
            bad("malformed number '" + s + "'");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = d;
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

/** Required positive-integer member (job ids). */
std::uint64_t
jobField(const JsonValue& root)
{
    const JsonValue* j = root.find("job");
    if (j == nullptr || j->kind != JsonValue::Kind::Number)
        bad("missing numeric 'job' field");
    const double d = j->number;
    if (d < 1.0 || d != std::floor(d) || d > 9e15)
        bad("'job' must be a positive integer");
    return static_cast<std::uint64_t>(d);
}

} // namespace

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto& [k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).parse();
}

std::string
jsonString(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    out += log::jsonEscape(s);
    out += '"';
    return out;
}

Request
parseRequest(const std::string& line)
{
    const JsonValue root = parseJson(line);
    if (root.kind != JsonValue::Kind::Object)
        bad("request must be a JSON object");
    const JsonValue* schema = root.find("schema");
    if (schema == nullptr ||
        schema->kind != JsonValue::Kind::String ||
        schema->text != kSchema) {
        bad(std::string("missing or unsupported schema (want \"") +
            kSchema + "\")");
    }
    const JsonValue* verb = root.find("verb");
    if (verb == nullptr || verb->kind != JsonValue::Kind::String)
        bad("missing string 'verb' field");

    Request r;
    r.verb = verb->text;
    if (r.verb == "submit") {
        if (const JsonValue* args = root.find("args")) {
            if (args->kind != JsonValue::Kind::Array)
                bad("'args' must be an array of strings");
            for (const JsonValue& a : args->items) {
                if (a.kind != JsonValue::Kind::String)
                    bad("'args' must be an array of strings");
                r.args.push_back(a.text);
            }
        }
        if (const JsonValue* rates = root.find("rates")) {
            if (rates->kind != JsonValue::Kind::String)
                bad("'rates' must be a FIRST:LAST:COUNT string");
            r.rates = rates->text;
        }
        if (const JsonValue* t = root.find("timeout")) {
            if (t->kind != JsonValue::Kind::Number ||
                !(t->number >= 0.0)) {
                bad("'timeout' must be a non-negative number");
            }
            r.timeoutSeconds = t->number;
        }
    } else if (r.verb == "status" || r.verb == "result" ||
               r.verb == "cancel") {
        r.job = jobField(root);
    } else if (r.verb != "stats") {
        bad("unknown verb '" + r.verb + "'");
    }
    return r;
}

std::string
errorReply(const std::string& code, const std::string& message)
{
    std::string out = "{\"schema\":";
    out += jsonString(kSchema);
    out += ",\"ok\":false,\"error\":";
    out += jsonString(code);
    out += ",\"message\":";
    out += jsonString(message);
    out += "}";
    return out;
}

} // namespace orion::core::proto

