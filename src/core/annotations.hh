/**
 * @file
 * Clang thread-safety annotation macros (see docs/QUALITY.md,
 * "Static analysis").
 *
 * Orion's determinism contract — every report byte-identical at any
 * `--jobs` — rests on a handful of informally shared structures: the
 * executor work queue, sweep result slots, the packet recycling pool,
 * EventBus handler arrays, metric registries, audit ledgers. ROADMAP
 * item 1(b) (partitioning routers across threads) will put all of
 * them under real concurrency, so their access discipline is made
 * machine-checked *now*: every such field names the capability that
 * serializes it, and Clang's `-Wthread-safety` analysis (promoted to
 * an error in the analysis CI leg) rejects any access path that does
 * not hold it. GCC compiles the attributes away; behavior and
 * generated code are identical on every toolchain.
 *
 * The macros wrap Clang's capability attributes with the standard
 * vocabulary (ORION_CAPABILITY, ORION_GUARDED_BY, ORION_REQUIRES,
 * ORION_ACQUIRE/RELEASE, ORION_EXCLUDES, ...). Annotated primitives —
 * `core::Mutex`, `core::LockGuard`, `core::CondVar` for genuinely
 * locked state and the zero-cost `core::Role` capability for state
 * whose serialization is structural — live in core/sync.hh.
 *
 * This header is dependency-free on purpose: any layer (sim, router,
 * power, net, core) may include it without creating a layering edge.
 */

#ifndef ORION_CORE_ANNOTATIONS_HH
#define ORION_CORE_ANNOTATIONS_HH

#if defined(__clang__)
#define ORION_TSA_ATTR_(x) __attribute__((x))
#else
#define ORION_TSA_ATTR_(x) // no-op: GCC has no thread-safety analysis
#endif

/** Marks a class as a capability (lockable) type. @p x is the name
 * the analysis uses in diagnostics, e.g. "mutex" or "role". */
#define ORION_CAPABILITY(x) ORION_TSA_ATTR_(capability(x))

/** Marks an RAII class whose constructor acquires and destructor
 * releases a capability (LockGuard / RoleGuard). */
#define ORION_SCOPED_CAPABILITY ORION_TSA_ATTR_(scoped_lockable)

/** Field may only be touched while holding capability @p x. */
#define ORION_GUARDED_BY(x) ORION_TSA_ATTR_(guarded_by(x))

/** Pointer field whose *pointee* is protected by capability @p x. */
#define ORION_PT_GUARDED_BY(x) ORION_TSA_ATTR_(pt_guarded_by(x))

/** Function requires the listed capabilities held on entry (and does
 * not release them). */
#define ORION_REQUIRES(...)                                               \
    ORION_TSA_ATTR_(requires_capability(__VA_ARGS__))

/** Function requires the listed capabilities held at least shared. */
#define ORION_REQUIRES_SHARED(...)                                        \
    ORION_TSA_ATTR_(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability; it must not be held on entry. */
#define ORION_ACQUIRE(...)                                                \
    ORION_TSA_ATTR_(acquire_capability(__VA_ARGS__))

/** Shared (reader) flavor of ORION_ACQUIRE. */
#define ORION_ACQUIRE_SHARED(...)                                         \
    ORION_TSA_ATTR_(acquire_shared_capability(__VA_ARGS__))

/** Function releases the capability; it must be held on entry. */
#define ORION_RELEASE(...)                                                \
    ORION_TSA_ATTR_(release_capability(__VA_ARGS__))

/** Shared (reader) flavor of ORION_RELEASE. */
#define ORION_RELEASE_SHARED(...)                                         \
    ORION_TSA_ATTR_(release_shared_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p first arg. */
#define ORION_TRY_ACQUIRE(...)                                            \
    ORION_TSA_ATTR_(try_acquire_capability(__VA_ARGS__))

/** Function must NOT be called with the listed capabilities held
 * (non-reentrant locking, deadlock prevention). */
#define ORION_EXCLUDES(...) ORION_TSA_ATTR_(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held (no acquisition). */
#define ORION_ASSERT_CAPABILITY(x) ORION_TSA_ATTR_(assert_capability(x))

/** Function returns a reference to the capability @p x (accessor). */
#define ORION_RETURN_CAPABILITY(x) ORION_TSA_ATTR_(lock_returned(x))

/** Escape hatch: disable the analysis for one function. Every use
 * must explain why the access pattern is safe. */
#define ORION_NO_THREAD_SAFETY_ANALYSIS                                   \
    ORION_TSA_ATTR_(no_thread_safety_analysis)

#endif // ORION_CORE_ANNOTATIONS_HH
