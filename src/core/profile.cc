#include "core/profile.hh"

#include <chrono>

namespace orion::core {

namespace {

double
monotonicSeconds()
{
    const auto now = // observability only
        std::chrono::steady_clock::now() // lint-allow: nondeterminism
            .time_since_epoch();
    return std::chrono::duration<double>(now).count();
}

} // namespace

void
PhaseProfiler::beginCycle()
{
    sampling_ = (cycles_ % kStride) == 0;
    ++cycles_;
    if (sampling_) {
        ++sampled_;
        mark_ = monotonicSeconds();
    }
}

void
PhaseProfiler::phaseDone(Phase phase)
{
    if (!sampling_)
        return;
    const double now = monotonicSeconds();
    seconds_[static_cast<unsigned>(phase)] += now - mark_;
    mark_ = now;
}

void
PhaseProfiler::addRunSeconds(Phase phase, double seconds)
{
    if (seconds > 0.0)
        seconds_[static_cast<unsigned>(phase)] += seconds;
}

double
PhaseProfiler::seconds(Phase phase) const
{
    return seconds_[static_cast<unsigned>(phase)];
}

const char*
PhaseProfiler::phaseName(Phase phase)
{
    switch (phase) {
    case Phase::RouterAdvance: return "router_advance";
    case Phase::ChannelAdvance: return "channel_advance";
    case Phase::Audit: return "audit";
    case Phase::Periodic: return "periodic";
    case Phase::Warmup: return "warmup";
    case Phase::Measure: return "measure";
    case Phase::Drain: return "drain";
    case Phase::Count: break;
    }
    return "unknown";
}

std::vector<PhaseShare>
PhaseProfiler::shares() const
{
    constexpr unsigned kFirstRunPhase =
        static_cast<unsigned>(Phase::Warmup);
    double cycle_total = 0.0;
    double run_total = 0.0;
    for (unsigned i = 0; i < kNumPhases; ++i) {
        if (i < kFirstRunPhase)
            cycle_total += seconds_[i];
        else
            run_total += seconds_[i];
    }
    std::vector<PhaseShare> out;
    out.reserve(kNumPhases);
    for (unsigned i = 0; i < kNumPhases; ++i) {
        PhaseShare s;
        s.name = phaseName(static_cast<Phase>(i));
        s.seconds = seconds_[i];
        const double total =
            i < kFirstRunPhase ? cycle_total : run_total;
        s.share = total > 0.0 ? seconds_[i] / total : 0.0;
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace orion::core
