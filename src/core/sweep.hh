/**
 * @file
 * Injection-rate sweeps and saturation detection.
 *
 * The paper's latency/power figures are curves over packet injection
 * rate; its saturation definition (Section 4.1): "the point at which
 * average packet latency increases to more than twice zero-load
 * latency".
 */

#ifndef ORION_CORE_SWEEP_HH
#define ORION_CORE_SWEEP_HH

#include <optional>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/simulation.hh"

namespace orion {

/**
 * A failed sweep point, isolated from its siblings: the sweep finishes
 * every other point and records what went wrong here instead of
 * aborting the fan-out.
 */
struct PointFailure
{
    /** Why the point failed (CheckFailure for invariant violations
     * and construction errors). */
    StopReason reason = StopReason::CheckFailure;
    /** The diagnostic of the check that fired (or the exception). */
    std::string message;
    /** JSON forensic snapshot taken at failure (see
     * core/forensics.hh); empty if the simulation never got built. */
    std::string forensicsJson;
};

/** One point of an injection-rate sweep. */
struct SweepPoint
{
    double injectionRate;
    Report report;
    /** Set when the point failed even after its bounded retry. */
    std::optional<PointFailure> failure;
    /** Simulation attempts spent on this point (2 = retried once on a
     * rederived seed after a transient check failure). */
    unsigned attempts = 1;
    /** The point's sampled metric time series (long-format CSV),
     * captured only when SimConfig::telemetry enables the sampler
     * (the averaged driver captures per seed instead — see
     * AveragedPoint::metricsCsvBySeed). */
    std::string metricsCsv;
    /** The point's Chrome trace JSON, captured only when
     * SimConfig::telemetry enables tracing. */
    std::string traceJson;
};

/** Execution options for sweep drivers. */
struct SweepOptions
{
    /**
     * Worker threads to fan sweep points across: 1 runs everything
     * inline on the calling thread (the historical behavior), 0 asks
     * for std::thread::hardware_concurrency(). Results are
     * bit-identical for every value — each (rate, seed) point owns a
     * private Network/Simulator/RNG stream seeded by
     * sim::deriveSeed(sim.seed, rate index, seed index), and points
     * are merged in index order regardless of completion order.
     */
    unsigned jobs = 1;
};

/** One sweep point aggregated over several seeds. */
struct AveragedPoint
{
    double injectionRate = 0.0;
    unsigned seeds = 0;
    /** True only if every seed's run completed. */
    bool allCompleted = false;
    double meanLatency = 0.0;
    double minLatency = 0.0;
    double maxLatency = 0.0;
    double meanPowerWatts = 0.0;
    double meanThroughput = 0.0;
    /** Seeds whose runs failed (excluded from the aggregates). */
    unsigned failedSeeds = 0;
    /** Diagnostic of the first failed seed, if any. */
    std::string firstFailure;
    /** Per-seed telemetry exports, indexed by seed (captured only
     * when SimConfig::telemetry enables the sampler/tracer; failed
     * seeds hold empty strings so indexes stay aligned). */
    std::vector<std::string> metricsCsvBySeed;
    std::vector<std::string> traceJsonBySeed;
};

/** Injection-rate sweep driver. */
class Sweep
{
  public:
    /**
     * Run @p network under @p traffic at each rate in @p rates,
     * returning one report per rate. The traffic config's
     * injectionRate field is overridden per point; each point's RNG
     * stream is sim::deriveSeed(sim.seed, rate index, 0). With
     * opts.jobs != 1, points run concurrently with bit-identical
     * results to the serial order.
     *
     * Failure isolation: a point whose run hits a check failure (or
     * whose construction throws) never aborts the sweep. The point is
     * retried once on a rederived seed stream (transient failures
     * recover); if it fails again, SweepPoint::failure records the
     * stop reason, diagnostic, and a JSON forensic snapshot, and
     * every other point still reports normally.
     */
    static std::vector<SweepPoint> overRates(
        const NetworkConfig& network, const TrafficConfig& traffic,
        const SimConfig& sim, const std::vector<double>& rates,
        const SweepOptions& opts = {});

    /**
     * Like overRates, but each point runs @p num_seeds times — seed
     * index k uses RNG stream sim::deriveSeed(sim.seed, rate index, k)
     * — and reports the mean and spread: the error-bar data behind a
     * publication-quality curve. The (rate, seed) grid is flattened so
     * opts.jobs workers can chew independent cells; per-point
     * aggregation happens afterwards in deterministic seed order, so
     * the floating-point sums are identical at any job count.
     */
    static std::vector<AveragedPoint> overRatesAveraged(
        const NetworkConfig& network, const TrafficConfig& traffic,
        const SimConfig& sim, const std::vector<double>& rates,
        unsigned num_seeds, const SweepOptions& opts = {});

    /**
     * Zero-load latency: mean latency at a near-zero injection rate
     * (0.002 packets/cycle/node with a reduced sample).
     */
    static double zeroLoadLatency(const NetworkConfig& network,
                                  const TrafficConfig& traffic,
                                  const SimConfig& sim);

    /**
     * The paper's saturation point: the lowest swept rate whose mean
     * latency exceeds twice @p zero_load_latency (or whose run did not
     * complete). Returns a negative value if no swept rate saturates.
     */
    static double saturationRate(const std::vector<SweepPoint>& points,
                                 double zero_load_latency);

    /** Evenly spaced rates in [first, last] with @p count points. */
    static std::vector<double> linspace(double first, double last,
                                        unsigned count);
};

} // namespace orion

#endif // ORION_CORE_SWEEP_HH
