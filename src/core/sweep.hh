/**
 * @file
 * Injection-rate sweeps and saturation detection.
 *
 * The paper's latency/power figures are curves over packet injection
 * rate; its saturation definition (Section 4.1): "the point at which
 * average packet latency increases to more than twice zero-load
 * latency".
 */

#ifndef ORION_CORE_SWEEP_HH
#define ORION_CORE_SWEEP_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/cancel.hh"
#include "core/checkpoint.hh"
#include "core/config.hh"
#include "core/simulation.hh"

namespace orion::core {
class ProgressTracker;
} // namespace orion::core

namespace orion {

/**
 * Wall/CPU/memory cost of executing one sweep cell, measured on the
 * worker that ran it (observability only — never journaled, excluded
 * from determinism comparisons; the values depend on machine load).
 * `valid` is false for cached (resumed) cells and cells that never
 * ran.
 */
struct PointResources
{
    bool valid = false;
    /** Wall-clock seconds spent on the cell (all attempts). */
    double wallSeconds = 0.0;
    /** CPU seconds consumed — thread CPU time for in-process cells,
     * child user+system time (wait4 rusage) for isolated cells. */
    double cpuSeconds = 0.0;
    /** Peak resident set in kilobytes, when known (isolated cells
     * only — ru_maxrss of the worker process); 0 otherwise. */
    long maxRssKb = 0;
};

/**
 * A failed sweep point, isolated from its siblings: the sweep finishes
 * every other point and records what went wrong here instead of
 * aborting the fan-out.
 */
struct PointFailure
{
    /** Why the point failed (CheckFailure for invariant violations
     * and construction errors). */
    StopReason reason = StopReason::CheckFailure;
    /** The diagnostic of the check that fired (or the exception). */
    std::string message;
    /** JSON forensic snapshot taken at failure (see
     * core/forensics.hh); empty if the simulation never got built. */
    std::string forensicsJson;
};

/**
 * Bounded retry of a failed sweep cell. Attempt k reruns the cell on
 * the rederived seed stream sim::deriveSeed(seed, rate index,
 * seed index + k * 2^32) — disjoint from every sibling cell — so
 * transient, seed-dependent failures recover while results stay
 * deterministic. Shared by the in-process and --isolate execution
 * modes; the default (2 attempts, no backoff) reproduces the
 * historical "one rederived-seed retry" exactly.
 */
struct RetryPolicy
{
    /** Total attempts per cell (>= 1; 1 disables retry). */
    unsigned maxAttempts = 2;
    /** Milliseconds slept before each retry attempt, easing transient
     * resource pressure (ENOMEM, thrashing). 0 = none. */
    unsigned backoffMs = 0;
};

/**
 * Retry attempts rederive the seed in a disjoint seed-index band —
 * attempt k runs on sim::deriveSeed(seed, rate index, seed index +
 * k * kRetrySeedOffset) — so a retried cell cannot collide with any
 * sibling cell's stream. Public so `orion_sweep --isolate` derives
 * the exact same streams when it re-invokes a crashed worker.
 */
constexpr std::uint64_t kRetrySeedOffset = 1ULL << 32;

/** One point of an injection-rate sweep. */
struct SweepPoint
{
    double injectionRate = 0.0;
    Report report;
    /** Set when the point failed even after its bounded retries. */
    std::optional<PointFailure> failure;
    /** Simulation attempts spent on this point (2 = retried once on a
     * rederived seed after a transient check failure). */
    unsigned attempts = 1;
    /** False when the point never executed: the sweep was cancelled
     * before the cursor dispensed it. Only possible with
     * SweepOptions::cancel set. */
    bool ran = false;
    /** True when the result came from a resumed checkpoint journal
     * instead of a fresh run (bit-identical either way). */
    bool fromCheckpoint = false;
    /** The point's sampled metric time series (long-format CSV),
     * captured only when SimConfig::telemetry enables the sampler
     * (the averaged driver captures per seed instead — see
     * AveragedPoint::metricsCsvBySeed). */
    std::string metricsCsv;
    /** The point's Chrome trace JSON, captured only when
     * SimConfig::telemetry enables tracing. */
    std::string traceJson;
    /** What the point cost to run (see PointResources). */
    PointResources resources;
};

/** Execution options for sweep drivers. */
struct SweepOptions
{
    /**
     * Worker threads to fan sweep points across: 1 runs everything
     * inline on the calling thread (the historical behavior), 0 asks
     * for std::thread::hardware_concurrency(). Results are
     * bit-identical for every value — each (rate, seed) point owns a
     * private Network/Simulator/RNG stream seeded by
     * sim::deriveSeed(sim.seed, rate index, seed index), and points
     * are merged in index order regardless of completion order.
     */
    unsigned jobs = 1;
    /** Per-cell retry of transient failures (see RetryPolicy). */
    RetryPolicy retry;
    /**
     * Per-cell wall-clock deadline in seconds (<= 0 disables). An
     * overrunning cell is cancelled cooperatively and recorded as a
     * PointFailure with StopReason::Deadline plus forensics; deadline
     * overruns are never retried (they are not transient) and never
     * journaled (they are not deterministic).
     */
    double pointTimeoutSeconds = 0.0;
    /**
     * Parent cancellation token (typically &core::interruptToken();
     * not owned, may be null). Once it fires, no further cells are
     * dispensed and in-flight cells stop cooperatively with
     * StopReason::Interrupted; cells never dispensed come back with
     * ran == false.
     */
    core::CancelToken* cancel = nullptr;
    /**
     * Checkpoint journal to append finished cells to (not owned, may
     * be null). Only deterministic outcomes are written — see
     * core/checkpoint.hh. Telemetry exports (metricsCsv/traceJson)
     * are NOT journaled; drivers reject checkpointing combined with
     * telemetry capture.
     */
    core::CheckpointJournal* journal = nullptr;
    /**
     * Cells already completed by an earlier (interrupted) run, from
     * loadCheckpoint (not owned, may be null). Matching cells are
     * merged from the cache instead of rerun — bit-identically,
     * thanks to the journal's exact hexfloat round-trip. Duplicate
     * coordinates: last entry wins.
     */
    const std::vector<core::CheckpointEntry>* resume = nullptr;
    /**
     * Live progress tracker (not owned, may be null). When set, each
     * worker reports cell begin/attempt/end (and resume-cache hits)
     * so the heartbeat file / progress line / stall detector see the
     * sweep as it runs. Observability only: installing a tracker
     * never changes results — the per-cell hooks are atomic stores
     * outside the simulated machine. See core/progress.hh.
     */
    core::ProgressTracker* progress = nullptr;

    /** Options with only a worker count set — the common call-site
     * shape (avoids missing-field-initializer noise now that the
     * struct has grown survivability knobs). */
    static SweepOptions
    withJobs(unsigned jobs)
    {
        SweepOptions o;
        o.jobs = jobs;
        return o;
    }
};

/** One sweep point aggregated over several seeds. */
struct AveragedPoint
{
    double injectionRate = 0.0;
    unsigned seeds = 0;
    /** True only if every seed's run completed. */
    bool allCompleted = false;
    double meanLatency = 0.0;
    double minLatency = 0.0;
    double maxLatency = 0.0;
    double meanPowerWatts = 0.0;
    double meanThroughput = 0.0;
    /** Seeds whose runs failed (excluded from the aggregates). */
    unsigned failedSeeds = 0;
    /** Seeds that actually executed (or were merged from a resumed
     * checkpoint); less than `seeds` only after a cancellation. */
    unsigned ranSeeds = 0;
    /** Diagnostic of the first failed seed, if any. */
    std::string firstFailure;
    /** Simulation attempts spent per seed (aligned with seed index;
     * 0 for seeds that never ran). > 1 marks a retried seed. */
    std::vector<unsigned> attemptsBySeed;
    /** Per-seed telemetry exports, indexed by seed (captured only
     * when SimConfig::telemetry enables the sampler/tracer; failed
     * seeds hold empty strings so indexes stay aligned). */
    std::vector<std::string> metricsCsvBySeed;
    std::vector<std::string> traceJsonBySeed;
    /**
     * Aggregate execution cost over the seeds that ran fresh this
     * invocation: wall/CPU seconds are summed, maxRssKb is the peak
     * across seeds. `resources.valid` is true if at least one seed
     * contributed (resumed seeds never do — their cost was paid by an
     * earlier run).
     */
    PointResources resources;
};

/** Injection-rate sweep driver. */
class Sweep
{
  public:
    /**
     * Run @p network under @p traffic at each rate in @p rates,
     * returning one report per rate. The traffic config's
     * injectionRate field is overridden per point; each point's RNG
     * stream is sim::deriveSeed(sim.seed, rate index, 0). With
     * opts.jobs != 1, points run concurrently with bit-identical
     * results to the serial order.
     *
     * Failure isolation: a point whose run hits a check failure (or
     * whose construction throws) never aborts the sweep. The point is
     * retried on rederived seed streams per opts.retry (transient
     * failures recover; the default is the historical single retry);
     * if every attempt fails, SweepPoint::failure records the stop
     * reason, diagnostic, and a JSON forensic snapshot, and every
     * other point still reports normally. Deadlines, cancellation,
     * and checkpoint/resume ride in via opts — see SweepOptions.
     */
    static std::vector<SweepPoint> overRates(
        const NetworkConfig& network, const TrafficConfig& traffic,
        const SimConfig& sim, const std::vector<double>& rates,
        const SweepOptions& opts = {});

    /**
     * Like overRates, but each point runs @p num_seeds times — seed
     * index k uses RNG stream sim::deriveSeed(sim.seed, rate index, k)
     * — and reports the mean and spread: the error-bar data behind a
     * publication-quality curve. The (rate, seed) grid is flattened so
     * opts.jobs workers can chew independent cells; per-point
     * aggregation happens afterwards in deterministic seed order, so
     * the floating-point sums are identical at any job count.
     */
    static std::vector<AveragedPoint> overRatesAveraged(
        const NetworkConfig& network, const TrafficConfig& traffic,
        const SimConfig& sim, const std::vector<double>& rates,
        unsigned num_seeds, const SweepOptions& opts = {});

    /**
     * Zero-load latency: mean latency at a near-zero injection rate
     * (0.002 packets/cycle/node with a reduced sample).
     */
    static double zeroLoadLatency(const NetworkConfig& network,
                                  const TrafficConfig& traffic,
                                  const SimConfig& sim);

    /**
     * The paper's saturation point: the lowest swept rate whose mean
     * latency exceeds twice @p zero_load_latency (or whose run did not
     * complete). Returns a negative value if no swept rate saturates.
     */
    static double saturationRate(const std::vector<SweepPoint>& points,
                                 double zero_load_latency);

    /** Evenly spaced rates in [first, last] with @p count points. */
    static std::vector<double> linspace(double first, double last,
                                        unsigned count);
};

} // namespace orion

#endif // ORION_CORE_SWEEP_HH
