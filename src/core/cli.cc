#include "core/cli.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include <cstdio>

#include "core/report.hh"
#include "core/sweep.hh"
#include "net/trace.hh"

namespace orion::cli {

namespace {

[[noreturn]] void
fail(const std::string& what)
{
    throw std::invalid_argument("orion_sim: " + what +
                                " (--help for usage)");
}

unsigned long long
parseU64(const std::string& opt, const std::string& v)
{
    // stoull silently wraps negative inputs; reject them explicitly.
    if (!v.empty() && v.front() == '-')
        fail(opt + ": must be non-negative: '" + v + "'");
    try {
        std::size_t used = 0;
        const unsigned long long n = std::stoull(v, &used);
        if (used != v.size())
            fail(opt + ": not a number: '" + v + "'");
        return n;
    } catch (const std::invalid_argument&) {
        fail(opt + ": not a number: '" + v + "'");
    } catch (const std::out_of_range&) {
        fail(opt + ": out of range: '" + v + "'");
    }
}

double
parseDouble(const std::string& opt, const std::string& v)
{
    try {
        std::size_t used = 0;
        const double d = std::stod(v, &used);
        if (used != v.size())
            fail(opt + ": not a number: '" + v + "'");
        return d;
    } catch (const std::invalid_argument&) {
        fail(opt + ": not a number: '" + v + "'");
    } catch (const std::out_of_range&) {
        fail(opt + ": out of range: '" + v + "'");
    }
}

std::vector<unsigned>
parseDims(const std::string& v)
{
    std::vector<unsigned> dims;
    std::string part;
    std::istringstream in(v);
    while (std::getline(in, part, 'x')) {
        if (part.empty())
            fail("--dims: malformed '" + v + "'");
        dims.push_back(
            static_cast<unsigned>(parseU64("--dims", part)));
    }
    if (dims.empty())
        fail("--dims: malformed '" + v + "'");
    return dims;
}

NetworkConfig
presetByName(const std::string& name)
{
    if (name == "wh64")
        return NetworkConfig::wh64();
    if (name == "vc16")
        return NetworkConfig::vc16();
    if (name == "vc64")
        return NetworkConfig::vc64();
    if (name == "vc128")
        return NetworkConfig::vc128();
    if (name == "xb")
        return NetworkConfig::xb();
    if (name == "cb")
        return NetworkConfig::cb();
    fail("--preset: unknown preset '" + name + "'");
}

net::TrafficPattern
patternByName(const std::string& name)
{
    if (name == "uniform")
        return net::TrafficPattern::UniformRandom;
    if (name == "broadcast")
        return net::TrafficPattern::Broadcast;
    if (name == "transpose")
        return net::TrafficPattern::Transpose;
    if (name == "bitcomp")
        return net::TrafficPattern::BitComplement;
    if (name == "tornado")
        return net::TrafficPattern::Tornado;
    if (name == "neighbor")
        return net::TrafficPattern::NearestNeighbor;
    if (name == "hotspot")
        return net::TrafficPattern::Hotspot;
    if (name == "trace")
        return net::TrafficPattern::Trace;
    fail("--pattern: unknown pattern '" + name + "'");
}

router::DeadlockMode
deadlockByName(const std::string& name)
{
    if (name == "none")
        return router::DeadlockMode::None;
    if (name == "bubble")
        return router::DeadlockMode::Bubble;
    if (name == "dateline")
        return router::DeadlockMode::Dateline;
    fail("--deadlock: unknown mode '" + name + "'");
}

net::OutageWindow
parseOutageSpec(const std::string& spec)
{
    net::OutageWindow w;
    unsigned long long start = 0;
    unsigned long long end = 0;
    long long link = -1;
    char tail = 0;
    const int n3 = std::sscanf(spec.c_str(), "%llu:%llu:%lld%c",
                               &start, &end, &link, &tail);
    if (n3 != 3) {
        link = -1;
        const int n2 = std::sscanf(spec.c_str(), "%llu:%llu%c",
                                   &start, &end, &tail);
        if (n2 != 2)
            fail("--link-outage: wants START:END[:LINK]: '" + spec +
                 "'");
    }
    if (end <= start)
        fail("--link-outage: window end must be after start: '" +
             spec + "'");
    if (link < -1)
        fail("--link-outage: link must be >= 0 (or omitted): '" +
             spec + "'");
    w.start = start;
    w.end = end;
    w.link = static_cast<int>(link);
    return w;
}

} // namespace

Options
parse(const std::vector<std::string>& args)
{
    Options o;
    o.traffic.injectionRate = 0.05;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        const auto value = [&]() -> const std::string& {
            if (i + 1 >= args.size())
                fail(a + ": missing value");
            return args[++i];
        };

        if (a == "--help" || a == "-h") {
            o.helpRequested = true;
            return o;
        } else if (a == "--preset") {
            o.network = presetByName(value());
        } else if (a == "--dims") {
            o.network.net.dims = parseDims(value());
        } else if (a == "--mesh") {
            o.network.net.wrap = false;
            o.network.net.deadlock = router::DeadlockMode::None;
        } else if (a == "--vcs") {
            o.network.net.vcs =
                static_cast<unsigned>(parseU64(a, value()));
        } else if (a == "--buffer") {
            o.network.net.bufferDepth =
                static_cast<unsigned>(parseU64(a, value()));
        } else if (a == "--flit-bits") {
            o.network.net.flitBits =
                static_cast<unsigned>(parseU64(a, value()));
        } else if (a == "--packet-length") {
            o.network.net.packetLength =
                static_cast<unsigned>(parseU64(a, value()));
        } else if (a == "--deadlock") {
            o.network.net.deadlock = deadlockByName(value());
        } else if (a == "--speculative") {
            o.network.net.speculative = true;
        } else if (a == "--arbiter") {
            const std::string& v = value();
            if (v == "matrix")
                o.network.net.arbiterKind = router::ArbiterKind::Matrix;
            else if (v == "rr")
                o.network.net.arbiterKind =
                    router::ArbiterKind::RoundRobin;
            else if (v == "queuing")
                o.network.net.arbiterKind =
                    router::ArbiterKind::Queuing;
            else
                fail("--arbiter: unknown kind '" + v + "'");
        } else if (a == "--injection") {
            const std::string& v = value();
            if (v == "single")
                o.network.net.injection =
                    net::InjectionPolicy::SingleVc;
            else if (v == "spread")
                o.network.net.injection =
                    net::InjectionPolicy::SpreadVcs;
            else
                fail("--injection: unknown policy '" + v + "'");
        } else if (a == "--tie-break") {
            const std::string& v = value();
            if (v == "random")
                o.network.net.tieBreak = net::TieBreak::Random;
            else if (v == "prefer-wrap")
                o.network.net.tieBreak = net::TieBreak::PreferWrap;
            else
                fail("--tie-break: unknown policy '" + v + "'");
        } else if (a == "--pattern") {
            o.traffic.pattern = patternByName(value());
        } else if (a == "--rate") {
            o.traffic.injectionRate = parseDouble(a, value());
        } else if (a == "--broadcast-source") {
            o.traffic.broadcastSource =
                static_cast<int>(parseU64(a, value()));
        } else if (a == "--hotspot") {
            o.traffic.hotspotNode =
                static_cast<int>(parseU64(a, value()));
        } else if (a == "--hotspot-frac") {
            o.traffic.hotspotFraction = parseDouble(a, value());
        } else if (a == "--trace") {
            o.traffic.trace = std::make_shared<
                const std::vector<net::TraceRecord>>(
                net::Trace::load(value()));
        } else if (a == "--sample") {
            o.sim.samplePackets = parseU64(a, value());
        } else if (a == "--warmup") {
            o.sim.warmupCycles = parseU64(a, value());
        } else if (a == "--max-cycles") {
            o.sim.maxCycles = parseU64(a, value());
        } else if (a == "--seed") {
            o.sim.seed = parseU64(a, value());
        } else if (a == "--link-ber") {
            const double ber = parseDouble(a, value());
            if (ber < 0.0 || ber > 1.0)
                fail("--link-ber: must be in [0, 1]");
            o.sim.fault.linkBitErrorRate = ber;
        } else if (a == "--link-outage") {
            o.sim.fault.outages.push_back(parseOutageSpec(value()));
        } else if (a == "--fault-seed") {
            o.sim.fault.faultSeed = parseU64(a, value());
        } else if (a == "--retry-limit") {
            const unsigned long long n = parseU64(a, value());
            if (n > 32)
                fail("--retry-limit: must be <= 32");
            o.sim.fault.retryLimit = static_cast<unsigned>(n);
        } else if (a == "--retry-backoff") {
            const unsigned long long n = parseU64(a, value());
            if (n < 1)
                fail("--retry-backoff: must be >= 1");
            o.sim.fault.retryBackoffCycles =
                static_cast<sim::Cycle>(n);
        } else if (a == "--reroute") {
            o.sim.rerouteOnOutage = true;
        } else if (a == "--deadlock-detect") {
            const unsigned long long n = parseU64(a, value());
            if (n < 1)
                fail("--deadlock-detect: must be >= 1");
            o.sim.deadlockDetect.enabled = true;
            o.sim.deadlockDetect.thresholdCycles =
                static_cast<sim::Cycle>(n);
            o.sim.deadlockDetect.probeCycles = std::max<sim::Cycle>(
                1, std::min<sim::Cycle>(128, n / 4));
        } else if (a == "--debug-poison-rate") {
            o.sim.debugPoisonRate = parseDouble(a, value());
        } else if (a == "--debug-segv-rate") {
            o.sim.debugSegvRate = parseDouble(a, value());
        } else if (a == "--point-timeout") {
            const double sec = parseDouble(a, value());
            if (sec <= 0.0)
                fail("--point-timeout: must be > 0 seconds");
            o.pointTimeoutSeconds = sec;
        } else if (a == "--point-retries") {
            const unsigned long long n = parseU64(a, value());
            if (n < 1 || n > 32)
                fail("--point-retries: must be in [1, 32]");
            o.pointRetries = static_cast<unsigned>(n);
        } else if (a == "--point-backoff-ms") {
            o.pointBackoffMs =
                static_cast<unsigned>(parseU64(a, value()));
        } else if (a == "--report-out") {
            o.reportOut = value();
        } else if (a == "--log-out") {
            o.logOut = value();
        } else if (a == "--log-level") {
            const std::string& v = value();
            if (v != "debug" && v != "info" && v != "warn" &&
                v != "error") {
                fail("--log-level: wants debug|info|warn|error: '" +
                     v + "'");
            }
            o.logLevel = v;
        } else if (a == "--manifest-out") {
            o.manifestOut = value();
        } else if (a == "--profile-phases") {
            o.sim.profilePhases = true;
        } else if (a == "--jobs") {
            const unsigned long long n = parseU64(a, value());
            if (n < 1)
                fail("--jobs: must be >= 1");
            o.jobs = static_cast<unsigned>(n);
        } else if (a == "--csv") {
            o.csv = true;
        } else if (a == "--breakdown") {
            o.breakdown = true;
        } else if (a == "--metrics-out") {
            o.metricsOut = value();
        } else if (a == "--trace-out") {
            o.traceOut = value();
        } else if (a == "--sample-interval") {
            const unsigned long long n = parseU64(a, value());
            if (n < 1)
                fail("--sample-interval: must be >= 1");
            o.sim.telemetry.sampleInterval =
                static_cast<sim::Cycle>(n);
        } else if (a == "--trace-capacity") {
            const unsigned long long n = parseU64(a, value());
            if (n < 1)
                fail("--trace-capacity: must be >= 1");
            o.sim.telemetry.traceCapacity =
                static_cast<std::size_t>(n);
        } else {
            fail("unknown option '" + a + "'");
        }
    }

    // --metrics-out without an explicit interval samples every 1000
    // cycles; --trace-out enables the tracer.
    if (!o.metricsOut.empty() && o.sim.telemetry.sampleInterval == 0)
        o.sim.telemetry.sampleInterval = 1000;
    if (!o.traceOut.empty())
        o.sim.telemetry.traceEnabled = true;

    // Cross-field checks happen in the library validators; run them
    // here so errors surface before the (possibly long) run starts.
    try {
        validateConfig(o.network, o.traffic, o.sim);
    } catch (const std::invalid_argument& e) {
        fail(e.what());
    }
    return o;
}

std::vector<double>
parseRateSpec(const std::string& spec)
{
    double first = 0.0;
    double last = 0.0;
    unsigned count = 0;
    char tail = 0;
    if (std::sscanf(spec.c_str(), "%lf:%lf:%u%c", &first, &last,
                    &count, &tail) != 3 ||
        first <= 0.0 || last < first || count < 2) {
        throw std::invalid_argument(
            "rate spec wants FIRST:LAST:COUNT with 0 < FIRST <= LAST "
            "and COUNT >= 2: '" +
            spec + "'");
    }
    return Sweep::linspace(first, last, count);
}

std::string
usage()
{
    return "usage: orion_sim [options]\n"
           "\n"
           "network (defaults to --preset vc16):\n"
           "  --preset wh64|vc16|vc64|vc128|xb|cb   paper presets\n"
           "  --dims KxK[xK]       topology radices (default 4x4)\n"
           "  --mesh               mesh instead of torus\n"
           "  --vcs N              virtual channels per port\n"
           "  --buffer N           buffer depth per VC (flits)\n"
           "  --flit-bits N        flit width\n"
           "  --packet-length N    flits per packet\n"
           "  --deadlock none|bubble|dateline\n"
           "  --speculative        2-stage speculative VC pipeline\n"
           "  --arbiter matrix|rr|queuing\n"
           "  --injection single|spread   source VC policy\n"
           "  --tie-break random|prefer-wrap\n"
           "\n"
           "workload:\n"
           "  --pattern uniform|broadcast|transpose|bitcomp|tornado|"
           "neighbor|hotspot|trace\n"
           "  --rate R             packets/cycle/node (default 0.05)\n"
           "  --broadcast-source N --hotspot N --hotspot-frac F\n"
           "  --trace FILE         trace file ('cycle src dst' lines)\n"
           "\n"
           "measurement (paper defaults):\n"
           "  --sample N           sample packets (default 10000)\n"
           "  --warmup N           warm-up cycles (default 1000)\n"
           "  --max-cycles N       cycle cap (default 1000000)\n"
           "  --seed N             RNG seed (default 1)\n"
           "\n"
           "fault injection (defaults: disabled):\n"
           "  --link-ber F         per-bit link error rate in [0,1]\n"
           "  --link-outage START:END[:LINK]\n"
           "                       drop all flits on LINK (random link\n"
           "                       if omitted) during [START, END)\n"
           "  --fault-seed N       fault schedule seed (default:\n"
           "                       derived from --seed)\n"
           "  --retry-limit N      retransmissions per packet "
           "(default 8)\n"
           "  --retry-backoff N    base retry backoff cycles "
           "(default 8)\n"
           "\n"
           "robustness (defaults: disabled; docs/ROBUSTNESS.md):\n"
           "  --reroute            reroute sources around dead links\n"
           "                       (fail fast as 'unreachable' when a\n"
           "                       destination is partitioned)\n"
           "  --deadlock-detect N  detect wait-for cycles after N\n"
           "                       frozen cycles and recover by worm\n"
           "                       poisoning + retransmission\n"
           "\n"
           "execution:\n"
           "  --jobs N             sweep worker threads (default: "
           "hardware\n"
           "                       concurrency; results identical for "
           "any N)\n"
           "\n"
           "survivability (defaults: disabled; docs/ROBUSTNESS.md):\n"
           "  --point-timeout SEC  wall-clock deadline per run / sweep\n"
           "                       point; overruns stop cooperatively\n"
           "                       as status 'deadline'\n"
           "  --point-retries N    attempts per sweep cell before it\n"
           "                       fails for good (default 2)\n"
           "  --point-backoff-ms N sleep before each retry (default 0)\n"
           "\n"
           "output:\n"
           "  --csv                machine-readable one-row CSV\n"
           "  --breakdown          per-node power map + event counts\n"
           "  --report-out FILE    machine-mergeable report line (exact\n"
           "                       hexfloat doubles; the checkpoint\n"
           "                       entry format)\n"
           "\n"
           "telemetry (defaults: disabled; see docs/OBSERVABILITY.md):\n"
           "  --metrics-out FILE   windowed metric time series (CSV)\n"
           "  --sample-interval N  cycles per sampling window (default\n"
           "                       1000 when --metrics-out is set)\n"
           "  --trace-out FILE     Chrome trace-event JSON (load in\n"
           "                       Perfetto / chrome://tracing)\n"
           "  --trace-capacity N   trace ring-buffer records "
           "(default 65536)\n"
           "\n"
           "observability (defaults: disabled; docs/OBSERVABILITY.md):\n"
           "  --log-out FILE       structured JSON-lines log (also via\n"
           "                       the ORION_LOG environment variable)\n"
           "  --log-level L        debug|info|warn|error (default "
           "info)\n"
           "  --manifest-out FILE  run manifest JSON (config\n"
           "                       fingerprint, build info, rusage,\n"
           "                       stop reason)\n"
           "  --profile-phases     attribute kernel time to simulator\n"
           "                       stages (reported in the manifest)\n";
}

std::string
formatReport(const Options& opts, const Report& r)
{
    std::ostringstream out;
    out << "orion_sim run summary\n";
    out << "  status            : " << stopReasonName(r.stopReason)
        << "\n";
    if (r.stopReason == StopReason::CheckFailure &&
        !r.checkFailureDiagnostic.empty()) {
        out << "  diagnostic        : " << r.checkFailureDiagnostic
            << "\n";
    }
    out << "  cycles            : " << r.totalCycles << " ("
        << r.measuredCycles << " measured)\n";
    out << "  sample packets    : " << r.sampleEjected << "/"
        << r.sampleInjected << "\n";
    out << "  offered load      : " << report::fmt(r.offeredLoad, 4)
        << " pkts/cycle/node\n";
    out << "  throughput        : "
        << report::fmt(r.acceptedFlitsPerNodePerCycle, 4)
        << " flits/node/cycle\n";
    out << "  latency mean      : "
        << report::fmt(r.avgLatencyCycles, 2) << " cycles\n";
    out << "  latency p50/95/99 : "
        << report::fmt(r.p50LatencyCycles, 0) << " / "
        << report::fmt(r.p95LatencyCycles, 0) << " / "
        << report::fmt(r.p99LatencyCycles, 0) << " cycles\n";
    out << "  network power     : "
        << report::fmt(r.networkPowerWatts, 3) << " W\n";
    out << "    buffers         : "
        << report::fmt(r.breakdownWatts.buffer, 3) << " W\n";
    out << "    crossbars       : "
        << report::fmt(r.breakdownWatts.crossbar, 3) << " W\n";
    out << "    arbiters        : "
        << report::fmt(r.breakdownWatts.arbiter, 4) << " W\n";
    out << "    central buffers : "
        << report::fmt(r.breakdownWatts.centralBuffer, 3) << " W\n";
    out << "    links           : "
        << report::fmt(r.breakdownWatts.link, 3) << " W\n";

    if (r.flitsCorrupted + r.flitsOutageDropped + r.flitsDiscarded +
            r.packetsRetransmitted + r.packetsLost >
        0) {
        out << "  faults            : " << r.flitsCorrupted
            << " corrupted, " << r.flitsOutageDropped
            << " outage-dropped, " << r.flitsDiscarded
            << " discarded flits\n";
        out << "  recovery          : " << r.packetsRetransmitted
            << " retransmitted, " << r.packetsLost
            << " lost packets\n";
    }
    if (r.reroutes + r.packetsUnreachable > 0) {
        out << "  rerouting         : " << r.reroutes
            << " detours, " << r.packetsUnreachable
            << " unreachable packets\n";
    }
    if (r.deadlocksDetected > 0) {
        out << "  deadlocks         : " << r.deadlocksDetected
            << " detected, " << r.deadlocksRecovered
            << " recovered\n";
    }

    if (opts.breakdown) {
        const auto& dims = opts.network.net.dims;
        if (dims.size() == 2) {
            report::Table map;
            map.title = "per-node power (W)";
            map.headers = {"y\\x"};
            for (unsigned x = 0; x < dims[0]; ++x)
                map.headers.push_back(std::to_string(x));
            for (unsigned yy = dims[1]; yy-- > 0;) {
                std::vector<std::string> row{std::to_string(yy)};
                for (unsigned x = 0; x < dims[0]; ++x) {
                    row.push_back(report::fmt(
                        r.nodePowerWatts[yy * dims[0] + x], 3));
                }
                map.addRow(std::move(row));
            }
            out << report::formatTable(map);
        }

        report::Table ev;
        ev.title = "event counts (measurement window)";
        ev.headers = {"event", "count"};
        for (unsigned t = 0; t < sim::kNumEventTypes; ++t) {
            ev.addRow({sim::eventTypeName(
                           static_cast<sim::EventType>(t)),
                       std::to_string(r.eventCounts[t])});
        }
        out << report::formatTable(ev);
    }
    return out.str();
}

std::string
formatCsvReport(const Options& opts, const Report& r)
{
    // New columns append at the end so the historical header prefix
    // (and existing column positions) stay stable for downstream
    // scripts.
    report::Table t;
    t.headers = {"rate",          "completed",  "deadlock",
                 "cycles",        "latency",    "p50",
                 "p95",           "p99",        "throughput",
                 "power_w",       "buffer_w",   "crossbar_w",
                 "arbiter_w",     "cbuffer_w",  "link_w",
                 "stop_reason",   "flits_corrupted",
                 "packets_retransmitted",      "packets_lost",
                 "packets_unreachable",        "reroutes",
                 "deadlocks_recovered"};
    t.addRow({
        report::fmt(opts.traffic.injectionRate, 4),
        r.completed ? "1" : "0",
        r.deadlockSuspected ? "1" : "0",
        std::to_string(r.measuredCycles),
        report::fmt(r.avgLatencyCycles, 3),
        report::fmt(r.p50LatencyCycles, 0),
        report::fmt(r.p95LatencyCycles, 0),
        report::fmt(r.p99LatencyCycles, 0),
        report::fmt(r.acceptedFlitsPerNodePerCycle, 4),
        report::fmt(r.networkPowerWatts, 4),
        report::fmt(r.breakdownWatts.buffer, 4),
        report::fmt(r.breakdownWatts.crossbar, 4),
        report::fmt(r.breakdownWatts.arbiter, 5),
        report::fmt(r.breakdownWatts.centralBuffer, 4),
        report::fmt(r.breakdownWatts.link, 4),
        stopReasonName(r.stopReason),
        std::to_string(r.flitsCorrupted),
        std::to_string(r.packetsRetransmitted),
        std::to_string(r.packetsLost),
        std::to_string(r.packetsUnreachable),
        std::to_string(r.reroutes),
        std::to_string(r.deadlocksRecovered),
    });
    return report::formatCsv(t);
}

} // namespace orion::cli
