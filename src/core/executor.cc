#include "core/executor.hh"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace orion::core {

ThreadPool::ThreadPool(unsigned workers)
{
    assert(workers >= 1);
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        LockGuard lock(mutex_);
        while (pending_ != 0)
            allDone_.wait(mutex_);
        stopping_ = true;
    }
    workAvailable_.notifyAll();
    for (auto& t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        LockGuard lock(mutex_);
        assert(!stopping_);
        queue_.push(std::move(task));
        ++pending_;
    }
    workAvailable_.notifyOne();
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        LockGuard lock(mutex_);
        while (pending_ != 0)
            allDone_.wait(mutex_);
        error = std::exchange(firstError_, nullptr);
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            LockGuard lock(mutex_);
            while (!stopping_ && queue_.empty())
                workAvailable_.wait(mutex_);
            if (queue_.empty())
                return; // stopping_ with a drained queue
            task = std::move(queue_.front());
            queue_.pop();
        }
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        {
            LockGuard lock(mutex_);
            if (error && !firstError_)
                firstError_ = error;
            --pending_;
        }
        allDone_.notifyAll();
    }
}

unsigned
resolveJobs(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

void
parallelFor(unsigned jobs, std::size_t count,
            const std::function<void(std::size_t)>& body,
            const CancelToken* cancel)
{
    jobs = resolveJobs(jobs);
    if (jobs == 1 || count < 2) {
        for (std::size_t i = 0; i < count; ++i) {
            if (cancel != nullptr && cancel->cancelled())
                return;
            body(i);
        }
        return;
    }

    // Dynamic index assignment: an atomic cursor load-balances points
    // whose runtimes vary wildly (post-saturation points run to the
    // cycle cap, zero-load points finish quickly).
    std::atomic<std::size_t> cursor{0};
    const auto drain = [&] {
        for (;;) {
            if (cancel != nullptr && cancel->cancelled())
                return;
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            body(i);
        }
    };

    ThreadPool pool(
        static_cast<unsigned>(std::min<std::size_t>(jobs, count)));
    for (unsigned w = 0; w < pool.workers(); ++w)
        pool.submit(drain);
    pool.wait();
}

} // namespace orion::core
