/**
 * @file
 * Parameterized power models for crossbars (the paper's Table 3).
 *
 * Two common implementations are modeled, as in the paper:
 *
 *  - **Matrix crossbar**: I horizontal input buses of W wires each and
 *    O vertical output buses of W wires each, with a pass-transistor
 *    crosspoint connector at each (input, output) intersection. Input
 *    and output line lengths follow from the wiring grid; a traversal
 *    charges the input line, the crosspoint and the output line for
 *    every data wire that toggles.
 *
 *  - **Multiplexer-tree crossbar**: each output is a binary tree of 2:1
 *    multiplexers over the I inputs (depth ceil(log2 I)); a traversal
 *    charges one root-to-leaf path per toggling data wire.
 *
 * Crossbar *control* lines are driven by arbiter grant outputs; per the
 * paper's Appendix, their energy (E_xb_ctr) is accounted as part of the
 * arbiter's E_arb, so this model exposes controlCap()/controlEnergy()
 * for the arbiter model to consume.
 */

#ifndef ORION_POWER_CROSSBAR_MODEL_HH
#define ORION_POWER_CROSSBAR_MODEL_HH

#include "tech/tech_node.hh"

namespace orion::power {

/** Crossbar implementation style. */
enum class CrossbarKind
{
    Matrix,
    MuxTree,
};

/** Architectural parameters of a crossbar (Table 3). */
struct CrossbarParams
{
    /** Number of input ports, I. */
    unsigned inputs;
    /** Number of output ports, O. */
    unsigned outputs;
    /** Data path width in bits, W. */
    unsigned width;
    /** Implementation style. */
    CrossbarKind kind = CrossbarKind::Matrix;
    /**
     * Load capacitance each output must drive (e.g. the downstream
     * latch or link input), in farads. Used to size output drivers.
     */
    double outputLoadCapF = 0.0;
};

/** Crossbar power model. */
class CrossbarModel
{
  public:
    CrossbarModel(const tech::TechNode& tech, const CrossbarParams& params);

    const CrossbarParams& params() const { return params_; }

    /// @name Geometry
    /// @{
    /** Input line length L_in (um); 0 for mux-tree crossbars. */
    double inputLengthUm() const { return inLenUm_; }
    /** Output line length L_out (um). */
    double outputLengthUm() const { return outLenUm_; }
    /** Switch-fabric area assuming rectangular layout (um^2). */
    double areaUm2() const;
    /// @}

    /// @name Capacitances (farads, per single data wire)
    /// @{
    /** Capacitance charged on the input side per toggling wire. */
    double inputCap() const { return cIn_; }
    /** Capacitance charged on the output side per toggling wire. */
    double outputCap() const { return cOut_; }
    /**
     * Control line capacitance C_xb_ctr: one control wire gates the W
     * crosspoint transistors of a column (matrix) or the W select
     * inputs of a mux level (tree), plus half an input line of wire.
     */
    double controlCap() const { return cCtr_; }
    /// @}

    /// @name Energies (joules)
    /// @{
    /**
     * Energy of one flit traversal with monitored switching activity.
     *
     * @param delta_bits  number of data wires that toggle relative to
     *                    the previous value carried on this path
     */
    double traversalEnergy(unsigned delta_bits) const;

    /** Average-activity traversal (half the wires toggle). */
    double avgTraversalEnergy() const;

    /**
     * Energy of switching one control line (full swing). Charged by
     * the arbiter model as part of E_arb, without an activity factor
     * (each arbitration reconfigures exactly one column).
     */
    double controlEnergy() const;
    /// @}

  private:
    tech::TechNode tech_;
    CrossbarParams params_;
    double inLenUm_;
    double outLenUm_;
    double cIn_;
    double cOut_;
    double cCtr_;
    /** switchEnergy(cIn_) + switchEnergy(cOut_), cached: the per-wire
     * traversal energy evaluated once per crossbar transit. */
    double eWire_;
};

} // namespace orion::power

#endif // ORION_POWER_CROSSBAR_MODEL_HH
