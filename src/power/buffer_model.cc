#include "power/buffer_model.hh"

#include <cassert>

namespace orion::power {

using tech::Role;
using tech::Transistor;
using tech::ca;
using tech::cd;
using tech::cg;
using tech::cw;

namespace {

/**
 * Sense-amplifier energy per column per read. The paper plugs in the
 * Zyuban-Kogge empirical model; we use the same form — a fixed
 * equivalent capacitance swung through a reduced bitline voltage —
 * folded into a single equivalent full-swing capacitance.
 */
constexpr double kSenseAmpEquivCapF = 6.0e-15;

} // namespace

BufferModel::BufferModel(const tech::TechNode& tech,
                         const BufferParams& params)
    : tech_(tech), params_(params)
{
    assert(params.flits > 0 && params.flitBits > 0);
    assert(params.readPorts > 0 && params.writePorts > 0);

    const double ports = params.readPorts + params.writePorts;
    const unsigned f = params.flitBits;
    const unsigned b = params.flits;

    // L_wl = F (w_cell + 2 (P_r + P_w) d_w)
    wordlineLengthUm_ =
        f * (tech.cellWidthUm + 2.0 * ports * tech.wirePitchUm);
    // L_bl = B (h_cell + (P_r + P_w) d_w)
    bitlineLengthUm_ = b * (tech.cellHeightUm + ports * tech.wirePitchUm);

    const Transistor t_p = defaultTransistor(tech, Role::MemoryPass);
    const Transistor t_c = defaultTransistor(tech, Role::Precharge);
    const Transistor t_m =
        defaultTransistor(tech, Role::MemoryCellInverter);
    const Transistor t_bd = defaultTransistor(tech, Role::BitlineDriver);

    // The wordline driver is sized for its load: the pass-transistor
    // gates plus the wordline wire.
    const double wl_load =
        2.0 * f * cg(tech, t_p) + cw(tech, wordlineLengthUm_);
    const Transistor t_wd =
        sizeDriverForLoad(tech, Role::WordlineDriver, wl_load);

    // C_wl = 2 F C_g(T_p) + C_a(T_wd) + C_w(L_wl)
    cWl_ = 2.0 * f * cg(tech, t_p) + ca(tech, t_wd) +
           cw(tech, wordlineLengthUm_);
    // C_br = B C_d(T_p) + C_d(T_c) + C_w(L_bl)
    cBr_ = b * cd(tech, t_p) + cd(tech, t_c) +
           cw(tech, bitlineLengthUm_);
    // C_bw = B C_d(T_p) + C_a(T_bd) + C_w(L_bl)
    cBw_ = b * cd(tech, t_p) + ca(tech, t_bd) +
           cw(tech, bitlineLengthUm_);
    // C_chg = C_g(T_c)
    cChg_ = cg(tech, t_c);
    // C_cell = 2 (P_r + P_w) C_d(T_p) + 2 C_a(T_m)
    cCell_ = 2.0 * ports * cd(tech, t_p) + 2.0 * ca(tech, t_m);

    eAmp_ = tech.switchEnergy(kSenseAmpEquivCapF);

    // Per-event energy terms, cached once: the capacitances above are
    // fixed for the model's lifetime and read/write energies are
    // evaluated millions of times per run.
    eWl_ = tech.switchEnergy(cWl_);
    eBw_ = tech.switchEnergy(cBw_);
    eCell_ = tech.switchEnergy(cCell_);
    const double e_br = tech.switchEnergy(cBr_);
    const double e_chg = tech.switchEnergy(cChg_);
    eRead_ = eWl_ + params.flitBits * (e_br + 2.0 * e_chg + eAmp_);
}

double
BufferModel::readEnergy() const
{
    return eRead_;
}

double
BufferModel::writeEnergy(unsigned delta_bw, unsigned delta_bc) const
{
    assert(delta_bw <= params_.flitBits && delta_bc <= params_.flitBits);
    return eWl_ + delta_bw * eBw_ + delta_bc * eCell_;
}

double
BufferModel::avgWriteEnergy() const
{
    // Random data vs. random previous state: half the differential
    // write-bitline pairs switch, a quarter of the cells flip on
    // average (P(old != new) = 1/2, but cells only dissipate when they
    // actually flip, and the previous row contents are independent of
    // the write-driver history — 1/2 each is the worst case; Orion uses
    // 1/2 for bitlines and 1/2 for cells; we follow bitlines = F/2 and
    // cells = F/2 scaled by flip probability 1/2).
    const unsigned f = params_.flitBits;
    return writeEnergy(f / 2, f / 4);
}

} // namespace orion::power
