#include "power/dvs_link_model.hh"

#include <cassert>

namespace orion::power {

DvsLinkModel::DvsLinkModel(const tech::TechNode& tech, double length_um,
                           unsigned width, std::vector<DvsLevel> levels)
    : base_(tech, length_um, width), levels_(std::move(levels))
{
    assert(!levels_.empty());
    const double v0 = levels_.front().vdd;
    assert(v0 > 0.0);
    double last_v = v0 + 1.0;
    for (const auto& l : levels_) {
        assert(l.vdd > 0.0 && l.vdd < last_v &&
               "levels must be strictly descending in voltage");
        assert(l.bandwidthScale > 0.0 && l.bandwidthScale <= 1.0);
        last_v = l.vdd;
        energyScale_.push_back((l.vdd / v0) * (l.vdd / v0));
    }
}

std::vector<DvsLevel>
DvsLinkModel::defaultLevels(double nominal_vdd)
{
    return {
        {nominal_vdd, 1.0},
        {nominal_vdd * 5.0 / 6.0, 5.0 / 6.0},
        {nominal_vdd * 2.0 / 3.0, 2.0 / 3.0},
    };
}

double
DvsLinkModel::traversalEnergy(unsigned delta_bits, unsigned level) const
{
    assert(level < levels_.size());
    return base_.traversalEnergy(delta_bits) * energyScale_[level];
}

} // namespace orion::power
