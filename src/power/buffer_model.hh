/**
 * @file
 * Parameterized power model for FIFO buffers (the paper's Table 2).
 *
 * Router buffers are implemented as SRAM arrays: B rows (flits) of F
 * bits, with P_r read ports and P_w write ports. The model derives
 * wordline/bitline lengths from the array geometry, capacitances from
 * the circuit structure, and per-operation energies:
 *
 *   E_read = E_wl + F (E_br + 2 E_chg + E_amp)
 *   E_wrt  = E_wl + delta_bw E_bw + delta_bc E_cell
 *
 * where delta_bw is the number of switching write bitlines and
 * delta_bc the number of flipped memory cells, both monitored through
 * simulation.
 *
 * A buffer with a dedicated port to the switch does not require
 * tri-state output drivers (paper Section 3.1) — hence no output-driver
 * term appears in the read path.
 */

#ifndef ORION_POWER_BUFFER_MODEL_HH
#define ORION_POWER_BUFFER_MODEL_HH

#include "tech/capacitance.hh"
#include "tech/tech_node.hh"
#include "tech/transistor.hh"

namespace orion::power {

/** Architectural parameters of a FIFO buffer (Table 2). */
struct BufferParams
{
    /** Buffer size in flits (number of SRAM rows), B. */
    unsigned flits;
    /** Flit size in bits (row width), F. */
    unsigned flitBits;
    /** Number of read ports, P_r. */
    unsigned readPorts = 1;
    /** Number of write ports, P_w. */
    unsigned writePorts = 1;
};

/**
 * FIFO buffer power model.
 *
 * Constructed once per distinct buffer configuration; all capacitances
 * are computed up front, so per-event energy queries are cheap.
 */
class BufferModel
{
  public:
    BufferModel(const tech::TechNode& tech, const BufferParams& params);

    const BufferParams& params() const { return params_; }

    /// @name Geometry (Table 2 capacitance-equation inputs)
    /// @{
    /** Wordline length L_wl = F (w_cell + 2 (P_r + P_w) d_w), in um. */
    double wordlineLengthUm() const { return wordlineLengthUm_; }
    /** Bitline length L_bl = B (h_cell + (P_r + P_w) d_w), in um. */
    double bitlineLengthUm() const { return bitlineLengthUm_; }
    /** Array area assuming a rectangular layout, in um^2. */
    double areaUm2() const { return wordlineLengthUm_ * bitlineLengthUm_; }
    /// @}

    /// @name Capacitances (farads)
    /// @{
    /** C_wl = 2 F C_g(T_p) + C_a(T_wd) + C_w(L_wl). */
    double wordlineCap() const { return cWl_; }
    /** C_br = B C_d(T_p) + C_d(T_c) + C_w(L_bl). */
    double readBitlineCap() const { return cBr_; }
    /** C_bw = B C_d(T_p) + C_a(T_bd) + C_w(L_bl). */
    double writeBitlineCap() const { return cBw_; }
    /** C_chg = C_g(T_c). */
    double prechargeCap() const { return cChg_; }
    /** C_cell = 2 (P_r + P_w) C_d(T_p) + 2 C_a(T_m). */
    double cellCap() const { return cCell_; }
    /// @}

    /// @name Per-operation energies (joules)
    /// @{
    /** Sense-amplifier energy per column per read (empirical model). */
    double senseAmpEnergy() const { return eAmp_; }

    /**
     * Energy of one read: E_read = E_wl + F (E_br + 2 E_chg + E_amp).
     * Reads discharge precharged bitlines, so no data-dependent
     * activity factor applies.
     */
    double readEnergy() const;

    /**
     * Energy of one write with monitored switching activity:
     * E_wrt = E_wl + delta_bw E_bw + delta_bc E_cell.
     *
     * @param delta_bw  number of switching write bitlines
     * @param delta_bc  number of flipped memory cells
     */
    double writeEnergy(unsigned delta_bw, unsigned delta_bc) const;

    /**
     * Average-activity write energy, for static (non-simulated)
     * estimates: assumes half the bitlines switch and a quarter of the
     * cells flip (random data against random data).
     */
    double avgWriteEnergy() const;
    /// @}

  private:
    tech::TechNode tech_;
    BufferParams params_;

    double wordlineLengthUm_;
    double bitlineLengthUm_;
    double cWl_;
    double cBr_;
    double cBw_;
    double cChg_;
    double cCell_;
    double eAmp_;
    /// @name Per-event energies cached at construction (joules) — the
    /// capacitances never change, so the hot read/write queries reduce
    /// to a load or a two-term dot product.
    /// @{
    double eWl_;
    double eBw_;
    double eCell_;
    double eRead_;
    /// @}
};

} // namespace orion::power

#endif // ORION_POWER_BUFFER_MODEL_HH
