/**
 * @file
 * Parameterized power models for arbiters (the paper's Table 4).
 *
 * Three arbiter styles are modeled, as in the paper:
 *
 *  - **Matrix arbiter**: an R(R-1)/2 triangular matrix of priority
 *    flip-flops, with grant logic built from two levels of NOR gates
 *    (T_N1, T_N2) and an inverter (T_I): grant_i is asserted when
 *    request_i is high and no higher-priority pending request exists.
 *    On a grant, the winner's priority row/column is updated (R-1
 *    flip-flops may toggle).
 *
 *  - **Round-robin arbiter**: a rotating one-hot priority token held in
 *    R flip-flops, with the same two-level grant logic.
 *
 *  - **Queuing arbiter**: requesters enter a FIFO of log2(R)-bit
 *    entries; the head is granted. Modeled hierarchically by reusing
 *    the FIFO buffer model (Section 3.2 reuse argument).
 *
 * Per the Appendix:
 *  - E_xb_ctr (crossbar control-line energy) is part of E_arb because
 *    arbiter grant signals drive crossbar control signals.
 *  - No switching-activity factor applies to E_gnt and E_xb_ctr, since
 *    each arbitration grants exactly one request.
 */

#ifndef ORION_POWER_ARBITER_MODEL_HH
#define ORION_POWER_ARBITER_MODEL_HH

#include <memory>

#include "power/buffer_model.hh"
#include "power/flipflop_model.hh"
#include "tech/tech_node.hh"

namespace orion::power {

/** Arbiter implementation style. */
enum class ArbiterKind
{
    Matrix,
    RoundRobin,
    Queuing,
};

/** Architectural parameters of an arbiter. */
struct ArbiterParams
{
    /** Number of requesters, R. */
    unsigned requests;
    /** Implementation style. */
    ArbiterKind kind = ArbiterKind::Matrix;
    /**
     * Capacitance of the crossbar control line the grant output drives
     * (C_xb_ctr from the crossbar model); 0 if the arbiter does not
     * drive a crossbar (e.g. a VC allocator).
     */
    double crossbarControlCapF = 0.0;
};

/** Arbiter power model. */
class ArbiterModel
{
  public:
    ArbiterModel(const tech::TechNode& tech, const ArbiterParams& params);

    const ArbiterParams& params() const { return params_; }

    /** Number of priority flip-flops in the design. */
    unsigned priorityFlipFlops() const;

    /// @name Capacitances (farads)
    /// @{
    /** Request line: drives (R-1) first-level NOR gates + wire. */
    double requestCap() const { return cReq_; }
    /** Priority flip-flop output: drives 2 first-level NOR gates. */
    double priorityCap() const { return cPri_; }
    /** Internal node between the NOR levels. */
    double internalCap() const { return cInt_; }
    /** Grant line: second-level NOR output + inverter + wire. */
    double grantCap() const { return cGnt_; }
    /// @}

    /// @name Energies (joules)
    /// @{
    /**
     * Energy of one arbitration with monitored switching activity:
     *
     *   E_arb = delta_req E_req + delta_int E_int + delta_pri E_pri
     *           + E_gnt + E_xb_ctr
     *
     * @param delta_req  request lines that changed since the last
     *                   arbitration
     * @param delta_pri  priority flip-flops that toggled (matrix: up to
     *                   R-1 on a grant; round-robin: 2 — token moves)
     */
    double arbitrationEnergy(unsigned delta_req, unsigned delta_pri) const;

    /**
     * Average-activity arbitration energy for static estimates:
     * assumes half the request lines toggle and a typical priority
     * update for the arbiter kind.
     */
    double avgArbitrationEnergy() const;
    /// @}

  private:
    tech::TechNode tech_;
    ArbiterParams params_;
    FlipFlopModel ff_;
    /** Present only for the queuing arbiter. */
    std::unique_ptr<BufferModel> queueFifo_;

    double cReq_;
    double cPri_;
    double cInt_;
    double cGnt_;
    /// @name Per-event energies cached at construction (joules).
    /// @{
    double eReq_;
    double ePri_;
    double eInt_;
    double eGnt_;
    /// @}
};

} // namespace orion::power

#endif // ORION_POWER_ARBITER_MODEL_HH
