#include "power/link_model.hh"

#include <cassert>

#include "tech/capacitance.hh"
#include "tech/transistor.hh"

namespace orion::power {

OnChipLinkModel::OnChipLinkModel(const tech::TechNode& tech,
                                 double length_um, unsigned width)
    : tech_(tech), lengthUm_(length_um), width_(width)
{
    assert(length_um >= 0.0 && width > 0);
    const double wire = tech::cw(tech, length_um);
    // Driver sized for the wire load; its diffusion rides on the wire.
    const tech::Transistor drv = tech::sizeDriverForLoad(
        tech, tech::Role::CrossbarOutputDriver, wire);
    cWire_ = wire + tech::cd(tech, drv);
    eWire_ = tech.switchEnergy(cWire_);
}

double
OnChipLinkModel::traversalEnergy(unsigned delta_bits) const
{
    assert(delta_bits <= width_);
    return delta_bits * eWire_;
}

double
OnChipLinkModel::avgTraversalEnergy() const
{
    return traversalEnergy(width_ / 2);
}

ChipToChipLinkModel::ChipToChipLinkModel(double power_watts)
    : powerWatts_(power_watts)
{
    assert(power_watts >= 0.0);
}

double
ChipToChipLinkModel::energyOver(double cycle_period_s, double cycles) const
{
    assert(cycle_period_s > 0.0 && cycles >= 0.0);
    return powerWatts_ * cycle_period_s * cycles;
}

} // namespace orion::power
