#include "power/activity.hh"

#include <algorithm>
#include <bit>
#include <cassert>

namespace orion::power {

BitVec::BitVec(unsigned width)
    : width_(width),
      words_(static_cast<std::uint32_t>((width + 63) / 64))
{
    if (words_ > kInlineWords)
        heap_ = std::make_unique<std::uint64_t[]>(words_);
    std::fill_n(data(), words_, 0ull);
}

BitVec::BitVec(unsigned width, std::uint64_t low_word)
    : BitVec(width)
{
    if (words_ > 0) {
        data()[0] = low_word;
        maskTop();
    }
}

BitVec::BitVec(const BitVec& o)
    : width_(o.width_), words_(o.words_)
{
    if (words_ > kInlineWords)
        heap_ = std::make_unique<std::uint64_t[]>(words_);
    std::copy_n(o.data(), words_, data());
}

BitVec::BitVec(BitVec&& o) noexcept
    : width_(o.width_),
      words_(o.words_),
      inline_(o.inline_),
      heap_(std::move(o.heap_))
{
    o.width_ = 0;
    o.words_ = 0;
}

BitVec&
BitVec::operator=(const BitVec& o)
{
    if (this == &o)
        return *this;
    if (o.words_ > kInlineWords) {
        // Reuse an existing heap buffer of sufficient size.
        if (!heap_ || words_ < o.words_)
            heap_ = std::make_unique<std::uint64_t[]>(o.words_);
    } else {
        heap_.reset();
    }
    width_ = o.width_;
    words_ = o.words_;
    std::copy_n(o.data(), words_, data());
    return *this;
}

BitVec&
BitVec::operator=(BitVec&& o) noexcept
{
    if (this == &o)
        return *this;
    width_ = o.width_;
    words_ = o.words_;
    inline_ = o.inline_;
    heap_ = std::move(o.heap_);
    o.width_ = 0;
    o.words_ = 0;
    return *this;
}

bool
BitVec::operator==(const BitVec& o) const
{
    if (width_ != o.width_)
        return false;
    return std::equal(data(), data() + words_, o.data());
}

void
BitVec::setWord(std::size_t i, std::uint64_t v)
{
    assert(i < words_);
    data()[i] = v;
    maskTop();
}

bool
BitVec::bit(unsigned i) const
{
    assert(i < width_);
    return (data()[i / 64] >> (i % 64)) & 1;
}

void
BitVec::setBit(unsigned i, bool v)
{
    assert(i < width_);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (v)
        data()[i / 64] |= mask;
    else
        data()[i / 64] &= ~mask;
}

unsigned
BitVec::popcount() const
{
    unsigned n = 0;
    for (std::size_t w = 0; w < words_; ++w)
        n += std::popcount(data()[w]);
    return n;
}

void
BitVec::maskTop()
{
    const unsigned rem = width_ % 64;
    if (rem != 0 && words_ > 0)
        data()[words_ - 1] &= (std::uint64_t{1} << rem) - 1;
}

} // namespace orion::power
