/**
 * @file
 * Switching-activity helpers.
 *
 * The paper: "Throughout our power models, the switching activity
 * factors delta_x are monitored and calculated through simulation."
 * Flits in the simulator carry real payload bits; these helpers turn
 * pairs of payloads into the delta counts the energy equations consume
 * (number of switching write bitlines, number of flipped memory cells,
 * number of toggling crossbar/link wires).
 */

#ifndef ORION_POWER_ACTIVITY_HH
#define ORION_POWER_ACTIVITY_HH

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>

namespace orion::power {

/**
 * A fixed-width bit vector holding the payload of one flit (or any
 * datapath word the power models track). Width is in bits; storage is
 * little-endian 64-bit words with unused high bits kept at zero.
 *
 * Widths up to 256 bits (every configuration in the paper) live in
 * inline storage — no heap allocation per flit; wider vectors fall
 * back to a heap buffer.
 */
class BitVec
{
  public:
    BitVec() : width_(0), words_(0) {}

    /** An all-zero vector of @p width bits. */
    explicit BitVec(unsigned width);

    /** A vector of @p width bits whose low word is @p low_word. */
    BitVec(unsigned width, std::uint64_t low_word);

    BitVec(const BitVec& o);
    BitVec(BitVec&& o) noexcept;
    BitVec& operator=(const BitVec& o);
    BitVec& operator=(BitVec&& o) noexcept;
    ~BitVec() = default;

    unsigned width() const { return width_; }

    /** Number of 64-bit storage words. */
    std::size_t wordCount() const { return words_; }

    std::uint64_t word(std::size_t i) const { return data()[i]; }

    /** Set storage word @p i (masked to the declared width). */
    void setWord(std::size_t i, std::uint64_t v);

    bool bit(unsigned i) const;
    void setBit(unsigned i, bool v);

    /** Number of set bits. */
    unsigned popcount() const;

    bool operator==(const BitVec& o) const;

    const std::uint64_t*
    data() const
    {
        return heap_ ? heap_.get() : inline_.data();
    }

    std::uint64_t*
    data()
    {
        return heap_ ? heap_.get() : inline_.data();
    }

  private:
    static constexpr std::size_t kInlineWords = 4; // up to 256 bits

    void maskTop();

    unsigned width_;
    std::uint32_t words_;
    std::array<std::uint64_t, kInlineWords> inline_{};
    std::unique_ptr<std::uint64_t[]> heap_;
};

/**
 * Hamming distance between two equal-width bit vectors: the number of
 * wires that toggle when the datapath value changes from @p a to @p b.
 * Inline: every buffer write/read and link traversal computes one of
 * these, so the XOR/popcount loop sits on the cycle kernel's hot path.
 */
inline unsigned
hammingDistance(const BitVec& a, const BitVec& b)
{
    assert(a.width() == b.width());
    unsigned n = 0;
    const std::uint64_t* wa = a.data();
    const std::uint64_t* wb = b.data();
    for (std::size_t i = 0; i < a.wordCount(); ++i)
        n += static_cast<unsigned>(std::popcount(wa[i] ^ wb[i]));
    return n;
}

/**
 * Number of switching write bitlines (delta_bw of Table 2).
 *
 * Write bitlines are driven with the new datum; a bitline pair switches
 * when the bit being written differs from the value the write driver
 * held from the previous write.
 */
inline unsigned
switchingWriteBitlines(const BitVec& new_data, const BitVec& last_written)
{
    return hammingDistance(new_data, last_written);
}

/**
 * Number of flipped memory cells (delta_bc of Table 2): bits of the new
 * datum that differ from the old contents of the target row.
 */
inline unsigned
flippedCells(const BitVec& new_data, const BitVec& old_row)
{
    return hammingDistance(new_data, old_row);
}

} // namespace orion::power

#endif // ORION_POWER_ACTIVITY_HH
