#include "power/crossbar_model.hh"

#include <bit>
#include <cassert>
#include <cmath>

#include "tech/capacitance.hh"
#include "tech/transistor.hh"

namespace orion::power {

using tech::Role;
using tech::Transistor;
using tech::ca;
using tech::cd;
using tech::cg;
using tech::cw;

namespace {

/** ceil(log2(n)) for n >= 1. */
unsigned
log2Ceil(unsigned n)
{
    assert(n >= 1);
    return n <= 1 ? 0 : std::bit_width(n - 1);
}

} // namespace

CrossbarModel::CrossbarModel(const tech::TechNode& tech,
                             const CrossbarParams& params)
    : tech_(tech), params_(params)
{
    assert(params.inputs > 0 && params.outputs > 0 && params.width > 0);

    const Transistor t_cross =
        defaultTransistor(tech, Role::CrossbarCrosspoint);
    // Crossbar datapath tracks are routed at twice the minimum pitch
    // (shielding/differential routing of the wide fast buses).
    const double d_w = 2.0 * tech.wirePitchUm;
    const unsigned w = params.width;

    if (params.kind == CrossbarKind::Matrix) {
        // Each input bus crosses all O output columns; each column is
        // W wires wide at pitch d_w. Symmetrically for output buses.
        inLenUm_ = params.outputs * w * d_w;
        outLenUm_ = params.inputs * w * d_w;

        // Input line: wire + one crosspoint diffusion per output column
        // + the input driver's diffusion. The driver is sized for this
        // load.
        const double in_wire_and_diff =
            cw(tech, inLenUm_) + params.outputs * cd(tech, t_cross);
        const Transistor t_id = sizeDriverForLoad(
            tech, Role::CrossbarInputDriver, in_wire_and_diff);
        cIn_ = in_wire_and_diff + cd(tech, t_id);

        // Output line: wire + one crosspoint diffusion per input row +
        // the output driver's gate. The output driver is sized for the
        // external load plus the line itself.
        const double out_wire_and_diff =
            cw(tech, outLenUm_) + params.inputs * cd(tech, t_cross);
        const Transistor t_od = sizeDriverForLoad(
            tech, Role::CrossbarOutputDriver,
            out_wire_and_diff + params.outputLoadCapF);
        cOut_ = out_wire_and_diff + cg(tech, t_od);

        // Control line: gates of the W crosspoint transistors in one
        // column, plus wire running half an input line on average
        // (control routed alongside inputs, Table 3 note).
        cCtr_ = w * cg(tech, t_cross) + cw(tech, inLenUm_ / 2.0);
    } else {
        // Mux-tree: no long input buses; each output bit is a binary
        // tree of 2:1 pass-gate muxes over I inputs.
        const unsigned depth = log2Ceil(params.inputs);
        inLenUm_ = 0.0;
        // Output wiring still spans the I input bundles.
        outLenUm_ = params.inputs * w * d_w;

        const Transistor t_mux = defaultTransistor(tech, Role::MuxTreePass);
        // Per toggling wire, a root-to-leaf path switches: at each of
        // the `depth` levels, two pass-transistor diffusions (the
        // selected branch's on-device plus the sibling's off-device
        // junction) and the next level's input capacitance.
        const double per_level =
            2.0 * cd(tech, t_mux) + cg(tech, t_mux);
        cIn_ = depth * per_level;

        const double out_wire = cw(tech, outLenUm_);
        const Transistor t_od = sizeDriverForLoad(
            tech, Role::CrossbarOutputDriver,
            out_wire + params.outputLoadCapF);
        cOut_ = out_wire + cg(tech, t_od);

        // Control: each select level gates W mux transistors; a
        // reconfiguration switches one select per level.
        cCtr_ = depth * (w * cg(tech, t_mux)) +
                cw(tech, outLenUm_ / 2.0);
    }
    eWire_ = tech.switchEnergy(cIn_) + tech.switchEnergy(cOut_);
}

double
CrossbarModel::areaUm2() const
{
    if (params_.kind == CrossbarKind::Matrix)
        return inLenUm_ * outLenUm_;
    // Mux-tree area approximated by its output wiring span square.
    return outLenUm_ * outLenUm_;
}

double
CrossbarModel::traversalEnergy(unsigned delta_bits) const
{
    assert(delta_bits <= params_.width);
    return delta_bits * eWire_;
}

double
CrossbarModel::avgTraversalEnergy() const
{
    return traversalEnergy(params_.width / 2);
}

double
CrossbarModel::controlEnergy() const
{
    return tech_.switchEnergy(cCtr_);
}

} // namespace orion::power
