/**
 * @file
 * Flip-flop subcomponent power model.
 *
 * Flip-flops appear twice in the paper's model hierarchy: as the
 * priority state of arbiters (Table 4), and — reused per Section 3.2 —
 * as the pipeline registers of central buffers. A master-slave D
 * flip-flop is modeled as two cross-coupled inverter pairs plus clock
 * load; energy is charged when the stored bit flips, plus a small
 * clock-toggle term every cycle it is clocked.
 */

#ifndef ORION_POWER_FLIPFLOP_MODEL_HH
#define ORION_POWER_FLIPFLOP_MODEL_HH

#include "tech/tech_node.hh"

namespace orion::power {

/** Power model for a single-bit master-slave D flip-flop. */
class FlipFlopModel
{
  public:
    explicit FlipFlopModel(const tech::TechNode& tech);

    /**
     * Internal node capacitance switched when the stored value flips:
     * the gate+diffusion capacitance of the two inverter pairs.
     */
    double flipCap() const { return cFlip_; }

    /** Clock-input capacitance toggled every clock edge pair. */
    double clockCap() const { return cClock_; }

    /** Energy of one data flip. */
    double flipEnergy() const;

    /** Clocking energy per cycle (both edges), paid even without flip. */
    double clockEnergy() const;

  private:
    tech::TechNode tech_;
    double cFlip_;
    double cClock_;
};

} // namespace orion::power

#endif // ORION_POWER_FLIPFLOP_MODEL_HH
