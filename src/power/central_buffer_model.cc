#include "power/central_buffer_model.hh"

#include <cassert>

namespace orion::power {

namespace {

BufferParams
bankParams(const CentralBufferParams& p)
{
    return BufferParams{p.rowsPerBank, p.flitBits, p.readPorts,
                        p.writePorts};
}

CrossbarParams
writeXbarParams(const CentralBufferParams& p)
{
    return CrossbarParams{p.routerPorts, p.writePorts, p.flitBits,
                          CrossbarKind::Matrix, 0.0};
}

CrossbarParams
readXbarParams(const CentralBufferParams& p)
{
    return CrossbarParams{p.readPorts, p.routerPorts, p.flitBits,
                          CrossbarKind::Matrix, 0.0};
}

} // namespace

CentralBufferModel::CentralBufferModel(const tech::TechNode& tech,
                                       const CentralBufferParams& params)
    : tech_(tech),
      params_(params),
      bank_(tech, bankParams(params)),
      ff_(tech),
      writeXbar_(tech, writeXbarParams(params)),
      readXbar_(tech, readXbarParams(params))
{
    assert(params.banks > 0 && params.pipelineStages > 0);
}

double
CentralBufferModel::areaUm2() const
{
    return params_.banks * bank_.areaUm2() + writeXbar_.areaUm2() +
           readXbar_.areaUm2();
}

double
CentralBufferModel::writeEnergy(unsigned delta_bits, unsigned delta_bw,
                                unsigned delta_bc) const
{
    // Router port -> write crossbar -> pipeline registers -> bank.
    const double e_xbar = writeXbar_.traversalEnergy(delta_bits);
    const double e_pipe =
        params_.pipelineStages * delta_bits * ff_.flipEnergy();
    const double e_bank = bank_.writeEnergy(delta_bw, delta_bc);
    return e_xbar + e_pipe + e_bank;
}

double
CentralBufferModel::readEnergy(unsigned delta_bits) const
{
    const double e_bank = bank_.readEnergy();
    const double e_pipe =
        params_.pipelineStages * delta_bits * ff_.flipEnergy();
    const double e_xbar = readXbar_.traversalEnergy(delta_bits);
    return e_bank + e_pipe + e_xbar;
}

double
CentralBufferModel::avgWriteEnergy() const
{
    const unsigned f = params_.flitBits;
    return writeEnergy(f / 2, f / 2, f / 4);
}

double
CentralBufferModel::avgReadEnergy() const
{
    return readEnergy(params_.flitBits / 2);
}

} // namespace orion::power
