#include "power/arbiter_model.hh"

#include <algorithm>
#include <bit>
#include <cassert>

#include "tech/capacitance.hh"
#include "tech/transistor.hh"

namespace orion::power {

using tech::Role;
using tech::Transistor;
using tech::ca;
using tech::cd;
using tech::cg;
using tech::cw;

ArbiterModel::ArbiterModel(const tech::TechNode& tech,
                           const ArbiterParams& params)
    : tech_(tech), params_(params), ff_(tech)
{
    assert(params.requests >= 1);

    const unsigned r = params.requests;
    const Transistor n1 = defaultTransistor(tech, Role::ArbiterNor1);
    const Transistor n2 = defaultTransistor(tech, Role::ArbiterNor2);
    const Transistor inv = defaultTransistor(tech, Role::ArbiterInverter);

    // Short local wiring: the arbiter cell for requester i spans about
    // one wire pitch per requester.
    const double local_wire_um = r * tech.wirePitchUm;

    // Request line i fans out to the (R-1) first-level NOR gates that
    // compare it against every other requester.
    cReq_ = (r > 1 ? (r - 1) : 1) * cg(tech, n1) +
            cw(tech, local_wire_um);

    // A priority flip-flop output drives the two first-level NOR gates
    // of the (i, j) pair it orders, plus the flip-flop's own output
    // diffusion.
    cPri_ = 2.0 * cg(tech, n1) + ff_.flipCap();

    // Internal node between NOR levels: NOR1 output diffusion plus one
    // NOR2 input gate.
    cInt_ = cd(tech, n1) + cg(tech, n2);

    // Grant line: NOR2 output diffusion, the buffering inverter, local
    // wire, and — since grant drives the crossbar configuration — the
    // crossbar control line (E_xb_ctr folded into E_arb, Appendix).
    cGnt_ = cd(tech, n2) + ca(tech, inv) + cw(tech, local_wire_um) +
            params.crossbarControlCapF;

    if (params.kind == ArbiterKind::Queuing) {
        // Queue of R entries, each holding a requester id of
        // ceil(log2 R) bits (at least 1).
        const unsigned id_bits =
            std::max<unsigned>(1, r <= 1 ? 1 : std::bit_width(r - 1));
        queueFifo_ = std::make_unique<BufferModel>(
            tech, BufferParams{r, id_bits, 1, 1});
    }

    // Cache the per-event energy terms: the capacitances are fixed and
    // arbitrationEnergy runs once per arbitration, every cycle.
    eReq_ = tech.switchEnergy(cReq_);
    eInt_ = tech.switchEnergy(cInt_);
    ePri_ = tech.switchEnergy(cPri_);
    eGnt_ = tech.switchEnergy(cGnt_);
}

unsigned
ArbiterModel::priorityFlipFlops() const
{
    const unsigned r = params_.requests;
    switch (params_.kind) {
      case ArbiterKind::Matrix:
        return r * (r - 1) / 2;
      case ArbiterKind::RoundRobin:
        return r;
      case ArbiterKind::Queuing:
        return 0;
    }
    return 0;
}

double
ArbiterModel::arbitrationEnergy(unsigned delta_req,
                                unsigned delta_pri) const
{
    assert(delta_req <= params_.requests);
    assert(delta_pri <= std::max(priorityFlipFlops(), 2u) ||
           params_.kind == ArbiterKind::Queuing);

    const double e_req = eReq_;
    const double e_int = eInt_;
    const double e_pri = ePri_;
    const double e_gnt = eGnt_;

    if (params_.kind == ArbiterKind::Queuing) {
        // A queuing arbitration is one FIFO read (pop the winner) plus
        // the request lines that changed writing into the queue, plus
        // the grant (and crossbar control) energy.
        const unsigned id_bits = queueFifo_->params().flitBits;
        double e = e_gnt + queueFifo_->readEnergy();
        e += delta_req > 0
                 ? queueFifo_->writeEnergy(id_bits / 2, id_bits / 2)
                 : 0.0;
        return e;
    }

    // Each changed request line toggles its line and the internal
    // nodes of the NOR gates it feeds; the single grant and its
    // crossbar control line always switch (no activity factor).
    const double e = delta_req * (e_req + e_int) + delta_pri * e_pri +
                     e_gnt;
    return e;
}

double
ArbiterModel::avgArbitrationEnergy() const
{
    const unsigned r = params_.requests;
    switch (params_.kind) {
      case ArbiterKind::Matrix:
        // Half the request lines toggle; a grant flips the winner's
        // priority row/column: R-1 flip-flops.
        return arbitrationEnergy(r / 2, r > 0 ? r - 1 : 0);
      case ArbiterKind::RoundRobin:
        // Token moves: exactly 2 flip-flops toggle.
        return arbitrationEnergy(r / 2, std::min(r, 2u));
      case ArbiterKind::Queuing:
        return arbitrationEnergy(1, 0);
    }
    return 0.0;
}

} // namespace orion::power
