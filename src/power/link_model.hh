/**
 * @file
 * Link power models (paper Sections 3.2 and 4.2/4.4).
 *
 * The paper distinguishes two very different link regimes:
 *
 *  - **On-chip links** are plain wires: power is capacitive and
 *    traffic-sensitive. The paper's Section 4.2 uses 1.08 pF per 3 mm
 *    in 0.1 um technology; E_link is computed from link capacitance
 *    and link switching activity reported by the simulator.
 *
 *  - **Chip-to-chip links** (e.g. the IBM InfiniBand 12X, 3 W at
 *    30 Gb/s) use differential signaling and "consume almost the same
 *    power regardless of link activity" — modeled as a constant power
 *    draw per link, independent of traffic (Section 4.4).
 */

#ifndef ORION_POWER_LINK_MODEL_HH
#define ORION_POWER_LINK_MODEL_HH

#include "tech/tech_node.hh"

namespace orion::power {

/** Traffic-sensitive capacitive on-chip link. */
class OnChipLinkModel
{
  public:
    /**
     * @param tech       technology node (supplies Vdd and default
     *                   per-um wire capacitance)
     * @param length_um  physical link length in um
     * @param width      number of data wires (flit width)
     */
    OnChipLinkModel(const tech::TechNode& tech, double length_um,
                    unsigned width);

    double lengthUm() const { return lengthUm_; }
    unsigned width() const { return width_; }

    /** Capacitance of a single wire of the link, in farads. */
    double wireCap() const { return cWire_; }

    /**
     * Energy of one flit traversal: each toggling wire charges its
     * full wire capacitance plus its driver.
     *
     * @param delta_bits  wires that toggle vs. the previous flit
     */
    double traversalEnergy(unsigned delta_bits) const;

    /** Average-activity traversal (half the wires toggle). */
    double avgTraversalEnergy() const;

  private:
    tech::TechNode tech_;
    double lengthUm_;
    unsigned width_;
    double cWire_;
    /** switchEnergy(cWire_), cached — one traversal per link cycle. */
    double eWire_;
};

/** Traffic-insensitive constant-power chip-to-chip link. */
class ChipToChipLinkModel
{
  public:
    /**
     * @param power_watts  constant electrical power of the link
     *                     (default 3 W per the IBM InfiniBand 12X
     *                     datasheet figure used in Section 4.4)
     */
    explicit ChipToChipLinkModel(double power_watts = 3.0);

    double powerWatts() const { return powerWatts_; }

    /**
     * Energy consumed over @p cycles clock cycles at period
     * @p cycle_period_s — constant regardless of traffic.
     */
    double energyOver(double cycle_period_s, double cycles) const;

  private:
    double powerWatts_;
};

} // namespace orion::power

#endif // ORION_POWER_LINK_MODEL_HH
