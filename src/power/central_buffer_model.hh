/**
 * @file
 * Hierarchical power model for central buffers (paper Section 3.2).
 *
 * "Central buffers are implemented as pipelined shared memories,
 * essentially regular SRAM banks connected by pipeline registers, with
 * two crossbars facilitating the pipelined data I/O. We reused our FIFO
 * buffer model for the SRAM banks, and the flip-flop subcomponent
 * models from our arbiter model for the pipeline registers. The two
 * crossbars are modeled with our crossbar power model."
 *
 * This class is exactly that composition: it owns a BufferModel (per
 * bank), a FlipFlopModel (pipeline registers), and two CrossbarModels
 * (port-to-bank write fabric, bank-to-port read fabric), and derives
 * per-operation write/read energies from them.
 */

#ifndef ORION_POWER_CENTRAL_BUFFER_MODEL_HH
#define ORION_POWER_CENTRAL_BUFFER_MODEL_HH

#include "power/buffer_model.hh"
#include "power/crossbar_model.hh"
#include "power/flipflop_model.hh"
#include "tech/tech_node.hh"

namespace orion::power {

/** Architectural parameters of a pipelined shared central buffer. */
struct CentralBufferParams
{
    /** Number of SRAM banks (each one flit wide). */
    unsigned banks;
    /** Rows per bank ("chunks"). */
    unsigned rowsPerBank;
    /** Flit width in bits. */
    unsigned flitBits;
    /** Read ports into the shared memory. */
    unsigned readPorts;
    /** Write ports into the shared memory. */
    unsigned writePorts;
    /** Router ports the I/O crossbars connect to. */
    unsigned routerPorts;
    /** Pipeline depth of the shared-memory datapath. */
    unsigned pipelineStages = 2;
};

/** Central buffer power model (hierarchical composition). */
class CentralBufferModel
{
  public:
    CentralBufferModel(const tech::TechNode& tech,
                       const CentralBufferParams& params);

    const CentralBufferParams& params() const { return params_; }

    /** The reused per-bank SRAM model. */
    const BufferModel& bankModel() const { return bank_; }
    /** The write-side crossbar (router ports -> write ports). */
    const CrossbarModel& writeCrossbar() const { return writeXbar_; }
    /** The read-side crossbar (read ports -> router ports). */
    const CrossbarModel& readCrossbar() const { return readXbar_; }

    /** Total area: banks + both crossbars (um^2). */
    double areaUm2() const;

    /**
     * Energy of writing one flit into the central buffer: write-side
     * crossbar traversal + pipeline register flips + bank write.
     *
     * @param delta_bits  toggling datapath wires vs. the previous flit
     *                    on this path (used for crossbar + registers)
     * @param delta_bw    switching write bitlines in the bank
     * @param delta_bc    flipped memory cells in the bank
     */
    double writeEnergy(unsigned delta_bits, unsigned delta_bw,
                       unsigned delta_bc) const;

    /**
     * Energy of reading one flit: bank read + pipeline register flips
     * + read-side crossbar traversal.
     */
    double readEnergy(unsigned delta_bits) const;

    /** Average-activity variants for static estimates. */
    double avgWriteEnergy() const;
    double avgReadEnergy() const;

  private:
    tech::TechNode tech_;
    CentralBufferParams params_;
    BufferModel bank_;
    FlipFlopModel ff_;
    CrossbarModel writeXbar_;
    CrossbarModel readXbar_;
};

} // namespace orion::power

#endif // ORION_POWER_CENTRAL_BUFFER_MODEL_HH
