#include "power/flipflop_model.hh"

#include "tech/capacitance.hh"
#include "tech/transistor.hh"

namespace orion::power {

using tech::Role;
using tech::Transistor;
using tech::ca;
using tech::cg;

FlipFlopModel::FlipFlopModel(const tech::TechNode& tech)
    : tech_(tech)
{
    const Transistor inv = defaultTransistor(tech, Role::FlipFlopInverter);
    // Master + slave latch: two cross-coupled inverter pairs; a data
    // flip swings the internal node of each pair (2 inverters' worth of
    // gate + diffusion capacitance per latch).
    cFlip_ = 2.0 * 2.0 * ca(tech, inv);
    // Clock drives the four transmission/clocked transistors' gates.
    cClock_ = 4.0 * cg(tech, inv);
}

double
FlipFlopModel::flipEnergy() const
{
    return tech_.switchEnergy(cFlip_);
}

double
FlipFlopModel::clockEnergy() const
{
    // Both clock edges in a cycle: one full charge/discharge pair.
    return 2.0 * tech_.switchEnergy(cClock_);
}

} // namespace orion::power
