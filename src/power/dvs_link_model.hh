/**
 * @file
 * Dynamic-voltage-scaled link power model.
 *
 * The first architectural power-saving technique built on Orion-style
 * estimates was dynamic voltage scaling of network links (Shang, Peh,
 * Jha — the paper's reference [17], cited as the motivating use case
 * for fast architectural power simulation). This model extends the
 * on-chip link model with a set of discrete voltage/frequency levels:
 * traversal energy scales with V^2 (E = 1/2 C V^2 per toggling wire),
 * and each level carries the relative bandwidth it sustains.
 *
 * The matching runtime policy lives in net::DvsLinkMonitor.
 */

#ifndef ORION_POWER_DVS_LINK_MODEL_HH
#define ORION_POWER_DVS_LINK_MODEL_HH

#include <vector>

#include "power/link_model.hh"
#include "tech/tech_node.hh"

namespace orion::power {

/** One DVS operating point. */
struct DvsLevel
{
    /** Supply voltage at this level, in volts. */
    double vdd;
    /** Link bandwidth relative to the nominal level (0, 1]. */
    double bandwidthScale;
};

/** A voltage-scalable on-chip link. */
class DvsLinkModel
{
  public:
    /**
     * @param tech       technology node (nominal Vdd)
     * @param length_um  link length
     * @param width      link width in wires
     * @param levels     operating points, highest voltage first; the
     *                   first level must be the nominal voltage
     */
    DvsLinkModel(const tech::TechNode& tech, double length_um,
                 unsigned width, std::vector<DvsLevel> levels);

    /** Default three-point ladder: 100% / 83% / 67% of nominal Vdd
     * with proportional bandwidth. */
    static std::vector<DvsLevel> defaultLevels(double nominal_vdd);

    const OnChipLinkModel& base() const { return base_; }
    unsigned numLevels() const
    {
        return static_cast<unsigned>(levels_.size());
    }
    const DvsLevel& level(unsigned i) const { return levels_[i]; }

    /**
     * Energy of one flit traversal at level @p level: the nominal
     * capacitive energy scaled by (V_level / V_nominal)^2.
     */
    double traversalEnergy(unsigned delta_bits, unsigned level) const;

    /** Energy at the nominal (highest) level. */
    double
    nominalTraversalEnergy(unsigned delta_bits) const
    {
        return traversalEnergy(delta_bits, 0);
    }

  private:
    OnChipLinkModel base_;
    std::vector<DvsLevel> levels_;
    /** Precomputed (V_l / V_0)^2 factors. */
    std::vector<double> energyScale_;
};

} // namespace orion::power

#endif // ORION_POWER_DVS_LINK_MODEL_HH
