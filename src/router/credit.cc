#include "router/credit.hh"

#include <limits>

#include "core/check.hh"

namespace orion::router {

CreditCounter::CreditCounter(unsigned vcs, unsigned depth, bool unlimited)
    : count_(vcs, depth), depth_(vcs, depth), unlimited_(unlimited)
{
    assert(vcs > 0);
    assert(unlimited || depth > 0);
}

unsigned
CreditCounter::depth(unsigned vc) const
{
    assert(vc < depth_.size());
    return depth_[vc];
}

unsigned
CreditCounter::available(unsigned vc) const
{
    assert(vc < count_.size());
    if (unlimited_)
        return std::numeric_limits<unsigned>::max();
    return count_[vc];
}

bool
CreditCounter::empty(unsigned vc) const
{
    assert(vc < count_.size());
    return unlimited_ || count_[vc] == depth_[vc];
}

unsigned
CreditCounter::emptyVcs() const
{
    if (unlimited_)
        return static_cast<unsigned>(count_.size());
    unsigned n = 0;
    for (std::size_t v = 0; v < count_.size(); ++v)
        if (count_[v] == depth_[v])
            ++n;
    return n;
}

void
CreditCounter::consume(unsigned vc)
{
    assert(vc < count_.size());
    if (unlimited_)
        return;
    ORION_CHECK(count_[vc] > 0,
                "credit underflow: consume on exhausted VC " << vc
                    << " (depth " << depth_[vc] << ")");
    --count_[vc];
}

void
CreditCounter::restore(unsigned vc)
{
    assert(vc < count_.size());
    if (unlimited_)
        return;
    ORION_CHECK(count_[vc] < depth_[vc],
                "credit overflow: restore beyond depth "
                    << depth_[vc] << " on VC " << vc);
    ++count_[vc];
}

void
CreditCounter::debugCorruptCredit(unsigned vc)
{
    assert(vc < count_.size());
    if (count_[vc] > 0)
        --count_[vc];
}

} // namespace orion::router
