#include "router/credit.hh"

namespace orion::router {

CreditCounter::CreditCounter(unsigned vcs, unsigned depth, bool unlimited)
    : count_(vcs, depth), depth_(vcs, depth), unlimited_(unlimited)
{
    assert(vcs > 0);
    assert(unlimited || depth > 0);
}

unsigned
CreditCounter::emptyVcs() const
{
    if (unlimited_)
        return static_cast<unsigned>(count_.size());
    unsigned n = 0;
    for (std::size_t v = 0; v < count_.size(); ++v)
        if (count_[v] == depth_[v])
            ++n;
    return n;
}

void
CreditCounter::debugCorruptCredit(unsigned vc)
{
    assert(vc < count_.size());
    if (count_[vc] > 0)
        --count_[vc];
}

} // namespace orion::router
