/**
 * @file
 * The input-buffered crossbar router — the paper's wormhole and
 * virtual-channel router microarchitectures in one parameterized
 * module (Section 2.2: "wormhole and virtual-channel networks share
 * exactly the same modules but with differently configured functional
 * and timing behavior").
 *
 * Pipeline (per the Peh-Dally router delay model the paper adopts):
 *  - Virtual-channel mode (vaEnabled): 3 stages — VC allocation (VA),
 *    switch allocation (SA), crossbar traversal (ST).
 *  - Wormhole mode (!vaEnabled, vcs = 1): 2 stages — switch
 *    arbitration (SA, which also claims the output port for the
 *    packet), crossbar traversal (ST).
 *
 * Within one cycle() call the stages run back-to-front (credits, ST,
 * SA, VA, buffer write) so that each pipeline stage consumes state
 * produced in the *previous* cycle, yielding exact n-stage timing.
 *
 * Every stage emits the power events of the paper's walkthrough:
 * buffer write on arrival, arbitration at SA (and VC allocation at
 * VA), buffer read on switch grant, crossbar traversal at ST, link
 * traversal on departure, credit transfer upstream.
 */

#ifndef ORION_ROUTER_VC_ROUTER_HH
#define ORION_ROUTER_VC_ROUTER_HH

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "router/arbiter.hh"
#include "router/crossbar_switch.hh"
#include "router/fifo.hh"
#include "router/router.hh"
#include "router/vc_state.hh"

namespace orion::router {

/** Input-buffered crossbar router (wormhole or virtual-channel). */
class CrossbarRouter : public Router
{
  public:
    /**
     * @param va_enabled  true for the 3-stage virtual-channel
     *                    pipeline, false for the 2-stage wormhole one
     */
    CrossbarRouter(std::string name, int node, const RouterParams& params,
                   sim::EventBus& bus, bool va_enabled);

    void cycle(sim::Cycle now) override;

    /// @name Introspection (tests and debugging)
    /// @{
    const FlitFifo& inputFifo(unsigned port, unsigned vc) const;
    bool outVcBusy(unsigned port, unsigned vc) const;
    bool vaEnabled() const { return vaEnabled_; }
    /** Flits currently buffered across all input FIFOs. */
    std::size_t bufferedFlits() const;
    /** Flits sitting in the SA -> ST pipeline latches. */
    std::size_t latchedFlits() const;
    /** bufferedFlits() + latchedFlits() (flit-conservation audit). */
    std::size_t residentFlits() const override;
    std::size_t latchedForOutput(unsigned port,
                                 unsigned vc) const override;

    /**
     * Test-only corruption hook: silently discard the head flit of
     * input FIFO (@p port, @p vc) with no credit return and no
     * delivery, so the flit-conservation audit can prove it detects
     * lost flits. The FIFO must not be empty.
     */
    void debugDropFlit(unsigned port, unsigned vc);
    /// @}

    /// @name Deadlock-detector hooks
    /// @{
    bool vcWaitState(unsigned port, unsigned vc,
                     VcWaitState& out) const override;
    bool poisonBlockedWorm(unsigned port, unsigned vc,
                           sim::Cycle now) override;
    /// @}

  private:
    /** A switch request an input port puts forward this cycle. */
    struct Candidate
    {
        unsigned vc;
        unsigned outPort;
        unsigned outVc;
        /** Wormhole: claim the output VC when the grant lands. */
        bool claimOnGrant;
    };

    struct StEntry
    {
        Flit flit;
        unsigned inPort;
    };

    void stStage(sim::Cycle now);
    void saStage(sim::Cycle now);
    void vaStage(sim::Cycle now);
    void bwStage(sim::Cycle now);

    /** Pick this cycle's switch request for input port @p p. */
    std::optional<Candidate> pickCandidate(unsigned p);

    /** VC index range [first, last) for dateline class @p cls. */
    std::pair<unsigned, unsigned> classVcRange(unsigned cls) const;

    /** SA requester index of input @p p at output @p o (u-turn-free). */
    static unsigned
    saRequester(unsigned p, unsigned o)
    {
        return p < o ? p : p - 1;
    }

    /** VA requester index of input VC (p, v) at output @p o. */
    unsigned
    vaRequester(unsigned p, unsigned v, unsigned o) const
    {
        return saRequester(p, o) * params_.vcs + v;
    }

    /// @name Struct-of-arrays per-VC state
    /// All [port][vc] state lives in flat arrays indexed
    /// port * vcs + vc, so the allocation stages' scans (every VC of
    /// every port, each cycle) walk contiguous memory instead of
    /// chasing an outer vector of inner vectors.
    /// @{
    unsigned
    vcIndex(unsigned p, unsigned v) const
    {
        return p * params_.vcs + v;
    }

    FlitFifo& fifoAt(unsigned p, unsigned v)
    {
        return fifos_[vcIndex(p, v)];
    }
    VcState& vcStateAt(unsigned p, unsigned v)
    {
        return vcState_[vcIndex(p, v)];
    }
    /// @}

    bool vaEnabled_;
    CrossbarSwitch xbar_;

    /** Input buffers, flattened [port * vcs + vc]. */
    std::vector<FlitFifo> fifos_;
    /** Input VC control state, flattened [port * vcs + vc]. */
    std::vector<VcState> vcState_;
    /** Output VC occupancy, flattened [port * vcs + vc] (0/1). */
    std::vector<std::uint8_t> outVcBusy_;
    /** Per-output switch arbiter (R = ports-1, u-turn excluded). */
    std::vector<std::unique_ptr<Arbiter>> saArb_;
    /** Per-output-VC allocation arbiter, flattened [port * vcs + vc]. */
    std::vector<std::unique_ptr<Arbiter>> vaArb_;
    /** Round-robin VC scan start per input port. */
    std::vector<unsigned> rrNextVc_;
    /** Rotating free-VC scan start per output port. */
    std::vector<unsigned> vaScan_;
    /** SA -> ST pipeline latch, one slot per output port. */
    std::vector<std::optional<StEntry>> stLatch_;

    /** Flits buffered per input port (fast idle-port skip). */
    std::vector<unsigned> portFlits_;
    /** Total buffered flits (fast idle-router skip). */
    unsigned totalFlits_ = 0;
    /** Occupied SA -> ST latches (fast idle-router skip). */
    unsigned latchedCount_ = 0;

    /// @name Per-cycle workspaces (members to avoid re-allocation)
    /// @{
    std::vector<std::optional<Candidate>> saCand_;
    std::vector<bool> saReqs_;
    /** VA bids, flattened [outPort * vcs + outVc]. */
    std::vector<std::vector<std::pair<unsigned, unsigned>>> vaBids_;
    std::vector<bool> vaReqs_;
    /// @}
};

} // namespace orion::router

#endif // ORION_ROUTER_VC_ROUTER_HH
