/**
 * @file
 * Router base class: port/link plumbing and credit bookkeeping shared
 * by all router microarchitectures (wormhole, virtual-channel,
 * central-buffered).
 *
 * Port convention (k-ary n-cube): for dimension d, port 2d is the
 * "plus" direction, port 2d+1 the "minus" direction; the last port
 * (index 2n) is the local injection/ejection port.
 */

#ifndef ORION_ROUTER_ROUTER_HH
#define ORION_ROUTER_ROUTER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "router/arbiter.hh"
#include "router/credit.hh"
#include "router/fault_hooks.hh"
#include "router/link.hh"
#include "sim/event.hh"
#include "sim/module.hh"

namespace orion::router {

/**
 * Deadlock-avoidance discipline for rings (tori). The paper is silent
 * on torus deadlock; see DESIGN.md for the substitution rationale.
 */
enum class DeadlockMode
{
    /** No avoidance — faithful to the paper's description. */
    None,
    /**
     * Bubble rule: a head flit may enter a new ring only if the
     * downstream buffer retains space for two full packets, and may
     * continue within a ring only with space for one full packet.
     * Requires buffer depth >= 2 packets; suited to wormhole routers
     * with deep single buffers.
     */
    Bubble,
    /**
     * Dateline VC classes: packets whose ring traversal crosses the
     * wraparound edge use the upper half of the VCs for that ring,
     * others the lower half (classes are precomputed in the source
     * route). Requires >= 2 VCs.
     */
    Dateline,
};

/** Common architectural parameters of a router. */
struct RouterParams
{
    /** Total ports, including the local injection/ejection port. */
    unsigned ports;
    /** Virtual channels per input port (1 for wormhole). */
    unsigned vcs;
    /** Buffer depth per VC, in flits. */
    unsigned bufferDepth;
    /** Flit width in bits. */
    unsigned flitBits;
    /** Packet length in flits (for bubble-rule space checks). */
    unsigned packetLength;
    /** Ring deadlock-avoidance discipline. */
    DeadlockMode deadlock = DeadlockMode::None;
    /** Behavioural arbiter style for all of the router's arbiters. */
    ArbiterKind arbiterKind = ArbiterKind::Matrix;
    /**
     * Speculative VC router pipeline (Peh-Dally [15], the paper's
     * router delay model source): VC allocation and switch allocation
     * run in the same cycle, so a head flit granted a VC can traverse
     * the switch one cycle earlier — a 2-stage VC pipeline. Ignored
     * by wormhole and central-buffer routers.
     */
    bool speculative = false;

    /** Index of the local port (always the last one). */
    unsigned localPort() const { return ports - 1; }
};

/** Base class wiring ports to links and tracking output credits. */
class Router : public sim::Module
{
  public:
    Router(std::string name, int node, const RouterParams& params,
           sim::EventBus& bus);

    const RouterParams& params() const { return params_; }

    /**
     * Attach input side of port @p port: flits arrive on @p in; freed
     * buffer slots are returned upstream on @p credit_return.
     * Either pointer may be null for unconnected ports (e.g. mesh
     * edges); null inputs never deliver flits.
     */
    void connectInput(unsigned port, FlitLink* in,
                      CreditLink* credit_return);

    /**
     * Attach output side of port @p port: flits leave on @p out;
     * downstream credits arrive on @p credit_in.
     *
     * @param downstream_vcs    VC count of the downstream input buffer
     * @param downstream_depth  its per-VC depth in flits
     * @param unlimited         true for ejection ports (infinite sink)
     */
    void connectOutput(unsigned port, FlitLink* out,
                       CreditLink* credit_in, unsigned downstream_vcs,
                       unsigned downstream_depth, bool unlimited);

    /** Credits available toward output @p port, VC @p vc. */
    unsigned outputCredits(unsigned port, unsigned vc) const;

    /// @name Audit / test hooks (net::NetworkAuditor, tests)
    /// @{
    /**
     * The sender-side credit counter for output @p port, or nullptr
     * for an unconnected port. Read-only network-audit access.
     */
    const CreditCounter* outputCreditCounter(unsigned port) const;

    /**
     * Flits resident inside this router (input buffers, pipeline
     * latches, central-buffer pool) — the router's contribution to the
     * network-wide flit-conservation sum.
     */
    virtual std::size_t residentFlits() const = 0;

    /**
     * Flits latched for departure through output @p port carrying
     * downstream VC @p vc — flits whose output credit is already
     * consumed but which have not yet reached the link (the crossbar
     * router's SA -> ST latch). Part of the credit-audit equation.
     */
    virtual std::size_t
    latchedForOutput(unsigned port, unsigned vc) const
    {
        (void)port;
        (void)vc;
        return 0;
    }

    /**
     * Test-only corruption hook: steal one sender-side credit for
     * output @p port, VC @p vc, with no matching flit motion. Exists
     * so the credit audit's detection power is itself testable.
     */
    void debugCorruptCredit(unsigned port, unsigned vc);

    /** Flits that ever entered this router (lifetime ledger). */
    std::uint64_t flitsArrived() const { return flitsArrived_; }
    /** Flits that ever left this router (lifetime ledger). */
    std::uint64_t flitsForwarded() const { return flitsForwarded_; }
    /** Arrived flits discarded by fault screening (lifetime ledger):
     * flitsArrived_ == flitsForwarded_ + residentFlits() +
     * flitsDiscarded_ always. */
    std::uint64_t flitsDiscarded() const { return flitsDiscarded_; }

    /**
     * Credits owed upstream on input @p port for downstream VC @p vc
     * but not yet placed on the credit-return wire (the wire carries
     * one credit per cycle; fault discards can free two slots for one
     * port in a cycle). Part of the credit-audit equation.
     */
    std::size_t pendingCreditReturns(unsigned port, unsigned vc) const;
    /// @}

    /// @name Telemetry counters (net::WindowedSampler reads these)
    /// @{
    /**
     * Lifetime count of switch-allocation requests that did not
     * receive a grant in their cycle — arbitration losses plus
     * requests blocked by an occupied SA->ST latch. A per-window delta
     * of this counter is the router's contention signal.
     */
    std::uint64_t saStalls() const { return saStalls_; }

    /**
     * Credits currently consumed toward downstream buffers across all
     * connected, credit-limited outputs: the router's in-flight /
     * downstream-buffered flit budget as the sender sees it.
     */
    std::size_t creditsInFlight() const;
    /// @}

    /**
     * Attach fault hooks. Must be called before the first cycle; a
     * null-hooks router runs the exact fault-free fast path.
     */
    void setFaultHooks(FaultHooks* hooks);

    /// @name Deadlock-detector hooks (net::DeadlockDetector)
    /// @{
    /**
     * Snapshot of one input VC's wait-for state, read by the runtime
     * deadlock detector to build the wait-for graph. Only routers with
     * per-VC allocation state (the crossbar VC router) fill it in.
     */
    struct VcWaitState
    {
        /** The VC holds at least one buffered flit. */
        bool hasFront = false;
        /** The front flit is a worm head (VC not yet streaming). */
        bool frontHead = false;
        /** VC allocation phase: 0 idle, 1 waiting-for-VC, 2 active. */
        int phase = 0;
        /** Requested/held output port (valid when phase != 0). */
        unsigned outPort = 0;
        /** Held output VC (valid when phase == 2). */
        unsigned outVc = 0;
        /** Dateline VC class the head bids in (valid when phase == 1). */
        unsigned vcClass = 0;
        /** Packet occupying the VC front (valid when hasFront). */
        std::uint64_t packetId = 0;
        unsigned attempt = 0;
        sim::Cycle createdAt = 0;
    };

    /**
     * Fill @p out with the wait state of input (@p port, @p vc).
     * Returns false when this router kind exposes no such state.
     */
    virtual bool vcWaitState(unsigned port, unsigned vc,
                             VcWaitState& out) const
    {
        (void)port;
        (void)vc;
        (void)out;
        return false;
    }

    /**
     * Deadlock recovery: kill the worm whose head is parked at the
     * front of input (@p port, @p vc) — NACK its source via the fault
     * hooks, discard its buffered flits with exact credit returns, and
     * arm drop-until-tail for the part still in flight upstream.
     * Returns false when the VC front is not a head (or the router
     * kind does not support poisoning); the caller picks a different
     * victim.
     */
    virtual bool poisonBlockedWorm(unsigned port, unsigned vc,
                                   sim::Cycle now)
    {
        (void)port;
        (void)vc;
        (void)now;
        return false;
    }
    /// @}

  protected:
    /** What to do with a flit read off an input link. */
    enum class ArrivalAction
    {
        Deliver,
        Discard,
    };

    /**
     * Fault screening for a flit arriving on input @p port, called
     * only when fault hooks are attached. Applies, in order: the
     * drop-until-tail state for a killed worm, poison immunity, and
     * the CRC check. May discard the flit (credit still returned
     * upstream, ledgered in flitsDiscarded_) or rewrite it into a
     * poison tail; returns what the caller should do with it.
     */
    ArrivalAction screenArrival(unsigned port, Flit& flit,
                                sim::Cycle now);

    /**
     * Return one credit upstream on input @p port for VC @p vc,
     * deferring through pendingCredits_ when the wire is already
     * carrying a credit this cycle. All credit returns go through
     * here so deferred and fresh credits stay FIFO per port.
     */
    void sendCreditUpstream(unsigned port, unsigned vc, sim::Cycle now);

    /** Put deferred credit returns on idle credit wires (one per port
     * per cycle). Call at the top of cycle(); no-op without faults. */
    void drainPendingCredits(sim::Cycle now);

    /** Drain credit-in channels and restore output credit counters. */
    void receiveCredits();

    /** True if @p port is the local ejection port. */
    bool isLocalPort(unsigned port) const;

    /**
     * Arm the drop-until-tail screen for input (@p port, @p vc) so the
     * still-in-flight remainder of attempt @p attempt of packet
     * @p packet_id is discarded on arrival (used by deadlock recovery
     * when the victim worm's tail has not reached this router yet).
     * Requires fault hooks; no-op otherwise.
     */
    void armDropUntilTail(unsigned port, unsigned vc,
                          std::uint64_t packet_id, unsigned attempt);

    /**
     * Minimum downstream space the bubble rule demands for a head flit
     * leaving via @p out_port (1 packet within a ring, 2 when entering
     * a new ring); 1 flit when bubble mode is off or the port is
     * local.
     */
    unsigned requiredSpace(bool is_head, bool new_ring,
                           unsigned out_port) const;

    RouterParams params_;
    sim::EventBus& bus_;

    std::vector<FlitLink*> inLinks_;
    std::vector<CreditLink*> creditReturnLinks_;
    std::vector<FlitLink*> outLinks_;
    std::vector<CreditLink*> creditInLinks_;
    std::vector<std::unique_ptr<CreditCounter>> outputCredits_;

    /** Lifetime arrival/departure ledgers (conservation audit):
     * flitsArrived_ == flitsForwarded_ + residentFlits() +
     * flitsDiscarded_ always. */
    std::uint64_t flitsArrived_ = 0;
    std::uint64_t flitsForwarded_ = 0;
    std::uint64_t flitsDiscarded_ = 0;

    /** Ungranted switch-allocation requests (see saStalls()). */
    std::uint64_t saStalls_ = 0;

    FaultHooks* faultHooks_ = nullptr;

    /**
     * Raised by every attached input channel (flit inputs and credit
     * returns) when a message becomes readable; cleared at the top of
     * an active cycle. Routers combine it with their resident-state
     * counters for the skip-quiescent fast path: a router with no
     * buffered flits, no latched outputs, no deferred credits and no
     * raised wake flag can skip its cycle entirely — nothing it would
     * compute or emit differs from not running at all.
     */
    bool inputPending_ = false;

    /** Deferred upstream credits across all ports (size of the
     * pendingCredits_ queues; part of the quiescence test). */
    std::size_t pendingCreditTotal_ = 0;

  private:
    /** Drop-until-tail state per (input port, VC): set when a worm's
     * head (or an upstream poison substitute) is killed so the rest of
     * that attempt's flits are discarded on arrival. */
    struct DropState
    {
        bool active = false;
        std::uint64_t packetId = 0;
        unsigned attempt = 0;
    };

    /** Ledger + credit return + hook notification for one discarded
     * arrival. */
    void discardArrival(unsigned port, const Flit& flit,
                        sim::Cycle now);

    std::vector<std::vector<DropState>> dropState_;
    /** Credits owed upstream but not yet on the wire, per input port
     * (FIFO; drained one per port per cycle). */
    std::vector<std::deque<Credit>> pendingCredits_;
};

} // namespace orion::router

#endif // ORION_ROUTER_ROUTER_HH
