#include "router/vc_state.hh"

// VcState is plain data; this translation unit anchors the header.
