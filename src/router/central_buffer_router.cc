#include "router/central_buffer_router.hh"

#include <cassert>

namespace orion::router {

CentralBufferRouter::CentralBufferRouter(
    std::string name, int node, const RouterParams& params,
    const CentralBufferRouterParams& cb, sim::EventBus& bus)
    : Router(std::move(name), node, params, bus),
      cb_(cb),
      currentWrite_(params.ports, nullptr),
      freeSlots_(cb.capacityFlits),
      rowContents_(cb.capacityFlits, power::BitVec(params.flitBits)),
      writeRow_(0)
{
    assert(params.vcs == 1 && "CB router input buffers are plain FIFOs");
    assert(cb.capacityFlits >= params.packetLength);
    assert(cb.writePorts >= 1 && cb.readPorts >= 1);

    inputFifos_.reserve(params.ports);
    for (unsigned p = 0; p < params.ports; ++p) {
        inputFifos_.emplace_back(bus, node, static_cast<int>(p),
                                 params.bufferDepth, params.flitBits);
    }
    outputQueues_.resize(params.ports);

    writeArb_.reserve(cb.writePorts);
    for (unsigned w = 0; w < cb.writePorts; ++w)
        writeArb_.push_back(makeArbiter(params.arbiterKind,
                                        params.ports));
    readArb_.reserve(cb.readPorts);
    for (unsigned r = 0; r < cb.readPorts; ++r)
        readArb_.push_back(makeArbiter(params.arbiterKind,
                                       params.ports));

    lastWritten_.assign(cb.writePorts, power::BitVec(params.flitBits));
    lastRead_.assign(cb.readPorts, power::BitVec(params.flitBits));
}

const FlitFifo&
CentralBufferRouter::inputFifo(unsigned port) const
{
    assert(port < params_.ports);
    return inputFifos_[port];
}

std::size_t
CentralBufferRouter::outputQueueLength(unsigned port) const
{
    assert(port < params_.ports);
    return outputQueues_[port].size();
}

std::size_t
CentralBufferRouter::bufferedFlits() const
{
    std::size_t n = 0;
    for (const auto& fifo : inputFifos_)
        n += fifo.size();
    return n;
}

std::size_t
CentralBufferRouter::pooledFlits() const
{
    std::size_t n = 0;
    for (const auto& q : outputQueues_)
        for (const auto& pkt : q)
            n += pkt->flits.size();
    return n;
}

std::size_t
CentralBufferRouter::reservedSlots() const
{
    std::size_t n = 0;
    for (const auto& q : outputQueues_) {
        for (const auto& pkt : q) {
            if (!pkt->complete)
                n += pkt->length - pkt->written;
        }
    }
    return n;
}

std::size_t
CentralBufferRouter::residentFlits() const
{
    return bufferedFlits() + pooledFlits();
}

void
CentralBufferRouter::cycle(sim::Cycle now)
{
    // Skip-quiescent fast path (see CrossbarRouter::cycle): nothing
    // buffered, pooled or admitted, no deferred credits, and no
    // readable input message means every stage is a no-op. The
    // emptiness walks are O(ports) loads on an idle router — far
    // cheaper than the per-stage request-vector setup they replace.
    if (!inputPending_ && pendingCreditTotal_ == 0 && quiescent())
        return;
    inputPending_ = false;
    receiveCredits();
    drainPendingCredits(now);
    readStage(now);
    writeStage(now);
    bwStage(now);
}

bool
CentralBufferRouter::quiescent() const
{
    for (const auto& fifo : inputFifos_)
        if (!fifo.empty())
            return false;
    // Empty output queues imply no pooled flits and no admitted
    // packets mid-write (currentWrite_ points into queue entries).
    for (const auto& q : outputQueues_)
        if (!q.empty())
            return false;
    return true;
}

void
CentralBufferRouter::readStage(sim::Cycle now)
{
    const unsigned ports = params_.ports;
    std::vector<bool> used(ports, false);

    for (unsigned r = 0; r < cb_.readPorts; ++r) {
        std::vector<bool> reqs(ports, false);
        bool any = false;
        for (unsigned o = 0; o < ports; ++o) {
            if (used[o] || outputQueues_[o].empty())
                continue;
            if (faultHooks_ && faultHooks_->portStalled(node(), o, now))
                continue;
            const CbPacket& pkt = *outputQueues_[o].front();
            if (pkt.flits.empty())
                continue;
            const auto& [flit, ready_at] = pkt.flits.front();
            if (ready_at > now)
                continue;
            const unsigned need = requiredSpace(
                flit.head,
                flit.head ? flit.routeHop().newRing : false, o);
            if (outputCredits(o, 0) < need)
                continue;
            reqs[o] = true;
            any = true;
        }
        if (!any)
            continue;

        const ArbitrationResult res = readArb_[r]->arbitrate(reqs);
        assert(res.winner >= 0);
        const auto o = static_cast<unsigned>(res.winner);
        used[o] = true;
        bus_.emit({sim::EventType::Arbitration, node(),
                   static_cast<int>(ports + cb_.writePorts + r),
                   res.deltaReq, res.deltaPri, now});

        CbPacket& pkt = *outputQueues_[o].front();
        Flit flit = std::move(pkt.flits.front().first);
        pkt.flits.pop_front();
        ++freeSlots_;

        const unsigned delta =
            power::hammingDistance(flit.payload, lastRead_[r]);
        lastRead_[r] = flit.payload;
        bus_.emit({sim::EventType::CentralBufferRead, node(),
                   static_cast<int>(r), delta, 0, now});

        outputCredits_[o]->consume(0);
        flit.vc = 0;
        if (flit.hop + 1 < flit.packet->route.size())
            ++flit.hop;
        const bool was_tail = flit.tail;

        assert(outLinks_[o] && "flit routed to unconnected output");
        outLinks_[o]->send(std::move(flit), bus_, now);
        ++flitsForwarded_;

        if (was_tail) {
            assert(pkt.complete || pkt.flits.empty());
            outputQueues_[o].pop_front();
        }
    }
}

void
CentralBufferRouter::writeStage(sim::Cycle now)
{
    const unsigned ports = params_.ports;
    // Eligibility is re-evaluated per write port: an earlier port's
    // admission shrinks the pool, which can disqualify a later head.
    std::vector<bool> granted(ports, false);
    const auto eligible = [&](unsigned p) {
        if (granted[p] || inputFifos_[p].empty())
            return false;
        const Flit& front = inputFifos_[p].front();
        if (front.head) {
            // Virtual cut-through admission: room for the whole
            // packet.
            assert(!currentWrite_[p]);
            return freeSlots_ >= front.packet->length;
        }
        return currentWrite_[p] != nullptr;
    };

    for (unsigned w = 0; w < cb_.writePorts; ++w) {
        std::vector<bool> reqs(ports, false);
        bool pending = false;
        for (unsigned p = 0; p < ports; ++p) {
            reqs[p] = eligible(p);
            pending = pending || reqs[p];
        }
        if (!pending)
            break;

        const ArbitrationResult res = writeArb_[w]->arbitrate(reqs);
        assert(res.winner >= 0);
        const auto p = static_cast<unsigned>(res.winner);
        granted[p] = true;
        bus_.emit({sim::EventType::Arbitration, node(),
                   static_cast<int>(ports + w), res.deltaReq,
                   res.deltaPri, now});

        Flit flit = inputFifos_[p].read(now);
        sendCreditUpstream(p, 0, now);

        if (flit.head) {
            const unsigned o = flit.routeHop().port;
            assert(o != p && "u-turn in route");
            assert(freeSlots_ >= flit.packet->length);
            freeSlots_ -= flit.packet->length;
            auto pkt = std::make_unique<CbPacket>();
            pkt->length = flit.packet->length;
            currentWrite_[p] = pkt.get();
            outputQueues_[o].push_back(std::move(pkt));
        }
        CbPacket* pkt = currentWrite_[p];
        assert(pkt && "body flit with no admitted packet");
        ++pkt->written;

        const unsigned delta_bits =
            power::hammingDistance(flit.payload, lastWritten_[w]);
        const unsigned delta_bc = power::flippedCells(
            flit.payload, rowContents_[writeRow_]);
        lastWritten_[w] = flit.payload;
        rowContents_[writeRow_] = flit.payload;
        writeRow_ = (writeRow_ + 1) % cb_.capacityFlits;
        bus_.emit({sim::EventType::CentralBufferWrite, node(),
                   static_cast<int>(w), delta_bits, delta_bc, now});

        const bool was_tail = flit.tail;
        pkt->flits.emplace_back(std::move(flit),
                                now + cb_.pipelineLatency);
        if (was_tail) {
            // A poison tail can truncate a worm short of its admitted
            // length: release the pool slots the missing flits
            // reserved, or they leak for the rest of the run.
            if (pkt->written < pkt->length) {
                freeSlots_ += pkt->length - pkt->written;
                pkt->length = pkt->written;
            }
            pkt->complete = true;
            currentWrite_[p] = nullptr;
        }
    }
}

void
CentralBufferRouter::bwStage(sim::Cycle now)
{
    for (unsigned p = 0; p < params_.ports; ++p) {
        FlitLink* in = inLinks_[p];
        if (!in || !in->valid())
            continue;
        Flit flit = in->read();
        if (faultHooks_ &&
            screenArrival(p, flit, now) == ArrivalAction::Discard) {
            continue;
        }
        assert(!inputFifos_[p].full() &&
               "credit discipline violated: buffer overflow");
        inputFifos_[p].write(std::move(flit), now);
        ++flitsArrived_;
    }
}

} // namespace orion::router
