#include "router/link.hh"

namespace orion::router {

FlitLink::FlitLink(int node, int component, unsigned flit_bits,
                   bool emits_traversal)
    : node_(node),
      component_(component),
      emitsTraversal_(emits_traversal),
      lastPayload_(flit_bits)
{
}

void
FlitLink::send(Flit flit, sim::EventBus& bus, sim::Cycle now)
{
    // Poison tails are exempt from faulting: corrupting one would
    // reopen a worm the receiver already closed, breaking forward
    // progress under sustained error rates.
    if (faultHooks_ && !flit.poison)
        faultHooks_->onLinkTraversal(faultLinkId_, flit, now);
    if (emitsTraversal_) {
        const unsigned delta =
            power::hammingDistance(flit.payload, lastPayload_);
        lastPayload_ = flit.payload;
        bus.emit({sim::EventType::LinkTraversal, node_, component_,
                  delta, 0, now});
    }
    write(std::move(flit));
}

CreditLink::CreditLink(int node, int component)
    : node_(node), component_(component)
{
}

void
CreditLink::send(Credit credit, sim::EventBus& bus, sim::Cycle now)
{
    bus.emit({sim::EventType::CreditTransfer, node_, component_, 0, 0,
              now});
    write(credit);
}

} // namespace orion::router
