#include "router/flit.hh"

// Flit and PacketInfo are plain data; this translation unit exists to
// anchor the header in the build.
