#include "router/flit.hh"

namespace orion::router {

std::uint32_t
payloadChecksum(const power::BitVec& payload)
{
    // splitmix64-style finalization folded over the storage words.
    // Seeding with the width keeps equal-valued vectors of different
    // widths distinct; the multiply-mix guarantees any single-bit
    // difference in any word perturbs the final value.
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ payload.width();
    for (std::size_t i = 0; i < payload.wordCount(); ++i) {
        h ^= payload.word(i);
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
    }
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

} // namespace orion::router
