/**
 * @file
 * Behavioural arbiters — the functional twins of power::ArbiterModel.
 *
 * Each arbitrate() call resolves one arbitration, updates the internal
 * priority state exactly as the modeled hardware would, and reports the
 * switching-activity deltas (changed request lines, toggled priority
 * flip-flops) the arbiter power model consumes.
 */

#ifndef ORION_ROUTER_ARBITER_HH
#define ORION_ROUTER_ARBITER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

namespace orion::router {

/**
 * Behavioural arbiter styles — mirrors the power models' kinds so a
 * router's functional arbitration matches the energy being charged.
 */
enum class ArbiterKind
{
    Matrix,
    RoundRobin,
    Queuing,
};

/** Outcome of one arbitration. */
struct ArbitrationResult
{
    /** Granted requester index, or -1 if no requests. */
    int winner;
    /** Request lines that changed since the previous arbitration. */
    unsigned deltaReq;
    /** Priority flip-flops that toggled. */
    unsigned deltaPri;
};

/** Abstract arbiter over a fixed number of requesters. */
class Arbiter
{
  public:
    explicit Arbiter(unsigned requests);
    virtual ~Arbiter() = default;

    unsigned requests() const { return requests_; }

    /**
     * Resolve one arbitration among @p reqs (size == requests()).
     * Grants exactly one of the asserted requests (or none if all are
     * false) and updates priority state.
     */
    virtual ArbitrationResult arbitrate(const std::vector<bool>& reqs) = 0;

  protected:
    /**
     * Hamming distance of @p reqs against the remembered request
     * vector, which is then updated. As a side effect the request
     * vector is packed into reqWords() (64 requesters per word), the
     * representation the arbitration inner loops run on.
     */
    unsigned requestDelta(const std::vector<bool>& reqs);

    /** @p reqs from the last requestDelta() call, bit-packed. */
    const std::vector<std::uint64_t>& reqWords() const
    {
        return reqWords_;
    }

    /** 64-bit words needed for one bit per requester. */
    static std::size_t wordsFor(unsigned requests)
    {
        return (requests + 63) / 64;
    }

    unsigned requests_;

  private:
    std::vector<std::uint64_t> reqWords_;
    std::vector<std::uint64_t> lastWords_;
};

/**
 * Matrix arbiter: a triangular matrix of priority bits encoding a
 * least-recently-served total order. The winner is the requester with
 * priority over all other requesters; on a grant the winner drops to
 * the bottom of the order (its row/column flip-flops toggle).
 */
class MatrixArbiter : public Arbiter
{
  public:
    explicit MatrixArbiter(unsigned requests);

    ArbitrationResult arbitrate(const std::vector<bool>& reqs) override;

    /** True if requester @p i currently has priority over @p j. */
    bool hasPriority(unsigned i, unsigned j) const;

  private:
    /**
     * The priority matrix, bit-packed both ways so the grant scan is
     * word-parallel: row_[i] holds the requesters i beats (bit j =
     * prio[i][j]) and col_[i] the requesters that beat i (bit j =
     * prio[j][i]). Antisymmetry is maintained as an invariant, making
     * col_ the transpose of row_; it is kept materialized because the
     * hot test "is any pending requester beating i" is one AND against
     * col_[i].
     */
    std::vector<std::uint64_t> row_;
    std::vector<std::uint64_t> col_;
};

/**
 * Round-robin arbiter: a rotating one-hot token; the winner is the
 * first asserted request at or after the token, and the token then
 * advances past the winner.
 */
class RoundRobinArbiter : public Arbiter
{
  public:
    explicit RoundRobinArbiter(unsigned requests);

    ArbitrationResult arbitrate(const std::vector<bool>& reqs) override;

    unsigned token() const { return token_; }

  private:
    unsigned token_ = 0;
};

/**
 * Queuing arbiter: requesters are served strictly in the order their
 * requests first arrived (a FIFO of requester ids, the paper's third
 * arbiter style). A requester that withdraws its request leaves the
 * queue when it reaches the front.
 */
class QueuingArbiter : public Arbiter
{
  public:
    explicit QueuingArbiter(unsigned requests);

    ArbitrationResult arbitrate(const std::vector<bool>& reqs) override;

    std::size_t queueLength() const { return queue_.size(); }

  private:
    std::deque<unsigned> queue_;
    std::vector<bool> queued_;
};

/** Construct an arbiter of the given behavioural kind. */
std::unique_ptr<Arbiter> makeArbiter(ArbiterKind kind,
                                     unsigned requests);

} // namespace orion::router

#endif // ORION_ROUTER_ARBITER_HH
