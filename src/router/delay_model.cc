#include "router/delay_model.hh"

#include <cassert>
#include <cmath>

namespace orion::router {

DelayModel::DelayModel(double clock_fo4)
    : clockFo4_(clock_fo4)
{
    assert(clock_fo4 > 0.0);
}

double
DelayModel::fo4Ps(const tech::TechNode& tech)
{
    // Standard rule of thumb: FO4 ~ 425 ps per um of drawn channel.
    return 425.0 * tech.featureUm;
}

double
DelayModel::arbiterDelayFo4(unsigned requests) const
{
    assert(requests >= 1);
    // Two-level NOR grant logic: base gate delays plus logical effort
    // growing with the log of the fan-in.
    return 3.0 + 2.5 * std::log2(static_cast<double>(requests) + 1.0);
}

double
DelayModel::vcAllocDelayFo4(unsigned ports, unsigned vcs) const
{
    assert(ports >= 2 && vcs >= 1);
    // Per-output-VC arbitration among all (ports-1) x vcs input VCs.
    return arbiterDelayFo4((ports - 1) * vcs);
}

double
DelayModel::switchAllocDelayFo4(unsigned ports) const
{
    assert(ports >= 2);
    // Request generation (2 FO4) plus per-output arbitration.
    return 2.0 + arbiterDelayFo4(ports - 1);
}

double
DelayModel::crossbarDelayFo4(unsigned ports, unsigned width) const
{
    assert(ports >= 2 && width >= 1);
    // Input driver + crosspoint + output driver, with wire RC growing
    // logarithmically thanks to repeater insertion; weak width term
    // for the wider wiring span.
    return 4.0 + 2.0 * std::log2(static_cast<double>(ports)) +
           0.5 * std::log2(static_cast<double>(width));
}

unsigned
DelayModel::stagesFor(double delay_fo4) const
{
    assert(delay_fo4 >= 0.0);
    const auto stages =
        static_cast<unsigned>(std::ceil(delay_fo4 / clockFo4_));
    return stages == 0 ? 1 : stages;
}

unsigned
DelayModel::pipelineDepth(bool has_va, unsigned ports, unsigned vcs,
                          unsigned width) const
{
    unsigned depth = 0;
    if (has_va)
        depth += stagesFor(vcAllocDelayFo4(ports, vcs));
    depth += stagesFor(switchAllocDelayFo4(ports));
    depth += stagesFor(crossbarDelayFo4(ports, width));
    return depth;
}

} // namespace orion::router
