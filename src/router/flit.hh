/**
 * @file
 * Flit and packet types.
 *
 * "A flit is the smallest unit of flow control, and is a fixed-sized
 * unit of a packet" (paper Section 3.3). Packets here are sequences of
 * flits: a head flit carrying the source route, zero or more body
 * flits, and a tail flit (the paper's experiments use 5-flit packets:
 * one head leading 4 data flits).
 *
 * Flits carry real payload bits so downstream modules can compute
 * genuine switching-activity deltas, and the source route as a list of
 * per-hop (output port, VC class) decisions — the paper uses source
 * dimension-ordered routing where "the route is encoded in a packet
 * beforehand at source".
 */

#ifndef ORION_ROUTER_FLIT_HH
#define ORION_ROUTER_FLIT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "power/activity.hh"
#include "sim/event.hh"

namespace orion::router {

/** One hop of a source route. */
struct RouteHop
{
    /** Output port to take at this hop's router. */
    std::uint8_t port;
    /**
     * VC class required on the downstream input buffer (dateline
     * deadlock avoidance); always 0 when dateline is not in use.
     */
    std::uint8_t vcClass;
    /**
     * True if this hop enters a new ring (injection or dimension
     * change) — used by bubble flow control, which demands space for
     * two packets when entering a ring and one when continuing.
     */
    bool newRing;
};

/** Immutable per-packet data shared by all of a packet's flits. */
struct PacketInfo
{
    std::uint64_t id;
    int src;
    int dst;
    /** Cycle the packet was created (source queuing included). */
    sim::Cycle createdAt;
    /** Packet length in flits. */
    unsigned length;
    /** Whether this packet belongs to the measurement sample. */
    bool sample;
    /**
     * Retransmission attempt number (0 = original send). Sources
     * deduplicate NACKs by (id, attempt) so several faults hitting the
     * same attempt trigger exactly one retransmission.
     */
    unsigned attempt = 0;
    /** The full source route, one hop per router on the path. */
    std::vector<RouteHop> route;
};

/** A single flit in flight. */
struct Flit
{
    /** Shared packet metadata (route, timestamps). */
    std::shared_ptr<const PacketInfo> packet;
    /** True for the packet's first flit. */
    bool head = false;
    /** True for the packet's last flit. */
    bool tail = false;
    /** Index of this flit within its packet (0 = head). */
    unsigned seq = 0;
    /**
     * Index into packet->route of the router this flit is *arriving
     * at*; incremented by each router when forwarding to the next.
     */
    unsigned hop = 0;
    /** VC of the downstream input buffer, set by the sender. */
    std::uint8_t vc = 0;
    /** Payload bits (drives switching-activity accounting). */
    power::BitVec payload;
    /**
     * End-to-end payload checksum, stamped once at the source when
     * fault injection is active (payload is immutable along the path);
     * checked at every router input to detect link corruption. Zero
     * and unchecked in fault-free runs.
     */
    std::uint32_t linkCrc = 0;
    /**
     * True for a receiver-synthesized tail that replaces a corrupted
     * body/tail flit: it closes the worm's VC/buffer state at every
     * downstream hop, is never faulted again, and is discarded at the
     * destination without completing the packet.
     */
    bool poison = false;

    /** The routing decision to apply at the current router. */
    const RouteHop&
    routeHop() const
    {
        return packet->route[hop];
    }

    /** True if the current router is the last on the path. */
    bool
    atLastHop() const
    {
        return hop + 1 == packet->route.size();
    }
};

/**
 * Checksum over payload bits used as the per-flit link CRC. Mixes each
 * word through a 64-bit finalizer so any single-bit flip (the fault
 * injector's corruption unit) changes the result.
 */
std::uint32_t payloadChecksum(const power::BitVec& payload);

} // namespace orion::router

#endif // ORION_ROUTER_FLIT_HH
