/**
 * @file
 * Wormhole router: the 2-stage (switch arbitration, crossbar
 * traversal) configuration of the crossbar router, with a single deep
 * FIFO per input port (paper Sections 3.3 and 4.2, e.g. the WH64
 * configuration with a 64-flit input buffer per port).
 */

#ifndef ORION_ROUTER_WORMHOLE_ROUTER_HH
#define ORION_ROUTER_WORMHOLE_ROUTER_HH

#include "router/vc_router.hh"

namespace orion::router {

/** Wormhole flow-control router (single VC, no VA stage). */
class WormholeRouter : public CrossbarRouter
{
  public:
    /**
     * @param params  must have vcs == 1; deadlock mode Bubble is the
     *                recommended torus setting (see DESIGN.md)
     */
    WormholeRouter(std::string name, int node, const RouterParams& params,
                   sim::EventBus& bus);
};

} // namespace orion::router

#endif // ORION_ROUTER_WORMHOLE_ROUTER_HH
