#include "router/router.hh"

#include <cassert>

namespace orion::router {

Router::Router(std::string name, int node, const RouterParams& params,
               sim::EventBus& bus)
    : sim::Module(std::move(name), node),
      params_(params),
      bus_(bus),
      inLinks_(params.ports, nullptr),
      creditReturnLinks_(params.ports, nullptr),
      outLinks_(params.ports, nullptr),
      creditInLinks_(params.ports, nullptr),
      outputCredits_(params.ports)
{
    assert(params.ports >= 2);
    assert(params.vcs >= 1);
    assert(params.bufferDepth >= 1);
    assert(params.flitBits >= 1);
    assert(params.packetLength >= 1);
    // Flit-granular bubble (wormhole, CB) needs room for two packets
    // in one buffer; slot-granular bubble (VC routers, vcs >= 2) only
    // needs each VC to hold one whole packet. The common lower bound:
    assert(params.deadlock != DeadlockMode::Bubble ||
           params.bufferDepth >= params.packetLength);
    assert(params.deadlock != DeadlockMode::Bubble || params.vcs >= 2 ||
           params.bufferDepth >= 2 * params.packetLength);
    assert(params.deadlock != DeadlockMode::Dateline || params.vcs >= 2);
}

void
Router::connectInput(unsigned port, FlitLink* in,
                     CreditLink* credit_return)
{
    assert(port < params_.ports);
    inLinks_[port] = in;
    creditReturnLinks_[port] = credit_return;
    if (in)
        in->setWakeFlag(&inputPending_);
}

void
Router::connectOutput(unsigned port, FlitLink* out,
                      CreditLink* credit_in, unsigned downstream_vcs,
                      unsigned downstream_depth, bool unlimited)
{
    assert(port < params_.ports);
    outLinks_[port] = out;
    creditInLinks_[port] = credit_in;
    if (credit_in)
        credit_in->setWakeFlag(&inputPending_);
    outputCredits_[port] = std::make_unique<CreditCounter>(
        downstream_vcs, unlimited ? 1 : downstream_depth, unlimited);
}

unsigned
Router::outputCredits(unsigned port, unsigned vc) const
{
    assert(port < params_.ports && outputCredits_[port]);
    return outputCredits_[port]->available(vc);
}

const CreditCounter*
Router::outputCreditCounter(unsigned port) const
{
    assert(port < params_.ports);
    return outputCredits_[port].get();
}

void
Router::debugCorruptCredit(unsigned port, unsigned vc)
{
    assert(port < params_.ports && outputCredits_[port]);
    outputCredits_[port]->debugCorruptCredit(vc);
}

void
Router::setFaultHooks(FaultHooks* hooks)
{
    faultHooks_ = hooks;
    if (faultHooks_ && dropState_.empty()) {
        dropState_.assign(params_.ports,
                          std::vector<DropState>(params_.vcs));
        pendingCredits_.assign(params_.ports, {});
    }
}

std::size_t
Router::creditsInFlight() const
{
    std::size_t n = 0;
    for (const auto& counter : outputCredits_) {
        if (!counter || counter->unlimited())
            continue;
        for (unsigned v = 0; v < counter->vcs(); ++v)
            n += counter->depth(v) - counter->available(v);
    }
    return n;
}

std::size_t
Router::pendingCreditReturns(unsigned port, unsigned vc) const
{
    if (!faultHooks_)
        return 0;
    std::size_t n = 0;
    for (const Credit& c : pendingCredits_[port])
        if (c.vc == vc)
            ++n;
    return n;
}

void
Router::sendCreditUpstream(unsigned port, unsigned vc, sim::Cycle now)
{
    auto* ch = creditReturnLinks_[port];
    if (!ch)
        return;
    const Credit credit{static_cast<std::uint8_t>(vc)};
    // The credit wire carries one credit per cycle. Fault-free
    // operation frees at most one slot per port per cycle, but a fault
    // discard can coincide with a regular dequeue on the same port;
    // queue the overflow and keep per-port FIFO order.
    if (faultHooks_ &&
        (!pendingCredits_[port].empty() || ch->staged())) {
        pendingCredits_[port].push_back(credit);
        ++pendingCreditTotal_;
        return;
    }
    ch->send(credit, bus_, now);
}

void
Router::drainPendingCredits(sim::Cycle now)
{
    if (!faultHooks_)
        return;
    for (unsigned p = 0; p < params_.ports; ++p) {
        auto& q = pendingCredits_[p];
        if (q.empty())
            continue;
        auto* ch = creditReturnLinks_[p];
        if (!ch || ch->staged())
            continue;
        ch->send(q.front(), bus_, now);
        q.pop_front();
        --pendingCreditTotal_;
    }
}

void
Router::armDropUntilTail(unsigned port, unsigned vc,
                         std::uint64_t packet_id, unsigned attempt)
{
    if (!faultHooks_)
        return;
    DropState& drop = dropState_[port][vc];
    drop.active = true;
    drop.packetId = packet_id;
    drop.attempt = attempt;
}

void
Router::discardArrival(unsigned port, const Flit& flit, sim::Cycle now)
{
    // The flit did arrive (link energy was spent) but is dropped
    // before buffering: ledger it so conservation still proves out,
    // and return the buffer slot the upstream consumed for it.
    ++flitsArrived_;
    ++flitsDiscarded_;
    sendCreditUpstream(port, flit.vc, now);
    faultHooks_->onFlitDiscarded(flit, now);
}

Router::ArrivalAction
Router::screenArrival(unsigned port, Flit& flit, sim::Cycle now)
{
    DropState& drop = dropState_[port][flit.vc];
    // 1. Remainder of a killed worm attempt: discard until its tail
    //    (or its upstream-synthesized poison tail) closes the state.
    //    Packets are contiguous per (port, VC) and flit metadata is
    //    never corrupted, so matching (id, attempt) is exact.
    if (drop.active && drop.packetId == flit.packet->id &&
        drop.attempt == flit.packet->attempt) {
        if (flit.tail)
            drop.active = false;
        discardArrival(port, flit, now);
        return ArrivalAction::Discard;
    }
    // 2. Poison tails carry a stale CRC by construction and must
    //    propagate to close downstream worm state: deliver unchecked.
    if (flit.poison)
        return ArrivalAction::Deliver;
    // 3. CRC check (stamped once at the source; payload is immutable
    //    along a fault-free path).
    if (flit.linkCrc != payloadChecksum(flit.payload)) {
        faultHooks_->onPacketKilled(flit.packet, now);
        if (!flit.tail) {
            drop.active = true;
            drop.packetId = flit.packet->id;
            drop.attempt = flit.packet->attempt;
        }
        if (flit.head) {
            // Nothing of the worm is buffered downstream of here yet:
            // drop the head outright and swallow the rest as they
            // arrive.
            discardArrival(port, flit, now);
            return ArrivalAction::Discard;
        }
        // Body/tail corrupted mid-worm: convert it into a poison tail
        // (1-for-1 slot replacement) so every downstream hop's VC and
        // buffer state for this worm closes normally.
        flit.poison = true;
        flit.tail = true;
        return ArrivalAction::Deliver;
    }
    return ArrivalAction::Deliver;
}

void
Router::receiveCredits()
{
    for (unsigned p = 0; p < params_.ports; ++p) {
        auto* ch = creditInLinks_[p];
        if (ch && ch->valid()) {
            const Credit c = ch->read();
            outputCredits_[p]->restore(c.vc);
        }
    }
}

bool
Router::isLocalPort(unsigned port) const
{
    return port == params_.localPort();
}

unsigned
Router::requiredSpace(bool is_head, bool new_ring,
                      unsigned out_port) const
{
    if (!is_head || params_.deadlock != DeadlockMode::Bubble ||
        isLocalPort(out_port)) {
        return 1;
    }
    return new_ring ? 2 * params_.packetLength : params_.packetLength;
}

} // namespace orion::router
