#include "router/router.hh"

#include <cassert>

namespace orion::router {

Router::Router(std::string name, int node, const RouterParams& params,
               sim::EventBus& bus)
    : sim::Module(std::move(name), node),
      params_(params),
      bus_(bus),
      inLinks_(params.ports, nullptr),
      creditReturnLinks_(params.ports, nullptr),
      outLinks_(params.ports, nullptr),
      creditInLinks_(params.ports, nullptr),
      outputCredits_(params.ports)
{
    assert(params.ports >= 2);
    assert(params.vcs >= 1);
    assert(params.bufferDepth >= 1);
    assert(params.flitBits >= 1);
    assert(params.packetLength >= 1);
    // Flit-granular bubble (wormhole, CB) needs room for two packets
    // in one buffer; slot-granular bubble (VC routers, vcs >= 2) only
    // needs each VC to hold one whole packet. The common lower bound:
    assert(params.deadlock != DeadlockMode::Bubble ||
           params.bufferDepth >= params.packetLength);
    assert(params.deadlock != DeadlockMode::Bubble || params.vcs >= 2 ||
           params.bufferDepth >= 2 * params.packetLength);
    assert(params.deadlock != DeadlockMode::Dateline || params.vcs >= 2);
}

void
Router::connectInput(unsigned port, FlitLink* in,
                     CreditLink* credit_return)
{
    assert(port < params_.ports);
    inLinks_[port] = in;
    creditReturnLinks_[port] = credit_return;
}

void
Router::connectOutput(unsigned port, FlitLink* out,
                      CreditLink* credit_in, unsigned downstream_vcs,
                      unsigned downstream_depth, bool unlimited)
{
    assert(port < params_.ports);
    outLinks_[port] = out;
    creditInLinks_[port] = credit_in;
    outputCredits_[port] = std::make_unique<CreditCounter>(
        downstream_vcs, unlimited ? 1 : downstream_depth, unlimited);
}

unsigned
Router::outputCredits(unsigned port, unsigned vc) const
{
    assert(port < params_.ports && outputCredits_[port]);
    return outputCredits_[port]->available(vc);
}

const CreditCounter*
Router::outputCreditCounter(unsigned port) const
{
    assert(port < params_.ports);
    return outputCredits_[port].get();
}

void
Router::debugCorruptCredit(unsigned port, unsigned vc)
{
    assert(port < params_.ports && outputCredits_[port]);
    outputCredits_[port]->debugCorruptCredit(vc);
}

void
Router::receiveCredits()
{
    for (unsigned p = 0; p < params_.ports; ++p) {
        auto* ch = creditInLinks_[p];
        if (ch && ch->valid()) {
            const Credit c = ch->read();
            outputCredits_[p]->restore(c.vc);
        }
    }
}

bool
Router::isLocalPort(unsigned port) const
{
    return port == params_.localPort();
}

unsigned
Router::requiredSpace(bool is_head, bool new_ring,
                      unsigned out_port) const
{
    if (!is_head || params_.deadlock != DeadlockMode::Bubble ||
        isLocalPort(out_port)) {
        return 1;
    }
    return new_ring ? 2 * params_.packetLength : params_.packetLength;
}

} // namespace orion::router
