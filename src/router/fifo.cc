#include "router/fifo.hh"

#include <cassert>

#include "core/check.hh"

namespace orion::router {

FlitFifo::FlitFifo(sim::EventBus& bus, int node, int component,
                   std::size_t capacity, unsigned flit_bits)
    : bus_(bus),
      node_(node),
      component_(component),
      capacity_(capacity),
      flitBits_(flit_bits),
      rowContents_(capacity, power::BitVec(flit_bits)),
      lastWritten_(flit_bits)
{
    assert(capacity > 0 && flit_bits > 0);
}

void
FlitFifo::write(Flit flit, sim::Cycle now)
{
    ORION_CHECK(!full(), "FIFO overflow (credit discipline violated) at "
                             << "node " << node_ << " component "
                             << component_ << " depth " << capacity_);
    assert(flit.payload.width() == flitBits_);

    const unsigned delta_bw =
        power::switchingWriteBitlines(flit.payload, lastWritten_);
    const unsigned delta_bc =
        power::flippedCells(flit.payload, rowContents_[writeRow_]);

    lastWritten_ = flit.payload;
    rowContents_[writeRow_] = flit.payload;
    writeRow_ = (writeRow_ + 1) % capacity_;

    bus_.emit({sim::EventType::BufferWrite, node_, component_, delta_bw,
               delta_bc, now});
    queue_.push_back(std::move(flit));
}

const Flit&
FlitFifo::front() const
{
    assert(!empty());
    return queue_.front();
}

Flit
FlitFifo::read(sim::Cycle now)
{
    ORION_CHECK(!empty(), "FIFO underflow: read from empty buffer at "
                              << "node " << node_ << " component "
                              << component_);
    Flit f = std::move(queue_.front());
    queue_.pop_front();
    bus_.emit({sim::EventType::BufferRead, node_, component_, 0, 0, now});
    return f;
}

} // namespace orion::router
