#include "router/fifo.hh"

#include <algorithm>
#include <utility>

#include "core/check.hh"

namespace orion::router {

FlitFifo::FlitFifo(sim::EventBus& bus, int node, int component,
                   std::size_t capacity, unsigned flit_bits)
    : bus_(bus),
      node_(node),
      component_(component),
      capacity_(capacity),
      flitBits_(flit_bits),
      rowContents_(capacity, power::BitVec(flit_bits)),
      lastWritten_(flit_bits)
{
    assert(capacity > 0 && flit_bits > 0);
}

void
FlitFifo::grow()
{
    // Deep buffers (central-queue presets run hundreds of flits) would
    // waste memory if every VC preallocated its full depth, so the
    // ring starts empty and doubles toward capacity_ as occupancy
    // actually demands it. Rebuild in front-to-back order so head_
    // restarts at slot 0.
    const std::size_t want =
        std::min(capacity_, std::max<std::size_t>(4, slots_.size() * 2));
    std::vector<Flit> bigger;
    bigger.reserve(want);
    for (std::size_t i = 0; i < count_; ++i)
        bigger.push_back(std::move(slots_[(head_ + i) % slots_.size()]));
    bigger.resize(want);
    slots_ = std::move(bigger);
    head_ = 0;
}

void
FlitFifo::write(Flit flit, sim::Cycle now)
{
    ORION_CHECK(!full(), "FIFO overflow (credit discipline violated) at "
                             << "node " << node_ << " component "
                             << component_ << " depth " << capacity_);
    assert(flit.payload.width() == flitBits_);

    const unsigned delta_bw =
        power::switchingWriteBitlines(flit.payload, lastWritten_);
    const unsigned delta_bc =
        power::flippedCells(flit.payload, rowContents_[writeRow_]);

    lastWritten_ = flit.payload;
    rowContents_[writeRow_] = flit.payload;
    writeRow_ = (writeRow_ + 1) % capacity_;

    bus_.emit({sim::EventType::BufferWrite, node_, component_, delta_bw,
               delta_bc, now});
    if (count_ == slots_.size())
        grow();
    std::size_t tail = head_ + count_;
    if (tail >= slots_.size())
        tail -= slots_.size();
    slots_[tail] = std::move(flit);
    ++count_;
}

Flit
FlitFifo::read(sim::Cycle now)
{
    ORION_CHECK(!empty(), "FIFO underflow: read from empty buffer at "
                              << "node " << node_ << " component "
                              << component_);
    Flit f = std::move(slots_[head_]);
    ++head_;
    if (head_ == slots_.size())
        head_ = 0;
    --count_;
    bus_.emit({sim::EventType::BufferRead, node_, component_, 0, 0, now});
    return f;
}

} // namespace orion::router
