#include "router/arbiter.hh"

#include <algorithm>
#include <bit>
#include <cassert>

namespace orion::router {

Arbiter::Arbiter(unsigned requests)
    : requests_(requests),
      reqWords_(wordsFor(requests), 0),
      lastWords_(wordsFor(requests), 0)
{
    assert(requests > 0);
}

unsigned
Arbiter::requestDelta(const std::vector<bool>& reqs)
{
    assert(reqs.size() == requests_);
    const std::size_t words = reqWords_.size();
    for (std::size_t k = 0; k < words; ++k) {
        const unsigned base = static_cast<unsigned>(k) * 64;
        const unsigned top = std::min(requests_ - base, 64u);
        std::uint64_t w = 0;
        for (unsigned b = 0; b < top; ++b)
            w |= static_cast<std::uint64_t>(reqs[base + b]) << b;
        reqWords_[k] = w;
    }
    unsigned delta = 0;
    for (std::size_t k = 0; k < words; ++k) {
        delta += static_cast<unsigned>(
            std::popcount(reqWords_[k] ^ lastWords_[k]));
        lastWords_[k] = reqWords_[k];
    }
    return delta;
}

MatrixArbiter::MatrixArbiter(unsigned requests)
    : Arbiter(requests),
      row_(requests * wordsFor(requests), 0),
      col_(requests * wordsFor(requests), 0)
{
    // Initial total order: lower index beats higher index.
    const std::size_t words = wordsFor(requests);
    for (unsigned i = 0; i < requests; ++i) {
        for (unsigned j = i + 1; j < requests; ++j) {
            row_[i * words + j / 64] |= std::uint64_t{1} << (j % 64);
            col_[j * words + i / 64] |= std::uint64_t{1} << (i % 64);
        }
    }
}

bool
MatrixArbiter::hasPriority(unsigned i, unsigned j) const
{
    assert(i < requests_ && j < requests_ && i != j);
    const std::size_t words = wordsFor(requests_);
    return (row_[i * words + j / 64] >> (j % 64)) & 1;
}

ArbitrationResult
MatrixArbiter::arbitrate(const std::vector<bool>& reqs)
{
    const unsigned delta_req = requestDelta(reqs);
    const std::vector<std::uint64_t>& req_words = reqWords();
    const std::size_t words = req_words.size();

    // grant_i = req_i AND no other pending request has priority over i:
    // one AND of the request set against i's beaten-by column. The
    // matrix encodes a total order, so scanning requesters in index
    // order finds the unique unbeaten one regardless of order.
    int winner = -1;
    for (std::size_t k = 0; k < words && winner < 0; ++k) {
        std::uint64_t pending = req_words[k];
        while (pending != 0) {
            const unsigned i = static_cast<unsigned>(k) * 64 +
                               std::countr_zero(pending);
            pending &= pending - 1;
            const std::uint64_t* beats = &col_[i * words];
            std::uint64_t beaten = 0;
            for (std::size_t m = 0; m < words; ++m)
                beaten |= req_words[m] & beats[m];
            if (beaten == 0) {
                winner = static_cast<int>(i);
                break;
            }
        }
    }
    // The priority matrix encodes a total order, so an asserted request
    // set always has exactly one unbeaten member.
    assert(winner >= 0 ||
           std::none_of(reqs.begin(), reqs.end(),
                        [](bool r) { return r; }));

    unsigned delta_pri = 0;
    if (winner >= 0) {
        // Winner drops below everyone: its row empties into the rows
        // and columns of every requester it used to beat (each such
        // pair toggles two flip-flops of one priority bit).
        const auto w = static_cast<unsigned>(winner);
        std::uint64_t* w_row = &row_[w * words];
        std::uint64_t* w_col = &col_[w * words];
        for (std::size_t k = 0; k < words; ++k) {
            std::uint64_t lost = w_row[k];
            if (lost == 0)
                continue;
            delta_pri += static_cast<unsigned>(std::popcount(lost));
            w_col[k] |= lost;
            w_row[k] = 0;
            const std::uint64_t w_bit = std::uint64_t{1} << (w % 64);
            while (lost != 0) {
                const unsigned j = static_cast<unsigned>(k) * 64 +
                                   std::countr_zero(lost);
                lost &= lost - 1;
                row_[j * words + w / 64] |= w_bit;
                col_[j * words + w / 64] &= ~w_bit;
            }
        }
    }
    return {winner, delta_req, delta_pri};
}

RoundRobinArbiter::RoundRobinArbiter(unsigned requests)
    : Arbiter(requests)
{
}

QueuingArbiter::QueuingArbiter(unsigned requests)
    : Arbiter(requests), queued_(requests, false)
{
}

ArbitrationResult
QueuingArbiter::arbitrate(const std::vector<bool>& reqs)
{
    const unsigned delta_req = requestDelta(reqs);

    // Newly asserted requesters join the queue in index order (ties
    // within one cycle are broken by requester index).
    unsigned delta_pri = 0;
    for (unsigned i = 0; i < requests_; ++i) {
        if (reqs[i] && !queued_[i]) {
            queue_.push_back(i);
            queued_[i] = true;
            ++delta_pri; // one queue write per enqueued id
        }
    }

    // Serve the oldest still-asserted request; withdrawn requests at
    // the front are discarded.
    int winner = -1;
    while (!queue_.empty()) {
        const unsigned front = queue_.front();
        queue_.pop_front();
        queued_[front] = false;
        if (reqs[front]) {
            winner = static_cast<int>(front);
            break;
        }
    }
    return {winner, delta_req, delta_pri};
}

std::unique_ptr<Arbiter>
makeArbiter(ArbiterKind kind, unsigned requests)
{
    switch (kind) {
      case ArbiterKind::Matrix:
        return std::make_unique<MatrixArbiter>(requests);
      case ArbiterKind::RoundRobin:
        return std::make_unique<RoundRobinArbiter>(requests);
      case ArbiterKind::Queuing:
        return std::make_unique<QueuingArbiter>(requests);
    }
    return std::make_unique<MatrixArbiter>(requests);
}

ArbitrationResult
RoundRobinArbiter::arbitrate(const std::vector<bool>& reqs)
{
    const unsigned delta_req = requestDelta(reqs);

    int winner = -1;
    for (unsigned k = 0; k < requests_; ++k) {
        const unsigned i = (token_ + k) % requests_;
        if (reqs[i]) {
            winner = static_cast<int>(i);
            break;
        }
    }

    unsigned delta_pri = 0;
    if (winner >= 0) {
        const unsigned next =
            (static_cast<unsigned>(winner) + 1) % requests_;
        if (next != token_) {
            // One-hot token moves: two flip-flops toggle.
            delta_pri = 2;
            token_ = next;
        }
    }
    return {winner, delta_req, delta_pri};
}

} // namespace orion::router
