#include "router/arbiter.hh"

#include <algorithm>
#include <cassert>

namespace orion::router {

Arbiter::Arbiter(unsigned requests)
    : requests_(requests), lastReqs_(requests, false)
{
    assert(requests > 0);
}

unsigned
Arbiter::requestDelta(const std::vector<bool>& reqs)
{
    assert(reqs.size() == requests_);
    unsigned delta = 0;
    for (unsigned i = 0; i < requests_; ++i)
        if (reqs[i] != lastReqs_[i])
            ++delta;
    lastReqs_ = reqs;
    return delta;
}

MatrixArbiter::MatrixArbiter(unsigned requests)
    : Arbiter(requests),
      prio_(requests, std::vector<bool>(requests, false))
{
    // Initial total order: lower index beats higher index.
    for (unsigned i = 0; i < requests; ++i)
        for (unsigned j = i + 1; j < requests; ++j)
            prio_[i][j] = true;
}

bool
MatrixArbiter::hasPriority(unsigned i, unsigned j) const
{
    assert(i < requests_ && j < requests_ && i != j);
    return prio_[i][j];
}

ArbitrationResult
MatrixArbiter::arbitrate(const std::vector<bool>& reqs)
{
    const unsigned delta_req = requestDelta(reqs);

    // grant_i = req_i AND no other pending request has priority over i.
    int winner = -1;
    for (unsigned i = 0; i < requests_; ++i) {
        if (!reqs[i])
            continue;
        bool beaten = false;
        for (unsigned j = 0; j < requests_ && !beaten; ++j)
            if (j != i && reqs[j] && prio_[j][i])
                beaten = true;
        if (!beaten) {
            winner = static_cast<int>(i);
            break;
        }
    }
    // The priority matrix encodes a total order, so an asserted request
    // set always has exactly one unbeaten member.
    assert(winner >= 0 ||
           std::none_of(reqs.begin(), reqs.end(),
                        [](bool r) { return r; }));

    unsigned delta_pri = 0;
    if (winner >= 0) {
        // Winner drops below everyone: row cleared, column set.
        const auto w = static_cast<unsigned>(winner);
        for (unsigned j = 0; j < requests_; ++j) {
            if (j == w)
                continue;
            if (prio_[w][j]) {
                prio_[w][j] = false;
                prio_[j][w] = true;
                ++delta_pri;
            }
        }
    }
    return {winner, delta_req, delta_pri};
}

RoundRobinArbiter::RoundRobinArbiter(unsigned requests)
    : Arbiter(requests)
{
}

QueuingArbiter::QueuingArbiter(unsigned requests)
    : Arbiter(requests), queued_(requests, false)
{
}

ArbitrationResult
QueuingArbiter::arbitrate(const std::vector<bool>& reqs)
{
    const unsigned delta_req = requestDelta(reqs);

    // Newly asserted requesters join the queue in index order (ties
    // within one cycle are broken by requester index).
    unsigned delta_pri = 0;
    for (unsigned i = 0; i < requests_; ++i) {
        if (reqs[i] && !queued_[i]) {
            queue_.push_back(i);
            queued_[i] = true;
            ++delta_pri; // one queue write per enqueued id
        }
    }

    // Serve the oldest still-asserted request; withdrawn requests at
    // the front are discarded.
    int winner = -1;
    while (!queue_.empty()) {
        const unsigned front = queue_.front();
        queue_.pop_front();
        queued_[front] = false;
        if (reqs[front]) {
            winner = static_cast<int>(front);
            break;
        }
    }
    return {winner, delta_req, delta_pri};
}

std::unique_ptr<Arbiter>
makeArbiter(ArbiterKind kind, unsigned requests)
{
    switch (kind) {
      case ArbiterKind::Matrix:
        return std::make_unique<MatrixArbiter>(requests);
      case ArbiterKind::RoundRobin:
        return std::make_unique<RoundRobinArbiter>(requests);
      case ArbiterKind::Queuing:
        return std::make_unique<QueuingArbiter>(requests);
    }
    return std::make_unique<MatrixArbiter>(requests);
}

ArbitrationResult
RoundRobinArbiter::arbitrate(const std::vector<bool>& reqs)
{
    const unsigned delta_req = requestDelta(reqs);

    int winner = -1;
    for (unsigned k = 0; k < requests_; ++k) {
        const unsigned i = (token_ + k) % requests_;
        if (reqs[i]) {
            winner = static_cast<int>(i);
            break;
        }
    }

    unsigned delta_pri = 0;
    if (winner >= 0) {
        const unsigned next =
            (static_cast<unsigned>(winner) + 1) % requests_;
        if (next != token_) {
            // One-hot token moves: two flip-flops toggle.
            delta_pri = 2;
            token_ = next;
        }
    }
    return {winner, delta_req, delta_pri};
}

} // namespace orion::router
