/**
 * @file
 * Flit FIFO buffer with power-event emission.
 *
 * This is the behavioural twin of power::BufferModel: an SRAM-array
 * FIFO of B flit slots. Every write emits a BufferWrite event carrying
 * the monitored switching activity (delta_bw switching write bitlines,
 * delta_bc flipped memory cells — computed against the write driver's
 * last datum and the stale contents of the target row); every read
 * emits a BufferRead event. This mirrors the paper's walkthrough: "The
 * buffer module writes the flit into the tail of the FIFO buffer and
 * emits a buffer write event, which triggers the buffer power model."
 */

#ifndef ORION_ROUTER_FIFO_HH
#define ORION_ROUTER_FIFO_HH

#include <cassert>
#include <cstddef>
#include <vector>

#include "power/activity.hh"
#include "router/flit.hh"
#include "sim/event.hh"

namespace orion::router {

/** A flit FIFO modeling one SRAM buffer (one VC of one input port). */
class FlitFifo
{
  public:
    /**
     * @param bus        event bus for power events
     * @param node       owning node id (stamped on events)
     * @param component  component instance id (stamped on events)
     * @param capacity   buffer depth in flits (B)
     * @param flit_bits  flit width in bits (F)
     */
    FlitFifo(sim::EventBus& bus, int node, int component,
             std::size_t capacity, unsigned flit_bits);

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ >= capacity_; }
    std::size_t freeSlots() const { return capacity_ - count_; }

    /**
     * Write @p flit into the tail slot; emits BufferWrite with the
     * monitored delta_bw / delta_bc. The FIFO must not be full.
     */
    void write(Flit flit, sim::Cycle now);

    /** The flit at the head (must not be empty). */
    const Flit&
    front() const
    {
        assert(count_ > 0);
        return slots_[head_];
    }

    /**
     * Pop and return the head flit; emits BufferRead.
     */
    Flit read(sim::Cycle now);

  private:
    /** Enlarge the ring (it grows geometrically up to capacity_). */
    void grow();

    sim::EventBus& bus_;
    int node_;
    int component_;
    std::size_t capacity_;
    unsigned flitBits_;

    /**
     * Ring of flit slots, grown on demand up to capacity_. Slots are
     * assigned (not reallocated) on every write, so a FIFO that has
     * warmed up recycles its Flit storage with no heap traffic — this
     * is the flit arena: per-(port, VC) reusable slots instead of
     * deque node churn.
     */
    std::vector<Flit> slots_;
    /** Index of the front flit within slots_. */
    std::size_t head_ = 0;
    /** Buffered flit count. */
    std::size_t count_ = 0;

    /** Stale contents of each SRAM row (ring-indexed). */
    std::vector<power::BitVec> rowContents_;
    /** Row the next write lands in. */
    std::size_t writeRow_ = 0;
    /** Last datum the write bitline drivers carried. */
    power::BitVec lastWritten_;
};

} // namespace orion::router

#endif // ORION_ROUTER_FIFO_HH
