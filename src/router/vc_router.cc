#include "router/vc_router.hh"

#include <algorithm>
#include <bit>
#include <cassert>

namespace orion::router {

CrossbarRouter::CrossbarRouter(std::string name, int node,
                               const RouterParams& params,
                               sim::EventBus& bus, bool va_enabled)
    : Router(std::move(name), node, params, bus),
      vaEnabled_(va_enabled),
      xbar_(bus, node, params.ports, params.ports, params.flitBits),
      rrNextVc_(params.ports, 0),
      vaScan_(params.ports, 0),
      stLatch_(params.ports),
      portFlits_(params.ports, 0),
      saCand_(params.ports),
      saReqs_(params.ports - 1, false),
      vaBids_(params.ports * params.vcs),
      vaReqs_((params.ports - 1) * params.vcs, false)
{
    assert(va_enabled || params.vcs == 1);
    assert(params.ports <= 64 && "saStage output bitmask is 64-wide");

    const unsigned n_vcs = params.ports * params.vcs;
    fifos_.reserve(n_vcs);
    for (unsigned i = 0; i < n_vcs; ++i) {
        fifos_.emplace_back(bus, node, static_cast<int>(i),
                            params.bufferDepth, params.flitBits);
    }
    vcState_.resize(n_vcs);
    outVcBusy_.assign(n_vcs, 0);

    saArb_.reserve(params.ports);
    for (unsigned o = 0; o < params.ports; ++o)
        saArb_.push_back(makeArbiter(params.arbiterKind,
                                     params.ports - 1));

    if (vaEnabled_) {
        const unsigned va_reqs = (params.ports - 1) * params.vcs;
        vaArb_.reserve(n_vcs);
        for (unsigned i = 0; i < n_vcs; ++i)
            vaArb_.push_back(makeArbiter(params.arbiterKind, va_reqs));
    }
}

const FlitFifo&
CrossbarRouter::inputFifo(unsigned port, unsigned vc) const
{
    assert(port < params_.ports && vc < params_.vcs);
    return fifos_[vcIndex(port, vc)];
}

bool
CrossbarRouter::outVcBusy(unsigned port, unsigned vc) const
{
    assert(port < params_.ports && vc < params_.vcs);
    return outVcBusy_[vcIndex(port, vc)] != 0;
}

std::size_t
CrossbarRouter::bufferedFlits() const
{
    std::size_t n = 0;
    for (const auto& fifo : fifos_)
        n += fifo.size();
    return n;
}

std::size_t
CrossbarRouter::latchedFlits() const
{
    std::size_t n = 0;
    for (const auto& slot : stLatch_)
        if (slot)
            ++n;
    return n;
}

std::size_t
CrossbarRouter::residentFlits() const
{
    return bufferedFlits() + latchedFlits();
}

std::size_t
CrossbarRouter::latchedForOutput(unsigned port, unsigned vc) const
{
    // The SA stage rewrites flit.vc to the downstream input VC before
    // latching, so the latched flit is matched against the downstream
    // VC the audit is balancing.
    const auto& slot = stLatch_[port];
    return slot && slot->flit.vc == vc ? 1 : 0;
}

void
CrossbarRouter::debugDropFlit(unsigned port, unsigned vc)
{
    assert(port < params_.ports && vc < params_.vcs);
    FlitFifo& fifo = fifoAt(port, vc);
    assert(!fifo.empty());
    // Keep the fast-path occupancy counters consistent so only the
    // conservation ledger — not internal bookkeeping — goes wrong.
    (void)fifo.read(/*now=*/0);
    --portFlits_[port];
    --totalFlits_;
}

bool
CrossbarRouter::vcWaitState(unsigned port, unsigned vc,
                            VcWaitState& out) const
{
    assert(port < params_.ports && vc < params_.vcs);
    const FlitFifo& fifo = fifos_[vcIndex(port, vc)];
    const VcState& st = vcState_[vcIndex(port, vc)];
    out = VcWaitState{};
    out.hasFront = !fifo.empty();
    out.phase = static_cast<int>(st.phase);
    out.outPort = st.outPort;
    out.outVc = st.outVc;
    out.vcClass = st.vcClass;
    if (out.hasFront) {
        const Flit& front = fifo.front();
        out.frontHead = front.head;
        out.packetId = front.packet->id;
        out.attempt = front.packet->attempt;
        out.createdAt = front.packet->createdAt;
        // An Idle VC with a head at the front is waiting to enter VC
        // allocation (or, in wormhole mode, to claim the output at
        // SA): surface the requested output from the source route so
        // the detector can draw its wait edge.
        if (st.phase == VcState::Phase::Idle && front.head) {
            const RouteHop& hop = front.routeHop();
            out.outPort = hop.port;
            out.vcClass = hop.vcClass;
        }
    }
    return true;
}

bool
CrossbarRouter::poisonBlockedWorm(unsigned port, unsigned vc,
                                  sim::Cycle now)
{
    assert(port < params_.ports && vc < params_.vcs);
    if (!faultHooks_)
        return false;
    FlitFifo& fifo = fifoAt(port, vc);
    // Only a VC whose front is a worm head can be poisoned cleanly:
    // nothing of this attempt is buffered downstream, so discarding
    // the local run plus arming drop-until-tail for the in-flight
    // remainder removes the whole attempt. Every wait-for cycle has at
    // least one such VC (a body-front VC's head was forwarded onward,
    // so the chain of body-front VCs terminates at a head-front one).
    if (fifo.empty() || !fifo.front().head)
        return false;
    VcState& st = vcStateAt(port, vc);
    const auto pkt = fifo.front().packet;
    const unsigned attempt = pkt->attempt;
    if (st.phase == VcState::Phase::Active)
        outVcBusy_[vcIndex(st.outPort, st.outVc)] = false;
    st.reset();
    faultHooks_->onPacketKilled(pkt, now);
    // Discard the contiguous buffered run of this attempt, returning
    // one upstream credit per freed slot. These flits were already
    // counted in flitsArrived_ when buffered, so only the discard side
    // of the conservation ledger moves.
    bool saw_tail = false;
    while (!fifo.empty()) {
        const Flit& front = fifo.front();
        if (front.packet->id != pkt->id ||
            front.packet->attempt != attempt) {
            break;
        }
        const Flit flit = fifo.read(now);
        saw_tail = flit.tail;
        --portFlits_[port];
        --totalFlits_;
        ++flitsDiscarded_;
        sendCreditUpstream(port, vc, now);
        faultHooks_->onFlitDiscarded(flit, now);
        if (saw_tail)
            break;
    }
    if (!saw_tail)
        armDropUntilTail(port, vc, pkt->id, attempt);
    return true;
}

void
CrossbarRouter::cycle(sim::Cycle now)
{
    // Skip-quiescent fast path: with no buffered flits, no occupied
    // ST latch, no deferred credits and no message readable on any
    // input (flit or credit — the links' wake flags cover both), every
    // stage below is a no-op that emits nothing and mutates nothing,
    // so the cycle can be skipped without changing any observable
    // state. At low load most routers idle most cycles; this turns
    // their cost into four scalar tests.
    if (!inputPending_ && totalFlits_ == 0 && latchedCount_ == 0 &&
        pendingCreditTotal_ == 0) {
        return;
    }
    inputPending_ = false;
    receiveCredits();
    drainPendingCredits(now);
    stStage(now);
    if (vaEnabled_ && params_.speculative) {
        // Speculative pipeline: VA runs before SA within the cycle,
        // so a freshly allocated head can bid for (and win) the
        // switch immediately — VA and SA share a pipeline stage.
        vaStage(now);
        saStage(now);
    } else {
        saStage(now);
        if (vaEnabled_)
            vaStage(now);
    }
    bwStage(now);
}

void
CrossbarRouter::stStage(sim::Cycle now)
{
    for (unsigned o = 0; o < params_.ports; ++o) {
        if (!stLatch_[o])
            continue;
        // Scheduled port-stall fault: the flit stays latched (and SA
        // will not refill the occupied latch) until the stall lifts.
        if (faultHooks_ && faultHooks_->portStalled(node(), o, now))
            continue;
        StEntry entry = std::move(*stLatch_[o]);
        stLatch_[o].reset();
        --latchedCount_;
        xbar_.traverse(entry.inPort, o, entry.flit, now);
        assert(outLinks_[o] && "flit routed to unconnected output");
        outLinks_[o]->send(std::move(entry.flit), bus_, now);
        ++flitsForwarded_;
    }
}

std::pair<unsigned, unsigned>
CrossbarRouter::classVcRange(unsigned cls) const
{
    if (params_.deadlock == DeadlockMode::Dateline) {
        const unsigned half = params_.vcs / 2;
        return cls == 0 ? std::pair<unsigned, unsigned>{0u, half}
                        : std::pair<unsigned, unsigned>{half, params_.vcs};
    }
    return {0u, params_.vcs};
}

std::optional<CrossbarRouter::Candidate>
CrossbarRouter::pickCandidate(unsigned p)
{
    if (portFlits_[p] == 0)
        return std::nullopt;
    for (unsigned k = 0; k < params_.vcs; ++k) {
        const unsigned v = (rrNextVc_[p] + k) % params_.vcs;
        FlitFifo& fifo = fifoAt(p, v);
        if (fifo.empty())
            continue;
        VcState& st = vcStateAt(p, v);
        const Flit& front = fifo.front();

        if (st.phase == VcState::Phase::Active) {
            // VC routers do their bubble-rule space reservation at VA
            // (an empty VC was reserved for the whole packet), so SA
            // only needs one credit; wormhole routers enforce the
            // flit-granular bubble rule here.
            const unsigned need =
                vaEnabled_
                    ? 1
                    : requiredSpace(front.head, st.newRing, st.outPort);
            if (outputCredits(st.outPort, st.outVc) >= need)
                return Candidate{v, st.outPort, st.outVc, false};
            continue;
        }

        // Wormhole mode: route setup and output claim happen at SA.
        if (!vaEnabled_ && st.phase == VcState::Phase::Idle &&
            front.head) {
            const RouteHop& hop = front.routeHop();
            const unsigned o = hop.port;
            assert(o != p && "u-turn in route");
            if (outVcBusy_[vcIndex(o, 0)])
                continue;
            const unsigned need =
                requiredSpace(true, hop.newRing, o);
            if (outputCredits(o, 0) >= need)
                return Candidate{v, o, 0, true};
        }
    }
    return std::nullopt;
}

void
CrossbarRouter::saStage(sim::Cycle now)
{
    if (totalFlits_ == 0)
        return;
    const unsigned ports = params_.ports;

    auto& cand = saCand_;
    unsigned requesters = 0;
    // Outputs with at least one candidate, as a bitmask (ports is
    // 2 * dims + 1, far below 64): the arbitration loop below then
    // visits only contested outputs — usually one — instead of
    // scanning every port's candidates for every output.
    std::uint64_t out_pending = 0;
    for (unsigned p = 0; p < ports; ++p) {
        cand[p] = pickCandidate(p);
        if (cand[p]) {
            ++requesters;
            out_pending |= std::uint64_t{1} << cand[p]->outPort;
        }
    }
    unsigned granted = 0;

    while (out_pending != 0) {
        const unsigned o =
            static_cast<unsigned>(std::countr_zero(out_pending));
        out_pending &= out_pending - 1;
        // A port-stall fault leaves the ST latch occupied; don't
        // arbitrate for an output that can't accept a new flit.
        if (stLatch_[o])
            continue;
        auto& reqs = saReqs_;
        std::fill(reqs.begin(), reqs.end(), false);
        for (unsigned p = 0; p < ports; ++p) {
            if (p == o || !cand[p] || cand[p]->outPort != o)
                continue;
            reqs[saRequester(p, o)] = true;
        }

        const ArbitrationResult res = saArb_[o]->arbitrate(reqs);
        assert(res.winner >= 0);
        bus_.emit({sim::EventType::Arbitration, node(),
                   static_cast<int>(o), res.deltaReq, res.deltaPri,
                   now});

        // Undo the u-turn-free requester mapping.
        unsigned p = static_cast<unsigned>(res.winner);
        if (p >= o)
            ++p;
        const Candidate& c = *cand[p];
        VcState& st = vcStateAt(p, c.vc);

        if (c.claimOnGrant) {
            // Wormhole: the head claims the output for the packet.
            assert(!outVcBusy_[vcIndex(o, c.outVc)]);
            const RouteHop& hop = fifoAt(p, c.vc).front().routeHop();
            st.phase = VcState::Phase::Active;
            st.outPort = hop.port;
            st.outVc = static_cast<std::uint8_t>(c.outVc);
            st.newRing = hop.newRing;
            outVcBusy_[vcIndex(o, c.outVc)] = true;
        }

        Flit flit = fifoAt(p, c.vc).read(now);
        --portFlits_[p];
        --totalFlits_;
        outputCredits_[o]->consume(c.outVc);
        sendCreditUpstream(p, c.vc, now);

        flit.vc = static_cast<std::uint8_t>(c.outVc);
        if (flit.hop + 1 < flit.packet->route.size())
            ++flit.hop;

        if (flit.tail) {
            outVcBusy_[vcIndex(o, st.outVc)] = false;
            st.reset();
        }

        assert(!stLatch_[o]);
        stLatch_[o] = StEntry{std::move(flit), p};
        ++latchedCount_;
        rrNextVc_[p] = (c.vc + 1) % params_.vcs;
        ++granted;
    }
    saStalls_ += requesters - granted;
}

void
CrossbarRouter::vaStage(sim::Cycle now)
{
    if (totalFlits_ == 0)
        return;
    const unsigned ports = params_.ports;
    const unsigned vcs = params_.vcs;

    // 1. Heads newly at the front of their FIFOs enter WaitingVc.
    for (unsigned p = 0; p < ports; ++p) {
        if (portFlits_[p] == 0)
            continue;
        for (unsigned v = 0; v < vcs; ++v) {
            VcState& st = vcStateAt(p, v);
            const FlitFifo& fifo = fifoAt(p, v);
            if (st.phase != VcState::Phase::Idle || fifo.empty() ||
                !fifo.front().head) {
                continue;
            }
            const RouteHop& hop = fifo.front().routeHop();
            assert(hop.port != p && "u-turn in route");
            st.phase = VcState::Phase::WaitingVc;
            st.outPort = hop.port;
            st.vcClass = hop.vcClass;
            st.newRing = hop.newRing;
        }
    }

    // 2. Each waiting input VC bids for one free output VC of its
    //    class; collect the bids per (output port, output VC).
    //
    //    Bubble mode (slot-granular virtual cut-through): a head may
    //    only be allocated a *completely empty* downstream VC (atomic
    //    VC allocation — the whole packet fits, VCT), and entering a
    //    new ring additionally demands that a second downstream VC be
    //    empty, so every ring always retains a free packet-slot
    //    bubble. This is deadlock-free on tori without splitting the
    //    VCs into dateline classes.
    const bool bubble = params_.deadlock == DeadlockMode::Bubble;
    auto& bids = vaBids_;
    for (auto& b : bids)
        b.clear();
    for (unsigned p = 0; p < ports; ++p) {
        if (portFlits_[p] == 0)
            continue;
        for (unsigned v = 0; v < vcs; ++v) {
            VcState& st = vcStateAt(p, v);
            if (st.phase != VcState::Phase::WaitingVc)
                continue;
            const auto [first, last] = classVcRange(st.vcClass);
            const unsigned span = last - first;
            assert(span > 0);
            const unsigned o = st.outPort;
            for (unsigned k = 0; k < span; ++k) {
                const unsigned ov = first + (vaScan_[o] + k) % span;
                if (outVcBusy_[vcIndex(o, ov)])
                    continue;
                if (bubble && !isLocalPort(o) &&
                    !outputCredits_[o]->empty(ov)) {
                    continue;
                }
                bids[o * vcs + ov].emplace_back(p, v);
                break;
            }
        }
    }

    // Downstream packet-slots still free at output @p o: completely
    // empty VCs not already reserved by an earlier grant (busy flags
    // are updated live as this cycle's grants land).
    const auto free_slots = [&](unsigned o) {
        unsigned n = 0;
        for (unsigned ov = 0; ov < vcs; ++ov) {
            if (!outVcBusy_[vcIndex(o, ov)] &&
                outputCredits_[o]->empty(ov)) {
                ++n;
            }
        }
        return n;
    };

    // 3. Arbitrate each contested output VC, enforcing the bubble
    //    slot budget against grants already made this cycle.
    const unsigned va_reqs = (ports - 1) * vcs;
    for (unsigned o = 0; o < ports; ++o) {
        bool granted_any = false;
        for (unsigned ov = 0; ov < vcs; ++ov) {
            if (bids[o * vcs + ov].empty())
                continue;
            if (bubble && !isLocalPort(o)) {
                // Target slot must still be free, and ring entries
                // must leave a bubble behind.
                const unsigned remaining = free_slots(o);
                if (remaining == 0)
                    continue;
                auto& candidates = bids[o * vcs + ov];
                std::erase_if(candidates, [&](const auto& bid) {
                    return vcStateAt(bid.first, bid.second).newRing &&
                           remaining < 2;
                });
                if (candidates.empty())
                    continue;
            }
            auto& reqs = vaReqs_;
            assert(reqs.size() == va_reqs);
            std::fill(reqs.begin(), reqs.end(), false);
            for (const auto& [p, v] : bids[o * vcs + ov])
                reqs[vaRequester(p, v, o)] = true;
            const ArbitrationResult res =
                vaArb_[vcIndex(o, ov)]->arbitrate(reqs);
            assert(res.winner >= 0);
            bus_.emit({sim::EventType::VcAllocation, node(),
                       static_cast<int>(o * vcs + ov), res.deltaReq,
                       res.deltaPri, now});

            // Undo the requester mapping.
            const unsigned w = static_cast<unsigned>(res.winner);
            unsigned p = w / vcs;
            const unsigned v = w % vcs;
            if (p >= o)
                ++p;
            VcState& st = vcStateAt(p, v);
            assert(st.phase == VcState::Phase::WaitingVc);
            st.phase = VcState::Phase::Active;
            st.outVc = static_cast<std::uint8_t>(ov);
            outVcBusy_[vcIndex(o, ov)] = true;
            granted_any = true;
        }
        if (granted_any)
            vaScan_[o] = (vaScan_[o] + 1) % vcs;
    }
}

void
CrossbarRouter::bwStage(sim::Cycle now)
{
    for (unsigned p = 0; p < params_.ports; ++p) {
        FlitLink* in = inLinks_[p];
        if (!in || !in->valid())
            continue;
        Flit flit = in->read();
        if (faultHooks_ &&
            screenArrival(p, flit, now) == ArrivalAction::Discard) {
            continue;
        }
        assert(flit.vc < params_.vcs);
        assert(!fifoAt(p, flit.vc).full() &&
               "credit discipline violated: buffer overflow");
        fifoAt(p, flit.vc).write(std::move(flit), now);
        ++portFlits_[p];
        ++totalFlits_;
        ++flitsArrived_;
    }
}

} // namespace orion::router
