/**
 * @file
 * Analytic router pipeline delay model.
 *
 * The paper pipelines its routers "in accordance to the router delay
 * model proposed in [Peh-Dally HPCA'01]": atomic-module delays
 * (arbitration, VC allocation, crossbar traversal) are estimated in
 * fanout-of-4 (FO4) units from logical-effort-style expressions, and
 * each module is assigned ceil(delay / clock period) pipeline stages.
 * With a 20 FO4 clock this yields the paper's 3-stage virtual-channel
 * pipeline (VA, SA, ST) and 2-stage wormhole pipeline (SA, ST).
 *
 * The exact Peh-Dally coefficients are not reproduced here; the
 * expressions below are a logical-effort reconstruction calibrated so
 * that every stage of the paper's configurations fits in one 20 FO4
 * cycle (see DESIGN.md).
 */

#ifndef ORION_ROUTER_DELAY_MODEL_HH
#define ORION_ROUTER_DELAY_MODEL_HH

#include "tech/tech_node.hh"

namespace orion::router {

/** Analytic delay estimates for router pipeline stages. */
class DelayModel
{
  public:
    /**
     * @param clock_fo4  clock period in FO4 units (20 is the typical
     *                   aggressive value the paper's configs assume)
     */
    explicit DelayModel(double clock_fo4 = 20.0);

    double clockFo4() const { return clockFo4_; }

    /** FO4 delay in picoseconds for @p tech (~425 ps per um drawn). */
    static double fo4Ps(const tech::TechNode& tech);

    /** Delay of an R-way matrix arbitration, in FO4. */
    double arbiterDelayFo4(unsigned requests) const;

    /** Delay of VC allocation for P ports and V VCs per port, in FO4. */
    double vcAllocDelayFo4(unsigned ports, unsigned vcs) const;

    /** Delay of switch allocation for P ports, in FO4. */
    double switchAllocDelayFo4(unsigned ports) const;

    /** Delay of crossbar traversal for P ports, W bits, in FO4. */
    double crossbarDelayFo4(unsigned ports, unsigned width) const;

    /** Pipeline stages a module of @p delay_fo4 occupies. */
    unsigned stagesFor(double delay_fo4) const;

    /**
     * Total pipeline depth of a router: VA (if @p has_va) + SA + ST,
     * each at least one stage.
     */
    unsigned pipelineDepth(bool has_va, unsigned ports, unsigned vcs,
                           unsigned width) const;

  private:
    double clockFo4_;
};

} // namespace orion::router

#endif // ORION_ROUTER_DELAY_MODEL_HH
