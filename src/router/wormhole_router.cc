#include "router/wormhole_router.hh"

#include <cassert>

namespace orion::router {

WormholeRouter::WormholeRouter(std::string name, int node,
                               const RouterParams& params,
                               sim::EventBus& bus)
    : CrossbarRouter(std::move(name), node, params, bus,
                     /*va_enabled=*/false)
{
    assert(params.vcs == 1 && "wormhole routers have a single VC");
}

} // namespace orion::router
