/**
 * @file
 * Central-buffered router (paper Section 4.4).
 *
 * "Central buffered routers (CB), where a shared central buffer
 * forwards flits between input and output ports of a router, have been
 * deployed in IBM SP/2 and InfiniBand routers and are chosen for their
 * potential for higher throughput over input-buffered crossbar-based
 * routers (XB), as they do not experience the head-of-line blocking
 * inherent in XB routers."
 *
 * Microarchitecture modeled:
 *  - one FIFO input buffer per port (e.g. 64 flits);
 *  - a shared pipelined central memory with a limited number of write
 *    ports and read ports (e.g. 2 + 2), organized as per-output-port
 *    packet queues over a common capacity pool (virtual cut-through:
 *    a packet is admitted only when the pool has room for all of it);
 *  - per-write-port and per-read-port arbitration each cycle.
 *
 * Flits become readable pipelineLatency cycles after being written,
 * modeling the pipeline registers of the shared memory [Katevenis et
 * al.]. Power events: input-buffer read/write, central-buffer
 * read/write (whose energies come from the hierarchical
 * power::CentralBufferModel), arbitrations, and link traversals.
 */

#ifndef ORION_ROUTER_CENTRAL_BUFFER_ROUTER_HH
#define ORION_ROUTER_CENTRAL_BUFFER_ROUTER_HH

#include <deque>
#include <memory>
#include <vector>

#include "power/activity.hh"
#include "router/arbiter.hh"
#include "router/fifo.hh"
#include "router/router.hh"

namespace orion::router {

/** Parameters specific to the central buffer of a CB router. */
struct CentralBufferRouterParams
{
    /** Shared pool capacity in flits (banks x rows x flits/row). */
    unsigned capacityFlits;
    /** Simultaneous writes per cycle. */
    unsigned writePorts = 2;
    /** Simultaneous reads per cycle. */
    unsigned readPorts = 2;
    /** Cycles between a write and the flit becoming readable. */
    unsigned pipelineLatency = 2;
};

/** Central-buffered router module. */
class CentralBufferRouter : public Router
{
  public:
    /**
     * @param params  base router parameters; vcs must be 1 (the input
     *                buffers are plain FIFOs) and bufferDepth is the
     *                input FIFO depth
     * @param cb      central-buffer organization
     */
    CentralBufferRouter(std::string name, int node,
                        const RouterParams& params,
                        const CentralBufferRouterParams& cb,
                        sim::EventBus& bus);

    void cycle(sim::Cycle now) override;

    /// @name Introspection (tests, audits)
    /// @{
    unsigned freeCentralSlots() const { return freeSlots_; }
    const FlitFifo& inputFifo(unsigned port) const;
    std::size_t outputQueueLength(unsigned port) const;
    /** Flits buffered across the per-port input FIFOs. */
    std::size_t bufferedFlits() const;
    /** Flits physically present in the central pool. */
    std::size_t pooledFlits() const;
    /** Pool slots reserved by admitted-but-unwritten flits (virtual
     * cut-through holds a whole packet's space at head admission). */
    std::size_t reservedSlots() const;
    /** bufferedFlits() + pooledFlits() (flit-conservation audit). */
    std::size_t residentFlits() const override;
    /// @}

  private:
    /** One packet resident in (or streaming through) the pool. */
    struct CbPacket
    {
        /** Flits present, each with the cycle it becomes readable. */
        std::deque<std::pair<Flit, sim::Cycle>> flits;
        /** True once the tail has been written. */
        bool complete = false;
        /** Packet length reserved against the pool at admission. */
        unsigned length = 0;
        /** Flits written into the pool so far (audit bookkeeping). */
        unsigned written = 0;
    };

    void readStage(sim::Cycle now);
    void writeStage(sim::Cycle now);
    void bwStage(sim::Cycle now);

    /** True when nothing is buffered, pooled or admitted (the
     * resident-state half of the skip-quiescent test). */
    bool quiescent() const;

    CentralBufferRouterParams cb_;

    /** Input FIFOs, one per port. */
    std::vector<FlitFifo> inputFifos_;
    /** Per-output-port queues of packets in the pool. */
    std::vector<std::deque<std::unique_ptr<CbPacket>>> outputQueues_;
    /** Packet each input port is currently streaming into the pool. */
    std::vector<CbPacket*> currentWrite_;
    /** Remaining pool capacity in flits. */
    unsigned freeSlots_;

    /** Per-write-port arbiter over input ports. */
    std::vector<std::unique_ptr<Arbiter>> writeArb_;
    /** Per-read-port arbiter over output ports. */
    std::vector<std::unique_ptr<Arbiter>> readArb_;

    /** Last datum each write port carried (activity tracking). */
    std::vector<power::BitVec> lastWritten_;
    /** Last datum each read port carried. */
    std::vector<power::BitVec> lastRead_;
    /** Stale row contents of the pool (ring-indexed). */
    std::vector<power::BitVec> rowContents_;
    std::size_t writeRow_ = 0;
};

} // namespace orion::router

#endif // ORION_ROUTER_CENTRAL_BUFFER_ROUTER_HH
