/**
 * @file
 * Per-virtual-channel control state.
 *
 * Each input VC walks a small state machine: Idle (no packet) ->
 * WaitingVc (head at FIFO front, output port known from the source
 * route, waiting for an output VC) -> Active (output VC allocated,
 * flits may bid for the switch) -> back to Idle when the tail departs.
 * Wormhole routers use the same state with vcs = 1 and skip WaitingVc.
 */

#ifndef ORION_ROUTER_VC_STATE_HH
#define ORION_ROUTER_VC_STATE_HH

#include <cstdint>

namespace orion::router {

/** State of one input virtual channel. */
struct VcState
{
    enum class Phase : std::uint8_t
    {
        /** No packet being routed through this VC. */
        Idle,
        /** Head at FIFO front, awaiting output VC allocation. */
        WaitingVc,
        /** Output VC held; flits may request the switch. */
        Active,
    };

    Phase phase = Phase::Idle;
    /** Output port of the packet currently holding this VC. */
    std::uint8_t outPort = 0;
    /** Allocated output VC. */
    std::uint8_t outVc = 0;
    /** VC class the downstream VC must belong to. */
    std::uint8_t vcClass = 0;
    /** True if this hop enters a new ring (bubble rule applies). */
    bool newRing = false;

    void
    reset()
    {
        phase = Phase::Idle;
        outPort = 0;
        outVc = 0;
        vcClass = 0;
        newRing = false;
    }
};

} // namespace orion::router

#endif // ORION_ROUTER_VC_STATE_HH
