#include "router/crossbar_switch.hh"

#include <cassert>

namespace orion::router {

CrossbarSwitch::CrossbarSwitch(sim::EventBus& bus, int node,
                               unsigned inputs, unsigned outputs,
                               unsigned flit_bits)
    : bus_(bus),
      node_(node),
      inputs_(inputs),
      outputs_(outputs),
      flitBits_(flit_bits),
      lastOnOutput_(outputs, power::BitVec(flit_bits))
{
    assert(inputs > 0 && outputs > 0 && flit_bits > 0);
}

void
CrossbarSwitch::traverse(unsigned in, unsigned out, const Flit& flit,
                         sim::Cycle now)
{
    assert(in < inputs_ && out < outputs_);
    assert(flit.payload.width() == flitBits_);
    (void)in;

    const unsigned delta =
        power::hammingDistance(flit.payload, lastOnOutput_[out]);
    lastOnOutput_[out] = flit.payload;

    bus_.emit({sim::EventType::CrossbarTraversal, node_,
               static_cast<int>(out), delta, 0, now});
}

} // namespace orion::router
