/**
 * @file
 * Links: 1-cycle registered data and credit channels between routers
 * (and between nodes and routers).
 *
 * Paper Section 4.1: "propagation delay across data and credit
 * channels is assumed to take a single cycle". A FlitLink emits a
 * LinkTraversal power event when a flit is sent (the walkthrough's
 * "link traversal event, which calls the link power model"), carrying
 * the real wire-toggle count against the previous flit on the link.
 * Local injection/ejection connections are FlitLinks with traversal
 * events disabled (they are not inter-router links).
 */

#ifndef ORION_ROUTER_LINK_HH
#define ORION_ROUTER_LINK_HH

#include "power/activity.hh"
#include "router/credit.hh"
#include "router/fault_hooks.hh"
#include "router/flit.hh"
#include "sim/event.hh"
#include "sim/module.hh"

namespace orion::router {

/** A unidirectional flit channel with link-power event emission. */
class FlitLink : public sim::RegisteredChannel<Flit>
{
  public:
    /**
     * @param node            node id charged for this link's power
     *                        (the sender, by convention)
     * @param component       sender's output port index
     * @param flit_bits       link width
     * @param emits_traversal false for local injection/ejection wiring
     */
    FlitLink(int node, int component, unsigned flit_bits,
             bool emits_traversal);

    /**
     * Send @p flit down the link: emits LinkTraversal (if enabled) and
     * stages the flit for delivery next cycle.
     */
    void send(Flit flit, sim::EventBus& bus, sim::Cycle now);

    bool emitsTraversal() const { return emitsTraversal_; }

    /**
     * Attach fault hooks: every non-poison flit sent is offered to
     * @p hooks under registered link id @p link_id before the wire
     * toggles are computed, so corrupted bits cost real link energy.
     */
    void
    attachFaultHooks(FaultHooks* hooks, unsigned link_id)
    {
        faultHooks_ = hooks;
        faultLinkId_ = link_id;
    }

  private:
    int node_;
    int component_;
    bool emitsTraversal_;
    power::BitVec lastPayload_;
    FaultHooks* faultHooks_ = nullptr;
    unsigned faultLinkId_ = 0;
};

/** A unidirectional credit channel. */
class CreditLink : public sim::RegisteredChannel<Credit>
{
  public:
    CreditLink(int node, int component);

    /** Send a credit upstream; emits a CreditTransfer event. */
    void send(Credit credit, sim::EventBus& bus, sim::Cycle now);

  private:
    int node_;
    int component_;
};

} // namespace orion::router

#endif // ORION_ROUTER_LINK_HH
