/**
 * @file
 * Credit-based flow control (paper Section 4.1).
 *
 * "Credit-based flow control regulates the use of buffers, i.e., a
 * credit is sent back to the previous router whenever a flit leaves, so
 * a router can maintain a count of the number of available buffers, and
 * no flits are forwarded onto the next hop unless there are buffers to
 * hold it."
 *
 * A Credit message names the VC whose buffer slot was freed; a
 * CreditCounter tracks the sender-side view of downstream free slots.
 */

#ifndef ORION_ROUTER_CREDIT_HH
#define ORION_ROUTER_CREDIT_HH

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/check.hh"

namespace orion::router {

/** A credit returned upstream: one buffer slot freed on VC @p vc. */
struct Credit
{
    std::uint8_t vc;
};

/**
 * Sender-side credit state for one output port: free-slot counters for
 * each downstream VC buffer.
 */
class CreditCounter
{
  public:
    /**
     * @param vcs        number of downstream VCs
     * @param depth      downstream buffer depth per VC, in flits
     * @param unlimited  true for ejection ports (the paper assumes
     *                   immediate ejection, i.e. an infinite sink)
     */
    CreditCounter(unsigned vcs, unsigned depth, bool unlimited = false);

    unsigned vcs() const { return static_cast<unsigned>(count_.size()); }
    bool unlimited() const { return unlimited_; }

    /** Downstream buffer depth of VC @p vc (audits). */
    unsigned
    depth(unsigned vc) const
    {
        assert(vc < depth_.size());
        return depth_[vc];
    }

    /** Free slots available on downstream VC @p vc. */
    unsigned
    available(unsigned vc) const
    {
        assert(vc < count_.size());
        if (unlimited_)
            return std::numeric_limits<unsigned>::max();
        return count_[vc];
    }

    /** True if downstream VC @p vc is completely empty (all credits
     * present) — the atomic-VC-allocation condition. */
    bool
    empty(unsigned vc) const
    {
        assert(vc < count_.size());
        return unlimited_ || count_[vc] == depth_[vc];
    }

    /** Number of completely empty downstream VCs (bubble-rule slots). */
    unsigned emptyVcs() const;

    /** Consume one credit (a flit was forwarded). */
    void
    consume(unsigned vc)
    {
        assert(vc < count_.size());
        if (unlimited_)
            return;
        ORION_CHECK(count_[vc] > 0,
                    "credit underflow: consume on exhausted VC "
                        << vc << " (depth " << depth_[vc] << ")");
        --count_[vc];
    }

    /** Return one credit (downstream freed a slot). */
    void
    restore(unsigned vc)
    {
        assert(vc < count_.size());
        if (unlimited_)
            return;
        ORION_CHECK(count_[vc] < depth_[vc],
                    "credit overflow: restore beyond depth "
                        << depth_[vc] << " on VC " << vc);
        ++count_[vc];
    }

    /**
     * Test-only corruption hook: silently steal one credit from
     * VC @p vc without any matching flit motion, so the network-wide
     * credit audit can prove it detects real accounting bugs. Never
     * call outside tests.
     */
    void debugCorruptCredit(unsigned vc);

  private:
    std::vector<unsigned> count_;
    std::vector<unsigned> depth_;
    bool unlimited_;
};

} // namespace orion::router

#endif // ORION_ROUTER_CREDIT_HH
