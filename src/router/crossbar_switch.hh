/**
 * @file
 * Behavioural crossbar switch — the functional twin of
 * power::CrossbarModel.
 *
 * The crossbar connects input ports to output ports; a traversal
 * carries one flit from an input to an output and emits a
 * CrossbarTraversal event whose switching-activity delta is the real
 * Hamming distance between the flit's payload and the previous value
 * carried on that output's data wires (the paper's walkthrough: "The
 * crossbar module emits a crossbar traversal event and the crossbar
 * power model computes traversal energy E_xb").
 */

#ifndef ORION_ROUTER_CROSSBAR_SWITCH_HH
#define ORION_ROUTER_CROSSBAR_SWITCH_HH

#include <vector>

#include "power/activity.hh"
#include "router/flit.hh"
#include "sim/event.hh"

namespace orion::router {

/** Behavioural crossbar with per-output last-value tracking. */
class CrossbarSwitch
{
  public:
    /**
     * @param bus        event bus for power events
     * @param node       owning node id
     * @param inputs     number of input ports
     * @param outputs    number of output ports
     * @param flit_bits  datapath width
     */
    CrossbarSwitch(sim::EventBus& bus, int node, unsigned inputs,
                   unsigned outputs, unsigned flit_bits);

    unsigned inputs() const { return inputs_; }
    unsigned outputs() const { return outputs_; }

    /**
     * Move @p flit from @p in to @p out, emitting a CrossbarTraversal
     * event (component id = output port).
     */
    void traverse(unsigned in, unsigned out, const Flit& flit,
                  sim::Cycle now);

  private:
    sim::EventBus& bus_;
    int node_;
    unsigned inputs_;
    unsigned outputs_;
    unsigned flitBits_;
    std::vector<power::BitVec> lastOnOutput_;
};

} // namespace orion::router

#endif // ORION_ROUTER_CROSSBAR_SWITCH_HH
