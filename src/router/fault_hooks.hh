/**
 * @file
 * Fault-injection hooks the router layer calls out through.
 *
 * The concrete injector (net::FaultInjector) lives in the net layer,
 * which owns topology-wide state (link registry, per-source NACK
 * queues, fault schedules). Routers and links only ever see this
 * abstract interface, so the router layer stays independent of net/.
 *
 * Every hook is invoked from the single simulation thread in the fixed
 * module-iteration order, so implementations may use plain state and
 * still yield bit-identical fault schedules for a given seed.
 */

#ifndef ORION_ROUTER_FAULT_HOOKS_HH
#define ORION_ROUTER_FAULT_HOOKS_HH

#include <memory>

#include "router/flit.hh"
#include "sim/event.hh"

namespace orion::router {

/** Callback interface routers and links report faults through. */
class FaultHooks
{
  public:
    virtual ~FaultHooks() = default;

    /**
     * Called for every non-poison flit entering registered link
     * @p link. May corrupt @p flit's payload in place (bit errors,
     * outage garbage); the stamped linkCrc is left untouched so the
     * receiver detects the damage.
     */
    virtual void onLinkTraversal(unsigned link, Flit& flit,
                                 sim::Cycle now) = 0;

    /**
     * True if output port @p port of the router at node @p node is
     * stalled this cycle (scheduled port-stall fault). Must be a pure
     * schedule lookup — no RNG draws.
     */
    virtual bool portStalled(int node, unsigned port,
                             sim::Cycle now) = 0;

    /**
     * A receiver detected a corrupted flit of @p packet and killed the
     * packet's current attempt: request source retransmission (NACK).
     * May be called more than once per attempt (multi-hop faults);
     * sources deduplicate by (id, attempt).
     */
    virtual void
    onPacketKilled(const std::shared_ptr<const PacketInfo>& packet,
                   sim::Cycle now) = 0;

    /** A faulted or superseded flit was discarded at a router input
     * (its buffer credit is returned upstream separately). */
    virtual void onFlitDiscarded(const Flit& flit, sim::Cycle now) = 0;
};

} // namespace orion::router

#endif // ORION_ROUTER_FAULT_HOOKS_HH
