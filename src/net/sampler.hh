/**
 * @file
 * Windowed time-series sampling over a telemetry::MetricsRegistry.
 *
 * The sampler registers a periodic hook with the Simulator (alongside
 * the audit hook) and snapshots every registered metric at each
 * --sample-interval boundary: counters as per-window deltas, gauges as
 * instantaneous levels. The result is a time series — including the
 * per-node-per-window energy matrix that tools/power_heatmap.py turns
 * into a spatial power map — exported as long-format CSV
 * (window,cycle_start,cycle_end,metric,kind,value).
 *
 * registerNetworkMetrics() is the glue that publishes the network
 * layers' counters (routers, endpoints, power monitor, event bus,
 * fault injector) into a registry; see docs/OBSERVABILITY.md for the
 * full metric namespace.
 */

#ifndef ORION_NET_SAMPLER_HH
#define ORION_NET_SAMPLER_HH

#include <iosfwd>
#include <vector>

#include "core/telemetry.hh"
#include "sim/simulator.hh"

namespace orion::net {

class Network;
class PowerMonitor;
class FaultInjector;
class HealthMonitor;
class DeadlockDetector;

/** Snapshots a MetricsRegistry every @p interval cycles. */
class WindowedSampler
{
  public:
    /** One closed sampling window: values[i] corresponds to registry
     * metric i (counter: delta over the window; gauge: value at the
     * window's end). */
    struct Window
    {
        sim::Cycle start;
        sim::Cycle end;
        std::vector<double> values;
    };

    /** @p registry must outlive the sampler; @p interval > 0. */
    WindowedSampler(const telemetry::MetricsRegistry& registry,
                    sim::Cycle interval);

    WindowedSampler(const WindowedSampler&) = delete;
    WindowedSampler& operator=(const WindowedSampler&) = delete;

    sim::Cycle interval() const { return interval_; }

    /** Register the sampling hook with @p simulator. */
    void registerWith(sim::Simulator& simulator);

    /**
     * Drop all recorded windows and re-read counter baselines at
     * @p now. Called when the measurement window opens (after the
     * protocol's PowerMonitor::reset()), so warm-up activity is
     * excluded and counter deltas stay nonnegative across the reset.
     */
    void rebaseline(sim::Cycle now);

    /** Close the current window at @p now (the periodic hook). */
    void sample(sim::Cycle now);

    /**
     * Close a final partial window at @p now (end of drain).
     * Idempotent; a zero-length window is not recorded.
     */
    void finalize(sim::Cycle now);

    const std::vector<Window>& windows() const { return windows_; }

    /**
     * Export every window as long-format CSV:
     * window,cycle_start,cycle_end,metric,kind,value.
     */
    void writeCsv(std::ostream& out) const;

  private:
    std::vector<double> readAll() const;

    const telemetry::MetricsRegistry& registry_;
    sim::Cycle interval_;
    sim::Cycle windowStart_ = 0;
    /** Counter values at the start of the open window. */
    std::vector<double> baseline_;
    std::vector<Window> windows_;
};

/**
 * Publish the standard network metric namespace into @p registry:
 * net.* aggregates, latency.*, per-node node.N.* and router.N.*
 * counters/gauges, the per-(node, component-class) energy matrix
 * power.N.CLASS.energy_j, events.* bus totals, fault.* counters when
 * @p faults is non-null, rerouting counters (fault.reroutes,
 * net.packets_unreachable) when @p health is non-null, and
 * net.deadlocks_recovered when @p detector is non-null. All arguments
 * must outlive the registry's readers (they live in the owning
 * Simulation).
 */
void registerNetworkMetrics(telemetry::MetricsRegistry& registry,
                            Network& net, const PowerMonitor& monitor,
                            const sim::EventBus& bus,
                            const FaultInjector* faults,
                            const HealthMonitor* health = nullptr,
                            const DeadlockDetector* detector = nullptr);

} // namespace orion::net

#endif // ORION_NET_SAMPLER_HH
