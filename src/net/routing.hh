/**
 * @file
 * Source dimension-ordered routing (paper Section 4.1).
 *
 * "We choose simple source dimension-ordered routing where the route
 * is encoded in a packet beforehand at source." Dimension-ordered
 * routing "is where a packet always goes along one dimension first,
 * followed by another"; the paper's Section 4.3 analysis routes along
 * the y-axis first, which is the default order here.
 *
 * On a torus ring the minimal direction is chosen; exact half-way ties
 * are broken randomly per packet so traffic stays statistically
 * symmetric (this preserves the paper's Figure 6 symmetry arguments).
 *
 * Dateline deadlock avoidance exploits source routing: at route-build
 * time we know whether a ring traversal crosses the wraparound edge,
 * and assign the whole traversal VC class 1 if so, class 0 otherwise.
 * Within each class the ring's channel dependency graph is acyclic, so
 * the scheme is deadlock-free while letting both classes carry
 * traffic (see DESIGN.md).
 */

#ifndef ORION_NET_ROUTING_HH
#define ORION_NET_ROUTING_HH

#include <vector>

#include "net/topology.hh"
#include "router/flit.hh"
#include "router/router.hh"
#include "sim/rng.hh"

namespace orion::net {

/**
 * Direction choice for exact half-way ring ties.
 *
 * Random keeps traffic statistically symmetric (the paper's Figure 6
 * spatial-symmetry arguments rely on this). PreferWrap routes every
 * tie through the wraparound edge, which balances the two dateline VC
 * classes 50/50 (with random ties only ~1/3 of ring traffic crosses
 * the wrap, starving the class-1 VCs) — the right choice for
 * dateline-protected throughput studies.
 */
enum class TieBreak
{
    Random,
    PreferWrap,
};

/** Source-route builder for dimension-ordered routing. */
class DorRouting
{
  public:
    /**
     * @param topo       network topology
     * @param dim_order  dimension traversal order; default is
     *                   highest-dimension-first (y before x in 2D,
     *                   matching the paper's Section 4.3)
     * @param deadlock   VC-class discipline baked into routes
     * @param tie_break  half-way ring tie policy
     */
    DorRouting(const Topology& topo, std::vector<unsigned> dim_order,
               router::DeadlockMode deadlock,
               TieBreak tie_break = TieBreak::Random);

    /** Convenience: default (y-first) dimension order. */
    static std::vector<unsigned> defaultOrder(const Topology& topo);

    /**
     * Build the source route from @p src to @p dst (src != dst): one
     * RouteHop per router on the path, ending with the ejection hop at
     * the destination router. @p rng breaks half-way direction ties.
     */
    std::vector<router::RouteHop> route(int src, int dst,
                                        sim::Rng& rng) const;

    /**
     * route() into a caller-provided vector (cleared first), reusing
     * its capacity — the allocation-free path for pooled packets.
     */
    void routeInto(int src, int dst, sim::Rng& rng,
                   std::vector<router::RouteHop>& hops) const;

  private:
    const Topology& topo_;
    std::vector<unsigned> dimOrder_;
    router::DeadlockMode deadlock_;
    TieBreak tieBreak_;
};

} // namespace orion::net

#endif // ORION_NET_ROUTING_HH
