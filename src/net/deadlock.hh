/**
 * @file
 * Runtime deadlock detection and recovery.
 *
 * Per-router progress counters feed a global detector: every probe
 * interval it compares each router's lifetime flitsForwarded ledger
 * against the last probe. A router that holds resident flits but
 * forwarded nothing accumulates frozen cycles; when every occupied
 * router has been frozen for the configured threshold (and packets
 * are in flight), the detector walks the routers' VC wait-for state —
 * credit waits toward downstream input VCs, VC-allocation waits toward
 * the input VC holding the requested output VC — extracts the actual
 * wait-for cycle, and recovers by poisoning the oldest blocked worm
 * whose head is parked at a VC front (router::Router::
 * poisonBlockedWorm). The poisoned attempt is NACKed through the
 * fault hooks, so the PR-3 retransmission path resends it; if
 * recovery is impossible (no diagnosable cycle victim, or the
 * recovery budget is spent) the run stops with
 * StopReason::DeadlockUnrecovered and the wait-for graph lands in the
 * forensics JSON.
 *
 * The detector reads only snapshot state (Router::vcWaitState) built
 * for input-buffered crossbar routers (VC and wormhole kinds);
 * central-buffer routers expose no per-VC wait state, so detection
 * falls back to the generic watchdog there. Everything is off by
 * default and deterministic: probes run on the single simulation
 * thread at fixed cycles, so results are bit-identical at any --jobs.
 */

#ifndef ORION_NET_DEADLOCK_HH
#define ORION_NET_DEADLOCK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/module.hh"

namespace orion::net {

class Network;

/** Runtime deadlock detection knobs (defaults = disabled). */
struct DeadlockDetectConfig
{
    bool enabled = false;
    /** Progress-probe period in cycles. */
    sim::Cycle probeCycles = 128;
    /** Frozen-cycle bound before the wait-for walk runs. */
    sim::Cycle thresholdCycles = 1024;
    /** Worm poisonings allowed before declaring the run
     * unrecoverable. */
    unsigned maxRecoveries = 16;
};

/** Global progress watcher + wait-for-cycle extractor/breaker. */
class DeadlockDetector : public sim::Module
{
  public:
    /** One VC in the extracted wait-for cycle (forensics). */
    struct WaitVc
    {
        int node = 0;
        unsigned port = 0;
        unsigned vc = 0;
        /** 0 idle, 1 waiting-for-VC, 2 active (holding an output
         * VC). */
        int phase = 0;
        unsigned outPort = 0;
        unsigned outVc = 0;
        std::uint64_t packetId = 0;
        sim::Cycle createdAt = 0;
        bool frontHead = false;
    };

    DeadlockDetector(Network& net, const DeadlockDetectConfig& config);

    void cycle(sim::Cycle now) override;

    /// @name Results (Simulation, forensics, telemetry)
    /// @{
    /** Wait-for cycles found over the run. */
    std::uint64_t detections() const { return detections_; }
    /** Worms poisoned to break a cycle. */
    std::uint64_t recoveries() const { return recoveries_; }
    /** True once a detected cycle could not be broken; the run stops
     * with StopReason::DeadlockUnrecovered. */
    bool unrecoverable() const { return unrecoverable_; }
    /** The most recently extracted wait-for cycle, in edge order. */
    const std::vector<WaitVc>& lastWaitCycle() const
    {
        return lastWaitCycle_;
    }
    /** JSON object describing the last wait-for graph and cycle
     * (empty before the first detection). */
    const std::string& waitGraphJson() const { return waitGraphJson_; }
    /** Cycle of the most recent detection. */
    sim::Cycle lastDetectionAt() const { return lastDetectionAt_; }
    /// @}

  private:
    bool frozenEverywhere();
    void detect(sim::Cycle now);

    Network& net_;
    DeadlockDetectConfig cfg_;

    /** Per-router flitsForwarded at the previous probe. */
    std::vector<std::uint64_t> lastForwarded_;
    /** Per-router cycles spent occupied with zero forwarding. */
    std::vector<sim::Cycle> frozen_;

    std::uint64_t detections_ = 0;
    std::uint64_t recoveries_ = 0;
    bool unrecoverable_ = false;
    std::vector<WaitVc> lastWaitCycle_;
    std::string waitGraphJson_;
    sim::Cycle lastDetectionAt_ = 0;
};

} // namespace orion::net

#endif // ORION_NET_DEADLOCK_HH
