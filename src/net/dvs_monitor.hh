/**
 * @file
 * History-based DVS policy monitor for links.
 *
 * Implements the evaluation half of the paper's "third usage mode"
 * (Section 4, Figure 3c): a researcher attaches a new mechanism's
 * power model to the event stream and compares against the baseline.
 * Here the mechanism is per-link dynamic voltage scaling (the paper's
 * reference [17]): each link observes its traversal count over fixed
 * windows and picks next window's voltage level from utilization
 * thresholds — high traffic keeps the nominal voltage, light traffic
 * drops to lower levels.
 *
 * The monitor accumulates both the DVS energy and the
 * nominal-voltage baseline energy over the same event stream, so the
 * saving is an apples-to-apples comparison. Transition timing costs
 * are not modeled (this evaluates the power side; [17] reports the
 * latency penalties).
 */

#ifndef ORION_NET_DVS_MONITOR_HH
#define ORION_NET_DVS_MONITOR_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "power/dvs_link_model.hh"
#include "sim/event.hh"

namespace orion::net {

/** Threshold policy: utilization -> level for the next window. */
struct DvsPolicy
{
    /** Window length in cycles. */
    sim::Cycle windowCycles = 256;
    /**
     * Descending utilization thresholds selecting levels 0..N-1: the
     * first threshold whose value the measured utilization meets or
     * exceeds selects that level; below all thresholds picks the last
     * (lowest) level. Size must be numLevels - 1.
     */
    std::vector<double> thresholds{0.5, 0.25};
};

/** Per-link DVS state machine + energy accounting. */
class DvsLinkMonitor
{
  public:
    /**
     * Subscribes to LinkTraversal events on @p bus.
     *
     * @param model   the voltage-scalable link model
     * @param policy  level-selection policy
     */
    DvsLinkMonitor(sim::EventBus& bus, power::DvsLinkModel model,
                   DvsPolicy policy);

    /** Energy consumed with DVS active (joules). */
    double dvsEnergy() const { return dvsEnergy_; }

    /** Energy the same traffic would consume at nominal voltage. */
    double baselineEnergy() const { return baselineEnergy_; }

    /** Fraction of energy saved vs. the nominal baseline. */
    double savings() const;

    /** Traversals served at each level (level-usage histogram). */
    const std::vector<std::uint64_t>& levelTraversals() const
    {
        return levelTraversals_;
    }

    /** Current level of link (@p node, @p port); 0 if never seen. */
    unsigned linkLevel(int node, int port) const;

    /** Zero all accumulated energy and histograms (keeps levels). */
    void reset();

  private:
    struct LinkState
    {
        /** Start cycle of the current observation window. */
        sim::Cycle windowStart = 0;
        /** Traversals observed in the current window. */
        std::uint64_t windowCount = 0;
        /** Level in force for the current window. */
        unsigned level = 0;
    };

    void onTraversal(const sim::Event& ev);
    unsigned pickLevel(double utilization) const;
    void advanceWindows(LinkState& st, sim::Cycle now) const;

    power::DvsLinkModel model_;
    DvsPolicy policy_;
    std::map<std::pair<int, int>, LinkState> links_;
    double dvsEnergy_ = 0.0;
    double baselineEnergy_ = 0.0;
    std::vector<std::uint64_t> levelTraversals_;
};

} // namespace orion::net

#endif // ORION_NET_DVS_MONITOR_HH
