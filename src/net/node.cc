#include "net/node.hh"

#include <cassert>

namespace orion::net {

Node::Node(std::string name, int node, const Topology& topo,
           const DorRouting& routing, TrafficGenerator& traffic,
           SharedState& shared, unsigned packet_length,
           unsigned flit_bits, unsigned router_vcs,
           unsigned buffer_depth, std::uint64_t seed,
           sim::EventBus& bus, InjectionPolicy policy)
    : sim::Module(std::move(name), node),
      topo_(topo),
      routing_(routing),
      traffic_(traffic),
      shared_(shared),
      bus_(bus),
      rng_(seed ^ (0x5bd1e995u * static_cast<std::uint64_t>(node + 1))),
      packetLength_(packet_length),
      flitBits_(flit_bits),
      routerVcs_(router_vcs),
      policy_(policy),
      injectionCredits_(std::make_unique<router::CreditCounter>(
          router_vcs, buffer_depth))
{
    assert(packet_length >= 1 && flit_bits >= 1 && router_vcs >= 1);
}

void
Node::connectInjection(router::FlitLink* to_router,
                       router::CreditLink* credit_from_router)
{
    toRouter_ = to_router;
    creditFromRouter_ = credit_from_router;
}

void
Node::connectEjection(router::FlitLink* from_router)
{
    fromRouter_ = from_router;
}

void
Node::setFaultInjector(FaultInjector* injector)
{
    injector_ = injector;
}

power::BitVec
Node::randomPayload()
{
    power::BitVec v(flitBits_);
    for (std::size_t w = 0; w < v.wordCount(); ++w)
        v.setWord(w, rng_.next());
    return v;
}

void
Node::cycle(sim::Cycle now)
{
    // Credits freed by the router's local input buffer.
    if (creditFromRouter_ && creditFromRouter_->valid()) {
        const router::Credit c = creditFromRouter_->read();
        injectionCredits_->restore(c.vc);
    }

    ejectStage(now);
    retransmitStage(now);
    generateStage(now);
    injectStage(now);
}

void
Node::ejectStage(sim::Cycle now)
{
    if (!fromRouter_ || !fromRouter_->valid())
        return;
    const router::Flit flit = fromRouter_->read();
    assert(flit.packet->dst == node() && "flit ejected at wrong node");
    ++flitsEjected_;
    ++flitsEjectedTotal_;
    // A poison tail closes a killed worm; the packet attempt it ends
    // never completes (the source retransmits), so it must not count
    // as a packet ejection or a latency sample.
    if (flit.poison)
        return;
    if (!flit.tail)
        return;

    ++packetsEjected_;
    const auto latency =
        static_cast<double>(now - flit.packet->createdAt);
    if (flit.packet->sample) {
        ++shared_.sampleEjected;
        shared_.sampleLatency.add(latency);
        shared_.sampleLatencyHist.add(latency);
    }
    bus_.emit({sim::EventType::PacketEjected, node(), 0,
               static_cast<std::uint32_t>(latency),
               flit.packet->sample ? 1u : 0u, now});
}

void
Node::retransmitStage(sim::Cycle now)
{
    if (!injector_)
        return;

    for (const Nack& nack : injector_->takeNacks(node())) {
        const auto& pkt = nack.packet;
        // attempts_[] lookup default-constructs to 0 for first-time
        // ids, matching PacketInfo::attempt of original sends.
        unsigned& current = attempts_[pkt->id];
        if (pkt->attempt != current)
            continue; // stale duplicate for a superseded attempt

        const FaultConfig& cfg = injector_->config();
        const unsigned next = current + 1;
        ++current; // later NACKs for the killed attempt are now stale
        if (next > cfg.retryLimit) {
            ++packetsLost_;
            if (pkt->sample)
                ++shared_.sampleLost;
            injector_->recordPacketLost(node(), pkt->id, now);
            continue;
        }

        // Retransmit the same logical packet (same id, createdAt,
        // sample flag, route — recovery time counts toward latency)
        // as a fresh worm with a bumped attempt number, after a
        // backoff that doubles per attempt.
        auto clone = std::make_shared<router::PacketInfo>(*pkt);
        clone->attempt = next;
        const sim::Cycle delay = cfg.retryBackoffCycles
                                 << (next - 1);
        retryQueue_.emplace_back(now + delay, std::move(clone));
        injector_->recordRetransmission(node(), pkt->id, now);
    }

    // Release retries whose backoff expired, preserving scheduling
    // order. push_back (never push_front): the source queue's head
    // may be mid-injection (injectSeq_ > 0) and must not be displaced.
    for (auto it = retryQueue_.begin(); it != retryQueue_.end();) {
        if (it->first <= now) {
            sourceQueue_.push_back(std::move(it->second));
            it = retryQueue_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Node::generateStage(sim::Cycle now)
{
    const std::optional<int> dst =
        traffic_.maybeInject(node(), now, rng_);
    if (!dst)
        return;

    auto pkt = std::make_shared<router::PacketInfo>();
    pkt->id = shared_.nextPacketId++;
    pkt->src = node();
    pkt->dst = *dst;
    pkt->createdAt = now;
    pkt->length = packetLength_;
    pkt->sample = false;
    if (shared_.sampling && shared_.sampleRemaining > 0) {
        pkt->sample = true;
        --shared_.sampleRemaining;
        ++shared_.sampleInjected;
        if (shared_.sampleRemaining == 0)
            shared_.sampling = false;
    }
    pkt->route = routing_.route(node(), *dst, rng_);

    ++packetsInjected_;
    bus_.emit({sim::EventType::PacketInjected, node(), 0,
               static_cast<std::uint32_t>(pkt->route.size()),
               pkt->sample ? 1u : 0u, now});
    sourceQueue_.push_back(std::move(pkt));
}

void
Node::injectStage(sim::Cycle now)
{
    if (!toRouter_ || sourceQueue_.empty())
        return;

    const auto& pkt = sourceQueue_.front();
    const bool is_head = injectSeq_ == 0;

    if (is_head) {
        if (policy_ == InjectionPolicy::SingleVc) {
            if (injectionCredits_->available(0) == 0)
                return;
            injectVc_ = 0;
        } else {
            // Pick the local input VC with the most credits; stall if
            // all are exhausted.
            unsigned best_vc = 0;
            unsigned best = 0;
            for (unsigned v = 0; v < routerVcs_; ++v) {
                const unsigned avail = injectionCredits_->available(v);
                if (avail > best) {
                    best = avail;
                    best_vc = v;
                }
            }
            if (best == 0)
                return;
            injectVc_ = best_vc;
        }
    } else if (injectionCredits_->available(injectVc_) == 0) {
        return;
    }

    router::Flit flit;
    flit.packet = pkt;
    flit.head = is_head;
    flit.tail = injectSeq_ + 1 == packetLength_;
    flit.seq = injectSeq_;
    flit.hop = 0;
    flit.vc = static_cast<std::uint8_t>(injectVc_);
    flit.payload = randomPayload();
    // Stamp the end-to-end CRC once at the source: the payload is
    // immutable along a fault-free path, so any mismatch downstream
    // is link corruption.
    if (injector_)
        flit.linkCrc = router::payloadChecksum(flit.payload);

    injectionCredits_->consume(injectVc_);
    toRouter_->send(std::move(flit), bus_, now);
    ++flitsInjectedTotal_;

    if (++injectSeq_ == packetLength_) {
        injectSeq_ = 0;
        sourceQueue_.pop_front();
    }
}

} // namespace orion::net
