#include "net/node.hh"

#include <cassert>

#include "net/health.hh"

namespace orion::net {

Node::Node(std::string name, int node, const Topology& topo,
           const DorRouting& routing, TrafficGenerator& traffic,
           SharedState& shared, unsigned packet_length,
           unsigned flit_bits, unsigned router_vcs,
           unsigned buffer_depth, std::uint64_t seed,
           sim::EventBus& bus, InjectionPolicy policy)
    : sim::Module(std::move(name), node),
      topo_(topo),
      routing_(routing),
      traffic_(traffic),
      shared_(shared),
      bus_(bus),
      rng_(seed ^ (0x5bd1e995u * static_cast<std::uint64_t>(node + 1))),
      packetLength_(packet_length),
      flitBits_(flit_bits),
      routerVcs_(router_vcs),
      policy_(policy),
      injectionCredits_(std::make_unique<router::CreditCounter>(
          router_vcs, buffer_depth))
{
    assert(packet_length >= 1 && flit_bits >= 1 && router_vcs >= 1);
}

void
Node::connectInjection(router::FlitLink* to_router,
                       router::CreditLink* credit_from_router)
{
    toRouter_ = to_router;
    creditFromRouter_ = credit_from_router;
}

void
Node::connectEjection(router::FlitLink* from_router)
{
    fromRouter_ = from_router;
}

void
Node::setFaultInjector(FaultInjector* injector)
{
    injector_ = injector;
}

void
Node::setHealthMonitor(HealthMonitor* health)
{
    health_ = health;
}

void
Node::debugInjectPacket(std::shared_ptr<const router::PacketInfo> pkt)
{
    assert(pkt && pkt->length >= 1 && !pkt->route.empty());
    ++packetsInjected_;
    sourceQueue_.push_back(std::move(pkt));
}

power::BitVec
Node::randomPayload()
{
    power::BitVec v(flitBits_);
    for (std::size_t w = 0; w < v.wordCount(); ++w)
        v.setWord(w, rng_.next());
    return v;
}

void
Node::cycle(sim::Cycle now)
{
    // Credits freed by the router's local input buffer.
    if (creditFromRouter_ && creditFromRouter_->valid()) {
        const router::Credit c = creditFromRouter_->read();
        injectionCredits_->restore(c.vc);
    }

    ejectStage(now);
    rerouteStage(now);
    retransmitStage(now);
    generateStage(now);
    injectStage(now);
}

void
Node::dropUnreachable(const router::PacketInfo& pkt)
{
    ++packetsUnreachable_;
    if (pkt.sample)
        ++shared_.sampleLost;
}

bool
Node::healRoute(std::shared_ptr<const router::PacketInfo>& pkt)
{
    if (health_->routeHealthy(node(), pkt->route))
        return true;
    auto detour = health_->buildDetour(node(), pkt->dst);
    if (!detour)
        return false;
    // PacketInfo is shared immutably with in-flight flits; replace the
    // route on a private clone.
    std::shared_ptr<router::PacketInfo> clone =
        shared_.packetPool.acquire();
    *clone = *pkt;
    clone->route = std::move(*detour);
    pkt = std::move(clone);
    health_->noteReroute();
    return true;
}

void
Node::rerouteStage(sim::Cycle now)
{
    (void)now;
    if (!health_ || healthEpoch_ == health_->epoch())
        return;
    healthEpoch_ = health_->epoch();

    // Rebuild the routes of queued packets that now cross a dead link
    // (or whose detour is obsolete after a repair, which routeHealthy
    // leaves alone — only broken routes are rebuilt). The source-queue
    // head is skipped while mid-injection: its in-flight flits
    // reference the current route.
    for (std::size_t k = 0; k < sourceQueue_.size();) {
        if (k == 0 && injectSeq_ > 0) {
            ++k;
            continue;
        }
        if (healRoute(sourceQueue_[k])) {
            ++k;
            continue;
        }
        dropUnreachable(*sourceQueue_[k]);
        sourceQueue_.erase(sourceQueue_.begin() +
                           static_cast<std::ptrdiff_t>(k));
    }
    for (auto it = retryQueue_.begin(); it != retryQueue_.end();) {
        if (healRoute(it->second)) {
            ++it;
            continue;
        }
        dropUnreachable(*it->second);
        it = retryQueue_.erase(it);
    }
}

void
Node::ejectStage(sim::Cycle now)
{
    if (!fromRouter_ || !fromRouter_->valid())
        return;
    const router::Flit flit = fromRouter_->read();
    assert(flit.packet->dst == node() && "flit ejected at wrong node");
    ++flitsEjected_;
    ++flitsEjectedTotal_;
    // A poison tail closes a killed worm; the packet attempt it ends
    // never completes (the source retransmits), so it must not count
    // as a packet ejection or a latency sample.
    if (flit.poison)
        return;
    if (!flit.tail)
        return;

    ++packetsEjected_;
    const auto latency =
        static_cast<double>(now - flit.packet->createdAt);
    if (flit.packet->sample) {
        ++shared_.sampleEjected;
        shared_.sampleLatency.add(latency);
        shared_.sampleLatencyHist.add(latency);
    }
    bus_.emit({sim::EventType::PacketEjected, node(), 0,
               static_cast<std::uint32_t>(latency),
               flit.packet->sample ? 1u : 0u, now});
}

void
Node::retransmitStage(sim::Cycle now)
{
    if (!injector_)
        return;

    for (const Nack& nack : injector_->takeNacks(node())) {
        const auto& pkt = nack.packet;
        // attempts_[] lookup default-constructs to 0 for first-time
        // ids, matching PacketInfo::attempt of original sends.
        unsigned& current = attempts_[pkt->id];
        if (pkt->attempt != current)
            continue; // stale duplicate for a superseded attempt

        const FaultConfig& cfg = injector_->config();
        const unsigned next = current + 1;
        ++current; // later NACKs for the killed attempt are now stale
        if (next > cfg.retryLimit) {
            ++packetsLost_;
            if (pkt->sample)
                ++shared_.sampleLost;
            injector_->recordPacketLost(node(), pkt->id, now);
            continue;
        }

        // Retransmit the same logical packet (same id, createdAt,
        // sample flag, route — recovery time counts toward latency)
        // as a fresh worm with a bumped attempt number, after a
        // backoff that doubles per attempt.
        std::shared_ptr<router::PacketInfo> clone =
            shared_.packetPool.acquire();
        *clone = *pkt;
        clone->attempt = next;
        std::shared_ptr<const router::PacketInfo> resend =
            std::move(clone);
        // With rerouting on, don't retransmit into a dead link: build
        // a surviving-graph detour now, or fail fast as unreachable
        // when the destination is partitioned.
        if (health_ && health_->degraded() && !healRoute(resend)) {
            dropUnreachable(*resend);
            continue;
        }
        const sim::Cycle delay = cfg.retryBackoffCycles
                                 << (next - 1);
        retryQueue_.emplace_back(now + delay, std::move(resend));
        injector_->recordRetransmission(node(), pkt->id, now);
    }

    // Release retries whose backoff expired, preserving scheduling
    // order. push_back (never push_front): the source queue's head
    // may be mid-injection (injectSeq_ > 0) and must not be displaced.
    for (auto it = retryQueue_.begin(); it != retryQueue_.end();) {
        if (it->first <= now) {
            sourceQueue_.push_back(std::move(it->second));
            it = retryQueue_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Node::generateStage(sim::Cycle now)
{
    const std::optional<int> dst =
        traffic_.maybeInject(node(), now, rng_);
    if (!dst)
        return;

    // Pooled allocation: a recycled PacketInfo keeps its old field
    // values (and, usefully, its route vector's capacity), so every
    // field is assigned here — including attempt, which make_shared
    // used to zero via the default initializer.
    std::shared_ptr<router::PacketInfo> pkt =
        shared_.packetPool.acquire();
    pkt->id = shared_.nextPacketId++;
    pkt->src = node();
    pkt->dst = *dst;
    pkt->createdAt = now;
    pkt->length = packetLength_;
    pkt->sample = false;
    pkt->attempt = 0;
    if (shared_.sampling && shared_.sampleRemaining > 0) {
        pkt->sample = true;
        --shared_.sampleRemaining;
        ++shared_.sampleInjected;
        if (shared_.sampleRemaining == 0)
            shared_.sampling = false;
    }
    // Always draw the normal DOR route first so the RNG stream is
    // identical with and without rerouting enabled; only then check
    // it against the surviving topology.
    routing_.routeInto(node(), *dst, rng_, pkt->route);
    bool unreachable = false;
    if (health_ && health_->degraded() &&
        !health_->routeHealthy(node(), pkt->route)) {
        auto detour = health_->buildDetour(node(), *dst);
        if (detour) {
            pkt->route = std::move(*detour);
            health_->noteReroute();
        } else {
            unreachable = true;
        }
    }

    ++packetsInjected_;
    bus_.emit({sim::EventType::PacketInjected, node(), 0,
               static_cast<std::uint32_t>(pkt->route.size()),
               pkt->sample ? 1u : 0u, now});
    if (unreachable) {
        // Fail fast: the destination is partitioned. The packet is
        // closed immediately (never queued), settling the sample and
        // in-flight accounting without burning the retry budget.
        dropUnreachable(*pkt);
        return;
    }
    sourceQueue_.push_back(std::move(pkt));
}

void
Node::injectStage(sim::Cycle now)
{
    if (!toRouter_ || sourceQueue_.empty())
        return;

    const auto& pkt = sourceQueue_.front();
    const bool is_head = injectSeq_ == 0;

    if (is_head) {
        if (policy_ == InjectionPolicy::SingleVc) {
            if (injectionCredits_->available(0) == 0)
                return;
            injectVc_ = 0;
        } else {
            // Pick the local input VC with the most credits; stall if
            // all are exhausted.
            unsigned best_vc = 0;
            unsigned best = 0;
            for (unsigned v = 0; v < routerVcs_; ++v) {
                const unsigned avail = injectionCredits_->available(v);
                if (avail > best) {
                    best = avail;
                    best_vc = v;
                }
            }
            if (best == 0)
                return;
            injectVc_ = best_vc;
        }
    } else if (injectionCredits_->available(injectVc_) == 0) {
        return;
    }

    router::Flit flit;
    flit.packet = pkt;
    flit.head = is_head;
    // pkt->length (not packetLength_): debug-injected packets may
    // carry a different length than the traffic process generates.
    flit.tail = injectSeq_ + 1 == pkt->length;
    flit.seq = injectSeq_;
    flit.hop = 0;
    flit.vc = static_cast<std::uint8_t>(injectVc_);
    flit.payload = randomPayload();
    // Stamp the end-to-end CRC once at the source: the payload is
    // immutable along a fault-free path, so any mismatch downstream
    // is link corruption.
    if (injector_)
        flit.linkCrc = router::payloadChecksum(flit.payload);

    injectionCredits_->consume(injectVc_);
    toRouter_->send(std::move(flit), bus_, now);
    ++flitsInjectedTotal_;

    if (++injectSeq_ == pkt->length) {
        injectSeq_ = 0;
        sourceQueue_.pop_front();
    }
}

} // namespace orion::net
