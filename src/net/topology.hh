/**
 * @file
 * k-ary n-cube topologies (torus and mesh).
 *
 * The paper's experiments use a 4x4 torus (Section 4.1, Figure 4) with
 * five physical bidirectional ports per router: one per direction per
 * dimension plus the local injection/ejection port.
 *
 * Port convention: dimension d, plus direction -> port 2d; minus
 * direction -> port 2d+1; local -> port 2n.
 */

#ifndef ORION_NET_TOPOLOGY_HH
#define ORION_NET_TOPOLOGY_HH

#include <cstdint>
#include <vector>

namespace orion::net {

/** Node coordinates in an n-dimensional grid. */
using Coord = std::vector<unsigned>;

/** A k-ary n-cube: torus when wrapped, mesh otherwise. */
class Topology
{
  public:
    /**
     * @param dims  radix per dimension, e.g. {4, 4} for a 4x4 grid
     * @param wrap  true for torus wraparound links, false for a mesh
     */
    Topology(std::vector<unsigned> dims, bool wrap);

    unsigned dimensions() const;
    unsigned radix(unsigned dim) const;
    bool wrapped() const { return wrap_; }
    unsigned numNodes() const { return numNodes_; }

    /** Ports per router, including the local port. */
    unsigned portsPerRouter() const { return 2 * dimensions() + 1; }
    /** Index of the local injection/ejection port. */
    unsigned localPort() const { return 2 * dimensions(); }
    /** Port for dimension @p dim, direction @p plus. */
    unsigned port(unsigned dim, bool plus) const;
    /** Dimension a network port belongs to. */
    unsigned portDimension(unsigned port) const;
    /** True if a network port points in the plus direction. */
    bool portIsPlus(unsigned port) const;

    /** Node id at coordinates @p c. */
    int nodeAt(const Coord& c) const;
    /** Coordinates of node @p node. */
    Coord coordsOf(int node) const;

    /**
     * Neighbor of @p node through @p port, or -1 if the port faces a
     * mesh edge. For a torus every network port has a neighbor.
     */
    int neighbor(int node, unsigned port) const;

    /** Hop count of minimal routing between two nodes. */
    unsigned minimalHops(int a, int b) const;

    /** Manhattan distance used by the paper's Figure 6 analysis
     * (identical to minimalHops on a torus). */
    unsigned manhattanDistance(int a, int b) const;

  private:
    std::vector<unsigned> dims_;
    bool wrap_;
    unsigned numNodes_;
};

} // namespace orion::net

#endif // ORION_NET_TOPOLOGY_HH
