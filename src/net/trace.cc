#include "net/trace.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace orion::net {

std::vector<TraceRecord>
Trace::parse(std::istream& in)
{
    std::vector<TraceRecord> records;
    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        long long cycle = 0;
        int src = 0;
        int dst = 0;
        if (!(fields >> cycle)) {
            continue; // blank or comment-only line
        }
        if (!(fields >> src >> dst) || cycle < 0) {
            throw std::runtime_error(
                "trace: malformed record at line " +
                std::to_string(line_no));
        }
        std::string extra;
        if (fields >> extra) {
            throw std::runtime_error(
                "trace: trailing fields at line " +
                std::to_string(line_no));
        }
        if (src == dst) {
            throw std::runtime_error(
                "trace: self-addressed packet at line " +
                std::to_string(line_no));
        }
        records.push_back(
            {static_cast<sim::Cycle>(cycle), src, dst});
    }
    return records;
}

std::vector<TraceRecord>
Trace::load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("trace: cannot open " + path);
    return parse(in);
}

void
Trace::validate(const std::vector<TraceRecord>& records,
                unsigned num_nodes)
{
    for (const auto& r : records) {
        if (r.src < 0 || static_cast<unsigned>(r.src) >= num_nodes ||
            r.dst < 0 || static_cast<unsigned>(r.dst) >= num_nodes) {
            throw std::runtime_error(
                "trace: node id out of range (nodes: " +
                std::to_string(num_nodes) + ")");
        }
        if (r.src == r.dst)
            throw std::runtime_error("trace: self-addressed packet");
    }
}

} // namespace orion::net
