/**
 * @file
 * The power monitor: the glue between the event subsystem and the
 * component power models (paper Figure 1 / Section 2.1).
 *
 * "Power models in the power simulation library are hooked to these
 * events so when an event occurs during the execution, it triggers the
 * specific power model, which calculates and accumulates the energy
 * consumed."
 *
 * Energy is accumulated per (node, component class); average power is
 * E x f_clk / cycles (paper Section 4.1). Chip-to-chip links draw
 * constant power independent of traffic and are folded in at reporting
 * time.
 */

#ifndef ORION_NET_POWER_MONITOR_HH
#define ORION_NET_POWER_MONITOR_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "power/arbiter_model.hh"
#include "power/buffer_model.hh"
#include "power/central_buffer_model.hh"
#include "power/crossbar_model.hh"
#include "power/link_model.hh"
#include "sim/event.hh"
#include "tech/tech_node.hh"

namespace orion::net {

/** Component classes energy is attributed to (paper Figure 5(c)). */
enum class ComponentClass : unsigned
{
    Buffer,
    Crossbar,
    Arbiter,
    Link,
    CentralBuffer,
};

constexpr unsigned kNumComponentClasses = 5;

/** Human-readable component-class name. */
const char* componentClassName(ComponentClass c);

/** The set of power models instantiated for one router design. */
struct PowerModelSet
{
    tech::TechNode tech;
    /** Input buffer model (always present). */
    std::unique_ptr<power::BufferModel> buffer;
    /** Main crossbar (absent for CB routers). */
    std::unique_ptr<power::CrossbarModel> crossbar;
    /** Switch arbiter (per output port). */
    std::unique_ptr<power::ArbiterModel> switchArbiter;
    /** VC allocation arbiter (VC routers only). */
    std::unique_ptr<power::ArbiterModel> vcArbiter;
    /** Central buffer (CB routers only). */
    std::unique_ptr<power::CentralBufferModel> centralBuffer;
    /** On-chip link (traffic-sensitive); mutually exclusive with
     * chipToChipLink. */
    std::unique_ptr<power::OnChipLinkModel> onChipLink;
    /** Chip-to-chip link (constant power). */
    std::unique_ptr<power::ChipToChipLinkModel> chipToChipLink;
};

/** Subscribes power models to the event bus and accumulates energy. */
class PowerMonitor
{
  public:
    /**
     * @param links_per_node  outgoing inter-router links per node
     *                        (for constant-power chip-to-chip links)
     */
    PowerMonitor(sim::EventBus& bus, PowerModelSet models,
                 unsigned num_nodes, unsigned links_per_node);

    const PowerModelSet& models() const { return models_; }

    /** Dynamic energy accumulated for @p node, class @p c (joules). */
    double energy(int node, ComponentClass c) const;

    /** Dynamic energy accumulated for class @p c over all nodes. */
    double totalEnergy(ComponentClass c) const;

    /** Dynamic energy over all nodes and classes. */
    double totalEnergy() const;

    /**
     * Average power of @p node over @p cycles measured cycles,
     * including constant chip-to-chip link power if configured.
     */
    double nodePower(int node, double cycles) const;

    /** Average power of class @p c across the network. */
    double classPower(ComponentClass c, double cycles) const;

    /** Total network power over @p cycles measured cycles. */
    double networkPower(double cycles) const;

    /** Count of events seen for @p type since the last reset. */
    std::uint64_t eventCount(sim::EventType type) const;

    /** Raw per-(node, class) energy ledger, for audits. */
    const std::vector<std::array<double, kNumComponentClasses>>&
    energyLedger() const
    {
        return energy_;
    }

    /** Zero all accumulated energy (end of warm-up, paper 4.1). */
    void reset();

  private:
    void onEvent(const sim::Event& ev);
    void accumulate(int node, ComponentClass c, double joules);

    PowerModelSet models_;
    unsigned numNodes_;
    unsigned linksPerNode_;
    /** energy_[node][class] in joules. */
    std::vector<std::array<double, kNumComponentClasses>> energy_;
    std::array<std::uint64_t, sim::kNumEventTypes> eventCounts_{};
};

} // namespace orion::net

#endif // ORION_NET_POWER_MONITOR_HH
