/**
 * @file
 * Network builder: instantiates routers, endpoint nodes, and the data/
 * credit links between them from a topology and a router
 * configuration, and registers everything with the simulator — the
 * "pick, plug and play" composition step of the paper (Section 6).
 */

#ifndef ORION_NET_NETWORK_HH
#define ORION_NET_NETWORK_HH

#include <memory>
#include <vector>

#include "net/fault.hh"
#include "net/node.hh"
#include "net/routing.hh"
#include "net/topology.hh"
#include "net/traffic.hh"
#include "router/central_buffer_router.hh"
#include "router/router.hh"
#include "router/vc_router.hh"
#include "router/wormhole_router.hh"
#include "sim/simulator.hh"

namespace orion::net {

/** Router microarchitecture selector. */
enum class RouterKind
{
    Wormhole,
    VirtualChannel,
    CentralBuffer,
};

/** Structural parameters of a network. */
struct NetworkParams
{
    /** Radix per dimension, e.g. {4, 4}. */
    std::vector<unsigned> dims{4, 4};
    /** Torus (true) or mesh (false). */
    bool wrap = true;
    RouterKind routerKind = RouterKind::VirtualChannel;
    /** VCs per input port (must be 1 for Wormhole/CentralBuffer). */
    unsigned vcs = 2;
    /** Buffer depth per VC (input FIFO depth for CB routers). */
    unsigned bufferDepth = 8;
    unsigned flitBits = 256;
    unsigned packetLength = 5;
    router::DeadlockMode deadlock = router::DeadlockMode::Dateline;
    /** Behavioural arbiter style used throughout the routers. */
    router::ArbiterKind arbiterKind = router::ArbiterKind::Matrix;
    /** Speculative VA+SA single-stage pipeline (VC routers only). */
    bool speculative = false;
    /** Central-buffer organization (CB routers only). */
    router::CentralBufferRouterParams centralBuffer{10240, 2, 2, 2};
    /** Dimension traversal order; empty selects y-first default. */
    std::vector<unsigned> dimOrder{};
    /** Half-way ring tie policy (see net/routing.hh). */
    TieBreak tieBreak = TieBreak::Random;
    /** Source injection-VC policy (see net/node.hh). */
    InjectionPolicy injection = InjectionPolicy::SingleVc;
};

/**
 * One wired channel pair and its endpoints — the audit layer's map of
 * the network graph (see net::NetworkAuditor).
 */
struct LinkRecord
{
    enum class Kind
    {
        /** Router output port -> neighbor router input port. */
        InterRouter,
        /** Node source -> router local input port. */
        Injection,
        /** Router local output port -> node sink (no credits). */
        Ejection,
    };

    Kind kind;
    /** Sending node id (router or endpoint — same id). */
    int fromNode;
    /** Sender's output port (router ports; local port for wiring). */
    unsigned fromPort;
    /** Receiving node id. */
    int toNode;
    /** Receiver's input port. */
    unsigned toPort;
    router::FlitLink* data;
    /** Credit-return channel; nullptr for ejection wiring. */
    router::CreditLink* credit;
    /** Fault-injector link id for inter-router links when a fault
     * injector is attached; -1 otherwise. The health monitor keys its
     * surviving-topology view on this. */
    int faultLinkId = -1;
};

/** A fully wired network of routers, nodes, and links. */
class Network
{
  public:
    /**
     * Build the network and register all modules and channels with
     * @p simulator. When @p faults is non-null, fault hooks are
     * attached to every router, node, and inter-router link (links
     * register with the injector in wiring order, which is the
     * deterministic link-id contract), and the injector's schedules
     * are validated against the built topology.
     */
    Network(sim::Simulator& simulator, const NetworkParams& params,
            const TrafficParams& traffic, std::uint64_t seed,
            FaultInjector* faults = nullptr);

    const Topology& topology() const { return topo_; }
    const NetworkParams& params() const { return params_; }
    SharedState& shared() { return shared_; }
    const SharedState& shared() const { return shared_; }

    router::Router& router(int node) { return *routers_[node]; }
    const router::Router& router(int node) const
    {
        return *routers_[node];
    }
    Node& endpoint(int node) { return *nodes_[node]; }
    const Node& endpoint(int node) const { return *nodes_[node]; }

    /** Inter-router unidirectional links in the network. */
    unsigned interRouterLinks() const { return interRouterLinks_; }
    /** Inter-router links whose sender is @p node. */
    unsigned linksFrom(int node) const;

    /** Every wired channel pair, for network-wide audits. */
    const std::vector<LinkRecord>& linkRecords() const
    {
        return linkRecords_;
    }

    /** The attached fault injector, or nullptr in fault-free runs. */
    const FaultInjector* faultInjector() const { return faults_; }

    /// @name Aggregate statistics
    /// @{
    std::uint64_t totalInjected() const;
    std::uint64_t totalEjected() const;
    std::uint64_t totalFlitsEjected() const;
    /** Packets abandoned after exhausting the retry limit. */
    std::uint64_t totalLost() const;
    /** Packets dropped at the source because no surviving path to
     * their destination existed (rerouting enabled only). */
    std::uint64_t totalUnreachable() const;
    /** Packets created but neither fully ejected nor abandoned. */
    std::uint64_t inFlight() const;
    void resetFlitCounts();
    /// @}

  private:
    void buildRouters(sim::Simulator& simulator, std::uint64_t seed);
    void wire(sim::Simulator& simulator);

    NetworkParams params_;
    Topology topo_;
    DorRouting routing_;
    TrafficGenerator traffic_;
    SharedState shared_;
    FaultInjector* faults_ = nullptr;

    std::vector<std::unique_ptr<router::Router>> routers_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<router::FlitLink>> flitLinks_;
    std::vector<std::unique_ptr<router::CreditLink>> creditLinks_;
    std::vector<LinkRecord> linkRecords_;
    unsigned interRouterLinks_ = 0;
};

} // namespace orion::net

#endif // ORION_NET_NETWORK_HH
