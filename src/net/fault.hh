/**
 * @file
 * Deterministic fault injection for the network.
 *
 * A FaultInjector perturbs flits on inter-router links (random bit
 * errors at a configured bit-error rate, scheduled link-outage
 * windows) and stalls router output ports on a schedule. Fault
 * randomness comes from per-link sim::Rng streams derived with
 * sim::deriveSeed, and every hook runs on the single simulation
 * thread in fixed module order, so a given seed yields a bit-identical
 * fault log at any sweep parallelism (--jobs).
 *
 * Corrupted flits are *delivered* and discarded by the receiving
 * router's CRC screen (router::Router::screenArrival) rather than
 * vanishing on the wire: link energy is still spent, flit conservation
 * still proves out, and the freed buffer credit is resynchronized
 * upstream. Killed packets are reported here as NACKs that the source
 * node turns into bounded, backed-off retransmissions.
 *
 * See docs/ROBUSTNESS.md for the full fault model and recovery
 * protocol.
 */

#ifndef ORION_NET_FAULT_HH
#define ORION_NET_FAULT_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "router/fault_hooks.hh"
#include "sim/rng.hh"

namespace orion::telemetry {
class FlitTracer;
}

namespace orion::net {

/**
 * One scheduled link outage: every flit entering the link during
 * [start, end) is corrupted (and therefore dropped at the receiver).
 */
struct OutageWindow
{
    sim::Cycle start = 0;
    sim::Cycle end = 0;
    /**
     * Registered link id, or -1 to have the injector pick one
     * deterministically from the fault seed once the topology is
     * known.
     */
    int link = -1;
};

/** One scheduled router output-port stall window [start, end). */
struct PortStallWindow
{
    int node = 0;
    unsigned port = 0;
    sim::Cycle start = 0;
    sim::Cycle end = 0;
};

/** Fault-injection configuration (all defaults = no faults). */
struct FaultConfig
{
    /** Per-bit, per-traversal error probability on inter-router
     * links. */
    double linkBitErrorRate = 0.0;
    std::vector<OutageWindow> outages;
    std::vector<PortStallWindow> stalls;
    /**
     * Seed for fault schedules; 0 derives one from the simulation
     * seed, so sweeps get decorrelated per-point fault streams by
     * default.
     */
    std::uint64_t faultSeed = 0;
    /** Retransmission attempts per packet before declaring it lost. */
    unsigned retryLimit = 8;
    /** Base retransmission delay; doubles per attempt. Keep the worst
     * case (base << retryLimit-1) below SimConfig::watchdogCycles. */
    sim::Cycle retryBackoffCycles = 8;
    /** Fault-log entries kept (first N; counters and the log hash
     * always cover every event). */
    std::size_t maxLogEntries = 4096;

    /** True if any fault mechanism is configured. */
    bool enabled() const;

    /** @throw std::invalid_argument on out-of-range values. */
    void validate() const;
};

enum class FaultKind
{
    BitError,
    LinkOutage,
};

/** One injected fault, as recorded in the fault log. */
struct FaultEvent
{
    sim::Cycle cycle = 0;
    FaultKind kind = FaultKind::BitError;
    unsigned link = 0;
    std::uint64_t packetId = 0;

    bool
    operator==(const FaultEvent& o) const
    {
        return cycle == o.cycle && kind == o.kind && link == o.link &&
               packetId == o.packetId;
    }
};

/** A retransmission request delivered to a source node. */
struct Nack
{
    std::shared_ptr<const router::PacketInfo> packet;
    sim::Cycle cycle = 0;
};

/** The concrete fault engine the router layer's hooks call into. */
class FaultInjector : public router::FaultHooks
{
  public:
    /**
     * @param config     validated fault configuration
     * @param seed       resolved fault seed (already defaulted from
     *                   the simulation seed when config.faultSeed == 0)
     * @param flit_bits  link width (bit-error target range)
     */
    FaultInjector(const FaultConfig& config, std::uint64_t seed,
                  unsigned flit_bits);

    /**
     * Register one inter-router link and create its private RNG
     * stream. Called by Network in wiring order, which is part of the
     * deterministic contract: same topology => same link ids.
     */
    unsigned registerLink();

    /**
     * Validate schedules against the built topology and resolve
     * outage windows with link == -1 to concrete links.
     * @throw std::invalid_argument on a schedule referencing a
     *        nonexistent node, port, or link.
     */
    void finalizeTopology(int num_nodes, unsigned ports_per_router);

    /// @name router::FaultHooks
    /// @{
    void onLinkTraversal(unsigned link, router::Flit& flit,
                         sim::Cycle now) override;
    bool portStalled(int node, unsigned port,
                     sim::Cycle now) override;
    void
    onPacketKilled(const std::shared_ptr<const router::PacketInfo>& p,
                   sim::Cycle now) override;
    void onFlitDiscarded(const router::Flit& flit,
                         sim::Cycle now) override;
    /// @}

    /// @name Source-node recovery interface
    /// @{
    /** Drain the NACKs queued for source @p node. */
    std::vector<Nack> takeNacks(int node);
    /** Source @p node scheduled a retransmission of @p packet_id. */
    void recordRetransmission(int node, std::uint64_t packet_id,
                              sim::Cycle now);
    /** Source @p node abandoned @p packet_id (retry limit). */
    void recordPacketLost(int node, std::uint64_t packet_id,
                          sim::Cycle now);
    /// @}

    /**
     * Mirror recovery activity (fault injections, NACKs,
     * retransmissions, losses) into @p tracer as instant events.
     * Null detaches; the tracer must outlive the injector's use.
     */
    void setTracer(telemetry::FlitTracer* tracer) { tracer_ = tracer; }

    const FaultConfig& config() const { return config_; }
    unsigned linkCount() const
    {
        return static_cast<unsigned>(linkRngs_.size());
    }

    /// @name Counters and log (forensics, reports, determinism tests)
    /// @{
    std::uint64_t flitsCorrupted() const { return flitsCorrupted_; }
    std::uint64_t flitsOutageDropped() const { return flitsOutage_; }
    std::uint64_t flitsDiscarded() const { return flitsDiscarded_; }
    std::uint64_t packetsRetransmitted() const
    {
        return packetsRetransmitted_;
    }
    std::uint64_t packetsLost() const { return packetsLost_; }
    /** First maxLogEntries fault events, in injection order. */
    const std::vector<FaultEvent>& log() const { return log_; }
    /** Events ever injected (may exceed log().size()). */
    std::uint64_t eventCount() const { return eventCount_; }
    /** FNV-1a hash over every fault event (including any beyond the
     * log cap) — the cheap cross-run determinism fingerprint. */
    std::uint64_t faultLogHash() const { return logHash_; }
    /// @}

  private:
    void record(FaultKind kind, unsigned link,
                const router::Flit& flit, sim::Cycle now);

    FaultConfig config_;
    std::uint64_t seed_;
    telemetry::FlitTracer* tracer_ = nullptr;
    unsigned flitBits_;
    /** P(at least one bit error in a flit traversal). */
    double pFlit_;
    bool finalized_ = false;

    std::vector<sim::Rng> linkRngs_;
    std::vector<std::deque<Nack>> nacksBySource_;

    std::vector<FaultEvent> log_;
    std::uint64_t eventCount_ = 0;
    std::uint64_t logHash_;

    std::uint64_t flitsCorrupted_ = 0;
    std::uint64_t flitsOutage_ = 0;
    std::uint64_t flitsDiscarded_ = 0;
    std::uint64_t packetsRetransmitted_ = 0;
    std::uint64_t packetsLost_ = 0;
};

} // namespace orion::net

#endif // ORION_NET_FAULT_HH
