/**
 * @file
 * Synthetic communication workloads.
 *
 * The paper's case studies use uniform random traffic (Sections 4.2,
 * 4.4) and broadcast traffic from a single node (Sections 4.3, 4.4);
 * "both communication workloads inject packets at a uniform rate".
 * Several classic permutation patterns (transpose, bit-complement,
 * tornado, nearest-neighbour) and a hotspot pattern are provided as
 * well — the paper notes Orion "can be interfaced with actual
 * communication traces"; these patterns play that exploration role for
 * synthetic studies.
 *
 * Injection is a Bernoulli process: each cycle a node creates a packet
 * with probability equal to its injection rate.
 */

#ifndef ORION_NET_TRAFFIC_HH
#define ORION_NET_TRAFFIC_HH

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "net/topology.hh"
#include "net/trace.hh"
#include "sim/rng.hh"

namespace orion::net {

/** Workload pattern. */
enum class TrafficPattern
{
    /** Every node to uniformly random other nodes (paper 4.2). */
    UniformRandom,
    /** One source node to all other nodes in turn (paper 4.3). */
    Broadcast,
    /** (x, y) -> (y, x); diagonal nodes stay silent. 2-D only. */
    Transpose,
    /** Node i -> node (N-1-i) (bit complement of the node id). */
    BitComplement,
    /** Each dimension shifted by floor((k-1)/2) (adversarial for
     * rings). */
    Tornado,
    /** Each node to its +x neighbour. */
    NearestNeighbor,
    /** A fraction of traffic converges on one hot node, the rest is
     * uniform random. */
    Hotspot,
    /** Replay a recorded communication trace (see net/trace.hh). */
    Trace,
};

/** Workload parameters. */
struct TrafficParams
{
    TrafficPattern pattern = TrafficPattern::UniformRandom;
    /**
     * Packets per cycle per *injecting* node. For Broadcast only the
     * source node injects (the paper's Section 4.3 uses 0.2 at the
     * source vs 0.2/16 per node for the uniform workload it is
     * compared against).
     */
    double injectionRate = 0.1;
    /** Broadcast source node (defaults to node (1,2) of a 4x4 net in
     * the core presets; -1 means node 0). */
    int broadcastSource = -1;
    /** Hotspot target node. */
    int hotspotNode = 0;
    /** Fraction of hotspot traffic aimed at the hot node. */
    double hotspotFraction = 0.5;
    /** Records to replay for the Trace pattern. */
    std::shared_ptr<const std::vector<TraceRecord>> trace;
};

/** Pattern-driven packet source. */
class TrafficGenerator
{
  public:
    TrafficGenerator(const Topology& topo, const TrafficParams& params);

    const TrafficParams& params() const { return params_; }

    /** Injection rate of @p node (0 for silent nodes). */
    double nodeRate(int node) const;

    /**
     * Ask whether @p node creates a packet at cycle @p now: for
     * synthetic patterns a Bernoulli trial at the node's rate; for
     * traces, the next due record. Returns the destination, or
     * nullopt.
     */
    std::optional<int> maybeInject(int node, sim::Cycle now,
                                   sim::Rng& rng);

    /** Destination @p node sends to under this pattern (never @p node
     * itself); randomized patterns consume @p rng. */
    int pickDestination(int node, sim::Rng& rng);

    /** True if @p node ever injects under this pattern. */
    bool injects(int node) const;

  private:
    const Topology& topo_;
    TrafficParams params_;
    /** Broadcast round-robin pointer per node. */
    std::vector<unsigned> nextDest_;
    /** Per-node pending trace records, sorted by cycle. */
    std::vector<std::deque<TraceRecord>> pendingTrace_;
};

} // namespace orion::net

#endif // ORION_NET_TRAFFIC_HH
