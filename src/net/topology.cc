#include "net/topology.hh"

#include <algorithm>
#include <cassert>

namespace orion::net {

Topology::Topology(std::vector<unsigned> dims, bool wrap)
    : dims_(std::move(dims)), wrap_(wrap)
{
    assert(!dims_.empty());
    numNodes_ = 1;
    for (unsigned k : dims_) {
        assert(k >= 2);
        numNodes_ *= k;
    }
}

unsigned
Topology::dimensions() const
{
    return static_cast<unsigned>(dims_.size());
}

unsigned
Topology::radix(unsigned dim) const
{
    assert(dim < dims_.size());
    return dims_[dim];
}

unsigned
Topology::port(unsigned dim, bool plus) const
{
    assert(dim < dims_.size());
    return 2 * dim + (plus ? 0 : 1);
}

unsigned
Topology::portDimension(unsigned port) const
{
    assert(port < localPort());
    return port / 2;
}

bool
Topology::portIsPlus(unsigned port) const
{
    assert(port < localPort());
    return port % 2 == 0;
}

int
Topology::nodeAt(const Coord& c) const
{
    assert(c.size() == dims_.size());
    int id = 0;
    // Row-major with dimension 0 fastest: id = x + k0*(y + k1*(z...)).
    for (unsigned d = dimensions(); d-- > 0;) {
        assert(c[d] < dims_[d]);
        id = id * static_cast<int>(dims_[d]) + static_cast<int>(c[d]);
    }
    return id;
}

Coord
Topology::coordsOf(int node) const
{
    assert(node >= 0 && static_cast<unsigned>(node) < numNodes_);
    Coord c(dims_.size());
    auto rem = static_cast<unsigned>(node);
    for (unsigned d = 0; d < dimensions(); ++d) {
        c[d] = rem % dims_[d];
        rem /= dims_[d];
    }
    return c;
}

int
Topology::neighbor(int node, unsigned port) const
{
    assert(port < localPort());
    const unsigned d = portDimension(port);
    const unsigned k = dims_[d];
    Coord c = coordsOf(node);
    if (portIsPlus(port)) {
        if (c[d] + 1 == k) {
            if (!wrap_)
                return -1;
            c[d] = 0;
        } else {
            ++c[d];
        }
    } else {
        if (c[d] == 0) {
            if (!wrap_)
                return -1;
            c[d] = k - 1;
        } else {
            --c[d];
        }
    }
    return nodeAt(c);
}

unsigned
Topology::minimalHops(int a, int b) const
{
    const Coord ca = coordsOf(a);
    const Coord cb = coordsOf(b);
    unsigned hops = 0;
    for (unsigned d = 0; d < dimensions(); ++d) {
        const unsigned k = dims_[d];
        const unsigned fwd = (cb[d] + k - ca[d]) % k;
        if (wrap_)
            hops += std::min(fwd, k - fwd);
        else
            hops += ca[d] > cb[d] ? ca[d] - cb[d] : cb[d] - ca[d];
    }
    return hops;
}

unsigned
Topology::manhattanDistance(int a, int b) const
{
    return minimalHops(a, b);
}

} // namespace orion::net
