/**
 * @file
 * Network-wide invariant audits (see docs/QUALITY.md).
 *
 * Orion's power figures are per-event energy sums, so a single lost
 * flit or miscounted credit corrupts every reproduced number without
 * any visible crash. The NetworkAuditor walks the whole network at a
 * cycle boundary and proves three ledgers consistent:
 *
 *  1. Flit conservation — every flit ever injected is either ejected
 *     or accounted for in exactly one place: an input FIFO, a pipeline
 *     latch, a central-buffer pool, or a link register. Checked
 *     globally (sources vs. sinks) and per router (arrival ledger vs.
 *     departure ledger + resident flits), so a loss is localized to a
 *     node.
 *  2. Credit accounting — for every (link, VC): sender-side credits +
 *     flits in flight on the data link + downstream buffer occupancy +
 *     credits in flight on the return link == buffer depth. Covers
 *     inter-router links and the injection wiring.
 *  3. Energy sanity — every PowerMonitor counter is non-negative and
 *     monotone non-decreasing between audits, and per-node power sums
 *     to the reported network power.
 *
 * Violations throw core::CheckFailure with a diagnostic naming the
 * node/port/VC. Audits are registered with the Simulator (run every N
 * cycles and at drain) by orion::Simulation when the runtime check
 * level is at least CheckLevel::Cheap.
 */

#ifndef ORION_NET_AUDIT_HH
#define ORION_NET_AUDIT_HH

#include <array>
#include <vector>

#include "core/sync.hh"
#include "net/network.hh"
#include "net/power_monitor.hh"
#include "sim/simulator.hh"

namespace orion::router {
class CrossbarRouter;
class CentralBufferRouter;
} // namespace orion::router

namespace orion::net {

/** Walks a Network and proves its bookkeeping consistent. */
class NetworkAuditor
{
  public:
    /**
     * @param network  the network to audit (must outlive the auditor)
     * @param monitor  power monitor for the energy audit; may be null
     *                 (energy checks are skipped)
     */
    explicit NetworkAuditor(const Network& network,
                            const PowerMonitor* monitor = nullptr);

    /** Register all three audits with @p simulator. */
    void registerWith(sim::Simulator& simulator);

    /** Run every audit once, in the registration order. */
    void auditAll();

    /// @name Individual audits (throw core::CheckFailure on violation)
    /// @{
    void auditFlitConservation() const ORION_EXCLUDES(auditRole_);
    void auditCreditAccounting() const ORION_EXCLUDES(auditRole_);
    void auditEnergyAccounting() ORION_EXCLUDES(auditRole_);
    /// @}

    /**
     * Forget the energy-monotonicity baseline. Call after
     * PowerMonitor::reset() (measurement-window start), which
     * legitimately rewinds the counters.
     */
    void resetEnergyBaseline() ORION_EXCLUDES(auditRole_);

  private:
    /** Flits held in a link's channel registers (current + staged). */
    static std::size_t flitsOnLink(const router::FlitLink& link);

    /**
     * Pre-resolved per-link-record pointers. The audits run every few
     * hundred cycles over every link x VC, so the dynamic_casts and
     * repeated router lookups are hoisted out of the walk; router
     * objects are fixed for the network's lifetime, making the cache
     * valid forever once built.
     */
    struct RecordCache
    {
        const router::Router* from = nullptr;
        const router::Router* to = nullptr;
        /** Downstream router as a crossbar router, or null. */
        const router::CrossbarRouter* toXb = nullptr;
        /** Downstream router as a CB router, or null. */
        const router::CentralBufferRouter* toCb = nullptr;
    };

    /** Build recordCache_/cbRouter_ on first use. */
    void buildCache() const ORION_REQUIRES(auditRole_);

    const Network& net_;
    const PowerMonitor* monitor_;
    /**
     * The ledgers below mutate under `const` (lazy cache fill, energy
     * baseline rollover) — exactly the state a reader would wrongly
     * assume is safe to share across audit threads. The Role makes the
     * hidden writes explicit: every audit entry point acquires it, so
     * concurrent audits of one auditor are structurally excluded and
     * clang's analysis proves it (see docs/QUALITY.md, "Static
     * analysis").
     */
    mutable core::Role auditRole_;
    /** Energy ledger snapshot from the previous audit. */
    std::vector<std::array<double, kNumComponentClasses>> lastEnergy_
        ORION_GUARDED_BY(auditRole_);
    /** One entry per Network::linkRecords() element. */
    mutable std::vector<RecordCache> recordCache_
        ORION_GUARDED_BY(auditRole_);
    /** Per-node CB-router downcast (null for other router kinds). */
    mutable std::vector<const router::CentralBufferRouter*> cbRouter_
        ORION_GUARDED_BY(auditRole_);
    mutable bool cacheBuilt_ ORION_GUARDED_BY(auditRole_) = false;
};

} // namespace orion::net

#endif // ORION_NET_AUDIT_HH
