#include "net/traffic.hh"

#include <algorithm>
#include <cassert>

namespace orion::net {

TrafficGenerator::TrafficGenerator(const Topology& topo,
                                   const TrafficParams& params)
    : topo_(topo), params_(params), nextDest_(topo.numNodes(), 0)
{
    assert(params.injectionRate >= 0.0 && params.injectionRate <= 1.0);
    if (params_.pattern == TrafficPattern::Broadcast &&
        params_.broadcastSource < 0) {
        params_.broadcastSource = 0;
    }
    assert(params_.pattern != TrafficPattern::Transpose ||
           topo.dimensions() == 2);
    assert(params_.hotspotFraction >= 0.0 &&
           params_.hotspotFraction <= 1.0);

    if (params_.pattern == TrafficPattern::Trace) {
        assert(params_.trace && "Trace pattern needs records");
        Trace::validate(*params_.trace, topo.numNodes());
        pendingTrace_.resize(topo.numNodes());
        std::vector<TraceRecord> sorted = *params_.trace;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const TraceRecord& a, const TraceRecord& b) {
                             return a.cycle < b.cycle;
                         });
        for (const auto& r : sorted)
            pendingTrace_[static_cast<unsigned>(r.src)].push_back(r);
    }
}

bool
TrafficGenerator::injects(int node) const
{
    switch (params_.pattern) {
      case TrafficPattern::Broadcast:
        return node == params_.broadcastSource;
      case TrafficPattern::Transpose: {
        const Coord c = topo_.coordsOf(node);
        return c[0] != c[1];
      }
      case TrafficPattern::BitComplement:
        return node != static_cast<int>(topo_.numNodes()) - 1 - node;
      case TrafficPattern::Tornado: {
        // Silent only if every dimension's shift is zero (k <= 1,
        // which the topology forbids, or k == 2 where the shift is 0).
        for (unsigned d = 0; d < topo_.dimensions(); ++d)
            if ((topo_.radix(d) - 1) / 2 > 0)
                return true;
        return false;
      }
      case TrafficPattern::Hotspot:
        // The hot node itself still sends its uniform share.
        return topo_.numNodes() > 1;
      case TrafficPattern::Trace:
        return !pendingTrace_.empty() &&
               !pendingTrace_[static_cast<unsigned>(node)].empty();
      case TrafficPattern::UniformRandom:
      case TrafficPattern::NearestNeighbor:
        return topo_.numNodes() > 1;
    }
    return false;
}

double
TrafficGenerator::nodeRate(int node) const
{
    if (params_.pattern == TrafficPattern::Trace)
        return injects(node) ? -1.0 : 0.0; // rate is trace-defined
    return injects(node) ? params_.injectionRate : 0.0;
}

std::optional<int>
TrafficGenerator::maybeInject(int node, sim::Cycle now, sim::Rng& rng)
{
    if (params_.pattern == TrafficPattern::Trace) {
        auto& pending = pendingTrace_[static_cast<unsigned>(node)];
        if (pending.empty() || pending.front().cycle > now)
            return std::nullopt;
        const int dst = pending.front().dst;
        pending.pop_front();
        return dst;
    }
    const double rate = nodeRate(node);
    if (rate <= 0.0 || !rng.chance(rate))
        return std::nullopt;
    return pickDestination(node, rng);
}

int
TrafficGenerator::pickDestination(int node, sim::Rng& rng)
{
    const auto n = static_cast<int>(topo_.numNodes());
    assert(n > 1 && injects(node));

    switch (params_.pattern) {
      case TrafficPattern::UniformRandom: {
        // Uniform over the n-1 nodes other than the source.
        auto d = static_cast<int>(rng.below(n - 1));
        if (d >= node)
            ++d;
        return d;
      }
      case TrafficPattern::Broadcast: {
        // Round-robin over all other nodes so every destination
        // receives the same share ("one node injects packets to all
        // the other nodes in the network").
        auto& ptr = nextDest_[static_cast<unsigned>(node)];
        auto d = static_cast<int>(ptr);
        ptr = (ptr + 1) % (n - 1);
        if (d >= node)
            ++d;
        return d;
      }
      case TrafficPattern::Transpose: {
        Coord c = topo_.coordsOf(node);
        std::swap(c[0], c[1]);
        return topo_.nodeAt(c);
      }
      case TrafficPattern::BitComplement:
        return n - 1 - node;
      case TrafficPattern::Tornado: {
        Coord c = topo_.coordsOf(node);
        for (unsigned d = 0; d < topo_.dimensions(); ++d) {
            const unsigned k = topo_.radix(d);
            c[d] = (c[d] + (k - 1) / 2) % k;
        }
        return topo_.nodeAt(c);
      }
      case TrafficPattern::NearestNeighbor: {
        Coord c = topo_.coordsOf(node);
        c[0] = (c[0] + 1) % topo_.radix(0);
        return topo_.nodeAt(c);
      }
      case TrafficPattern::Hotspot: {
        if (node != params_.hotspotNode &&
            rng.chance(params_.hotspotFraction)) {
            return params_.hotspotNode;
        }
        auto d = static_cast<int>(rng.below(n - 1));
        if (d >= node)
            ++d;
        return d;
      }
      case TrafficPattern::Trace: {
        const auto& pending =
            pendingTrace_[static_cast<unsigned>(node)];
        assert(!pending.empty());
        return pending.front().dst;
      }
    }
    return (node + 1) % n;
}

} // namespace orion::net
