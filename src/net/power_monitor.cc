#include "net/power_monitor.hh"

#include <algorithm>
#include <cassert>

#include "core/check.hh"

namespace orion::net {

const char*
componentClassName(ComponentClass c)
{
    switch (c) {
      case ComponentClass::Buffer:        return "buffer";
      case ComponentClass::Crossbar:      return "crossbar";
      case ComponentClass::Arbiter:       return "arbiter";
      case ComponentClass::Link:          return "link";
      case ComponentClass::CentralBuffer: return "central_buffer";
    }
    return "unknown";
}

namespace {

constexpr std::array<sim::EventType, 9> kMonitoredEvents = {
    sim::EventType::BufferWrite,
    sim::EventType::BufferRead,
    sim::EventType::Arbitration,
    sim::EventType::VcAllocation,
    sim::EventType::CrossbarTraversal,
    sim::EventType::CentralBufferWrite,
    sim::EventType::CentralBufferRead,
    sim::EventType::LinkTraversal,
    // Counted for statistics; credit wires carry negligible energy
    // and the paper attributes none to them.
    sim::EventType::CreditTransfer,
};

/** Clamp a monitored delta into the range a model accepts. */
unsigned
clampDelta(std::uint32_t delta, unsigned limit)
{
    return std::min<std::uint32_t>(delta, limit);
}

} // namespace

PowerMonitor::PowerMonitor(sim::EventBus& bus, PowerModelSet models,
                           unsigned num_nodes, unsigned links_per_node)
    : models_(std::move(models)),
      numNodes_(num_nodes),
      linksPerNode_(links_per_node),
      energy_(num_nodes)
{
    assert(num_nodes > 0);
    assert(models_.buffer && "input buffer model is mandatory");
    assert(!(models_.onChipLink && models_.chipToChipLink));
    for (auto& node : energy_)
        node.fill(0.0);

    // Raw subscription: the monitor sees millions of events per run,
    // so dispatch must stay a direct function-pointer call.
    for (const auto type : kMonitoredEvents) {
        bus.subscribeRaw(
            type,
            [](void* ctx, const sim::Event& ev) {
                static_cast<PowerMonitor*>(ctx)->onEvent(ev);
            },
            this);
    }
}

void
PowerMonitor::accumulate(int node, ComponentClass c, double joules)
{
    assert(node >= 0 && static_cast<unsigned>(node) < numNodes_);
    // Every per-event energy contribution must be non-negative, or the
    // accumulated counters lose their monotonicity guarantee.
    ORION_AUDIT(joules >= 0.0,
                "negative event energy " << joules << " J for node "
                    << node << " class " << componentClassName(c));
    energy_[node][static_cast<unsigned>(c)] += joules;
}

void
PowerMonitor::onEvent(const sim::Event& ev)
{
    ++eventCounts_[static_cast<unsigned>(ev.type)];

    switch (ev.type) {
      case sim::EventType::BufferWrite: {
        const unsigned f = models_.buffer->params().flitBits;
        accumulate(ev.node, ComponentClass::Buffer,
                   models_.buffer->writeEnergy(clampDelta(ev.deltaA, f),
                                               clampDelta(ev.deltaB, f)));
        break;
      }
      case sim::EventType::BufferRead:
        accumulate(ev.node, ComponentClass::Buffer,
                   models_.buffer->readEnergy());
        break;
      case sim::EventType::Arbitration: {
        if (!models_.switchArbiter)
            break;
        const auto& m = *models_.switchArbiter;
        const unsigned r = m.params().requests;
        const unsigned max_pri = std::max(m.priorityFlipFlops(), 2u);
        accumulate(ev.node, ComponentClass::Arbiter,
                   m.arbitrationEnergy(clampDelta(ev.deltaA, r),
                                       clampDelta(ev.deltaB, max_pri)));
        break;
      }
      case sim::EventType::VcAllocation: {
        if (!models_.vcArbiter)
            break;
        const auto& m = *models_.vcArbiter;
        const unsigned r = m.params().requests;
        const unsigned max_pri = std::max(m.priorityFlipFlops(), 2u);
        accumulate(ev.node, ComponentClass::Arbiter,
                   m.arbitrationEnergy(clampDelta(ev.deltaA, r),
                                       clampDelta(ev.deltaB, max_pri)));
        break;
      }
      case sim::EventType::CrossbarTraversal: {
        if (!models_.crossbar)
            break;
        const unsigned w = models_.crossbar->params().width;
        accumulate(
            ev.node, ComponentClass::Crossbar,
            models_.crossbar->traversalEnergy(clampDelta(ev.deltaA, w)));
        break;
      }
      case sim::EventType::CentralBufferWrite: {
        if (!models_.centralBuffer)
            break;
        const unsigned f = models_.centralBuffer->params().flitBits;
        const unsigned bits = clampDelta(ev.deltaA, f);
        accumulate(ev.node, ComponentClass::CentralBuffer,
                   models_.centralBuffer->writeEnergy(
                       bits, bits, clampDelta(ev.deltaB, f)));
        break;
      }
      case sim::EventType::CentralBufferRead: {
        if (!models_.centralBuffer)
            break;
        const unsigned f = models_.centralBuffer->params().flitBits;
        accumulate(ev.node, ComponentClass::CentralBuffer,
                   models_.centralBuffer->readEnergy(
                       clampDelta(ev.deltaA, f)));
        break;
      }
      case sim::EventType::LinkTraversal: {
        if (!models_.onChipLink)
            break; // chip-to-chip links are traffic-insensitive
        const unsigned w = models_.onChipLink->width();
        accumulate(
            ev.node, ComponentClass::Link,
            models_.onChipLink->traversalEnergy(
                clampDelta(ev.deltaA, w)));
        break;
      }
      default:
        break;
    }
}

double
PowerMonitor::energy(int node, ComponentClass c) const
{
    assert(node >= 0 && static_cast<unsigned>(node) < numNodes_);
    return energy_[node][static_cast<unsigned>(c)];
}

double
PowerMonitor::totalEnergy(ComponentClass c) const
{
    double t = 0.0;
    for (const auto& node : energy_)
        t += node[static_cast<unsigned>(c)];
    return t;
}

double
PowerMonitor::totalEnergy() const
{
    double t = 0.0;
    for (unsigned c = 0; c < kNumComponentClasses; ++c)
        t += totalEnergy(static_cast<ComponentClass>(c));
    return t;
}

double
PowerMonitor::nodePower(int node, double cycles) const
{
    assert(cycles > 0.0);
    const double f = models_.tech.freqHz;
    double e = 0.0;
    for (unsigned c = 0; c < kNumComponentClasses; ++c)
        e += energy_[node][c];
    double p = e * f / cycles;
    if (models_.chipToChipLink)
        p += linksPerNode_ * models_.chipToChipLink->powerWatts();
    return p;
}

double
PowerMonitor::classPower(ComponentClass c, double cycles) const
{
    assert(cycles > 0.0);
    double p = totalEnergy(c) * models_.tech.freqHz / cycles;
    if (c == ComponentClass::Link && models_.chipToChipLink) {
        p += static_cast<double>(numNodes_) * linksPerNode_ *
             models_.chipToChipLink->powerWatts();
    }
    return p;
}

double
PowerMonitor::networkPower(double cycles) const
{
    double p = 0.0;
    for (unsigned c = 0; c < kNumComponentClasses; ++c)
        p += classPower(static_cast<ComponentClass>(c), cycles);
    return p;
}

std::uint64_t
PowerMonitor::eventCount(sim::EventType type) const
{
    return eventCounts_[static_cast<unsigned>(type)];
}

void
PowerMonitor::reset()
{
    for (auto& node : energy_)
        node.fill(0.0);
    eventCounts_.fill(0);
}

} // namespace orion::net
