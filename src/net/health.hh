/**
 * @file
 * Network health monitor: the surviving-topology view behind
 * fault-tolerant rerouting.
 *
 * The monitor subscribes (by schedule) to the FaultInjector's link
 * outage windows — finalizeTopology resolves every window to a
 * concrete registered link before this module is built — and
 * publishes, cycle by cycle, which inter-router links are currently
 * dead. Each up/down transition bumps an epoch counter; sources watch
 * the epoch and rebuild the routes of queued packets instead of
 * retransmitting into a dead link.
 *
 * Degraded-mode paths come from a deterministic breadth-first search
 * over the surviving graph (shortest path; ports scanned in ascending
 * order; no RNG, so rebuilds never perturb the traffic stream's draw
 * sequence). Dateline VC classes are layered onto each detour the same
 * way DorRouting does — per maximal same-dimension run, class 1 when
 * the run crosses the wraparound edge — so detours that happen to be
 * dimension-ordered keep the escape-class deadlock guarantee. Detours
 * that violate dimension order (possible around an outage) can, in
 * principle, close a cycle the dateline classes do not cut; the
 * runtime deadlock detector (net/deadlock.hh) backstops exactly that
 * case. See docs/ROBUSTNESS.md.
 */

#ifndef ORION_NET_HEALTH_HH
#define ORION_NET_HEALTH_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "net/fault.hh"
#include "net/topology.hh"
#include "router/flit.hh"
#include "router/router.hh"
#include "sim/module.hh"

namespace orion::net {

struct LinkRecord;

/** Surviving-topology view + degraded-mode path computation. */
class HealthMonitor : public sim::Module
{
  public:
    /**
     * @param topo      the built topology
     * @param links     Network::linkRecords() (source of the
     *                  (node, port) -> fault-link-id map)
     * @param injector  finalized injector (outage windows resolved)
     * @param deadlock  VC-class discipline detours must respect
     */
    HealthMonitor(const Topology& topo,
                  const std::vector<LinkRecord>& links,
                  const FaultInjector& injector,
                  router::DeadlockMode deadlock);

    /** Advance the down-link view to @p now (runs after the network
     * modules each cycle, so sources observe transitions with a
     * deterministic one-cycle lag). */
    void cycle(sim::Cycle now) override;

    /** Bumped on every change of the down-link set. */
    std::uint64_t epoch() const { return epoch_; }

    /** True while at least one inter-router link is down. */
    bool degraded() const { return downCount_ > 0; }

    /** True if the link leaving @p node through @p port is down
     * (local ports are never down). */
    bool linkDown(int node, unsigned port) const;

    /** True if @p route from @p src crosses no down link. */
    bool routeHealthy(int src,
                      const std::vector<router::RouteHop>& route) const;

    /**
     * Shortest path from @p src to @p dst on the surviving graph,
     * ending with the ejection hop, with dateline VC classes assigned
     * per dimension run. Deterministic (no RNG). nullopt when @p dst
     * is unreachable from @p src (partitioned).
     */
    std::optional<std::vector<router::RouteHop>>
    buildDetour(int src, int dst) const;

    /** A source replaced an unhealthy route with a detour. */
    void noteReroute() { ++reroutes_; }

    /// @name Counters / forensics
    /// @{
    std::uint64_t reroutes() const { return reroutes_; }
    /** Currently-down registered link ids, ascending. */
    std::vector<unsigned> downLinks() const;
    /// @}

  private:
    void recompute(sim::Cycle now);

    const Topology& topo_;
    router::DeadlockMode deadlock_;
    std::vector<OutageWindow> outages_;

    /** (node * ports + port) -> registered link id, or -1. */
    std::vector<int> linkIdByNodePort_;
    /** Down flag per registered link id. */
    std::vector<bool> linkDown_;
    unsigned downCount_ = 0;

    /** Cycles at which the down-link set may change, ascending. */
    std::vector<sim::Cycle> boundaries_;
    std::size_t nextBoundary_ = 0;

    std::uint64_t epoch_ = 0;
    std::uint64_t reroutes_ = 0;
};

} // namespace orion::net

#endif // ORION_NET_HEALTH_HH
