/**
 * @file
 * Network endpoint: message source and sink for one node.
 *
 * The source generates packets per the traffic pattern (Bernoulli
 * injection), builds their source routes, queues them (source queuing
 * time counts toward latency, paper Section 4.1), and injects flits
 * into the router's local input port under credit flow control. The
 * sink ejects flits immediately (the paper assumes immediate ejection)
 * and records packet latency "from when the first flit of the packet
 * is created, to when its last flit is ejected".
 */

#ifndef ORION_NET_NODE_HH
#define ORION_NET_NODE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>

#include "net/fault.hh"
#include "net/routing.hh"
#include "net/topology.hh"
#include "net/traffic.hh"
#include "router/credit.hh"
#include "router/link.hh"
#include "sim/module.hh"
#include "sim/pool.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace orion::net {

class HealthMonitor;

/**
 * Measurement state shared by all nodes of a network: marks which
 * packets belong to the 10,000-packet sample window (paper 4.1) and
 * hands out packet ids.
 */
struct SharedState
{
    /** True while newly created packets join the sample. */
    bool sampling = false;
    /** Sample packets still to be created. */
    std::uint64_t sampleRemaining = 0;
    std::uint64_t sampleInjected = 0;
    std::uint64_t sampleEjected = 0;
    /** Sample packets abandoned after exhausting the retry limit
     * (fault injection only) — counts toward drain completion. */
    std::uint64_t sampleLost = 0;
    std::uint64_t nextPacketId = 0;
    /** Latencies of ejected sample packets (cycles). */
    sim::Accumulator sampleLatency;
    /** Latency distribution of sample packets (1-cycle bins up to
     * 4096 cycles, overflow beyond). */
    sim::Histogram sampleLatencyHist{1.0, 4096};
    /**
     * Shared PacketInfo recycler: at steady state every generated or
     * cloned packet reuses the storage (and route-vector capacity) of
     * one that finished, instead of a make_shared per packet.
     */
    sim::RecyclingPool<router::PacketInfo> packetPool;
};

/**
 * How the source picks the router-input VC for each new packet.
 *
 * SingleVc models a network interface with one injection FIFO: every
 * packet enters the router on VC 0, so packets serialize through the
 * local input queue (the "packets of the same VC still need to wait
 * for packets ahead in the queue" effect of paper Section 4.4).
 * SpreadVcs load-balances packets across the local input VCs.
 */
enum class InjectionPolicy
{
    SingleVc,
    SpreadVcs,
};

/** Source + sink endpoint module. */
class Node : public sim::Module
{
  public:
    /**
     * @param node           node id
     * @param router_vcs     VC count of the router's local input port
     * @param buffer_depth   its per-VC depth
     * @param packet_length  flits per packet
     */
    Node(std::string name, int node, const Topology& topo,
         const DorRouting& routing, TrafficGenerator& traffic,
         SharedState& shared, unsigned packet_length, unsigned flit_bits,
         unsigned router_vcs, unsigned buffer_depth, std::uint64_t seed,
         sim::EventBus& bus,
         InjectionPolicy policy = InjectionPolicy::SpreadVcs);

    /** Attach the injection link into the router's local input port
     * and the credit-return link from it. */
    void connectInjection(router::FlitLink* to_router,
                          router::CreditLink* credit_from_router);

    /** Attach the ejection link from the router's local output port. */
    void connectEjection(router::FlitLink* from_router);

    /**
     * Enable fault recovery: stamp link CRCs on injected flits, drain
     * this node's NACKs from @p injector, and retransmit killed
     * packets with doubling backoff up to the configured retry limit.
     */
    void setFaultInjector(FaultInjector* injector);

    /**
     * Enable fault-tolerant rerouting: watch @p health for topology
     * epochs, rebuild queued routes that cross dead links (RNG-free
     * detours, so the traffic stream's draw sequence is untouched),
     * and drop packets whose destination is partitioned into the
     * `unreachable` loss category instead of burning retries.
     */
    void setHealthMonitor(HealthMonitor* health);

    /**
     * Test-only: queue a fully specified packet (id, length, route
     * already set) for injection, bypassing the traffic process —
     * the debug knob behind injected-deadlock tests.
     */
    void
    debugInjectPacket(std::shared_ptr<const router::PacketInfo> pkt);

    void cycle(sim::Cycle now) override;

    /// @name Statistics
    /// @{
    std::uint64_t packetsInjected() const { return packetsInjected_; }
    std::uint64_t packetsEjected() const { return packetsEjected_; }
    /** Packets abandoned after exhausting the retry limit. */
    std::uint64_t packetsLost() const { return packetsLost_; }
    /** Packets dropped because no surviving path to the destination
     * existed (fail-fast partition loss; rerouting only). */
    std::uint64_t packetsUnreachable() const
    {
        return packetsUnreachable_;
    }
    std::uint64_t flitsEjected() const { return flitsEjected_; }
    std::size_t sourceQueueLength() const { return sourceQueue_.size(); }
    /** Zero the flit-ejection counter (start of measurement window). */
    void resetFlitCount() { flitsEjected_ = 0; }
    /// @}

    /// @name Audit ledgers (never reset; net::NetworkAuditor)
    /// @{
    /** Flits sent into the router over the node's lifetime. */
    std::uint64_t flitsInjectedTotal() const
    {
        return flitsInjectedTotal_;
    }
    /** Flits ejected over the node's lifetime. */
    std::uint64_t flitsEjectedTotal() const { return flitsEjectedTotal_; }
    /** Sender-side credit view of the router's local input port. */
    const router::CreditCounter& injectionCreditCounter() const
    {
        return *injectionCredits_;
    }
    /// @}

  private:
    void ejectStage(sim::Cycle now);
    void rerouteStage(sim::Cycle now);
    void retransmitStage(sim::Cycle now);
    void generateStage(sim::Cycle now);
    void injectStage(sim::Cycle now);

    /** Close @p pkt as unreachable (counter + sample settlement). */
    void dropUnreachable(const router::PacketInfo& pkt);
    /**
     * Replace @p pkt's route with a surviving-graph detour when it
     * crosses a dead link. Returns false when the destination is
     * partitioned (caller drops the packet as unreachable).
     */
    bool healRoute(std::shared_ptr<const router::PacketInfo>& pkt);

    power::BitVec randomPayload();

    const Topology& topo_;
    const DorRouting& routing_;
    TrafficGenerator& traffic_;
    SharedState& shared_;
    sim::EventBus& bus_;
    sim::Rng rng_;

    unsigned packetLength_;
    unsigned flitBits_;
    unsigned routerVcs_;
    InjectionPolicy policy_;

    router::FlitLink* toRouter_ = nullptr;
    router::CreditLink* creditFromRouter_ = nullptr;
    router::FlitLink* fromRouter_ = nullptr;
    std::unique_ptr<router::CreditCounter> injectionCredits_;

    /** Packets waiting to enter the network. */
    std::deque<std::shared_ptr<const router::PacketInfo>> sourceQueue_;
    /** Next flit index of the packet currently being injected. */
    unsigned injectSeq_ = 0;
    /** VC the current packet is being injected on. */
    unsigned injectVc_ = 0;

    std::uint64_t packetsInjected_ = 0;
    std::uint64_t packetsEjected_ = 0;
    std::uint64_t packetsLost_ = 0;
    std::uint64_t packetsUnreachable_ = 0;
    std::uint64_t flitsEjected_ = 0;
    std::uint64_t flitsInjectedTotal_ = 0;
    std::uint64_t flitsEjectedTotal_ = 0;

    /// @name Fault recovery (inert while injector_ is null)
    /// @{
    FaultInjector* injector_ = nullptr;
    /** Current attempt number per NACKed packet id — NACKs for any
     * other attempt are stale duplicates and ignored. */
    std::unordered_map<std::uint64_t, unsigned> attempts_;
    /** Retransmissions waiting out their backoff: (due cycle, clone
     * with bumped attempt), in scheduling order. */
    std::deque<std::pair<sim::Cycle,
                         std::shared_ptr<const router::PacketInfo>>>
        retryQueue_;
    /// @}

    /// @name Fault-tolerant rerouting (inert while health_ is null)
    /// @{
    HealthMonitor* health_ = nullptr;
    /** Last surviving-topology epoch this node reacted to. */
    std::uint64_t healthEpoch_ = 0;
    /// @}
};

} // namespace orion::net

#endif // ORION_NET_NODE_HH
