#include "net/audit.hh"

#include <cmath>
#include <cstddef>

#include "core/check.hh"
#include "router/central_buffer_router.hh"
#include "router/vc_router.hh"

namespace orion::net {

namespace {

/** Flits in @p link's registers (current + staged) carrying VC @p vc. */
unsigned
dataFlitsOnVc(const router::FlitLink& link, unsigned vc)
{
    unsigned n = 0;
    if (const router::Flit* f = link.auditCurrent();
        f != nullptr && f->vc == vc)
        ++n;
    if (const router::Flit* f = link.auditStaged();
        f != nullptr && f->vc == vc)
        ++n;
    return n;
}

/** Credits in @p link's registers (current + staged) for VC @p vc. */
unsigned
creditsOnVc(const router::CreditLink& link, unsigned vc)
{
    unsigned n = 0;
    if (const router::Credit* c = link.auditCurrent();
        c != nullptr && c->vc == vc)
        ++n;
    if (const router::Credit* c = link.auditStaged();
        c != nullptr && c->vc == vc)
        ++n;
    return n;
}

const char*
linkKindName(LinkRecord::Kind kind)
{
    switch (kind) {
      case LinkRecord::Kind::InterRouter: return "inter-router";
      case LinkRecord::Kind::Injection:   return "injection";
      case LinkRecord::Kind::Ejection:    return "ejection";
    }
    return "unknown";
}

} // namespace

NetworkAuditor::NetworkAuditor(const Network& network,
                               const PowerMonitor* monitor)
    : net_(network), monitor_(monitor)
{
    const core::RoleGuard guard(auditRole_);
    if (monitor_ != nullptr)
        lastEnergy_ = monitor_->energyLedger();
}

void
NetworkAuditor::registerWith(sim::Simulator& simulator)
{
    simulator.addAudit("flit-conservation",
                       [this] { auditFlitConservation(); });
    simulator.addAudit("credit-accounting",
                       [this] { auditCreditAccounting(); });
    if (monitor_ != nullptr)
        simulator.addAudit("energy-accounting",
                           [this] { auditEnergyAccounting(); });
}

void
NetworkAuditor::auditAll()
{
    auditFlitConservation();
    auditCreditAccounting();
    if (monitor_ != nullptr)
        auditEnergyAccounting();
}

std::size_t
NetworkAuditor::flitsOnLink(const router::FlitLink& link)
{
    std::size_t n = 0;
    if (link.auditCurrent() != nullptr)
        ++n;
    if (link.auditStaged() != nullptr)
        ++n;
    return n;
}

void
NetworkAuditor::buildCache() const
{
    const unsigned nodes = net_.topology().numNodes();
    cbRouter_.assign(nodes, nullptr);
    for (unsigned n = 0; n < nodes; ++n) {
        cbRouter_[n] =
            dynamic_cast<const router::CentralBufferRouter*>(
                &net_.router(static_cast<int>(n)));
    }
    const auto& records = net_.linkRecords();
    recordCache_.resize(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        const LinkRecord& rec = records[i];
        RecordCache& cache = recordCache_[i];
        if (rec.kind != LinkRecord::Kind::Ejection) {
            if (rec.kind == LinkRecord::Kind::InterRouter)
                cache.from = &net_.router(rec.fromNode);
            cache.to = &net_.router(rec.toNode);
            cache.toXb = dynamic_cast<const router::CrossbarRouter*>(
                cache.to);
            cache.toCb =
                dynamic_cast<const router::CentralBufferRouter*>(
                    cache.to);
        }
    }
    cacheBuilt_ = true;
}

void
NetworkAuditor::auditFlitConservation() const
{
    const core::RoleGuard guard(auditRole_);
    if (!cacheBuilt_)
        buildCache();
    const unsigned nodes = net_.topology().numNodes();

    // Per-router ledger: everything that ever arrived either left, is
    // still resident, or was discarded by fault screening. This
    // localizes a lost flit to one node.
    std::size_t resident_total = 0;
    std::uint64_t discarded_total = 0;
    for (unsigned n = 0; n < nodes; ++n) {
        const router::Router& r = net_.router(static_cast<int>(n));
        const std::size_t resident = r.residentFlits();
        resident_total += resident;
        discarded_total += r.flitsDiscarded();
        ORION_CHECK(
            r.flitsArrived() ==
                r.flitsForwarded() + resident + r.flitsDiscarded(),
            "flit conservation violated at node "
                << n << ": arrived " << r.flitsArrived()
                << " != forwarded " << r.flitsForwarded()
                << " + resident " << resident << " + discarded "
                << r.flitsDiscarded());

        // Central-buffer pool bookkeeping: the consumed capacity must
        // equal physically present flits plus cut-through reservations.
        if (const auto* cb = cbRouter_[n]) {
            const unsigned capacity =
                net_.params().centralBuffer.capacityFlits;
            ORION_CHECK(
                capacity - cb->freeCentralSlots() ==
                    cb->pooledFlits() + cb->reservedSlots(),
                "central-buffer pool accounting violated at node "
                    << n << ": capacity " << capacity << " - free "
                    << cb->freeCentralSlots() << " != pooled "
                    << cb->pooledFlits() << " + reserved "
                    << cb->reservedSlots());
        }
    }

    // Global ledger: injected flits are ejected, on a wire, or inside
    // a router.
    std::uint64_t injected = 0;
    std::uint64_t ejected = 0;
    for (unsigned n = 0; n < nodes; ++n) {
        const Node& ep = net_.endpoint(static_cast<int>(n));
        injected += ep.flitsInjectedTotal();
        ejected += ep.flitsEjectedTotal();
    }
    std::size_t in_flight = 0;
    for (const LinkRecord& rec : net_.linkRecords())
        in_flight += flitsOnLink(*rec.data);

    ORION_CHECK(injected ==
                    ejected + in_flight + resident_total +
                        discarded_total,
                "network flit conservation violated: injected "
                    << injected << " != ejected " << ejected
                    << " + in-flight " << in_flight << " + resident "
                    << resident_total << " + discarded "
                    << discarded_total);
}

void
NetworkAuditor::auditCreditAccounting() const
{
    const core::RoleGuard guard(auditRole_);
    if (!cacheBuilt_)
        buildCache();
    const auto& records = net_.linkRecords();
    for (std::size_t i = 0; i < records.size(); ++i) {
        const LinkRecord& rec = records[i];
        if (rec.kind == LinkRecord::Kind::Ejection)
            continue; // infinite sink: no credit loop to audit
        const RecordCache& cache = recordCache_[i];

        const router::CreditCounter* counter =
            rec.kind == LinkRecord::Kind::Injection
                ? &net_.endpoint(rec.fromNode).injectionCreditCounter()
                : cache.from->outputCreditCounter(rec.fromPort);
        ORION_CHECK(counter != nullptr,
                    "credit audit: node " << rec.fromNode << " port "
                                          << rec.fromPort
                                          << " has no credit counter");
        if (counter->unlimited())
            continue;

        const router::Router& target = *cache.to;
        for (unsigned vc = 0; vc < counter->vcs(); ++vc) {
            const unsigned credits = counter->available(vc);
            // Crossbar routers consume the output credit at SA, one
            // cycle before the flit reaches the link: flits in the
            // sender's ST latch hold a claimed downstream slot.
            const std::size_t latched =
                rec.kind == LinkRecord::Kind::InterRouter
                    ? cache.from->latchedForOutput(rec.fromPort, vc)
                    : 0;
            const unsigned on_data = dataFlitsOnVc(*rec.data, vc);
            std::size_t occupancy;
            if (cache.toXb != nullptr) {
                occupancy = cache.toXb->inputFifo(rec.toPort, vc).size();
            } else {
                ORION_CHECK(cache.toCb != nullptr && vc == 0,
                            "credit audit: unknown router type or bad "
                            "VC " << vc);
                occupancy = cache.toCb->inputFifo(rec.toPort).size();
            }
            const unsigned returning =
                rec.credit != nullptr ? creditsOnVc(*rec.credit, vc)
                                      : 0;
            // Fault discards can free two slots on one port in one
            // cycle; the receiver holds the overflow credit until the
            // 1-credit/cycle return wire is free.
            const std::size_t pending =
                target.pendingCreditReturns(rec.toPort, vc);
            ORION_CHECK(
                credits + latched + on_data + occupancy + returning +
                        pending ==
                    counter->depth(vc),
                "credit accounting violated on "
                    << linkKindName(rec.kind) << " link node "
                    << rec.fromNode << " port " << rec.fromPort
                    << " -> node " << rec.toNode << " port "
                    << rec.toPort << " vc " << vc << ": credits "
                    << credits << " + latched " << latched
                    << " + link flits " << on_data
                    << " + downstream occupancy " << occupancy
                    << " + returning credits " << returning
                    << " + pending returns " << pending
                    << " != depth " << counter->depth(vc));
        }
    }
}

void
NetworkAuditor::auditEnergyAccounting()
{
    ORION_CHECK(monitor_ != nullptr,
                "energy audit invoked without a power monitor");
    const core::RoleGuard guard(auditRole_);
    const auto& ledger = monitor_->energyLedger();
    const bool have_baseline = lastEnergy_.size() == ledger.size();

    for (std::size_t n = 0; n < ledger.size(); ++n) {
        for (unsigned c = 0; c < kNumComponentClasses; ++c) {
            const double e = ledger[n][c];
            const char* cls =
                componentClassName(static_cast<ComponentClass>(c));
            ORION_CHECK(e >= 0.0, "negative accumulated energy "
                                      << e << " J at node " << n
                                      << " class " << cls);
            ORION_CHECK(!std::isnan(e) && !std::isinf(e),
                        "non-finite accumulated energy at node "
                            << n << " class " << cls);
            if (have_baseline) {
                ORION_CHECK(e >= lastEnergy_[n][c],
                            "energy counter decreased at node "
                                << n << " class " << cls << ": "
                                << lastEnergy_[n][c] << " J -> " << e
                                << " J (missing resetEnergyBaseline "
                                   "after PowerMonitor::reset?)");
            }
        }
    }
    lastEnergy_ = ledger;

    // Cross-check the two reporting paths: per-node power summed over
    // nodes must match per-class power summed over classes (both are
    // reorderings of the same ledger, so only rounding may differ).
    double node_sum = 0.0;
    for (std::size_t n = 0; n < ledger.size(); ++n)
        node_sum += monitor_->nodePower(static_cast<int>(n), 1.0);
    const double network = monitor_->networkPower(1.0);
    const double tol = 1e-9 * std::max(1.0, std::abs(network));
    ORION_CHECK(std::abs(node_sum - network) <= tol,
                "power reporting paths disagree: sum of node powers "
                    << node_sum << " W != network power " << network
                    << " W");
}

void
NetworkAuditor::resetEnergyBaseline()
{
    const core::RoleGuard guard(auditRole_);
    if (monitor_ != nullptr)
        lastEnergy_ = monitor_->energyLedger();
    else
        lastEnergy_.clear();
}

} // namespace orion::net
