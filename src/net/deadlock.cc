#include "net/deadlock.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

#include "net/network.hh"

namespace orion::net {

DeadlockDetector::DeadlockDetector(Network& net,
                                   const DeadlockDetectConfig& config)
    : sim::Module("deadlock-detector", /*node=*/-1),
      net_(net),
      cfg_(config),
      lastForwarded_(net.topology().numNodes(), 0),
      frozen_(net.topology().numNodes(), 0)
{
    assert(cfg_.probeCycles >= 1);
    assert(cfg_.thresholdCycles >= 1);
}

void
DeadlockDetector::cycle(sim::Cycle now)
{
    if (unrecoverable_)
        return;
    if (now % cfg_.probeCycles != 0)
        return;
    if (frozenEverywhere())
        detect(now);
}

bool
DeadlockDetector::frozenEverywhere()
{
    const unsigned n = net_.topology().numNodes();
    bool any_occupied = false;
    bool all_frozen = true;
    for (unsigned i = 0; i < n; ++i) {
        const router::Router& r = net_.router(static_cast<int>(i));
        const std::uint64_t fwd = r.flitsForwarded();
        const bool occupied = r.residentFlits() > 0;
        if (occupied && fwd == lastForwarded_[i])
            frozen_[i] += cfg_.probeCycles;
        else
            frozen_[i] = 0;
        lastForwarded_[i] = fwd;
        if (occupied) {
            any_occupied = true;
            if (frozen_[i] < cfg_.thresholdCycles)
                all_frozen = false;
        }
    }
    return any_occupied && all_frozen && net_.inFlight() > 0;
}

void
DeadlockDetector::detect(sim::Cycle now)
{
    const Topology& topo = net_.topology();
    const unsigned n = topo.numNodes();
    const unsigned ports = topo.portsPerRouter();
    const unsigned local = topo.localPort();
    const unsigned vcs = net_.params().vcs;
    const std::size_t N =
        static_cast<std::size_t>(n) * ports * vcs;
    const auto index = [&](int node, unsigned p, unsigned v) {
        return (static_cast<std::size_t>(node) * ports + p) * vcs + v;
    };

    // Snapshot every input VC that holds flits or output-VC state.
    std::vector<router::Router::VcWaitState> snap(N);
    std::vector<bool> present(N, false);
    for (unsigned i = 0; i < n; ++i) {
        const router::Router& r = net_.router(static_cast<int>(i));
        for (unsigned p = 0; p < ports; ++p) {
            for (unsigned v = 0; v < vcs; ++v) {
                router::Router::VcWaitState st;
                if (!r.vcWaitState(p, v, st))
                    continue; // router kind exposes no VC state
                if (st.hasFront || st.phase != 0) {
                    snap[index(static_cast<int>(i), p, v)] = st;
                    present[index(static_cast<int>(i), p, v)] = true;
                }
            }
        }
    }

    // Dateline VC classes bid in half the VC range; everything else
    // bids across all VCs (mirrors CrossbarRouter::classVcRange).
    const bool dateline =
        net_.params().deadlock == router::DeadlockMode::Dateline;
    const auto class_range =
        [&](unsigned cls) -> std::pair<unsigned, unsigned> {
        if (dateline) {
            const unsigned half = vcs / 2;
            return cls == 0
                       ? std::pair<unsigned, unsigned>{0u, half}
                       : std::pair<unsigned, unsigned>{half, vcs};
        }
        return {0u, vcs};
    };

    // Wait-for edges.
    //  - Active VC with zero credits toward a non-local output: waits
    //    for the downstream input VC its flits feed.
    //  - Head waiting for an output VC (WaitingVc, or Idle with a
    //    head at the front): waits for every input VC at this router
    //    currently holding an output VC of its class; one free class
    //    VC means it is allocatable, hence not blocked.
    std::vector<std::vector<std::size_t>> succ(N);
    for (unsigned i = 0; i < n; ++i) {
        const auto node = static_cast<int>(i);
        const router::Router& r = net_.router(node);
        for (unsigned p = 0; p < ports; ++p) {
            for (unsigned v = 0; v < vcs; ++v) {
                const std::size_t u = index(node, p, v);
                if (!present[u])
                    continue;
                const auto& st = snap[u];
                if (st.phase == 2) {
                    if (st.outPort == local || !st.hasFront)
                        continue;
                    if (r.outputCredits(st.outPort, st.outVc) > 0)
                        continue;
                    const int next = topo.neighbor(node, st.outPort);
                    assert(next >= 0);
                    succ[u].push_back(
                        index(next, st.outPort ^ 1u, st.outVc));
                    continue;
                }
                if (!st.hasFront || !st.frontHead)
                    continue;
                const auto [first, last] = class_range(st.vcClass);
                std::vector<std::size_t> holders;
                bool any_free = false;
                for (unsigned ov = first; ov < last && !any_free;
                     ++ov) {
                    bool held = false;
                    for (unsigned hp = 0; hp < ports && !held; ++hp) {
                        for (unsigned hv = 0; hv < vcs; ++hv) {
                            const std::size_t h = index(node, hp, hv);
                            if (h == u || !present[h])
                                continue;
                            const auto& hs = snap[h];
                            if (hs.phase == 2 &&
                                hs.outPort == st.outPort &&
                                hs.outVc == ov) {
                                holders.push_back(h);
                                held = true;
                                break;
                            }
                        }
                    }
                    if (!held)
                        any_free = true;
                }
                if (!any_free)
                    succ[u] = std::move(holders);
            }
        }
    }

    // Extract one wait-for cycle with an iterative path-tracking DFS.
    std::vector<int> color(N, 0);
    std::vector<std::size_t> cyc;
    for (std::size_t start = 0; start < N && cyc.empty(); ++start) {
        if (!present[start] || color[start] != 0)
            continue;
        std::vector<std::pair<std::size_t, std::size_t>> stack;
        std::vector<std::size_t> path;
        stack.emplace_back(start, 0);
        path.push_back(start);
        color[start] = 1;
        while (!stack.empty() && cyc.empty()) {
            auto& [u, next] = stack.back();
            if (next < succ[u].size()) {
                const std::size_t w = succ[u][next++];
                if (color[w] == 0) {
                    color[w] = 1;
                    stack.emplace_back(w, 0);
                    path.push_back(w);
                } else if (color[w] == 1) {
                    const auto it =
                        std::find(path.begin(), path.end(), w);
                    cyc.assign(it, path.end());
                }
            } else {
                color[u] = 2;
                stack.pop_back();
                path.pop_back();
            }
        }
    }
    if (cyc.empty())
        return; // frozen but not diagnosable; the watchdog reports it

    ++detections_;
    lastDetectionAt_ = now;

    const auto unpack = [&](std::size_t u) {
        WaitVc w;
        w.node = static_cast<int>(u / (ports * vcs));
        w.port = static_cast<unsigned>(u / vcs % ports);
        w.vc = static_cast<unsigned>(u % vcs);
        const auto& st = snap[u];
        w.phase = st.phase;
        w.outPort = st.outPort;
        w.outVc = st.outVc;
        w.packetId = st.packetId;
        w.createdAt = st.createdAt;
        w.frontHead = st.hasFront && st.frontHead;
        return w;
    };
    lastWaitCycle_.clear();
    for (const std::size_t u : cyc)
        lastWaitCycle_.push_back(unpack(u));

    // Forensics: the extracted cycle plus the full wait-for graph.
    std::ostringstream json;
    json << "{\"detected_at\": " << now << ", \"wait_cycle\": [";
    for (std::size_t k = 0; k < lastWaitCycle_.size(); ++k) {
        const WaitVc& w = lastWaitCycle_[k];
        json << (k ? ", " : "") << "{\"router\": " << w.node
             << ", \"port\": " << w.port << ", \"vc\": " << w.vc
             << ", \"phase\": " << w.phase
             << ", \"out_port\": " << w.outPort
             << ", \"out_vc\": " << w.outVc
             << ", \"packet\": " << w.packetId
             << ", \"head_front\": "
             << (w.frontHead ? "true" : "false") << "}";
    }
    json << "], \"edges\": [";
    bool first_edge = true;
    for (std::size_t u = 0; u < N; ++u) {
        for (const std::size_t w : succ[u]) {
            const WaitVc a = unpack(u);
            const WaitVc b = unpack(w);
            json << (first_edge ? "" : ", ") << "{\"from\": \"router"
                 << a.node << ":in" << a.port << ":vc" << a.vc
                 << "\", \"to\": \"router" << b.node << ":in"
                 << b.port << ":vc" << b.vc << "\", \"kind\": \""
                 << (snap[u].phase == 2 ? "credit" : "vc-alloc")
                 << "\"}";
            first_edge = false;
        }
    }
    json << "]}";
    waitGraphJson_ = json.str();

    if (recoveries_ >= cfg_.maxRecoveries) {
        unrecoverable_ = true;
        return;
    }

    // Victim: the oldest head-front VC on the cycle (ties broken by
    // position, which is deterministic). Every wait-for cycle holds
    // at least one head-front VC — a body-front VC's head was already
    // forwarded along the cycle, and that chain ends at a head.
    std::size_t victim = N;
    for (const std::size_t u : cyc) {
        if (!snap[u].hasFront || !snap[u].frontHead)
            continue;
        if (victim == N ||
            snap[u].createdAt < snap[victim].createdAt ||
            (snap[u].createdAt == snap[victim].createdAt &&
             u < victim)) {
            victim = u;
        }
    }
    if (victim == N) {
        unrecoverable_ = true;
        return;
    }
    const WaitVc w = unpack(victim);
    if (!net_.router(w.node).poisonBlockedWorm(w.port, w.vc, now)) {
        unrecoverable_ = true;
        return;
    }
    ++recoveries_;
    std::fill(frozen_.begin(), frozen_.end(), 0);
}

} // namespace orion::net
