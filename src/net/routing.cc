#include "net/routing.hh"

#include <cassert>

namespace orion::net {

DorRouting::DorRouting(const Topology& topo,
                       std::vector<unsigned> dim_order,
                       router::DeadlockMode deadlock,
                       TieBreak tie_break)
    : topo_(topo),
      dimOrder_(std::move(dim_order)),
      deadlock_(deadlock),
      tieBreak_(tie_break)
{
    assert(dimOrder_.size() == topo.dimensions());
}

std::vector<unsigned>
DorRouting::defaultOrder(const Topology& topo)
{
    // Highest dimension first: {1, 0} in 2D, i.e. y before x.
    std::vector<unsigned> order;
    for (unsigned d = topo.dimensions(); d-- > 0;)
        order.push_back(d);
    return order;
}

std::vector<router::RouteHop>
DorRouting::route(int src, int dst, sim::Rng& rng) const
{
    std::vector<router::RouteHop> hops;
    routeInto(src, dst, rng, hops);
    return hops;
}

void
DorRouting::routeInto(int src, int dst, sim::Rng& rng,
                      std::vector<router::RouteHop>& hops) const
{
    assert(src != dst);
    hops.clear();

    Coord cur = topo_.coordsOf(src);
    const Coord goal = topo_.coordsOf(dst);

    for (unsigned d : dimOrder_) {
        const unsigned k = topo_.radix(d);
        if (cur[d] == goal[d])
            continue;

        // Choose direction: minimal on a torus (random tie-break at
        // exactly half way), sign of the offset on a mesh.
        const unsigned fwd = (goal[d] + k - cur[d]) % k;
        const unsigned bwd = k - fwd;
        bool plus;
        if (!topo_.wrapped())
            plus = goal[d] > cur[d];
        else if (fwd < bwd)
            plus = true;
        else if (bwd < fwd)
            plus = false;
        else if (tieBreak_ == TieBreak::PreferWrap)
            // Exactly one direction of a half-way tie crosses the
            // wraparound edge: + iff the path passes coordinate k-1.
            plus = cur[d] + fwd >= k;
        else
            plus = rng.chance(0.5);

        const unsigned steps = plus ? fwd : bwd;

        // Dateline class: 1 if this ring traversal uses the wraparound
        // edge (k-1 -> 0 going plus, 0 -> k-1 going minus).
        std::uint8_t vc_class = 0;
        if (deadlock_ == router::DeadlockMode::Dateline &&
            topo_.wrapped()) {
            const bool crosses =
                plus ? cur[d] + steps >= k : cur[d] < steps;
            vc_class = crosses ? 1 : 0;
        }

        const auto port =
            static_cast<std::uint8_t>(topo_.port(d, plus));
        for (unsigned s = 0; s < steps; ++s) {
            hops.push_back(router::RouteHop{port, vc_class, s == 0});
            cur[d] = plus ? (cur[d] + 1) % k : (cur[d] + k - 1) % k;
        }
    }
    assert(cur == goal);

    // Ejection hop at the destination router.
    hops.push_back(router::RouteHop{
        static_cast<std::uint8_t>(topo_.localPort()), 0, false});
}

} // namespace orion::net
