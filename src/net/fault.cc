#include "net/fault.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/telemetry.hh"

namespace orion::net {

namespace {

/** Salt domains for deriveSeed so the injector's streams never
 * collide with sweep-point or traffic streams. */
constexpr std::uint64_t kLinkStreamSalt = 0xFA17'0001ULL;
constexpr std::uint64_t kOutagePickSalt = 0xFA17'0002ULL;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

bool
FaultConfig::enabled() const
{
    return linkBitErrorRate > 0.0 || !outages.empty() ||
           !stalls.empty();
}

void
FaultConfig::validate() const
{
    if (!(linkBitErrorRate >= 0.0 && linkBitErrorRate <= 1.0)) {
        throw std::invalid_argument(
            "fault: link bit-error rate must be in [0, 1], got " +
            std::to_string(linkBitErrorRate));
    }
    for (const OutageWindow& w : outages) {
        if (w.start >= w.end) {
            throw std::invalid_argument(
                "fault: outage window must have start < end, got [" +
                std::to_string(w.start) + ", " + std::to_string(w.end) +
                ")");
        }
    }
    for (const PortStallWindow& w : stalls) {
        if (w.start >= w.end) {
            throw std::invalid_argument(
                "fault: port-stall window must have start < end, got [" +
                std::to_string(w.start) + ", " + std::to_string(w.end) +
                ")");
        }
        if (w.node < 0) {
            throw std::invalid_argument(
                "fault: port-stall node must be >= 0, got " +
                std::to_string(w.node));
        }
    }
    if (retryBackoffCycles < 1) {
        throw std::invalid_argument(
            "fault: retry backoff must be >= 1 cycle");
    }
    if (retryLimit > 32) {
        throw std::invalid_argument(
            "fault: retry limit must be <= 32, got " +
            std::to_string(retryLimit));
    }
}

FaultInjector::FaultInjector(const FaultConfig& config,
                             std::uint64_t seed, unsigned flit_bits)
    : config_(config),
      seed_(seed),
      flitBits_(flit_bits),
      logHash_(kFnvOffset)
{
    assert(flit_bits >= 1);
    config_.validate();
    // A flit traversal is faulted iff at least one of its bits flips:
    // p = 1 - (1 - ber)^bits. Only one bit is actually flipped — one
    // flip already guarantees CRC detection and packet kill, and
    // keeping payload damage minimal keeps the link-energy delta of a
    // fault realistic rather than a full-width toggle.
    pFlit_ = config_.linkBitErrorRate <= 0.0
                 ? 0.0
                 : 1.0 - std::pow(1.0 - config_.linkBitErrorRate,
                                  static_cast<double>(flit_bits));
}

unsigned
FaultInjector::registerLink()
{
    assert(!finalized_ && "links must register before finalize");
    const auto id = static_cast<unsigned>(linkRngs_.size());
    linkRngs_.emplace_back(
        sim::deriveSeed(seed_, kLinkStreamSalt, id));
    return id;
}

void
FaultInjector::finalizeTopology(int num_nodes,
                                unsigned ports_per_router)
{
    assert(num_nodes > 0);
    for (const PortStallWindow& w : config_.stalls) {
        if (w.node >= num_nodes) {
            throw std::invalid_argument(
                "fault: port-stall node " + std::to_string(w.node) +
                " out of range (network has " +
                std::to_string(num_nodes) + " nodes)");
        }
        if (w.port >= ports_per_router) {
            throw std::invalid_argument(
                "fault: port-stall port " + std::to_string(w.port) +
                " out of range (routers have " +
                std::to_string(ports_per_router) + " ports)");
        }
    }
    sim::Rng pick(sim::deriveSeed(seed_, kOutagePickSalt, 0));
    for (std::size_t i = 0; i < config_.outages.size(); ++i) {
        OutageWindow& w = config_.outages[i];
        if (w.link < 0) {
            if (linkRngs_.empty()) {
                throw std::invalid_argument(
                    "fault: outage scheduled but the network has no "
                    "inter-router links");
            }
            w.link = static_cast<int>(pick.below(linkRngs_.size()));
        } else if (static_cast<std::size_t>(w.link) >=
                   linkRngs_.size()) {
            throw std::invalid_argument(
                "fault: outage link " + std::to_string(w.link) +
                " out of range (network has " +
                std::to_string(linkRngs_.size()) +
                " inter-router links)");
        }
    }
    nacksBySource_.assign(static_cast<std::size_t>(num_nodes), {});
    finalized_ = true;
}

void
FaultInjector::record(FaultKind kind, unsigned link,
                      const router::Flit& flit, sim::Cycle now)
{
    const FaultEvent ev{now, kind, link, flit.packet->id};
    ++eventCount_;
    logHash_ = fnv1a(logHash_, ev.cycle);
    logHash_ = fnv1a(logHash_, static_cast<std::uint64_t>(ev.kind));
    logHash_ = fnv1a(logHash_, ev.link);
    logHash_ = fnv1a(logHash_, ev.packetId);
    if (log_.size() < config_.maxLogEntries)
        log_.push_back(ev);
    if (tracer_) {
        tracer_->addInstant(kind == FaultKind::BitError
                                ? "fault_bit_error"
                                : "fault_link_outage",
                            -1, static_cast<int>(link), now,
                            ev.packetId);
    }
}

void
FaultInjector::onLinkTraversal(unsigned link, router::Flit& flit,
                               sim::Cycle now)
{
    assert(link < linkRngs_.size());
    sim::Rng& rng = linkRngs_[link];

    for (const OutageWindow& w : config_.outages) {
        if (w.link == static_cast<int>(link) && now >= w.start &&
            now < w.end) {
            // The link is down: model the lost flit as a guaranteed
            // corruption so the receiver detects and discards it —
            // conservation and credit accounting stay exact.
            const auto bit =
                static_cast<unsigned>(rng.below(flitBits_));
            flit.payload.setBit(bit, !flit.payload.bit(bit));
            ++flitsOutage_;
            record(FaultKind::LinkOutage, link, flit, now);
            return;
        }
    }

    if (pFlit_ > 0.0 && rng.chance(pFlit_)) {
        const auto bit = static_cast<unsigned>(rng.below(flitBits_));
        flit.payload.setBit(bit, !flit.payload.bit(bit));
        ++flitsCorrupted_;
        record(FaultKind::BitError, link, flit, now);
    }
}

bool
FaultInjector::portStalled(int node, unsigned port, sim::Cycle now)
{
    for (const PortStallWindow& w : config_.stalls) {
        if (w.node == node && w.port == port && now >= w.start &&
            now < w.end) {
            return true;
        }
    }
    return false;
}

void
FaultInjector::onPacketKilled(
    const std::shared_ptr<const router::PacketInfo>& p, sim::Cycle now)
{
    assert(finalized_);
    assert(p->src >= 0 &&
           static_cast<std::size_t>(p->src) < nacksBySource_.size());
    nacksBySource_[static_cast<std::size_t>(p->src)].push_back(
        Nack{p, now});
    if (tracer_)
        tracer_->addInstant("nack", p->src, 0, now, p->id);
}

void
FaultInjector::recordRetransmission(int node, std::uint64_t packet_id,
                                    sim::Cycle now)
{
    ++packetsRetransmitted_;
    if (tracer_)
        tracer_->addInstant("retransmit", node, 0, now, packet_id);
}

void
FaultInjector::recordPacketLost(int node, std::uint64_t packet_id,
                                sim::Cycle now)
{
    ++packetsLost_;
    if (tracer_)
        tracer_->addInstant("packet_lost", node, 0, now, packet_id);
}

void
FaultInjector::onFlitDiscarded(const router::Flit& flit,
                               sim::Cycle now)
{
    (void)flit;
    (void)now;
    ++flitsDiscarded_;
}

std::vector<Nack>
FaultInjector::takeNacks(int node)
{
    assert(node >= 0 &&
           static_cast<std::size_t>(node) < nacksBySource_.size());
    auto& q = nacksBySource_[static_cast<std::size_t>(node)];
    std::vector<Nack> out(q.begin(), q.end());
    q.clear();
    return out;
}

} // namespace orion::net
