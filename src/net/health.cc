#include "net/health.hh"

#include <algorithm>
#include <cassert>
#include <deque>

#include "net/network.hh"

namespace orion::net {

HealthMonitor::HealthMonitor(const Topology& topo,
                             const std::vector<LinkRecord>& links,
                             const FaultInjector& injector,
                             router::DeadlockMode deadlock)
    : sim::Module("health", /*node=*/-1),
      topo_(topo),
      deadlock_(deadlock),
      outages_(injector.config().outages),
      linkIdByNodePort_(
          static_cast<std::size_t>(topo.numNodes()) *
              topo.portsPerRouter(),
          -1),
      linkDown_(injector.linkCount(), false)
{
    for (const LinkRecord& rec : links) {
        if (rec.kind != LinkRecord::Kind::InterRouter)
            continue;
        assert(rec.faultLinkId >= 0 &&
               "inter-router link missing a fault link id");
        linkIdByNodePort_[static_cast<std::size_t>(rec.fromNode) *
                              topo_.portsPerRouter() +
                          rec.fromPort] = rec.faultLinkId;
    }
    for (const OutageWindow& w : outages_) {
        assert(w.link >= 0 && "outage window not resolved to a link");
        boundaries_.push_back(w.start);
        boundaries_.push_back(w.end);
    }
    std::sort(boundaries_.begin(), boundaries_.end());
    boundaries_.erase(
        std::unique(boundaries_.begin(), boundaries_.end()),
        boundaries_.end());
}

void
HealthMonitor::cycle(sim::Cycle now)
{
    bool crossed = false;
    while (nextBoundary_ < boundaries_.size() &&
           boundaries_[nextBoundary_] <= now) {
        ++nextBoundary_;
        crossed = true;
    }
    if (crossed)
        recompute(now);
}

void
HealthMonitor::recompute(sim::Cycle now)
{
    std::vector<bool> down(linkDown_.size(), false);
    unsigned count = 0;
    for (const OutageWindow& w : outages_) {
        const auto link = static_cast<std::size_t>(w.link);
        if (w.start <= now && now < w.end && !down[link]) {
            down[link] = true;
            ++count;
        }
    }
    if (down != linkDown_) {
        linkDown_ = std::move(down);
        downCount_ = count;
        ++epoch_;
    }
}

bool
HealthMonitor::linkDown(int node, unsigned port) const
{
    if (port >= topo_.localPort())
        return false;
    const int id =
        linkIdByNodePort_[static_cast<std::size_t>(node) *
                              topo_.portsPerRouter() +
                          port];
    return id >= 0 && linkDown_[static_cast<std::size_t>(id)];
}

bool
HealthMonitor::routeHealthy(
    int src, const std::vector<router::RouteHop>& route) const
{
    int at = src;
    for (const router::RouteHop& hop : route) {
        if (hop.port == topo_.localPort())
            return true; // ejection: no link to check
        if (linkDown(at, hop.port))
            return false;
        at = topo_.neighbor(at, hop.port);
        assert(at >= 0 && "route walks off a mesh edge");
    }
    return true;
}

std::optional<std::vector<router::RouteHop>>
HealthMonitor::buildDetour(int src, int dst) const
{
    assert(src != dst);
    const unsigned n = topo_.numNodes();
    const unsigned local = topo_.localPort();

    // Deterministic BFS: nodes dequeue in FIFO order and ports are
    // scanned ascending, so the chosen shortest path is a pure
    // function of (topology, down-link set).
    std::vector<int> viaPort(n, -1);
    std::vector<int> parent(n, -1);
    std::deque<int> frontier{src};
    viaPort[static_cast<std::size_t>(src)] = static_cast<int>(local);
    while (!frontier.empty() &&
           viaPort[static_cast<std::size_t>(dst)] < 0) {
        const int at = frontier.front();
        frontier.pop_front();
        for (unsigned p = 0; p < local; ++p) {
            const int next = topo_.neighbor(at, p);
            if (next < 0 || viaPort[static_cast<std::size_t>(next)] >= 0)
                continue;
            if (linkDown(at, p))
                continue;
            viaPort[static_cast<std::size_t>(next)] =
                static_cast<int>(p);
            parent[static_cast<std::size_t>(next)] = at;
            frontier.push_back(next);
        }
    }
    if (viaPort[static_cast<std::size_t>(dst)] < 0)
        return std::nullopt; // partitioned

    // Walk back dst -> src, then reverse into hop order.
    std::vector<router::RouteHop> route;
    for (int at = dst; at != src;
         at = parent[static_cast<std::size_t>(at)]) {
        route.push_back(
            {static_cast<std::uint8_t>(
                 viaPort[static_cast<std::size_t>(at)]),
             0, false});
    }
    std::reverse(route.begin(), route.end());

    // Dateline VC classes per maximal same-dimension run, exactly as
    // DorRouting assigns them: the whole run rides class 1 when any of
    // its hops crosses the wraparound edge. newRing marks the first
    // hop of each run (bubble flow control's ring-entry check).
    int at = src;
    std::size_t run_start = 0;
    unsigned run_dim = topo_.portDimension(route[0].port);
    bool run_wraps = false;
    const auto close_run = [&](std::size_t run_end) {
        const bool dateline =
            deadlock_ == router::DeadlockMode::Dateline &&
            topo_.wrapped();
        const std::uint8_t cls = dateline && run_wraps ? 1 : 0;
        for (std::size_t i = run_start; i < run_end; ++i) {
            route[i].vcClass = cls;
            route[i].newRing = i == run_start;
        }
    };
    for (std::size_t i = 0; i < route.size(); ++i) {
        const unsigned port = route[i].port;
        const unsigned dim = topo_.portDimension(port);
        if (dim != run_dim) {
            close_run(i);
            run_start = i;
            run_dim = dim;
            run_wraps = false;
        }
        if (topo_.wrapped()) {
            const unsigned coord = topo_.coordsOf(at)[dim];
            const unsigned radix = topo_.radix(dim);
            if (topo_.portIsPlus(port) ? coord == radix - 1
                                       : coord == 0) {
                run_wraps = true;
            }
        }
        at = topo_.neighbor(at, port);
        assert(at >= 0);
    }
    close_run(route.size());
    assert(at == dst);

    route.push_back({static_cast<std::uint8_t>(local), 0, false});
    return route;
}

std::vector<unsigned>
HealthMonitor::downLinks() const
{
    std::vector<unsigned> out;
    for (std::size_t i = 0; i < linkDown_.size(); ++i)
        if (linkDown_[i])
            out.push_back(static_cast<unsigned>(i));
    return out;
}

} // namespace orion::net
