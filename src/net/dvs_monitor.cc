#include "net/dvs_monitor.hh"

#include <cassert>

namespace orion::net {

DvsLinkMonitor::DvsLinkMonitor(sim::EventBus& bus,
                               power::DvsLinkModel model,
                               DvsPolicy policy)
    : model_(std::move(model)),
      policy_(std::move(policy)),
      levelTraversals_(model_.numLevels(), 0)
{
    assert(policy_.windowCycles > 0);
    assert(policy_.thresholds.size() + 1 == model_.numLevels());
    for (std::size_t i = 1; i < policy_.thresholds.size(); ++i)
        assert(policy_.thresholds[i] < policy_.thresholds[i - 1]);

    bus.subscribeRaw(
        sim::EventType::LinkTraversal,
        [](void* ctx, const sim::Event& ev) {
            static_cast<DvsLinkMonitor*>(ctx)->onTraversal(ev);
        },
        this);
}

unsigned
DvsLinkMonitor::pickLevel(double utilization) const
{
    for (std::size_t i = 0; i < policy_.thresholds.size(); ++i)
        if (utilization >= policy_.thresholds[i])
            return static_cast<unsigned>(i);
    return model_.numLevels() - 1;
}

void
DvsLinkMonitor::advanceWindows(LinkState& st, sim::Cycle now) const
{
    while (now >= st.windowStart + policy_.windowCycles) {
        const double util =
            static_cast<double>(st.windowCount) /
            static_cast<double>(policy_.windowCycles);
        st.level = pickLevel(util);
        st.windowStart += policy_.windowCycles;
        st.windowCount = 0;
    }
}

void
DvsLinkMonitor::onTraversal(const sim::Event& ev)
{
    LinkState& st = links_[{ev.node, ev.component}];
    advanceWindows(st, ev.cycle);
    ++st.windowCount;

    dvsEnergy_ += model_.traversalEnergy(ev.deltaA, st.level);
    baselineEnergy_ += model_.nominalTraversalEnergy(ev.deltaA);
    ++levelTraversals_[st.level];
}

double
DvsLinkMonitor::savings() const
{
    if (baselineEnergy_ <= 0.0)
        return 0.0;
    return 1.0 - dvsEnergy_ / baselineEnergy_;
}

unsigned
DvsLinkMonitor::linkLevel(int node, int port) const
{
    const auto it = links_.find({node, port});
    return it == links_.end() ? 0 : it->second.level;
}

void
DvsLinkMonitor::reset()
{
    dvsEnergy_ = 0.0;
    baselineEnergy_ = 0.0;
    std::fill(levelTraversals_.begin(), levelTraversals_.end(), 0);
    for (auto& [key, st] : links_)
        st.windowCount = 0;
}

} // namespace orion::net
