#include "net/network.hh"

#include <cassert>
#include <string>

namespace orion::net {

namespace {

router::RouterParams
makeRouterParams(const NetworkParams& p, const Topology& topo)
{
    router::RouterParams rp;
    rp.ports = topo.portsPerRouter();
    rp.vcs = p.vcs;
    rp.bufferDepth = p.bufferDepth;
    rp.flitBits = p.flitBits;
    rp.packetLength = p.packetLength;
    rp.deadlock = p.deadlock;
    rp.arbiterKind = p.arbiterKind;
    rp.speculative = p.speculative;
    return rp;
}

} // namespace

Network::Network(sim::Simulator& simulator, const NetworkParams& params,
                 const TrafficParams& traffic, std::uint64_t seed,
                 FaultInjector* faults)
    : params_(params),
      topo_(params.dims, params.wrap),
      routing_(topo_,
               params.dimOrder.empty() ? DorRouting::defaultOrder(topo_)
                                       : params.dimOrder,
               params.deadlock, params.tieBreak),
      traffic_(topo_, traffic),
      faults_(faults)
{
    assert(params.routerKind == RouterKind::VirtualChannel ||
           params.vcs == 1);

    buildRouters(simulator, seed);
    wire(simulator);
    if (faults_) {
        faults_->finalizeTopology(static_cast<int>(topo_.numNodes()),
                                  topo_.portsPerRouter());
    }
}

void
Network::buildRouters(sim::Simulator& simulator, std::uint64_t seed)
{
    const unsigned n = topo_.numNodes();
    const router::RouterParams rp = makeRouterParams(params_, topo_);

    routers_.reserve(n);
    nodes_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        const auto id = static_cast<int>(i);
        const std::string rname = "router" + std::to_string(i);
        switch (params_.routerKind) {
          case RouterKind::Wormhole:
            routers_.push_back(std::make_unique<router::WormholeRouter>(
                rname, id, rp, simulator.bus()));
            break;
          case RouterKind::VirtualChannel:
            routers_.push_back(std::make_unique<router::CrossbarRouter>(
                rname, id, rp, simulator.bus(), /*va_enabled=*/true));
            break;
          case RouterKind::CentralBuffer:
            routers_.push_back(
                std::make_unique<router::CentralBufferRouter>(
                    rname, id, rp, params_.centralBuffer,
                    simulator.bus()));
            break;
        }
        nodes_.push_back(std::make_unique<Node>(
            "node" + std::to_string(i), id, topo_, routing_, traffic_,
            shared_, params_.packetLength, params_.flitBits, params_.vcs,
            params_.bufferDepth, seed, simulator.bus(),
            params_.injection));

        if (faults_) {
            routers_.back()->setFaultHooks(faults_);
            nodes_.back()->setFaultInjector(faults_);
        }
        simulator.add(routers_.back().get());
        simulator.add(nodes_.back().get());
    }
}

void
Network::wire(sim::Simulator& simulator)
{
    const unsigned n = topo_.numNodes();
    const unsigned local = topo_.localPort();

    // Inter-router links: one data link + one credit-return link per
    // (node, network port) pair with a neighbor.
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned p = 0; p < local; ++p) {
            const int j = topo_.neighbor(static_cast<int>(i), p);
            if (j < 0)
                continue; // mesh edge
            // Data: i --port p--> j, arriving at j's opposite port.
            const unsigned q = p ^ 1u;
            auto data = std::make_unique<router::FlitLink>(
                static_cast<int>(i), static_cast<int>(p),
                params_.flitBits, /*emits_traversal=*/true);
            auto credit = std::make_unique<router::CreditLink>(
                j, static_cast<int>(q));

            routers_[i]->connectOutput(p, data.get(), credit.get(),
                                       params_.vcs, params_.bufferDepth,
                                       /*unlimited=*/false);
            routers_[j]->connectInput(q, data.get(), credit.get());
            int fault_link = -1;
            if (faults_) {
                const unsigned id = faults_->registerLink();
                data->attachFaultHooks(faults_, id);
                fault_link = static_cast<int>(id);
            }

            simulator.addChannel(data.get());
            simulator.addChannel(credit.get());
            linkRecords_.push_back({LinkRecord::Kind::InterRouter,
                                    static_cast<int>(i), p, j, q,
                                    data.get(), credit.get(),
                                    fault_link});
            flitLinks_.push_back(std::move(data));
            creditLinks_.push_back(std::move(credit));
            ++interRouterLinks_;
        }
    }

    // Local injection/ejection wiring (no link-traversal events).
    for (unsigned i = 0; i < n; ++i) {
        const auto id = static_cast<int>(i);

        auto inj = std::make_unique<router::FlitLink>(
            id, static_cast<int>(local), params_.flitBits,
            /*emits_traversal=*/false);
        auto inj_credit = std::make_unique<router::CreditLink>(
            id, static_cast<int>(local));
        nodes_[i]->connectInjection(inj.get(), inj_credit.get());
        routers_[i]->connectInput(local, inj.get(), inj_credit.get());

        auto ej = std::make_unique<router::FlitLink>(
            id, static_cast<int>(local), params_.flitBits,
            /*emits_traversal=*/false);
        nodes_[i]->connectEjection(ej.get());
        routers_[i]->connectOutput(local, ej.get(), nullptr,
                                   params_.vcs, params_.bufferDepth,
                                   /*unlimited=*/true);

        simulator.addChannel(inj.get());
        simulator.addChannel(inj_credit.get());
        simulator.addChannel(ej.get());
        linkRecords_.push_back({LinkRecord::Kind::Injection, id, local,
                                id, local, inj.get(), inj_credit.get()});
        linkRecords_.push_back({LinkRecord::Kind::Ejection, id, local,
                                id, local, ej.get(), nullptr});
        flitLinks_.push_back(std::move(inj));
        flitLinks_.push_back(std::move(ej));
        creditLinks_.push_back(std::move(inj_credit));
    }
}

unsigned
Network::linksFrom(int node) const
{
    unsigned count = 0;
    for (unsigned p = 0; p < topo_.localPort(); ++p)
        if (topo_.neighbor(node, p) >= 0)
            ++count;
    return count;
}

std::uint64_t
Network::totalInjected() const
{
    std::uint64_t t = 0;
    for (const auto& n : nodes_)
        t += n->packetsInjected();
    return t;
}

std::uint64_t
Network::totalEjected() const
{
    std::uint64_t t = 0;
    for (const auto& n : nodes_)
        t += n->packetsEjected();
    return t;
}

std::uint64_t
Network::totalFlitsEjected() const
{
    std::uint64_t t = 0;
    for (const auto& n : nodes_)
        t += n->flitsEjected();
    return t;
}

std::uint64_t
Network::totalLost() const
{
    std::uint64_t t = 0;
    for (const auto& n : nodes_)
        t += n->packetsLost();
    return t;
}

std::uint64_t
Network::totalUnreachable() const
{
    std::uint64_t t = 0;
    for (const auto& n : nodes_)
        t += n->packetsUnreachable();
    return t;
}

std::uint64_t
Network::inFlight() const
{
    // Lost packets (retry limit exhausted) and unreachable packets
    // (destination partitioned) are closed, not in flight: counting
    // them would wedge the drain loop and false-fire the watchdog.
    return totalInjected() - totalEjected() - totalLost() -
           totalUnreachable();
}

void
Network::resetFlitCounts()
{
    for (auto& n : nodes_)
        n->resetFlitCount();
}

} // namespace orion::net
