#include "net/sampler.hh"

#include <cassert>
#include <cstdio>
#include <ostream>
#include <string>

#include "net/deadlock.hh"
#include "net/fault.hh"
#include "net/health.hh"
#include "net/network.hh"
#include "net/power_monitor.hh"

namespace orion::net {

WindowedSampler::WindowedSampler(
    const telemetry::MetricsRegistry& registry, sim::Cycle interval)
    : registry_(registry), interval_(interval)
{
    assert(interval_ > 0 && "sampler needs a nonzero interval");
    baseline_ = readAll();
}

void
WindowedSampler::registerWith(sim::Simulator& simulator)
{
    simulator.addPeriodic("telemetry.sampler", interval_,
                          [this](sim::Cycle now) { sample(now); });
}

std::vector<double>
WindowedSampler::readAll() const
{
    std::vector<double> values(registry_.size());
    for (std::size_t i = 0; i < registry_.size(); ++i)
        values[i] = registry_.read(i);
    return values;
}

void
WindowedSampler::rebaseline(sim::Cycle now)
{
    windows_.clear();
    windowStart_ = now;
    baseline_ = readAll();
}

void
WindowedSampler::sample(sim::Cycle now)
{
    if (now <= windowStart_)
        return;
    Window w{windowStart_, now, readAll()};
    for (std::size_t i = 0; i < registry_.size(); ++i) {
        if (registry_.kind(i) == telemetry::MetricKind::Counter) {
            const double current = w.values[i];
            w.values[i] = current - baseline_[i];
            baseline_[i] = current;
        }
    }
    windowStart_ = now;
    windows_.push_back(std::move(w));
}

void
WindowedSampler::finalize(sim::Cycle now)
{
    sample(now);
}

void
WindowedSampler::writeCsv(std::ostream& out) const
{
    out << "window,cycle_start,cycle_end,metric,kind,value\n";
    char buf[32];
    for (std::size_t w = 0; w < windows_.size(); ++w) {
        const Window& win = windows_[w];
        for (std::size_t i = 0; i < registry_.size(); ++i) {
            std::snprintf(buf, sizeof buf, "%.9g", win.values[i]);
            out << w << ',' << win.start << ',' << win.end << ','
                << registry_.name(i) << ','
                << telemetry::metricKindName(registry_.kind(i)) << ','
                << buf << '\n';
        }
    }
}

void
registerNetworkMetrics(telemetry::MetricsRegistry& reg, Network& net,
                       const PowerMonitor& monitor,
                       const sim::EventBus& bus,
                       const FaultInjector* faults,
                       const HealthMonitor* health,
                       const DeadlockDetector* detector)
{
    const int nodes =
        static_cast<int>(net.topology().numNodes());

    // Network-wide aggregates.
    reg.addCounter("net.packets_injected",
                   [&net] { return double(net.totalInjected()); });
    reg.addCounter("net.packets_ejected",
                   [&net] { return double(net.totalEjected()); });
    reg.addCounter("net.packets_lost",
                   [&net] { return double(net.totalLost()); });
    reg.addGauge("net.in_flight",
                 [&net] { return double(net.inFlight()); });

    // Sample-latency accumulator (sum + count give per-window means).
    const SharedState& shared = net.shared();
    reg.addCounter("latency.sum_cycles", [&shared] {
        return shared.sampleLatency.sum();
    });
    reg.addCounter("latency.count", [&shared] {
        return double(shared.sampleLatency.count());
    });

    // Per-endpoint injection/ejection and source queueing.
    for (int n = 0; n < nodes; ++n) {
        const std::string p = "node." + std::to_string(n) + ".";
        const Node& ep = net.endpoint(n);
        reg.addCounter(p + "packets_injected", [&ep] {
            return double(ep.packetsInjected());
        });
        reg.addCounter(p + "packets_ejected", [&ep] {
            return double(ep.packetsEjected());
        });
        reg.addCounter(p + "flits_injected", [&ep] {
            return double(ep.flitsInjectedTotal());
        });
        reg.addCounter(p + "flits_ejected", [&ep] {
            return double(ep.flitsEjectedTotal());
        });
        reg.addGauge(p + "source_queue", [&ep] {
            return double(ep.sourceQueueLength());
        });
    }

    // Per-router occupancy, throughput ledgers, contention, credits.
    for (int n = 0; n < nodes; ++n) {
        const std::string p = "router." + std::to_string(n) + ".";
        const router::Router& r = net.router(n);
        reg.addGauge(p + "occupancy",
                     [&r] { return double(r.residentFlits()); });
        reg.addCounter(p + "flits_arrived",
                       [&r] { return double(r.flitsArrived()); });
        reg.addCounter(p + "flits_forwarded", [&r] {
            return double(r.flitsForwarded());
        });
        reg.addCounter(p + "sa_stalls",
                       [&r] { return double(r.saStalls()); });
        reg.addGauge(p + "credits_in_flight", [&r] {
            return double(r.creditsInFlight());
        });
    }

    // The spatial power map: per-(node, component-class) energy.
    for (int n = 0; n < nodes; ++n) {
        for (unsigned c = 0; c < kNumComponentClasses; ++c) {
            const auto cls = static_cast<ComponentClass>(c);
            reg.addCounter("power." + std::to_string(n) + "." +
                               componentClassName(cls) + ".energy_j",
                           [&monitor, n, cls] {
                               return monitor.energy(n, cls);
                           });
        }
    }

    // Event-bus totals by type.
    for (unsigned t = 0; t < sim::kNumEventTypes; ++t) {
        const auto type = static_cast<sim::EventType>(t);
        reg.addCounter(std::string("events.") + sim::eventTypeName(type),
                       [&bus, type] {
                           return double(bus.emittedCount(type));
                       });
    }

    // Fault-injection activity, by kind.
    if (faults) {
        reg.addCounter("fault.events", [faults] {
            return double(faults->eventCount());
        });
        reg.addCounter("fault.flits_corrupted", [faults] {
            return double(faults->flitsCorrupted());
        });
        reg.addCounter("fault.flits_outage_dropped", [faults] {
            return double(faults->flitsOutageDropped());
        });
        reg.addCounter("fault.flits_discarded", [faults] {
            return double(faults->flitsDiscarded());
        });
        reg.addCounter("fault.packets_retransmitted", [faults] {
            return double(faults->packetsRetransmitted());
        });
        reg.addCounter("fault.packets_lost", [faults] {
            return double(faults->packetsLost());
        });
    }

    // Fault-tolerant rerouting activity.
    if (health) {
        reg.addCounter("fault.reroutes", [health] {
            return double(health->reroutes());
        });
        reg.addCounter("net.packets_unreachable", [&net] {
            return double(net.totalUnreachable());
        });
        reg.addGauge("net.links_down", [health] {
            return double(health->downLinks().size());
        });
    }

    // Runtime deadlock detection/recovery.
    if (detector) {
        reg.addCounter("net.deadlocks_detected", [detector] {
            return double(detector->detections());
        });
        reg.addCounter("net.deadlocks_recovered", [detector] {
            return double(detector->recoveries());
        });
    }
}

} // namespace orion::net
