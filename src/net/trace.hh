/**
 * @file
 * Communication-trace support.
 *
 * Paper Section 4.3: "while our experiments use synthetic workloads,
 * as no realistic communication workloads are readily available,
 * Orion can be interfaced with actual communication traces for more
 * realistic results." A trace is a list of packet-creation records;
 * the traffic generator replays it, injecting each packet at its
 * recorded cycle (or as soon afterwards as the source is able — trace
 * cycles are lower bounds under backpressure, since each node creates
 * at most one packet per cycle).
 *
 * Text format, one record per line: `cycle src dst`, `#` starts a
 * comment. Records need not be sorted; src == dst records are
 * rejected.
 */

#ifndef ORION_NET_TRACE_HH
#define ORION_NET_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event.hh"

namespace orion::net {

/** One packet creation: at @p cycle, @p src sends to @p dst. */
struct TraceRecord
{
    sim::Cycle cycle;
    int src;
    int dst;

    bool operator==(const TraceRecord&) const = default;
};

/** Trace parsing and validation. */
class Trace
{
  public:
    /**
     * Parse records from @p in. Throws std::runtime_error on
     * malformed lines or self-addressed records.
     */
    static std::vector<TraceRecord> parse(std::istream& in);

    /** Parse records from the file at @p path. */
    static std::vector<TraceRecord> load(const std::string& path);

    /**
     * Validate @p records against a network of @p num_nodes nodes
     * (node ids in range, no self-sends). Throws on violation.
     */
    static void validate(const std::vector<TraceRecord>& records,
                         unsigned num_nodes);
};

} // namespace orion::net

#endif // ORION_NET_TRACE_HH
