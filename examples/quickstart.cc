/**
 * @file
 * Quickstart: build the paper's on-chip 4x4 torus with VC16 routers
 * (2 VCs x 8 flits, 256-bit flits, 2 GHz), run uniform random traffic
 * at one injection rate, and print latency, throughput, and the
 * per-component power breakdown.
 */

#include <cstdio>

#include "core/config.hh"
#include "core/report.hh"
#include "core/simulation.hh"

int
main()
{
    using namespace orion;

    // 1. Pick a router configuration — here a paper preset; every
    //    field of NetworkConfig can also be set by hand.
    NetworkConfig network = NetworkConfig::vc16();

    // 2. Describe the workload.
    TrafficConfig traffic;
    traffic.pattern = net::TrafficPattern::UniformRandom;
    traffic.injectionRate = 0.08; // packets/cycle/node

    // 3. Simulation protocol (paper defaults: 1000-cycle warm-up,
    //    10,000-packet sample). A smaller sample keeps this example
    //    snappy.
    SimConfig sim;
    sim.samplePackets = 3000;
    sim.seed = 42;

    Simulation simulation(network, traffic, sim);
    const Report r = simulation.run();

    std::printf("Orion quickstart: 4x4 torus, VC16, uniform random\n");
    std::printf("  modules              : %zu\n", r.moduleCount);
    std::printf("  cycles simulated     : %llu\n",
                static_cast<unsigned long long>(r.totalCycles));
    std::printf("  completed            : %s\n",
                r.completed ? "yes" : "no");
    std::printf("  avg packet latency   : %.2f cycles\n",
                r.avgLatencyCycles);
    std::printf("  accepted throughput  : %.4f flits/node/cycle\n",
                r.acceptedFlitsPerNodePerCycle);
    std::printf("  network power        : %.3f W\n", r.networkPowerWatts);
    std::printf("    buffers            : %.3f W\n",
                r.breakdownWatts.buffer);
    std::printf("    crossbars          : %.3f W\n",
                r.breakdownWatts.crossbar);
    std::printf("    arbiters           : %.4f W\n",
                r.breakdownWatts.arbiter);
    std::printf("    links              : %.3f W\n",
                r.breakdownWatts.link);

    report::Table map;
    map.title = "per-node power (W), row y=3 at top";
    map.headers = {"y\\x", "0", "1", "2", "3"};
    for (int y = 3; y >= 0; --y) {
        std::vector<std::string> row{std::to_string(y)};
        for (int x = 0; x < 4; ++x)
            row.push_back(report::fmt(r.nodePowerWatts[y * 4 + x], 4));
        map.addRow(std::move(row));
    }
    std::printf("\n%s", report::formatTable(map).c_str());
    return 0;
}
