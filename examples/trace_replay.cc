/**
 * @file
 * Trace-driven workload example.
 *
 * The paper (Section 4.3): "Orion can be interfaced with actual
 * communication traces for more realistic results." This example
 * synthesizes a bursty producer-consumer trace (a stand-in for a
 * recorded application trace), writes it in the tool's text format,
 * loads it back through the public Trace API, and replays it on the
 * paper's on-chip network — comparing the outcome against a uniform
 * Bernoulli workload of the same average rate to show why trace
 * replay matters: bursts create transient queuing that a smooth
 * synthetic load hides.
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/report.hh"
#include "core/simulation.hh"
#include "net/trace.hh"
#include "sim/rng.hh"

int
main()
{
    using namespace orion;

    // 1. Synthesize a bursty trace: every node emits bursts of 8
    //    packets to one consumer, then goes quiet; average rate
    //    ~0.05 packets/cycle/node.
    const std::string path = "/tmp/orion_example_trace.txt";
    {
        std::ofstream out(path);
        out << "# bursty producer-consumer trace: cycle src dst\n";
        sim::Rng rng(2026);
        for (int node = 0; node < 16; ++node) {
            sim::Cycle cycle = 1000 + rng.below(100);
            while (cycle < 6000) {
                const int dst = static_cast<int>(rng.below(15));
                const int fixed_dst = dst >= node ? dst + 1 : dst;
                for (int b = 0; b < 8; ++b) {
                    out << cycle << ' ' << node << ' ' << fixed_dst
                        << '\n';
                    cycle += 2; // burst: a packet every 2 cycles
                }
                cycle += 300 + rng.below(100); // quiet period
            }
        }
    }

    // 2. Load it back through the public API.
    auto records = std::make_shared<const std::vector<net::TraceRecord>>(
        net::Trace::load(path));
    std::printf("trace: %zu packets from %s\n\n", records->size(),
                path.c_str());

    // 3. Replay on the paper's VC64 network.
    NetworkConfig cfg = NetworkConfig::vc64();
    SimConfig sim;
    sim.samplePackets = records->size();
    sim.maxCycles = 100000;

    TrafficConfig trace_traffic;
    trace_traffic.pattern = net::TrafficPattern::Trace;
    trace_traffic.trace = records;
    Simulation trace_run(cfg, trace_traffic, sim);
    const Report rt = trace_run.run();

    // 4. A Bernoulli workload with the same average offered load.
    const double avg_rate =
        static_cast<double>(records->size()) / 16.0 / 5000.0;
    TrafficConfig smooth;
    smooth.injectionRate = avg_rate;
    SimConfig sim2 = sim;
    sim2.samplePackets = 3000;
    Simulation smooth_run(cfg, smooth, sim2);
    const Report rs = smooth_run.run();

    report::Table t;
    t.headers = {"workload",      "avg latency", "p95",
                 "p99",           "power (W)"};
    t.addRow({"bursty trace replay",
              report::fmt(rt.avgLatencyCycles, 1),
              report::fmt(rt.p95LatencyCycles, 0),
              report::fmt(rt.p99LatencyCycles, 0),
              report::fmt(rt.networkPowerWatts, 2)});
    t.addRow({"smooth Bernoulli, same avg rate",
              report::fmt(rs.avgLatencyCycles, 1),
              report::fmt(rs.p95LatencyCycles, 0),
              report::fmt(rs.p99LatencyCycles, 0),
              report::fmt(rs.networkPowerWatts, 2)});
    std::printf("%s", report::formatTable(t).c_str());
    std::printf("\nBursts inflate the latency tail (p95/p99) well "
                "beyond what the same average load predicts —\n"
                "the effect trace replay exists to expose.\n");
    return 0;
}
