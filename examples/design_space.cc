/**
 * @file
 * Design-space exploration example (the paper's first usage mode,
 * Figure 3a): sweep VC count and buffer depth of a virtual-channel
 * router at a fixed area-style budget axis, and report the
 * power-performance frontier — latency, saturation throughput, power,
 * and estimated router area — so an architect can pick the optimal
 * configuration.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/executor.hh"
#include "core/report.hh"
#include "core/simulation.hh"
#include "core/sweep.hh"
#include "power/buffer_model.hh"

int
main()
{
    using namespace orion;

    SimConfig sim;
    sim.samplePackets = 3000;
    sim.maxCycles = 200000;

    TrafficConfig traffic;
    traffic.pattern = net::TrafficPattern::UniformRandom;

    struct Point
    {
        unsigned vcs;
        unsigned depth;
    };
    const std::vector<Point> grid = {
        {1, 16}, {1, 64}, {2, 8}, {2, 16}, {4, 4},
        {4, 8},  {8, 8},  {8, 16},
    };

    std::printf("Design-space exploration: VC count x buffer depth on "
                "the paper's on-chip 4x4 torus\n");
    std::printf("(256-bit flits, 2 GHz; latency at 0.08 "
                "pkts/cycle/node; saturation per 2x zero-load)\n\n");

    // Each grid point is a full mini-study (one fixed-rate run + a
    // 5-point saturation sweep + zero-load run), so parallelize at
    // grid granularity and keep the inner sweeps serial. Rows land in
    // grid order whatever the completion order.
    std::vector<std::vector<std::string>> rows(grid.size());
    core::parallelFor(0, grid.size(), [&](std::size_t i) {
        const auto& p = grid[i];
        NetworkConfig cfg = NetworkConfig::vc16();
        if (p.vcs == 1) {
            cfg = NetworkConfig::wh64();
            cfg.net.bufferDepth = p.depth;
        } else {
            cfg.net.vcs = p.vcs;
            cfg.net.bufferDepth = p.depth;
            // Slot-granular bubble needs a whole packet per VC;
            // shallower VCs fall back to dateline classes.
            cfg.net.deadlock =
                p.vcs >= 4 && p.depth >= cfg.net.packetLength
                    ? router::DeadlockMode::Bubble
                    : router::DeadlockMode::Dateline;
        }

        TrafficConfig tr = traffic;
        tr.injectionRate = 0.08;
        Simulation s(cfg, tr, sim);
        const Report r = s.run();

        const auto points = Sweep::overRates(
            cfg, traffic, sim, {0.10, 0.12, 0.14, 0.16, 0.18});
        const double zl = Sweep::zeroLoadLatency(cfg, traffic, sim);
        const double sat = Sweep::saturationRate(points, zl);

        const power::BufferModel buf(
            cfg.tech,
            {p.vcs * p.depth, cfg.net.flitBits, 1, 1});

        rows[i] = {
            std::to_string(p.vcs),
            std::to_string(p.depth),
            std::to_string(p.vcs * p.depth),
            r.completed ? report::fmt(r.avgLatencyCycles, 1) : ">sat",
            sat < 0 ? "> 0.18" : report::fmt(sat, 2),
            report::fmt(r.networkPowerWatts, 2),
            report::fmt(buf.areaUm2() / 1e6, 3) + " mm2",
        };
    });

    report::Table t;
    t.headers = {"vcs",      "depth/vc", "flits/port", "latency@0.08",
                 "sat rate", "power@0.08 (W)", "buffer area/port"};
    for (auto& row : rows)
        t.addRow(std::move(row));
    std::printf("%s", report::formatTable(t).c_str());
    std::printf("\nReading the frontier: more VCs buy saturation "
                "headroom at almost no arbiter power cost; deeper\n"
                "buffers past ~8 flits/VC buy power draw without "
                "matching throughput (the paper's VC128 lesson).\n");
    return 0;
}
