/**
 * @file
 * Standalone power-model example.
 *
 * The paper (Section 3.2): "We will be distributing our power models
 * ... This will allow our power models to be used independently from
 * the simulator, either as a separate power analysis tool, or as a
 * plug-in to other network simulators."
 *
 * This example uses the Table 2-4 models with no simulator at all: it
 * sizes a hypothetical router, prints per-operation energies, and then
 * answers a back-of-envelope question — the router's power at a given
 * flit arrival rate — the way an external simulator plugging these
 * models in would.
 */

#include <cstdio>

#include "core/report.hh"
#include "power/arbiter_model.hh"
#include "power/buffer_model.hh"
#include "power/central_buffer_model.hh"
#include "power/crossbar_model.hh"
#include "power/link_model.hh"
#include "tech/tech_node.hh"

int
main()
{
    using namespace orion;
    using orion::report::fmtEng;

    // A hypothetical 6-port 128-bit router in a scaled 70 nm process
    // at 1.5 GHz — nothing the simulator presets define.
    const tech::TechNode tech = tech::TechNode::scaled(0.07, 1.0, 1.5e9);
    const unsigned ports = 6;
    const unsigned flit_bits = 128;

    const power::BufferModel buffer(tech, {32, flit_bits, 1, 1});
    const power::CrossbarModel xbar(
        tech,
        {ports, ports, flit_bits, power::CrossbarKind::Matrix, 0.0});
    const power::ArbiterModel arbiter(
        tech,
        {ports - 1, power::ArbiterKind::RoundRobin, xbar.controlCap()});
    const power::OnChipLinkModel link(tech, 2000.0, flit_bits);

    std::printf("Standalone power models — 6-port 128-bit router, "
                "70 nm, 1.0 V, 1.5 GHz\n\n");

    report::Table t;
    t.headers = {"operation", "energy"};
    t.addRow({"buffer write (avg)", fmtEng(buffer.avgWriteEnergy(),
                                           "J", 2)});
    t.addRow({"buffer read", fmtEng(buffer.readEnergy(), "J", 2)});
    t.addRow({"crossbar traversal (avg)",
              fmtEng(xbar.avgTraversalEnergy(), "J", 2)});
    t.addRow({"arbitration (avg, incl. xb ctrl)",
              fmtEng(arbiter.avgArbitrationEnergy(), "J", 2)});
    t.addRow({"2 mm link traversal (avg)",
              fmtEng(link.avgTraversalEnergy(), "J", 2)});
    std::printf("%s\n", report::formatTable(t).c_str());

    // Plug-in style estimate: an external simulator reports flit
    // arrival rates per port; energy per flit-hop times rate times
    // frequency gives router power.
    const double e_per_flit_hop =
        buffer.avgWriteEnergy() + buffer.readEnergy() +
        arbiter.avgArbitrationEnergy() + xbar.avgTraversalEnergy() +
        link.avgTraversalEnergy();

    report::Table p;
    p.title = "router + outgoing-link power vs flit arrival rate";
    p.headers = {"flits/port/cycle", "power"};
    for (const double rate : {0.1, 0.3, 0.5, 0.8}) {
        const double watts =
            e_per_flit_hop * rate * ports * tech.freqHz;
        p.addRow({report::fmt(rate, 1), fmtEng(watts, "W", 2)});
    }
    std::printf("%s\n", report::formatTable(p).c_str());

    // Hierarchical reuse: a central buffer built from the same parts.
    const power::CentralBufferModel cbuf(
        tech, {4, 1024, flit_bits, 2, 2, ports, 2});
    std::printf("hierarchical central buffer (4 x 1024 rows): write %s,"
                " read %s, area %.3f mm2\n",
                fmtEng(cbuf.avgWriteEnergy(), "J", 2).c_str(),
                fmtEng(cbuf.avgReadEnergy(), "J", 2).c_str(),
                cbuf.areaUm2() / 1e6);
    return 0;
}
