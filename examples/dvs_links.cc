/**
 * @file
 * Evaluating a new microarchitectural technique — the paper's third
 * usage mode (Figure 3c), applied to the mechanism its reference [17]
 * proposed: dynamic voltage scaling of network links.
 *
 * A DvsLinkMonitor rides the same event stream as the regular power
 * monitor; each link picks its voltage level per observation window
 * from recent utilization. The example sweeps injection rate and
 * reports link-energy savings vs. the always-nominal baseline, plus
 * the level-usage mix — showing the classic DVS shape: large savings
 * at light load, vanishing as the network saturates.
 */

#include <cstdio>
#include <string>

#include "core/config.hh"
#include "core/report.hh"
#include "core/simulation.hh"
#include "net/dvs_monitor.hh"
#include "power/dvs_link_model.hh"

int
main()
{
    using namespace orion;

    std::printf("DVS links on the paper's on-chip 4x4 torus (VC64)\n");
    std::printf("levels: 100%% / 83%% / 67%% of nominal Vdd; "
                "256-cycle windows; thresholds 0.5 / 0.25\n\n");

    report::Table t;
    t.headers = {"rate",         "link energy saved", "level-0 %",
                 "level-1 %",    "level-2 %",         "avg latency"};

    for (const double rate : {0.01, 0.04, 0.08, 0.12, 0.15}) {
        NetworkConfig cfg = NetworkConfig::vc64();
        TrafficConfig traffic;
        traffic.injectionRate = rate;
        SimConfig sim;
        sim.samplePackets = 3000;
        sim.maxCycles = 300000;

        Simulation s(cfg, traffic, sim);

        power::DvsLinkModel dvs_model(
            cfg.tech, cfg.linkLengthUm, cfg.net.flitBits,
            power::DvsLinkModel::defaultLevels(cfg.tech.vdd));
        net::DvsLinkMonitor dvs(s.simulator().bus(),
                                std::move(dvs_model), net::DvsPolicy{});

        const Report r = s.run();

        const auto& hist = dvs.levelTraversals();
        double total = 0.0;
        for (const auto c : hist)
            total += static_cast<double>(c);
        const auto pct = [&](unsigned l) {
            return total > 0.0
                       ? report::fmt(100.0 *
                                         static_cast<double>(hist[l]) /
                                         total,
                                     1) + " %"
                       : std::string("-");
        };

        t.addRow({
            report::fmt(rate, 2),
            report::fmt(100.0 * dvs.savings(), 1) + " %",
            pct(0),
            pct(1),
            pct(2),
            r.completed ? report::fmt(r.avgLatencyCycles, 1) : ">sat",
        });
    }
    std::printf("%s", report::formatTable(t).c_str());
    std::printf("\nNote: this isolates the energy side of link DVS; "
                "level-transition latency penalties are studied in\n"
                "Shang, Peh & Jha (the paper's reference [17]).\n");
    return 0;
}
