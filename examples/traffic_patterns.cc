/**
 * @file
 * Workload exploration example (the paper's second usage mode, Figure
 * 3b): run one fixed network under every built-in traffic pattern and
 * compare latency, throughput, total power, and the spatial power
 * spread — the hot-spotting the paper's Section 4.3 uses to argue for
 * workload-aware placement and routing.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/report.hh"
#include "core/simulation.hh"

int
main()
{
    using namespace orion;

    SimConfig sim;
    sim.samplePackets = 3000;
    sim.maxCycles = 300000;

    const NetworkConfig net_cfg = NetworkConfig::vc16();

    struct Workload
    {
        const char* name;
        TrafficConfig traffic;
    };
    std::vector<Workload> workloads;
    {
        TrafficConfig t;
        t.pattern = net::TrafficPattern::UniformRandom;
        t.injectionRate = 0.2 / 16.0;
        workloads.push_back({"uniform random", t});

        t = {};
        t.pattern = net::TrafficPattern::Broadcast;
        t.injectionRate = 0.2;
        t.broadcastSource = 1 + 2 * 4;
        workloads.push_back({"broadcast (1,2)", t});

        t = {};
        t.pattern = net::TrafficPattern::Transpose;
        t.injectionRate = 0.2 / 16.0;
        workloads.push_back({"transpose", t});

        t = {};
        t.pattern = net::TrafficPattern::BitComplement;
        t.injectionRate = 0.2 / 16.0;
        workloads.push_back({"bit-complement", t});

        t = {};
        t.pattern = net::TrafficPattern::Tornado;
        t.injectionRate = 0.2 / 16.0;
        workloads.push_back({"tornado", t});

        t = {};
        t.pattern = net::TrafficPattern::NearestNeighbor;
        t.injectionRate = 0.2 / 16.0;
        workloads.push_back({"nearest-neighbour", t});

        t = {};
        t.pattern = net::TrafficPattern::Hotspot;
        t.injectionRate = 0.2 / 16.0;
        t.hotspotNode = 5;
        t.hotspotFraction = 0.3;
        workloads.push_back({"hotspot 30% -> (1,1)", t});
    }

    std::printf("Traffic-pattern exploration on the paper's Section "
                "4.3 network (4x4 torus, VC 2x8)\n");
    std::printf("equal total network injection (0.2 packets/cycle) "
                "for every pattern\n\n");

    report::Table t;
    t.headers = {"pattern",   "avg latency", "flits/node/cyc",
                 "power (W)", "node power max/min"};
    for (auto& w : workloads) {
        Simulation s(net_cfg, w.traffic, sim);
        const Report r = s.run();
        double pmin = 1e30;
        double pmax = 0.0;
        for (const double p : r.nodePowerWatts) {
            pmin = std::min(pmin, p);
            pmax = std::max(pmax, p);
        }
        t.addRow({
            w.name,
            r.completed ? report::fmt(r.avgLatencyCycles, 1) : ">cap",
            report::fmt(r.acceptedFlitsPerNodePerCycle, 3),
            report::fmt(r.networkPowerWatts, 3),
            report::fmt(pmax / pmin, 2),
        });
    }
    std::printf("%s", report::formatTable(t).c_str());
    std::printf("\nThe max/min column is the paper's Figure 6 story "
                "in one number: uniform traffic keeps the power\n"
                "map flat, while broadcast and hotspot patterns "
                "concentrate several times the power in a few\n"
                "nodes — input for placement/routing decisions.\n");
    return 0;
}
