/**
 * @file
 * Tests for the flit FIFO: ordering, capacity, and the power events it
 * emits with monitored switching activity.
 */

#include <gtest/gtest.h>

#include <vector>

#include "router/fifo.hh"
#include "sim/event.hh"

namespace {

using namespace orion;
using namespace orion::router;
using orion::sim::Event;
using orion::sim::EventBus;
using orion::sim::EventType;

Flit
makeFlit(unsigned width, std::uint64_t payload, unsigned seq = 0)
{
    Flit f;
    f.packet = std::make_shared<PacketInfo>();
    f.seq = seq;
    f.payload = power::BitVec(width, payload);
    return f;
}

TEST(FlitFifo, FifoOrdering)
{
    EventBus bus;
    FlitFifo fifo(bus, 0, 0, 4, 64);
    fifo.write(makeFlit(64, 1, 0), 0);
    fifo.write(makeFlit(64, 2, 1), 0);
    fifo.write(makeFlit(64, 3, 2), 0);
    EXPECT_EQ(fifo.size(), 3u);
    EXPECT_EQ(fifo.read(1).seq, 0u);
    EXPECT_EQ(fifo.read(1).seq, 1u);
    EXPECT_EQ(fifo.read(1).seq, 2u);
    EXPECT_TRUE(fifo.empty());
}

TEST(FlitFifo, CapacityAccounting)
{
    EventBus bus;
    FlitFifo fifo(bus, 0, 0, 2, 32);
    EXPECT_EQ(fifo.freeSlots(), 2u);
    fifo.write(makeFlit(32, 0), 0);
    EXPECT_EQ(fifo.freeSlots(), 1u);
    fifo.write(makeFlit(32, 0), 0);
    EXPECT_TRUE(fifo.full());
    fifo.read(0);
    EXPECT_FALSE(fifo.full());
    EXPECT_EQ(fifo.freeSlots(), 1u);
}

TEST(FlitFifo, EmitsWriteAndReadEvents)
{
    EventBus bus;
    std::vector<Event> events;
    bus.subscribe(EventType::BufferWrite,
                  [&](const Event& e) { events.push_back(e); });
    bus.subscribe(EventType::BufferRead,
                  [&](const Event& e) { events.push_back(e); });

    FlitFifo fifo(bus, 3, 7, 4, 32);
    fifo.write(makeFlit(32, 0xff), 10);
    fifo.read(11);

    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, EventType::BufferWrite);
    EXPECT_EQ(events[0].node, 3);
    EXPECT_EQ(events[0].component, 7);
    EXPECT_EQ(events[0].cycle, 10u);
    EXPECT_EQ(events[1].type, EventType::BufferRead);
    EXPECT_EQ(events[1].cycle, 11u);
}

TEST(FlitFifo, WriteDeltasTrackBitlineDriverHistory)
{
    // First write into a zeroed array: delta_bw = popcount vs the
    // all-zero driver state; second write of the same datum: zero.
    EventBus bus;
    std::vector<Event> writes;
    bus.subscribe(EventType::BufferWrite,
                  [&](const Event& e) { writes.push_back(e); });

    FlitFifo fifo(bus, 0, 0, 4, 32);
    fifo.write(makeFlit(32, 0xff), 0);      // 8 bits vs zeroed driver
    fifo.write(makeFlit(32, 0xff), 1);      // same datum: 0 switching
    fifo.write(makeFlit(32, 0xff00), 2);    // 16 bitlines switch

    ASSERT_EQ(writes.size(), 3u);
    EXPECT_EQ(writes[0].deltaA, 8u);
    EXPECT_EQ(writes[1].deltaA, 0u);
    EXPECT_EQ(writes[2].deltaA, 16u);
}

TEST(FlitFifo, CellDeltasTrackStaleRowContents)
{
    EventBus bus;
    std::vector<Event> writes;
    bus.subscribe(EventType::BufferWrite,
                  [&](const Event& e) { writes.push_back(e); });

    // Capacity-1 FIFO: every write lands in the same row.
    FlitFifo fifo(bus, 0, 0, 1, 32);
    fifo.write(makeFlit(32, 0xff), 0); // row was zero: 8 cells flip
    fifo.read(0);
    fifo.write(makeFlit(32, 0xff), 1); // row holds 0xff: 0 cells flip
    fifo.read(1);
    fifo.write(makeFlit(32, 0x0f), 2); // 4 cells flip

    ASSERT_EQ(writes.size(), 3u);
    EXPECT_EQ(writes[0].deltaB, 8u);
    EXPECT_EQ(writes[1].deltaB, 0u);
    EXPECT_EQ(writes[2].deltaB, 4u);
}

TEST(FlitFifo, RowsReusedInRingOrder)
{
    EventBus bus;
    std::vector<Event> writes;
    bus.subscribe(EventType::BufferWrite,
                  [&](const Event& e) { writes.push_back(e); });

    FlitFifo fifo(bus, 0, 0, 2, 32);
    fifo.write(makeFlit(32, 0xf), 0); // row 0: 4 flips
    fifo.write(makeFlit(32, 0xf), 0); // row 1: 4 flips (driver: 0)
    fifo.read(0);
    fifo.read(0);
    fifo.write(makeFlit(32, 0xf), 1); // row 0 again: holds 0xf, 0 flips

    ASSERT_EQ(writes.size(), 3u);
    EXPECT_EQ(writes[0].deltaB, 4u);
    EXPECT_EQ(writes[1].deltaB, 4u);
    EXPECT_EQ(writes[2].deltaB, 0u);
}

} // namespace
