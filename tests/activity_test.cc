/**
 * @file
 * Unit tests for switching-activity primitives (BitVec, Hamming
 * distance, bitline/cell delta computation).
 */

#include <gtest/gtest.h>

#include "power/activity.hh"
#include "sim/rng.hh"

namespace {

using orion::power::BitVec;
using orion::power::flippedCells;
using orion::power::hammingDistance;
using orion::power::switchingWriteBitlines;

TEST(BitVec, ConstructsZeroed)
{
    const BitVec v(128);
    EXPECT_EQ(v.width(), 128u);
    EXPECT_EQ(v.wordCount(), 2u);
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, LowWordConstructor)
{
    const BitVec v(64, 0xff);
    EXPECT_EQ(v.popcount(), 8u);
    EXPECT_TRUE(v.bit(0));
    EXPECT_TRUE(v.bit(7));
    EXPECT_FALSE(v.bit(8));
}

TEST(BitVec, TopWordMaskedToWidth)
{
    BitVec v(4, 0xff);
    EXPECT_EQ(v.popcount(), 4u);
    v.setWord(0, ~0ull);
    EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, SetBitRoundTrips)
{
    BitVec v(100);
    v.setBit(99, true);
    v.setBit(0, true);
    EXPECT_TRUE(v.bit(99));
    EXPECT_TRUE(v.bit(0));
    EXPECT_EQ(v.popcount(), 2u);
    v.setBit(99, false);
    EXPECT_FALSE(v.bit(99));
    EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVec, EqualityComparesContent)
{
    BitVec a(64, 5);
    BitVec b(64, 5);
    EXPECT_EQ(a, b);
    b.setBit(3, true);
    EXPECT_NE(a, b);
}

TEST(Hamming, ZeroForIdentical)
{
    const BitVec a(256, 0xdeadbeef);
    EXPECT_EQ(hammingDistance(a, a), 0u);
}

TEST(Hamming, CountsDifferingBits)
{
    const BitVec a(64, 0b1010);
    const BitVec b(64, 0b0110);
    EXPECT_EQ(hammingDistance(a, b), 2u);
}

TEST(Hamming, FullWidthComplement)
{
    BitVec a(96);
    BitVec b(96);
    for (unsigned i = 0; i < 96; ++i)
        b.setBit(i, true);
    EXPECT_EQ(hammingDistance(a, b), 96u);
}

TEST(Hamming, IsSymmetric)
{
    orion::sim::Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        BitVec a(200);
        BitVec b(200);
        for (std::size_t w = 0; w < a.wordCount(); ++w) {
            a.setWord(w, rng.next());
            b.setWord(w, rng.next());
        }
        EXPECT_EQ(hammingDistance(a, b), hammingDistance(b, a));
    }
}

TEST(Hamming, TriangleInequality)
{
    orion::sim::Rng rng(13);
    for (int trial = 0; trial < 20; ++trial) {
        BitVec a(128);
        BitVec b(128);
        BitVec c(128);
        for (std::size_t w = 0; w < a.wordCount(); ++w) {
            a.setWord(w, rng.next());
            b.setWord(w, rng.next());
            c.setWord(w, rng.next());
        }
        EXPECT_LE(hammingDistance(a, c),
                  hammingDistance(a, b) + hammingDistance(b, c));
    }
}

TEST(Deltas, WriteBitlinesVsLastWrittenDatum)
{
    const BitVec last(32, 0x0f);
    const BitVec next(32, 0xf0);
    EXPECT_EQ(switchingWriteBitlines(next, last), 8u);
}

TEST(Deltas, FlippedCellsVsOldRow)
{
    const BitVec old_row(32, 0xffffffff);
    const BitVec next(32, 0xffff0000);
    EXPECT_EQ(flippedCells(next, old_row), 16u);
}

TEST(BitVec, WideVectorsUseHeapPathCorrectly)
{
    // Widths beyond the 256-bit inline capacity exercise the heap
    // storage path: all operations must behave identically.
    orion::sim::Rng rng(21);
    BitVec a(512);
    BitVec b(512);
    for (std::size_t w = 0; w < a.wordCount(); ++w) {
        a.setWord(w, rng.next());
        b.setWord(w, rng.next());
    }
    EXPECT_EQ(a.wordCount(), 8u);
    EXPECT_GT(hammingDistance(a, b), 0u);
    EXPECT_EQ(hammingDistance(a, a), 0u);

    // Copy and move semantics across the storage boundary.
    BitVec copy = a;
    EXPECT_EQ(copy, a);
    copy.setBit(500, !copy.bit(500));
    EXPECT_NE(copy, a);
    EXPECT_EQ(hammingDistance(copy, a), 1u);

    BitVec moved = std::move(copy);
    EXPECT_EQ(hammingDistance(moved, a), 1u);

    // Assign wide into narrow and narrow into wide.
    BitVec narrow(64, 0xff);
    narrow = a;
    EXPECT_EQ(narrow, a);
    BitVec wide(512);
    wide = BitVec(32, 0x7);
    EXPECT_EQ(wide.width(), 32u);
    EXPECT_EQ(wide.popcount(), 3u);
}

TEST(BitVec, SelfAssignmentIsSafe)
{
    BitVec v(100);
    v.setBit(42, true);
    v = *&v;
    EXPECT_TRUE(v.bit(42));
    EXPECT_EQ(v.popcount(), 1u);
}

TEST(Deltas, RandomDataAveragesHalfWidth)
{
    // Statistical property: random-vs-random Hamming distance averages
    // W/2 (this is what makes avg-activity estimates use F/2).
    orion::sim::Rng rng(99);
    const unsigned width = 256;
    double total = 0.0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        BitVec a(width);
        BitVec b(width);
        for (std::size_t w = 0; w < a.wordCount(); ++w) {
            a.setWord(w, rng.next());
            b.setWord(w, rng.next());
        }
        total += hammingDistance(a, b);
    }
    EXPECT_NEAR(total / trials, width / 2.0, 3.0);
}

} // namespace
