/**
 * @file
 * Sweep checkpoint/resume, cooperative cancellation, and retry-policy
 * tests (docs/ROBUSTNESS.md, "Survivable runs").
 *
 * The load-bearing property throughout: a sweep interrupted at ANY
 * point and resumed from its journal produces byte-identical results
 * to an uninterrupted run, at any --jobs. Everything else (exact
 * hexfloat round-trips, per-line checksums, fingerprint binding,
 * torn-tail tolerance) exists to make that property safe.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cancel.hh"
#include "core/checkpoint.hh"
#include "core/config.hh"
#include "core/sweep.hh"

namespace {

using namespace orion;

std::string
tmpPath(const std::string& name)
{
    return testing::TempDir() + "orion_checkpoint_" + name;
}

std::string
readAll(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::string s((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    return s;
}

void
writeAll(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

// --- exact double round-trip ------------------------------------------

TEST(ExactDouble, RoundTripsBitPatterns)
{
    const double values[] = {0.0,
                             -0.0,
                             1.0,
                             1.0 / 3.0,
                             0.1,
                             -12345.678901234567,
                             1e-300,
                             5e-324, // smallest denormal
                             1.7976931348623157e308,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity()};
    for (double v : values) {
        const double back =
            core::parseExactDouble(core::exactDouble(v));
        EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0)
            << core::exactDouble(v);
    }
    // Negative zero keeps its sign bit.
    EXPECT_TRUE(
        std::signbit(core::parseExactDouble(core::exactDouble(-0.0))));
}

TEST(ExactDouble, RejectsMalformedRenderings)
{
    EXPECT_THROW(core::parseExactDouble(""), core::CheckpointError);
    EXPECT_THROW(core::parseExactDouble("xyz"),
                 core::CheckpointError);
    EXPECT_THROW(core::parseExactDouble("0x1.8p1junk"),
                 core::CheckpointError);
}

// --- entry wire format ------------------------------------------------

core::CheckpointEntry
sampleEntry()
{
    core::CheckpointEntry e;
    e.rateIndex = 7;
    e.seedIndex = 3;
    e.attempts = 2;
    e.report.avgLatencyCycles = 18.190000000000001;
    e.report.p50LatencyCycles = 18.0;
    e.report.p95LatencyCycles = 27.0;
    e.report.p99LatencyCycles = 32.5;
    e.report.maxLatencyCycles = 64.0;
    e.report.sampleInjected = 200;
    e.report.sampleEjected = 200;
    e.report.offeredLoad = 0.05;
    e.report.acceptedFlitsPerNodePerCycle = 0.2586;
    e.report.totalCycles = 60000;
    e.report.measuredCycles = 41234;
    e.report.stopReason = StopReason::Completed;
    e.report.completed = true;
    e.report.moduleCount = 321;
    e.report.flitsCorrupted = 5;
    e.report.packetsRetransmitted = 4;
    e.report.faultLogHash = 0xdeadbeefcafef00dULL;
    e.report.networkPowerWatts = 2.1557;
    e.report.dynamicEnergyJoules = 1.25e-6;
    e.report.energyPerFlitJoules = 3.5e-12;
    e.report.breakdownWatts = {0.0998, 1.1604, 0.00453, 0.8909,
                               0.0};
    e.report.nodePowerWatts = {0.25, 0.5, -0.0, 1.0 / 3.0};
    e.report.eventCounts.fill(11);
    e.report.eventCounts[2] = 99999;
    return e;
}

void
expectReportsEqual(const Report& a, const Report& b)
{
    EXPECT_EQ(a.avgLatencyCycles, b.avgLatencyCycles);
    EXPECT_EQ(a.p50LatencyCycles, b.p50LatencyCycles);
    EXPECT_EQ(a.p95LatencyCycles, b.p95LatencyCycles);
    EXPECT_EQ(a.p99LatencyCycles, b.p99LatencyCycles);
    EXPECT_EQ(a.maxLatencyCycles, b.maxLatencyCycles);
    EXPECT_EQ(a.sampleInjected, b.sampleInjected);
    EXPECT_EQ(a.sampleEjected, b.sampleEjected);
    EXPECT_EQ(a.offeredLoad, b.offeredLoad);
    EXPECT_EQ(a.acceptedFlitsPerNodePerCycle,
              b.acceptedFlitsPerNodePerCycle);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.measuredCycles, b.measuredCycles);
    EXPECT_EQ(a.stopReason, b.stopReason);
    EXPECT_EQ(a.checkFailureDiagnostic, b.checkFailureDiagnostic);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.deadlockSuspected, b.deadlockSuspected);
    EXPECT_EQ(a.moduleCount, b.moduleCount);
    EXPECT_EQ(a.flitsCorrupted, b.flitsCorrupted);
    EXPECT_EQ(a.packetsRetransmitted, b.packetsRetransmitted);
    EXPECT_EQ(a.faultLogHash, b.faultLogHash);
    EXPECT_EQ(a.networkPowerWatts, b.networkPowerWatts);
    EXPECT_EQ(a.dynamicEnergyJoules, b.dynamicEnergyJoules);
    EXPECT_EQ(a.energyPerFlitJoules, b.energyPerFlitJoules);
    EXPECT_EQ(a.breakdownWatts.buffer, b.breakdownWatts.buffer);
    EXPECT_EQ(a.breakdownWatts.crossbar, b.breakdownWatts.crossbar);
    EXPECT_EQ(a.breakdownWatts.arbiter, b.breakdownWatts.arbiter);
    EXPECT_EQ(a.breakdownWatts.link, b.breakdownWatts.link);
    EXPECT_EQ(a.breakdownWatts.centralBuffer,
              b.breakdownWatts.centralBuffer);
    ASSERT_EQ(a.nodePowerWatts.size(), b.nodePowerWatts.size());
    for (std::size_t i = 0; i < a.nodePowerWatts.size(); ++i) {
        EXPECT_EQ(std::memcmp(&a.nodePowerWatts[i],
                              &b.nodePowerWatts[i], sizeof(double)),
                  0);
    }
    EXPECT_EQ(a.eventCounts, b.eventCounts);
}

TEST(CheckpointEntry, RoundTripsEveryField)
{
    const core::CheckpointEntry e = sampleEntry();
    const core::CheckpointEntry back =
        core::parseEntry(core::serializeEntry(e));
    EXPECT_EQ(back.rateIndex, e.rateIndex);
    EXPECT_EQ(back.seedIndex, e.seedIndex);
    EXPECT_EQ(back.attempts, e.attempts);
    EXPECT_EQ(back.failed, false);
    expectReportsEqual(back.report, e.report);
}

TEST(CheckpointEntry, RoundTripsFailureWithHostileStrings)
{
    core::CheckpointEntry e = sampleEntry();
    e.failed = true;
    e.failureReason = StopReason::WorkerCrash;
    // Every byte the wire format treats specially, plus a few more.
    e.failureMessage = "pipe | eq = pct % nl \n cr \r end";
    e.failureForensics = "{\"reason\":\"x|y=z\",\n\"cycle\":9}";
    e.workerExit = "signal 11";
    const core::CheckpointEntry back =
        core::parseEntry(core::serializeEntry(e));
    EXPECT_TRUE(back.failed);
    EXPECT_EQ(back.failureReason, StopReason::WorkerCrash);
    EXPECT_EQ(back.failureMessage, e.failureMessage);
    EXPECT_EQ(back.failureForensics, e.failureForensics);
    EXPECT_EQ(back.workerExit, e.workerExit);
}

TEST(CheckpointEntry, ChecksumCatchesEveryOneByteCorruption)
{
    const std::string line = core::serializeEntry(sampleEntry());
    // Flipping any single byte must never parse back cleanly:
    // either the checksum catches it or the field parser does.
    for (std::size_t i = 0; i < line.size(); i += 7) {
        std::string bad = line;
        bad[i] = static_cast<char>(bad[i] ^ 0x11);
        EXPECT_THROW(core::parseEntry(bad), core::CheckpointError)
            << "byte " << i;
    }
}

TEST(CheckpointEntry, RejectsTruncationsAndUnknownKeys)
{
    const std::string line = core::serializeEntry(sampleEntry());
    EXPECT_THROW(core::parseEntry(line.substr(0, line.size() / 2)),
                 core::CheckpointError);
    EXPECT_THROW(core::parseEntry(""), core::CheckpointError);
    EXPECT_THROW(core::parseEntry("P|zz=1|c=0000000000000000"),
                 core::CheckpointError);
}

// --- fingerprint binding ----------------------------------------------

TEST(SweepFingerprint, BindsResultDeterminingConfig)
{
    const NetworkConfig net = NetworkConfig::vc16();
    const TrafficConfig traffic;
    SimConfig sim;
    const std::vector<double> rates = {0.02, 0.04, 0.06};
    const std::uint64_t base =
        core::sweepFingerprint(net, traffic, sim, rates, 2);

    // Stable across calls.
    EXPECT_EQ(core::sweepFingerprint(net, traffic, sim, rates, 2),
              base);

    // Sensitive to everything that changes results...
    SimConfig seeded = sim;
    seeded.seed = 99;
    EXPECT_NE(core::sweepFingerprint(net, traffic, seeded, rates, 2),
              base);
    EXPECT_NE(core::sweepFingerprint(net, traffic, sim,
                                     {0.02, 0.04, 0.07}, 2),
              base);
    EXPECT_NE(core::sweepFingerprint(net, traffic, sim, rates, 3),
              base);
    EXPECT_NE(core::sweepFingerprint(NetworkConfig::vc64(), traffic,
                                     sim, rates, 2),
              base);

    // ...but not to telemetry, which never changes report bytes.
    SimConfig telem = sim;
    telem.telemetry.sampleInterval = 500;
    telem.telemetry.traceEnabled = true;
    EXPECT_EQ(core::sweepFingerprint(net, traffic, telem, rates, 2),
              base);
}

// --- journal file round trip ------------------------------------------

TEST(CheckpointJournal, WritesHeaderAndLoadableEntries)
{
    const std::string path = tmpPath("roundtrip.journal");
    const std::uint64_t fp = 0x1234abcd5678ef01ULL;
    {
        core::CheckpointJournal j(path, fp, /*resume=*/false);
        core::CheckpointEntry e = sampleEntry();
        for (unsigned i = 0; i < 3; ++i) {
            e.rateIndex = i;
            j.append(e);
        }
    }
    const core::CheckpointLoad load = core::loadCheckpoint(path, fp);
    EXPECT_EQ(load.fingerprint, fp);
    EXPECT_FALSE(load.truncatedTail);
    ASSERT_EQ(load.entries.size(), 3u);
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_EQ(load.entries[i].rateIndex, i);
    std::remove(path.c_str());
}

TEST(CheckpointJournal, ResumeModeAppendsAfterExistingEntries)
{
    const std::string path = tmpPath("append.journal");
    const std::uint64_t fp = 42;
    {
        core::CheckpointJournal j(path, fp, false);
        core::CheckpointEntry e = sampleEntry();
        e.rateIndex = 0;
        j.append(e);
    }
    {
        core::CheckpointJournal j(path, fp, /*resume=*/true);
        core::CheckpointEntry e = sampleEntry();
        e.rateIndex = 1;
        j.append(e);
    }
    const core::CheckpointLoad load = core::loadCheckpoint(path, fp);
    ASSERT_EQ(load.entries.size(), 2u);
    EXPECT_EQ(load.entries[0].rateIndex, 0u);
    EXPECT_EQ(load.entries[1].rateIndex, 1u);
    std::remove(path.c_str());
}

TEST(CheckpointJournal, TornFinalLineIsToleratedAndDropped)
{
    const std::string path = tmpPath("torn.journal");
    const std::uint64_t fp = 7;
    {
        core::CheckpointJournal j(path, fp, false);
        core::CheckpointEntry e = sampleEntry();
        e.rateIndex = 0;
        j.append(e);
        e.rateIndex = 1;
        j.append(e);
    }
    // Simulate the torn write of a SIGKILL: half an entry, no newline.
    std::string content = readAll(path);
    core::CheckpointEntry e = sampleEntry();
    e.rateIndex = 2;
    const std::string full = core::serializeEntry(e);
    writeAll(path, content + full.substr(0, full.size() / 2));

    const core::CheckpointLoad load = core::loadCheckpoint(path, fp);
    EXPECT_TRUE(load.truncatedTail);
    ASSERT_EQ(load.entries.size(), 2u);
    EXPECT_EQ(load.entries[1].rateIndex, 1u);
    std::remove(path.c_str());
}

TEST(CheckpointJournal, MidFileCorruptionIsAStructuredError)
{
    const std::string path = tmpPath("corrupt.journal");
    const std::uint64_t fp = 7;
    {
        core::CheckpointJournal j(path, fp, false);
        core::CheckpointEntry e = sampleEntry();
        for (unsigned i = 0; i < 4; ++i) {
            e.rateIndex = i;
            j.append(e);
        }
    }
    std::string content = readAll(path);
    // Flip one byte in the SECOND entry line (not the last): that is
    // not a crash artifact, it is corruption, and resuming would be
    // unsafe.
    std::size_t line_start = content.find('\n') + 1; // after header
    line_start = content.find('\n', line_start) + 1; // after entry 0
    content[line_start + 10] =
        static_cast<char>(content[line_start + 10] ^ 0x40);
    writeAll(path, content);
    try {
        core::loadCheckpoint(path, fp);
        FAIL() << "corrupt mid-file line must not load";
    } catch (const core::CheckpointError& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(CheckpointJournal, FingerprintMismatchRefusesToResume)
{
    const std::string path = tmpPath("mismatch.journal");
    {
        core::CheckpointJournal j(path, 1, false);
    }
    try {
        core::loadCheckpoint(path, 2);
        FAIL() << "fingerprint mismatch must not load";
    } catch (const core::CheckpointError& e) {
        EXPECT_NE(std::string(e.what()).find("different configuration"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW(core::loadCheckpoint(tmpPath("nonexistent.journal"),
                                      1),
                 core::CheckpointError);
    std::remove(path.c_str());
}

// --- resume == fresh, bit-identically ---------------------------------

class ResumeFixture : public ::testing::Test
{
  protected:
    NetworkConfig net = NetworkConfig::vc16();
    TrafficConfig traffic;
    SimConfig sim;
    std::vector<double> rates = {0.02, 0.04, 0.06};

    void
    SetUp() override
    {
        sim.samplePackets = 200;
        sim.maxCycles = 60000;
    }
};

TEST_F(ResumeFixture, PrefixResumeMergesBitIdenticallyAtAnyJobs)
{
    const auto fresh = Sweep::overRates(net, traffic, sim, rates,
                                        SweepOptions::withJobs(1));

    // Journal a full run, then resume from every possible prefix —
    // the "killed after cell k" cases — at a different job count.
    const std::string path = tmpPath("resume_prefix.journal");
    const std::uint64_t fp =
        core::sweepFingerprint(net, traffic, sim, rates, 1);
    {
        core::CheckpointJournal j(path, fp, false);
        SweepOptions o = SweepOptions::withJobs(2);
        o.journal = &j;
        Sweep::overRates(net, traffic, sim, rates, o);
    }
    const core::CheckpointLoad full = core::loadCheckpoint(path, fp);
    ASSERT_EQ(full.entries.size(), rates.size());

    for (std::size_t keep = 0; keep <= full.entries.size(); ++keep) {
        SCOPED_TRACE("prefix " + std::to_string(keep));
        std::vector<core::CheckpointEntry> prefix(
            full.entries.begin(),
            full.entries.begin() + static_cast<long>(keep));
        SweepOptions o = SweepOptions::withJobs(4);
        o.resume = &prefix;
        const auto resumed =
            Sweep::overRates(net, traffic, sim, rates, o);
        ASSERT_EQ(resumed.size(), fresh.size());
        for (std::size_t i = 0; i < fresh.size(); ++i) {
            SCOPED_TRACE("point " + std::to_string(i));
            expectReportsEqual(resumed[i].report, fresh[i].report);
            EXPECT_FALSE(resumed[i].failure.has_value());
            // Entries found in the journal are marked as cached.
            bool cached = false;
            for (const auto& e : prefix)
                cached = cached || e.rateIndex == i;
            EXPECT_EQ(resumed[i].fromCheckpoint, cached);
        }
    }
    std::remove(path.c_str());
}

TEST_F(ResumeFixture, AveragedResumeMergesBitIdentically)
{
    const unsigned seeds = 2;
    const auto fresh = Sweep::overRatesAveraged(
        net, traffic, sim, rates, seeds, SweepOptions::withJobs(1));

    const std::string path = tmpPath("resume_avg.journal");
    const std::uint64_t fp =
        core::sweepFingerprint(net, traffic, sim, rates, seeds);
    {
        core::CheckpointJournal j(path, fp, false);
        SweepOptions o = SweepOptions::withJobs(3);
        o.journal = &j;
        Sweep::overRatesAveraged(net, traffic, sim, rates, seeds, o);
    }
    const core::CheckpointLoad full = core::loadCheckpoint(path, fp);
    ASSERT_EQ(full.entries.size(), rates.size() * seeds);

    // Resume from a half-journal: every mean must come out with the
    // identical bits (the merge re-accumulates in seed order, partly
    // from cache, partly from fresh runs).
    std::vector<core::CheckpointEntry> half(
        full.entries.begin(),
        full.entries.begin() +
            static_cast<long>(full.entries.size() / 2));
    SweepOptions o = SweepOptions::withJobs(2);
    o.resume = &half;
    const auto resumed = Sweep::overRatesAveraged(net, traffic, sim,
                                                  rates, seeds, o);
    ASSERT_EQ(resumed.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        SCOPED_TRACE("rate " + std::to_string(i));
        EXPECT_EQ(resumed[i].meanLatency, fresh[i].meanLatency);
        EXPECT_EQ(resumed[i].minLatency, fresh[i].minLatency);
        EXPECT_EQ(resumed[i].maxLatency, fresh[i].maxLatency);
        EXPECT_EQ(resumed[i].meanPowerWatts, fresh[i].meanPowerWatts);
        EXPECT_EQ(resumed[i].meanThroughput, fresh[i].meanThroughput);
        EXPECT_EQ(resumed[i].allCompleted, fresh[i].allCompleted);
        EXPECT_EQ(resumed[i].failedSeeds, fresh[i].failedSeeds);
        EXPECT_EQ(resumed[i].ranSeeds, seeds);
    }
    std::remove(path.c_str());
}

TEST_F(ResumeFixture, FailedCellsAreJournaledAndResumed)
{
    // A deterministic check failure (the poison drill) is a
    // deterministic outcome: journaled, and resumed as the same
    // structured failure without rerunning.
    sim.debugPoisonRate = 0.04;
    const std::string path = tmpPath("resume_failed.journal");
    const std::uint64_t fp =
        core::sweepFingerprint(net, traffic, sim, rates, 1);
    {
        core::CheckpointJournal j(path, fp, false);
        SweepOptions o = SweepOptions::withJobs(1);
        o.journal = &j;
        const auto pts = Sweep::overRates(net, traffic, sim, rates, o);
        ASSERT_TRUE(pts[1].failure.has_value());
        EXPECT_EQ(pts[1].attempts, 2u);
    }
    const core::CheckpointLoad load = core::loadCheckpoint(path, fp);
    ASSERT_EQ(load.entries.size(), rates.size());
    const core::CheckpointEntry& failed = load.entries[1];
    EXPECT_TRUE(failed.failed);
    EXPECT_EQ(failed.attempts, 2u);
    EXPECT_EQ(failed.failureReason, StopReason::CheckFailure);
    EXPECT_NE(failed.failureForensics.find("\"reason\""),
              std::string::npos);

    SweepOptions o = SweepOptions::withJobs(1);
    o.resume = &load.entries;
    const auto resumed = Sweep::overRates(net, traffic, sim, rates, o);
    ASSERT_TRUE(resumed[1].failure.has_value());
    EXPECT_TRUE(resumed[1].fromCheckpoint);
    EXPECT_EQ(resumed[1].failure->message, failed.failureMessage);
}

// --- deadlines and cancellation ---------------------------------------

TEST(CancelToken, FirstCauseWinsAndParentChains)
{
    core::CancelToken parent;
    core::CancelToken child(&parent);
    EXPECT_FALSE(child.cancelled());
    EXPECT_EQ(child.cause(), core::CancelCause::None);

    parent.cancel(core::CancelCause::Interrupt);
    EXPECT_TRUE(child.cancelled());
    EXPECT_EQ(child.cause(), core::CancelCause::Interrupt);

    // The child's own (later) cause does not override the sticky
    // first cause seen through the chain... but its own slot wins
    // when set first.
    core::CancelToken own;
    own.cancel(core::CancelCause::Deadline);
    own.cancel(core::CancelCause::Interrupt);
    EXPECT_EQ(own.cause(), core::CancelCause::Deadline);
}

TEST(CancelToken, ArmedDeadlinePromotesViaPoll)
{
    core::CancelToken t;
    t.armDeadline(-1.0); // no-op
    t.poll();
    EXPECT_FALSE(t.cancelled());

    t.armDeadline(1e-9);
    t.poll();
    EXPECT_TRUE(t.cancelled());
    EXPECT_EQ(t.cause(), core::CancelCause::Deadline);
}

TEST_F(ResumeFixture, DeadlineStopsPointAndIsNeverJournaled)
{
    // A deadline that expires at the first poll: the point stops
    // cooperatively, reports StopReason::Deadline with forensics, is
    // not retried, and is NOT journaled (a wall-clock outcome must
    // rerun on resume).
    sim.maxCycles = 50'000'000; // would run a long time
    const std::vector<double> one_rate = {0.05};
    const std::string path = tmpPath("deadline.journal");
    const std::uint64_t fp =
        core::sweepFingerprint(net, traffic, sim, one_rate, 1);
    {
        core::CheckpointJournal j(path, fp, false);
        SweepOptions o = SweepOptions::withJobs(1);
        o.journal = &j;
        o.pointTimeoutSeconds = 1e-9;
        const auto pts =
            Sweep::overRates(net, traffic, sim, one_rate, o);
        ASSERT_EQ(pts.size(), 1u);
        ASSERT_TRUE(pts[0].failure.has_value());
        EXPECT_EQ(pts[0].failure->reason, StopReason::Deadline);
        EXPECT_EQ(pts[0].report.stopReason, StopReason::Deadline);
        EXPECT_EQ(pts[0].attempts, 1u); // deadlines are not retried
        EXPECT_NE(pts[0].failure->forensicsJson.find("\"reason\""),
                  std::string::npos);
    }
    const core::CheckpointLoad load = core::loadCheckpoint(path, fp);
    EXPECT_TRUE(load.entries.empty());
    std::remove(path.c_str());
}

TEST_F(ResumeFixture, CancelledSweepLeavesUndispensedCellsUnran)
{
    core::CancelToken cancel;
    cancel.cancel(core::CancelCause::Interrupt);
    SweepOptions o = SweepOptions::withJobs(1);
    o.cancel = &cancel;
    const auto pts = Sweep::overRates(net, traffic, sim, rates, o);
    ASSERT_EQ(pts.size(), rates.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_FALSE(pts[i].ran);
        EXPECT_EQ(pts[i].injectionRate, rates[i]);
    }
}

// --- retry policy -----------------------------------------------------

TEST_F(ResumeFixture, RetryPolicyBoundsAttempts)
{
    sim.debugPoisonRate = 0.04;
    sim.debugPoisonTransient = true; // clean on any retry

    // maxAttempts = 1: retry disabled, the transient failure sticks.
    SweepOptions one = SweepOptions::withJobs(1);
    one.retry.maxAttempts = 1;
    const auto no_retry =
        Sweep::overRates(net, traffic, sim, {0.04}, one);
    ASSERT_TRUE(no_retry[0].failure.has_value());
    EXPECT_EQ(no_retry[0].attempts, 1u);

    // Default policy: recovered on the second attempt.
    const auto with_retry = Sweep::overRates(net, traffic, sim,
                                             {0.04},
                                             SweepOptions::withJobs(1));
    EXPECT_FALSE(with_retry[0].failure.has_value());
    EXPECT_EQ(with_retry[0].attempts, 2u);
}

TEST_F(ResumeFixture, AveragedSweepRecordsAttemptsPerSeed)
{
    sim.debugPoisonRate = 0.04;
    sim.debugPoisonTransient = true;
    const auto pts = Sweep::overRatesAveraged(
        net, traffic, sim, {0.02, 0.04}, 2,
        SweepOptions::withJobs(2));
    ASSERT_EQ(pts.size(), 2u);
    ASSERT_EQ(pts[0].attemptsBySeed.size(), 2u);
    EXPECT_EQ(pts[0].attemptsBySeed[0], 1u);
    EXPECT_EQ(pts[0].attemptsBySeed[1], 1u);
    // Every seed of the poisoned rate spent its retry and recovered.
    EXPECT_EQ(pts[1].attemptsBySeed[0], 2u);
    EXPECT_EQ(pts[1].attemptsBySeed[1], 2u);
    EXPECT_EQ(pts[1].failedSeeds, 0u);
    EXPECT_TRUE(pts[1].allCompleted);
    EXPECT_EQ(pts[1].ranSeeds, 2u);
}

} // namespace
