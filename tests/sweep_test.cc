/**
 * @file
 * Tests for injection-rate sweeps and the paper's saturation
 * definition (latency > 2 x zero-load latency).
 */

#include <gtest/gtest.h>

#include "core/sweep.hh"

namespace {

using namespace orion;

TEST(Sweep, LinspaceEndpoints)
{
    const auto v = Sweep::linspace(0.02, 0.10, 5);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v.front(), 0.02);
    EXPECT_DOUBLE_EQ(v.back(), 0.10);
    EXPECT_NEAR(v[2], 0.06, 1e-12);
}

TEST(Sweep, OverRatesRunsEachPoint)
{
    SimConfig s;
    s.samplePackets = 300;
    s.maxCycles = 60000;
    TrafficConfig t;
    const auto points = Sweep::overRates(NetworkConfig::vc16(), t, s,
                                         {0.02, 0.06});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].injectionRate, 0.02);
    EXPECT_DOUBLE_EQ(points[1].injectionRate, 0.06);
    EXPECT_TRUE(points[0].report.completed);
    EXPECT_TRUE(points[1].report.completed);
    EXPECT_LT(points[0].report.avgLatencyCycles,
              points[1].report.avgLatencyCycles);
    EXPECT_LT(points[0].report.networkPowerWatts,
              points[1].report.networkPowerWatts);
}

TEST(Sweep, ZeroLoadLatencyIsSane)
{
    SimConfig s;
    s.maxCycles = 300000;
    TrafficConfig t;
    const double zl =
        Sweep::zeroLoadLatency(NetworkConfig::vc16(), t, s);
    EXPECT_GT(zl, 10.0);
    EXPECT_LT(zl, 30.0);
}

TEST(Sweep, SaturationDetection)
{
    // Synthetic points: latency doubles past 0.14.
    std::vector<SweepPoint> pts(4);
    pts[0].injectionRate = 0.05;
    pts[0].report.completed = true;
    pts[0].report.avgLatencyCycles = 20.0;
    pts[1].injectionRate = 0.10;
    pts[1].report.completed = true;
    pts[1].report.avgLatencyCycles = 25.0;
    pts[2].injectionRate = 0.14;
    pts[2].report.completed = true;
    pts[2].report.avgLatencyCycles = 45.0;
    pts[3].injectionRate = 0.18;
    pts[3].report.completed = false;
    pts[3].report.avgLatencyCycles = 300.0;

    EXPECT_DOUBLE_EQ(Sweep::saturationRate(pts, 20.0), 0.14);
    // With a higher zero-load baseline only the incomplete point
    // saturates.
    EXPECT_DOUBLE_EQ(Sweep::saturationRate(pts, 23.0), 0.18);
}

TEST(Sweep, AveragedSweepAggregatesSeeds)
{
    SimConfig s;
    s.samplePackets = 400;
    s.maxCycles = 60000;
    s.seed = 10;
    TrafficConfig t;
    const auto pts = Sweep::overRatesAveraged(NetworkConfig::vc16(), t,
                                              s, {0.05}, 3);
    ASSERT_EQ(pts.size(), 1u);
    const auto& p = pts[0];
    EXPECT_EQ(p.seeds, 3u);
    EXPECT_TRUE(p.allCompleted);
    EXPECT_GT(p.meanLatency, 15.0);
    // Mean lies within the observed spread, spread is nonzero but
    // small below saturation.
    EXPECT_GE(p.meanLatency, p.minLatency);
    EXPECT_LE(p.meanLatency, p.maxLatency);
    EXPECT_GT(p.maxLatency, p.minLatency);
    EXPECT_LT(p.maxLatency - p.minLatency, 0.2 * p.meanLatency);
    EXPECT_GT(p.meanPowerWatts, 0.0);
    EXPECT_NEAR(p.meanThroughput, 0.25, 0.05);
}

TEST(Sweep, AveragedSingleSeedMatchesPlainRun)
{
    SimConfig s;
    s.samplePackets = 400;
    s.maxCycles = 60000;
    s.seed = 5;
    TrafficConfig t;
    const auto avg = Sweep::overRatesAveraged(NetworkConfig::vc16(), t,
                                              s, {0.06}, 1);
    const auto plain =
        Sweep::overRates(NetworkConfig::vc16(), t, s, {0.06});
    ASSERT_EQ(avg.size(), 1u);
    EXPECT_DOUBLE_EQ(avg[0].meanLatency,
                     plain[0].report.avgLatencyCycles);
    EXPECT_DOUBLE_EQ(avg[0].minLatency, avg[0].maxLatency);
}

TEST(Sweep, NoSaturationReturnsNegative)
{
    std::vector<SweepPoint> pts(1);
    pts[0].injectionRate = 0.05;
    pts[0].report.completed = true;
    pts[0].report.avgLatencyCycles = 21.0;
    EXPECT_LT(Sweep::saturationRate(pts, 20.0), 0.0);
}

} // namespace
