/**
 * @file
 * Tests for the hierarchical central buffer model (paper Section 3.2):
 * composition out of the FIFO, flip-flop, and crossbar sub-models, and
 * the paper's Section 4.4 configuration.
 */

#include <gtest/gtest.h>

#include "power/central_buffer_model.hh"

namespace {

using namespace orion;
using namespace orion::power;
using namespace orion::tech;

const TechNode kTech = TechNode::chipToChip100nm();

/** The paper's CB configuration: 4 banks, 2560 rows, 2R/2W, 5 ports. */
CentralBufferParams
paperConfig()
{
    return CentralBufferParams{4, 2560, 32, 2, 2, 5, 2};
}

TEST(CentralBufferModel, ReusesBankBufferModel)
{
    const CentralBufferModel m(kTech, paperConfig());
    const BufferModel bank(kTech, BufferParams{2560, 32, 2, 2});
    EXPECT_DOUBLE_EQ(m.bankModel().readEnergy(), bank.readEnergy());
    EXPECT_DOUBLE_EQ(m.bankModel().areaUm2(), bank.areaUm2());
}

TEST(CentralBufferModel, CrossbarsMatchPortCounts)
{
    const CentralBufferModel m(kTech, paperConfig());
    EXPECT_EQ(m.writeCrossbar().params().inputs, 5u);
    EXPECT_EQ(m.writeCrossbar().params().outputs, 2u);
    EXPECT_EQ(m.readCrossbar().params().inputs, 2u);
    EXPECT_EQ(m.readCrossbar().params().outputs, 5u);
}

TEST(CentralBufferModel, WriteEnergyComposes)
{
    const CentralBufferModel m(kTech, paperConfig());
    const FlipFlopModel ff(kTech);
    const unsigned bits = 16;
    const double expect =
        m.writeCrossbar().traversalEnergy(bits) +
        2.0 * bits * ff.flipEnergy() +
        m.bankModel().writeEnergy(bits, 8);
    EXPECT_DOUBLE_EQ(m.writeEnergy(bits, bits, 8), expect);
}

TEST(CentralBufferModel, ReadEnergyComposes)
{
    const CentralBufferModel m(kTech, paperConfig());
    const FlipFlopModel ff(kTech);
    const unsigned bits = 16;
    const double expect = m.bankModel().readEnergy() +
                          2.0 * bits * ff.flipEnergy() +
                          m.readCrossbar().traversalEnergy(bits);
    EXPECT_DOUBLE_EQ(m.readEnergy(bits), expect);
}

TEST(CentralBufferModel, AreaSumsBanksAndCrossbars)
{
    const CentralBufferModel m(kTech, paperConfig());
    const double expect = 4.0 * m.bankModel().areaUm2() +
                          m.writeCrossbar().areaUm2() +
                          m.readCrossbar().areaUm2();
    EXPECT_DOUBLE_EQ(m.areaUm2(), expect);
}

TEST(CentralBufferModel, DeepBanksCostMoreThanSmallInputBuffers)
{
    // The paper's Figure 7 insight: central-buffer accesses swing much
    // more capacitance than small input-FIFO accesses, so CB routers
    // burn more power despite similar area.
    const CentralBufferModel cb(kTech, paperConfig());
    const BufferModel input_fifo(kTech, BufferParams{64, 32, 1, 1});
    EXPECT_GT(cb.avgReadEnergy(), 3.0 * input_fifo.readEnergy());
    EXPECT_GT(cb.avgWriteEnergy(), 3.0 * input_fifo.avgWriteEnergy());
}

TEST(CentralBufferModel, EnergyGrowsWithRows)
{
    const CentralBufferParams small{4, 256, 32, 2, 2, 5, 2};
    const CentralBufferParams big{4, 2560, 32, 2, 2, 5, 2};
    const CentralBufferModel ms(kTech, small);
    const CentralBufferModel mb(kTech, big);
    EXPECT_GT(mb.avgReadEnergy(), ms.avgReadEnergy());
    EXPECT_GT(mb.areaUm2(), ms.areaUm2());
}

TEST(CentralBufferModel, PipelineStagesAddRegisterEnergy)
{
    CentralBufferParams two = paperConfig();
    CentralBufferParams four = paperConfig();
    four.pipelineStages = 4;
    const CentralBufferModel m2(kTech, two);
    const CentralBufferModel m4(kTech, four);
    EXPECT_GT(m4.readEnergy(16), m2.readEnergy(16));
    // Zero toggling bits -> identical (registers don't flip).
    EXPECT_DOUBLE_EQ(m4.readEnergy(0), m2.readEnergy(0));
}

} // namespace
