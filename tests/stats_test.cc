/**
 * @file
 * Tests for the statistics primitives (accumulator and histogram).
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace {

using orion::sim::Accumulator;
using orion::sim::Histogram;

TEST(Accumulator, EmptyIsZero)
{
    const Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, TracksMeanMinMax)
{
    Accumulator a;
    a.add(2.0);
    a.add(4.0);
    a.add(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 15.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, HandlesNegatives)
{
    Accumulator a;
    a.add(-3.0);
    a.add(1.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), 1.0);
    EXPECT_DOUBLE_EQ(a.mean(), -1.0);
}

TEST(Accumulator, ResetClears)
{
    Accumulator a;
    a.add(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(Histogram, BinsValues)
{
    Histogram h(10.0, 5);
    h.add(0.0);
    h.add(9.9);
    h.add(10.0);
    h.add(49.9);
    h.add(1000.0);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, QuantileApproximates)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, QuantileInterpolatesWithinBin)
{
    // 10 samples in one wide bin [0, 10): the quantile should cut
    // through the bin's mass linearly, not snap to the bin edge.
    Histogram h(10.0, 4);
    for (int i = 0; i < 10; ++i)
        h.add(1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);  // target 5 of 10
    EXPECT_DOUBLE_EQ(h.quantile(0.1), 1.0);  // target 1 of 10
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0); // full bin

    // Mass split across two bins: 4 samples in [0,10), 4 in [20,30).
    Histogram g(10.0, 4);
    for (int i = 0; i < 4; ++i)
        g.add(1.0);
    for (int i = 0; i < 4; ++i)
        g.add(25.0);
    EXPECT_DOUBLE_EQ(g.quantile(0.5), 10.0); // target 4 closes bin 0
    EXPECT_DOUBLE_EQ(g.quantile(0.75), 25.0); // target 6: half of bin 2
}

TEST(Histogram, QuantileOverflowClampsToLastEdge)
{
    Histogram h(1.0, 4);
    h.add(100.0); // overflow only
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(1.0, 4);
    h.add(2.0);
    h.add(100.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflowCount(), 0u);
    EXPECT_EQ(h.binCount(2), 0u);
}

TEST(Histogram, EmptyQuantileIsZero)
{
    const Histogram h(1.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

} // namespace
