/**
 * @file
 * Tests for k-ary n-cube topologies: coordinates, neighbors, wraparound
 * vs. mesh edges, and distance metrics.
 */

#include <gtest/gtest.h>

#include "net/topology.hh"

namespace {

using orion::net::Coord;
using orion::net::Topology;

TEST(Topology, FourByFourTorusBasics)
{
    const Topology t({4, 4}, true);
    EXPECT_EQ(t.numNodes(), 16u);
    EXPECT_EQ(t.dimensions(), 2u);
    EXPECT_EQ(t.portsPerRouter(), 5u); // paper: 5 physical ports
    EXPECT_EQ(t.localPort(), 4u);
}

TEST(Topology, CoordinateRoundTrip)
{
    const Topology t({4, 4}, true);
    for (int n = 0; n < 16; ++n)
        EXPECT_EQ(t.nodeAt(t.coordsOf(n)), n);
    // The paper labels nodes with (x, y) tuples; x is dimension 0.
    EXPECT_EQ(t.nodeAt({1, 2}), 1 + 2 * 4);
}

TEST(Topology, PortNumberingConvention)
{
    const Topology t({4, 4}, true);
    EXPECT_EQ(t.port(0, true), 0u);
    EXPECT_EQ(t.port(0, false), 1u);
    EXPECT_EQ(t.port(1, true), 2u);
    EXPECT_EQ(t.port(1, false), 3u);
    EXPECT_EQ(t.portDimension(2), 1u);
    EXPECT_TRUE(t.portIsPlus(2));
    EXPECT_FALSE(t.portIsPlus(3));
}

TEST(Topology, TorusNeighborsWrap)
{
    const Topology t({4, 4}, true);
    const int n30 = t.nodeAt({3, 0});
    EXPECT_EQ(t.neighbor(n30, t.port(0, true)), t.nodeAt({0, 0}));
    EXPECT_EQ(t.neighbor(n30, t.port(0, false)), t.nodeAt({2, 0}));
    EXPECT_EQ(t.neighbor(n30, t.port(1, false)), t.nodeAt({3, 3}));
}

TEST(Topology, MeshEdgesHaveNoNeighbor)
{
    const Topology t({4, 4}, false);
    const int corner = t.nodeAt({0, 0});
    EXPECT_EQ(t.neighbor(corner, t.port(0, false)), -1);
    EXPECT_EQ(t.neighbor(corner, t.port(1, false)), -1);
    EXPECT_GE(t.neighbor(corner, t.port(0, true)), 0);
}

TEST(Topology, NeighborIsInvolution)
{
    // Going +d then -d returns to the start, everywhere on the torus.
    const Topology t({4, 4}, true);
    for (int n = 0; n < 16; ++n) {
        for (unsigned d = 0; d < 2; ++d) {
            const int fwd = t.neighbor(n, t.port(d, true));
            EXPECT_EQ(t.neighbor(fwd, t.port(d, false)), n);
        }
    }
}

TEST(Topology, MinimalHopsOnTorus)
{
    const Topology t({4, 4}, true);
    EXPECT_EQ(t.minimalHops(t.nodeAt({0, 0}), t.nodeAt({0, 0})), 0u);
    EXPECT_EQ(t.minimalHops(t.nodeAt({0, 0}), t.nodeAt({1, 0})), 1u);
    // Wraparound shortens 3 to 1.
    EXPECT_EQ(t.minimalHops(t.nodeAt({0, 0}), t.nodeAt({3, 0})), 1u);
    EXPECT_EQ(t.minimalHops(t.nodeAt({0, 0}), t.nodeAt({2, 2})), 4u);
}

TEST(Topology, MinimalHopsOnMesh)
{
    const Topology t({4, 4}, false);
    EXPECT_EQ(t.minimalHops(t.nodeAt({0, 0}), t.nodeAt({3, 0})), 3u);
    EXPECT_EQ(t.minimalHops(t.nodeAt({3, 3}), t.nodeAt({0, 0})), 6u);
}

TEST(Topology, DistanceIsSymmetric)
{
    const Topology t({4, 4}, true);
    for (int a = 0; a < 16; ++a)
        for (int b = 0; b < 16; ++b)
            EXPECT_EQ(t.minimalHops(a, b), t.minimalHops(b, a));
}

TEST(Topology, ThreeDimensionalTorus)
{
    const Topology t({2, 3, 4}, true);
    EXPECT_EQ(t.numNodes(), 24u);
    EXPECT_EQ(t.portsPerRouter(), 7u);
    for (int n = 0; n < 24; ++n)
        EXPECT_EQ(t.nodeAt(t.coordsOf(n)), n);
}

TEST(Topology, AsymmetricRadix)
{
    const Topology t({8, 2}, true);
    EXPECT_EQ(t.numNodes(), 16u);
    EXPECT_EQ(t.radix(0), 8u);
    EXPECT_EQ(t.radix(1), 2u);
    EXPECT_EQ(t.minimalHops(t.nodeAt({0, 0}), t.nodeAt({4, 1})), 5u);
}

} // namespace
