/**
 * @file
 * Tests for the flip-flop subcomponent model (reused by arbiters and
 * central-buffer pipeline registers, paper Section 3.2).
 */

#include <gtest/gtest.h>

#include "power/flipflop_model.hh"
#include "tech/tech_node.hh"

namespace {

using namespace orion;
using namespace orion::power;
using namespace orion::tech;

TEST(FlipFlopModel, CapsArePositive)
{
    const FlipFlopModel m(TechNode::onChip100nm());
    EXPECT_GT(m.flipCap(), 0.0);
    EXPECT_GT(m.clockCap(), 0.0);
}

TEST(FlipFlopModel, FlipEnergyIsHalfCV2)
{
    const TechNode t = TechNode::onChip100nm();
    const FlipFlopModel m(t);
    EXPECT_DOUBLE_EQ(m.flipEnergy(), t.switchEnergy(m.flipCap()));
}

TEST(FlipFlopModel, ClockEnergyCountsBothEdges)
{
    const TechNode t = TechNode::onChip100nm();
    const FlipFlopModel m(t);
    EXPECT_DOUBLE_EQ(m.clockEnergy(),
                     2.0 * t.switchEnergy(m.clockCap()));
}

TEST(FlipFlopModel, EnergyScalesWithVddSquared)
{
    const FlipFlopModel lo(TechNode::scaled(0.1, 1.0, 1e9));
    const FlipFlopModel hi(TechNode::scaled(0.1, 2.0, 1e9));
    EXPECT_NEAR(hi.flipEnergy(), 4.0 * lo.flipEnergy(),
                1e-12 * lo.flipEnergy());
}

TEST(FlipFlopModel, FlipIsFemtoJouleScale)
{
    // One bit of register should sit in the femtojoule decade at
    // 0.1 um / 1.2 V — guards against unit errors.
    const FlipFlopModel m(TechNode::onChip100nm());
    EXPECT_GT(m.flipEnergy(), 1e-17);
    EXPECT_LT(m.flipEnergy(), 1e-13);
}

} // namespace
