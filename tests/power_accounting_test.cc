/**
 * @file
 * Tests for the power monitor: energy accounting identities (energy ==
 * sum over events of the model-evaluated energies), component
 * attribution, constant chip-to-chip link power, and the paper's
 * P = E x f / cycles rule.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/simulation.hh"
#include "net/power_monitor.hh"

namespace {

using namespace orion;
using namespace orion::net;

TEST(PowerMonitor, BufferEventsAccumulateModelEnergy)
{
    sim::EventBus bus;
    NetworkConfig cfg = NetworkConfig::vc16();
    PowerMonitor mon(bus, cfg.buildModels(), 16, 4);

    const auto& buf = *mon.models().buffer;
    bus.emit({sim::EventType::BufferWrite, 3, 0, 100, 40, 0});
    bus.emit({sim::EventType::BufferRead, 3, 0, 0, 0, 1});

    const double expect = buf.writeEnergy(100, 40) + buf.readEnergy();
    EXPECT_DOUBLE_EQ(mon.energy(3, ComponentClass::Buffer), expect);
    EXPECT_DOUBLE_EQ(mon.energy(2, ComponentClass::Buffer), 0.0);
    EXPECT_DOUBLE_EQ(mon.totalEnergy(ComponentClass::Buffer), expect);
}

TEST(PowerMonitor, ArbiterEventsIncludeVcAllocation)
{
    sim::EventBus bus;
    NetworkConfig cfg = NetworkConfig::vc16();
    PowerMonitor mon(bus, cfg.buildModels(), 16, 4);

    bus.emit({sim::EventType::Arbitration, 0, 2, 2, 3, 0});
    bus.emit({sim::EventType::VcAllocation, 0, 1, 1, 1, 0});

    const double expect =
        mon.models().switchArbiter->arbitrationEnergy(2, 3) +
        mon.models().vcArbiter->arbitrationEnergy(1, 1);
    EXPECT_DOUBLE_EQ(mon.energy(0, ComponentClass::Arbiter), expect);
}

TEST(PowerMonitor, DeltasClampToModelRange)
{
    // Behavioural modules may report deltas above a model's
    // architectural limit (e.g. a 5-requester behavioural arbiter vs
    // the 4:1 power model); the monitor clamps instead of asserting.
    sim::EventBus bus;
    NetworkConfig cfg = NetworkConfig::vc16();
    PowerMonitor mon(bus, cfg.buildModels(), 16, 4);

    bus.emit({sim::EventType::Arbitration, 0, 0, 1000, 1000, 0});
    bus.emit({sim::EventType::CrossbarTraversal, 0, 0, 100000, 0, 0});
    bus.emit({sim::EventType::BufferWrite, 0, 0, 100000, 100000, 0});

    const auto& m = mon.models();
    const unsigned r = m.switchArbiter->params().requests;
    const double expect_arb = m.switchArbiter->arbitrationEnergy(
        r, m.switchArbiter->priorityFlipFlops());
    EXPECT_DOUBLE_EQ(mon.energy(0, ComponentClass::Arbiter), expect_arb);
    EXPECT_DOUBLE_EQ(
        mon.energy(0, ComponentClass::Crossbar),
        m.crossbar->traversalEnergy(m.crossbar->params().width));
}

TEST(PowerMonitor, OnChipLinkEnergyFollowsActivity)
{
    sim::EventBus bus;
    NetworkConfig cfg = NetworkConfig::vc16();
    PowerMonitor mon(bus, cfg.buildModels(), 16, 4);

    bus.emit({sim::EventType::LinkTraversal, 5, 0, 128, 0, 0});
    EXPECT_DOUBLE_EQ(mon.energy(5, ComponentClass::Link),
                     mon.models().onChipLink->traversalEnergy(128));
}

TEST(PowerMonitor, ChipToChipLinkPowerIsConstant)
{
    sim::EventBus bus;
    NetworkConfig cfg = NetworkConfig::xb();
    PowerMonitor mon(bus, cfg.buildModels(), 16, 4);

    // No traversal events at all: link power is still 4 links x 3 W
    // per node.
    EXPECT_DOUBLE_EQ(mon.energy(0, ComponentClass::Link), 0.0);
    EXPECT_NEAR(mon.nodePower(0, 1000.0), 12.0, 1e-9);
    EXPECT_NEAR(mon.classPower(ComponentClass::Link, 1000.0),
                16.0 * 12.0, 1e-6);

    // Traversal events add nothing.
    bus.emit({sim::EventType::LinkTraversal, 0, 0, 16, 0, 0});
    EXPECT_DOUBLE_EQ(mon.energy(0, ComponentClass::Link), 0.0);
}

TEST(PowerMonitor, AveragePowerIsEnergyTimesFreqOverCycles)
{
    // Paper 4.1: "Average power is then computed by multiplying the
    // total energy by frequency and then dividing by total simulation
    // cycles."
    sim::EventBus bus;
    NetworkConfig cfg = NetworkConfig::vc16();
    PowerMonitor mon(bus, cfg.buildModels(), 16, 4);

    bus.emit({sim::EventType::BufferRead, 0, 0, 0, 0, 0});
    const double e = mon.totalEnergy();
    const double f = cfg.tech.freqHz;
    EXPECT_DOUBLE_EQ(mon.networkPower(1000.0), e * f / 1000.0);
    EXPECT_DOUBLE_EQ(mon.nodePower(0, 500.0), e * f / 500.0);
}

TEST(PowerMonitor, ResetZeroesEverything)
{
    sim::EventBus bus;
    NetworkConfig cfg = NetworkConfig::vc16();
    PowerMonitor mon(bus, cfg.buildModels(), 16, 4);

    bus.emit({sim::EventType::BufferRead, 1, 0, 0, 0, 0});
    bus.emit({sim::EventType::CrossbarTraversal, 1, 0, 10, 0, 0});
    EXPECT_GT(mon.totalEnergy(), 0.0);
    mon.reset();
    EXPECT_DOUBLE_EQ(mon.totalEnergy(), 0.0);
    EXPECT_EQ(mon.eventCount(sim::EventType::BufferRead), 0u);
}

TEST(PowerMonitor, CentralBufferEventsUseHierarchicalModel)
{
    sim::EventBus bus;
    NetworkConfig cfg = NetworkConfig::cb();
    PowerMonitor mon(bus, cfg.buildModels(), 16, 4);

    bus.emit({sim::EventType::CentralBufferWrite, 2, 0, 16, 8, 0});
    bus.emit({sim::EventType::CentralBufferRead, 2, 0, 16, 0, 1});
    const auto& cb = *mon.models().centralBuffer;
    EXPECT_DOUBLE_EQ(mon.energy(2, ComponentClass::CentralBuffer),
                     cb.writeEnergy(16, 16, 8) + cb.readEnergy(16));
}

TEST(PowerAccounting, SimulationEnergyMatchesEventCounts)
{
    // End-to-end identity: with a workload of known event counts, the
    // dynamic energy must lie between the models' min and max per-op
    // energies times the counts.
    SimConfig s;
    s.samplePackets = 800;
    s.maxCycles = 100000;
    s.seed = 9;
    TrafficConfig t;
    t.injectionRate = 0.05;
    Simulation sim(NetworkConfig::vc16(), t, s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);

    auto& mon = sim.monitor();
    const auto& models = mon.models();
    const auto count = [&](sim::EventType ty) {
        return static_cast<double>(mon.eventCount(ty));
    };

    const double n_write = count(sim::EventType::BufferWrite);
    const double n_read = count(sim::EventType::BufferRead);
    // Reads and writes pair up per buffered flit.
    EXPECT_NEAR(n_write, n_read, 0.02 * n_write + 500.0);

    const double e_buf = mon.totalEnergy(ComponentClass::Buffer);
    const double min_buf =
        n_write * models.buffer->writeEnergy(0, 0) +
        n_read * models.buffer->readEnergy();
    const double max_buf =
        n_write * models.buffer->writeEnergy(
                      models.buffer->params().flitBits,
                      models.buffer->params().flitBits) +
        n_read * models.buffer->readEnergy();
    EXPECT_GE(e_buf, min_buf * 0.999);
    EXPECT_LE(e_buf, max_buf * 1.001);

    const double n_xb = count(sim::EventType::CrossbarTraversal);
    const double e_xb = mon.totalEnergy(ComponentClass::Crossbar);
    EXPECT_LE(e_xb, n_xb * models.crossbar->traversalEnergy(
                               models.crossbar->params().width));
    EXPECT_GT(e_xb, 0.0);

    // Every link traversal is also a crossbar traversal upstream, and
    // ejections traverse the crossbar but not a link.
    EXPECT_GE(n_xb, count(sim::EventType::LinkTraversal));
}

TEST(PowerAccounting, ArbiterShareIsTinyOnChip)
{
    // Figure 5(c): "the power consumed by arbiters (less than 1% of
    // node power) is minimal".
    SimConfig s;
    s.samplePackets = 800;
    s.maxCycles = 100000;
    TrafficConfig t;
    t.injectionRate = 0.08;
    Simulation sim(NetworkConfig::vc64(), t, s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_LT(r.breakdownWatts.arbiter,
              0.01 * r.networkPowerWatts);
}

TEST(PowerAccounting, BuffersAndCrossbarDominateRouterPower)
{
    // Figure 5(c): input buffers and crossbar consume more than 85% of
    // router (non-link) power.
    SimConfig s;
    s.samplePackets = 800;
    s.maxCycles = 100000;
    TrafficConfig t;
    t.injectionRate = 0.08;
    Simulation sim(NetworkConfig::vc64(), t, s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);
    const double router_power = r.networkPowerWatts -
                                r.breakdownWatts.link;
    EXPECT_GT(r.breakdownWatts.buffer + r.breakdownWatts.crossbar,
              0.85 * router_power);
}

} // namespace
