/**
 * @file
 * Tests for credit-based flow control state.
 */

#include <gtest/gtest.h>

#include "core/check.hh"
#include "router/credit.hh"

namespace {

using orion::core::CheckFailure;
using orion::router::CreditCounter;

TEST(CreditCounter, StartsFull)
{
    const CreditCounter c(2, 8);
    EXPECT_EQ(c.vcs(), 2u);
    EXPECT_EQ(c.available(0), 8u);
    EXPECT_EQ(c.available(1), 8u);
}

TEST(CreditCounter, ConsumeRestoreRoundTrip)
{
    CreditCounter c(1, 4);
    c.consume(0);
    c.consume(0);
    EXPECT_EQ(c.available(0), 2u);
    c.restore(0);
    EXPECT_EQ(c.available(0), 3u);
}

TEST(CreditCounter, VcsAreIndependent)
{
    CreditCounter c(3, 5);
    c.consume(1);
    c.consume(1);
    EXPECT_EQ(c.available(0), 5u);
    EXPECT_EQ(c.available(1), 3u);
    EXPECT_EQ(c.available(2), 5u);
}

TEST(CreditCounter, UnlimitedNeverDepletes)
{
    CreditCounter c(1, 0, /*unlimited=*/true);
    for (int i = 0; i < 1000; ++i)
        c.consume(0);
    EXPECT_GT(c.available(0), 1000000u);
    c.restore(0); // no-op, no overflow
}

TEST(CreditCounter, UnderflowThrows)
{
    CreditCounter c(1, 1);
    c.consume(0);
    EXPECT_THROW(c.consume(0), CheckFailure);
}

TEST(CreditCounter, OverflowThrows)
{
    CreditCounter c(1, 2);
    EXPECT_THROW(c.restore(0), CheckFailure);
}

TEST(CreditCounter, UnderflowMessageNamesVc)
{
    CreditCounter c(2, 4);
    for (int i = 0; i < 4; ++i)
        c.consume(1);
    try {
        c.consume(1);
        FAIL() << "expected CheckFailure";
    } catch (const CheckFailure& e) {
        EXPECT_NE(std::string(e.what()).find("credit underflow"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("VC 1"), std::string::npos)
            << e.what();
    }
}

} // namespace
