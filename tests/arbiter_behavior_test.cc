/**
 * @file
 * Tests for the behavioural arbiters: single-grant guarantee,
 * least-recently-served fairness of the matrix arbiter, round-robin
 * rotation, and the switching-activity deltas they report.
 */

#include <gtest/gtest.h>

#include <vector>

#include "router/arbiter.hh"
#include "sim/rng.hh"

namespace {

using namespace orion::router;

std::vector<bool>
reqs(std::initializer_list<int> asserted, unsigned n)
{
    std::vector<bool> v(n, false);
    for (int i : asserted)
        v[static_cast<unsigned>(i)] = true;
    return v;
}

TEST(MatrixArbiter, NoRequestsNoWinner)
{
    MatrixArbiter arb(4);
    const auto res = arb.arbitrate(reqs({}, 4));
    EXPECT_EQ(res.winner, -1);
    EXPECT_EQ(res.deltaPri, 0u);
}

TEST(MatrixArbiter, SingleRequestWins)
{
    MatrixArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(reqs({2}, 4)).winner, 2);
}

TEST(MatrixArbiter, InitialOrderPrefersLowerIndex)
{
    MatrixArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(reqs({1, 3}, 4)).winner, 1);
}

TEST(MatrixArbiter, WinnerDropsToLowestPriority)
{
    MatrixArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(reqs({0, 1}, 4)).winner, 0);
    // 0 just won, so 1 now beats 0.
    EXPECT_EQ(arb.arbitrate(reqs({0, 1}, 4)).winner, 1);
    // Both have won once; 0 was the least recent winner.
    EXPECT_EQ(arb.arbitrate(reqs({0, 1}, 4)).winner, 0);
}

TEST(MatrixArbiter, IsLeastRecentlyServedUnderContention)
{
    // With all four requesting continuously, grants must cycle through
    // all requesters with perfect fairness.
    MatrixArbiter arb(4);
    std::vector<int> grants(4, 0);
    for (int i = 0; i < 400; ++i) {
        const auto res = arb.arbitrate(reqs({0, 1, 2, 3}, 4));
        ASSERT_GE(res.winner, 0);
        ++grants[static_cast<unsigned>(res.winner)];
    }
    for (const int g : grants)
        EXPECT_EQ(g, 100);
}

TEST(MatrixArbiter, AlwaysGrantsExactlyOneUnderRandomRequests)
{
    // Property: the priority matrix must remain a total order, so any
    // non-empty request set yields exactly one winner, and the winner
    // must have requested.
    MatrixArbiter arb(6);
    orion::sim::Rng rng(17);
    for (int t = 0; t < 2000; ++t) {
        std::vector<bool> r(6);
        bool any = false;
        for (unsigned i = 0; i < 6; ++i) {
            r[i] = rng.chance(0.4);
            any = any || r[i];
        }
        const auto res = arb.arbitrate(r);
        if (any) {
            ASSERT_GE(res.winner, 0);
            EXPECT_TRUE(r[static_cast<unsigned>(res.winner)]);
        } else {
            EXPECT_EQ(res.winner, -1);
        }
    }
}

TEST(MatrixArbiter, PriorityMatrixStaysAntisymmetric)
{
    MatrixArbiter arb(5);
    orion::sim::Rng rng(23);
    for (int t = 0; t < 500; ++t) {
        std::vector<bool> r(5);
        for (unsigned i = 0; i < 5; ++i)
            r[i] = rng.chance(0.5);
        arb.arbitrate(r);
        for (unsigned i = 0; i < 5; ++i)
            for (unsigned j = i + 1; j < 5; ++j)
                EXPECT_NE(arb.hasPriority(i, j), arb.hasPriority(j, i));
    }
}

TEST(MatrixArbiter, DeltaReqCountsChangedLines)
{
    MatrixArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(reqs({0, 1}, 4)).deltaReq, 2u);
    EXPECT_EQ(arb.arbitrate(reqs({0, 1}, 4)).deltaReq, 0u);
    EXPECT_EQ(arb.arbitrate(reqs({2}, 4)).deltaReq, 3u);
}

TEST(MatrixArbiter, DeltaPriCountsToggledFlipFlops)
{
    MatrixArbiter arb(4);
    // Requester 0 starts above everyone; on winning, its 3 priority
    // pairs all flip.
    EXPECT_EQ(arb.arbitrate(reqs({0}, 4)).deltaPri, 3u);
    // Winning again flips nothing (already at the bottom).
    EXPECT_EQ(arb.arbitrate(reqs({0}, 4)).deltaPri, 0u);
}

TEST(RoundRobinArbiter, RotatesUnderContention)
{
    RoundRobinArbiter arb(3);
    EXPECT_EQ(arb.arbitrate(reqs({0, 1, 2}, 3)).winner, 0);
    EXPECT_EQ(arb.arbitrate(reqs({0, 1, 2}, 3)).winner, 1);
    EXPECT_EQ(arb.arbitrate(reqs({0, 1, 2}, 3)).winner, 2);
    EXPECT_EQ(arb.arbitrate(reqs({0, 1, 2}, 3)).winner, 0);
}

TEST(RoundRobinArbiter, SkipsIdleRequesters)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(reqs({2}, 4)).winner, 2);
    // Token now at 3; requester 1 is next in cyclic order.
    EXPECT_EQ(arb.arbitrate(reqs({1}, 4)).winner, 1);
}

TEST(RoundRobinArbiter, TokenMoveTogglesTwoFlipFlops)
{
    RoundRobinArbiter arb(4);
    const auto res = arb.arbitrate(reqs({0}, 4));
    EXPECT_EQ(res.winner, 0);
    EXPECT_EQ(res.deltaPri, 2u);
    EXPECT_EQ(arb.token(), 1u);
}

TEST(RoundRobinArbiter, NoWinnerKeepsToken)
{
    RoundRobinArbiter arb(4);
    arb.arbitrate(reqs({0}, 4));
    const unsigned tok = arb.token();
    const auto res = arb.arbitrate(reqs({}, 4));
    EXPECT_EQ(res.winner, -1);
    EXPECT_EQ(arb.token(), tok);
    EXPECT_EQ(res.deltaPri, 0u);
}

TEST(RoundRobinArbiter, IsFairUnderContention)
{
    RoundRobinArbiter arb(5);
    std::vector<int> grants(5, 0);
    for (int i = 0; i < 500; ++i) {
        const auto res = arb.arbitrate(reqs({0, 1, 2, 3, 4}, 5));
        ++grants[static_cast<unsigned>(res.winner)];
    }
    for (const int g : grants)
        EXPECT_EQ(g, 100);
}

} // namespace
