/**
 * @file
 * Tests for runtime deadlock detection and recovery. A debug worm
 * whose source route loops twice around a 4-node ring with a single
 * VC and no avoidance discipline wedges the network deterministically;
 * the detector must extract the actual wait-for cycle, poison the
 * worm, and let the run complete — or stop the run with
 * StopReason::DeadlockUnrecovered when the recovery budget is zero.
 * Also covers: the disabled-by-default fast path, the watchdog
 * backstop without a detector, baseline equivalence on healthy
 * traffic, forensics content, and detection determinism.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/check.hh"
#include "core/config.hh"
#include "core/forensics.hh"
#include "core/simulation.hh"
#include "net/deadlock.hh"
#include "net/network.hh"
#include "net/node.hh"
#include "router/flit.hh"

namespace {

using namespace orion;

TrafficConfig
uniform(double rate)
{
    TrafficConfig t;
    t.injectionRate = rate;
    return t;
}

/**
 * A 4-node 1D torus with one VC, shallow buffers and NO deadlock
 * avoidance: cyclic channel dependencies are possible by design, so a
 * worm that chases its own tail around the ring wedges the network.
 */
NetworkConfig
deadlockableRing()
{
    NetworkConfig c = NetworkConfig::vc16();
    c.net.dims = {4};
    c.net.routerKind = net::RouterKind::VirtualChannel;
    c.net.vcs = 1;
    c.net.bufferDepth = 4;
    c.net.deadlock = router::DeadlockMode::None;
    return c;
}

SimConfig
detectRun()
{
    SimConfig s;
    s.warmupCycles = 100;
    s.samplePackets = 50;
    s.maxCycles = 100000;
    s.watchdogCycles = 5000;
    s.deadlockDetect.enabled = true;
    s.deadlockDetect.probeCycles = 16;
    s.deadlockDetect.thresholdCycles = 256;
    s.deadlockDetect.maxRecoveries = 16;
    // The poisoned worm must not be resent: its route is a debug loop
    // that would simply deadlock again.
    s.fault.retryLimit = 0;
    return s;
}

/**
 * A worm guaranteed to deadlock the ring: 8 +x hops (two full loops,
 * ending back at node 0) followed by ejection, 40 flits — far more
 * than the ring's total buffering — so the head comes to wait on the
 * VC its own body holds.
 */
std::shared_ptr<const router::PacketInfo>
wedgeWorm()
{
    auto pkt = std::make_shared<router::PacketInfo>();
    pkt->id = 9999999;
    pkt->src = 0;
    pkt->dst = 0;
    pkt->createdAt = 0;
    pkt->length = 40;
    pkt->sample = false;
    for (int h = 0; h < 8; ++h)
        pkt->route.push_back(
            {.port = 0, .vcClass = 0, .newRing = h == 0});
    // Ejection hop: the local port of a 1D router (ports 0, 1, 2).
    pkt->route.push_back({.port = 2, .vcClass = 0, .newRing = false});
    return pkt;
}

// --- disabled-by-default fast path ------------------------------------

TEST(DeadlockDetect, DisabledByDefaultBuildsNoDetector)
{
    net::DeadlockDetectConfig d;
    EXPECT_FALSE(d.enabled);

    SimConfig s;
    s.samplePackets = 200;
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    EXPECT_EQ(sim.deadlockDetector(), nullptr);
}

// --- the watchdog backstop (no detector) ------------------------------

TEST(DeadlockDetect, WatchdogStallsWithoutDetector)
{
    SimConfig s;
    s.warmupCycles = 100;
    s.samplePackets = 30;
    s.maxCycles = 20000;
    s.watchdogCycles = 2000;

    Simulation sim(deadlockableRing(), uniform(0.005), s);
    sim.network().endpoint(0).debugInjectPacket(wedgeWorm());
    const Report r = sim.run();

    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.stopReason, StopReason::WatchdogStall);
    EXPECT_TRUE(r.deadlockSuspected);
}

// --- detection + recovery (paranoid audits) ---------------------------

class DeadlockRecoveryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_ = core::checkLevel();
        core::setCheckLevel(core::CheckLevel::Paranoid);
    }
    void TearDown() override { core::setCheckLevel(saved_); }

  private:
    core::CheckLevel saved_ = core::CheckLevel::Cheap;
};

TEST_F(DeadlockRecoveryTest, DetectsNamesAndBreaksTheCycle)
{
    Simulation sim(deadlockableRing(), uniform(0.005), detectRun());
    sim.network().endpoint(0).debugInjectPacket(wedgeWorm());
    const Report r = sim.run();

    // Recovery poisoned the worm, the network drained, and the
    // background sample finished normally.
    ASSERT_TRUE(r.completed)
        << "stop: " << stopReasonName(r.stopReason);
    EXPECT_EQ(r.stopReason, StopReason::Completed);
    EXPECT_GE(r.deadlocksDetected, 1u);
    EXPECT_GE(r.deadlocksRecovered, 1u);
    EXPECT_GE(r.packetsLost, 1u); // the poisoned worm, retryLimit 0

    const net::DeadlockDetector* det = sim.deadlockDetector();
    ASSERT_NE(det, nullptr);
    // The worm wedges within ~100 cycles of launch; detection must
    // land within the configured threshold plus one probe of that.
    EXPECT_LE(det->lastDetectionAt(), sim::Cycle{1000});
    // The extracted wait-for cycle names real resources.
    const auto& cycle = det->lastWaitCycle();
    ASSERT_GE(cycle.size(), 2u);
    for (const auto& w : cycle) {
        EXPECT_GE(w.node, 0);
        EXPECT_LT(w.node, 4);
        EXPECT_LT(w.port, 3u);
        EXPECT_EQ(w.vc, 0u);
    }
    EXPECT_NE(det->waitGraphJson().find("wait_cycle"),
              std::string::npos);

    EXPECT_NO_THROW(sim.auditor().auditAll());
}

TEST_F(DeadlockRecoveryTest, ZeroRecoveryBudgetStopsUnrecovered)
{
    SimConfig s = detectRun();
    s.maxCycles = 20000;
    s.deadlockDetect.maxRecoveries = 0;

    Simulation sim(deadlockableRing(), uniform(0.005), s);
    sim.network().endpoint(0).debugInjectPacket(wedgeWorm());
    const Report r = sim.run();

    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.stopReason, StopReason::DeadlockUnrecovered);
    EXPECT_TRUE(r.deadlockSuspected);
    EXPECT_GE(r.deadlocksDetected, 1u);
    EXPECT_EQ(r.deadlocksRecovered, 0u);

    const net::DeadlockDetector* det = sim.deadlockDetector();
    ASSERT_NE(det, nullptr);
    EXPECT_TRUE(det->unrecoverable());

    // The forensic snapshot carries the wait-for graph and the
    // per-router frozen-cycle counters.
    const std::string snap = forensicSnapshot(sim, "deadlock test");
    EXPECT_NE(snap.find("wait_graph"), std::string::npos);
    EXPECT_NE(snap.find("frozen_cycles"), std::string::npos);
    EXPECT_NE(snap.find("deadlock"), std::string::npos);
}

// --- healthy traffic --------------------------------------------------

TEST(DeadlockDetect, HealthyTrafficSeesNoDetections)
{
    // The detector only watches; deadlock-free traffic must complete
    // with zero detections and the exact baseline latency.
    SimConfig base;
    base.warmupCycles = 500;
    base.samplePackets = 800;
    base.maxCycles = 100000;
    SimConfig watched = base;
    watched.deadlockDetect.enabled = true;

    Simulation a(NetworkConfig::vc16(), uniform(0.05), base);
    Simulation b(NetworkConfig::vc16(), uniform(0.05), watched);
    const Report ra = a.run();
    const Report rb = b.run();

    ASSERT_NE(b.deadlockDetector(), nullptr);
    EXPECT_TRUE(rb.completed);
    EXPECT_EQ(rb.deadlocksDetected, 0u);
    EXPECT_EQ(rb.deadlocksRecovered, 0u);
    EXPECT_DOUBLE_EQ(ra.avgLatencyCycles, rb.avgLatencyCycles);
    EXPECT_EQ(ra.sampleEjected, rb.sampleEjected);
}

// --- determinism ------------------------------------------------------

TEST(DeadlockDetect, DetectionAndRecoveryAreDeterministic)
{
    Report runs[2];
    sim::Cycle detectedAt[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
        Simulation sim(deadlockableRing(), uniform(0.005),
                       detectRun());
        sim.network().endpoint(0).debugInjectPacket(wedgeWorm());
        runs[i] = sim.run();
        ASSERT_NE(sim.deadlockDetector(), nullptr);
        detectedAt[i] = sim.deadlockDetector()->lastDetectionAt();
    }
    EXPECT_EQ(detectedAt[0], detectedAt[1]);
    EXPECT_EQ(runs[0].deadlocksDetected, runs[1].deadlocksDetected);
    EXPECT_EQ(runs[0].deadlocksRecovered, runs[1].deadlocksRecovered);
    EXPECT_DOUBLE_EQ(runs[0].avgLatencyCycles,
                     runs[1].avgLatencyCycles);
    EXPECT_EQ(runs[0].faultLogHash, runs[1].faultLogHash);
}

} // namespace
