/**
 * @file
 * Tests for the configurable features layered on the core
 * reproduction: queuing arbiters, the arbiter-kind plumb-through,
 * PreferWrap tie-breaking, injection policies, buffer organization,
 * credit-counter emptiness queries, and the Figure 7 area-fairness
 * argument.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/simulation.hh"
#include "net/routing.hh"
#include "power/buffer_model.hh"
#include "power/central_buffer_model.hh"
#include "router/arbiter.hh"
#include "router/credit.hh"

namespace {

using namespace orion;
using namespace orion::router;

std::vector<bool>
reqs(std::initializer_list<int> asserted, unsigned n)
{
    std::vector<bool> v(n, false);
    for (int i : asserted)
        v[static_cast<unsigned>(i)] = true;
    return v;
}

TEST(QueuingArbiter, ServesInArrivalOrder)
{
    QueuingArbiter arb(4);
    // 2 requests first, then 0 joins a cycle later.
    EXPECT_EQ(arb.arbitrate(reqs({2, 3}, 4)).winner, 2);
    EXPECT_EQ(arb.arbitrate(reqs({0, 3}, 4)).winner, 3);
    EXPECT_EQ(arb.arbitrate(reqs({0}, 4)).winner, 0);
}

TEST(QueuingArbiter, WithdrawnRequestsAreSkipped)
{
    QueuingArbiter arb(3);
    EXPECT_EQ(arb.arbitrate(reqs({0, 1}, 3)).winner, 0);
    // Requester 1 withdraws; 2 arrived later but is the only one left.
    EXPECT_EQ(arb.arbitrate(reqs({2}, 3)).winner, 2);
    EXPECT_EQ(arb.arbitrate(reqs({}, 3)).winner, -1);
}

TEST(QueuingArbiter, NoDoubleQueuing)
{
    QueuingArbiter arb(2);
    // Requester 0 keeps requesting while losing nothing; it must not
    // occupy multiple queue slots.
    EXPECT_EQ(arb.arbitrate(reqs({0, 1}, 2)).winner, 0);
    EXPECT_EQ(arb.arbitrate(reqs({0, 1}, 2)).winner, 1);
    EXPECT_EQ(arb.arbitrate(reqs({0, 1}, 2)).winner, 0);
    EXPECT_EQ(arb.arbitrate(reqs({0, 1}, 2)).winner, 1);
}

TEST(ArbiterFactory, MakesRequestedKinds)
{
    EXPECT_NE(dynamic_cast<MatrixArbiter*>(
                  makeArbiter(ArbiterKind::Matrix, 4).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<RoundRobinArbiter*>(
                  makeArbiter(ArbiterKind::RoundRobin, 4).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<QueuingArbiter*>(
                  makeArbiter(ArbiterKind::Queuing, 4).get()),
              nullptr);
}

TEST(ArbiterKindNetwork, AllKindsDeliverTraffic)
{
    for (const auto kind : {ArbiterKind::Matrix, ArbiterKind::RoundRobin,
                            ArbiterKind::Queuing}) {
        NetworkConfig cfg = NetworkConfig::vc16();
        cfg.net.arbiterKind = kind;
        TrafficConfig traffic;
        traffic.injectionRate = 0.05;
        SimConfig sim;
        sim.samplePackets = 800;
        sim.maxCycles = 100000;
        Simulation s(cfg, traffic, sim);
        const Report r = s.run();
        EXPECT_TRUE(r.completed);
        EXPECT_GT(r.breakdownWatts.arbiter, 0.0);
    }
}

TEST(TieBreakPreferWrap, AlwaysRoutesTiesThroughWraparound)
{
    const net::Topology topo({4, 4}, true);
    const net::DorRouting dor(topo, net::DorRouting::defaultOrder(topo),
                              DeadlockMode::Dateline,
                              net::TieBreak::PreferWrap);
    sim::Rng rng(1);
    // (0,0) -> (2,0): x tie. PreferWrap goes minus (0 -> 3 -> 2),
    // crossing the wrap, so the route gets dateline class 1.
    for (int trial = 0; trial < 20; ++trial) {
        const auto route =
            dor.route(topo.nodeAt({0, 0}), topo.nodeAt({2, 0}), rng);
        ASSERT_EQ(route.size(), 3u);
        EXPECT_FALSE(topo.portIsPlus(route[0].port));
        EXPECT_EQ(route[0].vcClass, 1);
    }
    // (1,0) -> (3,0): going plus (1 -> 2 -> 3) does not wrap; minus
    // (1 -> 0 -> 3) does. PreferWrap takes minus.
    const auto route =
        dor.route(topo.nodeAt({1, 0}), topo.nodeAt({3, 0}), rng);
    EXPECT_FALSE(topo.portIsPlus(route[0].port));
}

TEST(TieBreakPreferWrap, BalancesDatelineClasses)
{
    // Under uniform random traffic, PreferWrap splits ring traversals
    // ~50/50 between dateline classes (vs ~1/3 crossing with random
    // ties).
    const net::Topology topo({4, 4}, true);
    sim::Rng rng(3);
    const auto crossing_fraction = [&](net::TieBreak tb) {
        const net::DorRouting dor(topo,
                                  net::DorRouting::defaultOrder(topo),
                                  DeadlockMode::Dateline, tb);
        int traversals = 0;
        int crossing = 0;
        for (int src = 0; src < 16; ++src) {
            for (int dst = 0; dst < 16; ++dst) {
                if (src == dst)
                    continue;
                for (int t = 0; t < 8; ++t) {
                    const auto route = dor.route(src, dst, rng);
                    // Count ring traversals (dimension runs).
                    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
                        if (!route[i].newRing)
                            continue;
                        ++traversals;
                        if (route[i].vcClass == 1)
                            ++crossing;
                    }
                }
            }
        }
        return static_cast<double>(crossing) / traversals;
    };
    EXPECT_NEAR(crossing_fraction(net::TieBreak::PreferWrap), 0.5,
                0.06);
    EXPECT_NEAR(crossing_fraction(net::TieBreak::Random), 0.33, 0.06);
}

TEST(InjectionPolicy, SingleVcUsesOnlyVcZero)
{
    NetworkConfig cfg = NetworkConfig::vc64();
    cfg.net.injection = net::InjectionPolicy::SingleVc;
    TrafficConfig traffic;
    traffic.injectionRate = 0.05;
    SimConfig sim;
    sim.samplePackets = 500;
    sim.maxCycles = 100000;
    Simulation s(cfg, traffic, sim);
    EXPECT_TRUE(s.run().completed);
}

TEST(InjectionPolicy, SpreadVcsDelivers)
{
    NetworkConfig cfg = NetworkConfig::vc64();
    cfg.net.injection = net::InjectionPolicy::SpreadVcs;
    TrafficConfig traffic;
    traffic.injectionRate = 0.05;
    SimConfig sim;
    sim.samplePackets = 500;
    sim.maxCycles = 100000;
    Simulation s(cfg, traffic, sim);
    EXPECT_TRUE(s.run().completed);
}

TEST(BufferOrganization, PerPortArraysCostMorePerAccess)
{
    NetworkConfig per_port = NetworkConfig::vc64();
    per_port.bufferOrg = BufferOrganization::PerPort;
    NetworkConfig per_vc = NetworkConfig::vc64();
    per_vc.bufferOrg = BufferOrganization::PerVc;

    const auto mp = per_port.buildModels();
    const auto mv = per_vc.buildModels();
    EXPECT_EQ(mp.buffer->params().flits, 64u); // 8 VCs x 8 flits
    EXPECT_EQ(mv.buffer->params().flits, 8u);
    EXPECT_GT(mp.buffer->readEnergy(), 2.0 * mv.buffer->readEnergy());
}

TEST(CreditCounterEmptiness, TracksFullyEmptyVcs)
{
    CreditCounter c(3, 4);
    EXPECT_TRUE(c.empty(0));
    EXPECT_EQ(c.emptyVcs(), 3u);
    c.consume(1);
    EXPECT_FALSE(c.empty(1));
    EXPECT_EQ(c.emptyVcs(), 2u);
    c.restore(1);
    EXPECT_EQ(c.emptyVcs(), 3u);
}

TEST(CreditCounterEmptiness, UnlimitedAlwaysEmpty)
{
    CreditCounter c(2, 0, /*unlimited=*/true);
    c.consume(0);
    EXPECT_TRUE(c.empty(0));
    EXPECT_EQ(c.emptyVcs(), 2u);
}

TEST(AreaFairness, CbAndXbBuffersOccupyComparableArea)
{
    // The paper's Section 4.4 premise: the CB and XB configurations
    // "take up roughly the same area", estimated from bitline/wordline
    // and crossbar line lengths. Verify our models agree to within 2x.
    const tech::TechNode tech = tech::TechNode::chipToChip100nm();

    // XB: 5 ports x 16 VC arrays of 268 x 32.
    const power::BufferModel xb_vc(tech, {268, 32, 1, 1});
    const double xb_area = 5.0 * 16.0 * xb_vc.areaUm2();

    // CB: 4 banks of 2560 x 32 (2R2W) + 5 input FIFOs of 64 x 32.
    const power::CentralBufferModel cb(tech,
                                       {4, 2560, 32, 2, 2, 5, 2});
    const power::BufferModel cb_fifo(tech, {64, 32, 1, 1});
    const double cb_area =
        cb.areaUm2() + 5.0 * cb_fifo.areaUm2();

    EXPECT_LT(xb_area, 2.0 * cb_area);
    EXPECT_LT(cb_area, 2.0 * xb_area);
}

} // namespace
