/**
 * @file
 * Tests for the telemetry subsystem: the metric registry, windowed
 * sampler, flit tracer, and their wiring through Simulation and the
 * sweep drivers. The key guarantees: the all-disabled configuration
 * changes nothing, counter deltas reconcile with the end-of-run
 * report, and every export is bit-identical at any --jobs.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/config.hh"
#include "core/cli.hh"
#include "core/simulation.hh"
#include "core/sweep.hh"
#include "core/telemetry.hh"
#include "json_validator.hh"
#include "net/sampler.hh"
#include "sim/simulator.hh"

namespace {

using namespace orion;

TrafficConfig
uniform(double rate)
{
    TrafficConfig t;
    t.injectionRate = rate;
    return t;
}

SimConfig
smallRun()
{
    SimConfig s;
    s.samplePackets = 300;
    s.maxCycles = 100000;
    return s;
}

// --- MetricsRegistry ------------------------------------------------

TEST(MetricsRegistry, RegistersAndReads)
{
    telemetry::MetricsRegistry reg;
    double level = 3.0;
    std::uint64_t count = 7;
    reg.addGauge("queue.depth", [&level] { return level; });
    reg.addCounter("flits.total",
                   [&count] { return double(count); });

    ASSERT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.name(0), "queue.depth");
    EXPECT_EQ(reg.kind(0), telemetry::MetricKind::Gauge);
    EXPECT_EQ(reg.kind(1), telemetry::MetricKind::Counter);
    EXPECT_DOUBLE_EQ(reg.read(0), 3.0);
    EXPECT_DOUBLE_EQ(reg.read(1), 7.0);

    level = 5.0;
    EXPECT_DOUBLE_EQ(reg.read(0), 5.0);

    EXPECT_EQ(reg.find("flits.total"), 1u);
    EXPECT_EQ(reg.find("missing"), telemetry::MetricsRegistry::npos);
}

TEST(MetricsRegistry, DuplicateNameThrows)
{
    telemetry::MetricsRegistry reg;
    reg.addCounter("x", [] { return 0.0; });
    EXPECT_THROW(reg.addGauge("x", [] { return 0.0; }),
                 std::invalid_argument);
}

// --- WindowedSampler ------------------------------------------------

TEST(WindowedSampler, CounterDeltasAndGaugeLevels)
{
    telemetry::MetricsRegistry reg;
    double counter = 0.0;
    double gauge = 0.0;
    reg.addCounter("c", [&counter] { return counter; });
    reg.addGauge("g", [&gauge] { return gauge; });

    net::WindowedSampler sampler(reg, 10);
    counter = 4.0;
    gauge = 2.0;
    sampler.sample(10);
    counter = 9.0;
    gauge = 7.0;
    sampler.sample(20);

    ASSERT_EQ(sampler.windows().size(), 2u);
    EXPECT_EQ(sampler.windows()[0].start, 0u);
    EXPECT_EQ(sampler.windows()[0].end, 10u);
    EXPECT_DOUBLE_EQ(sampler.windows()[0].values[0], 4.0); // delta
    EXPECT_DOUBLE_EQ(sampler.windows()[0].values[1], 2.0); // level
    EXPECT_DOUBLE_EQ(sampler.windows()[1].values[0], 5.0);
    EXPECT_DOUBLE_EQ(sampler.windows()[1].values[1], 7.0);

    // finalize() at the same cycle records no zero-length window.
    sampler.finalize(20);
    EXPECT_EQ(sampler.windows().size(), 2u);
    // ... but a partial window is closed.
    counter = 10.0;
    sampler.finalize(25);
    ASSERT_EQ(sampler.windows().size(), 3u);
    EXPECT_EQ(sampler.windows()[2].end, 25u);
    EXPECT_DOUBLE_EQ(sampler.windows()[2].values[0], 1.0);
}

TEST(WindowedSampler, RebaselineDropsHistoryAndRebasesCounters)
{
    telemetry::MetricsRegistry reg;
    double counter = 0.0;
    reg.addCounter("c", [&counter] { return counter; });

    net::WindowedSampler sampler(reg, 10);
    counter = 100.0;
    sampler.sample(10);
    ASSERT_EQ(sampler.windows().size(), 1u);

    // Mid-run counter reset (PowerMonitor::reset at measure start):
    // rebaseline discards warm-up windows and rebases so the next
    // delta is not negative.
    counter = 0.0;
    sampler.rebaseline(10);
    EXPECT_TRUE(sampler.windows().empty());
    counter = 3.0;
    sampler.sample(20);
    ASSERT_EQ(sampler.windows().size(), 1u);
    EXPECT_DOUBLE_EQ(sampler.windows()[0].values[0], 3.0);
}

TEST(WindowedSampler, CsvFormat)
{
    telemetry::MetricsRegistry reg;
    double counter = 0.0;
    reg.addCounter("a.b", [&counter] { return counter; });
    net::WindowedSampler sampler(reg, 5);
    counter = 1.0;
    sampler.sample(5);

    std::ostringstream out;
    sampler.writeCsv(out);
    EXPECT_EQ(out.str(),
              "window,cycle_start,cycle_end,metric,kind,value\n"
              "0,0,5,a.b,counter,1\n");
}

TEST(WindowedSampler, RegistersPeriodicHookWithSimulator)
{
    telemetry::MetricsRegistry reg;
    reg.addGauge("g", [] { return 1.0; });
    net::WindowedSampler sampler(reg, 3);

    sim::Simulator s;
    EXPECT_EQ(s.periodicCount(), 0u);
    sampler.registerWith(s);
    EXPECT_EQ(s.periodicCount(), 1u);
    s.run(10); // boundaries at 3, 6, 9
    EXPECT_EQ(sampler.windows().size(), 3u);
}

// --- FlitTracer -----------------------------------------------------

TEST(FlitTracer, RingBufferBoundsRetention)
{
    sim::EventBus bus;
    telemetry::FlitTracer tracer(bus, 4);
    for (unsigned i = 0; i < 10; ++i) {
        bus.emit({sim::EventType::BufferWrite, 0, 0, 0, 0,
                  sim::Cycle(i)});
    }
    EXPECT_EQ(tracer.totalRecorded(), 10u);
    EXPECT_EQ(tracer.dropped(), 6u);

    // The retained records are the most recent ones, in order.
    std::ostringstream out;
    tracer.writeJson(out, "ring");
    const std::string json = out.str();
    EXPECT_EQ(json.find("\"ts\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 6"), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 9"), std::string::npos);
    test::JsonValidator v(json);
    EXPECT_TRUE(v.valid());
}

TEST(FlitTracer, LabelWithQuotesAndBackslashesStaysValidJson)
{
    sim::EventBus bus;
    telemetry::FlitTracer tracer(bus, 8);
    tracer.addInstant("nack", 1, 0, 5, 42);

    std::ostringstream out;
    tracer.writeJson(out, "say \"hi\" \\ bye");
    const std::string json = out.str();
    test::JsonValidator v(json);
    EXPECT_TRUE(v.valid());
    EXPECT_NE(json.find("say \\\"hi\\\" \\\\ bye"), std::string::npos);
}

// --- Simulation wiring ----------------------------------------------

TEST(SimulationTelemetry, DisabledRegistersNothing)
{
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), smallRun());
    EXPECT_EQ(sim.metrics(), nullptr);
    EXPECT_EQ(sim.sampler(), nullptr);
    EXPECT_EQ(sim.tracer(), nullptr);
    EXPECT_EQ(sim.simulator().periodicCount(), 0u);
    EXPECT_TRUE(sim.metricsCsv().empty());
    EXPECT_TRUE(sim.traceJson("x").empty());
}

TEST(SimulationTelemetry, DisabledReportIsIdenticalToEnabled)
{
    // Telemetry observation must not perturb simulation state: the
    // full CSV report (latency, power, event counts) is identical
    // with sampling+tracing on and off.
    cli::Options opts;
    opts.network = NetworkConfig::vc16();
    opts.traffic = uniform(0.06);
    opts.sim = smallRun();

    Simulation plain(opts.network, opts.traffic, opts.sim);
    const std::string base =
        cli::formatCsvReport(opts, plain.run());

    SimConfig instrumented = opts.sim;
    instrumented.telemetry.sampleInterval = 100;
    instrumented.telemetry.traceEnabled = true;
    Simulation traced(opts.network, opts.traffic, instrumented);
    const std::string observed =
        cli::formatCsvReport(opts, traced.run());

    EXPECT_EQ(base, observed);
}

TEST(SimulationTelemetry, EnergyCountersReconcileWithReport)
{
    SimConfig s = smallRun();
    s.telemetry.sampleInterval = 50;
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);

    const auto* reg = sim.metrics();
    const auto* sampler = sim.sampler();
    ASSERT_NE(reg, nullptr);
    ASSERT_NE(sampler, nullptr);
    ASSERT_FALSE(sampler->windows().empty());

    // Sum of per-window power.* deltas == the report's dynamic
    // energy: the time series tiles the measurement window exactly.
    double energy = 0.0;
    for (const auto& w : sampler->windows()) {
        for (std::size_t i = 0; i < reg->size(); ++i) {
            if (reg->name(i).rfind("power.", 0) == 0)
                energy += w.values[i];
        }
    }
    EXPECT_NEAR(energy, r.dynamicEnergyJoules,
                1e-9 * std::max(1.0, r.dynamicEnergyJoules));

    // Same reconciliation for sample packets: latency.count tallies
    // exactly one increment per ejected sample packet. (The
    // net.packets_ejected counter is broader — it also sees warm-up
    // stragglers draining inside the measurement window.)
    const std::size_t lat = reg->find("latency.count");
    ASSERT_NE(lat, telemetry::MetricsRegistry::npos);
    double sampled = 0.0;
    for (const auto& w : sampler->windows())
        sampled += w.values[lat];
    EXPECT_DOUBLE_EQ(sampled, double(r.sampleEjected));

    const std::size_t ej = reg->find("net.packets_ejected");
    ASSERT_NE(ej, telemetry::MetricsRegistry::npos);
    double ejected = 0.0;
    for (const auto& w : sampler->windows())
        ejected += w.values[ej];
    EXPECT_GE(ejected, double(r.sampleEjected));
}

TEST(SimulationTelemetry, ThreePacketTraceIsValidChromeJson)
{
    SimConfig s;
    s.samplePackets = 3;
    s.warmupCycles = 0;
    s.maxCycles = 100000;
    s.telemetry.traceEnabled = true;
    s.telemetry.traceCapacity = 1 << 16;
    Simulation sim(NetworkConfig::vc16(), uniform(0.01), s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);

    const std::string json = sim.traceJson("three packets");
    test::JsonValidator v(json);
    EXPECT_TRUE(v.valid());

    // The golden structure: every pipeline stage appears as a span
    // ("ph": "X"), packet boundaries as instants ("ph": "i"), and
    // track metadata names the nodes.
    for (const char* phase :
         {"buffer_write", "buffer_read", "arbitration",
          "vc_allocation", "crossbar_traversal", "link_traversal"}) {
        EXPECT_NE(json.find('"' + std::string(phase) + '"'),
                  std::string::npos)
            << phase;
    }
    EXPECT_NE(json.find("\"packet_injected\""), std::string::npos);
    EXPECT_NE(json.find("\"packet_ejected\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
}

TEST(SimulationTelemetry, SaStallsAndCreditsObservable)
{
    SimConfig s = smallRun();
    s.telemetry.sampleInterval = 100;
    // High load so switch allocation actually contends.
    Simulation sim(NetworkConfig::vc16(), uniform(0.20), s);
    sim.run();

    const auto* reg = sim.metrics();
    ASSERT_NE(reg, nullptr);
    const std::size_t stalls = reg->find("router.5.sa_stalls");
    ASSERT_NE(stalls, telemetry::MetricsRegistry::npos);
    EXPECT_GT(reg->read(stalls), 0.0);
}

// --- Sweep determinism ----------------------------------------------

TEST(SweepTelemetry, ExportsAreBitIdenticalAcrossJobs)
{
    const NetworkConfig net = NetworkConfig::vc16();
    const TrafficConfig traffic = uniform(0.05);
    SimConfig s;
    s.samplePackets = 200;
    s.maxCycles = 100000;
    s.telemetry.sampleInterval = 200;
    s.telemetry.traceEnabled = true;
    s.telemetry.traceCapacity = 4096;
    const std::vector<double> rates{0.03, 0.06, 0.09};

    const auto serial =
        Sweep::overRates(net, traffic, s, rates, SweepOptions::withJobs(1));
    const auto parallel =
        Sweep::overRates(net, traffic, s, rates, SweepOptions::withJobs(4));

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].metricsCsv.empty());
        EXPECT_FALSE(serial[i].traceJson.empty());
        EXPECT_EQ(serial[i].metricsCsv, parallel[i].metricsCsv) << i;
        EXPECT_EQ(serial[i].traceJson, parallel[i].traceJson) << i;
    }
}

TEST(SweepTelemetry, DisabledSweepCapturesNothing)
{
    const auto points = Sweep::overRates(
        NetworkConfig::vc16(), uniform(0.05), smallRun(), {0.05},
        SweepOptions::withJobs(1));
    ASSERT_EQ(points.size(), 1u);
    EXPECT_TRUE(points[0].metricsCsv.empty());
    EXPECT_TRUE(points[0].traceJson.empty());
}

} // namespace
