/**
 * @file
 * Tests for the table/CSV report formatting helpers.
 */

#include <gtest/gtest.h>

#include "core/report.hh"

namespace {

using namespace orion::report;

TEST(Fmt, FixedPrecision)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(1.0, 0), "1");
    EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(FmtEng, PicksEngineeringPrefix)
{
    EXPECT_EQ(fmtEng(1.5e-12, "J", 2), "1.50 pJ");
    EXPECT_EQ(fmtEng(2.0e-15, "F", 1), "2.0 fF");
    EXPECT_EQ(fmtEng(3.0e9, "Hz", 0), "3 GHz");
    EXPECT_EQ(fmtEng(0.25, "W", 2), "250.00 mW");
    EXPECT_EQ(fmtEng(12.0, "W", 1), "12.0 W");
}

TEST(FmtEng, HandlesZeroAndNegative)
{
    EXPECT_EQ(fmtEng(0.0, "J", 2), "0.00 J");
    EXPECT_EQ(fmtEng(-1.5e-3, "A", 1), "-1.5 mA");
}

TEST(Table, FormatsAligned)
{
    Table t;
    t.title = "demo";
    t.headers = {"name", "value"};
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string s = formatTable(t);
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
    EXPECT_NE(s.find("+-------+-------+"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t;
    t.headers = {"a", "b", "c"};
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(formatCsv(t), "a,b,c\n1,2,3\n");
}

TEST(TableDeath, RowArityChecked)
{
    Table t;
    t.headers = {"a", "b"};
    EXPECT_DEATH(t.addRow({"only-one"}), "row.size");
}

} // namespace
