/**
 * @file
 * Tests for fault-tolerant source rerouting: the disabled-by-default
 * fast path, baseline equivalence when no outage ever fires, detour
 * delivery around a permanent mid-run outage, route convergence under
 * link flapping (outage -> repair -> outage), fail-fast unreachable
 * accounting when a destination is partitioned, and bit-identical
 * sweep results at any job count — all under the paranoid audits.
 */

#include <gtest/gtest.h>

#include "core/check.hh"
#include "core/config.hh"
#include "core/simulation.hh"
#include "core/sweep.hh"
#include "net/fault.hh"
#include "net/health.hh"

namespace {

using namespace orion;

TrafficConfig
uniform(double rate)
{
    TrafficConfig t;
    t.injectionRate = rate;
    return t;
}

SimConfig
shortRun()
{
    SimConfig s;
    s.warmupCycles = 500;
    s.samplePackets = 1500;
    s.maxCycles = 100000;
    return s;
}

/** A 1D 4-node ring (vc16 discipline) — small enough to partition a
 * node by killing its two outgoing links. */
NetworkConfig
ring4()
{
    NetworkConfig c = NetworkConfig::vc16();
    c.net.dims = {4};
    return c;
}

// --- disabled-by-default fast path ------------------------------------

TEST(Reroute, DisabledByDefaultBuildsNoMonitor)
{
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), shortRun());
    EXPECT_EQ(sim.healthMonitor(), nullptr);
    EXPECT_EQ(sim.faultInjector(), nullptr);
}

TEST(Reroute, EnabledWithoutOutagesMatchesBaseline)
{
    // Sources draw the normal DOR route before consulting the health
    // view, so enabling rerouting without any outage must not perturb
    // the RNG streams or the schedule.
    const SimConfig base = shortRun();
    SimConfig rr = shortRun();
    rr.rerouteOnOutage = true;

    Simulation a(NetworkConfig::vc16(), uniform(0.05), base);
    Simulation b(NetworkConfig::vc16(), uniform(0.05), rr);
    const Report ra = a.run();
    const Report rb = b.run();

    ASSERT_NE(b.healthMonitor(), nullptr);
    EXPECT_TRUE(rb.completed);
    EXPECT_EQ(rb.reroutes, 0u);
    EXPECT_EQ(rb.packetsUnreachable, 0u);
    EXPECT_DOUBLE_EQ(ra.avgLatencyCycles, rb.avgLatencyCycles);
    EXPECT_EQ(ra.sampleEjected, rb.sampleEjected);
}

// --- delivery under outages (paranoid audits) -------------------------

class RerouteRecoveryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_ = core::checkLevel();
        core::setCheckLevel(core::CheckLevel::Paranoid);
    }
    void TearDown() override { core::setCheckLevel(saved_); }

  private:
    core::CheckLevel saved_{};
};

TEST_F(RerouteRecoveryTest, PermanentMidRunOutageReroutesAndDelivers)
{
    SimConfig s = shortRun();
    s.rerouteOnOutage = true;
    s.auditCycles = 256;
    // Link 0 (node 0, +x) dies mid-run and never recovers.
    s.fault.outages.push_back(
        {.start = 1500, .end = 1000000, .link = 0});

    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    const Report r = sim.run();

    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.stopReason, StopReason::Completed);
    EXPECT_GT(r.reroutes, 0u);
    // A 4x4 torus stays connected with one dead link: nothing may be
    // declared unreachable, and >= 95% of the sample must arrive.
    EXPECT_EQ(r.packetsUnreachable, 0u);
    EXPECT_GE(static_cast<double>(r.sampleEjected),
              0.95 * static_cast<double>(r.sampleInjected));
    EXPECT_NO_THROW(sim.auditor().auditAll());
}

TEST_F(RerouteRecoveryTest, FlappingLinkConvergesAndDelivers)
{
    // Outage -> repair -> outage on the same link: sources must
    // converge back to DOR routes after each repair and detour again
    // on the second outage.
    SimConfig s = shortRun();
    s.rerouteOnOutage = true;
    s.auditCycles = 256;
    s.fault.outages.push_back({.start = 600, .end = 1200, .link = 0});
    s.fault.outages.push_back({.start = 1800, .end = 2400, .link = 0});

    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    const Report r = sim.run();

    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.reroutes, 0u);
    EXPECT_EQ(r.packetsUnreachable, 0u);
    EXPECT_GE(static_cast<double>(r.sampleEjected),
              0.95 * static_cast<double>(r.sampleInjected));
    EXPECT_NO_THROW(sim.auditor().auditAll());

    // Flapping is deterministic: an identical run reproduces the
    // exact latency and fault log.
    Simulation again(NetworkConfig::vc16(), uniform(0.05), s);
    const Report r2 = again.run();
    EXPECT_DOUBLE_EQ(r.avgLatencyCycles, r2.avgLatencyCycles);
    EXPECT_EQ(r.faultLogHash, r2.faultLogHash);
    EXPECT_EQ(r.reroutes, r2.reroutes);
}

TEST_F(RerouteRecoveryTest, PartitionedDestinationFailsFast)
{
    // Kill both outgoing links of node 0 on a 4-node ring for the
    // whole run: node 0 can reach nobody, so its packets must be
    // dropped as unreachable at the source instead of burning the
    // retry budget, while the surviving 1-2-3 pairs still deliver.
    SimConfig s = shortRun();
    s.rerouteOnOutage = true;
    s.auditCycles = 256;
    s.fault.outages.push_back({.start = 0, .end = 1000000, .link = 0});
    s.fault.outages.push_back({.start = 0, .end = 1000000, .link = 1});

    Simulation sim(ring4(), uniform(0.05), s);
    const Report r = sim.run();

    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.stopReason, StopReason::Completed);
    EXPECT_GT(r.packetsUnreachable, 0u);
    // Ties in 1D DOR make some surviving-pair routes cross node 0's
    // dead links; those detour instead of dying.
    EXPECT_GT(r.reroutes, 0u);
    EXPECT_NO_THROW(sim.auditor().auditAll());
}

// --- sweep determinism ------------------------------------------------

TEST(Reroute, SweepResultsBitIdenticalAcrossJobCounts)
{
    SimConfig s = shortRun();
    s.samplePackets = 600;
    s.rerouteOnOutage = true;
    s.fault.linkBitErrorRate = 2e-6;
    s.fault.outages.push_back({.start = 600, .end = 1200, .link = 0});

    const NetworkConfig net = NetworkConfig::vc16();
    const TrafficConfig t = uniform(0.05);
    const std::vector<double> rates{0.03, 0.05};
    const auto serial = Sweep::overRates(net, t, s, rates, SweepOptions::withJobs(1));
    const auto threaded =
        Sweep::overRates(net, t, s, rates, SweepOptions::withJobs(3));

    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const Report& a = serial[i].report;
        const Report& b = threaded[i].report;
        EXPECT_DOUBLE_EQ(a.avgLatencyCycles, b.avgLatencyCycles);
        EXPECT_EQ(a.faultLogHash, b.faultLogHash);
        EXPECT_EQ(a.reroutes, b.reroutes);
        EXPECT_EQ(a.packetsLost, b.packetsLost);
        EXPECT_EQ(a.packetsUnreachable, b.packetsUnreachable);
        EXPECT_EQ(a.completed, b.completed);
    }
}

} // namespace
