/**
 * @file
 * Minimal recursive-descent JSON validator shared by the tests —
 * enough to prove an emitter (trace writer, run manifest, heartbeat)
 * produces structurally valid JSON (balanced, quoted, escaped)
 * without pulling a JSON library into the toolchain.
 */

#ifndef ORION_TESTS_JSON_VALIDATOR_HH
#define ORION_TESTS_JSON_VALIDATOR_HH

#include <cctype>
#include <cstddef>
#include <string>

namespace orion::test {

class JsonValidator
{
  public:
    explicit JsonValidator(const std::string& text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char* word)
    {
        for (const char* p = word; *p; ++p) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
            ++pos_;
        }
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

} // namespace orion::test

#endif // ORION_TESTS_JSON_VALIDATOR_HH
