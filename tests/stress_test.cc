/**
 * @file
 * Deadlock-freedom and robustness stress tests: every preset router
 * configuration driven well past saturation, across seeds, with the
 * progress watchdog armed — the network must keep moving (the bubble/
 * dateline disciplines hold) and conserve packets.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/config.hh"
#include "core/simulation.hh"

namespace {

using namespace orion;

NetworkConfig
presetByName(const std::string& name)
{
    if (name == "wh64")
        return NetworkConfig::wh64();
    if (name == "vc16")
        return NetworkConfig::vc16();
    if (name == "vc64")
        return NetworkConfig::vc64();
    if (name == "vc128")
        return NetworkConfig::vc128();
    if (name == "xb")
        return NetworkConfig::xb();
    return NetworkConfig::cb();
}

class OversaturationStress
    : public ::testing::TestWithParam<
          std::tuple<const char*, std::uint64_t>>
{
};

TEST_P(OversaturationStress, NoDeadlockPastSaturation)
{
    const auto& [name, seed] = GetParam();
    NetworkConfig cfg = presetByName(name);

    TrafficConfig traffic;
    traffic.pattern = net::TrafficPattern::UniformRandom;
    traffic.injectionRate = 0.25; // far past every preset's saturation

    SimConfig sim;
    sim.samplePackets = 4000;
    sim.maxCycles = 40000;
    sim.watchdogCycles = 3000;
    sim.seed = seed;

    Simulation s(cfg, traffic, sim);
    const Report r = s.run();

    // Saturated runs need not complete, but they must never stall.
    EXPECT_FALSE(r.deadlockSuspected)
        << name << " deadlocked at seed " << seed;
    // The network keeps delivering at a meaningful rate.
    EXPECT_GT(r.acceptedFlitsPerNodePerCycle, 0.2);
    // Conservation: nothing delivered that wasn't injected.
    EXPECT_LE(s.network().totalEjected(), s.network().totalInjected());
}

INSTANTIATE_TEST_SUITE_P(
    Presets, OversaturationStress,
    ::testing::Combine(::testing::Values("wh64", "vc16", "vc64",
                                         "vc128", "xb", "cb"),
                       ::testing::Values(1u, 99u)),
    [](const auto& test_info) {
        return std::string(std::get<0>(test_info.param)) + "_seed" +
               std::to_string(std::get<1>(test_info.param));
    });

class AdversarialPattern
    : public ::testing::TestWithParam<net::TrafficPattern>
{
};

TEST_P(AdversarialPattern, Vc64SurvivesHighLoad)
{
    NetworkConfig cfg = NetworkConfig::vc64();
    TrafficConfig traffic;
    traffic.pattern = GetParam();
    traffic.injectionRate = 0.2;
    traffic.broadcastSource = 9;
    traffic.hotspotNode = 9;

    SimConfig sim;
    sim.samplePackets = 3000;
    sim.maxCycles = 40000;
    sim.watchdogCycles = 3000;

    Simulation s(cfg, traffic, sim);
    const Report r = s.run();
    EXPECT_FALSE(r.deadlockSuspected);
    EXPECT_GT(s.network().totalEjected(), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, AdversarialPattern,
    ::testing::Values(net::TrafficPattern::Tornado,
                      net::TrafficPattern::Transpose,
                      net::TrafficPattern::BitComplement,
                      net::TrafficPattern::Hotspot,
                      net::TrafficPattern::Broadcast));

TEST(Stress, SourceQueueAbsorbsOversubscription)
{
    // Past saturation the source queues grow (latency includes the
    // queuing time, paper 4.1): latency must blow far past zero-load.
    NetworkConfig cfg = NetworkConfig::vc16();
    TrafficConfig traffic;
    traffic.injectionRate = 0.25;
    SimConfig sim;
    sim.samplePackets = 3000;
    sim.maxCycles = 30000;
    Simulation s(cfg, traffic, sim);
    const Report r = s.run();
    EXPECT_GT(r.avgLatencyCycles, 100.0);
    std::size_t queued = 0;
    for (int n = 0; n < 16; ++n)
        queued += s.network().endpoint(n).sourceQueueLength();
    EXPECT_GT(queued, 100u);
}

TEST(Stress, LongRunEnergyKeepsAccumulating)
{
    // Energy counters must be monotone over a long saturated run (no
    // overflow/reset artifacts).
    NetworkConfig cfg = NetworkConfig::vc64();
    TrafficConfig traffic;
    traffic.injectionRate = 0.2;
    SimConfig sim;
    Simulation s(cfg, traffic, sim);
    s.step(2000);
    const double e1 = s.monitor().totalEnergy();
    s.step(2000);
    const double e2 = s.monitor().totalEnergy();
    EXPECT_GT(e1, 0.0);
    EXPECT_GT(e2, 1.5 * e1);
}

} // namespace
