/**
 * @file
 * Tests for the crossbar power models (Table 3): matrix geometry and
 * capacitance composition, mux-tree comparison, control energy, and
 * parameter sweeps.
 */

#include <gtest/gtest.h>

#include "power/crossbar_model.hh"
#include "tech/capacitance.hh"

namespace {

using namespace orion;
using namespace orion::power;
using namespace orion::tech;

const TechNode kTech = TechNode::onChip100nm();

TEST(MatrixCrossbar, LineLengthsFollowGrid)
{
    // Input lines cross O output columns of W wires; output lines
    // cross I input rows (at doubled track pitch).
    const CrossbarModel m(kTech, {5, 5, 256, CrossbarKind::Matrix, 0.0});
    const double pitch = 2.0 * kTech.wirePitchUm;
    EXPECT_DOUBLE_EQ(m.inputLengthUm(), 5.0 * 256.0 * pitch);
    EXPECT_DOUBLE_EQ(m.outputLengthUm(), 5.0 * 256.0 * pitch);
    EXPECT_DOUBLE_EQ(m.areaUm2(),
                     m.inputLengthUm() * m.outputLengthUm());
}

TEST(MatrixCrossbar, AsymmetricPortsGiveAsymmetricLines)
{
    const CrossbarModel m(kTech, {3, 7, 64, CrossbarKind::Matrix, 0.0});
    EXPECT_GT(m.inputLengthUm(), m.outputLengthUm() * 2.0);
}

TEST(MatrixCrossbar, InputCapComposition)
{
    const CrossbarParams p{4, 4, 32, CrossbarKind::Matrix, 0.0};
    const CrossbarModel m(kTech, p);

    const Transistor t_cross =
        defaultTransistor(kTech, Role::CrossbarCrosspoint);
    const double wire_and_diff =
        cw(kTech, m.inputLengthUm()) + 4.0 * cd(kTech, t_cross);
    const Transistor t_id = sizeDriverForLoad(
        kTech, Role::CrossbarInputDriver, wire_and_diff);
    EXPECT_DOUBLE_EQ(m.inputCap(), wire_and_diff + cd(kTech, t_id));
}

TEST(MatrixCrossbar, OutputCapIncludesSizedDriverGate)
{
    const double load = 500e-15;
    const CrossbarParams p{4, 4, 32, CrossbarKind::Matrix, load};
    const CrossbarModel m(kTech, p);

    const Transistor t_cross =
        defaultTransistor(kTech, Role::CrossbarCrosspoint);
    const double wire_and_diff =
        cw(kTech, m.outputLengthUm()) + 4.0 * cd(kTech, t_cross);
    const Transistor t_od = sizeDriverForLoad(
        kTech, Role::CrossbarOutputDriver, wire_and_diff + load);
    EXPECT_DOUBLE_EQ(m.outputCap(), wire_and_diff + cg(kTech, t_od));
}

TEST(MatrixCrossbar, HeavierOutputLoadRaisesTraversalEnergy)
{
    const CrossbarModel light(kTech, {5, 5, 128, CrossbarKind::Matrix,
                                      0.0});
    const CrossbarModel heavy(kTech, {5, 5, 128, CrossbarKind::Matrix,
                                      1.08e-12});
    EXPECT_GT(heavy.avgTraversalEnergy(), light.avgTraversalEnergy());
}

TEST(MatrixCrossbar, ControlCapGatesOneColumn)
{
    // C_xb_ctr = W C_g(T_cross) + C_w(L_in / 2)
    const CrossbarParams p{5, 5, 64, CrossbarKind::Matrix, 0.0};
    const CrossbarModel m(kTech, p);
    const Transistor t_cross =
        defaultTransistor(kTech, Role::CrossbarCrosspoint);
    EXPECT_DOUBLE_EQ(m.controlCap(),
                     64.0 * cg(kTech, t_cross) +
                         cw(kTech, m.inputLengthUm() / 2.0));
    EXPECT_DOUBLE_EQ(m.controlEnergy(),
                     kTech.switchEnergy(m.controlCap()));
}

TEST(Crossbar, TraversalEnergyLinearInToggledBits)
{
    const CrossbarModel m(kTech, {5, 5, 256, CrossbarKind::Matrix, 0.0});
    EXPECT_DOUBLE_EQ(m.traversalEnergy(0), 0.0);
    EXPECT_DOUBLE_EQ(m.traversalEnergy(100),
                     100.0 / 50.0 * m.traversalEnergy(50));
    EXPECT_DOUBLE_EQ(m.avgTraversalEnergy(), m.traversalEnergy(128));
}

TEST(MuxTreeCrossbar, HasNoLongInputLines)
{
    const CrossbarModel m(kTech, {8, 8, 64, CrossbarKind::MuxTree, 0.0});
    EXPECT_DOUBLE_EQ(m.inputLengthUm(), 0.0);
    EXPECT_GT(m.outputLengthUm(), 0.0);
}

TEST(MuxTreeCrossbar, CheaperThanMatrixForSameConfig)
{
    // The mux tree trades long broadcast wires for log-depth gates —
    // for wide fabrics its per-bit switched capacitance is lower.
    const CrossbarModel matrix(kTech,
                               {8, 8, 128, CrossbarKind::Matrix, 0.0});
    const CrossbarModel tree(kTech,
                             {8, 8, 128, CrossbarKind::MuxTree, 0.0});
    EXPECT_LT(tree.avgTraversalEnergy(), matrix.avgTraversalEnergy());
}

/** Property sweep over port counts and widths. */
class CrossbarSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CrossbarSweep, EnergyGrowsWithPortsAndWidth)
{
    const auto [ports, width] = GetParam();
    for (const auto kind :
         {CrossbarKind::Matrix, CrossbarKind::MuxTree}) {
        const CrossbarModel base(kTech, {ports, ports, width, kind, 0.0});
        const CrossbarModel more_ports(
            kTech, {2 * ports, 2 * ports, width, kind, 0.0});
        const CrossbarModel wider(kTech,
                                  {ports, ports, 2 * width, kind, 0.0});
        EXPECT_GT(more_ports.avgTraversalEnergy(),
                  base.avgTraversalEnergy());
        EXPECT_GT(wider.avgTraversalEnergy(), base.avgTraversalEnergy());
        EXPECT_GT(base.avgTraversalEnergy(), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CrossbarSweep,
    ::testing::Values(std::tuple{2u, 32u}, std::tuple{4u, 64u},
                      std::tuple{5u, 128u}, std::tuple{5u, 256u},
                      std::tuple{8u, 256u}));

} // namespace
