/**
 * @file
 * Randomized configuration torture tests: pseudo-random (but
 * deterministic) network configurations driven with random traffic,
 * checking the invariants that must hold for *every* legal
 * configuration — delivery, conservation, watchdog silence below
 * saturation, and energy/event consistency. Plus file-format torture:
 * checkpoint journals under mutation and the heartbeat file under
 * concurrent writers.
 */

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "core/cache.hh"
#include "core/check.hh"
#include "core/checkpoint.hh"
#include "core/config.hh"
#include "core/progress.hh"
#include "core/simulation.hh"
#include "json_validator.hh"
#include "sim/rng.hh"

namespace {

using namespace orion;

/** Build a random-but-valid configuration from @p seed. */
NetworkConfig
randomConfig(std::uint64_t seed)
{
    sim::Rng rng(seed);
    NetworkConfig c = NetworkConfig::vc16();

    // Topology: 2-D, radices 2-4 (kept small so low rates still load
    // the network within the test budget).
    const unsigned kx = 2 + static_cast<unsigned>(rng.below(3));
    const unsigned ky = 2 + static_cast<unsigned>(rng.below(3));
    c.net.dims = {kx, ky};
    c.net.wrap = rng.chance(0.7);

    c.net.packetLength = 1 + static_cast<unsigned>(rng.below(6));
    c.net.flitBits = 16u << rng.below(3); // 16/32/64

    const unsigned kind = static_cast<unsigned>(rng.below(3));
    if (kind == 0) {
        c.net.routerKind = net::RouterKind::Wormhole;
        c.net.vcs = 1;
        c.net.bufferDepth =
            2 * c.net.packetLength +
            static_cast<unsigned>(rng.below(16));
        c.net.deadlock = c.net.wrap ? router::DeadlockMode::Bubble
                                    : router::DeadlockMode::None;
    } else if (kind == 1) {
        c.net.routerKind = net::RouterKind::VirtualChannel;
        c.net.vcs = 2u << rng.below(3); // 2/4/8
        if (rng.chance(0.5)) {
            c.net.deadlock = router::DeadlockMode::Dateline;
            c.net.bufferDepth =
                1 + static_cast<unsigned>(rng.below(12));
        } else {
            c.net.deadlock = router::DeadlockMode::Bubble;
            c.net.bufferDepth =
                c.net.packetLength +
                static_cast<unsigned>(rng.below(8));
        }
        if (!c.net.wrap)
            c.net.deadlock = router::DeadlockMode::None;
        c.net.speculative = rng.chance(0.5);
    } else {
        c.net.routerKind = net::RouterKind::CentralBuffer;
        c.net.vcs = 1;
        c.net.bufferDepth =
            2 * c.net.packetLength +
            static_cast<unsigned>(rng.below(16));
        c.net.deadlock = c.net.wrap ? router::DeadlockMode::Bubble
                                    : router::DeadlockMode::None;
        const unsigned cap =
            4 * (c.net.packetLength + 2 +
                 static_cast<unsigned>(rng.below(32)));
        c.net.centralBuffer = router::CentralBufferRouterParams{
            cap, 1 + static_cast<unsigned>(rng.below(2)),
            1 + static_cast<unsigned>(rng.below(2)), 2};
    }

    const unsigned arb = static_cast<unsigned>(rng.below(3));
    c.net.arbiterKind = arb == 0   ? router::ArbiterKind::Matrix
                        : arb == 1 ? router::ArbiterKind::RoundRobin
                                   : router::ArbiterKind::Queuing;
    c.net.injection = rng.chance(0.5) ? net::InjectionPolicy::SingleVc
                                      : net::InjectionPolicy::SpreadVcs;
    c.net.tieBreak = rng.chance(0.5) ? net::TieBreak::Random
                                     : net::TieBreak::PreferWrap;
    return c;
}

class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ConfigFuzz, InvariantsHoldOnRandomConfig)
{
    // Fuzz at the paranoid check level: every random configuration is
    // audited for flit conservation, credit accounting, and energy
    // sanity at frequent intervals during its run (net/audit.hh). A
    // run that breaks an invariant throws core::CheckFailure and fails
    // the test with a diagnostic naming the node/port.
    const core::CheckLevel saved = core::checkLevel();
    core::setCheckLevel(core::CheckLevel::Paranoid);
    struct LevelGuard
    {
        core::CheckLevel level;
        ~LevelGuard() { core::setCheckLevel(level); }
    } guard{saved};

    const std::uint64_t seed = GetParam();
    const NetworkConfig cfg = randomConfig(seed);
    ASSERT_NO_THROW(cfg.validate()) << "fuzz seed " << seed;

    TrafficConfig traffic;
    traffic.injectionRate = 0.02; // safely below any saturation
    SimConfig sim;
    sim.samplePackets = 400;
    sim.maxCycles = 120000;
    sim.seed = seed;
    sim.auditCycles = 256;

    Simulation s(cfg, traffic, sim);
    const Report r = s.run();

    EXPECT_TRUE(r.completed) << "fuzz seed " << seed;
    EXPECT_FALSE(r.deadlockSuspected) << "fuzz seed " << seed;
    EXPECT_EQ(r.sampleEjected, 400u) << "fuzz seed " << seed;

    // Conservation: nothing delivered that wasn't injected, nothing
    // lost beyond what's still in flight.
    auto& net = s.network();
    EXPECT_LE(net.totalEjected(), net.totalInjected());

    // Latency sane: at least the minimal pipeline time, far below the
    // cycle cap.
    EXPECT_GT(r.avgLatencyCycles, 3.0);
    EXPECT_LT(r.avgLatencyCycles, 500.0);

    // Power accounting consistent: positive, and the breakdown sums
    // to the total.
    EXPECT_GT(r.networkPowerWatts, 0.0);
    EXPECT_NEAR(r.breakdownWatts.total(), r.networkPowerWatts,
                1e-9 * r.networkPowerWatts);

    // Buffered flits all came through buffers: reads never exceed
    // writes.
    const auto writes = r.eventCounts[static_cast<unsigned>(
        sim::EventType::BufferWrite)];
    const auto reads = r.eventCounts[static_cast<unsigned>(
        sim::EventType::BufferRead)];
    EXPECT_LE(reads, writes + 64);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

// --- checkpoint journal corruption fuzzing ----------------------------
//
// Whatever a crash, a bad disk, or a hostile editor does to a journal
// file, loadCheckpoint must end in exactly one of two ways: a clean
// load (possibly with the torn final line dropped) or a structured
// CheckpointError. Never UB, never a crash, never silently wrong
// entries.

namespace journal_fuzz {

std::string
validJournal(std::uint64_t fingerprint, unsigned entries)
{
    std::string out = core::checkpointHeader(fingerprint) + "\n";
    core::CheckpointEntry e;
    e.report.avgLatencyCycles = 18.19;
    e.report.sampleInjected = 200;
    e.report.sampleEjected = 200;
    e.report.completed = true;
    e.report.stopReason = StopReason::Completed;
    e.report.nodePowerWatts = {0.25, 1.0 / 3.0};
    for (unsigned i = 0; i < entries; ++i) {
        e.rateIndex = i;
        e.report.offeredLoad = 0.01 * (i + 1);
        out += core::serializeEntry(e) + "\n";
    }
    return out;
}

void
writeJournal(const std::string& path, const std::string& content)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << content;
}

} // namespace journal_fuzz

class JournalFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(JournalFuzz, MutatedJournalLoadsCleanlyOrThrowsStructured)
{
    const std::uint64_t seed = GetParam();
    sim::Rng rng(seed * 7919 + 13);
    const std::uint64_t fp = 0xfeedfacecafebeefULL;
    const std::string valid = journal_fuzz::validJournal(fp, 5);
    const std::string path = testing::TempDir() +
                             "orion_journal_fuzz_" +
                             std::to_string(seed);

    for (unsigned round = 0; round < 40; ++round) {
        std::string mutated = valid;
        switch (rng.below(3)) {
        case 0: // truncate anywhere (the kill-at-random-byte case)
            mutated.resize(rng.below(mutated.size() + 1));
            break;
        case 1: { // flip a random bit
            if (!mutated.empty()) {
                const std::size_t i = static_cast<std::size_t>(
                    rng.below(mutated.size()));
                mutated[i] = static_cast<char>(
                    mutated[i] ^ (1u << rng.below(8)));
            }
            break;
        }
        default: { // splice random garbage into a random offset
            const std::size_t i = static_cast<std::size_t>(
                rng.below(mutated.size() + 1));
            std::string junk;
            for (unsigned k = 0; k < 1 + rng.below(12); ++k)
                junk.push_back(
                    static_cast<char>(32 + rng.below(95)));
            mutated.insert(i, junk);
            break;
        }
        }
        journal_fuzz::writeJournal(path, mutated);
        try {
            const core::CheckpointLoad load =
                core::loadCheckpoint(path, fp);
            // A clean load must only ever contain entries that exist
            // in the pristine journal, byte-faithfully: coordinates
            // in range and reports intact.
            EXPECT_LE(load.entries.size(), 5u);
            for (const auto& e : load.entries) {
                EXPECT_LT(e.rateIndex, 5u);
                EXPECT_EQ(e.report.sampleEjected, 200u);
                EXPECT_EQ(e.report.offeredLoad,
                          0.01 * (static_cast<double>(e.rateIndex) +
                                  1.0));
            }
        } catch (const core::CheckpointError&) {
            // Structured rejection is the other acceptable outcome.
        }
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- heartbeat atomic-replacement fuzzing ------------------------------
//
// The heartbeat file is replaced via tmp + rename while several
// threads complete cells and a background refresher runs on a
// millisecond period. A concurrent reader (tools/orion_status.py's
// position) must never observe a torn file: every non-empty read
// parses as a complete orion-heartbeat-v1 JSON document.

TEST(HeartbeatFuzz, ConcurrentWritersNeverTearTheFile)
{
    const std::string path =
        testing::TempDir() + "orion_hb_fuzz.json";
    std::remove(path.c_str());

    constexpr unsigned kWriters = 4;
    constexpr unsigned kCellsPerWriter = 64;

    core::ProgressTracker::Options po;
    po.totalCells = kWriters * kCellsPerWriter;
    po.jobs = kWriters;
    po.heartbeatPath = path;
    po.heartbeatIntervalSeconds = 0.001; // refresher hammers too
    core::ProgressTracker tracker(po);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> torn{0};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            std::ifstream in(path, std::ios::binary);
            if (!in)
                continue;
            std::ostringstream ss;
            ss << in.rdbuf();
            const std::string snapshot = ss.str();
            if (snapshot.empty()) {
                // An empty read would itself be a torn observation:
                // rename never exposes a half-written file.
                ++torn;
                continue;
            }
            ++reads;
            test::JsonValidator v(snapshot);
            if (!v.valid() ||
                snapshot.find("orion-heartbeat-v1") ==
                    std::string::npos)
                ++torn;
        }
    });

    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&tracker, w] {
            for (unsigned i = 0; i < kCellsPerWriter; ++i) {
                core::ProgressScope scope(&tracker, i, w);
                if (std::atomic<std::uint64_t>* c = scope.cycles())
                    c->store(i, std::memory_order_relaxed);
                scope.end((i % 7) == 0);
            }
        });
    }
    for (std::thread& t : writers)
        t.join();
    tracker.finalize();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(tracker.done(),
              std::uint64_t{kWriters} * kCellsPerWriter);
    EXPECT_GT(reads.load(), 0u)
        << "the final heartbeat alone guarantees one read";
    EXPECT_EQ(torn.load(), 0u)
        << "a reader observed a torn/empty heartbeat";

    const std::string final_hb = [&] {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }();
    test::JsonValidator v(final_hb);
    ASSERT_TRUE(v.valid()) << final_hb;
    EXPECT_NE(final_hb.find("\"finished\":true"), std::string::npos);
    std::remove(path.c_str());
}

// --- result-cache corruption fuzzing ----------------------------------
//
// The cache behind orion_served is *forgiving* where the journal is
// strict: whatever a crash or bad disk does to a segment file, opening
// the cache must NEVER throw for entry damage — corrupt lines are
// quarantined and their keys simply miss. Keys that do hit must return
// the pristine bytes (every line carries its own checksum, so damage
// can flunk a line but never alter one).

namespace cache_fuzz {

core::CheckpointEntry
cacheEntry(unsigned i)
{
    core::CheckpointEntry e;
    e.report.completed = true;
    e.report.stopReason = StopReason::Completed;
    e.report.avgLatencyCycles = 21.5 + i;
    e.report.offeredLoad = 0.01 * (i + 1);
    e.report.sampleInjected = 300;
    e.report.sampleEjected = 300;
    return e;
}

} // namespace cache_fuzz

class CacheFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheFuzz, MutatedSegmentLoadsCleanlyWithQuarantine)
{
    const std::uint64_t seed = GetParam();
    sim::Rng rng(seed * 6151 + 7);
    constexpr unsigned kKeys = 6;

    core::CacheOptions opts;
    opts.dir = testing::TempDir() + "orion_cache_fuzz_" +
               std::to_string(seed);

    for (unsigned round = 0; round < 40; ++round) {
        // Fresh pristine segment each round.
        {
            core::ResultCache cache(opts);
            for (unsigned i = 0; i < kKeys; ++i)
                cache.insert(1000 + i, cache_fuzz::cacheEntry(i));
        }
        const std::string seg =
            opts.dir + "/" + core::ResultCache::segmentFileName(1);
        std::string bytes;
        {
            std::ifstream in(seg, std::ios::binary);
            std::ostringstream ss;
            ss << in.rdbuf();
            bytes = ss.str();
        }

        std::string mutated = bytes;
        switch (rng.below(3)) {
        case 0: // truncate anywhere (SIGKILL mid-append)
            mutated.resize(rng.below(mutated.size() + 1));
            break;
        case 1: { // flip a random bit
            if (!mutated.empty()) {
                const std::size_t i = static_cast<std::size_t>(
                    rng.below(mutated.size()));
                mutated[i] = static_cast<char>(
                    mutated[i] ^ (1u << rng.below(8)));
            }
            break;
        }
        default: { // splice random garbage into a random offset
            const std::size_t i = static_cast<std::size_t>(
                rng.below(mutated.size() + 1));
            std::string junk;
            for (unsigned k = 0; k < 1 + rng.below(12); ++k)
                junk.push_back(
                    static_cast<char>(32 + rng.below(95)));
            mutated.insert(i, junk);
            break;
        }
        }
        {
            std::ofstream out(seg,
                              std::ios::binary | std::ios::trunc);
            out << mutated;
        }

        // Contract: construction never throws for entry damage, and
        // every key either misses or returns pristine bytes.
        core::ResultCache cache(opts);
        for (unsigned i = 0; i < kKeys; ++i) {
            core::CheckpointEntry out;
            if (cache.lookup(1000 + i, out)) {
                EXPECT_EQ(core::serializeEntry(out),
                          core::serializeEntry(
                              cache_fuzz::cacheEntry(i)))
                    << "fuzz seed " << seed << " round " << round
                    << " key " << i;
            }
        }

        // Scrub the directory for the next round (the mutated file
        // may have been renamed aside by quarantine counting; the
        // cache never deletes corrupt bytes itself).
        std::remove(seg.c_str());
        for (unsigned id = 1; id < 8; ++id) {
            std::remove((opts.dir + "/" +
                         core::ResultCache::segmentFileName(id))
                            .c_str());
        }
        std::remove((opts.dir + "/cache.manifest.json").c_str());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
