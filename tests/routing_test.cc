/**
 * @file
 * Tests for source dimension-ordered routing: minimality, dimension
 * order (y-first), ring-entry flags, and dateline VC-class assignment.
 */

#include <gtest/gtest.h>

#include "net/routing.hh"
#include "net/topology.hh"
#include "sim/rng.hh"

namespace {

using namespace orion;
using namespace orion::net;
using orion::router::DeadlockMode;
using orion::router::RouteHop;

/** Walk a route hop-by-hop and return the node sequence. */
std::vector<int>
walk(const Topology& topo, int src,
     const std::vector<RouteHop>& route)
{
    std::vector<int> nodes{src};
    int cur = src;
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
        cur = topo.neighbor(cur, route[i].port);
        EXPECT_GE(cur, 0);
        nodes.push_back(cur);
    }
    return nodes;
}

class RoutingTest : public ::testing::Test
{
  protected:
    Topology topo_{{4, 4}, true};
    DorRouting dor_{topo_, DorRouting::defaultOrder(topo_),
                    DeadlockMode::Dateline};
    sim::Rng rng_{11};
};

TEST_F(RoutingTest, RouteEndsWithEjection)
{
    const auto route = dor_.route(0, 5, rng_);
    ASSERT_FALSE(route.empty());
    EXPECT_EQ(route.back().port, topo_.localPort());
}

TEST_F(RoutingTest, RouteReachesDestinationMinimally)
{
    for (int src = 0; src < 16; ++src) {
        for (int dst = 0; dst < 16; ++dst) {
            if (src == dst)
                continue;
            const auto route = dor_.route(src, dst, rng_);
            // Hops = minimal network hops + 1 ejection entry.
            EXPECT_EQ(route.size(),
                      topo_.minimalHops(src, dst) + 1);
            const auto nodes = walk(topo_, src, route);
            EXPECT_EQ(nodes.back(), dst);
        }
    }
}

TEST_F(RoutingTest, YDimensionRoutedFirst)
{
    // Paper Section 4.3: "In our dimension-ordered routing, we route
    // along the y-axis first."
    const int src = topo_.nodeAt({0, 0});
    const int dst = topo_.nodeAt({1, 1});
    const auto route = dor_.route(src, dst, rng_);
    ASSERT_EQ(route.size(), 3u);
    EXPECT_EQ(topo_.portDimension(route[0].port), 1u); // y first
    EXPECT_EQ(topo_.portDimension(route[1].port), 0u); // then x
}

TEST_F(RoutingTest, DimensionsAreNeverInterleaved)
{
    sim::Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        const int src = static_cast<int>(rng.below(16));
        int dst = static_cast<int>(rng.below(16));
        if (dst == src)
            dst = (dst + 1) % 16;
        const auto route = dor_.route(src, dst, rng);
        // Network hops must form contiguous runs per dimension.
        int last_dim = -1;
        std::vector<bool> seen(2, false);
        for (std::size_t i = 0; i + 1 < route.size(); ++i) {
            const int d =
                static_cast<int>(topo_.portDimension(route[i].port));
            if (d != last_dim) {
                EXPECT_FALSE(seen[static_cast<unsigned>(d)])
                    << "dimension revisited";
                seen[static_cast<unsigned>(d)] = true;
                last_dim = d;
            }
        }
    }
}

TEST_F(RoutingTest, NewRingFlagsMarkRingEntries)
{
    const int src = topo_.nodeAt({0, 0});
    const int dst = topo_.nodeAt({2, 2});
    const auto route = dor_.route(src, dst, rng_);
    ASSERT_EQ(route.size(), 5u);
    EXPECT_TRUE(route[0].newRing);  // entering the y ring
    EXPECT_FALSE(route[1].newRing); // continuing in y
    EXPECT_TRUE(route[2].newRing);  // turning into the x ring
    EXPECT_FALSE(route[3].newRing);
    EXPECT_FALSE(route[4].newRing); // ejection
}

TEST_F(RoutingTest, DatelineClassSetOnlyWhenCrossingWraparound)
{
    // (0,0) -> (0,1): one +y hop, no wraparound: class 0.
    const auto direct = dor_.route(topo_.nodeAt({0, 0}),
                                   topo_.nodeAt({0, 1}), rng_);
    EXPECT_EQ(direct[0].vcClass, 0);

    // (0,3) -> (0,0): one +y hop through the wraparound: class 1.
    const auto wrap = dor_.route(topo_.nodeAt({0, 3}),
                                 topo_.nodeAt({0, 0}), rng_);
    ASSERT_EQ(wrap.size(), 2u);
    EXPECT_EQ(wrap[0].vcClass, 1);
}

TEST_F(RoutingTest, DatelineClassConstantPerRingTraversal)
{
    sim::Rng rng(31);
    for (int trial = 0; trial < 200; ++trial) {
        const int src = static_cast<int>(rng.below(16));
        int dst = static_cast<int>(rng.below(16));
        if (dst == src)
            dst = (dst + 1) % 16;
        const auto route = dor_.route(src, dst, rng);
        // Within one dimension run, the class must not change.
        for (std::size_t i = 0; i + 2 < route.size(); ++i) {
            if (topo_.portDimension(route[i].port) ==
                    topo_.portDimension(route[i + 1].port) &&
                route[i].port == route[i + 1].port) {
                EXPECT_EQ(route[i].vcClass, route[i + 1].vcClass);
            }
        }
    }
}

TEST_F(RoutingTest, NoDatelineModeLeavesClassZero)
{
    const DorRouting plain(topo_, DorRouting::defaultOrder(topo_),
                           DeadlockMode::Bubble);
    sim::Rng rng(3);
    for (int dst = 1; dst < 16; ++dst) {
        const auto route = plain.route(0, dst, rng);
        for (const auto& hop : route)
            EXPECT_EQ(hop.vcClass, 0);
    }
}

TEST_F(RoutingTest, HalfWayTiesUseBothDirections)
{
    // Offset-2 destinations on a 4-ring must statistically split
    // between the two directions (preserves Figure 6 symmetry).
    sim::Rng rng(77);
    const int src = topo_.nodeAt({0, 0});
    const int dst = topo_.nodeAt({2, 0});
    int plus = 0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
        const auto route = dor_.route(src, dst, rng);
        if (topo_.portIsPlus(route[0].port))
            ++plus;
    }
    EXPECT_GT(plus, trials / 2 - 60);
    EXPECT_LT(plus, trials / 2 + 60);
}

TEST(RoutingMesh, NoWraparoundEver)
{
    const Topology mesh({4, 4}, false);
    const DorRouting dor(mesh, DorRouting::defaultOrder(mesh),
                         DeadlockMode::None);
    sim::Rng rng(1);
    for (int src = 0; src < 16; ++src) {
        for (int dst = 0; dst < 16; ++dst) {
            if (src == dst)
                continue;
            const auto route = dor.route(src, dst, rng);
            int cur = src;
            for (std::size_t i = 0; i + 1 < route.size(); ++i) {
                cur = mesh.neighbor(cur, route[i].port);
                ASSERT_GE(cur, 0) << "route fell off a mesh edge";
            }
            EXPECT_EQ(cur, dst);
        }
    }
}

TEST(RoutingOrder, CustomDimensionOrderRespected)
{
    const Topology topo({4, 4}, true);
    const DorRouting xfirst(topo, {0, 1}, DeadlockMode::None);
    sim::Rng rng(2);
    const auto route =
        xfirst.route(topo.nodeAt({0, 0}), topo.nodeAt({1, 1}), rng);
    ASSERT_EQ(route.size(), 3u);
    EXPECT_EQ(topo.portDimension(route[0].port), 0u); // x first
    EXPECT_EQ(topo.portDimension(route[1].port), 1u);
}

} // namespace
