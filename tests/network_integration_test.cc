/**
 * @file
 * Network-level integration tests: flit conservation, correct
 * delivery, zero-load latency vs. the analytic pipeline model,
 * latency monotonicity in load, determinism, and module counts.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/simulation.hh"

namespace {

using namespace orion;

SimConfig
quickSim(std::uint64_t seed = 1, std::uint64_t sample = 1500)
{
    SimConfig s;
    s.samplePackets = sample;
    s.maxCycles = 400000;
    s.seed = seed;
    return s;
}

TrafficConfig
uniform(double rate)
{
    TrafficConfig t;
    t.pattern = net::TrafficPattern::UniformRandom;
    t.injectionRate = rate;
    return t;
}

TEST(NetworkIntegration, AllSamplePacketsDelivered)
{
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), quickSim());
    const Report r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.deadlockSuspected);
    EXPECT_EQ(r.sampleInjected, 1500u);
    EXPECT_EQ(r.sampleEjected, 1500u);
}

TEST(NetworkIntegration, FlitConservation)
{
    Simulation sim(NetworkConfig::vc16(), uniform(0.06), quickSim());
    sim.run();
    auto& net = sim.network();
    // Every packet not in flight was fully ejected: ejected packets
    // times packet length equals ejected flits (no loss, no
    // duplication).
    std::uint64_t flits = 0;
    std::uint64_t pkts = 0;
    for (int n = 0; n < 16; ++n) {
        flits += net.endpoint(n).flitsEjected();
        pkts += net.endpoint(n).packetsEjected();
    }
    // flitsEjected was reset at the measurement boundary; re-derive
    // over the measured window only: every ejected packet in the
    // window contributed exactly 5 flits, and partially-ejected
    // packets contribute fewer — so flits <= 5 * packets-in-window is
    // too weak. Use event counters instead: PacketEjected events count
    // tails; total flits ejected mod 5 of fully delivered packets.
    EXPECT_GT(flits, 0u);
    EXPECT_GT(pkts, 0u);
    // All injected packets eventually ejected or still in flight:
    EXPECT_GE(net.totalInjected(), net.totalEjected());
    EXPECT_LT(net.totalInjected() - net.totalEjected(), 200u);
}

TEST(NetworkIntegration, ZeroLoadLatencyMatchesPipelineModel)
{
    // At near-zero load: per-hop cost = 3 router stages + 1 link for a
    // VC router; plus serialization of 4 body flits at the ejection
    // and source/injection overhead. Average minimal hops on a 4x4
    // torus (uniform over 15 destinations) = 32/15 + 1 ejection
    // "hop" at the destination router.
    Simulation sim(NetworkConfig::vc16(), uniform(0.002),
                   quickSim(3, 400));
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);

    // Average router traversals = network hops + 1 (destination
    // router); each costs 4 cycles (3-stage pipeline + 1-cycle link
    // or ejection wire). Tail trails head by 4 more cycles, injection
    // adds ~2 (source queue + injection link).
    const double avg_hops = 32.0 / 15.0;
    const double expect = (avg_hops + 1.0) * 4.0 + 4.0 + 2.0;
    EXPECT_NEAR(r.avgLatencyCycles, expect, 2.5);
}

TEST(NetworkIntegration, WormholeZeroLoadIsFasterPerHop)
{
    // 2-stage wormhole pipeline beats the 3-stage VC pipeline at zero
    // load (per the Peh-Dally delay model the paper adopts).
    Simulation vc(NetworkConfig::vc16(), uniform(0.002),
                  quickSim(3, 400));
    Simulation wh(NetworkConfig::wh64(), uniform(0.002),
                  quickSim(3, 400));
    const double vc_lat = vc.run().avgLatencyCycles;
    const double wh_lat = wh.run().avgLatencyCycles;
    EXPECT_LT(wh_lat, vc_lat);
    EXPECT_NEAR(vc_lat - wh_lat, 32.0 / 15.0 + 1.0, 1.5);
}

TEST(NetworkIntegration, LatencyMonotoneInLoad)
{
    double last = 0.0;
    for (const double rate : {0.01, 0.06, 0.12}) {
        Simulation sim(NetworkConfig::vc16(), uniform(rate),
                       quickSim(5));
        const Report r = sim.run();
        ASSERT_TRUE(r.completed) << "rate " << rate;
        EXPECT_GT(r.avgLatencyCycles, last);
        last = r.avgLatencyCycles;
    }
}

TEST(NetworkIntegration, DeterministicAcrossRuns)
{
    Simulation a(NetworkConfig::vc16(), uniform(0.08), quickSim(42));
    Simulation b(NetworkConfig::vc16(), uniform(0.08), quickSim(42));
    const Report ra = a.run();
    const Report rb = b.run();
    EXPECT_DOUBLE_EQ(ra.avgLatencyCycles, rb.avgLatencyCycles);
    EXPECT_DOUBLE_EQ(ra.networkPowerWatts, rb.networkPowerWatts);
    EXPECT_EQ(ra.totalCycles, rb.totalCycles);
    EXPECT_EQ(ra.eventCounts, rb.eventCounts);
}

TEST(NetworkIntegration, SeedChangesStreamButNotScale)
{
    Simulation a(NetworkConfig::vc16(), uniform(0.08), quickSim(1));
    Simulation b(NetworkConfig::vc16(), uniform(0.08), quickSim(2));
    const Report ra = a.run();
    const Report rb = b.run();
    EXPECT_NE(ra.avgLatencyCycles, rb.avgLatencyCycles);
    EXPECT_NEAR(ra.avgLatencyCycles, rb.avgLatencyCycles,
                0.15 * ra.avgLatencyCycles);
}

TEST(NetworkIntegration, ThroughputTracksOfferedLoadBelowSaturation)
{
    const double rate = 0.08;
    Simulation sim(NetworkConfig::vc16(), uniform(rate), quickSim());
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);
    // Accepted flits/node/cycle ~ rate x packetLength.
    EXPECT_NEAR(r.acceptedFlitsPerNodePerCycle, rate * 5.0,
                0.15 * rate * 5.0);
}

TEST(NetworkIntegration, WormholeNetworkDelivers)
{
    Simulation sim(NetworkConfig::wh64(), uniform(0.05), quickSim());
    const Report r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.deadlockSuspected);
}

TEST(NetworkIntegration, CentralBufferNetworkDelivers)
{
    Simulation sim(NetworkConfig::cb(), uniform(0.05), quickSim());
    const Report r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.deadlockSuspected);
}

TEST(NetworkIntegration, XbNetworkDelivers)
{
    Simulation sim(NetworkConfig::xb(), uniform(0.05), quickSim());
    const Report r = sim.run();
    EXPECT_TRUE(r.completed);
}

TEST(NetworkIntegration, MeshNetworkDelivers)
{
    NetworkConfig cfg = NetworkConfig::vc16();
    cfg.net.wrap = false;
    cfg.net.deadlock = router::DeadlockMode::None; // DOR mesh is safe
    Simulation sim(cfg, uniform(0.04), quickSim());
    const Report r = sim.run();
    EXPECT_TRUE(r.completed);
}

TEST(NetworkIntegration, BroadcastTrafficDelivers)
{
    TrafficConfig t;
    t.pattern = net::TrafficPattern::Broadcast;
    t.injectionRate = 0.15;
    t.broadcastSource = 9; // (1, 2)
    Simulation sim(NetworkConfig::vc16(), t, quickSim());
    const Report r = sim.run();
    EXPECT_TRUE(r.completed);
    // Only the source's router sees injection; all others eject.
    auto& net = sim.network();
    EXPECT_GT(net.endpoint(9).packetsInjected(), 0u);
    EXPECT_EQ(net.endpoint(3).packetsInjected(), 0u);
}

TEST(NetworkIntegration, HighLoadSaturatesButKeepsMoving)
{
    // Past saturation the network must not deadlock (dateline/bubble
    // in effect): the watchdog must not fire for VC16 at rate 0.2.
    SimConfig s = quickSim(7, 3000);
    s.maxCycles = 60000;
    Simulation sim(NetworkConfig::vc16(), uniform(0.2), s);
    const Report r = sim.run();
    EXPECT_FALSE(r.deadlockSuspected);
    // Throughput well below offered load (saturated).
    EXPECT_LT(r.acceptedFlitsPerNodePerCycle, 0.2 * 5.0);
    EXPECT_GT(r.acceptedFlitsPerNodePerCycle, 0.3);
}

TEST(NetworkIntegration, ModuleCountMatchesStructure)
{
    Simulation sim(NetworkConfig::vc16(), uniform(0.01), quickSim());
    // 16 routers + 16 endpoint nodes.
    EXPECT_EQ(sim.simulator().moduleCount(), 32u);
    EXPECT_EQ(sim.network().interRouterLinks(), 64u); // 16 x 4 ports
}

TEST(NetworkIntegration, TransposePatternDelivers)
{
    TrafficConfig t;
    t.pattern = net::TrafficPattern::Transpose;
    t.injectionRate = 0.05;
    Simulation sim(NetworkConfig::vc16(), t, quickSim(1, 800));
    const Report r = sim.run();
    EXPECT_TRUE(r.completed);
}

TEST(NetworkIntegration, TornadoPatternDelivers)
{
    TrafficConfig t;
    t.pattern = net::TrafficPattern::Tornado;
    t.injectionRate = 0.05;
    Simulation sim(NetworkConfig::vc16(), t, quickSim(1, 800));
    const Report r = sim.run();
    EXPECT_TRUE(r.completed);
}

} // namespace
