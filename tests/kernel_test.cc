/**
 * @file
 * Tests for the simulation kernel: event bus dispatch, registered
 * channels (1-cycle latency), the simulator loop, the recycling
 * object pool behind flit/packet allocation, and bit-identity of the
 * hot-path optimizations on the hardest configuration (faults +
 * rerouting + deadlock recovery under paranoid audits).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/check.hh"
#include "core/config.hh"
#include "core/simulation.hh"
#include "net/fault.hh"
#include "sim/event.hh"
#include "sim/module.hh"
#include "sim/pool.hh"
#include "sim/simulator.hh"

namespace {

using namespace orion::sim;

TEST(EventBus, DispatchesToSubscribersOfType)
{
    EventBus bus;
    int buffer_events = 0;
    int arb_events = 0;
    bus.subscribe(EventType::BufferWrite,
                  [&](const Event&) { ++buffer_events; });
    bus.subscribe(EventType::Arbitration,
                  [&](const Event&) { ++arb_events; });

    bus.emit({EventType::BufferWrite, 0, 0, 0, 0, 0});
    bus.emit({EventType::BufferWrite, 1, 0, 3, 4, 1});
    bus.emit({EventType::Arbitration, 0, 0, 0, 0, 2});

    EXPECT_EQ(buffer_events, 2);
    EXPECT_EQ(arb_events, 1);
}

TEST(EventBus, PassesPayloadThrough)
{
    EventBus bus;
    Event seen{};
    bus.subscribe(EventType::LinkTraversal,
                  [&](const Event& e) { seen = e; });
    bus.emit({EventType::LinkTraversal, 7, 3, 128, 9, 42});
    EXPECT_EQ(seen.node, 7);
    EXPECT_EQ(seen.component, 3);
    EXPECT_EQ(seen.deltaA, 128u);
    EXPECT_EQ(seen.deltaB, 9u);
    EXPECT_EQ(seen.cycle, 42u);
}

TEST(EventBus, CountsEvenWithoutSubscribers)
{
    EventBus bus;
    bus.emit({EventType::CreditTransfer, 0, 0, 0, 0, 0});
    bus.emit({EventType::CreditTransfer, 0, 0, 0, 0, 1});
    EXPECT_EQ(bus.emittedCount(EventType::CreditTransfer), 2u);
    EXPECT_EQ(bus.emittedCount(EventType::BufferRead), 0u);
}

TEST(EventBus, MultipleListenersAllFire)
{
    EventBus bus;
    int a = 0;
    int b = 0;
    bus.subscribe(EventType::BufferRead, [&](const Event&) { ++a; });
    bus.subscribe(EventType::BufferRead, [&](const Event&) { ++b; });
    bus.emit({EventType::BufferRead, 0, 0, 0, 0, 0});
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 1);
}

TEST(EventNames, AreUniqueAndNonNull)
{
    std::vector<std::string> names;
    for (unsigned t = 0; t < kNumEventTypes; ++t)
        names.push_back(eventTypeName(static_cast<EventType>(t)));
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_FALSE(names[i].empty());
        for (std::size_t j = i + 1; j < names.size(); ++j)
            EXPECT_NE(names[i], names[j]);
    }
}

TEST(Channel, DeliversNextCycle)
{
    Channel<int> ch;
    ch.write(5);
    EXPECT_FALSE(ch.valid());
    ch.advance();
    ASSERT_TRUE(ch.valid());
    EXPECT_EQ(ch.peek(), 5);
    EXPECT_EQ(ch.read(), 5);
    EXPECT_FALSE(ch.valid());
}

TEST(Channel, EmptyAdvanceDeliversNothing)
{
    Channel<int> ch;
    ch.advance();
    EXPECT_FALSE(ch.valid());
}

TEST(Channel, BackToBackMessages)
{
    Channel<int> ch;
    ch.write(1);
    ch.advance();
    ch.write(2); // staged while 1 is current
    EXPECT_EQ(ch.read(), 1);
    ch.advance();
    EXPECT_EQ(ch.read(), 2);
}

/** A module that counts its cycles and pings a channel. */
class Counter : public Module
{
  public:
    Counter(Channel<int>* out)
        : Module("counter", 0), out_(out)
    {
    }

    void
    cycle(Cycle now) override
    {
        ++cycles_;
        if (out_)
            out_->write(static_cast<int>(now));
    }

    int cycles() const { return cycles_; }

  private:
    Channel<int>* out_;
    int cycles_ = 0;
};

/** A module that records what it receives. */
class Sink : public Module
{
  public:
    Sink(Channel<int>* in)
        : Module("sink", 1), in_(in)
    {
    }

    void
    cycle(Cycle) override
    {
        if (in_->valid())
            received_.push_back(in_->read());
    }

    const std::vector<int>& received() const { return received_; }

  private:
    Channel<int>* in_;
    std::vector<int> received_;
};

TEST(Simulator, RunsModulesEveryCycle)
{
    Simulator sim;
    Counter c(nullptr);
    sim.add(&c);
    sim.run(10);
    EXPECT_EQ(c.cycles(), 10);
    EXPECT_EQ(sim.now(), 10u);
    EXPECT_EQ(sim.moduleCount(), 1u);
}

TEST(Simulator, ChannelAddsExactlyOneCycleLatency)
{
    Simulator sim;
    RegisteredChannel<int> ch;
    Counter producer(&ch);
    Sink consumer(&ch);
    sim.add(&producer);
    sim.add(&consumer);
    sim.addChannel(&ch);

    sim.run(5);
    // Written at cycles 0..4; received at cycles 1..4 => values 0..3.
    ASSERT_EQ(consumer.received().size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(consumer.received()[i], i);
}

TEST(Simulator, RunUntilStopsOnPredicate)
{
    Simulator sim;
    Counter c(nullptr);
    sim.add(&c);
    const bool hit =
        sim.runUntil([&] { return c.cycles() >= 3; }, 100);
    EXPECT_TRUE(hit);
    EXPECT_EQ(c.cycles(), 3);
}

TEST(Simulator, RunUntilRespectsCap)
{
    Simulator sim;
    Counter c(nullptr);
    sim.add(&c);
    const bool hit = sim.runUntil([] { return false; }, 7);
    EXPECT_FALSE(hit);
    EXPECT_EQ(sim.now(), 7u);
}

// --- recycling pool ---------------------------------------------------

TEST(RecyclingPool, NoIdentityReuseWithinLifetimeWindow)
{
    // While an object is held, acquire() must never hand out the same
    // address again — recycling only draws from released objects.
    RecyclingPool<int> pool;
    std::vector<std::shared_ptr<int>> live;
    std::set<const int*> addresses;
    for (int i = 0; i < 256; ++i) {
        live.push_back(pool.acquire());
        const bool fresh = addresses.insert(live.back().get()).second;
        EXPECT_TRUE(fresh) << "live object handed out twice";
    }
    EXPECT_EQ(pool.allocatedCount(), 256u);
    EXPECT_EQ(pool.recycledCount(), 0u);
    EXPECT_EQ(pool.liveCount(), 256u);
}

TEST(RecyclingPool, ReleasedObjectsAreRecycledNotReallocated)
{
    RecyclingPool<int> pool;
    auto a = pool.acquire();
    const int* addr = a.get();
    a.reset();
    ASSERT_EQ(pool.freeCount(), 1u);
    auto b = pool.acquire();
    // LIFO free list: the most recently parked object comes back.
    EXPECT_EQ(b.get(), addr);
    EXPECT_EQ(pool.allocatedCount(), 1u);
    EXPECT_EQ(pool.recycledCount(), 1u);
}

TEST(RecyclingPool, LedgerBalances)
{
    // allocated + recycled == returned + live at every point, and
    // once everything is released the whole population is parked.
    RecyclingPool<int> pool;
    std::vector<std::shared_ptr<int>> live;
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 50; ++i)
            live.push_back(pool.acquire());
        EXPECT_EQ(pool.liveCount(), live.size());
        live.resize(live.size() / 2);
        EXPECT_EQ(pool.liveCount(), live.size());
        // Every object ever constructed is either handed out or
        // parked — nothing escapes, nothing is double-counted.
        EXPECT_EQ(pool.allocatedCount(),
                  pool.liveCount() + pool.freeCount());
    }
    live.clear();
    EXPECT_EQ(pool.liveCount(), 0u);
    EXPECT_EQ(pool.freeCount(), pool.allocatedCount());
}

TEST(RecyclingPool, ObjectsOutlivingThePoolStillRelease)
{
    std::shared_ptr<int> survivor;
    {
        RecyclingPool<int> pool;
        survivor = pool.acquire();
        *survivor = 7;
    }
    // The recycler keeps the shared state alive; releasing after the
    // pool's death must not crash or leak (ASan leg verifies).
    EXPECT_EQ(*survivor, 7);
    survivor.reset();
}

// --- bit-identity of the optimized kernel ------------------------------

/**
 * The hardest end-to-end path: bit errors + a link outage + source
 * rerouting + runtime deadlock detection, audited every 64 cycles at
 * the paranoid level. Two independent runs of the same configuration must
 * agree on every report field bit-for-bit — the arena/pool, batched
 * dispatch, SoA and quiescent-skip optimizations are pure
 * restructurings and may not perturb schedules or RNG streams.
 */
TEST(KernelBitIdentity, FaultRerouteDeadlockRunIsDeterministic)
{
    using orion::NetworkConfig;
    using orion::Report;
    using orion::SimConfig;
    using orion::Simulation;
    using orion::TrafficConfig;
    namespace core = orion::core;

    const core::CheckLevel saved = core::checkLevel();
    core::setCheckLevel(core::CheckLevel::Paranoid);

    NetworkConfig net = NetworkConfig::vc16();
    TrafficConfig traffic;
    traffic.injectionRate = 0.05;
    SimConfig s;
    s.warmupCycles = 500;
    s.samplePackets = 1500;
    s.maxCycles = 100000;
    s.auditCycles = 64;
    s.fault.linkBitErrorRate = 2e-6;
    s.fault.outages.push_back({.start = 1200, .end = 1500, .link = -1});
    s.rerouteOnOutage = true;
    s.deadlockDetect.enabled = true;

    Simulation a(net, traffic, s);
    Simulation b(net, traffic, s);
    const Report ra = a.run();
    const Report rb = b.run();
    core::setCheckLevel(saved);

    EXPECT_TRUE(ra.completed);
    EXPECT_GT(ra.flitsCorrupted + ra.reroutes, 0u)
        << "fault machinery never engaged; test lost its teeth";
    EXPECT_EQ(ra.sampleEjected, rb.sampleEjected);
    EXPECT_EQ(ra.faultLogHash, rb.faultLogHash);
    EXPECT_EQ(ra.reroutes, rb.reroutes);
    EXPECT_EQ(ra.packetsLost, rb.packetsLost);
    EXPECT_EQ(ra.packetsUnreachable, rb.packetsUnreachable);
    EXPECT_EQ(ra.deadlocksDetected, rb.deadlocksDetected);
    EXPECT_EQ(ra.deadlocksRecovered, rb.deadlocksRecovered);
    // Bit-identity, not approximate equality: the doubles must match
    // exactly.
    EXPECT_EQ(ra.avgLatencyCycles, rb.avgLatencyCycles);
    EXPECT_EQ(ra.networkPowerWatts, rb.networkPowerWatts);
}

} // namespace
