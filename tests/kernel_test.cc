/**
 * @file
 * Tests for the simulation kernel: event bus dispatch, registered
 * channels (1-cycle latency), and the simulator loop.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"
#include "sim/module.hh"
#include "sim/simulator.hh"

namespace {

using namespace orion::sim;

TEST(EventBus, DispatchesToSubscribersOfType)
{
    EventBus bus;
    int buffer_events = 0;
    int arb_events = 0;
    bus.subscribe(EventType::BufferWrite,
                  [&](const Event&) { ++buffer_events; });
    bus.subscribe(EventType::Arbitration,
                  [&](const Event&) { ++arb_events; });

    bus.emit({EventType::BufferWrite, 0, 0, 0, 0, 0});
    bus.emit({EventType::BufferWrite, 1, 0, 3, 4, 1});
    bus.emit({EventType::Arbitration, 0, 0, 0, 0, 2});

    EXPECT_EQ(buffer_events, 2);
    EXPECT_EQ(arb_events, 1);
}

TEST(EventBus, PassesPayloadThrough)
{
    EventBus bus;
    Event seen{};
    bus.subscribe(EventType::LinkTraversal,
                  [&](const Event& e) { seen = e; });
    bus.emit({EventType::LinkTraversal, 7, 3, 128, 9, 42});
    EXPECT_EQ(seen.node, 7);
    EXPECT_EQ(seen.component, 3);
    EXPECT_EQ(seen.deltaA, 128u);
    EXPECT_EQ(seen.deltaB, 9u);
    EXPECT_EQ(seen.cycle, 42u);
}

TEST(EventBus, CountsEvenWithoutSubscribers)
{
    EventBus bus;
    bus.emit({EventType::CreditTransfer, 0, 0, 0, 0, 0});
    bus.emit({EventType::CreditTransfer, 0, 0, 0, 0, 1});
    EXPECT_EQ(bus.emittedCount(EventType::CreditTransfer), 2u);
    EXPECT_EQ(bus.emittedCount(EventType::BufferRead), 0u);
}

TEST(EventBus, MultipleListenersAllFire)
{
    EventBus bus;
    int a = 0;
    int b = 0;
    bus.subscribe(EventType::BufferRead, [&](const Event&) { ++a; });
    bus.subscribe(EventType::BufferRead, [&](const Event&) { ++b; });
    bus.emit({EventType::BufferRead, 0, 0, 0, 0, 0});
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 1);
}

TEST(EventNames, AreUniqueAndNonNull)
{
    std::vector<std::string> names;
    for (unsigned t = 0; t < kNumEventTypes; ++t)
        names.push_back(eventTypeName(static_cast<EventType>(t)));
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_FALSE(names[i].empty());
        for (std::size_t j = i + 1; j < names.size(); ++j)
            EXPECT_NE(names[i], names[j]);
    }
}

TEST(Channel, DeliversNextCycle)
{
    Channel<int> ch;
    ch.write(5);
    EXPECT_FALSE(ch.valid());
    ch.advance();
    ASSERT_TRUE(ch.valid());
    EXPECT_EQ(ch.peek(), 5);
    EXPECT_EQ(ch.read(), 5);
    EXPECT_FALSE(ch.valid());
}

TEST(Channel, EmptyAdvanceDeliversNothing)
{
    Channel<int> ch;
    ch.advance();
    EXPECT_FALSE(ch.valid());
}

TEST(Channel, BackToBackMessages)
{
    Channel<int> ch;
    ch.write(1);
    ch.advance();
    ch.write(2); // staged while 1 is current
    EXPECT_EQ(ch.read(), 1);
    ch.advance();
    EXPECT_EQ(ch.read(), 2);
}

/** A module that counts its cycles and pings a channel. */
class Counter : public Module
{
  public:
    Counter(Channel<int>* out)
        : Module("counter", 0), out_(out)
    {
    }

    void
    cycle(Cycle now) override
    {
        ++cycles_;
        if (out_)
            out_->write(static_cast<int>(now));
    }

    int cycles() const { return cycles_; }

  private:
    Channel<int>* out_;
    int cycles_ = 0;
};

/** A module that records what it receives. */
class Sink : public Module
{
  public:
    Sink(Channel<int>* in)
        : Module("sink", 1), in_(in)
    {
    }

    void
    cycle(Cycle) override
    {
        if (in_->valid())
            received_.push_back(in_->read());
    }

    const std::vector<int>& received() const { return received_; }

  private:
    Channel<int>* in_;
    std::vector<int> received_;
};

TEST(Simulator, RunsModulesEveryCycle)
{
    Simulator sim;
    Counter c(nullptr);
    sim.add(&c);
    sim.run(10);
    EXPECT_EQ(c.cycles(), 10);
    EXPECT_EQ(sim.now(), 10u);
    EXPECT_EQ(sim.moduleCount(), 1u);
}

TEST(Simulator, ChannelAddsExactlyOneCycleLatency)
{
    Simulator sim;
    RegisteredChannel<int> ch;
    Counter producer(&ch);
    Sink consumer(&ch);
    sim.add(&producer);
    sim.add(&consumer);
    sim.addChannel(&ch);

    sim.run(5);
    // Written at cycles 0..4; received at cycles 1..4 => values 0..3.
    ASSERT_EQ(consumer.received().size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(consumer.received()[i], i);
}

TEST(Simulator, RunUntilStopsOnPredicate)
{
    Simulator sim;
    Counter c(nullptr);
    sim.add(&c);
    const bool hit =
        sim.runUntil([&] { return c.cycles() >= 3; }, 100);
    EXPECT_TRUE(hit);
    EXPECT_EQ(c.cycles(), 3);
}

TEST(Simulator, RunUntilRespectsCap)
{
    Simulator sim;
    Counter c(nullptr);
    sim.add(&c);
    const bool hit = sim.runUntil([] { return false; }, 7);
    EXPECT_FALSE(hit);
    EXPECT_EQ(sim.now(), 7u);
}

} // namespace
