/**
 * @file
 * Tests for the deterministic RNG: reproducibility, uniformity, and
 * bounded sampling.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hh"

namespace {

using orion::sim::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(11);
    const unsigned bound = 16;
    std::vector<int> counts(bound, 0);
    const int n = 160000;
    for (int i = 0; i < n; ++i)
        ++counts[r.below(bound)];
    const double expect = static_cast<double>(n) / bound;
    for (const int c : counts) {
        EXPECT_GT(c, expect * 0.9);
        EXPECT_LT(c, expect * 1.1);
    }
}

TEST(Rng, UniformIsInHalfOpenUnitInterval)
{
    Rng r(3);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(5);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.1))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.1, 0.01);
}

TEST(Rng, ChanceZeroAndOneAreDegenerate)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

} // namespace
