/**
 * @file
 * Tests for the standalone power-model query tool: every component
 * query, parameter defaulting, technology overrides, CSV output, and
 * error handling.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/model_cli.hh"
#include "core/report.hh"
#include "power/buffer_model.hh"
#include "tech/tech_node.hh"

namespace {

using namespace orion;
using orion::cli::runModelQuery;

TEST(ModelCli, EmptyAndHelpShowUsage)
{
    EXPECT_EQ(runModelQuery({}), cli::modelUsage());
    EXPECT_EQ(runModelQuery({"--help"}), cli::modelUsage());
    EXPECT_NE(cli::modelUsage().find("buffer"), std::string::npos);
}

TEST(ModelCli, BufferQueryListsTable2Quantities)
{
    const std::string out =
        runModelQuery({"buffer", "--flits", "64", "--bits", "256"});
    for (const char* key : {"L_wl", "L_bl", "C_wl", "C_br", "C_bw",
                            "C_chg", "C_cell", "E_read", "E_wrt"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(ModelCli, BufferValuesMatchLibrary)
{
    // The printed E_read must be the library model's value.
    const tech::TechNode t = tech::TechNode::scaled(0.1, 1.2, 2e9);
    const power::BufferModel m(t, {64, 256, 1, 1});
    const std::string expect =
        report::fmtEng(m.readEnergy(), "J", 2);
    const std::string out =
        runModelQuery({"buffer", "--flits", "64", "--bits", "256"});
    EXPECT_NE(out.find(expect), std::string::npos);
}

TEST(ModelCli, CrossbarMatrixAndMuxTree)
{
    const std::string matrix = runModelQuery(
        {"crossbar", "--inputs", "5", "--outputs", "5", "--width",
         "256"});
    EXPECT_NE(matrix.find("matrix crossbar"), std::string::npos);
    const std::string tree = runModelQuery(
        {"crossbar", "--inputs", "5", "--outputs", "5", "--width",
         "256", "--mux-tree"});
    EXPECT_NE(tree.find("mux-tree crossbar"), std::string::npos);
    EXPECT_NE(matrix, tree);
}

TEST(ModelCli, ArbiterKinds)
{
    const std::string m =
        runModelQuery({"arbiter", "--requests", "4"});
    EXPECT_NE(m.find("priority flip-flops"), std::string::npos);
    EXPECT_NE(m.find("| 6"), std::string::npos); // 4*3/2

    const std::string rr = runModelQuery(
        {"arbiter", "--requests", "4", "--kind", "rr"});
    EXPECT_NE(rr.find("| 4"), std::string::npos);

    EXPECT_THROW(
        runModelQuery({"arbiter", "--requests", "4", "--kind", "x"}),
        std::invalid_argument);
}

TEST(ModelCli, CentralBufferAndLinks)
{
    const std::string cb = runModelQuery(
        {"central-buffer", "--banks", "4", "--rows", "2560", "--bits",
         "32"});
    EXPECT_NE(cb.find("bank E_read"), std::string::npos);

    const std::string link = runModelQuery(
        {"link", "--length-um", "3000", "--width", "256"});
    EXPECT_NE(link.find("C_wire/bit"), std::string::npos);

    const std::string c2c = runModelQuery({"c2c-link"});
    EXPECT_NE(c2c.find("3.00 W"), std::string::npos);
}

TEST(ModelCli, TechnologyOverridesChangeResults)
{
    const std::string base =
        runModelQuery({"buffer", "--flits", "16", "--bits", "64"});
    const std::string scaled = runModelQuery(
        {"buffer", "--flits", "16", "--bits", "64", "--feature-um",
         "0.07", "--vdd", "0.9"});
    EXPECT_NE(base, scaled);
}

TEST(ModelCli, CsvOutput)
{
    const std::string out = runModelQuery(
        {"buffer", "--flits", "16", "--bits", "64", "--csv"});
    EXPECT_NE(out.find("quantity,value"), std::string::npos);
    EXPECT_EQ(out.find("+---"), std::string::npos);
}

TEST(ModelCli, Errors)
{
    EXPECT_THROW(runModelQuery({"bogus"}), std::invalid_argument);
    EXPECT_THROW(runModelQuery({"buffer"}), std::invalid_argument);
    EXPECT_THROW(runModelQuery({"buffer", "--flits"}),
                 std::invalid_argument);
    EXPECT_THROW(runModelQuery({"buffer", "--flits", "ten", "--bits",
                                "64"}),
                 std::invalid_argument);
    EXPECT_THROW(runModelQuery({"buffer", "--flits", "1.5", "--bits",
                                "64"}),
                 std::invalid_argument);
    EXPECT_THROW(runModelQuery({"link", "--width", "64"}),
                 std::invalid_argument);
    EXPECT_THROW(runModelQuery({"buffer", "--flits", "16", "--bits",
                                "64", "--vdd", "-1"}),
                 std::invalid_argument);
}

} // namespace
