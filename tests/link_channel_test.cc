/**
 * @file
 * Edge-case tests for links and registered channels: traversal-event
 * gating, per-link activity history, credit links, and channel
 * overrun detection.
 */

#include <gtest/gtest.h>

#include <vector>

#include "router/link.hh"
#include "sim/module.hh"

namespace {

using namespace orion;
using namespace orion::router;
using sim::Event;
using sim::EventBus;
using sim::EventType;

Flit
makeFlit(unsigned width, std::uint64_t payload)
{
    Flit f;
    f.packet = std::make_shared<PacketInfo>();
    f.payload = power::BitVec(width, payload);
    return f;
}

TEST(FlitLink, EmitsTraversalWithActivityDelta)
{
    EventBus bus;
    std::vector<Event> events;
    bus.subscribe(EventType::LinkTraversal,
                  [&](const Event& e) { events.push_back(e); });

    FlitLink link(3, 2, 32, /*emits_traversal=*/true);
    link.send(makeFlit(32, 0xff), bus, 5);
    link.advance();
    link.read();
    link.send(makeFlit(32, 0xff), bus, 6); // same value: 0 toggles
    link.advance();
    link.read();
    link.send(makeFlit(32, 0x0f), bus, 7); // 4 toggles

    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].node, 3);
    EXPECT_EQ(events[0].component, 2);
    EXPECT_EQ(events[0].deltaA, 8u);
    EXPECT_EQ(events[1].deltaA, 0u);
    EXPECT_EQ(events[2].deltaA, 4u);
}

TEST(FlitLink, LocalWiringEmitsNothing)
{
    EventBus bus;
    int traversals = 0;
    bus.subscribe(EventType::LinkTraversal,
                  [&](const Event&) { ++traversals; });

    FlitLink link(0, 4, 32, /*emits_traversal=*/false);
    link.send(makeFlit(32, 0xff), bus, 0);
    EXPECT_EQ(traversals, 0);
    EXPECT_FALSE(link.emitsTraversal());
    link.advance();
    EXPECT_TRUE(link.valid()); // the flit still travels
}

TEST(CreditLink, EmitsCreditTransfer)
{
    EventBus bus;
    std::vector<Event> events;
    bus.subscribe(EventType::CreditTransfer,
                  [&](const Event& e) { events.push_back(e); });

    CreditLink link(7, 1);
    link.send(Credit{3}, bus, 9);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].node, 7);
    EXPECT_EQ(events[0].cycle, 9u);
    link.advance();
    EXPECT_EQ(link.read().vc, 3);
}

TEST(ChannelDeath, OverrunAsserts)
{
    sim::Channel<int> ch;
    ch.write(1);
    ch.advance(); // 1 is current, unread
    ch.write(2);  // staged
    EXPECT_DEATH(ch.advance(), "channel overrun");
}

TEST(ChannelDeath, DoubleWriteAsserts)
{
    sim::Channel<int> ch;
    ch.write(1);
    EXPECT_DEATH(ch.write(2), "written twice");
}

TEST(Channel, UnreadMessageLatches)
{
    sim::Channel<int> ch;
    ch.write(5);
    ch.advance();
    ch.advance(); // nothing staged: the unread 5 persists
    ch.advance();
    ASSERT_TRUE(ch.valid());
    EXPECT_EQ(ch.read(), 5);
}

TEST(Flit, RouteHopAccessors)
{
    auto info = std::make_shared<PacketInfo>();
    info->route = {RouteHop{2, 0, true}, RouteHop{0, 1, false},
                   RouteHop{4, 0, false}};
    Flit f;
    f.packet = info;
    f.hop = 0;
    EXPECT_EQ(f.routeHop().port, 2);
    EXPECT_TRUE(f.routeHop().newRing);
    EXPECT_FALSE(f.atLastHop());
    f.hop = 2;
    EXPECT_EQ(f.routeHop().port, 4);
    EXPECT_TRUE(f.atLastHop());
}

} // namespace
