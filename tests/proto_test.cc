/**
 * @file
 * Tests for the orion_served wire protocol (core/proto.hh): the JSON
 * subset parser, request validation, and structured error replies.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/proto.hh"

namespace {

namespace proto = orion::core::proto;

TEST(Proto, ParsesScalars)
{
    EXPECT_EQ(proto::parseJson("true").kind,
              proto::JsonValue::Kind::Boolean);
    EXPECT_TRUE(proto::parseJson("true").boolean);
    EXPECT_EQ(proto::parseJson("null").kind,
              proto::JsonValue::Kind::Null);
    EXPECT_DOUBLE_EQ(proto::parseJson("-2.5e2").number, -250.0);
    EXPECT_EQ(proto::parseJson("\"a\\n\\u0041\"").text, "a\nA");
}

TEST(Proto, ParsesNestedStructures)
{
    const proto::JsonValue v = proto::parseJson(
        "{\"a\": [1, 2, {\"b\": \"c|d\"}], \"e\": {}}");
    ASSERT_EQ(v.kind, proto::JsonValue::Kind::Object);
    const proto::JsonValue* a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items.size(), 3u);
    EXPECT_DOUBLE_EQ(a->items[1].number, 2.0);
    const proto::JsonValue* b = a->items[2].find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->text, "c|d");
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Proto, RejectsMalformedDocuments)
{
    const char* bad[] = {
        "",        "{",          "[1,",       "{\"a\":}",
        "tru",     "\"unterminated", "1 2",   "{\"a\":1}x",
        "nan",     "1e999",      "\"\\q\"",   "\"\\ud800\"",
        "[\x01]",
    };
    for (const char* doc : bad) {
        EXPECT_THROW(proto::parseJson(doc), proto::ProtoError)
            << "doc: " << doc;
    }
}

TEST(Proto, RejectsDeepNesting)
{
    std::string deep;
    for (int i = 0; i < 64; ++i)
        deep += "[";
    EXPECT_THROW(proto::parseJson(deep), proto::ProtoError);
}

TEST(Proto, ParseRequestSubmit)
{
    const proto::Request r = proto::parseRequest(
        "{\"schema\":\"orion-served-v1\",\"verb\":\"submit\","
        "\"args\":[\"--preset\",\"wh64\"],\"rates\":\"0.02:0.3:8\","
        "\"timeout\":12.5}");
    EXPECT_EQ(r.verb, "submit");
    ASSERT_EQ(r.args.size(), 2u);
    EXPECT_EQ(r.args[1], "wh64");
    EXPECT_EQ(r.rates, "0.02:0.3:8");
    EXPECT_DOUBLE_EQ(r.timeoutSeconds, 12.5);
}

TEST(Proto, ParseRequestJobVerbs)
{
    for (const char* verb : {"status", "result", "cancel"}) {
        const proto::Request r = proto::parseRequest(
            std::string("{\"schema\":\"orion-served-v1\",\"verb\":"
                        "\"") +
            verb + "\",\"job\":17}");
        EXPECT_EQ(r.verb, verb);
        EXPECT_EQ(r.job, 17u);
    }
    EXPECT_EQ(
        proto::parseRequest(
            "{\"schema\":\"orion-served-v1\",\"verb\":\"stats\"}")
            .verb,
        "stats");
}

TEST(Proto, ParseRequestRejectsBadShapes)
{
    const char* bad[] = {
        // wrong/missing schema
        "{\"verb\":\"stats\"}",
        "{\"schema\":\"orion-served-v0\",\"verb\":\"stats\"}",
        // unknown verb
        "{\"schema\":\"orion-served-v1\",\"verb\":\"reboot\"}",
        // job id problems
        "{\"schema\":\"orion-served-v1\",\"verb\":\"status\"}",
        "{\"schema\":\"orion-served-v1\",\"verb\":\"status\","
        "\"job\":0}",
        "{\"schema\":\"orion-served-v1\",\"verb\":\"status\","
        "\"job\":1.5}",
        // args/timeout problems
        "{\"schema\":\"orion-served-v1\",\"verb\":\"submit\","
        "\"args\":\"--preset\"}",
        "{\"schema\":\"orion-served-v1\",\"verb\":\"submit\","
        "\"args\":[1]}",
        "{\"schema\":\"orion-served-v1\",\"verb\":\"submit\","
        "\"timeout\":-1}",
    };
    for (const char* doc : bad) {
        try {
            proto::parseRequest(doc);
            FAIL() << "accepted: " << doc;
        } catch (const proto::ProtoError& e) {
            EXPECT_EQ(e.code(), "bad_request") << doc;
        }
    }
}

TEST(Proto, ErrorReplyIsParseableAndEscaped)
{
    const std::string reply = proto::errorReply(
        "queue_full", "limit \"16\" hit\nback off");
    const proto::JsonValue v = proto::parseJson(reply);
    ASSERT_EQ(v.kind, proto::JsonValue::Kind::Object);
    EXPECT_EQ(v.find("schema")->text, proto::kSchema);
    EXPECT_FALSE(v.find("ok")->boolean);
    EXPECT_EQ(v.find("error")->text, "queue_full");
    EXPECT_EQ(v.find("message")->text, "limit \"16\" hit\nback off");
    EXPECT_EQ(reply.find('\n'), std::string::npos)
        << "replies must stay single-line (NDJSON framing)";
}

TEST(Proto, JsonStringRoundTripsControlBytes)
{
    const std::string raw = "a|b\tc\x01" "d\"e\\f";
    const std::string doc = proto::jsonString(raw);
    EXPECT_EQ(proto::parseJson(doc).text, raw);
}

} // namespace
