/**
 * @file
 * Tests for the Simulation run protocol (paper Section 4.1): warm-up
 * exclusion, sample window, watchdog, and report contents.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/simulation.hh"

namespace {

using namespace orion;

TrafficConfig
uniform(double rate)
{
    TrafficConfig t;
    t.injectionRate = rate;
    return t;
}

TEST(Simulation, WarmupExcludedFromMeasurement)
{
    SimConfig s;
    s.warmupCycles = 1000;
    s.samplePackets = 500;
    s.maxCycles = 100000;
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.totalCycles, r.measuredCycles + 1000);
    // Events recorded during warm-up are not in the window counts:
    // rough check — window buffer writes should be close to the
    // packets x flits x hops of the window, far below total traffic
    // including warm-up only if warm-up were counted.
    EXPECT_GT(r.measuredCycles, 0u);
}

TEST(Simulation, SampleWindowExactlyRequested)
{
    SimConfig s;
    s.samplePackets = 777;
    s.maxCycles = 200000;
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.sampleInjected, 777u);
    EXPECT_EQ(r.sampleEjected, 777u);
}

TEST(Simulation, ReportFieldsArePopulated)
{
    SimConfig s;
    s.samplePackets = 500;
    s.maxCycles = 100000;
    Simulation sim(NetworkConfig::vc16(), uniform(0.06), s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.avgLatencyCycles, 10.0);
    EXPECT_GT(r.networkPowerWatts, 0.0);
    EXPECT_EQ(r.nodePowerWatts.size(), 16u);
    for (const double p : r.nodePowerWatts)
        EXPECT_GT(p, 0.0);
    EXPECT_DOUBLE_EQ(r.offeredLoad, 0.06);
    EXPECT_EQ(r.moduleCount, 32u);
    // Breakdown adds up to the network total.
    EXPECT_NEAR(r.breakdownWatts.total(), r.networkPowerWatts,
                1e-9 * r.networkPowerWatts);
    // Per-node powers add up too.
    double sum = 0.0;
    for (const double p : r.nodePowerWatts)
        sum += p;
    EXPECT_NEAR(sum, r.networkPowerWatts,
                1e-9 * r.networkPowerWatts);
}

TEST(Simulation, CycleCapMarksIncomplete)
{
    SimConfig s;
    s.samplePackets = 100000; // cannot finish
    s.maxCycles = 2000;
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    const Report r = sim.run();
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.stopReason, StopReason::MaxCycles);
    EXPECT_LE(r.measuredCycles, 2000u + 5000u);
}

TEST(Simulation, CompletedRunReportsCompletedStopReason)
{
    SimConfig s;
    s.samplePackets = 300;
    s.maxCycles = 100000;
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.stopReason, StopReason::Completed);
    EXPECT_STREQ(stopReasonName(r.stopReason), "completed");
}

TEST(Simulation, WatchdogStallIsDistinguishedFromCycleCap)
{
    // Freeze every output port of every router shortly after the
    // sample window opens: flits are in flight but nothing can move,
    // which is exactly the condition the watchdog exists to catch —
    // and the report must say "stall", not "ran out of cycles".
    SimConfig s;
    s.warmupCycles = 200;
    s.samplePackets = 5000;
    s.maxCycles = 60000;
    s.watchdogCycles = 2000;
    for (int n = 0; n < 16; ++n) {
        for (unsigned p = 0; p < 5; ++p) {
            s.fault.stalls.push_back(
                {.node = n, .port = p, .start = 400, .end = 1000000});
        }
    }
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    const Report r = sim.run();
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.deadlockSuspected);
    EXPECT_EQ(r.stopReason, StopReason::WatchdogStall);
    EXPECT_STREQ(stopReasonName(r.stopReason), "watchdog-stall");
}

TEST(Simulation, CheckFailureIsReportedNotThrown)
{
    SimConfig s;
    s.samplePackets = 200;
    s.debugPoisonRate = 0.05;
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    Report r;
    ASSERT_NO_THROW(r = sim.run());
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.stopReason, StopReason::CheckFailure);
    EXPECT_NE(r.checkFailureDiagnostic.find("poisoned"),
              std::string::npos)
        << r.checkFailureDiagnostic;
}

TEST(Simulation, ZeroTrafficTerminatesViaCap)
{
    SimConfig s;
    s.samplePackets = 100;
    s.maxCycles = 3000;
    s.watchdogCycles = 1000;
    Simulation sim(NetworkConfig::vc16(), uniform(0.0), s);
    const Report r = sim.run();
    EXPECT_FALSE(r.completed);
    EXPECT_FALSE(r.deadlockSuspected); // idle, not deadlocked
    EXPECT_EQ(r.sampleInjected, 0u);
}

TEST(Simulation, EventCountsConsistent)
{
    SimConfig s;
    s.samplePackets = 500;
    s.maxCycles = 100000;
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);

    const auto at = [&](sim::EventType t) {
        return r.eventCounts[static_cast<unsigned>(t)];
    };
    // Flits buffered equal flits read out of buffers (drained net).
    EXPECT_NEAR(static_cast<double>(at(sim::EventType::BufferWrite)),
                static_cast<double>(at(sim::EventType::BufferRead)),
                600.0);
    // Each buffer read leads to one crossbar traversal (up to the few
    // flits in flight across the measurement boundaries).
    EXPECT_NEAR(static_cast<double>(at(sim::EventType::BufferRead)),
                static_cast<double>(
                    at(sim::EventType::CrossbarTraversal)),
                64.0);
    // Credits: one per buffer read from a network/injection port.
    EXPECT_NEAR(static_cast<double>(at(sim::EventType::BufferRead)),
                static_cast<double>(
                    at(sim::EventType::CreditTransfer)),
                64.0);
}

TEST(Simulation, StepAdvancesWithoutProtocol)
{
    SimConfig s;
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    sim.step(100);
    EXPECT_EQ(sim.simulator().now(), 100u);
    EXPECT_GT(sim.network().totalInjected(), 0u);
}

} // namespace
