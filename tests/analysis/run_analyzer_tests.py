#!/usr/bin/env python3
"""Fixture tests for tools/orion_analyze.py.

Each rule has a bad/ fixture root (must produce exactly the expected
findings, all of the expected rule, exit 1) and a good/ fixture root
(must be clean, exit 0). Usage errors must exit 2. The text engine is
forced so results are identical on GCC-only hosts and on CI.
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

# (fixture dir, --rules value, expected rule of every bad finding,
#  expected bad finding count)
CASES = [
    ("unordered-iteration", "unordered-iteration",
     "unordered-iteration", 2),
    ("rng-sharing", "rng-sharing", "rng-sharing", 2),
    ("fp-accum-drift", "fp-accum-drift", "fp-accum-drift", 2),
    ("raw-subscribe", "raw-subscribe", "raw-subscribe", 2),
    ("unguarded", "unguarded,unused-suppression", "unguarded", 1),
    ("signal-safety", "signal-safety", "signal-safety", 2),
    ("socket-under-lock", "socket-under-lock", "socket-under-lock", 2),
    ("unused-suppression", "unordered-iteration,unused-suppression",
     "unused-suppression", 3),
]

failures = []


def check(cond, label):
    marker = "ok" if cond else "FAIL"
    print(f"  [{marker}] {label}")
    if not cond:
        failures.append(label)


def run(analyzer, root, rules, json_path):
    proc = subprocess.run(
        [sys.executable, str(analyzer), "--root", str(root),
         "--rules", rules, "--engine", "text", "--json",
         str(json_path)],
        capture_output=True, text=True)
    findings = []
    if json_path.is_file():
        findings = json.loads(json_path.read_text())["findings"]
    return proc, findings


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("--analyzer", required=True)
    ap.add_argument("--fixtures", required=True)
    args = ap.parse_args(argv)
    analyzer = Path(args.analyzer).resolve()
    fixtures = Path(args.fixtures).resolve()

    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "findings.json"
        for name, rules, rule, bad_count in CASES:
            print(f"case {name}:")
            proc, findings = run(
                analyzer, fixtures / name / "bad", rules, json_path)
            check(proc.returncode == 1,
                  f"bad fixture exits 1 (got {proc.returncode})")
            check(len(findings) == bad_count,
                  f"bad fixture yields {bad_count} finding(s) "
                  f"(got {len(findings)}: {findings})")
            check(all(f["rule"] == rule for f in findings),
                  f"every bad finding is [{rule}]")

            json_path.unlink(missing_ok=True)
            proc, findings = run(
                analyzer, fixtures / name / "good", rules, json_path)
            check(proc.returncode == 0,
                  f"good fixture exits 0 (got {proc.returncode}: "
                  f"{proc.stdout.strip()})")
            check(len(findings) == 0, "good fixture is clean")
            json_path.unlink(missing_ok=True)

        print("case usage errors:")
        proc = subprocess.run(
            [sys.executable, str(analyzer), "--root",
             str(fixtures / "does-not-exist")],
            capture_output=True, text=True)
        check(proc.returncode == 2,
              f"missing root exits 2 (got {proc.returncode})")
        proc = subprocess.run(
            [sys.executable, str(analyzer), "--root",
             str(fixtures / "unguarded" / "good"),
             "--rules", "bogus-rule"],
            capture_output=True, text=True)
        check(proc.returncode == 2,
              f"unknown rule exits 2 (got {proc.returncode})")

    print(f"{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
