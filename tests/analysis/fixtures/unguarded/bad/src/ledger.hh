// Fixture: a class holding a core::Mutex capability with one mutable
// member left unannotated.
#define ORION_GUARDED_BY(x)

namespace core {

class Mutex
{
  public:
    void lock();
    void unlock();
};

} // namespace core

namespace demo {

class Ledger
{
  public:
    void add(double joules);

  private:
    core::Mutex mutex_;
    double total_ ORION_GUARDED_BY(mutex_);
    unsigned samples_;
};

} // namespace demo
