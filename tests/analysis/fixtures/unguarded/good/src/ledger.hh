// Fixture: every mutable member of the capability-holding class is
// either annotated or carries a justified suppression.
#define ORION_GUARDED_BY(x)

namespace core {

class Mutex
{
  public:
    void lock();
    void unlock();
};

} // namespace core

namespace demo {

class Ledger
{
  public:
    void add(double joules);

  private:
    core::Mutex mutex_;
    double total_ ORION_GUARDED_BY(mutex_);
    unsigned samples_ ORION_GUARDED_BY(mutex_);
    unsigned scratch_; // analyze-allow: unguarded -- ctor-only scratch, never shared
};

} // namespace demo
