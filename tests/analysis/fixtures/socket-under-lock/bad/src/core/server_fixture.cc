// socket-under-lock fixture (BAD): blocking socket I/O inside a
// LockGuard critical section. Expect exactly two findings.
#include <string>

namespace orion::core {

void
Server::replyLocked(int fd, const std::string& line)
{
    core::LockGuard lock(mutex_);
    queueDepth_ += 1;
    ::send(fd, line.data(), line.size(), 0); // finding 1
    state_ = "replied";
}

void
Server::pollLocked(int fd)
{
    char buf[128];
    core::LockGuard lock(mutex_);
    if (draining_)
        return;
    const long n = ::recv(fd, buf, sizeof buf, 0); // finding 2
    bytes_ += n;
}

} // namespace orion::core
