// socket-under-lock fixture (GOOD): socket I/O happens outside the
// critical section; the lock only covers in-memory state.
#include <string>

namespace orion::core {

void
Server::reply(int fd, const std::string& line)
{
    {
        core::LockGuard lock(mutex_);
        queueDepth_ += 1;
        state_ = "replying";
    }
    ::send(fd, line.data(), line.size(), 0); // guard already dead
}

long
Server::pump(int fd)
{
    char buf[128];
    const long n = ::recv(fd, buf, sizeof buf, 0); // before locking
    core::LockGuard lock(mutex_);
    bytes_ += n;
    return n;
}

} // namespace orion::core
