// Fixture: the two accepted subscribeRaw shapes — a captureless
// lambda, and an anonymous-namespace trampoline.
namespace demo {

enum class EventType
{
    Tick,
};

struct Event
{
    int cycle;
};

struct EventBus
{
    using RawHandler = void (*)(void*, const Event&);
    void subscribeRaw(EventType type, RawHandler fn, void* ctx);
};

class Monitor;

namespace {

void
forwardTick(void* ctx, const demo::Event& ev)
{
    static_cast<long*>(ctx)[0] += ev.cycle;
}

} // namespace

class Monitor
{
  public:
    explicit Monitor(EventBus& bus)
    {
        bus.subscribeRaw(
            EventType::Tick,
            [](void* ctx, const Event& ev) {
                static_cast<Monitor*>(ctx)->ticks_ += ev.cycle;
            },
            this);
        bus.subscribeRaw(EventType::Tick, &forwardTick, &ticks_);
    }

  private:
    long ticks_ = 0;
};

} // namespace demo
