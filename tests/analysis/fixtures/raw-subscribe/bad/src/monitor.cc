// Fixture: subscribeRaw with a capturing lambda and with a handler
// that is not a trampoline in this translation unit.
namespace demo {

enum class EventType
{
    Tick,
};

struct Event
{
    int cycle;
};

struct EventBus
{
    using RawHandler = void (*)(void*, const Event&);
    void subscribeRaw(EventType type, RawHandler fn, void* ctx);
};

void onTickExternal(void* ctx, const Event& ev);

class Monitor
{
  public:
    explicit Monitor(EventBus& bus)
    {
        bus.subscribeRaw(
            EventType::Tick,
            [this](void*, const Event& ev) { ticks_ += ev.cycle; },
            nullptr);
        bus.subscribeRaw(EventType::Tick, &onTickExternal, this);
    }

  private:
    long ticks_ = 0;
};

} // namespace demo
