// Fixture: accumulation chain whose fingerprint no longer matches
// the registered baseline.
namespace demo {

double
accumulate(const double* values, int count)
{
    double energy = 0.0;
    for (int i = 0; i < count; ++i)
        energy += values[i];
    return energy;
}

} // namespace demo
