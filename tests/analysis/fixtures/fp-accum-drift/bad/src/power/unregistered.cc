// Fixture: accumulation chain with no baseline entry at all.
namespace demo {

double
total(const double* values, int count)
{
    double sum = 0.0;
    for (int i = 0; i < count; ++i)
        sum += values[i] * 0.5;
    return sum;
}

} // namespace demo
