// Fixture: keyed lookup into an unordered container is fine; only
// iteration leaks the implementation-defined order.
#include <unordered_map>

namespace demo {

class LatencyTable
{
  public:
    double
    sampleFor(int node) const
    {
        return samples_.count(node) != 0 ? samples_.at(node) : 0.0;
    }

    void
    record(int node, double value)
    {
        samples_[node] = value;
    }

  private:
    std::unordered_map<int, double> samples_;
};

} // namespace demo
