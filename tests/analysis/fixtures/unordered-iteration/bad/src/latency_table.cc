// Fixture: iterating an unordered container on a report path.
#include <ostream>
#include <unordered_map>

namespace demo {

class LatencyTable
{
  public:
    void
    writeCsv(std::ostream& out) const
    {
        for (const auto& entry : samples_)
            out << entry.first << "," << entry.second << "\n";
    }

    double
    firstSample() const
    {
        if (samples_.empty())
            return 0.0;
        return samples_.begin()->second;
    }

  private:
    std::unordered_map<int, double> samples_;
};

} // namespace demo
