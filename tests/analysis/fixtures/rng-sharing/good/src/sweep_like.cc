// Fixture: every worker derives its own stream from the base seed
// and the point index, so results are independent of --jobs.
#include <cstddef>
#include <cstdint>

namespace demo {

struct Rng
{
    explicit Rng(std::uint64_t seed);
    double uniform();
};

std::uint64_t deriveSeed(std::uint64_t base, std::size_t rate_index,
                         unsigned seed_index);

template <typename F>
void parallelFor(unsigned jobs, std::size_t count, F&& body);

void
sweep(std::uint64_t base_seed, double* out, std::size_t n)
{
    parallelFor(0, n, [&](std::size_t i) {
        Rng rng(deriveSeed(base_seed, i, 0));
        out[i] = rng.uniform();
    });
}

} // namespace demo
