// Fixture: one RNG stream shared across sweep workers, plus a
// worker-local RNG seeded without deriveSeed.
#include <cstddef>
#include <cstdint>

namespace demo {

struct Rng
{
    explicit Rng(std::uint64_t seed);
    double uniform();
};

std::uint64_t deriveSeed(std::uint64_t base, std::size_t rate_index,
                         unsigned seed_index);

template <typename F>
void parallelFor(unsigned jobs, std::size_t count, F&& body);

void
sweep(std::uint64_t base_seed, double* out, std::size_t n)
{
    Rng shared(base_seed);
    parallelFor(0, n, [&](std::size_t i) {
        Rng local(12345);
        out[i] = shared.uniform() + local.uniform();
    });
}

} // namespace demo
