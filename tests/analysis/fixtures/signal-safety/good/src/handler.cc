// Fixture: the handler touches only a volatile sig_atomic_t and a
// lock-free atomic flag (through a helper defined in this tree), the
// whole async-signal-safe budget.
#include <atomic>
#include <csignal>

namespace demo {

volatile std::sig_atomic_t g_signal = 0;
std::atomic<int> g_cause{0};

void
requestStop(int cause)
{
    int expected = 0;
    g_cause.compare_exchange_strong(expected, cause);
}

extern "C" void
onSignal(int signum)
{
    g_signal = signum;
    requestStop(2);
}

void
install()
{
    struct sigaction action = {};
    action.sa_handler = &onSignal;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

} // namespace demo
