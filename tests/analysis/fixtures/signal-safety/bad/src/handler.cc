// Fixture: a SIGINT handler that writes a plain global (data race /
// torn write against the interrupted thread) and reaches printf
// (not async-signal-safe) through a helper.
#include <csignal>
#include <cstdio>

namespace demo {

int g_hits = 0;
volatile std::sig_atomic_t g_flag = 0;

void
logInterrupt()
{
    std::printf("interrupted\n");
}

extern "C" void
onSignal(int signum)
{
    g_flag = signum;
    g_hits = 1;
    logInterrupt();
}

void
install()
{
    std::signal(SIGINT, &onSignal);
}

} // namespace demo
