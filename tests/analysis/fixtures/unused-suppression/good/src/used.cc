// Fixture: a live, justified suppression — the walk below really
// triggers unordered-iteration, so the analyze-allow is earning its
// keep and must not be reported as stale.
#include <unordered_map>

namespace demo {

double
diagnosticSum(const std::unordered_map<int, double>& samples)
{
    double total = 0.0;
    for (const auto& entry : samples) // analyze-allow: unordered-iteration -- order-insensitive diagnostic sum, never reported
        total += entry.second;
    return total;
}

} // namespace demo
