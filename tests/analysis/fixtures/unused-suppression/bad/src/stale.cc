// Fixture: suppressions that rot — one stale, one naming an unknown
// rule, one with no justification.
namespace demo {

int
lookup(int key)
{
    return key * 2; // analyze-allow: unordered-iteration -- was a map walk once
}

int
twice(int v)
{
    return v + v; // analyze-allow: not-a-rule -- no such rule exists
}

int
thrice(int v)
{
    return v * 3; // analyze-allow: rng-sharing
}

} // namespace demo
