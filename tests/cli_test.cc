/**
 * @file
 * Tests for the command-line front end: option parsing, preset and
 * override composition, error reporting, and report rendering.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/cli.hh"

namespace {

using namespace orion;
using namespace orion::cli;

TEST(CliParse, DefaultsToVc16Preset)
{
    const Options o = parse({});
    EXPECT_EQ(o.network.net.vcs, 2u);
    EXPECT_EQ(o.network.net.bufferDepth, 8u);
    EXPECT_DOUBLE_EQ(o.traffic.injectionRate, 0.05);
    EXPECT_FALSE(o.csv);
    EXPECT_FALSE(o.helpRequested);
}

TEST(CliParse, HelpShortCircuits)
{
    EXPECT_TRUE(parse({"--help"}).helpRequested);
    EXPECT_TRUE(parse({"-h"}).helpRequested);
    // Even with other (possibly bad) options after it.
    EXPECT_TRUE(parse({"--help", "--bogus"}).helpRequested);
    EXPECT_FALSE(usage().empty());
}

TEST(CliParse, PresetSelection)
{
    EXPECT_EQ(parse({"--preset", "wh64"}).network.net.routerKind,
              net::RouterKind::Wormhole);
    EXPECT_EQ(parse({"--preset", "cb"}).network.net.routerKind,
              net::RouterKind::CentralBuffer);
    EXPECT_EQ(parse({"--preset", "xb"}).network.net.vcs, 16u);
    EXPECT_THROW(parse({"--preset", "nope"}), std::invalid_argument);
}

TEST(CliParse, OverridesComposeWithPreset)
{
    const Options o = parse({"--preset", "vc64", "--buffer", "16",
                             "--rate", "0.12", "--seed", "7"});
    EXPECT_EQ(o.network.net.vcs, 8u);
    EXPECT_EQ(o.network.net.bufferDepth, 16u);
    EXPECT_DOUBLE_EQ(o.traffic.injectionRate, 0.12);
    EXPECT_EQ(o.sim.seed, 7u);
}

TEST(CliParse, DimsAndMesh)
{
    const Options o = parse({"--dims", "8x8", "--mesh"});
    EXPECT_EQ(o.network.net.dims, (std::vector<unsigned>{8, 8}));
    EXPECT_FALSE(o.network.net.wrap);
    EXPECT_EQ(o.network.net.deadlock, router::DeadlockMode::None);

    const Options o3 = parse({"--dims", "2x3x4", "--vcs", "2",
                              "--deadlock", "dateline"});
    EXPECT_EQ(o3.network.net.dims, (std::vector<unsigned>{2, 3, 4}));

    EXPECT_THROW(parse({"--dims", "4xx4"}), std::invalid_argument);
    EXPECT_THROW(parse({"--dims", "abc"}), std::invalid_argument);
}

TEST(CliParse, Patterns)
{
    EXPECT_EQ(parse({"--pattern", "tornado"}).traffic.pattern,
              net::TrafficPattern::Tornado);
    EXPECT_EQ(parse({"--pattern", "hotspot", "--hotspot", "9",
                     "--hotspot-frac", "0.4"})
                  .traffic.hotspotFraction,
              0.4);
    EXPECT_THROW(parse({"--pattern", "nope"}), std::invalid_argument);
}

TEST(CliParse, RejectsUnknownAndMalformed)
{
    EXPECT_THROW(parse({"--bogus"}), std::invalid_argument);
    EXPECT_THROW(parse({"--rate"}), std::invalid_argument);
    EXPECT_THROW(parse({"--rate", "fast"}), std::invalid_argument);
    EXPECT_THROW(parse({"--sample", "-3"}), std::invalid_argument);
}

TEST(CliParse, ValidatesComposedConfig)
{
    // Individually fine options composing into an invalid network
    // must be rejected at parse time.
    EXPECT_THROW(parse({"--preset", "wh64", "--vcs", "2"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--rate", "1.7"}), std::invalid_argument);
    EXPECT_THROW(parse({"--preset", "wh64", "--buffer", "4"}),
                 std::invalid_argument);
}

TEST(CliParse, TraceFileErrorsSurface)
{
    EXPECT_THROW(parse({"--pattern", "trace", "--trace",
                        "/nonexistent/file.txt"}),
                 std::runtime_error);
    EXPECT_THROW(parse({"--pattern", "trace"}), std::invalid_argument);
}

TEST(CliReport, TextReportContainsKeyNumbers)
{
    Options o = parse({"--sample", "400", "--rate", "0.05"});
    o.sim.maxCycles = 100000;
    Simulation s(o.network, o.traffic, o.sim);
    const Report r = s.run();
    const std::string text = formatReport(o, r);
    EXPECT_NE(text.find("completed"), std::string::npos);
    EXPECT_NE(text.find("latency mean"), std::string::npos);
    EXPECT_NE(text.find("network power"), std::string::npos);
}

TEST(CliReport, CsvReportRoundTrips)
{
    Options o = parse({"--sample", "400", "--rate", "0.05", "--csv"});
    o.sim.maxCycles = 100000;
    Simulation s(o.network, o.traffic, o.sim);
    const Report r = s.run();
    const std::string csv = formatCsvReport(o, r);
    // Header + one data row.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
    EXPECT_NE(csv.find("rate,completed,deadlock"), std::string::npos);
    EXPECT_NE(csv.find("0.0500,1,0"), std::string::npos);
}

TEST(CliParse, ArbiterInjectionTieBreakOptions)
{
    const Options o = parse({"--arbiter", "rr", "--injection", "spread",
                             "--tie-break", "prefer-wrap"});
    EXPECT_EQ(o.network.net.arbiterKind,
              router::ArbiterKind::RoundRobin);
    EXPECT_EQ(o.network.net.injection,
              net::InjectionPolicy::SpreadVcs);
    EXPECT_EQ(o.network.net.tieBreak, net::TieBreak::PreferWrap);

    EXPECT_THROW(parse({"--arbiter", "x"}), std::invalid_argument);
    EXPECT_THROW(parse({"--injection", "x"}), std::invalid_argument);
    EXPECT_THROW(parse({"--tie-break", "x"}), std::invalid_argument);
}

TEST(CliParse, FaultInjectionFlags)
{
    const Options o = parse({"--link-ber", "1e-6", "--link-outage",
                             "1000:2000:3", "--link-outage", "500:600",
                             "--fault-seed", "99", "--retry-limit",
                             "4", "--retry-backoff", "16"});
    EXPECT_DOUBLE_EQ(o.sim.fault.linkBitErrorRate, 1e-6);
    ASSERT_EQ(o.sim.fault.outages.size(), 2u);
    EXPECT_EQ(o.sim.fault.outages[0].start, 1000u);
    EXPECT_EQ(o.sim.fault.outages[0].end, 2000u);
    EXPECT_EQ(o.sim.fault.outages[0].link, 3);
    EXPECT_EQ(o.sim.fault.outages[1].link, -1); // injector picks
    EXPECT_EQ(o.sim.fault.faultSeed, 99u);
    EXPECT_EQ(o.sim.fault.retryLimit, 4u);
    EXPECT_EQ(o.sim.fault.retryBackoffCycles, 16u);
    EXPECT_TRUE(o.sim.fault.enabled());
    EXPECT_FALSE(parse({}).sim.fault.enabled());
}

TEST(CliParse, FaultFlagsRejectInvalidValues)
{
    EXPECT_THROW(parse({"--link-ber", "1.5"}), std::invalid_argument);
    EXPECT_THROW(parse({"--link-ber", "-0.1"}), std::invalid_argument);
    EXPECT_THROW(parse({"--link-outage", "2000:1000"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--link-outage", "junk"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--retry-limit", "50"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--retry-backoff", "0"}),
                 std::invalid_argument);
}

TEST(CliReport, FaultStatsAppearWhenFaultsInjected)
{
    Options o = parse({"--sample", "400", "--rate", "0.05",
                       "--link-ber", "5e-6"});
    o.sim.maxCycles = 100000;
    Simulation s(o.network, o.traffic, o.sim);
    const Report r = s.run();
    ASSERT_TRUE(r.completed);
    const std::string text = formatReport(o, r);
    EXPECT_NE(text.find("faults"), std::string::npos);
    EXPECT_NE(text.find("retransmitted"), std::string::npos);

    const std::string csv = formatCsvReport(o, r);
    EXPECT_NE(csv.find("stop_reason"), std::string::npos);
    EXPECT_NE(csv.find("completed"), std::string::npos);

    // Fault lines stay out of clean-run reports.
    Options clean = parse({"--sample", "400", "--rate", "0.05"});
    clean.sim.maxCycles = 100000;
    Simulation cs(clean.network, clean.traffic, clean.sim);
    const std::string ctext = formatReport(clean, cs.run());
    EXPECT_EQ(ctext.find("retransmitted"), std::string::npos);
}

TEST(CliParse, SpeculativeFlag)
{
    EXPECT_FALSE(parse({}).network.net.speculative);
    EXPECT_TRUE(parse({"--speculative"}).network.net.speculative);
}

TEST(CliParse, BreakdownFlag)
{
    EXPECT_TRUE(parse({"--breakdown"}).breakdown);
}

TEST(RateSpec, ParsesEvenlySpacedRates)
{
    const auto rates = parseRateSpec("0.02:0.10:5");
    ASSERT_EQ(rates.size(), 5u);
    EXPECT_DOUBLE_EQ(rates.front(), 0.02);
    EXPECT_DOUBLE_EQ(rates.back(), 0.10);
    EXPECT_NEAR(rates[2], 0.06, 1e-12);
}

TEST(RateSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseRateSpec("abc"), std::invalid_argument);
    EXPECT_THROW(parseRateSpec("0.1:0.05:4"), std::invalid_argument);
    EXPECT_THROW(parseRateSpec("0:0.1:4"), std::invalid_argument);
    EXPECT_THROW(parseRateSpec("0.01:0.1:1"), std::invalid_argument);
    EXPECT_THROW(parseRateSpec("0.01:0.1:4x"), std::invalid_argument);
    EXPECT_THROW(parseRateSpec("0.01:0.1"), std::invalid_argument);
}

TEST(CliParse, SurvivabilityFlags)
{
    const Options o = parse({"--point-timeout", "2.5",
                             "--point-retries", "3",
                             "--point-backoff-ms", "50",
                             "--report-out", "out.entry",
                             "--debug-segv-rate", "0.04"});
    EXPECT_DOUBLE_EQ(o.pointTimeoutSeconds, 2.5);
    EXPECT_EQ(o.pointRetries, 3u);
    EXPECT_EQ(o.pointBackoffMs, 50u);
    EXPECT_EQ(o.reportOut, "out.entry");
    EXPECT_DOUBLE_EQ(o.sim.debugSegvRate, 0.04);

    // Defaults: no deadline, the historical single retry, no report.
    const Options d = parse({});
    EXPECT_DOUBLE_EQ(d.pointTimeoutSeconds, 0.0);
    EXPECT_EQ(d.pointRetries, 2u);
    EXPECT_EQ(d.pointBackoffMs, 0u);
    EXPECT_TRUE(d.reportOut.empty());
    EXPECT_LT(d.sim.debugSegvRate, 0.0);
}

TEST(CliParse, SurvivabilityFlagsRejectInvalidValues)
{
    EXPECT_THROW(parse({"--point-timeout", "0"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--point-timeout", "-1"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--point-retries", "0"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--point-retries", "64"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--point-backoff-ms", "junk"}),
                 std::invalid_argument);
}

TEST(CliParse, ObservabilityFlags)
{
    const Options o = parse({"--log-out", "run.jsonl",
                             "--log-level", "debug",
                             "--manifest-out", "run.manifest.json",
                             "--profile-phases"});
    EXPECT_EQ(o.logOut, "run.jsonl");
    EXPECT_EQ(o.logLevel, "debug");
    EXPECT_EQ(o.manifestOut, "run.manifest.json");
    EXPECT_TRUE(o.sim.profilePhases);

    // Defaults: everything off, byte-identical to the pre-logger CLI.
    const Options d = parse({});
    EXPECT_TRUE(d.logOut.empty());
    EXPECT_EQ(d.logLevel, "info");
    EXPECT_TRUE(d.manifestOut.empty());
    EXPECT_FALSE(d.sim.profilePhases);

    EXPECT_THROW(parse({"--log-level", "verbose"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--log-out"}), std::invalid_argument);
    EXPECT_THROW(parse({"--manifest-out"}), std::invalid_argument);
}

TEST(CliParse, RateAcceptsExactHexfloat)
{
    // `orion_sweep --isolate` hands workers their rate as a hexfloat
    // so the double reconstructs bit-exactly.
    const Options o = parse({"--rate", "0x1.999999999999ap-5"});
    EXPECT_EQ(o.traffic.injectionRate, 0.05);
}

} // namespace
