/**
 * @file
 * Tests for the analytic pipeline delay model: the paper's pipeline
 * depths (3-stage VC, 2-stage wormhole at a 20 FO4 clock) and
 * monotonicity in the architectural parameters.
 */

#include <gtest/gtest.h>

#include "router/delay_model.hh"
#include "tech/tech_node.hh"

namespace {

using orion::router::DelayModel;
using orion::tech::TechNode;

TEST(DelayModel, PaperPipelinesAtTwentyFo4)
{
    const DelayModel m(20.0);
    // Section 4.2: "virtual-channel routers fit within a 3-stage
    // router pipeline ... and the wormhole router has a 2-stage router
    // pipeline" — for the paper's 5-port routers at 2-8 VCs.
    EXPECT_EQ(m.pipelineDepth(true, 5, 2, 256), 3u);
    EXPECT_EQ(m.pipelineDepth(true, 5, 8, 256), 3u);
    EXPECT_EQ(m.pipelineDepth(false, 5, 1, 256), 2u);
    // Fig 7's XB router (16 VCs) still fits the 3-stage pipeline.
    EXPECT_EQ(m.pipelineDepth(true, 5, 16, 32), 3u);
}

TEST(DelayModel, EveryStageFitsOneAggressiveCycle)
{
    const DelayModel m(20.0);
    EXPECT_LE(m.vcAllocDelayFo4(5, 16), 20.0);
    EXPECT_LE(m.switchAllocDelayFo4(5), 20.0);
    EXPECT_LE(m.crossbarDelayFo4(5, 256), 20.0);
}

TEST(DelayModel, ArbiterDelayGrowsWithFanIn)
{
    const DelayModel m(20.0);
    EXPECT_LT(m.arbiterDelayFo4(2), m.arbiterDelayFo4(8));
    EXPECT_LT(m.arbiterDelayFo4(8), m.arbiterDelayFo4(64));
}

TEST(DelayModel, CrossbarDelayGrowsWithPortsAndWidth)
{
    const DelayModel m(20.0);
    EXPECT_LT(m.crossbarDelayFo4(2, 32), m.crossbarDelayFo4(10, 32));
    EXPECT_LT(m.crossbarDelayFo4(5, 32), m.crossbarDelayFo4(5, 512));
}

TEST(DelayModel, SlowerClockNeedsFewerStages)
{
    const DelayModel fast(10.0);
    const DelayModel slow(40.0);
    EXPECT_GE(fast.pipelineDepth(true, 5, 8, 256),
              slow.pipelineDepth(true, 5, 8, 256));
    // A generous clock fits each module in one stage: VA+SA+ST = 3.
    EXPECT_EQ(slow.pipelineDepth(true, 5, 8, 256), 3u);
}

TEST(DelayModel, StagesForNeverReturnsZero)
{
    const DelayModel m(20.0);
    EXPECT_EQ(m.stagesFor(0.0), 1u);
    EXPECT_EQ(m.stagesFor(20.0), 1u);
    EXPECT_EQ(m.stagesFor(20.1), 2u);
}

TEST(DelayModel, Fo4TracksFeatureSize)
{
    EXPECT_NEAR(DelayModel::fo4Ps(TechNode::onChip100nm()), 42.5, 1e-9);
    EXPECT_NEAR(DelayModel::fo4Ps(TechNode::scaled(0.18, 1.8, 1e9)),
                76.5, 1e-9);
}

} // namespace
