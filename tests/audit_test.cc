/**
 * @file
 * Tests for the invariant-check subsystem (core/check.hh) and the
 * network-wide audits (net/audit.hh).
 *
 * The positive tests prove the audits hold on healthy networks of all
 * three router kinds. The negative tests are the important ones: they
 * corrupt the simulator's bookkeeping through test-only hooks and
 * assert that the audits *detect* the corruption with a diagnostic
 * naming the offending node/port — an audit that can't fail is just
 * overhead.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/check.hh"
#include "core/config.hh"
#include "core/simulation.hh"
#include "net/audit.hh"
#include "router/vc_router.hh"

namespace {

using namespace orion;
using core::CheckFailure;
using core::CheckLevel;

/** Restore the global check level after each test. */
class AuditTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        saved_ = core::checkLevel();
        core::setCheckLevel(CheckLevel::Paranoid);
    }
    void TearDown() override { core::setCheckLevel(saved_); }

  private:
    CheckLevel saved_ = CheckLevel::Cheap;
};

TrafficConfig
uniformTraffic(double rate)
{
    TrafficConfig t;
    t.pattern = net::TrafficPattern::UniformRandom;
    t.injectionRate = rate;
    return t;
}

SimConfig
shortRun()
{
    SimConfig s;
    s.warmupCycles = 200;
    s.samplePackets = 200;
    s.maxCycles = 50000;
    s.auditCycles = 64;
    return s;
}

TEST_F(AuditTest, CheckLevelClampsToCompiledMax)
{
    core::setCheckLevel(CheckLevel::Paranoid);
    EXPECT_LE(static_cast<int>(core::checkLevel()),
              static_cast<int>(core::compiledCheckLevel()));
}

TEST_F(AuditTest, CheckMacroThrowsWithContext)
{
    const int port = 3;
    try {
        ORION_CHECK(1 + 1 == 3, "demo failure at port " << port);
        FAIL() << "expected CheckFailure";
    } catch (const CheckFailure& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("demo failure at port 3"), std::string::npos)
            << what;
        EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
        EXPECT_NE(what.find("audit_test.cc"), std::string::npos) << what;
    }
}

TEST_F(AuditTest, CheckMacroInactiveWhenOff)
{
    core::setCheckLevel(CheckLevel::Off);
    EXPECT_NO_THROW(ORION_CHECK(false, "must not fire"));
    EXPECT_NO_THROW(ORION_AUDIT(false, "must not fire"));
}

TEST_F(AuditTest, AuditMacroNeedsParanoid)
{
    core::setCheckLevel(CheckLevel::Cheap);
    EXPECT_NO_THROW(ORION_AUDIT(false, "paranoid-only"));
    EXPECT_THROW(ORION_CHECK(false, "cheap fires"), CheckFailure);
}

/** Run a healthy simulation: every periodic + final audit must pass. */
void
expectCleanRun(const NetworkConfig& cfg)
{
    Simulation s(cfg, uniformTraffic(0.05), shortRun());
    EXPECT_EQ(s.simulator().auditCount(), 3u);
    const Report r = s.run();
    EXPECT_TRUE(r.completed);
    EXPECT_NO_THROW(s.auditor().auditAll());
}

TEST_F(AuditTest, HealthyVcNetworkPassesAllAudits)
{
    expectCleanRun(NetworkConfig::vc16());
}

TEST_F(AuditTest, HealthyWormholeNetworkPassesAllAudits)
{
    expectCleanRun(NetworkConfig::wh64());
}

TEST_F(AuditTest, HealthyCentralBufferNetworkPassesAllAudits)
{
    expectCleanRun(NetworkConfig::cb());
}

TEST_F(AuditTest, CorruptedCreditIsDetectedAndLocalized)
{
    Simulation s(NetworkConfig::vc16(), uniformTraffic(0.05), shortRun());
    s.step(500);
    EXPECT_NO_THROW(s.auditor().auditCreditAccounting());

    // Steal one sender-side credit at node 5, output port 2, VC 1.
    s.network().router(5).debugCorruptCredit(2, 1);
    try {
        s.auditor().auditCreditAccounting();
        FAIL() << "credit audit missed a corrupted counter";
    } catch (const CheckFailure& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("credit accounting violated"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("node 5 port 2"), std::string::npos) << what;
        EXPECT_NE(what.find("vc 1"), std::string::npos) << what;
    }
}

TEST_F(AuditTest, DroppedFlitIsDetectedAndLocalized)
{
    Simulation s(NetworkConfig::vc16(), uniformTraffic(0.1), shortRun());

    // Advance until some router holds a buffered flit we can drop.
    const unsigned nodes = s.network().topology().numNodes();
    auto* victim = static_cast<router::CrossbarRouter*>(nullptr);
    int victim_node = -1;
    unsigned victim_port = 0;
    unsigned victim_vc = 0;
    for (int tries = 0; tries < 2000 && victim == nullptr; ++tries) {
        s.step(1);
        for (unsigned n = 0; n < nodes && victim == nullptr; ++n) {
            auto& r = dynamic_cast<router::CrossbarRouter&>(
                s.network().router(static_cast<int>(n)));
            for (unsigned p = 0; p < r.params().ports; ++p) {
                for (unsigned v = 0; v < r.params().vcs; ++v) {
                    if (!r.inputFifo(p, v).empty()) {
                        victim = &r;
                        victim_node = static_cast<int>(n);
                        victim_port = p;
                        victim_vc = v;
                        break;
                    }
                }
                if (victim != nullptr)
                    break;
            }
        }
    }
    ASSERT_NE(victim, nullptr) << "no buffered flit found to drop";
    EXPECT_NO_THROW(s.auditor().auditFlitConservation());

    victim->debugDropFlit(victim_port, victim_vc);
    try {
        s.auditor().auditFlitConservation();
        FAIL() << "conservation audit missed a dropped flit";
    } catch (const CheckFailure& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("flit conservation violated"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("node " + std::to_string(victim_node)),
                  std::string::npos)
            << what;
    }
}

TEST_F(AuditTest, CorruptionIsInvisibleWhenChecksAreOff)
{
    Simulation s(NetworkConfig::vc16(), uniformTraffic(0.05), shortRun());
    s.step(500);
    s.network().router(5).debugCorruptCredit(2, 1);

    core::setCheckLevel(CheckLevel::Off);
    EXPECT_NO_THROW(s.auditor().auditAll());
    core::setCheckLevel(CheckLevel::Paranoid);
    EXPECT_THROW(s.auditor().auditCreditAccounting(), CheckFailure);
}

TEST_F(AuditTest, EnergyBaselineSurvivesMonitorReset)
{
    Simulation s(NetworkConfig::vc16(), uniformTraffic(0.05), shortRun());
    s.step(500);
    EXPECT_NO_THROW(s.auditor().auditEnergyAccounting());

    // A monitor reset rewinds the counters; without a baseline reset
    // the monotonicity check would fire.
    s.monitor().reset();
    EXPECT_THROW(s.auditor().auditEnergyAccounting(), CheckFailure);
    s.auditor().resetEnergyBaseline();
    EXPECT_NO_THROW(s.auditor().auditEnergyAccounting());
}

TEST_F(AuditTest, LedgersBalanceUnderInjectedFaults)
{
    // With fault injection discarding flits mid-network, the
    // conservation ledgers must still balance at every paranoid audit:
    // discards are a named column, not a leak, and the resynchronized
    // credits must keep the credit equation exact.
    SimConfig s = shortRun();
    s.fault.linkBitErrorRate = 5e-6;
    s.fault.outages.push_back({.start = 400, .end = 600, .link = -1});
    Simulation sim(NetworkConfig::vc16(), uniformTraffic(0.05), s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed) << r.checkFailureDiagnostic;
    EXPECT_GT(r.flitsDiscarded, 0u);

    std::uint64_t discarded = 0;
    const unsigned nodes = sim.network().topology().numNodes();
    for (unsigned n = 0; n < nodes; ++n)
        discarded +=
            sim.network().router(static_cast<int>(n)).flitsDiscarded();
    EXPECT_EQ(discarded, r.flitsDiscarded);
    EXPECT_NO_THROW(sim.auditor().auditAll());
}

TEST_F(AuditTest, AuditsAreNotRegisteredWhenChecksOff)
{
    core::setCheckLevel(CheckLevel::Off);
    Simulation s(NetworkConfig::vc16(), uniformTraffic(0.05), shortRun());
    EXPECT_EQ(s.simulator().auditCount(), 0u);
}

} // namespace
