/**
 * @file
 * Shared test harness: a single router wired to stub links on every
 * port, so tests can inject flits, observe outputs, and count events
 * without building a whole network.
 */

#ifndef ORION_TESTS_ROUTER_TEST_UTIL_HH
#define ORION_TESTS_ROUTER_TEST_UTIL_HH

#include <memory>
#include <optional>
#include <vector>

#include "router/central_buffer_router.hh"
#include "router/flit.hh"
#include "router/link.hh"
#include "router/router.hh"
#include "router/vc_router.hh"
#include "router/wormhole_router.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"

namespace orion::test {

/** One router with per-port test links. */
class SingleRouterHarness
{
  public:
    /**
     * Build the router via @p factory (which receives this harness's
     * simulator, so the router publishes on the right event bus) and
     * wire every port.
     */
    template <typename Factory>
    SingleRouterHarness(Factory&& factory, unsigned downstream_vcs,
                        unsigned downstream_depth)
        : router_(factory(sim))
    {
        const auto& p = router_->params();
        for (unsigned port = 0; port < p.ports; ++port) {
            inLinks_.push_back(std::make_unique<router::FlitLink>(
                0, static_cast<int>(port), p.flitBits, false));
            outLinks_.push_back(std::make_unique<router::FlitLink>(
                0, static_cast<int>(port), p.flitBits,
                port != p.localPort()));
            creditReturn_.push_back(
                std::make_unique<router::CreditLink>(
                    0, static_cast<int>(port)));
            creditIn_.push_back(std::make_unique<router::CreditLink>(
                0, static_cast<int>(port)));

            router_->connectInput(port, inLinks_[port].get(),
                                  creditReturn_[port].get());
            router_->connectOutput(port, outLinks_[port].get(),
                                   creditIn_[port].get(),
                                   downstream_vcs, downstream_depth,
                                   port == p.localPort());

            sim.addChannel(inLinks_[port].get());
            sim.addChannel(outLinks_[port].get());
            sim.addChannel(creditReturn_[port].get());
            sim.addChannel(creditIn_[port].get());
        }
        sim.add(router_.get());
    }

    router::Router& router() { return *router_; }

    /** Stage @p flit into input @p port (arrives next cycle). */
    void
    inject(unsigned port, router::Flit flit)
    {
        inLinks_[port]->send(std::move(flit), sim.bus(), sim.now());
    }

    /** Consume the flit on output @p port, if any, this cycle. */
    std::optional<router::Flit>
    readOutput(unsigned port)
    {
        if (!outLinks_[port]->valid())
            return std::nullopt;
        return outLinks_[port]->read();
    }

    /** Consume a credit returned upstream on input @p port. */
    std::optional<router::Credit>
    readCreditReturn(unsigned port)
    {
        if (!creditReturn_[port]->valid())
            return std::nullopt;
        return creditReturn_[port]->read();
    }

    /** Hand a downstream credit back to output @p port. */
    void
    returnCredit(unsigned port, router::Credit c)
    {
        creditIn_[port]->send(c, sim.bus(), sim.now());
    }

    sim::Simulator sim;

  private:
    std::unique_ptr<router::Router> router_;
    std::vector<std::unique_ptr<router::FlitLink>> inLinks_;
    std::vector<std::unique_ptr<router::FlitLink>> outLinks_;
    std::vector<std::unique_ptr<router::CreditLink>> creditReturn_;
    std::vector<std::unique_ptr<router::CreditLink>> creditIn_;
};

/** Build all flits of one packet with the given route. */
inline std::vector<router::Flit>
makePacket(std::uint64_t id, int src, int dst, unsigned length,
           unsigned flit_bits, std::vector<router::RouteHop> route,
           sim::Rng& rng, sim::Cycle created_at = 0)
{
    auto info = std::make_shared<router::PacketInfo>();
    info->id = id;
    info->src = src;
    info->dst = dst;
    info->createdAt = created_at;
    info->length = length;
    info->sample = true;
    info->route = std::move(route);

    std::vector<router::Flit> flits;
    for (unsigned s = 0; s < length; ++s) {
        router::Flit f;
        f.packet = info;
        f.head = s == 0;
        f.tail = s + 1 == length;
        f.seq = s;
        f.hop = 0;
        f.vc = 0;
        f.payload = power::BitVec(flit_bits);
        for (std::size_t w = 0; w < f.payload.wordCount(); ++w)
            f.payload.setWord(w, rng.next());
        flits.push_back(std::move(f));
    }
    return flits;
}

} // namespace orion::test

#endif // ORION_TESTS_ROUTER_TEST_UTIL_HH
