/**
 * @file
 * Tests for the synthetic traffic generators: destination
 * distributions, injection rates, and per-pattern structure.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/traffic.hh"

namespace {

using namespace orion;
using namespace orion::net;

const Topology kTopo({4, 4}, true);

/** TrafficParams with only pattern and rate set (defaults elsewhere,
 * avoiding -Wmissing-field-initializers on aggregate init). */
TrafficParams
makeParams(TrafficPattern pattern, double rate)
{
    TrafficParams p;
    p.pattern = pattern;
    p.injectionRate = rate;
    return p;
}

TEST(UniformRandom, NeverSelfAndCoversAll)
{
    TrafficGenerator gen(kTopo, makeParams(TrafficPattern::UniformRandom, 0.1));
    sim::Rng rng(1);
    std::vector<int> counts(16, 0);
    for (int i = 0; i < 16000; ++i) {
        const int d = gen.pickDestination(5, rng);
        ASSERT_NE(d, 5);
        ASSERT_GE(d, 0);
        ASSERT_LT(d, 16);
        ++counts[static_cast<unsigned>(d)];
    }
    EXPECT_EQ(counts[5], 0);
    for (int n = 0; n < 16; ++n) {
        if (n == 5)
            continue;
        // ~1067 expected per destination.
        EXPECT_GT(counts[static_cast<unsigned>(n)], 850);
        EXPECT_LT(counts[static_cast<unsigned>(n)], 1300);
    }
}

TEST(UniformRandom, InjectionRateMatches)
{
    TrafficGenerator gen(kTopo, makeParams(TrafficPattern::UniformRandom, 0.2));
    sim::Rng rng(2);
    int injections = 0;
    const int cycles = 50000;
    for (int c = 0; c < cycles; ++c)
        if (gen.maybeInject(3, static_cast<sim::Cycle>(c), rng))
            ++injections;
    EXPECT_NEAR(static_cast<double>(injections) / cycles, 0.2, 0.01);
}

TEST(Broadcast, OnlySourceInjects)
{
    TrafficParams p = makeParams(TrafficPattern::Broadcast, 0.2);
    p.broadcastSource = kTopo.nodeAt({1, 2}); // paper's source node
    TrafficGenerator gen(kTopo, p);
    EXPECT_TRUE(gen.injects(kTopo.nodeAt({1, 2})));
    for (int n = 0; n < 16; ++n) {
        if (n != p.broadcastSource) {
            EXPECT_FALSE(gen.injects(n));
            EXPECT_DOUBLE_EQ(gen.nodeRate(n), 0.0);
        }
    }
    EXPECT_DOUBLE_EQ(gen.nodeRate(p.broadcastSource), 0.2);
}

TEST(Broadcast, CoversAllOtherNodesEvenly)
{
    TrafficParams p = makeParams(TrafficPattern::Broadcast, 0.2);
    p.broadcastSource = 6;
    TrafficGenerator gen(kTopo, p);
    sim::Rng rng(3);
    std::vector<int> counts(16, 0);
    for (int i = 0; i < 150; ++i)
        ++counts[static_cast<unsigned>(gen.pickDestination(6, rng))];
    EXPECT_EQ(counts[6], 0);
    for (int n = 0; n < 16; ++n) {
        if (n != 6) {
            EXPECT_EQ(counts[static_cast<unsigned>(n)], 10);
        }
    }
}

TEST(Transpose, SwapsCoordinates)
{
    TrafficGenerator gen(kTopo, makeParams(TrafficPattern::Transpose, 0.1));
    sim::Rng rng(4);
    EXPECT_EQ(gen.pickDestination(kTopo.nodeAt({1, 3}), rng),
              kTopo.nodeAt({3, 1}));
    // Diagonal nodes are silent.
    EXPECT_FALSE(gen.injects(kTopo.nodeAt({2, 2})));
    EXPECT_TRUE(gen.injects(kTopo.nodeAt({0, 1})));
}

TEST(BitComplement, MirrorsNodeId)
{
    TrafficGenerator gen(kTopo, makeParams(TrafficPattern::BitComplement, 0.1));
    sim::Rng rng(5);
    EXPECT_EQ(gen.pickDestination(0, rng), 15);
    EXPECT_EQ(gen.pickDestination(5, rng), 10);
}

TEST(Tornado, ShiftsHalfRadix)
{
    TrafficGenerator gen(kTopo, makeParams(TrafficPattern::Tornado, 0.1));
    sim::Rng rng(6);
    // floor((4-1)/2) = 1 shift per dimension.
    EXPECT_EQ(gen.pickDestination(kTopo.nodeAt({0, 0}), rng),
              kTopo.nodeAt({1, 1}));
    EXPECT_EQ(gen.pickDestination(kTopo.nodeAt({3, 2}), rng),
              kTopo.nodeAt({0, 3}));
}

TEST(NearestNeighbor, PlusXNeighbor)
{
    TrafficGenerator gen(kTopo, makeParams(TrafficPattern::NearestNeighbor, 0.1));
    sim::Rng rng(7);
    EXPECT_EQ(gen.pickDestination(kTopo.nodeAt({3, 1}), rng),
              kTopo.nodeAt({0, 1}));
}

TEST(Hotspot, ConcentratesTraffic)
{
    TrafficParams p = makeParams(TrafficPattern::Hotspot, 0.1);
    p.hotspotNode = 9;
    p.hotspotFraction = 0.5;
    TrafficGenerator gen(kTopo, p);
    sim::Rng rng(8);
    int to_hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (gen.pickDestination(2, rng) == 9)
            ++to_hot;
    // 50% directed + uniform share of the rest (~3.3%).
    EXPECT_NEAR(static_cast<double>(to_hot) / n, 0.533, 0.02);
}

TEST(Hotspot, HotNodeSendsUniform)
{
    TrafficParams p = makeParams(TrafficPattern::Hotspot, 0.1);
    p.hotspotNode = 9;
    TrafficGenerator gen(kTopo, p);
    sim::Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        ASSERT_NE(gen.pickDestination(9, rng), 9);
}

TEST(AllPatterns, DestinationIsNeverSelf)
{
    for (const auto pattern :
         {TrafficPattern::UniformRandom, TrafficPattern::Broadcast,
          TrafficPattern::Transpose, TrafficPattern::BitComplement,
          TrafficPattern::Tornado, TrafficPattern::NearestNeighbor,
          TrafficPattern::Hotspot}) {
        TrafficParams p = makeParams(pattern, 0.1);
        p.broadcastSource = 3;
        TrafficGenerator gen(kTopo, p);
        sim::Rng rng(10);
        for (int node = 0; node < 16; ++node) {
            if (!gen.injects(node))
                continue;
            for (int i = 0; i < 50; ++i)
                ASSERT_NE(gen.pickDestination(node, rng), node);
        }
    }
}

} // namespace
