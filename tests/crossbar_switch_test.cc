/**
 * @file
 * Tests for the behavioural crossbar switch: traversal events and
 * per-output last-value switching-activity tracking.
 */

#include <gtest/gtest.h>

#include <vector>

#include "router/crossbar_switch.hh"

namespace {

using namespace orion;
using namespace orion::router;
using orion::sim::Event;
using orion::sim::EventBus;
using orion::sim::EventType;

Flit
makeFlit(unsigned width, std::uint64_t payload)
{
    Flit f;
    f.packet = std::make_shared<PacketInfo>();
    f.payload = power::BitVec(width, payload);
    return f;
}

TEST(CrossbarSwitch, EmitsTraversalWithOutputComponent)
{
    EventBus bus;
    std::vector<Event> events;
    bus.subscribe(EventType::CrossbarTraversal,
                  [&](const Event& e) { events.push_back(e); });

    CrossbarSwitch xbar(bus, 4, 5, 5, 32);
    xbar.traverse(1, 3, makeFlit(32, 0xff), 9);

    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].node, 4);
    EXPECT_EQ(events[0].component, 3);
    EXPECT_EQ(events[0].cycle, 9u);
    EXPECT_EQ(events[0].deltaA, 8u); // vs zeroed output wires
}

TEST(CrossbarSwitch, DeltaTracksPerOutputHistory)
{
    EventBus bus;
    std::vector<Event> events;
    bus.subscribe(EventType::CrossbarTraversal,
                  [&](const Event& e) { events.push_back(e); });

    CrossbarSwitch xbar(bus, 0, 5, 5, 32);
    xbar.traverse(0, 2, makeFlit(32, 0xff), 0);   // 8 toggles
    xbar.traverse(1, 2, makeFlit(32, 0xff), 1);   // same value: 0
    xbar.traverse(0, 2, makeFlit(32, 0xf0), 2);   // 4 toggles
    // A different output has independent history.
    xbar.traverse(0, 4, makeFlit(32, 0xff), 3);   // 8 toggles

    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].deltaA, 8u);
    EXPECT_EQ(events[1].deltaA, 0u);
    EXPECT_EQ(events[2].deltaA, 4u);
    EXPECT_EQ(events[3].deltaA, 8u);
}

TEST(CrossbarSwitch, DifferentInputsSameOutputShareWires)
{
    // Output wires are physical: history is per output, regardless of
    // which input drove them.
    EventBus bus;
    std::vector<Event> events;
    bus.subscribe(EventType::CrossbarTraversal,
                  [&](const Event& e) { events.push_back(e); });

    CrossbarSwitch xbar(bus, 0, 2, 2, 16);
    xbar.traverse(0, 1, makeFlit(16, 0x00ff), 0);
    xbar.traverse(1, 1, makeFlit(16, 0xff00), 1); // all 16 toggle

    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].deltaA, 16u);
}

} // namespace
