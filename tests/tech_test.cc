/**
 * @file
 * Unit tests for the technology substrate: node presets, scaling,
 * capacitance primitives, and driver sizing.
 */

#include <gtest/gtest.h>

#include "tech/capacitance.hh"
#include "tech/tech_node.hh"
#include "tech/transistor.hh"

namespace {

using namespace orion::tech;

TEST(TechNode, OnChipPresetMatchesPaperSection42)
{
    const TechNode t = TechNode::onChip100nm();
    EXPECT_DOUBLE_EQ(t.featureUm, 0.1);
    EXPECT_DOUBLE_EQ(t.vdd, 1.2);
    EXPECT_DOUBLE_EQ(t.freqHz, 2.0e9);
}

TEST(TechNode, ChipToChipPresetMatchesPaperSection44)
{
    const TechNode t = TechNode::chipToChip100nm();
    EXPECT_DOUBLE_EQ(t.featureUm, 0.1);
    EXPECT_DOUBLE_EQ(t.freqHz, 1.0e9);
}

TEST(TechNode, WireCapReproducesPaperLinkCapacitance)
{
    // Section 4.2: "Link capacitance is 1.08pF/3mm".
    const TechNode t = TechNode::onChip100nm();
    EXPECT_NEAR(cw(t, 3000.0), 1.08e-12, 1e-15);
}

TEST(TechNode, SwitchEnergyIsHalfCVSquared)
{
    const TechNode t = TechNode::onChip100nm();
    const double c = 1e-12;
    EXPECT_DOUBLE_EQ(t.switchEnergy(c), 0.5 * c * 1.2 * 1.2);
}

TEST(TechNode, CyclePeriodIsReciprocalFrequency)
{
    const TechNode t = TechNode::onChip100nm();
    EXPECT_DOUBLE_EQ(t.cyclePeriod(), 0.5e-9);
}

TEST(TechNode, ScalingShrinksGeometryLinearly)
{
    const TechNode base = TechNode::onChip100nm();
    const TechNode half = TechNode::scaled(0.05, 1.0, 3.0e9);
    EXPECT_DOUBLE_EQ(half.featureUm, 0.05);
    EXPECT_DOUBLE_EQ(half.vdd, 1.0);
    EXPECT_DOUBLE_EQ(half.freqHz, 3.0e9);
    EXPECT_DOUBLE_EQ(half.cellWidthUm, base.cellWidthUm / 2.0);
    EXPECT_DOUBLE_EQ(half.cellHeightUm, base.cellHeightUm / 2.0);
    EXPECT_DOUBLE_EQ(half.wirePitchUm, base.wirePitchUm / 2.0);
    // Per-um densities are preserved to first order.
    EXPECT_DOUBLE_EQ(half.cgPerUm, base.cgPerUm);
    EXPECT_DOUBLE_EQ(half.cwPerUm, base.cwPerUm);
}

TEST(TechNode, ScaledToReferenceIsIdentity)
{
    const TechNode base = TechNode::onChip100nm();
    const TechNode same = TechNode::scaled(0.1, base.vdd, base.freqHz);
    EXPECT_DOUBLE_EQ(same.cellWidthUm, base.cellWidthUm);
    EXPECT_DOUBLE_EQ(same.wirePitchUm, base.wirePitchUm);
}

TEST(Capacitance, GateDiffusionScaleWithWidth)
{
    const TechNode t = TechNode::onChip100nm();
    const Transistor narrow{1.0, Role::Minimum};
    const Transistor wide{2.0, Role::Minimum};
    EXPECT_DOUBLE_EQ(cg(t, wide), 2.0 * cg(t, narrow));
    EXPECT_DOUBLE_EQ(cd(t, wide), 2.0 * cd(t, narrow));
    EXPECT_DOUBLE_EQ(ca(t, narrow), cg(t, narrow) + cd(t, narrow));
}

TEST(Capacitance, WireCapScalesWithLength)
{
    const TechNode t = TechNode::onChip100nm();
    EXPECT_DOUBLE_EQ(cw(t, 200.0), 2.0 * cw(t, 100.0));
    EXPECT_DOUBLE_EQ(cw(t, 0.0), 0.0);
}

TEST(Transistor, DefaultWidthsArePositiveAndRoleDependent)
{
    const TechNode t = TechNode::onChip100nm();
    const Transistor pass = defaultTransistor(t, Role::MemoryPass);
    const Transistor chg = defaultTransistor(t, Role::Precharge);
    EXPECT_GT(pass.widthUm, 0.0);
    EXPECT_GT(chg.widthUm, pass.widthUm);
}

TEST(Transistor, DriverSizingTracksLoad)
{
    const TechNode t = TechNode::onChip100nm();
    const Transistor small =
        sizeDriverForLoad(t, Role::WordlineDriver, 10e-15);
    const Transistor big =
        sizeDriverForLoad(t, Role::WordlineDriver, 1000e-15);
    EXPECT_GT(big.widthUm, small.widthUm);
    // The driver's input cap is load / stageEffort.
    EXPECT_NEAR(cg(t, big), 1000e-15 / t.stageEffort, 1e-18);
}

TEST(Transistor, DriverSizingClampsAtMinimumWidth)
{
    const TechNode t = TechNode::onChip100nm();
    const Transistor tiny =
        sizeDriverForLoad(t, Role::WordlineDriver, 0.0);
    EXPECT_DOUBLE_EQ(tiny.widthUm, 2.0 * t.featureUm);
}

/** Property sweep: energy-per-switch is monotone in capacitance and
 * quadratic in Vdd. */
class SwitchEnergyProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(SwitchEnergyProperty, QuadraticInVdd)
{
    const double vdd = GetParam();
    const TechNode t = TechNode::scaled(0.1, vdd, 1e9);
    const double e1 = t.switchEnergy(1e-12);
    const TechNode t2 = TechNode::scaled(0.1, 2.0 * vdd, 1e9);
    EXPECT_NEAR(t2.switchEnergy(1e-12), 4.0 * e1, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Vdds, SwitchEnergyProperty,
                         ::testing::Values(0.6, 0.9, 1.2, 1.8, 2.5));

} // namespace
