/**
 * @file
 * Reproduction regression tests: scaled-down versions of the paper's
 * experiments asserting the *shapes* EXPERIMENTS.md reports, so the
 * qualitative results stay pinned as the code evolves.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/config.hh"
#include "core/simulation.hh"
#include "net/topology.hh"

namespace {

using namespace orion;

Report
run(const NetworkConfig& cfg, const TrafficConfig& traffic,
    std::uint64_t sample = 2500)
{
    SimConfig sim;
    sim.samplePackets = sample;
    sim.maxCycles = 300000;
    Simulation s(cfg, traffic, sim);
    return s.run();
}

TrafficConfig
uniform(double rate)
{
    TrafficConfig t;
    t.injectionRate = rate;
    return t;
}

// ---- Figure 5 shapes -------------------------------------------------

TEST(Fig5Shapes, Vc16PowerBelowWh64PreSaturation)
{
    for (const double rate : {0.05, 0.09}) {
        const Report wh = run(NetworkConfig::wh64(), uniform(rate));
        const Report vc = run(NetworkConfig::vc16(), uniform(rate));
        ASSERT_TRUE(wh.completed && vc.completed);
        EXPECT_LT(vc.networkPowerWatts, wh.networkPowerWatts)
            << "rate " << rate;
    }
}

TEST(Fig5Shapes, Vc64PowerMatchesWh64)
{
    // "VC64 dissipates approximately the same amount of power as
    // WH64 before saturation."
    const Report wh = run(NetworkConfig::wh64(), uniform(0.09));
    const Report vc = run(NetworkConfig::vc64(), uniform(0.09));
    ASSERT_TRUE(wh.completed && vc.completed);
    EXPECT_NEAR(vc.networkPowerWatts, wh.networkPowerWatts,
                0.03 * wh.networkPowerWatts);
}

TEST(Fig5Shapes, Vc128BurnsMoreThanVc64WithoutWinning)
{
    const Report v64 = run(NetworkConfig::vc64(), uniform(0.09));
    const Report v128 = run(NetworkConfig::vc128(), uniform(0.09));
    ASSERT_TRUE(v64.completed && v128.completed);
    EXPECT_GT(v128.networkPowerWatts, 1.05 * v64.networkPowerWatts);
    // No matching performance gain.
    EXPECT_NEAR(v128.avgLatencyCycles, v64.avgLatencyCycles,
                0.1 * v64.avgLatencyCycles);
}

TEST(Fig5Shapes, PowerLevelsOffPastSaturation)
{
    // "total network power levels off after saturation, since the
    // network cannot handle a higher packet injection rate."
    SimConfig sim;
    sim.samplePackets = 2500;
    sim.maxCycles = 25000; // bounded: post-saturation runs never drain
    TrafficConfig t;

    t.injectionRate = 0.20;
    Simulation a(NetworkConfig::wh64(), t, sim);
    const Report r20 = a.run();
    t.injectionRate = 0.25;
    Simulation b(NetworkConfig::wh64(), t, sim);
    const Report r25 = b.run();

    EXPECT_NEAR(r25.networkPowerWatts, r20.networkPowerWatts,
                0.08 * r20.networkPowerWatts);
}

TEST(Fig5Shapes, ArbiterShareBelowOnePercent)
{
    const Report r = run(NetworkConfig::vc64(), uniform(0.09));
    ASSERT_TRUE(r.completed);
    EXPECT_LT(r.breakdownWatts.arbiter, 0.01 * r.networkPowerWatts);
}

// ---- Figure 6 shapes -------------------------------------------------

TEST(Fig6Shapes, UniformTrafficGivesFlatPowerMap)
{
    TrafficConfig t;
    t.injectionRate = 0.2 / 16.0;
    const Report r = run(NetworkConfig::vc16(), t, 3000);
    ASSERT_TRUE(r.completed);
    const auto [lo, hi] = std::minmax_element(r.nodePowerWatts.begin(),
                                              r.nodePowerWatts.end());
    EXPECT_LT(*hi / *lo, 1.35);
}

TEST(Fig6Shapes, BroadcastPowerPeaksAtSourceAndDecays)
{
    TrafficConfig t;
    t.pattern = net::TrafficPattern::Broadcast;
    t.injectionRate = 0.2;
    t.broadcastSource = 1 + 2 * 4; // (1,2)
    const Report r = run(NetworkConfig::vc16(), t, 3000);
    ASSERT_TRUE(r.completed);

    const auto at = [&](int x, int y) {
        return r.nodePowerWatts[static_cast<unsigned>(y * 4 + x)];
    };
    // Source dominates.
    for (unsigned n = 0; n < 16; ++n) {
        if (n != 9) {
            EXPECT_GT(at(1, 2), r.nodePowerWatts[n]);
        }
    }
    // Power decays with Manhattan distance (class means).
    const net::Topology topo({4, 4}, true);
    double prev = 1e30;
    for (unsigned dist = 0; dist <= 4; ++dist) {
        double sum = 0.0;
        int count = 0;
        for (int n = 0; n < 16; ++n) {
            if (topo.manhattanDistance(9, n) == dist) {
                sum += r.nodePowerWatts[static_cast<unsigned>(n)];
                ++count;
            }
        }
        const double mean = sum / count;
        EXPECT_LT(mean, prev) << "distance " << dist;
        prev = mean;
    }
    // y-first routing: (1,1) and (1,3) carry the y-phase traffic and
    // sit well above the x-phase nodes (0,2)/(2,2); the symmetric
    // pairs agree.
    EXPECT_GT(at(1, 1), 2.0 * at(0, 2));
    EXPECT_GT(at(1, 3), 2.0 * at(2, 2));
    EXPECT_NEAR(at(1, 1), at(1, 3), 0.25 * at(1, 1));
    EXPECT_NEAR(at(0, 2), at(2, 2), 0.25 * at(0, 2));
}

// ---- Figure 7 shapes -------------------------------------------------

TEST(Fig7Shapes, XbOutperformsCbOnUniformRandom)
{
    // CB saturates earlier (2 fabric ports vs 5).
    const Report cb = run(NetworkConfig::cb(), uniform(0.14));
    const Report xb = run(NetworkConfig::xb(), uniform(0.14));
    ASSERT_TRUE(xb.completed);
    const double cb_lat = cb.completed ? cb.avgLatencyCycles : 1e9;
    EXPECT_GT(cb_lat, 2.0 * xb.avgLatencyCycles);
}

TEST(Fig7Shapes, CbRouterBurnsMorePowerThanXb)
{
    const Report cb = run(NetworkConfig::cb(), uniform(0.08));
    const Report xb = run(NetworkConfig::xb(), uniform(0.08));
    ASSERT_TRUE(cb.completed && xb.completed);
    EXPECT_GT(cb.networkPowerWatts, xb.networkPowerWatts);
    // Router-only (non-link) dynamic power: CB far above XB.
    const double cb_router =
        cb.networkPowerWatts - cb.breakdownWatts.link;
    const double xb_router =
        xb.networkPowerWatts - xb.breakdownWatts.link;
    EXPECT_GT(cb_router, 3.0 * xb_router);
}

TEST(Fig7Shapes, DominantConsumersMatchPaper)
{
    const Report cb = run(NetworkConfig::cb(), uniform(0.08));
    const Report xb = run(NetworkConfig::xb(), uniform(0.08));
    ASSERT_TRUE(cb.completed && xb.completed);
    // CB router: the central buffer dominates router power.
    EXPECT_GT(cb.breakdownWatts.centralBuffer,
              10.0 * cb.breakdownWatts.buffer);
    // XB router: input buffers dominate; crossbar/arbiter invisible.
    EXPECT_GT(xb.breakdownWatts.buffer, 3.0 * xb.breakdownWatts.crossbar);
    EXPECT_GT(xb.breakdownWatts.buffer,
              20.0 * xb.breakdownWatts.arbiter);
}

TEST(Fig7Shapes, ChipToChipLinkPowerInvariantToLoad)
{
    const Report lo = run(NetworkConfig::xb(), uniform(0.02));
    const Report hi = run(NetworkConfig::xb(), uniform(0.14));
    ASSERT_TRUE(lo.completed && hi.completed);
    EXPECT_DOUBLE_EQ(lo.breakdownWatts.link, hi.breakdownWatts.link);
    // And it dominates node power (paper: > 70%).
    EXPECT_GT(lo.breakdownWatts.link, 0.7 * lo.networkPowerWatts);
}

TEST(Fig7Shapes, CbBeatsXbUnderHotspot)
{
    TrafficConfig t;
    t.pattern = net::TrafficPattern::Hotspot;
    t.injectionRate = 0.06;
    t.hotspotNode = 9;
    t.hotspotFraction = 0.4;
    SimConfig sim;
    sim.samplePackets = 2500;
    sim.maxCycles = 60000;
    Simulation a(NetworkConfig::cb(), t, sim);
    const Report cb = a.run();
    Simulation b(NetworkConfig::xb(), t, sim);
    const Report xb = b.run();
    // Deep congestion: compare delivered-packet latencies.
    EXPECT_LT(cb.avgLatencyCycles, 0.75 * xb.avgLatencyCycles);
}

// ---- Energy metrics --------------------------------------------------

TEST(EnergyMetrics, PerFlitEnergyIsLoadInsensitiveOnChip)
{
    // Dynamic energy per delivered flit is a property of the design,
    // not the load (pre-saturation): two rates agree within 10%.
    const Report lo = run(NetworkConfig::vc64(), uniform(0.03));
    const Report hi = run(NetworkConfig::vc64(), uniform(0.10));
    ASSERT_TRUE(lo.completed && hi.completed);
    EXPECT_GT(lo.energyPerFlitJoules, 0.0);
    EXPECT_NEAR(hi.energyPerFlitJoules, lo.energyPerFlitJoules,
                0.10 * lo.energyPerFlitJoules);
}

} // namespace
